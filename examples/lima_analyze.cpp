//===- examples/lima_analyze.cpp - trace-file analysis tool ---------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The command-line front end: reads a LIMATRACE text file (produced by
// the simulator, or by any external profiling layer that emits the
// format) and prints the full load-imbalance analysis.  This is the
// "performance tool" shape the paper's conclusions call for.
//
//   lima_analyze mytrace.trace
//   lima_analyze --csv --index mad mytrace.trace
//
//===----------------------------------------------------------------------===//

#include "core/CountingReduction.h"
#include "core/Dashboard.h"
#include "core/Diagnosis.h"
#include "core/HtmlReport.h"
#include "core/PhaseAnalysis.h"
#include "core/Pipeline.h"
#include "core/Report.h"
#include "core/SelfProfile.h"
#include "core/TraceReduction.h"
#include "core/WaitStates.h"
#include "core/WindowHistory.h"
#include "core/WindowedAnalysis.h"
#include "stats/Dispersion.h"
#include "support/CommandLine.h"
#include "support/CrashDump.h"
#include "support/Format.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/MetricsExport.h"
#include "support/ProcessMetrics.h"
#include "support/StatusServer.h"
#include "support/raw_ostream.h"
#include "support/FileUtils.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/TraceEventExport.h"
#include "support/Version.h"
#include "trace/BinaryIO.h"
#include "trace/Filter.h"
#include "trace/Timeline.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

using namespace lima;

static Expected<stats::DispersionKind> parseKind(const std::string &Name) {
  for (stats::DispersionKind Kind : stats::AllDispersionKinds)
    if (stats::dispersionKindName(Kind) == Name)
      return Kind;
  return makeStringError("unknown dispersion index '%s'", Name.c_str());
}

int main(int Argc, char **Argv) {
  ExitOnError ExitOnErr("lima_analyze: ");

  // --version short-circuits before the parser runs (the trace positional
  // is otherwise required).
  for (int I = 1; I != Argc; ++I)
    if (std::strcmp(Argv[I], "--version") == 0) {
      outs() << "lima_analyze " << versionString() << '\n';
      outs().flush();
      return 0;
    }

  ArgParser Parser("lima_analyze",
                   "analyzes the load imbalance recorded in a LIMATRACE "
                   "file");
  Parser.addPositional("trace", "path to the trace file");
  Parser.addOption("index",
                   "dispersion index: euclidean, variance, cv, mad, max, "
                   "range, gini",
                   "euclidean");
  Parser.addOption("clusters", "number of region clusters (0 = skip)", "2");
  Parser.addOption("threads",
                   "worker threads for reduction and analysis "
                   "(0 = all hardware threads, 1 = serial)",
                   "0");
  Parser.addFlag("csv", "emit tables as CSV instead of aligned text");
  Parser.addFlag("patterns", "also print the pattern diagrams");
  Parser.addFlag("diagnose", "run the rule-based diagnosis");
  Parser.addFlag("timeline", "print a per-processor ASCII timeline");
  Parser.addFlag("phases", "per-instance (temporal) indices per region");
  Parser.addFlag("counting", "also analyze message-count imbalance");
  Parser.addFlag("waitstates", "late-sender wait-state analysis");
  Parser.addFlag("traffic", "print the communication matrix");
  Parser.addOption("regions", "comma-separated region names to keep", "");
  Parser.addOption("window", "time window 'begin:end' in seconds", "");
  Parser.addOption("html", "also write a self-contained HTML report here",
                   "");
  Parser.addFlag("version", "print the version and exit");
  Parser.addFlag("strict",
                 "abort on the first malformed trace record (default)");
  Parser.addFlag("lenient",
                 "skip malformed trace records and report what was "
                 "dropped instead of aborting");
  Parser.addFlag("quiet", "suppress the standard analysis report (file "
                          "outputs like --html still happen)");
  Parser.addFlag("self-profile",
                 "dogfood: run LIMA's own telemetry through the imbalance "
                 "analysis and print the result");
  Parser.addOption("self-profile-json",
                   "write machine-readable self-profile stats JSON here",
                   "");
  Parser.addOption("self-trace",
                   "write a Chrome trace-event JSON of this run here "
                   "(chrome://tracing, Perfetto)",
                   "");
  Parser.addOption("metrics-out",
                   "record pipeline metrics and write them here in "
                   "Prometheus text exposition format",
                   "");
  Parser.addOption("http",
                   "serve /metrics, /healthz, /readyz, /varz, /debug/spans, "
                   "/api/windows and /dashboard on this address while the "
                   "analysis runs (host:port; port 0 picks an ephemeral "
                   "one)",
                   "");
  Parser.addOption("windowed",
                   "with --http: also run a windowed analysis at this "
                   "width in seconds and serve the per-window history on "
                   "/api/windows and /dashboard (0 = skip)",
                   "0");
  Parser.addOption("history",
                   "retain at most N window summaries from --windowed",
                   "512");
  Parser.addOption("linger-ms",
                   "with --http: keep serving this long after the "
                   "analysis completes, so the dashboard and history can "
                   "be inspected (0 = stop immediately)",
                   "0");
  Parser.addOption("flight-recorder",
                   "keep the most recent N spans in a lock-free ring for "
                   "/debug/spans and crash dumps (0 disables)",
                   "4096");
  Parser.addOption("crash-dump",
                   "on SIGSEGV/SIGBUS/SIGABRT, write the flight recorder "
                   "and recent log records to this file before dying",
                   "");
  logging::addFlags(Parser);
  ExitOnErr(Parser.parse(Argc, Argv));

  ExitOnErr(logging::configureFromFlags(Parser, Parser.getFlag("quiet")));
  bool Http = !Parser.getString("http").empty();
  if (!Parser.getString("metrics-out").empty() || Http)
    metrics::setEnabled(true);

  if (!Parser.getString("crash-dump").empty())
    ExitOnErr(crashdump::install(Parser.getString("crash-dump")));

  bool SelfProfile = Parser.getFlag("self-profile") ||
                     !Parser.getString("self-profile-json").empty() ||
                     !Parser.getString("self-trace").empty();
  if (SelfProfile) {
    telemetry::reset();
    telemetry::setEnabled(true);
  }

  // The flight recorder needs a consumer (/debug/spans or a crash
  // dump).  Ring-only unless --self-profile also wants the collect()
  // buffers: with no one draining them they would only grow.
  uint64_t FlightCapacity = Parser.getUnsigned("flight-recorder");
  if (FlightCapacity != 0 &&
      (Http || !Parser.getString("crash-dump").empty())) {
    telemetry::enableFlightRecorder(FlightCapacity);
    telemetry::setRingOnly(!SelfProfile);
    telemetry::setEnabled(true);
  }

  // The status server runs for the whole analysis: a long reduction can
  // be scraped and probed while it works.  AnalysisDone drives /readyz.
  std::atomic<bool> AnalysisDone{false};
  status::StatusServer Status;
  std::shared_ptr<core::WindowHistory> History;
  std::shared_ptr<http::StreamHub> EventsHub;
  if (Http) {
    uint64_t HistoryCap = Parser.getUnsigned("history");
    if (HistoryCap == 0)
      ExitOnErr(makeStringError("--history must be positive"));
    History = std::make_shared<core::WindowHistory>(
        static_cast<size_t>(HistoryCap));
    EventsHub = std::make_shared<http::StreamHub>();
    Status.addVar("history_windows", [History] {
      return std::to_string(History->size());
    });
    core::dash::DashboardOptions DashOpts;
    DashOpts.Title = "LIMA analysis dashboard";
    core::dash::mountDashboard(Status, History, EventsHub, DashOpts);
    Status.addHealthProbe("analyze", [] {
      return status::ProbeResult{true, "running"};
    });
    Status.addReadyProbe("analysis", [&AnalysisDone] {
      bool Done = AnalysisDone.load(std::memory_order_relaxed);
      return status::ProbeResult{Done, Done ? "complete" : "in progress"};
    });
    Status.addVar("analysis_done", [&AnalysisDone] {
      return AnalysisDone.load(std::memory_order_relaxed)
                 ? std::string("true")
                 : std::string("false");
    });
    ExitOnErr(Status.start(Parser.getString("http")));
    logging::info("status server listening",
                  {logging::field("address", Status.address())});
  }

  if (Parser.getFlag("strict") && Parser.getFlag("lenient"))
    ExitOnErr(makeStringError("--strict and --lenient are mutually "
                              "exclusive"));
  bool Lenient = Parser.getFlag("lenient");
  ParseReport Report;
  ParseOptions Parse;
  Parse.Mode = Lenient ? ParseMode::Lenient : ParseMode::Strict;
  Parse.Report = Lenient ? &Report : nullptr;

  // --threads drives ingestion too: text traces parse sharded (and
  // bit-identical to the sequential parser) on the same setting the
  // analysis stages use.
  unsigned Threads = static_cast<unsigned>(Parser.getUnsigned("threads"));
  trace::Trace Trace = ExitOnErr(
      trace::loadTraceAuto(Parser.getPositionals()[0], Parse, Threads));

  if (!Parser.getString("regions").empty() ||
      !Parser.getString("window").empty()) {
    trace::FilterOptions Filter;
    for (std::string_view Name :
         splitString(Parser.getString("regions"), ','))
      if (!Name.empty())
        Filter.Regions.emplace_back(Name);
    if (!Parser.getString("window").empty()) {
      auto Parts = splitString(Parser.getString("window"), ':');
      if (Parts.size() != 2)
        ExitOnErr(makeStringError("--window expects 'begin:end'"));
      Filter.TimeBegin = ExitOnErr(parseDouble(Parts[0]));
      Filter.TimeEnd = ExitOnErr(parseDouble(Parts[1]));
    }
    Trace = ExitOnErr(trace::filterTrace(Trace, Filter));
  }

  // Batch windowed history: the whole (already filtered) trace goes
  // through the windowed analyzer once and every window's summary is
  // retained for /api/windows and /dashboard — the post-mortem
  // counterpart of lima_monitor's live drain.  Frames are published
  // too, so an SSE client attached early sees the run play out.
  double WindowedSeconds = Parser.getDouble("windowed");
  if (History && WindowedSeconds > 0.0) {
    core::WindowedOptions WOpts;
    WOpts.WindowSeconds = WindowedSeconds;
    WOpts.Views.Kind = ExitOnErr(parseKind(Parser.getString("index")));
    WOpts.Mode = Parse.Mode;
    core::WindowedAnalyzer Analyzer(Trace.regionNames(),
                                    Trace.activityNames(), Trace.numProcs(),
                                    WOpts);
    ExitOnErr(Analyzer.addTrace(Trace));
    History->setNames(Trace.regionNames(), Trace.activityNames());
    for (const core::WindowResult &W : Analyzer.finish()) {
      core::WindowSummary S = core::WindowHistory::summarize(W);
      History->append(S);
      EventsHub->publish(core::dash::sseWindowFrame(S, Trace.regionNames(),
                                                    Trace.activityNames()));
    }
    logging::info("windowed history populated",
                  {logging::field("windows", History->size()),
                   logging::field("window_seconds", WindowedSeconds)});
  }

  core::ReductionOptions Reduction;
  Reduction.Threads = Threads;
  Reduction.Mode = Parse.Mode;
  Reduction.Report = Parse.Report;
  core::MeasurementCube Cube = ExitOnErr(core::reduceTrace(Trace, Reduction));

  // The lenient receipt goes through the log layer (stderr by default),
  // so piped table output stays clean and --quiet / --log-json apply.
  if (Lenient) {
    std::vector<logging::Field> Fields = {
        logging::field("total", Report.TotalRecords),
        logging::field("dropped", Report.DroppedRecords)};
    if (Report.anyDropped()) {
      Fields.push_back(logging::field("detail", Report.summary()));
      logging::warn("parse report", std::move(Fields));
    } else {
      logging::info("parse report", std::move(Fields));
    }
  }

  core::AnalysisOptions Options;
  Options.Views.Kind = ExitOnErr(parseKind(Parser.getString("index")));
  Options.Clusters = Parser.getUnsigned("clusters");
  Options.Threads = Threads;
  core::AnalysisResult Result = ExitOnErr(core::analyze(Cube, Options));

  raw_ostream &OS = outs();
  bool CSV = Parser.getFlag("csv");
  bool Quiet = Parser.getFlag("quiet");
  auto emit = [&](const TextTable &Table) {
    if (CSV)
      OS << Table.toCSV() << '\n';
    else {
      Table.print(OS);
      OS << '\n';
    }
  };
  if (!Quiet) {
    emit(core::makeRegionBreakdownTable(Cube, Result.Profile));
    emit(core::makeDissimilarityTable(Cube, Result.Activities));
    emit(core::makeActivityViewTable(Cube, Result.Activities));
    emit(core::makeRegionViewTable(Cube, Result.Regions));
    emit(core::makeProcessorViewTable(Cube, Result.Processors));
  }

  if (Parser.getFlag("patterns"))
    for (const core::PatternDiagram &Diagram : Result.Patterns)
      OS << core::renderPatternASCII(Diagram, Cube) << '\n';

  if (Parser.getFlag("timeline"))
    OS << trace::renderTimeline(Trace) << '\n';

  if (Parser.getFlag("traffic"))
    OS << trace::renderCommunicationMatrix(
              trace::computeTraceStats(Trace, Threads))
       << '\n';

  if (Parser.getFlag("phases")) {
    core::PhaseResult Phases = ExitOnErr(core::analyzePhases(Trace));
    OS << "per-instance dissimilarity (one sparkline per region):\n";
    for (const core::PhaseSeries &Series : Phases.Series) {
      if (Series.InstanceIndex.empty())
        continue;
      core::Trend T = core::linearTrend(Series.InstanceIndex);
      OS << "  " << leftJustify(Cube.regionName(Series.Region), 16) << ' '
         << core::renderSparkline(Series.InstanceIndex) << "  trend "
         << formatFixed(T.RelativeSlope * 100.0, 1)
         << "%/instance\n";
    }
    OS << '\n';
  }

  if (Parser.getFlag("counting")) {
    auto Counts = ExitOnErr(core::reduceTraceCounts(
        Trace, core::CountingMetric::MessagesSent));
    core::RegionView CountView = core::computeRegionView(Counts);
    OS << "message-count imbalance per region (ID_C on counts):\n";
    for (size_t I = 0; I != Counts.numRegions(); ++I)
      OS << "  " << leftJustify(Counts.regionName(I), 16) << ' '
         << formatFixed(CountView.Index[I], 5) << '\n';
    OS << '\n';
  }

  if (Parser.getFlag("waitstates")) {
    core::WaitStateReport Waits = ExitOnErr(core::analyzeWaitStates(Trace));
    OS << "late-sender wait states: " << formatFixed(Waits.TotalLateSender,
                                                     3)
       << " s across " << Waits.LateReceives << " of "
       << Waits.TotalReceives << " receives\n";
    unsigned Shown = 0;
    for (const core::ChannelWait &Channel : Waits.Channels) {
      if (++Shown > 5)
        break;
      OS << "  p" << Channel.From + 1 << " -> p" << Channel.To + 1 << ": "
         << formatFixed(Channel.Seconds, 3) << " s over "
         << Channel.Messages << " messages\n";
    }
    OS << '\n';
  }

  if (!Quiet) {
    if (Result.HasClusters)
      OS << core::describeClusters(Cube, Result.Clusters) << '\n';
    OS << core::summarizeFindings(Cube, Result.Profile, Result.Activities,
                                  Result.Regions, Result.Processors);
  }

  if (Parser.getFlag("diagnose")) {
    OS << "\nautomatic diagnosis:\n"
       << core::renderDiagnoses(Cube, core::diagnose(Cube, Result));
  }

  if (!Parser.getString("html").empty()) {
    ExitOnErr(writeFile(Parser.getString("html"),
                        core::renderHtmlReport(Cube, Result)));
    if (!Quiet)
      OS << "\nHTML report written to " << Parser.getString("html") << '\n';
  }

  if (SelfProfile) {
    telemetry::setEnabled(false);
    telemetry::Snapshot Snap = telemetry::collect();

    if (!Parser.getString("self-trace").empty())
      ExitOnErr(writeFile(Parser.getString("self-trace"),
                          telemetry::exportChromeTrace(Snap)));
    if (!Parser.getString("self-profile-json").empty())
      ExitOnErr(writeFile(Parser.getString("self-profile-json"),
                          telemetry::exportSelfProfileJson(Snap)));

    if (Parser.getFlag("self-profile") && Snap.Stages.empty()) {
      // Telemetry compiled out (LIMA_TELEMETRY=0): nothing recorded.
      OS << "self-profile: no telemetry recorded (built with "
            "LIMA_TELEMETRY=0?)\n";
    } else if (Parser.getFlag("self-profile")) {
      OS << "== self-profile: LIMA analyzed by LIMA ("
         << Snap.NumWorkers << " worker"
         << (Snap.NumWorkers == 1 ? "" : "s") << ", "
         << formatFixed(Snap.SessionWallMs, 2) << " ms session) ==\n\n";
      emit(telemetry::makeSpanSummaryTable(Snap));
      emit(telemetry::makeStageBreakdownTable(Snap));
      if (!Snap.Counters.empty())
        emit(telemetry::makeCounterTable(Snap));

      // The dogfood step: the pipeline's own per-stage, per-worker time
      // becomes a measurement cube and goes through the same analysis
      // the tool applies to foreign traces.
      core::MeasurementCube SelfCube =
          ExitOnErr(core::buildSelfProfileCube(Snap));
      core::AnalysisOptions SelfOptions;
      SelfOptions.Views.Kind = Options.Views.Kind;
      SelfOptions.Clusters = 0;
      SelfOptions.Threads = 1;
      core::AnalysisResult SelfResult =
          ExitOnErr(core::analyze(SelfCube, SelfOptions));
      emit(core::makeRegionBreakdownTable(SelfCube, SelfResult.Profile));
      emit(core::makeRegionViewTable(SelfCube, SelfResult.Regions));
      emit(core::makeProcessorViewTable(SelfCube, SelfResult.Processors));
      OS << core::summarizeFindings(SelfCube, SelfResult.Profile,
                                    SelfResult.Activities, SelfResult.Regions,
                                    SelfResult.Processors);
    }
    if (!Quiet) {
      if (!Parser.getString("self-trace").empty())
        OS << "self-trace written to " << Parser.getString("self-trace")
           << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
      if (!Parser.getString("self-profile-json").empty())
        OS << "self-profile stats written to "
           << Parser.getString("self-profile-json") << '\n';
    }
  }
  AnalysisDone.store(true, std::memory_order_relaxed);

  if (!Parser.getString("metrics-out").empty()) {
    metrics::sampleProcessMetrics();
    ExitOnErr(metrics::writeMetricsFile(Parser.getString("metrics-out")));
    if (!Quiet)
      OS << "metrics written to " << Parser.getString("metrics-out") << '\n';
  }

  OS.flush();
  uint64_t LingerMs = Parser.getUnsigned("linger-ms");
  if (Http && LingerMs != 0) {
    logging::info("lingering for inspection",
                  {logging::field("address", Status.address()),
                   logging::field("linger_ms", LingerMs)});
    std::this_thread::sleep_for(std::chrono::milliseconds(LingerMs));
  }
  Status.stop();
  return 0;
}
