//===- examples/imbalance_sweep.cpp - sensitivity to injected skew --------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Sweeps the CFD program's imbalance-injection scale and shows how the
// methodology's indices respond: the dissimilarity index of the
// pressure loop grows with the injected skew, collective wait time
// tracks it, and the tuning candidate stays stable.  A miniature
// "sensitivity study" a performance engineer would run before trusting
// a metric.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/Pipeline.h"
#include "core/TraceReduction.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;

int main(int Argc, char **Argv) {
  ExitOnError ExitOnErr("imbalance_sweep: ");

  ArgParser Parser("imbalance_sweep",
                   "sweeps the imbalance scale of the CFD program");
  Parser.addOption("procs", "number of simulated processors", "16");
  Parser.addOption("iterations", "time steps per run", "4");
  Parser.addOption("steps", "number of sweep points", "6");
  Parser.addOption("max-scale", "largest imbalance scale", "1.5");
  ExitOnErr(Parser.parse(Argc, Argv));

  unsigned Steps = static_cast<unsigned>(Parser.getUnsigned("steps"));
  double MaxScale = Parser.getDouble("max-scale");

  TextTable Table({"scale", "ID_C(pressure)", "SID_C(pressure)",
                   "coll/comp(pressure)", "top candidate"});
  Table.setAlign(4, Align::Left);

  for (unsigned Step = 0; Step != Steps; ++Step) {
    double Scale = Steps > 1
                       ? MaxScale * static_cast<double>(Step) / (Steps - 1)
                       : MaxScale;
    cfd::CfdConfig Config;
    Config.Procs = static_cast<unsigned>(Parser.getUnsigned("procs"));
    Config.Iterations =
        static_cast<unsigned>(Parser.getUnsigned("iterations"));
    Config.ImbalanceScale = Scale;

    auto Run = ExitOnErr(cfd::runCfd(Config));
    auto Cube = ExitOnErr(core::reduceTrace(Run.Trace));
    auto Result = ExitOnErr(core::analyze(Cube));

    double Comp = Cube.regionActivityTime(0, 0);
    double Coll = Cube.regionActivityTime(0, 2);
    std::string Candidate =
        Result.RegionCandidates.empty()
            ? "-"
            : Cube.regionName(Result.RegionCandidates[0].Item);
    Table.addRow({formatFixed(Scale, 2),
                  formatFixed(Result.Regions.Index[0], 5),
                  formatFixed(Result.Regions.ScaledIndex[0], 5),
                  formatFixed(Comp > 0.0 ? Coll / Comp : 0.0, 3),
                  Candidate});
  }

  Table.setTitle("Imbalance sweep of the simulated CFD program "
                 "(pressure = the paper's loop 1)");
  Table.print(outs());
  outs().flush();
  return 0;
}
