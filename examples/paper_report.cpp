//===- examples/paper_report.cpp - the paper's experiment as artifacts ----===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Materializes the paper's reconstructed experiment as shareable files:
// the full t[i][j][p] cube as CSV (the archival form the Tracefile
// Testbed of reference [3] advocates), a self-contained HTML report with
// tables, charts, pattern heat maps and the automatic findings, and a
// short console summary including the processor role groups.
//
//===----------------------------------------------------------------------===//

#include "core/CubeIO.h"
#include "core/HtmlReport.h"
#include "core/PaperDataset.h"
#include "core/ProcessorClustering.h"
#include "core/Report.h"
#include "support/CommandLine.h"
#include "support/FileUtils.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main(int Argc, char **Argv) {
  ExitOnError ExitOnErr("paper_report: ");
  ArgParser Parser("paper_report",
                   "writes the reconstructed paper experiment as CSV and "
                   "HTML artifacts");
  Parser.addOption("csv", "output path of the cube CSV",
                   "paper_cube.csv");
  Parser.addOption("html", "output path of the HTML report",
                   "paper_report.html");
  ExitOnErr(Parser.parse(Argc, Argv));

  raw_ostream &OS = outs();
  MeasurementCube Cube = paper::buildCube();
  AnalysisResult Analysis = ExitOnErr(analyze(Cube));

  ExitOnErr(saveCube(Cube, Parser.getString("csv")));
  OS << "cube CSV written to " << Parser.getString("csv") << '\n';

  HtmlReportOptions Options;
  Options.Title = "Calzarossa, Massari, Tessera (2003): reconstructed "
                  "experiment";
  ExitOnErr(writeFile(Parser.getString("html"),
                      renderHtmlReport(Cube, Analysis, Options)));
  OS << "HTML report written to " << Parser.getString("html") << "\n\n";

  OS << summarizeFindings(Cube, Analysis.Profile, Analysis.Activities,
                          Analysis.Regions, Analysis.Processors);

  ProcessorClusteringOptions ClusterOptions;
  ClusterOptions.MaxK = 4;
  auto Clusters = ExitOnErr(clusterProcessors(Cube, ClusterOptions));
  OS << "\nprocessor role groups (k-means on behavioral shares, K by "
        "silhouette):\n";
  for (size_t G = 0; G != Clusters.Groups.size(); ++G) {
    OS << "  group " << G << ":";
    for (unsigned Proc : Clusters.Groups[G])
      OS << " p" << Proc + 1;
    OS << '\n';
  }
  OS.flush();
  return 0;
}
