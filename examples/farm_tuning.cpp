//===- examples/farm_tuning.cpp - a tuning session, start to finish -------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A complete tuning session in the paper's spirit: run a master-worker
// task farm with a *coarse* task grain, let the diagnosis engine point
// at the load imbalance, apply the suggested fix (refine the task
// grain), and verify that the indices collapse.  Shows the methodology
// driving an actual optimization decision rather than just reporting.
//
//===----------------------------------------------------------------------===//

#include "apps/gallery/MasterWorker.h"
#include "core/Diagnosis.h"
#include "core/Pipeline.h"
#include "core/TraceReduction.h"
#include "stats/Dispersion.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;

namespace {

struct FarmOutcome {
  double WorkerIndex;   // Dispersion of worker computation times.
  double Makespan;      // Virtual completion time.
  core::MeasurementCube Cube;
  std::vector<core::Diagnosis> Findings;
};

FarmOutcome runFarm(unsigned Tasks, double MeanTaskSeconds) {
  ExitOnError ExitOnErr("farm_tuning: ");
  gallery::MasterWorkerConfig Config;
  Config.Procs = 9;
  Config.Tasks = Tasks;
  Config.MeanTaskSeconds = MeanTaskSeconds;
  Config.TaskSizeSigma = 1.0;

  trace::Trace Trace = ExitOnErr(gallery::runMasterWorker(Config));
  core::MeasurementCube Cube = ExitOnErr(core::reduceTrace(Trace));
  core::AnalysisResult Analysis = ExitOnErr(core::analyze(Cube));

  std::vector<double> WorkerComp;
  for (unsigned P = 1; P != Config.Procs; ++P)
    WorkerComp.push_back(Cube.time(0, 0, P));

  std::vector<core::Diagnosis> Findings = core::diagnose(Cube, Analysis);
  FarmOutcome Outcome{stats::imbalanceIndex(WorkerComp),
                      Cube.programTime(), std::move(Cube),
                      std::move(Findings)};
  return Outcome;
}

} // namespace

int main(int Argc, char **Argv) {
  ExitOnError ExitOnErr("farm_tuning: ");
  ArgParser Parser("farm_tuning",
                   "diagnoses and fixes a coarse-grained task farm");
  Parser.addOption("work", "total work to process, virtual seconds", "9.6");
  ExitOnErr(Parser.parse(Argc, Argv));
  double TotalWork = Parser.getDouble("work");

  raw_ostream &OS = outs();
  OS << "step 1: run the farm with a coarse grain (16 big tasks)\n\n";
  FarmOutcome Coarse = runFarm(16, TotalWork / 16);
  OS << "  worker compute dispersion: "
     << formatFixed(Coarse.WorkerIndex, 4) << '\n';
  OS << "  makespan: " << formatFixed(Coarse.Makespan, 3) << " s\n\n";
  OS << "  diagnosis says:\n"
     << core::renderDiagnoses(Coarse.Cube, Coarse.Findings) << '\n';

  OS << "step 2: apply the remedy — same total work, 512 small tasks\n\n";
  FarmOutcome Fine = runFarm(512, TotalWork / 512);
  OS << "  worker compute dispersion: " << formatFixed(Fine.WorkerIndex, 4)
     << " (was " << formatFixed(Coarse.WorkerIndex, 4) << ")\n";
  OS << "  makespan: " << formatFixed(Fine.Makespan, 3) << " s (was "
     << formatFixed(Coarse.Makespan, 3) << " s)\n\n";

  double Speedup = Coarse.Makespan / Fine.Makespan;
  OS << "verdict: refining the task grain cut the dispersion by "
     << formatFixed(Coarse.WorkerIndex / std::max(Fine.WorkerIndex, 1e-9),
                    1)
     << "x and the makespan by " << formatFixed(Speedup, 2)
     << "x — the tuning loop (detect -> localize -> assess -> repair -> "
        "verify) the paper's Section 2 describes, executed end to end.\n";
  OS.flush();
  return 0;
}
