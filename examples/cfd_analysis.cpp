//===- examples/cfd_analysis.cpp - the paper's experiment, end to end -----===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Re-enacts the paper's Section 4 end to end: run the message-passing
// CFD program on the simulated 16-processor machine, collect the trace,
// reduce it to the measurement cube, and print the full analysis —
// Table 1-style breakdown, dissimilarity indices, views, patterns,
// clustering and the tuning-candidate summary.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/Pipeline.h"
#include "core/Report.h"
#include "core/TraceReduction.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/raw_ostream.h"
#include "trace/BinaryIO.h"
#include "trace/TraceIO.h"

using namespace lima;

int main(int Argc, char **Argv) {
  ExitOnError ExitOnErr("cfd_analysis: ");

  ArgParser Parser("cfd_analysis",
                   "runs the simulated CFD program and analyzes its load "
                   "imbalance");
  Parser.addOption("procs", "number of simulated processors", "16");
  Parser.addOption("iterations", "time steps to simulate", "10");
  Parser.addOption("scale", "imbalance injection scale (0 = balanced)",
                   "1.0");
  Parser.addOption("save-trace", "write the trace to this path", "");
  Parser.addFlag("binary", "write the trace in the LIMB binary format");
  ExitOnErr(Parser.parse(Argc, Argv));

  cfd::CfdConfig Config;
  Config.Procs = static_cast<unsigned>(Parser.getUnsigned("procs"));
  Config.Iterations =
      static_cast<unsigned>(Parser.getUnsigned("iterations"));
  Config.ImbalanceScale = Parser.getDouble("scale");

  raw_ostream &OS = outs();
  OS << "simulating CFD on " << Config.Procs << " processors, "
     << Config.Iterations << " iterations, imbalance scale "
     << Config.ImbalanceScale << "...\n";

  cfd::CfdResult Run = ExitOnErr(cfd::runCfd(Config));
  OS << "final residual: " << Run.FinalResidual << " ("
     << Run.Trace.numEvents() << " trace events)\n\n";

  if (!Parser.getString("save-trace").empty()) {
    const std::string &Path = Parser.getString("save-trace");
    if (Parser.getFlag("binary"))
      ExitOnErr(trace::saveTraceBinary(Run.Trace, Path));
    else
      ExitOnErr(trace::saveTrace(Run.Trace, Path));
    OS << "trace written to " << Path << "\n\n";
  }

  core::MeasurementCube Cube = ExitOnErr(core::reduceTrace(Run.Trace));
  core::AnalysisResult Result = ExitOnErr(core::analyze(Cube));

  core::makeRegionBreakdownTable(Cube, Result.Profile).print(OS);
  OS << '\n';
  core::makeDissimilarityTable(Cube, Result.Activities).print(OS);
  OS << '\n';
  core::makeActivityViewTable(Cube, Result.Activities).print(OS);
  OS << '\n';
  core::makeRegionViewTable(Cube, Result.Regions).print(OS);
  OS << '\n';
  core::makeProcessorViewTable(Cube, Result.Processors).print(OS);
  OS << '\n';
  for (const core::PatternDiagram &Diagram : Result.Patterns)
    OS << core::renderPatternASCII(Diagram, Cube) << '\n';
  if (Result.HasClusters) {
    OS << "region clusters (k-means, k=2):\n"
       << core::describeClusters(Cube, Result.Clusters) << '\n';
  }
  OS << core::summarizeFindings(Cube, Result.Profile, Result.Activities,
                                Result.Regions, Result.Processors);
  OS.flush();
  return 0;
}
