//===- examples/make_testbed.cpp - build a local trace repository ---------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Builds a miniature "Tracefile Testbed" (the community trace repository
// of the paper's reference [3], which the authors co-created): every
// workload in the gallery is simulated, its trace saved in the compact
// binary format, and an index CSV written with the descriptive metadata
// an analyst would search by — program, processors, events, span,
// message volume, heaviest region and the analysis' top candidate.
//
//   make_testbed --dir ./testbed
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "apps/gallery/BspStencil.h"
#include "apps/gallery/Decomposition.h"
#include "apps/gallery/MasterWorker.h"
#include "apps/gallery/ParticleExchange.h"
#include "core/Pipeline.h"
#include "core/TraceReduction.h"
#include "support/CSV.h"
#include "support/CommandLine.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/raw_ostream.h"
#include "trace/BinaryIO.h"
#include "trace/TraceStats.h"

using namespace lima;

namespace {

struct Entry {
  std::string Name;
  trace::Trace Trace;
};

std::vector<Entry> buildTraces() {
  ExitOnError ExitOnErr("make_testbed: ");
  std::vector<Entry> Entries;

  cfd::CfdConfig Cfd;
  Cfd.Iterations = 4;
  Entries.push_back({"cfd-paper-shape", ExitOnErr(cfd::runCfd(Cfd)).Trace});

  cfd::CfdConfig Balanced = Cfd;
  Balanced.ImbalanceScale = 0.0;
  Entries.push_back(
      {"cfd-balanced", ExitOnErr(cfd::runCfd(Balanced)).Trace});

  gallery::MasterWorkerConfig Farm;
  Farm.Tasks = 300;
  Entries.push_back(
      {"task-farm", ExitOnErr(gallery::runMasterWorker(Farm))});

  gallery::BspStencilConfig Bsp;
  Bsp.Skew = 0.5;
  Entries.push_back(
      {"bsp-stencil-skewed", ExitOnErr(gallery::runBspStencil(Bsp))});

  gallery::ParticleExchangeConfig Particles;
  Particles.Steps = 10;
  Entries.push_back({"particles-migrating",
                     ExitOnErr(gallery::runParticleExchange(Particles))});

  gallery::DecompositionConfig Blocks;
  Blocks.Layout = gallery::Decomposition::Blocks2D;
  Blocks.GridN = 512;
  Entries.push_back({"stencil-2d-blocks",
                     ExitOnErr(gallery::runDecomposition(Blocks))});
  return Entries;
}

} // namespace

int main(int Argc, char **Argv) {
  ExitOnError ExitOnErr("make_testbed: ");
  ArgParser Parser("make_testbed",
                   "simulates the workload gallery and archives the "
                   "traces with an index CSV");
  Parser.addOption("dir", "output directory (must exist)", ".");
  ExitOnErr(Parser.parse(Argc, Argv));
  std::string Dir = Parser.getString("dir");

  raw_ostream &OS = outs();
  std::vector<std::vector<std::string>> Index;
  Index.push_back({"name", "file", "procs", "events", "span-s", "messages",
                   "bytes", "heaviest-region", "top-candidate", "SID_C"});

  for (Entry &E : buildTraces()) {
    std::string File = E.Name + ".limb";
    ExitOnErr(trace::saveTraceBinary(E.Trace, Dir + "/" + File));

    trace::TraceStats Stats = trace::computeTraceStats(E.Trace);
    auto Cube = ExitOnErr(core::reduceTrace(E.Trace));
    auto Analysis = ExitOnErr(core::analyze(Cube));
    size_t Candidate = Analysis.Regions.MostImbalancedScaled;
    Index.push_back(
        {E.Name, File, std::to_string(E.Trace.numProcs()),
         std::to_string(Stats.TotalEvents), formatFixed(Stats.Span, 3),
         std::to_string(Stats.TotalMessages),
         std::to_string(Stats.TotalBytes),
         Cube.regionName(Analysis.Profile.HeaviestRegion),
         Cube.regionName(Candidate),
         formatFixed(Analysis.Regions.ScaledIndex[Candidate], 5)});
    OS << "archived " << File << " (" << Stats.TotalEvents
       << " events)\n";
  }

  ExitOnErr(writeFile(Dir + "/index.csv", writeCSV(Index)));
  OS << "\nindex written to " << Dir << "/index.csv\n";
  OS << "re-analyze any entry with: lima_analyze " << Dir
     << "/<file>.limb --diagnose\n";
  OS.flush();
  return 0;
}
