//===- examples/quickstart.cpp - five-minute tour of LIMA -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Builds a measurement cube by hand (as a profiling layer would), runs
// the full load-imbalance analysis and prints the reports.  Start here.
//
//===----------------------------------------------------------------------===//

#include "core/Measurement.h"
#include "core/Pipeline.h"
#include "core/Report.h"
#include "support/Error.h"
#include "support/raw_ostream.h"

using namespace lima;

int main() {
  ExitOnError ExitOnErr("quickstart: ");

  // A toy program: three code regions, two activities, four processors.
  // Region "solver" is compute-heavy and skewed toward processor 3;
  // "exchange" is communication-bound; "io" is tiny.
  core::MeasurementCube Cube({"solver", "exchange", "io"},
                             {"computation", "communication"}, 4);
  const double Solver[4] = {10.0, 10.5, 9.5, 16.0};   // Skewed.
  const double SolverComm[4] = {1.0, 1.1, 0.9, 1.0};  // Balanced.
  const double Exchange[4] = {2.0, 2.0, 2.0, 2.0};
  const double ExchangeComm[4] = {6.0, 5.0, 7.0, 6.0};
  const double Io[4] = {0.2, 0.1, 0.15, 0.05};
  for (unsigned P = 0; P != 4; ++P) {
    Cube.at(0, 0, P) = Solver[P];
    Cube.at(0, 1, P) = SolverComm[P];
    Cube.at(1, 0, P) = Exchange[P];
    Cube.at(1, 1, P) = ExchangeComm[P];
    Cube.at(2, 0, P) = Io[P];
  }
  // The regions cover 90% of the program; tell the cube the real total.
  Cube.setProgramTime(Cube.instrumentedTotal() / 0.9);

  // One call runs the whole top-down methodology.
  core::AnalysisResult Result = ExitOnErr(core::analyze(Cube));

  raw_ostream &OS = outs();
  core::makeRegionBreakdownTable(Cube, Result.Profile).print(OS);
  OS << '\n';
  core::makeDissimilarityTable(Cube, Result.Activities).print(OS);
  OS << '\n';
  core::makeActivityViewTable(Cube, Result.Activities).print(OS);
  OS << '\n';
  core::makeRegionViewTable(Cube, Result.Regions).print(OS);
  OS << '\n';
  core::makeProcessorViewTable(Cube, Result.Processors).print(OS);
  OS << '\n';

  for (const core::PatternDiagram &Diagram : Result.Patterns)
    OS << core::renderPatternASCII(Diagram, Cube) << '\n';

  OS << core::summarizeFindings(Cube, Result.Profile, Result.Activities,
                                Result.Regions, Result.Processors);
  OS.flush();
  return 0;
}
