//===- examples/self_profile_demo.cpp - LIMA dogfooding itself ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The observability layer end to end: run the paper's CFD experiment
// with telemetry recording, convert LIMA's own per-stage, per-worker
// time into a measurement cube, and push that cube through the same
// analysis the tool applies to foreign traces.  The demo asserts the
// dogfooded cube is internally consistent — every stage the pipeline
// spent wall time in is covered, and the reconstructed program time is
// at least the instrumented pipeline time — so it doubles as an
// integration check for the telemetry layer.
//
//   self_profile_demo [--procs 16] [--iterations 10] [--threads 0]
//                     [--trace-out self_profile.json]
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/Pipeline.h"
#include "core/Report.h"
#include "core/SelfProfile.h"
#include "core/TraceReduction.h"
#include "support/CommandLine.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/Telemetry.h"
#include "support/TraceEventExport.h"
#include "support/raw_ostream.h"
#include <cmath>

using namespace lima;

int main(int Argc, char **Argv) {
  ExitOnError ExitOnErr("self_profile_demo: ");

  ArgParser Parser("self_profile_demo",
                   "runs the CFD experiment under telemetry and feeds "
                   "LIMA's own execution profile through its analysis");
  Parser.addOption("procs", "number of simulated processors", "16");
  Parser.addOption("iterations", "time steps to simulate", "10");
  Parser.addOption("threads",
                   "worker threads (0 = all hardware threads)", "0");
  Parser.addOption("trace-out",
                   "also write a Chrome trace-event JSON here", "");
  ExitOnErr(Parser.parse(Argc, Argv));

  cfd::CfdConfig Config;
  Config.Procs = static_cast<unsigned>(Parser.getUnsigned("procs"));
  Config.Iterations =
      static_cast<unsigned>(Parser.getUnsigned("iterations"));
  unsigned Threads = static_cast<unsigned>(Parser.getUnsigned("threads"));

  raw_ostream &OS = outs();
  telemetry::reset();
  telemetry::setEnabled(true);
  uint64_t PipelineStartNs = telemetry::nowNs();

  cfd::CfdResult Run = ExitOnErr(cfd::runCfd(Config));
  core::ReductionOptions Reduction;
  Reduction.Threads = Threads;
  core::MeasurementCube Cube =
      ExitOnErr(core::reduceTrace(Run.Trace, Reduction));
  core::AnalysisOptions Options;
  Options.Threads = Threads;
  core::AnalysisResult Result = ExitOnErr(core::analyze(Cube, Options));
  (void)Result;

  double PipelineMs =
      static_cast<double>(telemetry::nowNs() - PipelineStartNs) / 1e6;
  telemetry::setEnabled(false);
  telemetry::Snapshot Snap = telemetry::collect();

  OS << "CFD analysis pipeline: " << formatFixed(PipelineMs, 2)
     << " ms wall, " << Snap.Events.size() << " telemetry events across "
     << Snap.NumWorkers << " worker(s)\n\n";
  telemetry::makeSpanSummaryTable(Snap).print(OS);
  OS << '\n';
  telemetry::makeStageBreakdownTable(Snap).print(OS);
  OS << '\n';

  if (Snap.Stages.empty()) {
    // Telemetry compiled out: nothing to dogfood, and nothing to check.
    OS << "telemetry is compiled out (LIMA_TELEMETRY=0); no self-profile "
          "to analyze\n";
    OS.flush();
    return 0;
  }

  core::MeasurementCube Self = ExitOnErr(core::buildSelfProfileCube(Snap));
  core::AnalysisOptions SelfOptions;
  SelfOptions.Clusters = 0;
  SelfOptions.Threads = 1;
  core::AnalysisResult SelfResult =
      ExitOnErr(core::analyze(Self, SelfOptions));

  OS << "LIMA's own execution, through LIMA's analysis:\n\n";
  core::makeRegionBreakdownTable(Self, SelfResult.Profile).print(OS);
  OS << '\n';
  core::makeRegionViewTable(Self, SelfResult.Regions).print(OS);
  OS << '\n';
  core::makeProcessorViewTable(Self, SelfResult.Processors).print(OS);
  OS << '\n';
  OS << core::summarizeFindings(Self, SelfResult.Profile,
                                SelfResult.Activities, SelfResult.Regions,
                                SelfResult.Processors);

  // The integration check: the dogfooded cube must reproduce the
  // pipeline's measured wall time.  Stage walls cover the instrumented
  // pipeline stages (reduce and analyze; the CFD simulation runs before
  // the first stage), so the cube's program time must account for at
  // least the sum of stage walls and never exceed the measured pipeline
  // by more than timer jitter.
  double StageWallMs = 0.0;
  for (const telemetry::StageStats &Stage : Snap.Stages)
    StageWallMs += Stage.WallMs;
  double ProgramMs = Self.programTime() * 1e3;
  if (ProgramMs + 1e-6 < StageWallMs ||
      ProgramMs > 1.5 * std::max(PipelineMs, Snap.SessionWallMs) + 1.0)
    ExitOnErr(makeStringError(
        "self-profile cube does not reproduce the pipeline wall time: "
        "program %s ms, stages %s ms, pipeline %s ms",
        formatFixed(ProgramMs, 3).c_str(),
        formatFixed(StageWallMs, 3).c_str(),
        formatFixed(PipelineMs, 3).c_str()));
  OS << "\nself-profile consistency: program "
     << formatFixed(ProgramMs, 2) << " ms covers stages "
     << formatFixed(StageWallMs, 2) << " ms within pipeline "
     << formatFixed(PipelineMs, 2) << " ms\n";

  if (!Parser.getString("trace-out").empty()) {
    ExitOnErr(writeFile(Parser.getString("trace-out"),
                        telemetry::exportChromeTrace(Snap)));
    OS << "Chrome trace written to " << Parser.getString("trace-out")
       << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
  }
  OS.flush();
  return 0;
}
