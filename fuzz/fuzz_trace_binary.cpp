//===- fuzz/fuzz_trace_binary.cpp - LIMB binary parser fuzz target --------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "FuzzOptions.h"
#include "trace/BinaryIO.h"
#include <cstddef>
#include <cstdint>
#include <string_view>

using namespace lima;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string_view Bytes(reinterpret_cast<const char *>(Data), Size);

  auto Strict = trace::parseTraceBinary(Bytes, fuzz::strictOptions());
  Strict.takeError().consume();

  ParseReport Report;
  auto Lenient = trace::parseTraceBinary(Bytes, fuzz::lenientOptions(Report));
  Lenient.takeError().consume();
  return 0;
}
