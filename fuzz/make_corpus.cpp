//===- fuzz/make_corpus.cpp - Seed corpus generator -----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes the generated half of the fuzz seed corpus into
/// <outdir>/<target>/.  Valid seeds come from the production writers, so
/// they track the formats automatically; malformed seeds are
/// deterministic mutations of the valid ones (truncations, corrupted
/// magic/counts) that steer the fuzzers toward the error paths from the
/// start.  Hand-written malformed cases live in fuzz/corpus/ in the
/// source tree; this tool covers what is awkward to check in — above
/// all the binary format.
///
//===----------------------------------------------------------------------===//

#include "core/CubeIO.h"
#include "core/TraceReduction.h"
#include "support/CSV.h"
#include "support/Checksum.h"
#include "trace/BinaryIO.h"
#include "trace/TraceIO.h"
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

using namespace lima;
using trace::Event;
using trace::EventKind;
using trace::Trace;

namespace {

/// Two processors, nested regions, activities and one message pair —
/// touches every record kind each format can encode.
Trace makeSeedTrace() {
  Trace T(2);
  uint32_t Main = T.addRegion("main");
  uint32_t Loop = T.addRegion("loop");
  uint32_t Comp = T.addActivity("computation");
  uint32_t P2P = T.addActivity("p2p");

  T.append({0.0, 0, EventKind::RegionEnter, Main, 0});
  T.append({0.1, 0, EventKind::RegionEnter, Loop, 0});
  T.append({0.1, 0, EventKind::ActivityBegin, Comp, 0});
  T.append({1.0, 0, EventKind::ActivityEnd, Comp, 0});
  T.append({1.0, 0, EventKind::ActivityBegin, P2P, 0});
  T.append({1.0, 0, EventKind::MessageSend, 1, 64});
  T.append({1.2, 0, EventKind::ActivityEnd, P2P, 0});
  T.append({1.2, 0, EventKind::RegionExit, Loop, 0});
  T.append({1.3, 0, EventKind::RegionExit, Main, 0});

  T.append({0.0, 1, EventKind::RegionEnter, Main, 0});
  T.append({0.2, 1, EventKind::RegionEnter, Loop, 0});
  T.append({0.2, 1, EventKind::ActivityBegin, P2P, 0});
  T.append({1.1, 1, EventKind::MessageRecv, 0, 64});
  T.append({1.4, 1, EventKind::ActivityEnd, P2P, 0});
  T.append({1.4, 1, EventKind::RegionExit, Loop, 0});
  T.append({1.5, 1, EventKind::RegionExit, Main, 0});
  return T;
}

constexpr size_t FooterSize = 24;

/// Reads the footer's u64 index-offset field of a LIMB v2 buffer.
size_t indexStart(const std::string &V2) {
  uint64_t Offset;
  std::memcpy(&Offset, V2.data() + V2.size() - FooterSize, sizeof(Offset));
  return static_cast<size_t>(Offset);
}

uint32_t readU32(const std::string &V2, size_t At) {
  uint32_t V;
  std::memcpy(&V, V2.data() + At, sizeof(V));
  return V;
}

/// Recomputes the footer's index CRC after an index mutation, so the
/// seed exercises the semantic index validation, not the CRC gate.
void resignIndex(std::string &V2) {
  std::string_view Index(V2.data() + indexStart(V2),
                         V2.size() - FooterSize - indexStart(V2));
  uint32_t Crc = crc32(Index);
  std::memcpy(V2.data() + V2.size() - FooterSize + 12, &Crc, sizeof(Crc));
}

bool write(const std::filesystem::path &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.string().c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: %s <output-directory>\n", Argv[0]);
    return 1;
  }
  namespace fs = std::filesystem;
  fs::path OutDir(Argv[1]);
  std::error_code EC;
  for (const char *Target : {"fuzz_trace_text", "fuzz_trace_binary",
                             "fuzz_cube", "fuzz_csv"}) {
    fs::create_directories(OutDir / Target, EC);
    if (EC) {
      std::fprintf(stderr, "error: cannot create %s: %s\n",
                   (OutDir / Target).string().c_str(),
                   EC.message().c_str());
      return 1;
    }
  }
  bool Ok = true;

  Trace T = makeSeedTrace();

  // --- LIMATRACE text -------------------------------------------------
  std::string Text = trace::writeTraceText(T);
  fs::path TextDir = OutDir / "fuzz_trace_text";
  Ok &= write(TextDir / "valid.trace", Text);
  Ok &= write(TextDir / "truncated.trace",
              Text.substr(0, Text.size() * 2 / 3));
  Ok &= write(TextDir / "bad-magic.trace", "LIMATRAC" + Text.substr(8));
  Ok &= write(TextDir / "huge-procs.trace",
              "LIMATRACE 1\nprocs 99999999\n");

  // --- LIMB binary ----------------------------------------------------
  std::string Binary = trace::writeTraceBinary(T);
  fs::path BinDir = OutDir / "fuzz_trace_binary";
  Ok &= write(BinDir / "valid.limb", Binary);
  Ok &= write(BinDir / "truncated.limb",
              Binary.substr(0, Binary.size() / 2));
  std::string BadMagic = Binary;
  BadMagic[0] = 'X';
  Ok &= write(BinDir / "bad-magic.limb", BadMagic);
  // Corrupt the version word (bytes 4..7, little-endian u32).
  std::string BadVersion = Binary;
  BadVersion[4] = '\x7f';
  Ok &= write(BinDir / "bad-version.limb", BadVersion);
  // An overlong varint: magic/version/counts, then garbage continuation
  // bytes where the last event's payload would be.  Pinned to v1 — the
  // v2 payload is self-framing, so the same mutation there is just a
  // damaged index that salvages cleanly.
  std::string V1 = trace::writeTraceBinaryV1(T);
  Ok &= write(BinDir / "valid-v1.limb", V1);
  std::string Overlong = V1.substr(0, V1.size() - 1);
  Overlong.append(16, '\xff');
  Ok &= write(BinDir / "overlong-varint.limb", Overlong);

  // --- LIMB v2 block-index mutations ----------------------------------
  // A tiny block size forces several index entries from the 16-event
  // seed, so every mutation below has structure to chew on.  Each seed
  // lands in a distinct row of the fallback matrix: index damage keeps
  // the self-framed payload readable (sequential salvage), while
  // payload damage under a valid index is caught by the block CRC.
  trace::BinaryWriteOptions SmallBlocks;
  SmallBlocks.BlockEvents = 5;
  std::string V2 = trace::writeTraceBinary(T, SmallBlocks);
  Ok &= write(BinDir / "valid-v2.limb", V2);

  // Footer intact, index region clipped: offsets no longer line up.
  Ok &= write(BinDir / "truncated-index.limb",
              V2.substr(0, indexStart(V2) + 8) + V2.substr(V2.size() - 8));

  // Footer points past the end of the file.
  std::string PastEof = V2;
  uint64_t Bogus = PastEof.size() + 4096;
  std::memcpy(PastEof.data() + PastEof.size() - FooterSize, &Bogus,
              sizeof(Bogus));
  Ok &= write(BinDir / "index-offset-past-eof.limb", PastEof);

  // First block's first run claims one extra event; CRC re-signed so
  // the run-sum consistency check (not the CRC) rejects the index.
  // Entry layout: u64 offset, u32 bytes, u32 events, f64 first, f64
  // last, u32 crc, u32 runCount, then u32 proc + u32 count per run.
  std::string CountMismatch = V2;
  size_t Entry0 = indexStart(V2) + 4;
  size_t Run0Count = Entry0 + 40 + 4;
  uint32_t Count = readU32(CountMismatch, Run0Count) + 1;
  std::memcpy(CountMismatch.data() + Run0Count, &Count, sizeof(Count));
  resignIndex(CountMismatch);
  Ok &= write(BinDir / "count-mismatch.limb", CountMismatch);

  // Second block's offset rewound onto the first: blocks overlap
  // instead of tiling the payload.
  std::string Overlap = V2;
  size_t Entry1 = Entry0 + 40 + 8 * readU32(V2, Entry0 + 36);
  uint64_t Block0Offset;
  std::memcpy(&Block0Offset, V2.data() + Entry0, sizeof(Block0Offset));
  std::memcpy(Overlap.data() + Entry1, &Block0Offset, sizeof(Block0Offset));
  resignIndex(Overlap);
  Ok &= write(BinDir / "overlapping-blocks.limb", Overlap);

  // Valid index, one payload byte flipped: the per-block CRC catches
  // it (strict error, lenient whole-block drop).
  std::string BadCrc = V2;
  BadCrc[indexStart(V2) / 2] ^= 0x40;
  Ok &= write(BinDir / "bad-block-crc.limb", BadCrc);

  // --- LIMB v2 streamed crash prefixes --------------------------------
  // The streaming writer's crash contract: a file cut at any point must
  // salvage exactly the flushed prefix.  Three cuts steer the fuzzer at
  // the interesting shapes — mid-payload (partial block dropped),
  // payload complete but index missing (fallback walk recovers all),
  // and a clipped index (footer gone with it).
  fs::path StreamedPath = BinDir / "valid-streamed.limb";
  if (Error Err = trace::StreamingBinaryWriter::writeTrace(
          T, StreamedPath.string(), SmallBlocks)) {
    std::fprintf(stderr, "error: streamed seed: %s\n",
                 Err.message().c_str());
    return 1;
  }
  std::ifstream StreamedIn(StreamedPath, std::ios::binary);
  std::string Streamed((std::istreambuf_iterator<char>(StreamedIn)),
                       std::istreambuf_iterator<char>());
  Ok &= write(BinDir / "streamed-crash-midblock.limb",
              Streamed.substr(0, indexStart(Streamed) / 2));
  Ok &= write(BinDir / "streamed-crash-noindex.limb",
              Streamed.substr(0, indexStart(Streamed)));
  Ok &= write(BinDir / "streamed-crash-midindex.limb",
              Streamed.substr(0, Streamed.size() - FooterSize - 3));

  // --- Cube CSV -------------------------------------------------------
  core::ReductionOptions Reduction;
  Reduction.Threads = 1;
  auto CubeOrErr = core::reduceTrace(T, Reduction);
  if (!CubeOrErr) {
    std::fprintf(stderr, "error: seed reduction failed: %s\n",
                 CubeOrErr.takeError().message().c_str());
    return 1;
  }
  std::string CubeText = core::writeCubeCSV(*CubeOrErr);
  fs::path CubeDir = OutDir / "fuzz_cube";
  Ok &= write(CubeDir / "valid.cube.csv", CubeText);
  Ok &= write(CubeDir / "truncated.cube.csv",
              CubeText.substr(0, CubeText.size() / 2));
  Ok &= write(CubeDir / "no-header.cube.csv",
              CubeText.substr(CubeText.find('\n') + 1));

  // --- Plain CSV ------------------------------------------------------
  std::string Csv = writeCSV({{"name", "value"},
                              {"plain", "1"},
                              {"quoted,comma", "2"},
                              {"embedded \"quote\"", "3"},
                              {"multi\nline", "4"}});
  fs::path CsvDir = OutDir / "fuzz_csv";
  Ok &= write(CsvDir / "valid.csv", Csv);
  Ok &= write(CsvDir / "unterminated-quote.csv", "a,\"open quote\nb,2\n");
  Ok &= write(CsvDir / "stray-quote.csv", "a,b\"c,d\n");

  if (!Ok)
    return 1;
  std::printf("corpus written to %s\n", OutDir.string().c_str());
  return 0;
}
