//===- fuzz/fuzz_csv.cpp - RFC-4180 CSV parser fuzz target ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "FuzzOptions.h"
#include "support/CSV.h"
#include <cstddef>
#include <cstdint>
#include <string_view>

using namespace lima;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string_view Text(reinterpret_cast<const char *>(Data), Size);

  auto Strict = parseCSV(Text, fuzz::strictOptions());
  Strict.takeError().consume();

  ParseReport Report;
  auto Lenient = parseCSV(Text, fuzz::lenientOptions(Report));
  Lenient.takeError().consume();
  return 0;
}
