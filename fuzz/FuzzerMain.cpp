//===- fuzz/FuzzerMain.cpp - Standalone corpus replay driver --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// main() for fuzz targets built without libFuzzer: feeds every file (or
/// every file inside every directory) named on the command line to
/// LLVMFuzzerTestOneInput.  This turns the corpus into a plain ctest
/// regression suite and keeps the targets exercised under compilers that
/// ship no fuzzer runtime (GCC).  Inputs are replayed in sorted order so
/// failures reproduce deterministically.
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size);

int main(int Argc, char **Argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> Inputs;
  for (int I = 1; I < Argc; ++I) {
    fs::path Path(Argv[I]);
    std::error_code EC;
    if (fs::is_directory(Path, EC)) {
      for (const auto &Entry : fs::directory_iterator(Path, EC))
        if (Entry.is_regular_file())
          Inputs.push_back(Entry.path());
    } else if (fs::is_regular_file(Path, EC)) {
      Inputs.push_back(Path);
    } else {
      // A missing corpus directory is not an error: the generated half
      // of the corpus only exists after make_corpus has run.
      std::fprintf(stderr, "note: skipping %s (not found)\n",
                   Path.string().c_str());
    }
  }
  std::sort(Inputs.begin(), Inputs.end());

  for (const fs::path &Path : Inputs) {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "error: cannot read %s\n", Path.string().c_str());
      return 1;
    }
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t *>(Bytes.data()),
                           Bytes.size());
    std::printf("ok %s (%zu bytes)\n", Path.string().c_str(), Bytes.size());
  }
  if (Inputs.empty()) {
    std::fprintf(stderr, "error: no corpus inputs found\n");
    return 1;
  }
  std::printf("replayed %zu inputs\n", Inputs.size());
  return 0;
}
