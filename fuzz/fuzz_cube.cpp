//===- fuzz/fuzz_cube.cpp - Cube CSV parser fuzz target -------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "FuzzOptions.h"
#include "core/CubeIO.h"
#include <cstddef>
#include <cstdint>
#include <string_view>

using namespace lima;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string_view Text(reinterpret_cast<const char *>(Data), Size);

  auto Strict = core::parseCubeCSV(Text, fuzz::strictOptions());
  Strict.takeError().consume();

  ParseReport Report;
  auto Lenient = core::parseCubeCSV(Text, fuzz::lenientOptions(Report));
  Lenient.takeError().consume();
  return 0;
}
