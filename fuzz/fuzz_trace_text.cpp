//===- fuzz/fuzz_trace_text.cpp - LIMATRACE text parser fuzz target -------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "FuzzOptions.h"
#include "trace/TraceIO.h"
#include <cstddef>
#include <cstdint>
#include <string_view>

using namespace lima;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string_view Text(reinterpret_cast<const char *>(Data), Size);

  auto Strict = trace::parseTraceText(Text, fuzz::strictOptions());
  Strict.takeError().consume();

  ParseReport Report;
  auto Lenient = trace::parseTraceText(Text, fuzz::lenientOptions(Report));
  Lenient.takeError().consume();
  return 0;
}
