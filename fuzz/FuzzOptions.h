//===- fuzz/FuzzOptions.h - Shared fuzz-target parse options ----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ParseOptions shared by the fuzz targets.  Limits are pulled far below
/// the defaults so hostile headers cannot make a target spend its budget
/// allocating instead of parsing, and so OOM never masquerades as a
/// finding.  Every target runs strict first and then lenient: strict
/// exercises first-error propagation, lenient the skip-and-resync paths.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_FUZZ_FUZZOPTIONS_H
#define LIMA_FUZZ_FUZZOPTIONS_H

#include "support/ParseLimits.h"

namespace lima {
namespace fuzz {

inline ParseLimits fuzzLimits() {
  ParseLimits Limits;
  Limits.MaxEvents = 1u << 16;
  Limits.MaxProcs = 1u << 10;
  Limits.MaxRegions = 1u << 10;
  Limits.MaxActivities = 1u << 10;
  Limits.MaxNameBytes = 1u << 10;
  Limits.MaxLineBytes = 1u << 12;
  Limits.MaxAllocBytes = 1ull << 24;
  return Limits;
}

inline ParseOptions strictOptions() {
  ParseOptions Options;
  Options.Mode = ParseMode::Strict;
  Options.Limits = fuzzLimits();
  return Options;
}

inline ParseOptions lenientOptions(ParseReport &Report) {
  ParseOptions Options = strictOptions();
  Options.Mode = ParseMode::Lenient;
  Options.Report = &Report;
  return Options;
}

} // namespace fuzz
} // namespace lima

#endif // LIMA_FUZZ_FUZZOPTIONS_H
