#!/bin/sh
# Smoke test for lima_monitor: feeds a fixture trace in two separate
# appends (exercising the incremental stream parser across a chunk
# boundary), requires at least two emitted windows, and validates the
# Prometheus metrics dump with check_prometheus.sh.
# Usage: monitor_smoke.sh LIMA_MONITOR_BIN WORK_DIR CHECKER_SH
set -eu

Monitor="$1"
Work="$2"
Checker="$3"

rm -rf "$Work"
mkdir -p "$Work"
Trace="$Work/smoke.trace"
Out="$Work/monitor.out"
Prom="$Work/monitor.prom"

# Part 1: header plus the first 1.25 s of a 2-proc run. The split point
# lands mid-window and mid-line-stream, so part 2 must merge seamlessly.
cat > "$Trace" <<'EOF'
LIMATRACE 1
procs 2
region 0 loop
activity 0 comp
activity 1 comm
re 0 0.0 0
ab 0 0.0 0
ae 0 0.9 0
ab 0 0.9 1
ae 0 1.1 1
re 1 0.0 0
ab 1 0.0 0
ae 1 1.25 0
EOF

# Part 2: the rest of the run, appended separately.
cat >> "$Trace" <<'EOF'
ab 1 1.25 1
ae 1 1.4 1
ab 0 1.1 0
ae 0 2.6 0
rx 0 2.6 0
ab 1 1.4 0
ae 1 2.3 0
rx 1 2.3 0
EOF

"$Monitor" "$Trace" --window 1 --log-json --min-windows 2 \
    --metrics-out "$Prom" > "$Out" 2>&1

Windows=$(grep -c '"msg":"window"' "$Out" || true)
if [ "$Windows" -lt 2 ]; then
  echo "monitor_smoke: expected >=2 windows, saw $Windows" >&2
  cat "$Out" >&2
  exit 1
fi

# Every window record must carry the condition-number dispersion fields.
if ! grep -q '"sid_c":' "$Out" || ! grep -q '"sid_a":' "$Out"; then
  echo "monitor_smoke: window records missing sid fields" >&2
  cat "$Out" >&2
  exit 1
fi

sh "$Checker" "$Prom"

echo "monitor_smoke: OK ($Windows windows)"
