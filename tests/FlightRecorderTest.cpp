//===- tests/FlightRecorderTest.cpp - Flight-recorder ring tests ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CrashDump.h"
#include "support/Log.h"
#include "support/Telemetry.h"
#include "support/TraceEventExport.h"
#include "support/raw_ostream.h"
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "gtest/gtest.h"

using namespace lima;
using namespace lima::telemetry;

namespace {

// Each gtest runs in its own process (gtest_discover_tests), so tests
// may reconfigure the global ring freely without cross-test pollution.

class FlightRecorderTest : public ::testing::Test {
protected:
  void SetUp() override {
    reset();
    setEnabled(true);
  }
  void TearDown() override {
    setRingOnly(false);
    enableFlightRecorder(0);
    setEnabled(false);
  }
};

/// Reads back everything an async-signal-safe writer wrote to a temp
/// file through \p Write.
template <typename Fn> std::string captureFd(Fn Write) {
  char Path[] = "/tmp/lima_flight_test_XXXXXX";
  int Fd = ::mkstemp(Path);
  EXPECT_GE(Fd, 0);
  Write(Fd);
  ::lseek(Fd, 0, SEEK_SET);
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  ::unlink(Path);
  return Out;
}

TEST_F(FlightRecorderTest, DisabledByDefault) {
  EXPECT_FALSE(flightRecorderEnabled());
  // Recording with no ring installed is safe and retains nothing.
  recordSpan(internName("noring"), InvalidName, 10, 5);
  FlightSnapshot S = flightSnapshot();
  EXPECT_EQ(S.TotalRecorded, 0u);
  EXPECT_TRUE(S.Events.empty());
}

TEST_F(FlightRecorderTest, RecordsAndSnapshots) {
  enableFlightRecorder(16);
  EXPECT_TRUE(flightRecorderEnabled());
  uint32_t Name = internName("work");
  for (uint64_t I = 0; I < 5; ++I)
    recordSpan(Name, InvalidName, 100 * I, 50);

  FlightSnapshot S = flightSnapshot();
  EXPECT_EQ(S.TotalRecorded, 5u);
  ASSERT_EQ(S.Events.size(), 5u);
  // Oldest first, payloads intact.
  for (size_t I = 0; I < 5; ++I) {
    EXPECT_EQ(S.Events[I].StartNs, 100 * I);
    EXPECT_EQ(S.Events[I].DurNs, 50u);
    EXPECT_EQ(S.nameOf(S.Events[I].Name), "work");
  }
  // Non-destructive: a second snapshot sees the same events.
  FlightSnapshot S2 = flightSnapshot();
  EXPECT_EQ(S2.Events.size(), 5u);
  EXPECT_EQ(S2.TotalRecorded, 5u);
}

TEST_F(FlightRecorderTest, WraparoundKeepsMostRecent) {
  enableFlightRecorder(8);
  uint32_t Name = internName("wrap");
  for (uint64_t I = 0; I < 20; ++I)
    recordSpan(Name, InvalidName, I, 1);

  FlightSnapshot S = flightSnapshot();
  EXPECT_EQ(S.TotalRecorded, 20u);
  ASSERT_EQ(S.Events.size(), 8u);
  // The retained window is the last 8 claims: StartNs 12..19 in order.
  for (size_t I = 0; I < 8; ++I)
    EXPECT_EQ(S.Events[I].StartNs, 12 + I);
}

TEST_F(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  enableFlightRecorder(5); // rounds to 8
  uint32_t Name = internName("cap");
  for (uint64_t I = 0; I < 8; ++I)
    recordSpan(Name, InvalidName, I, 1);
  EXPECT_EQ(flightSnapshot().Events.size(), 8u);
}

TEST_F(FlightRecorderTest, ReconfigureParksOldRing) {
  enableFlightRecorder(8);
  recordSpan(internName("old"), InvalidName, 1, 1);
  enableFlightRecorder(16);
  // New ring starts empty; the old one is parked, not freed.
  FlightSnapshot S = flightSnapshot();
  EXPECT_EQ(S.TotalRecorded, 0u);
  EXPECT_TRUE(S.Events.empty());
  enableFlightRecorder(0);
  EXPECT_FALSE(flightRecorderEnabled());
}

TEST_F(FlightRecorderTest, RingOnlySkipsCollectBuffers) {
  enableFlightRecorder(16);
  setRingOnly(true);
  recordSpan(internName("daemon"), InvalidName, 5, 5);
  recordSpan(internName("daemon"), InvalidName, 15, 5);

  // The ring sees the spans; the collect() path does not, so a
  // long-lived daemon that never drains cannot grow without bound.
  EXPECT_EQ(flightSnapshot().Events.size(), 2u);
  EXPECT_TRUE(collect().Events.empty());

  setRingOnly(false);
  recordSpan(internName("daemon"), InvalidName, 25, 5);
  EXPECT_EQ(flightSnapshot().Events.size(), 3u);
  EXPECT_EQ(collect().Events.size(), 1u);
}

TEST_F(FlightRecorderTest, DisabledModeRecordsNothingThroughSpan) {
  setEnabled(false);
  enableFlightRecorder(16);
  {
    // A disabled Span never reads the clock or records — the
    // disabled-mode cost is one relaxed load at construction.
    Span S(internName("off"));
  }
  EXPECT_EQ(flightSnapshot().TotalRecorded, 0u);
}

TEST_F(FlightRecorderTest, ConcurrentRecordingStaysConsistent) {
  enableFlightRecorder(64);
  uint32_t Name = internName("mt");
  constexpr int Threads = 4;
  constexpr uint64_t PerThread = 2000;

  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        recordSpan(Name, InvalidName, I + 1, static_cast<uint64_t>(T) + 1);
      // Snapshot while other writers are racing: torn slots must be
      // skipped, never surfaced with garbage payloads.
      FlightSnapshot S = flightSnapshot();
      for (const SpanEvent &E : S.Events) {
        EXPECT_EQ(E.Name, Name);
        EXPECT_GE(E.DurNs, 1u);
        EXPECT_LE(E.DurNs, static_cast<uint64_t>(Threads));
      }
    });
  for (auto &Th : Pool)
    Th.join();

  FlightSnapshot S = flightSnapshot();
  EXPECT_EQ(S.TotalRecorded, Threads * PerThread);
  EXPECT_EQ(S.Events.size(), 64u);
}

TEST_F(FlightRecorderTest, ChromeTraceExportShape) {
  enableFlightRecorder(8);
  recordSpan(internName("render"), internName("stage.a"), 2000, 3000);
  recordSpan(internName("flush"), InvalidName, 1000, 500);

  std::string Json = exportChromeTrace(flightSnapshot());
  EXPECT_NE(Json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"total_recorded\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\"retained\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"render\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"flush\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);
  // Events are emitted in non-decreasing timestamp order, so "flush"
  // (ts 1us) must appear before "render" (ts 2us).
  EXPECT_LT(Json.find("\"name\": \"flush\""), Json.find("\"name\": \"render\""));
  // Balanced braces/brackets — cheap well-formedness check (no string
  // values here contain brackets).
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '['),
            std::count(Json.begin(), Json.end(), ']'));
}

TEST_F(FlightRecorderTest, ChromeTraceExportEmptyRing) {
  enableFlightRecorder(8);
  std::string Json = exportChromeTrace(flightSnapshot());
  EXPECT_NE(Json.find("\"total_recorded\": 0"), std::string::npos);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '['),
            std::count(Json.begin(), Json.end(), ']'));
}

TEST_F(FlightRecorderTest, CrashWriteSpansIsReadable) {
  enableFlightRecorder(8);
  recordSpan(internName("crashy"), InvalidName, 100, 25);
  std::string Out = captureFd([](int Fd) { crashWriteSpans(Fd); });
  EXPECT_NE(Out.find("spans recorded: 1, retained: 1"), std::string::npos);
  EXPECT_NE(Out.find("span crashy"), std::string::npos);
  EXPECT_NE(Out.find("start_ns=100"), std::string::npos);
  EXPECT_NE(Out.find("dur_ns=25"), std::string::npos);
}

TEST_F(FlightRecorderTest, CrashWriteSpansWithoutRing) {
  std::string Out = captureFd([](int Fd) { crashWriteSpans(Fd); });
  EXPECT_NE(Out.find("(flight recorder not enabled)"), std::string::npos);
}

TEST(CrashLogRingTest, RecentRecordsAreReplayed) {
  std::string Captured;
  raw_string_ostream OS(Captured);
  logging::setSink(&OS);
  logging::setLevel(logging::Level::Info);
  logging::info("first record", {logging::field("k", 1)});
  logging::info("second record", {logging::field("k", 2)});
  logging::setSink(nullptr);

  std::string Out = captureFd([](int Fd) { logging::crashWriteRecent(Fd); });
  EXPECT_NE(Out.find("first record"), std::string::npos);
  EXPECT_NE(Out.find("second record"), std::string::npos);
  // Oldest first.
  EXPECT_LT(Out.find("first record"), Out.find("second record"));
}

TEST(CrashDumpTest, WriteDumpContainsAllSections) {
  telemetry::setEnabled(true);
  telemetry::enableFlightRecorder(8);
  telemetry::recordSpan(telemetry::internName("dumped"), InvalidName, 7, 3);

  std::string Captured;
  raw_string_ostream OS(Captured);
  logging::setSink(&OS);
  logging::info("pre-crash state", {});
  logging::setSink(nullptr);

  std::string Out =
      captureFd([](int Fd) { crashdump::writeDump(Fd, SIGSEGV); });
  EXPECT_NE(Out.find("==== lima crash dump ===="), std::string::npos);
  EXPECT_NE(Out.find("signal: SIGSEGV (11)"), std::string::npos);
  EXPECT_NE(Out.find("recent log records"), std::string::npos);
  EXPECT_NE(Out.find("pre-crash state"), std::string::npos);
  EXPECT_NE(Out.find("flight-recorder spans"), std::string::npos);
  EXPECT_NE(Out.find("span dumped"), std::string::npos);
  EXPECT_NE(Out.find("==== end of crash dump ===="), std::string::npos);

  telemetry::enableFlightRecorder(0);
  telemetry::setEnabled(false);
}

} // namespace
