//===- tests/SimTest.cpp - discrete-event simulator tests -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/Network.h"
#include "sim/Simulation.h"
#include "core/TraceReduction.h"
#include "trace/TraceIO.h"
#include <cmath>
#include <gtest/gtest.h>
#include <vector>

using namespace lima;
using namespace lima::sim;
using trace::EventKind;

namespace {

/// Simulation options with a simple region set and round-number network
/// costs so expected times are easy to compute by hand.
SimulationOptions makeOptions(unsigned Procs) {
  SimulationOptions Options;
  Options.NumProcs = Procs;
  Options.RegionNames = {"main", "aux"};
  Options.Network.Latency = 1e-3;
  Options.Network.BytesPerSecond = 1e6;
  Options.Network.SendOverhead = 1e-4;
  Options.Network.RecvOverhead = 1e-4;
  return Options;
}

/// Total time proc \p Proc spent in activity \p Activity.
double activityTime(const trace::Trace &T, unsigned Proc, uint32_t Activity) {
  double Total = 0.0, Begin = 0.0;
  for (const trace::Event &E : T.events(Proc)) {
    if (E.Kind == EventKind::ActivityBegin && E.Id == Activity)
      Begin = E.Time;
    else if (E.Kind == EventKind::ActivityEnd && E.Id == Activity)
      Total += E.Time - Begin;
  }
  return Total;
}

/// Last event time of \p Proc.
double finalTime(const trace::Trace &T, unsigned Proc) {
  return T.events(Proc).empty() ? 0.0 : T.events(Proc).back().Time;
}

} // namespace

//===----------------------------------------------------------------------===//
// Network model
//===----------------------------------------------------------------------===//

TEST(NetworkTest, CeilLog2) {
  EXPECT_EQ(ceilLog2(1), 0u);
  EXPECT_EQ(ceilLog2(2), 1u);
  EXPECT_EQ(ceilLog2(3), 2u);
  EXPECT_EQ(ceilLog2(16), 4u);
  EXPECT_EQ(ceilLog2(17), 5u);
}

TEST(NetworkTest, CostFormulas) {
  NetworkModel Net;
  Net.Latency = 1e-3;
  Net.BytesPerSecond = 1e6;
  EXPECT_DOUBLE_EQ(Net.pointToPointTime(1000), 1e-3 + 1e-3);
  EXPECT_DOUBLE_EQ(Net.barrierTime(16), 4e-3);
  EXPECT_DOUBLE_EQ(Net.barrierTime(1), 0.0);
  EXPECT_DOUBLE_EQ(Net.treeCollectiveTime(16, 1000), 4 * 2e-3);
  EXPECT_DOUBLE_EQ(Net.allReduceTime(16, 1000), 8 * 2e-3);
  EXPECT_DOUBLE_EQ(Net.allToAllTime(16, 1000), 15 * 2e-3);
  EXPECT_DOUBLE_EQ(Net.rootedLinearTime(4, 500), 3 * 1.5e-3);
}

TEST(NetworkTest, AllReduceAlgorithmFormulas) {
  NetworkModel Net;
  Net.Latency = 1e-3;
  Net.BytesPerSecond = 1e6;
  // P = 8, 1000 bytes: wire = 1ms.
  EXPECT_DOUBLE_EQ(
      Net.allReduceTimeAs(AllReduceAlgorithm::Tree, 8, 1000),
      2 * 3 * 2e-3);
  EXPECT_DOUBLE_EQ(
      Net.allReduceTimeAs(AllReduceAlgorithm::RecursiveDoubling, 8, 1000),
      3 * 2e-3);
  EXPECT_DOUBLE_EQ(Net.allReduceTimeAs(AllReduceAlgorithm::Ring, 8, 1000),
                   2 * 7 * 1e-3 + 2 * (7.0 / 8.0) * 1e-3);
  // Configured algorithm is used by allReduceTime.
  Net.AllReduce = AllReduceAlgorithm::Ring;
  EXPECT_DOUBLE_EQ(Net.allReduceTime(8, 1000),
                   Net.allReduceTimeAs(AllReduceAlgorithm::Ring, 8, 1000));
}

TEST(NetworkTest, AllReduceCrossoverExists) {
  NetworkModel Net; // Default alpha/beta.
  // Small messages: latency-optimal recursive doubling wins.
  EXPECT_LT(Net.allReduceTimeAs(AllReduceAlgorithm::RecursiveDoubling, 64,
                                8),
            Net.allReduceTimeAs(AllReduceAlgorithm::Ring, 64, 8));
  // Large messages: bandwidth-optimal ring wins.
  EXPECT_LT(Net.allReduceTimeAs(AllReduceAlgorithm::Ring, 64, 1 << 26),
            Net.allReduceTimeAs(AllReduceAlgorithm::RecursiveDoubling, 64,
                                1 << 26));
  // Tree is never better than recursive doubling (it is exactly 2x).
  for (uint64_t Bytes : {8ull, 4096ull, 1048576ull})
    EXPECT_GT(Net.allReduceTimeAs(AllReduceAlgorithm::Tree, 16, Bytes),
              Net.allReduceTimeAs(AllReduceAlgorithm::RecursiveDoubling,
                                  16, Bytes));
}

TEST(NetworkTest, AlgorithmReachesSimulatedTimes) {
  SimulationOptions Options = makeOptions(4);
  Options.Network.AllReduce = AllReduceAlgorithm::Ring;
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    C.allReduce(1000);
  }));
  double Expected =
      Options.Network.allReduceTimeAs(AllReduceAlgorithm::Ring, 4, 1000);
  EXPECT_NEAR(finalTime(Trace, 0), Expected, 1e-12);
}

//===----------------------------------------------------------------------===//
// Point-to-point semantics
//===----------------------------------------------------------------------===//

TEST(SimTest, SendRecvTimingExact) {
  SimulationOptions Options = makeOptions(2);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      C.compute(0.5);
      C.send(1, 1000); // Wire time: 1ms + 1ms = 2ms.
    } else {
      C.recv(0);
    }
  }));
  cantFail(Trace.validate());
  // Sender: 0.5 compute + 1e-4 send overhead.
  EXPECT_NEAR(finalTime(Trace, 0), 0.5 + 1e-4, 1e-12);
  // Receiver: blocked from 0 until arrival (0.5001 + 0.002) + overhead.
  EXPECT_NEAR(finalTime(Trace, 1), 0.5 + 1e-4 + 2e-3 + 1e-4, 1e-12);
  // The whole wait is attributed to point-to-point on the receiver.
  EXPECT_NEAR(activityTime(Trace, 1, ActPointToPoint), 0.5 + 1e-4 + 2e-3 +
              1e-4, 1e-12);
}

TEST(SimTest, RecvAfterArrivalCostsOnlyOverhead) {
  SimulationOptions Options = makeOptions(2);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      C.send(1, 1000);
    } else {
      C.compute(1.0); // Message arrives long before the recv.
      C.recv(0);
    }
  }));
  EXPECT_NEAR(finalTime(Trace, 1), 1.0 + 1e-4, 1e-12);
}

TEST(SimTest, PayloadDeliveredIntact) {
  SimulationOptions Options = makeOptions(2);
  std::vector<double> Received(4, 0.0);
  auto Trace = cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      double Payload[4] = {1.5, -2.5, 3.25, 0.0};
      C.sendData(1, Payload, sizeof(Payload));
    } else {
      uint64_t Bytes =
          C.recvData(0, Received.data(), Received.size() * sizeof(double));
      EXPECT_EQ(Bytes, 4 * sizeof(double));
    }
  }));
  cantFail(Trace.validate());
  EXPECT_DOUBLE_EQ(Received[0], 1.5);
  EXPECT_DOUBLE_EQ(Received[1], -2.5);
  EXPECT_DOUBLE_EQ(Received[2], 3.25);
}

TEST(SimTest, TagsMatchSelectively) {
  SimulationOptions Options = makeOptions(2);
  std::vector<uint64_t> Sizes(2, 0);
  auto Trace = cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      C.send(1, 100, /*Tag=*/7);
      C.send(1, 200, /*Tag=*/9);
    } else {
      Sizes[0] = C.recv(0, /*Tag=*/9); // Out of order by tag.
      Sizes[1] = C.recv(0, /*Tag=*/7);
    }
  }));
  EXPECT_EQ(Sizes[0], 200u);
  EXPECT_EQ(Sizes[1], 100u);
}

TEST(SimTest, FifoWithinTag) {
  SimulationOptions Options = makeOptions(2);
  std::vector<uint64_t> Sizes;
  auto Trace = cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      C.send(1, 1);
      C.send(1, 2);
      C.send(1, 3);
    } else {
      for (int I = 0; I != 3; ++I)
        Sizes.push_back(C.recv(0));
    }
  }));
  EXPECT_EQ(Sizes, (std::vector<uint64_t>{1, 2, 3}));
}

//===----------------------------------------------------------------------===//
// Collectives
//===----------------------------------------------------------------------===//

TEST(SimTest, BarrierSynchronizesToLastArrival) {
  SimulationOptions Options = makeOptions(4);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    C.compute(0.1 * (C.rank() + 1)); // Rank 3 arrives at 0.4.
    C.barrier();
  }));
  double Leave = 0.4 + Options.Network.barrierTime(4);
  for (unsigned P = 0; P != 4; ++P)
    EXPECT_NEAR(finalTime(Trace, P), Leave, 1e-12);
  // Rank 0 waited longest: barrier time 0.3 + cost.
  EXPECT_NEAR(activityTime(Trace, 0, ActSynchronization),
              0.3 + Options.Network.barrierTime(4), 1e-12);
  EXPECT_NEAR(activityTime(Trace, 3, ActSynchronization),
              Options.Network.barrierTime(4), 1e-12);
}

TEST(SimTest, AllReduceSumCombinesValues) {
  SimulationOptions Options = makeOptions(8);
  std::vector<double> Results(8, -1.0);
  auto Trace = cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    Results[C.rank()] = C.allReduceSum(static_cast<double>(C.rank() + 1));
  }));
  for (double R : Results)
    EXPECT_DOUBLE_EQ(R, 36.0); // 1 + 2 + ... + 8.
}

TEST(SimTest, ReduceSumDeliversToRootOnly) {
  SimulationOptions Options = makeOptions(4);
  std::vector<double> Results(4, -1.0);
  auto Trace = cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    Results[C.rank()] = C.reduceSum(2, 1.5);
  }));
  EXPECT_DOUBLE_EQ(Results[2], 6.0);
  EXPECT_DOUBLE_EQ(Results[0], 0.0);
  EXPECT_DOUBLE_EQ(Results[1], 0.0);
  EXPECT_DOUBLE_EQ(Results[3], 0.0);
}

TEST(SimTest, CollectiveWaitAttributedToCollective) {
  SimulationOptions Options = makeOptions(2);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 1)
      C.compute(1.0);
    C.allReduce(100);
  }));
  double Cost = Options.Network.allReduceTime(2, 100);
  EXPECT_NEAR(activityTime(Trace, 0, ActCollective), 1.0 + Cost, 1e-12);
  EXPECT_NEAR(activityTime(Trace, 1, ActCollective), Cost, 1e-12);
}

TEST(SimTest, MismatchedCollectivesFail) {
  SimulationOptions Options = makeOptions(2);
  auto Result = simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0)
      C.barrier();
    else
      C.allReduce(8);
  });
  ASSERT_FALSE(static_cast<bool>(Result));
  Error E = Result.takeError();
  EXPECT_NE(E.message().find("mismatch"), std::string::npos);
}

TEST(SimTest, RootedCollectivesCostLinearTime) {
  SimulationOptions Options = makeOptions(4);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    C.gather(0, 500);
    C.scatter(0, 500);
  }));
  double PerOp = Options.Network.rootedLinearTime(4, 500);
  for (unsigned P = 0; P != 4; ++P)
    EXPECT_NEAR(finalTime(Trace, P), 2 * PerOp, 1e-12);
}

TEST(SimTest, BroadcastAndReduceCostTreeTime) {
  SimulationOptions Options = makeOptions(8);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    C.broadcast(3, 100);
    C.reduce(3, 100);
  }));
  double PerOp = Options.Network.treeCollectiveTime(8, 100);
  EXPECT_NEAR(finalTime(Trace, 0), 2 * PerOp, 1e-12);
}

TEST(SimTest, ThreeHopRelayTimingExact) {
  // 0 -> 1 -> 2 relay: each hop adds send overhead + wire + recv
  // overhead on the critical path.
  SimulationOptions Options = makeOptions(3);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      C.send(1, 1000);
    } else if (C.rank() == 1) {
      C.recv(0);
      C.send(2, 1000);
    } else {
      C.recv(1);
    }
  }));
  const NetworkModel &Net = Options.Network;
  double Hop = Net.SendOverhead + Net.pointToPointTime(1000) +
               Net.RecvOverhead;
  EXPECT_NEAR(finalTime(Trace, 2), 2 * Hop, 1e-12);
}

//===----------------------------------------------------------------------===//
// Failure modes
//===----------------------------------------------------------------------===//

TEST(SimTest, DeadlockIsDetected) {
  SimulationOptions Options = makeOptions(2);
  auto Result = simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    C.recv(1 - C.rank()); // Both wait; nobody sends.
  });
  ASSERT_FALSE(static_cast<bool>(Result));
  Error E = Result.takeError();
  EXPECT_NE(E.message().find("deadlock"), std::string::npos);
}

TEST(SimTest, PartialDeadlockAlsoDetected) {
  SimulationOptions Options = makeOptions(3);
  auto Result = simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 2)
      C.recv(0); // Never satisfied; ranks 0/1 finish.
  });
  ASSERT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(SimTest, TimeLimitEnforced) {
  SimulationOptions Options = makeOptions(2);
  Options.TimeLimit = 1.0;
  auto Result = simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    C.compute(10.0);
    C.barrier();
  });
  ASSERT_FALSE(static_cast<bool>(Result));
  Error E = Result.takeError();
  EXPECT_NE(E.message().find("time limit"), std::string::npos);
}

TEST(SimTest, RejectsZeroProcs) {
  SimulationOptions Options = makeOptions(2);
  Options.NumProcs = 0;
  auto Result = simulate(Options, [](Comm &) {});
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(SimTest, RejectsBadComputeSpeedSize) {
  SimulationOptions Options = makeOptions(4);
  Options.ComputeSpeed = {1.0, 2.0}; // Wrong length.
  auto Result = simulate(Options, [](Comm &) {});
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

//===----------------------------------------------------------------------===//
// Heterogeneity and determinism
//===----------------------------------------------------------------------===//

TEST(SimTest, ComputeSpeedScalesTime) {
  SimulationOptions Options = makeOptions(2);
  Options.ComputeSpeed = {1.0, 2.0};
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    C.compute(1.0);
  }));
  EXPECT_NEAR(activityTime(Trace, 0, ActComputation), 1.0, 1e-12);
  EXPECT_NEAR(activityTime(Trace, 1, ActComputation), 0.5, 1e-12);
}

TEST(SimTest, DeterministicAcrossRuns) {
  SimulationOptions Options = makeOptions(8);
  auto Program = [](Comm &C) {
    RegionScope Scope(C, 0);
    C.compute(0.01 * ((C.rank() * 7) % 5));
    if (C.rank() + 1 < C.size())
      C.send(C.rank() + 1, 100 * (C.rank() + 1));
    if (C.rank() > 0)
      C.recv(C.rank() - 1);
    C.allReduce(64);
    C.barrier();
  };
  auto A = cantFail(simulate(Options, Program));
  auto B = cantFail(simulate(Options, Program));
  EXPECT_EQ(trace::writeTraceText(A), trace::writeTraceText(B));
}

TEST(SimTest, ProducedTraceAlwaysValidates) {
  SimulationOptions Options = makeOptions(6);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    {
      RegionScope Scope(C, 0);
      C.compute(0.1);
      unsigned Right = (C.rank() + 1) % C.size();
      unsigned Left = (C.rank() + C.size() - 1) % C.size();
      C.send(Right, 128);
      C.recv(Left);
      C.allToAll(256);
    }
    {
      RegionScope Scope(C, 1);
      C.gather(0, 64);
      C.scatter(0, 64);
      C.broadcast(0, 32);
      C.reduce(0, 16);
      C.barrier();
    }
  }));
  Error E = Trace.validate();
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(Trace.numRegions(), 2u);
  EXPECT_EQ(Trace.numActivities(), 4u);
}

TEST(SimTest, RegionEventsBracketWork) {
  SimulationOptions Options = makeOptions(2);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 1);
    C.compute(0.25);
  }));
  const auto &Events = Trace.events(0);
  ASSERT_GE(Events.size(), 4u);
  EXPECT_EQ(Events.front().Kind, EventKind::RegionEnter);
  EXPECT_EQ(Events.front().Id, 1u);
  EXPECT_EQ(Events.back().Kind, EventKind::RegionExit);
  EXPECT_NEAR(Events.back().Time, 0.25, 1e-12);
}

TEST(SimTest, RecvAnyPicksEarliestArrival) {
  SimulationOptions Options = makeOptions(3);
  std::vector<unsigned> Sources;
  cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      C.compute(1.0); // Let both senders finish first.
      Sources.push_back(C.recvAny().Source);
      Sources.push_back(C.recvAny().Source);
    } else if (C.rank() == 1) {
      C.compute(0.5); // Sends later than rank 2.
      C.send(0, 100);
    } else {
      C.send(0, 100); // Arrives first.
    }
  }));
  ASSERT_EQ(Sources.size(), 2u);
  EXPECT_EQ(Sources[0], 2u);
  EXPECT_EQ(Sources[1], 1u);
}

TEST(SimTest, RecvAnyBlocksUntilAnySend) {
  SimulationOptions Options = makeOptions(3);
  std::vector<unsigned> Sources;
  auto Trace = cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      Comm::RecvResult R = C.recvAny(7);
      Sources.push_back(R.Source);
      EXPECT_EQ(R.Bytes, 64u);
    } else if (C.rank() == 2) {
      C.compute(0.3);
      C.send(0, 64, 7);
    }
    // Rank 1 does nothing.
  }));
  ASSERT_EQ(Sources.size(), 1u);
  EXPECT_EQ(Sources[0], 2u);
  // Rank 0 waited from t=0 to the arrival.
  EXPECT_GT(finalTime(Trace, 0), 0.3);
}

TEST(SimTest, RecvAnyCarriesPayload) {
  SimulationOptions Options = makeOptions(2);
  double Received = 0.0;
  cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 1) {
      double Value = 2.75;
      C.sendData(0, &Value, sizeof(Value));
    } else {
      Comm::RecvResult R = C.recvAny(0, &Received, sizeof(Received));
      EXPECT_EQ(R.Source, 1u);
    }
  }));
  EXPECT_DOUBLE_EQ(Received, 2.75);
}

TEST(SimTest, IrecvOverlapHidesFlightTime) {
  SimulationOptions Options = makeOptions(2);
  // Wire time for 1 MB: 1ms latency + 1s transfer.
  const uint64_t Bytes = 1000000;
  auto Overlapped = cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      C.send(1, Bytes);
    } else {
      Comm::Request R = C.irecv(0);
      C.compute(2.0); // Overlaps the ~1s flight.
      EXPECT_EQ(C.wait(R), Bytes);
    }
  }));
  // Receiver: posting is free; compute 2.0 dominates the flight, so the
  // wait only pays the receive overhead.
  EXPECT_NEAR(finalTime(Overlapped, 1), 2.0 + 1e-4, 1e-9);
  EXPECT_NEAR(activityTime(Overlapped, 1, ActPointToPoint), 1e-4, 1e-9);

  auto Blocking = cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      C.send(1, Bytes);
    } else {
      C.recv(0);
      C.compute(2.0);
    }
  }));
  // Blocking: flight + compute serialize.
  EXPECT_GT(finalTime(Blocking, 1), finalTime(Overlapped, 1) + 0.9);
}

TEST(SimTest, IrecvPayloadDelivered) {
  SimulationOptions Options = makeOptions(2);
  double Received = 0.0;
  cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      double Value = 6.25;
      C.sendData(1, &Value, sizeof(Value));
    } else {
      Comm::Request R = C.irecv(0, &Received, sizeof(Received));
      C.compute(0.1);
      C.wait(R);
    }
  }));
  EXPECT_DOUBLE_EQ(Received, 6.25);
}

TEST(SimTest, IrecvDifferentTagsWaitInAnyOrder) {
  SimulationOptions Options = makeOptions(2);
  std::vector<uint64_t> Sizes(2, 0);
  cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    if (C.rank() == 0) {
      C.send(1, 111, /*Tag=*/1);
      C.send(1, 222, /*Tag=*/2);
    } else {
      Comm::Request R1 = C.irecv(0, nullptr, 0, /*Tag=*/1);
      Comm::Request R2 = C.irecv(0, nullptr, 0, /*Tag=*/2);
      Sizes[1] = C.wait(R2); // Reverse order is fine across tags.
      Sizes[0] = C.wait(R1);
    }
  }));
  EXPECT_EQ(Sizes[0], 111u);
  EXPECT_EQ(Sizes[1], 222u);
}

TEST(SimTest, ScanSumYieldsInclusivePrefixes) {
  SimulationOptions Options = makeOptions(5);
  std::vector<double> Results(5, -1.0);
  cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    Results[C.rank()] = C.scanSum(static_cast<double>(C.rank() + 1));
  }));
  // Inclusive prefixes of 1..5.
  EXPECT_DOUBLE_EQ(Results[0], 1.0);
  EXPECT_DOUBLE_EQ(Results[1], 3.0);
  EXPECT_DOUBLE_EQ(Results[2], 6.0);
  EXPECT_DOUBLE_EQ(Results[3], 10.0);
  EXPECT_DOUBLE_EQ(Results[4], 15.0);
}

TEST(SimTest, ScanCostsOneTreePhase) {
  SimulationOptions Options = makeOptions(8);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Scope(C, 0);
    C.scanSum(1.0);
  }));
  double Expected = Options.Network.treeCollectiveTime(8, sizeof(double));
  EXPECT_NEAR(finalTime(Trace, 0), Expected, 1e-12);
}

TEST(SimTest, NestedRegionScopesProduceValidTraces) {
  SimulationOptions Options = makeOptions(2);
  auto Trace = cantFail(simulate(Options, [](Comm &C) {
    RegionScope Outer(C, 0); // "main"
    C.compute(0.1);
    {
      RegionScope Inner(C, 1); // "aux"
      C.compute(0.2);
    }
    C.compute(0.1);
  }));
  Error E = Trace.validate();
  EXPECT_FALSE(static_cast<bool>(E));
  // Exclusive attribution: main 0.2, aux 0.2 per rank.
  auto Cube = cantFail(core::reduceTrace(Trace));
  EXPECT_NEAR(Cube.time(0, ActComputation, 0), 0.2, 1e-12);
  EXPECT_NEAR(Cube.time(1, ActComputation, 0), 0.2, 1e-12);
}

TEST(SimTest, NowReflectsVirtualClock) {
  SimulationOptions Options = makeOptions(2);
  std::vector<double> Times(2, -1.0);
  cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    C.compute(0.5);
    Times[C.rank()] = C.now();
  }));
  EXPECT_DOUBLE_EQ(Times[0], 0.5);
  EXPECT_DOUBLE_EQ(Times[1], 0.5);
}
