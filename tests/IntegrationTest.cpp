//===- tests/IntegrationTest.cpp - cross-module integration tests ---------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// End-to-end flows: simulated program -> trace -> text round trip ->
// measurement cube -> full analysis -> rendered reports.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/PaperDataset.h"
#include "core/Pipeline.h"
#include "core/Report.h"
#include "core/TraceReduction.h"
#include "sim/Simulation.h"
#include "trace/TraceIO.h"
#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>

using namespace lima;

TEST(IntegrationTest, CfdTraceSurvivesTextRoundTrip) {
  cfd::CfdConfig Config;
  Config.Procs = 6;
  Config.Nx = 32;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  auto Result = cantFail(cfd::runCfd(Config));

  std::string Text = trace::writeTraceText(Result.Trace);
  trace::Trace Loaded = cantFail(trace::parseTraceText(Text));
  auto CubeA = cantFail(core::reduceTrace(Result.Trace));
  auto CubeB = cantFail(core::reduceTrace(Loaded));
  for (size_t I = 0; I != CubeA.numRegions(); ++I)
    for (size_t J = 0; J != CubeA.numActivities(); ++J)
      for (unsigned P = 0; P != CubeA.numProcs(); ++P)
        EXPECT_NEAR(CubeA.time(I, J, P), CubeB.time(I, J, P), 1e-6);
}

TEST(IntegrationTest, CfdThroughFullPipeline) {
  cfd::CfdConfig Config;
  Config.Iterations = 3;
  auto Result = cantFail(cfd::runCfd(Config));
  auto Cube = cantFail(core::reduceTrace(Result.Trace));
  auto Analysis = cantFail(core::analyze(Cube));

  // Every activity actually performed gets a pattern diagram.
  EXPECT_EQ(Analysis.Patterns.size(), 4u);
  // Candidates come out non-empty and within range.
  ASSERT_FALSE(Analysis.RegionCandidates.empty());
  EXPECT_LT(Analysis.RegionCandidates[0].Item, Cube.numRegions());
  // The pressure loop (region 0) dominates the scaled region view, like
  // the paper's loop 1.
  EXPECT_EQ(Analysis.Regions.MostImbalancedScaled, 0u);

  // Rendered tables mention the region names.
  TextTable Table1 = core::makeRegionBreakdownTable(Cube, Analysis.Profile);
  EXPECT_NE(Table1.toString().find("pressure"), std::string::npos);
  TextTable Table4 = core::makeRegionViewTable(Cube, Analysis.Regions);
  EXPECT_NE(Table4.toString().find("SID_C"), std::string::npos);
}

TEST(IntegrationTest, SimulatedProgramMatchesManualCube) {
  // A deliberately simple program whose cube is predictable: 2 ranks,
  // rank 1 computes 3x longer, then both hit a barrier.
  sim::SimulationOptions Options;
  Options.NumProcs = 2;
  Options.RegionNames = {"only"};
  Options.Network.Latency = 0.0;
  Options.Network.SendOverhead = 0.0;
  Options.Network.RecvOverhead = 0.0;
  auto Trace = cantFail(sim::simulate(Options, [](sim::Comm &C) {
    sim::RegionScope Scope(C, 0);
    C.compute(C.rank() == 0 ? 1.0 : 3.0);
    C.barrier();
  }));
  auto Cube = cantFail(core::reduceTrace(Trace));
  // Computation: mean of {1, 3} = 2; synchronization: mean of {2, 0} = 1.
  EXPECT_NEAR(Cube.regionActivityTime(0, sim::ActComputation), 2.0, 1e-9);
  EXPECT_NEAR(Cube.regionActivityTime(0, sim::ActSynchronization), 1.0,
              1e-9);
  // Program time = span = 3.
  EXPECT_NEAR(Cube.programTime(), 3.0, 1e-9);
  // Both dissimilarity indices are the two-processor maximum spread
  // direction: shares {0.25, 0.75} and {1, 0}.
  auto Matrix = core::computeDissimilarityMatrix(Cube);
  EXPECT_NEAR(Matrix[0][sim::ActComputation], std::sqrt(2 * 0.25 * 0.25),
              1e-9);
  EXPECT_NEAR(Matrix[0][sim::ActSynchronization], std::sqrt(0.5), 1e-9);
}

TEST(IntegrationTest, PaperCubeSummaryReadsLikeSection4) {
  auto Cube = core::paper::buildCube();
  auto Analysis = cantFail(core::analyze(Cube));
  std::string Summary = core::summarizeFindings(
      Cube, Analysis.Profile, Analysis.Activities, Analysis.Regions,
      Analysis.Processors);
  EXPECT_NE(Summary.find("loop1"), std::string::npos);
  EXPECT_NE(Summary.find("computation"), std::string::npos);
  EXPECT_NE(Summary.find("synchronization"), std::string::npos);
  EXPECT_NE(Summary.find("loop6"), std::string::npos);
  EXPECT_NE(Summary.find("Processor 1"), std::string::npos);
  EXPECT_NE(Summary.find("Processor 2"), std::string::npos);
}

TEST(IntegrationTest, TraceFileToAnalysisViaDisk) {
  cfd::CfdConfig Config;
  Config.Procs = 4;
  Config.Nx = 24;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  auto Result = cantFail(cfd::runCfd(Config));
  std::string Path = ::testing::TempDir() + "/lima_integration.trace";
  cantFail(trace::saveTrace(Result.Trace, Path));

  trace::Trace Loaded = cantFail(trace::loadTrace(Path));
  auto Cube = cantFail(core::reduceTrace(Loaded));
  auto Analysis = cantFail(core::analyze(Cube));
  EXPECT_EQ(Analysis.Profile.Regions.size(), 7u);
  std::remove(Path.c_str());
}

TEST(IntegrationTest, AnalysisOptionsPlumbedThrough) {
  auto Cube = core::paper::buildCube();
  core::AnalysisOptions Options;
  Options.Views.Kind = stats::DispersionKind::MeanAbsoluteDeviation;
  Options.Ranking.Criterion = core::RankCriterion::Threshold;
  Options.Ranking.Threshold = 0.0;
  Options.Clusters = 3;
  auto Analysis = cantFail(core::analyze(Cube, Options));
  // Threshold 0 selects every region as a candidate.
  EXPECT_EQ(Analysis.RegionCandidates.size(), Cube.numRegions());
  ASSERT_TRUE(Analysis.HasClusters);
  EXPECT_EQ(Analysis.Clusters.Groups.size(), 3u);
}
