//===- tests/StatsTest.cpp - stats library unit & property tests ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "stats/Descriptive.h"
#include "stats/Dispersion.h"
#include "stats/Majorization.h"
#include "stats/Standardize.h"
#include "support/RNG.h"
#include <cmath>
#include <gtest/gtest.h>
#include <set>
#include <string>
#include <tuple>

using namespace lima;
using namespace lima::stats;

//===----------------------------------------------------------------------===//
// Descriptive statistics
//===----------------------------------------------------------------------===//

TEST(DescriptiveTest, BasicMoments) {
  std::vector<double> V = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(sum(V), 40.0);
  EXPECT_DOUBLE_EQ(mean(V), 5.0);
  EXPECT_DOUBLE_EQ(variance(V), 4.0);
  EXPECT_DOUBLE_EQ(stdDev(V), 2.0);
  EXPECT_NEAR(sampleVariance(V), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(coefficientOfVariation(V), 0.4);
}

TEST(DescriptiveTest, MadAndExtremes) {
  std::vector<double> V = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(meanAbsoluteDeviation(V), (2.0 + 1.0 + 3.0) / 3.0);
  EXPECT_DOUBLE_EQ(minimum(V), 1.0);
  EXPECT_DOUBLE_EQ(maximum(V), 6.0);
  EXPECT_EQ(argMin(V), 0u);
  EXPECT_EQ(argMax(V), 2u);
}

TEST(DescriptiveTest, ArgMaxPrefersFirstOnTies) {
  std::vector<double> V = {3.0, 5.0, 5.0, 1.0};
  EXPECT_EQ(argMax(V), 1u);
}

TEST(DescriptiveTest, PercentileInterpolates) {
  std::vector<double> V = {4.0, 1.0, 3.0, 2.0}; // Sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(percentile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(V, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(median(V), 2.5);
  EXPECT_DOUBLE_EQ(percentile(V, 25.0), 1.75);
}

TEST(DescriptiveTest, PercentileSingleton) {
  std::vector<double> V = {7.5};
  EXPECT_DOUBLE_EQ(percentile(V, 30.0), 7.5);
}

//===----------------------------------------------------------------------===//
// Standardization
//===----------------------------------------------------------------------===//

TEST(StandardizeTest, SharesSumToOne) {
  std::vector<double> Shares = toShares({2.0, 3.0, 5.0});
  EXPECT_DOUBLE_EQ(Shares[0], 0.2);
  EXPECT_DOUBLE_EQ(Shares[1], 0.3);
  EXPECT_DOUBLE_EQ(Shares[2], 0.5);
  EXPECT_TRUE(isShareVector(Shares));
}

TEST(StandardizeTest, ZeroVectorStandardizesToZeros) {
  std::vector<double> Shares = toShares({0.0, 0.0, 0.0});
  EXPECT_EQ(Shares, (std::vector<double>{0.0, 0.0, 0.0}));
  EXPECT_TRUE(isShareVector(Shares));
}

TEST(StandardizeTest, IsShareVectorRejectsBadSums) {
  EXPECT_FALSE(isShareVector({0.5, 0.4}));
  EXPECT_FALSE(isShareVector({1.2, -0.2}));
}

//===----------------------------------------------------------------------===//
// Dispersion indices
//===----------------------------------------------------------------------===//

TEST(DispersionTest, BalancedVectorScoresZero) {
  std::vector<double> Times = {3.0, 3.0, 3.0, 3.0};
  for (DispersionKind Kind : AllDispersionKinds) {
    if (Kind == DispersionKind::Maximum)
      continue; // Maximum of a balanced share vector is 1/P, not 0.
    EXPECT_NEAR(imbalanceIndexAs(Kind, Times), 0.0, 1e-12)
        << dispersionKindName(Kind);
  }
  EXPECT_DOUBLE_EQ(imbalanceIndexAs(DispersionKind::Maximum, Times), 0.25);
}

TEST(DispersionTest, OneHotReachesTheoreticalMaximum) {
  std::vector<double> Times = {0.0, 0.0, 5.0, 0.0};
  EXPECT_NEAR(imbalanceIndex(Times), maxImbalanceIndex(4), 1e-12);
}

TEST(DispersionTest, EuclideanHandComputed) {
  // Shares (0.5, 0.3, 0.2), mean 1/3:
  // sqrt((1/6)^2 + (1/30)^2 + (2/15)^2).
  std::vector<double> Times = {5.0, 3.0, 2.0};
  double Expected = std::sqrt(1.0 / 36 + 1.0 / 900 + 4.0 / 225);
  EXPECT_NEAR(imbalanceIndex(Times), Expected, 1e-12);
}

TEST(DispersionTest, ScaleInvariance) {
  std::vector<double> A = {1.0, 2.0, 3.0, 10.0};
  std::vector<double> B = {7.0, 14.0, 21.0, 70.0};
  for (DispersionKind Kind : AllDispersionKinds)
    EXPECT_NEAR(imbalanceIndexAs(Kind, A), imbalanceIndexAs(Kind, B), 1e-12)
        << dispersionKindName(Kind);
}

TEST(DispersionTest, AllZeroIsZeroForEveryKind) {
  std::vector<double> Times = {0.0, 0.0, 0.0};
  for (DispersionKind Kind : AllDispersionKinds)
    EXPECT_DOUBLE_EQ(imbalanceIndexAs(Kind, Times), 0.0)
        << dispersionKindName(Kind);
}

TEST(DispersionTest, GiniHandComputed) {
  // Shares (0, 1): Gini = mean abs pairwise diff / (2 * mean) = 0.5.
  EXPECT_NEAR(imbalanceIndexAs(DispersionKind::Gini, {0.0, 4.0}), 0.5,
              1e-12);
}

TEST(DispersionTest, KindNamesAreUnique) {
  std::set<std::string_view> Names;
  for (DispersionKind Kind : AllDispersionKinds)
    Names.insert(dispersionKindName(Kind));
  EXPECT_EQ(Names.size(), 7u);
}

//===----------------------------------------------------------------------===//
// Majorization
//===----------------------------------------------------------------------===//

TEST(MajorizationTest, OneHotMajorizesEverything) {
  std::vector<double> OneHot = {1.0, 0.0, 0.0, 0.0};
  std::vector<double> Mixed = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> Balanced = {0.25, 0.25, 0.25, 0.25};
  EXPECT_TRUE(majorizes(OneHot, Mixed));
  EXPECT_TRUE(majorizes(OneHot, Balanced));
  EXPECT_TRUE(majorizes(Mixed, Balanced));
  EXPECT_FALSE(majorizes(Balanced, Mixed));
  EXPECT_FALSE(majorizes(Mixed, OneHot));
}

TEST(MajorizationTest, ReflexiveAndOrderInsensitive) {
  std::vector<double> X = {0.5, 0.2, 0.3};
  std::vector<double> Shuffled = {0.2, 0.3, 0.5};
  EXPECT_TRUE(majorizes(X, X));
  EXPECT_TRUE(majorizes(X, Shuffled));
  EXPECT_TRUE(majorizes(Shuffled, X));
}

TEST(MajorizationTest, DifferentSumsAreIncomparable) {
  EXPECT_FALSE(majorizes({1.0, 0.0}, {0.4, 0.4}));
  EXPECT_FALSE(majorizationComparable({1.0, 0.0}, {0.4, 0.4}));
}

TEST(MajorizationTest, IncomparablePairExists) {
  // Classic incomparable pair with equal sums.
  std::vector<double> X = {0.6, 0.2, 0.2};
  std::vector<double> Y = {0.5, 0.4, 0.1};
  EXPECT_FALSE(majorizes(X, Y));
  EXPECT_FALSE(majorizes(Y, X));
  EXPECT_FALSE(majorizationComparable(X, Y));
}

TEST(MajorizationTest, RobinHoodTransferIsMajorizedByOriginal) {
  std::vector<double> X = {10.0, 2.0, 4.0, 4.0};
  std::vector<double> Y = robinHoodTransfer(X, 2.0);
  EXPECT_TRUE(majorizes(X, Y));
  EXPECT_FALSE(majorizes(Y, X));
  EXPECT_DOUBLE_EQ(sum(Y), sum(X));
}

TEST(LorenzTest, CurveEndpointsAndMonotonicity) {
  std::vector<double> V = {4.0, 1.0, 2.0, 3.0};
  std::vector<double> Curve = lorenzCurve(V);
  ASSERT_EQ(Curve.size(), 5u);
  EXPECT_DOUBLE_EQ(Curve.front(), 0.0);
  EXPECT_DOUBLE_EQ(Curve.back(), 1.0);
  for (size_t I = 1; I != Curve.size(); ++I)
    EXPECT_GE(Curve[I], Curve[I - 1]);
  // Below the diagonal everywhere.
  for (size_t I = 0; I != Curve.size(); ++I)
    EXPECT_LE(Curve[I], static_cast<double>(I) / 4.0 + 1e-12);
}

TEST(LorenzTest, BalancedCurveIsDiagonal) {
  std::vector<double> Curve = lorenzCurve({2.0, 2.0, 2.0, 2.0});
  for (size_t I = 0; I != Curve.size(); ++I)
    EXPECT_NEAR(Curve[I], static_cast<double>(I) / 4.0, 1e-12);
  EXPECT_NEAR(lorenzArea({2.0, 2.0, 2.0, 2.0}), 0.0, 1e-12);
}

TEST(LorenzTest, AreaIsHalfGini) {
  std::vector<double> V = {1.0, 2.0, 3.0, 10.0};
  double Gini = imbalanceIndexAs(DispersionKind::Gini, V);
  EXPECT_NEAR(lorenzArea(V), Gini / 2.0, 1e-12);
}

//===----------------------------------------------------------------------===//
// Property: every index is Schur-convex (consistent with majorization).
// A Robin Hood transfer makes the vector strictly more balanced, so no
// index may increase.  This is the theoretical requirement the paper's
// majorization framework places on an "index of dispersion".
//===----------------------------------------------------------------------===//

class SchurConvexityTest
    : public ::testing::TestWithParam<std::tuple<DispersionKind, uint64_t>> {
};

TEST_P(SchurConvexityTest, RobinHoodTransferNeverIncreasesIndex) {
  auto [Kind, Seed] = GetParam();
  RNG Rng(Seed);
  for (int Trial = 0; Trial != 50; ++Trial) {
    size_t N = 2 + Rng.uniformInt(14);
    std::vector<double> V(N);
    for (double &X : V)
      X = Rng.uniformIn(0.0, 10.0);
    double Gap = stats::maximum(V) - stats::minimum(V);
    if (Gap <= 0.0)
      continue;
    double Amount = Rng.uniformIn(0.0, Gap / 2.0);
    std::vector<double> Balanced = robinHoodTransfer(V, Amount);
    double Before = imbalanceIndexAs(Kind, V);
    double After = imbalanceIndexAs(Kind, Balanced);
    EXPECT_LE(After, Before + 1e-9)
        << dispersionKindName(Kind) << " increased on a transfer";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSeeds, SchurConvexityTest,
    ::testing::Combine(::testing::ValuesIn(AllDispersionKinds),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto &Info) {
      return std::string(dispersionKindName(std::get<0>(Info.param))) + "_" +
             std::to_string(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// Property: the Euclidean index respects the majorization partial order
// on share vectors whenever two vectors are comparable.
//===----------------------------------------------------------------------===//

class MajorizationConsistencyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(MajorizationConsistencyTest, ComparableVectorsOrderTheirIndices) {
  RNG Rng(GetParam());
  int Checked = 0;
  for (int Trial = 0; Trial != 300; ++Trial) {
    size_t N = 2 + Rng.uniformInt(8);
    std::vector<double> X(N), Y(N);
    for (double &V : X)
      V = Rng.uniformIn(0.0, 1.0);
    // Y: a chain of transfers applied to X, guaranteeing X majorizes Y.
    Y = X;
    for (int T = 0; T != 3; ++T) {
      double Gap = stats::maximum(Y) - stats::minimum(Y);
      if (Gap <= 0.0)
        break;
      Y = robinHoodTransfer(Y, Rng.uniformIn(0.0, Gap / 2.0));
    }
    if (!majorizes(X, Y))
      continue;
    ++Checked;
    EXPECT_LE(imbalanceIndex(Y), imbalanceIndex(X) + 1e-9);
  }
  EXPECT_GT(Checked, 200); // The generator must actually produce pairs.
}

INSTANTIATE_TEST_SUITE_P(Seeds, MajorizationConsistencyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));
