//===- tests/CoreTest.cpp - core methodology unit tests -------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Measurement.h"
#include "core/PatternDiagram.h"
#include "core/Pipeline.h"
#include "core/Profile.h"
#include "core/Ranking.h"
#include "core/RegionClustering.h"
#include "core/Report.h"
#include "core/TraceReduction.h"
#include "core/Views.h"
#include "stats/Dispersion.h"
#include "TestHelpers.h"
#include <cmath>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;

namespace {

/// A small hand-checkable cube: 2 regions x 2 activities x 2 procs.
///
///   r0/comp: {3, 1}  r0/comm: {1, 1}
///   r1/comp: {2, 2}  r1/comm: {0, 4}
MeasurementCube makeSmallCube() {
  MeasurementCube Cube({"r0", "r1"}, {"comp", "comm"}, 2);
  Cube.at(0, 0, 0) = 3.0;
  Cube.at(0, 0, 1) = 1.0;
  Cube.at(0, 1, 0) = 1.0;
  Cube.at(0, 1, 1) = 1.0;
  Cube.at(1, 0, 0) = 2.0;
  Cube.at(1, 0, 1) = 2.0;
  Cube.at(1, 1, 0) = 0.0;
  Cube.at(1, 1, 1) = 4.0;
  return Cube;
}

} // namespace

//===----------------------------------------------------------------------===//
// MeasurementCube
//===----------------------------------------------------------------------===//

TEST(MeasurementCubeTest, MeanBasedAggregates) {
  MeasurementCube Cube = makeSmallCube();
  // t_ij is the mean over processors.
  EXPECT_DOUBLE_EQ(Cube.regionActivityTime(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(Cube.regionActivityTime(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(Cube.regionActivityTime(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(Cube.regionTime(0), 3.0);
  EXPECT_DOUBLE_EQ(Cube.regionTime(1), 4.0);
  EXPECT_DOUBLE_EQ(Cube.activityTime(0), 4.0);
  EXPECT_DOUBLE_EQ(Cube.activityTime(1), 3.0);
  EXPECT_DOUBLE_EQ(Cube.instrumentedTotal(), 7.0);
  EXPECT_DOUBLE_EQ(Cube.cellSum(), 14.0);
}

TEST(MeasurementCubeTest, ProgramTimeOverride) {
  MeasurementCube Cube = makeSmallCube();
  EXPECT_FALSE(Cube.hasExplicitProgramTime());
  EXPECT_DOUBLE_EQ(Cube.programTime(), 7.0);
  Cube.setProgramTime(10.0);
  EXPECT_DOUBLE_EQ(Cube.programTime(), 10.0);
  Error E = Cube.validate();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(MeasurementCubeTest, ValidateRejectsTooSmallProgramTime) {
  MeasurementCube Cube = makeSmallCube();
  Cube.setProgramTime(1.0); // Smaller than the 7.0 instrumented total.
  EXPECT_TRUE(testutil::failed(Cube.validate()));
}

TEST(MeasurementCubeTest, SlicesAndProfiles) {
  MeasurementCube Cube = makeSmallCube();
  EXPECT_EQ(Cube.processorSlice(1, 1), (std::vector<double>{0.0, 4.0}));
  EXPECT_EQ(Cube.activityProfile(0), (std::vector<double>{2.0, 1.0}));
  EXPECT_EQ(Cube.activitySliceForProc(0, 0), (std::vector<double>{3.0, 1.0}));
  EXPECT_DOUBLE_EQ(Cube.procRegionTime(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(Cube.procRegionTime(1, 1), 6.0);
}

TEST(MeasurementCubeTest, AccumulateAdds) {
  MeasurementCube Cube({"r"}, {"a"}, 2);
  Cube.accumulate(0, 0, 0, 1.5);
  Cube.accumulate(0, 0, 0, 0.5);
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 2.0);
}

//===----------------------------------------------------------------------===//
// Coarse profile
//===----------------------------------------------------------------------===//

TEST(CoarseProfileTest, DominanceAndExtremes) {
  MeasurementCube Cube = makeSmallCube();
  CoarseProfile Profile = computeCoarseProfile(Cube);
  EXPECT_DOUBLE_EQ(Profile.ProgramTime, 7.0);
  EXPECT_EQ(Profile.DominantActivity, 0u);   // comp: 4 > comm: 3.
  EXPECT_EQ(Profile.HeaviestRegion, 1u);     // 4 > 3.
  EXPECT_EQ(Profile.RegionDominatingDominantActivity, 0u); // comp: r0 2>2? No:
  // r0 comp = 2.0, r1 comp = 2.0 — tie resolves to the first region.
  ASSERT_EQ(Profile.Regions.size(), 2u);
  EXPECT_DOUBLE_EQ(Profile.Regions[0].FractionOfProgram, 3.0 / 7.0);
  // comm extremes: worst r1 (2.0), best r0 (1.0), performed in 2 regions.
  const ActivityExtremes &Comm = Profile.Extremes[1];
  EXPECT_EQ(Comm.WorstRegion, 1u);
  EXPECT_DOUBLE_EQ(Comm.WorstTime, 2.0);
  EXPECT_EQ(Comm.BestRegion, 0u);
  EXPECT_DOUBLE_EQ(Comm.BestTime, 1.0);
  EXPECT_EQ(Comm.RegionsPerforming, 2u);
}

TEST(CoarseProfileTest, UnperformedActivity) {
  MeasurementCube Cube({"r"}, {"a", "never"}, 2);
  Cube.at(0, 0, 0) = 1.0;
  Cube.at(0, 0, 1) = 1.0;
  CoarseProfile Profile = computeCoarseProfile(Cube);
  EXPECT_EQ(Profile.Extremes[1].RegionsPerforming, 0u);
  EXPECT_EQ(Profile.Extremes[1].BestRegion, SIZE_MAX);
}

//===----------------------------------------------------------------------===//
// Views
//===----------------------------------------------------------------------===//

TEST(ViewsTest, DissimilarityMatrixHandComputed) {
  MeasurementCube Cube = makeSmallCube();
  auto Matrix = computeDissimilarityMatrix(Cube);
  // r0/comp shares {0.75, 0.25}: sqrt(2 * 0.25^2) = 0.25 * sqrt(2).
  EXPECT_NEAR(Matrix[0][0], 0.25 * std::sqrt(2.0), 1e-12);
  // r0/comm balanced -> 0.
  EXPECT_DOUBLE_EQ(Matrix[0][1], 0.0);
  // r1/comm one-hot -> sqrt(1 - 1/2).
  EXPECT_NEAR(Matrix[1][1], std::sqrt(0.5), 1e-12);
}

TEST(ViewsTest, ActivityViewWeighting) {
  MeasurementCube Cube = makeSmallCube();
  ActivityView View = computeActivityView(Cube);
  // ID_A[comp] = (t00 * ID00 + t10 * ID10) / T_comp
  //            = (2 * 0.25 sqrt 2 + 2 * 0) / 4.
  EXPECT_NEAR(View.Index[0], 0.25 * std::sqrt(2.0) / 2.0, 1e-12);
  // ID_A[comm] = (1 * 0 + 2 * sqrt(.5)) / 3.
  EXPECT_NEAR(View.Index[1], 2.0 * std::sqrt(0.5) / 3.0, 1e-12);
  // SID_A scales by T_j / T.
  EXPECT_NEAR(View.ScaledIndex[0], 4.0 / 7.0 * View.Index[0], 1e-12);
  EXPECT_NEAR(View.ScaledIndex[1], 3.0 / 7.0 * View.Index[1], 1e-12);
  EXPECT_EQ(View.MostImbalanced, 1u);
  EXPECT_EQ(View.MostImbalancedScaled, 1u);
}

TEST(ViewsTest, RegionViewWeighting) {
  MeasurementCube Cube = makeSmallCube();
  RegionView View = computeRegionView(Cube);
  // ID_C[r0] = (2 * 0.25 sqrt 2 + 1 * 0) / 3.
  EXPECT_NEAR(View.Index[0], 0.5 * std::sqrt(2.0) / 3.0, 1e-12);
  // ID_C[r1] = (2 * 0 + 2 * sqrt(.5)) / 4.
  EXPECT_NEAR(View.Index[1], std::sqrt(0.5) / 2.0, 1e-12);
  EXPECT_NEAR(View.ScaledIndex[0], 3.0 / 7.0 * View.Index[0], 1e-12);
  EXPECT_NEAR(View.ScaledIndex[1], 4.0 / 7.0 * View.Index[1], 1e-12);
  EXPECT_EQ(View.MostImbalanced, 1u);
}

TEST(ViewsTest, ProgramTimeOverrideShrinksScaledIndices) {
  MeasurementCube Cube = makeSmallCube();
  ActivityView Before = computeActivityView(Cube);
  Cube.setProgramTime(14.0); // Double the instrumented total.
  ActivityView After = computeActivityView(Cube);
  EXPECT_NEAR(After.ScaledIndex[0], Before.ScaledIndex[0] / 2.0, 1e-12);
  EXPECT_NEAR(After.Index[0], Before.Index[0], 1e-12); // ID unchanged.
}

TEST(ViewsTest, ProcessorViewIdentifiesDeviantMix) {
  // Three procs; proc 2's mix within r0 deviates (all comm, no comp).
  MeasurementCube Cube({"r0"}, {"comp", "comm"}, 3);
  Cube.at(0, 0, 0) = 4.0;
  Cube.at(0, 1, 0) = 1.0;
  Cube.at(0, 0, 1) = 4.0;
  Cube.at(0, 1, 1) = 1.0;
  Cube.at(0, 0, 2) = 0.0;
  Cube.at(0, 1, 2) = 5.0;
  ProcessorView View = computeProcessorView(Cube);
  EXPECT_EQ(View.MostImbalancedProc[0], 2u);
  EXPECT_GT(View.Index[0][2], View.Index[0][0]);
  // Procs 0 and 1 have identical mixes, so identical indices.
  EXPECT_NEAR(View.Index[0][0], View.Index[0][1], 1e-12);
  EXPECT_EQ(View.MostFrequentlyImbalanced, 2u);
  EXPECT_EQ(View.LongestImbalanced, 2u);
  EXPECT_DOUBLE_EQ(View.ImbalancedWallClock[2], 5.0);
}

TEST(ViewsTest, ProcessorViewBalancedMixesScoreZero) {
  // Mixes identical across procs even though absolute times differ:
  // the processor view sees per-processor *shares*, so indices are 0.
  MeasurementCube Cube({"r0"}, {"comp", "comm"}, 2);
  Cube.at(0, 0, 0) = 4.0;
  Cube.at(0, 1, 0) = 2.0;
  Cube.at(0, 0, 1) = 8.0;
  Cube.at(0, 1, 1) = 4.0;
  ProcessorView View = computeProcessorView(Cube);
  EXPECT_NEAR(View.Index[0][0], 0.0, 1e-12);
  EXPECT_NEAR(View.Index[0][1], 0.0, 1e-12);
}

TEST(ViewsTest, IdleProcessorExcludedFromMeanMix) {
  MeasurementCube Cube({"r0"}, {"comp", "comm"}, 3);
  Cube.at(0, 0, 0) = 2.0;
  Cube.at(0, 1, 0) = 2.0;
  Cube.at(0, 0, 1) = 2.0;
  Cube.at(0, 1, 1) = 2.0;
  // Proc 2 idle in this region.
  ProcessorView View = computeProcessorView(Cube);
  EXPECT_DOUBLE_EQ(View.Index[0][2], 0.0);
  EXPECT_NEAR(View.Index[0][0], 0.0, 1e-12);
}

TEST(ViewsTest, AlternativeDispersionKindChangesMatrixNotStructure) {
  MeasurementCube Cube = makeSmallCube();
  ViewOptions Options;
  Options.Kind = stats::DispersionKind::MeanAbsoluteDeviation;
  auto Matrix = computeDissimilarityMatrix(Cube, Options);
  // r0/comp shares {0.75, 0.25}: MAD = 0.25.
  EXPECT_NEAR(Matrix[0][0], 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(Matrix[0][1], 0.0);
}

//===----------------------------------------------------------------------===//
// Ranking
//===----------------------------------------------------------------------===//

TEST(RankingTest, MaximumSelectsOnlyTheTop) {
  std::vector<double> Values = {0.1, 0.5, 0.3, 0.5};
  auto Ranked = rankIndices(Values, {RankCriterion::Maximum, 85.0, 0.1});
  ASSERT_EQ(Ranked.size(), 2u); // Both maxima selected.
  EXPECT_EQ(Ranked[0].Item, 1u);
  EXPECT_EQ(Ranked[1].Item, 3u);
}

TEST(RankingTest, ThresholdSelectsAllAbove) {
  std::vector<double> Values = {0.05, 0.2, 0.15, 0.01};
  RankingOptions Options;
  Options.Criterion = RankCriterion::Threshold;
  Options.Threshold = 0.1;
  auto Ranked = rankIndices(Values, Options);
  ASSERT_EQ(Ranked.size(), 2u);
  EXPECT_EQ(Ranked[0].Item, 1u); // Sorted by decreasing value.
  EXPECT_EQ(Ranked[1].Item, 2u);
}

TEST(RankingTest, PercentileCutoff) {
  std::vector<double> Values = {1.0, 2.0, 3.0, 4.0, 5.0};
  RankingOptions Options;
  Options.Criterion = RankCriterion::Percentile;
  Options.Percentile = 50.0;
  auto Ranked = rankIndices(Values, Options);
  ASSERT_EQ(Ranked.size(), 3u); // 3, 4, 5 are at or above the median.
  EXPECT_EQ(Ranked[0].Item, 4u);
}

TEST(RankingTest, CriterionNames) {
  EXPECT_EQ(rankCriterionName(RankCriterion::Maximum), "maximum");
  EXPECT_EQ(rankCriterionName(RankCriterion::Percentile), "percentile");
  EXPECT_EQ(rankCriterionName(RankCriterion::Threshold), "threshold");
}

//===----------------------------------------------------------------------===//
// Pattern diagrams
//===----------------------------------------------------------------------===//

TEST(PatternDiagramTest, ClassifiesBands) {
  MeasurementCube Cube({"r"}, {"a"}, 5);
  // Times 10, 9.5, 5, 1.5, 1: range 9, upper cut 8.65, lower cut 2.35.
  double Times[5] = {10.0, 9.5, 5.0, 1.5, 1.0};
  for (unsigned P = 0; P != 5; ++P)
    Cube.at(0, 0, P) = Times[P];
  PatternDiagram Diagram = computePatternDiagram(Cube, 0);
  ASSERT_EQ(Diagram.Regions.size(), 1u);
  EXPECT_EQ(Diagram.Cells[0][0], PatternCategory::Maximum);
  EXPECT_EQ(Diagram.Cells[0][1], PatternCategory::UpperBand);
  EXPECT_EQ(Diagram.Cells[0][2], PatternCategory::Middle);
  EXPECT_EQ(Diagram.Cells[0][3], PatternCategory::LowerBand);
  EXPECT_EQ(Diagram.Cells[0][4], PatternCategory::Minimum);
}

TEST(PatternDiagramTest, SkipsInactiveRegions) {
  MeasurementCube Cube({"r0", "r1"}, {"a"}, 2);
  Cube.at(1, 0, 0) = 1.0;
  Cube.at(1, 0, 1) = 2.0;
  PatternDiagram Diagram = computePatternDiagram(Cube, 0);
  ASSERT_EQ(Diagram.Regions.size(), 1u);
  EXPECT_EQ(Diagram.Regions[0], 1u);
}

TEST(PatternDiagramTest, AllEqualRowIsAllMiddle) {
  MeasurementCube Cube({"r"}, {"a"}, 4);
  for (unsigned P = 0; P != 4; ++P)
    Cube.at(0, 0, P) = 2.5;
  PatternDiagram Diagram = computePatternDiagram(Cube, 0);
  EXPECT_EQ(Diagram.countInRow(0, PatternCategory::Middle), 4u);
}

TEST(PatternDiagramTest, AsciiRenderingContainsRowsAndLegend) {
  MeasurementCube Cube = makeSmallCube();
  PatternDiagram Diagram = computePatternDiagram(Cube, 0);
  std::string Art = renderPatternASCII(Diagram, Cube);
  EXPECT_NE(Art.find("comp"), std::string::npos);
  EXPECT_NE(Art.find("r0"), std::string::npos);
  EXPECT_NE(Art.find("legend"), std::string::npos);
  EXPECT_NE(Art.find("[Mm]"), std::string::npos); // {3,1}: max then min.
}

TEST(PatternDiagramTest, PpmRenderingWellFormed) {
  MeasurementCube Cube = makeSmallCube();
  PatternDiagram Diagram = computePatternDiagram(Cube, 0, 0.15);
  std::string Ppm = renderPatternPPM(Diagram, 2);
  EXPECT_EQ(Ppm.rfind("P3\n", 0), 0u);
  EXPECT_NE(Ppm.find("4 4"), std::string::npos); // 2 rows x 2 procs x 2px.
}

//===----------------------------------------------------------------------===//
// Trace reduction
//===----------------------------------------------------------------------===//

namespace {

trace::Trace makeReductionTrace() {
  trace::Trace T(2);
  uint32_t R0 = T.addRegion("r0");
  uint32_t Comp = T.addActivity("comp");
  uint32_t Comm = T.addActivity("comm");
  // Proc 0: region [0, 10], comp [0, 4], gap (4, 6), comm [6, 10].
  T.append({0.0, 0, trace::EventKind::RegionEnter, R0, 0});
  T.append({0.0, 0, trace::EventKind::ActivityBegin, Comp, 0});
  T.append({4.0, 0, trace::EventKind::ActivityEnd, Comp, 0});
  T.append({6.0, 0, trace::EventKind::ActivityBegin, Comm, 0});
  T.append({10.0, 0, trace::EventKind::ActivityEnd, Comm, 0});
  T.append({10.0, 0, trace::EventKind::RegionExit, R0, 0});
  // Proc 1: region [0, 8], comp only [0, 8].
  T.append({0.0, 1, trace::EventKind::RegionEnter, R0, 0});
  T.append({0.0, 1, trace::EventKind::ActivityBegin, Comp, 0});
  T.append({8.0, 1, trace::EventKind::ActivityEnd, Comp, 0});
  T.append({8.0, 1, trace::EventKind::RegionExit, R0, 0});
  return T;
}

} // namespace

TEST(TraceReductionTest, AttributesActivityIntervals) {
  auto Cube = cantFail(reduceTrace(makeReductionTrace()));
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 4.0);
  EXPECT_DOUBLE_EQ(Cube.time(0, 1, 0), 4.0);
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 1), 8.0);
  EXPECT_DOUBLE_EQ(Cube.time(0, 1, 1), 0.0);
  // Program time = trace span.
  EXPECT_DOUBLE_EQ(Cube.programTime(), 10.0);
}

TEST(TraceReductionTest, GapAttributionOptIn) {
  ReductionOptions Options;
  Options.AttributeGaps = true;
  Options.GapActivity = 0;
  auto Cube = cantFail(reduceTrace(makeReductionTrace(), Options));
  // Proc 0's gap (4, 6) lands in activity 0.
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 6.0);
}

TEST(TraceReductionTest, NestedRegionsGetExclusiveTime) {
  // routine [0, 10] contains loop [2, 6]; activity runs [0,10] split
  // into three intervals so it never straddles a region boundary.
  trace::Trace T(1);
  uint32_t Routine = T.addRegion("routine");
  uint32_t Loop = T.addRegion("loop");
  uint32_t A = T.addActivity("comp");
  T.append({0.0, 0, trace::EventKind::RegionEnter, Routine, 0});
  T.append({0.0, 0, trace::EventKind::ActivityBegin, A, 0});
  T.append({2.0, 0, trace::EventKind::ActivityEnd, A, 0});
  T.append({2.0, 0, trace::EventKind::RegionEnter, Loop, 0});
  T.append({2.0, 0, trace::EventKind::ActivityBegin, A, 0});
  T.append({6.0, 0, trace::EventKind::ActivityEnd, A, 0});
  T.append({6.0, 0, trace::EventKind::RegionExit, Loop, 0});
  T.append({6.0, 0, trace::EventKind::ActivityBegin, A, 0});
  T.append({10.0, 0, trace::EventKind::ActivityEnd, A, 0});
  T.append({10.0, 0, trace::EventKind::RegionExit, Routine, 0});

  auto Cube = cantFail(reduceTrace(T));
  // Exclusive semantics: the loop gets its 4s; the routine keeps only
  // the 6s outside the loop.
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 6.0);
  EXPECT_DOUBLE_EQ(Cube.time(1, 0, 0), 4.0);
}

TEST(TraceReductionTest, NestedGapAttribution) {
  // routine [0, 10]; loop [2, 6] fully covered by an activity; the
  // routine's own time is uncovered -> gaps of 2s before and 4s after.
  trace::Trace T(1);
  uint32_t Routine = T.addRegion("routine");
  uint32_t Loop = T.addRegion("loop");
  uint32_t A = T.addActivity("comp");
  T.append({0.0, 0, trace::EventKind::RegionEnter, Routine, 0});
  T.append({2.0, 0, trace::EventKind::RegionEnter, Loop, 0});
  T.append({2.0, 0, trace::EventKind::ActivityBegin, A, 0});
  T.append({6.0, 0, trace::EventKind::ActivityEnd, A, 0});
  T.append({6.0, 0, trace::EventKind::RegionExit, Loop, 0});
  T.append({10.0, 0, trace::EventKind::RegionExit, Routine, 0});

  ReductionOptions Options;
  Options.AttributeGaps = true;
  Options.GapActivity = 0;
  auto Cube = cantFail(reduceTrace(T, Options));
  EXPECT_DOUBLE_EQ(Cube.time(1, 0, 0), 4.0); // Loop's activity.
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 6.0); // Routine gaps (2 + 4).
}

TEST(TraceReductionTest, RejectsInvalidTrace) {
  trace::Trace T(1);
  uint32_t R = T.addRegion("r");
  T.addActivity("a");
  T.append({0.0, 0, trace::EventKind::RegionEnter, R, 0});
  auto Result = reduceTrace(T); // Region never exits.
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

//===----------------------------------------------------------------------===//
// Region clustering and pipeline
//===----------------------------------------------------------------------===//

TEST(RegionClusteringTest, GroupsSimilarRegions) {
  MeasurementCube Cube({"big1", "big2", "small1", "small2"}, {"a", "b"}, 2);
  auto Fill = [&](size_t I, double A, double B) {
    Cube.at(I, 0, 0) = A;
    Cube.at(I, 0, 1) = A;
    Cube.at(I, 1, 0) = B;
    Cube.at(I, 1, 1) = B;
  };
  Fill(0, 10.0, 5.0);
  Fill(1, 11.0, 5.5);
  Fill(2, 0.5, 0.2);
  Fill(3, 0.4, 0.3);
  auto Clusters = cantFail(clusterRegions(Cube));
  EXPECT_EQ(Clusters.Assignments[0], Clusters.Assignments[1]);
  EXPECT_EQ(Clusters.Assignments[2], Clusters.Assignments[3]);
  EXPECT_NE(Clusters.Assignments[0], Clusters.Assignments[2]);
  EXPECT_GT(Clusters.Silhouette, 0.8);
}

TEST(PipelineTest, AnalyzeProducesCoherentResult) {
  MeasurementCube Cube = makeSmallCube();
  auto Result = cantFail(analyze(Cube));
  EXPECT_EQ(Result.Profile.HeaviestRegion, 1u);
  EXPECT_EQ(Result.Activities.MostImbalanced, 1u);
  EXPECT_EQ(Result.Regions.MostImbalanced, 1u);
  EXPECT_EQ(Result.Patterns.size(), 2u);
  EXPECT_TRUE(Result.HasClusters);
  ASSERT_FALSE(Result.RegionCandidates.empty());
  EXPECT_EQ(Result.RegionCandidates[0].Item,
            Result.Regions.MostImbalancedScaled);
}

TEST(PipelineTest, RejectsEmptyCube) {
  MeasurementCube Cube({"r"}, {"a"}, 2);
  auto Result = analyze(Cube);
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(PipelineTest, ClusteringSkippedWhenDegenerate) {
  // Two identical regions: fewer distinct points than K=2.
  MeasurementCube Cube({"r0", "r1"}, {"a"}, 1);
  Cube.at(0, 0, 0) = 1.0;
  Cube.at(1, 0, 0) = 1.0;
  auto Result = cantFail(analyze(Cube));
  EXPECT_FALSE(Result.HasClusters);
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

TEST(ReportTest, Table1ShowsDashesForUnperformed) {
  MeasurementCube Cube = makeSmallCube();
  CoarseProfile Profile = computeCoarseProfile(Cube);
  TextTable Table = makeRegionBreakdownTable(Cube, Profile);
  std::string Out = Table.toString();
  EXPECT_NE(Out.find("r1"), std::string::npos);
  EXPECT_NE(Out.find("-"), std::string::npos); // r1/comm proc 0 is... t_ij>0.
  EXPECT_NE(Out.find("overall"), std::string::npos);
}

TEST(ReportTest, SummaryNamesTheFindings) {
  MeasurementCube Cube = makeSmallCube();
  auto Result = cantFail(analyze(Cube));
  std::string Summary =
      summarizeFindings(Cube, Result.Profile, Result.Activities,
                        Result.Regions, Result.Processors);
  EXPECT_NE(Summary.find("r1"), std::string::npos);
  EXPECT_NE(Summary.find("comp"), std::string::npos);
}

TEST(ReportTest, ProcessorMatrixTableShowsEveryProcessor) {
  MeasurementCube Cube = makeSmallCube();
  ProcessorView View = computeProcessorView(Cube);
  std::string Out = makeProcessorMatrixTable(Cube, View).toString();
  EXPECT_NE(Out.find("p1"), std::string::npos);
  EXPECT_NE(Out.find("p2"), std::string::npos);
  EXPECT_NE(Out.find("ID_P matrix"), std::string::npos);
}

TEST(ReportTest, ClusterDescriptionListsRegions) {
  MeasurementCube Cube = makeSmallCube();
  auto Result = cantFail(analyze(Cube));
  ASSERT_TRUE(Result.HasClusters);
  std::string Description = describeClusters(Cube, Result.Clusters);
  EXPECT_NE(Description.find("group 0:"), std::string::npos);
  EXPECT_NE(Description.find("silhouette"), std::string::npos);
}
