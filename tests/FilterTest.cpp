//===- tests/FilterTest.cpp - trace slicing tests -------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/TraceReduction.h"
#include "trace/Filter.h"
#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::trace;

namespace {

/// One proc, two regions, two instances of "hot": hot[0,1], cold[2,3],
/// hot[4,5].  Every instance carries one computation activity.
Trace makeFilterTrace() {
  Trace T(1);
  uint32_t Hot = T.addRegion("hot");
  uint32_t Cold = T.addRegion("cold");
  uint32_t A = T.addActivity("comp");
  auto instance = [&](uint32_t Region, double Begin, double End) {
    T.append({Begin, 0, EventKind::RegionEnter, Region, 0});
    T.append({Begin, 0, EventKind::ActivityBegin, A, 0});
    T.append({End, 0, EventKind::ActivityEnd, A, 0});
    T.append({End, 0, EventKind::RegionExit, Region, 0});
  };
  instance(Hot, 0.0, 1.0);
  instance(Cold, 2.0, 3.0);
  instance(Hot, 4.0, 5.0);
  return T;
}

} // namespace

TEST(FilterTest, KeepsOnlyNamedRegions) {
  FilterOptions Options;
  Options.Regions = {"hot"};
  Trace Sliced = cantFail(filterTrace(makeFilterTrace(), Options));
  // Name tables intact, events reduced to the two hot instances.
  EXPECT_EQ(Sliced.numRegions(), 2u);
  EXPECT_EQ(Sliced.numEvents(), 8u);
  Error E = Sliced.validate();
  EXPECT_FALSE(static_cast<bool>(E));
  auto Cube = cantFail(core::reduceTrace(Sliced));
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 2.0); // Both hot instances.
  EXPECT_DOUBLE_EQ(Cube.time(1, 0, 0), 0.0); // Cold filtered out.
}

TEST(FilterTest, TimeWindowKeepsFullyContainedInstances) {
  FilterOptions Options;
  Options.TimeBegin = 1.5;
  Options.TimeEnd = 5.5;
  Trace Sliced = cantFail(filterTrace(makeFilterTrace(), Options));
  // hot[0,1] starts before the window; cold[2,3] and hot[4,5] survive.
  EXPECT_EQ(Sliced.numEvents(), 8u);
  auto Cube = cantFail(core::reduceTrace(Sliced));
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Cube.time(1, 0, 0), 1.0);
}

TEST(FilterTest, PartiallyOverlappingInstanceIsDropped) {
  FilterOptions Options;
  Options.TimeBegin = 0.5; // Cuts into hot[0,1].
  Options.TimeEnd = 3.5;   // Cuts before hot[4,5].
  Trace Sliced = cantFail(filterTrace(makeFilterTrace(), Options));
  auto Cube = cantFail(core::reduceTrace(Sliced));
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 0.0); // Both hot instances cut.
  EXPECT_DOUBLE_EQ(Cube.time(1, 0, 0), 1.0);
}

TEST(FilterTest, MessagesDroppedByDefault) {
  Trace T(2);
  uint32_t R = T.addRegion("r");
  T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.1, 0, EventKind::MessageSend, 1, 64});
  T.append({0.2, 0, EventKind::RegionExit, R, 0});
  T.append({0.0, 1, EventKind::RegionEnter, R, 0});
  T.append({0.3, 1, EventKind::MessageRecv, 0, 64});
  T.append({0.4, 1, EventKind::RegionExit, R, 0});

  Trace Sliced = cantFail(filterTrace(T, {}));
  EXPECT_EQ(Sliced.numEvents(), 4u); // Only the region brackets.
  Error E = Sliced.validate();
  EXPECT_FALSE(static_cast<bool>(E));

  FilterOptions Keep;
  Keep.KeepMessages = true;
  Trace WithMessages = cantFail(filterTrace(T, Keep));
  EXPECT_EQ(WithMessages.numEvents(), 6u);
}

TEST(FilterTest, RejectsUnknownRegionAndEmptyWindow) {
  FilterOptions Bad;
  Bad.Regions = {"nonexistent"};
  EXPECT_TRUE(testutil::failed(filterTrace(makeFilterTrace(), Bad)));

  FilterOptions Empty;
  Empty.TimeBegin = 5.0;
  Empty.TimeEnd = 1.0;
  EXPECT_TRUE(testutil::failed(filterTrace(makeFilterTrace(), Empty)));
}

TEST(FilterTest, CfdSliceAnalyzesStandalone) {
  cfd::CfdConfig Config;
  Config.Procs = 6;
  Config.Nx = 32;
  Config.RowsPerRank = 4;
  Config.Iterations = 3;
  auto Run = cantFail(cfd::runCfd(Config));

  FilterOptions Options;
  Options.Regions = {"pressure", "viscous"};
  Trace Sliced = cantFail(filterTrace(Run.Trace, Options));
  Error E = Sliced.validate();
  EXPECT_FALSE(static_cast<bool>(E));

  auto Full = cantFail(core::reduceTrace(Run.Trace));
  auto Slice = cantFail(core::reduceTrace(Sliced));
  // Kept regions carry identical times; dropped regions zero out.
  for (size_t J = 0; J != Full.numActivities(); ++J)
    for (unsigned P = 0; P != Full.numProcs(); ++P) {
      EXPECT_NEAR(Slice.time(0, J, P), Full.time(0, J, P), 1e-12);
      EXPECT_DOUBLE_EQ(Slice.time(2, J, P), 0.0);
    }
}
