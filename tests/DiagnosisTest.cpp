//===- tests/DiagnosisTest.cpp - rule-engine tests ------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Diagnosis.h"
#include "core/PaperDataset.h"
#include <algorithm>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;

namespace {

bool hasKind(const std::vector<Diagnosis> &Findings, DiagnosisKind Kind) {
  return std::any_of(Findings.begin(), Findings.end(),
                     [&](const Diagnosis &D) { return D.Kind == Kind; });
}

const Diagnosis *findKind(const std::vector<Diagnosis> &Findings,
                          DiagnosisKind Kind) {
  for (const Diagnosis &D : Findings)
    if (D.Kind == Kind)
      return &D;
  return nullptr;
}

} // namespace

TEST(DiagnosisTest, PaperCubeFindingsMatchSection4Narrative) {
  MeasurementCube Cube = paper::buildCube();
  auto Analysis = cantFail(analyze(Cube));
  auto Findings = diagnose(Cube, Analysis);
  ASSERT_FALSE(Findings.empty());

  // Loop 1 must be flagged as the load-imbalance tuning candidate.
  const Diagnosis *Candidate =
      findKind(Findings, DiagnosisKind::RegionLoadImbalance);
  ASSERT_NE(Candidate, nullptr);
  EXPECT_EQ(Candidate->Region, 0u);
  EXPECT_NE(Candidate->Explanation.find("loop1"), std::string::npos);

  // Loop 6's severe-but-negligible imbalance must be de-prioritized.
  bool Loop6Negligible = false;
  for (const Diagnosis &D : Findings) {
    if (D.Kind == DiagnosisKind::NegligibleImbalance && D.Region == 5)
      Loop6Negligible = true;
  }
  EXPECT_TRUE(Loop6Negligible);

  // Synchronization (0.1% of T) must NOT be reported as overhead.
  EXPECT_FALSE(hasKind(Findings, DiagnosisKind::SynchronizationOverhead));

  // Processor 1 wins only 2 of 7 regions: just above the default 25%
  // hotspot bar.
  const Diagnosis *Hotspot =
      findKind(Findings, DiagnosisKind::ProcessorHotspot);
  ASSERT_NE(Hotspot, nullptr);
  EXPECT_EQ(Hotspot->Proc, 0u);
}

TEST(DiagnosisTest, SortedBySeverityThenScore) {
  MeasurementCube Cube = paper::buildCube();
  auto Analysis = cantFail(analyze(Cube));
  auto Findings = diagnose(Cube, Analysis);
  for (size_t I = 1; I < Findings.size(); ++I) {
    EXPECT_GE(static_cast<int>(Findings[I - 1].Level),
              static_cast<int>(Findings[I].Level));
    if (Findings[I - 1].Level == Findings[I].Level) {
      EXPECT_GE(Findings[I - 1].Score, Findings[I].Score);
    }
  }
}

TEST(DiagnosisTest, BalancedProgramProducesNoImbalanceFindings) {
  MeasurementCube Cube({"r0", "r1"}, {"computation", "point-to-point"}, 4);
  for (size_t I = 0; I != 2; ++I)
    for (unsigned P = 0; P != 4; ++P) {
      Cube.at(I, 0, P) = 5.0;
      Cube.at(I, 1, P) = 1.0;
    }
  auto Analysis = cantFail(analyze(Cube));
  auto Findings = diagnose(Cube, Analysis);
  EXPECT_FALSE(hasKind(Findings, DiagnosisKind::RegionLoadImbalance));
  EXPECT_FALSE(hasKind(Findings, DiagnosisKind::ProcessorHotspot));
}

TEST(DiagnosisTest, SynchronizationOverheadRule) {
  MeasurementCube Cube({"r"}, {"computation", "synchronization"}, 2);
  for (unsigned P = 0; P != 2; ++P) {
    Cube.at(0, 0, P) = 5.0;
    Cube.at(0, 1, P) = 2.0; // ~29% synchronization.
  }
  auto Analysis = cantFail(analyze(Cube));
  auto Findings = diagnose(Cube, Analysis);
  const Diagnosis *Sync =
      findKind(Findings, DiagnosisKind::SynchronizationOverhead);
  ASSERT_NE(Sync, nullptr);
  EXPECT_EQ(Sync->Level, Severity::Critical); // 29% >= 2 * 5%.
  EXPECT_NEAR(Sync->Score, 2.0 / 7.0, 1e-9);
}

TEST(DiagnosisTest, CommunicationBoundRule) {
  MeasurementCube Cube({"r"}, {"computation", "point-to-point",
                               "collective"}, 2);
  for (unsigned P = 0; P != 2; ++P) {
    Cube.at(0, 0, P) = 2.0;
    Cube.at(0, 1, P) = 3.0;
    Cube.at(0, 2, P) = 3.0; // 75% communication.
  }
  auto Analysis = cantFail(analyze(Cube));
  auto Findings = diagnose(Cube, Analysis);
  const Diagnosis *Comm =
      findKind(Findings, DiagnosisKind::CommunicationBound);
  ASSERT_NE(Comm, nullptr);
  EXPECT_NEAR(Comm->Score, 0.75, 1e-9);
}

TEST(DiagnosisTest, LowCoverageRule) {
  MeasurementCube Cube({"r"}, {"computation"}, 2);
  Cube.at(0, 0, 0) = 1.0;
  Cube.at(0, 0, 1) = 1.0;
  Cube.setProgramTime(10.0); // Regions cover only 10%.
  auto Analysis = cantFail(analyze(Cube));
  auto Findings = diagnose(Cube, Analysis);
  const Diagnosis *Coverage = findKind(Findings, DiagnosisKind::LowCoverage);
  ASSERT_NE(Coverage, nullptr);
  EXPECT_NEAR(Coverage->Score, 0.1, 1e-9);
}

TEST(DiagnosisTest, SingleRegionDominanceRule) {
  MeasurementCube Cube({"big", "small"}, {"computation"}, 2);
  for (unsigned P = 0; P != 2; ++P) {
    Cube.at(0, 0, P) = 9.0;
    Cube.at(1, 0, P) = 1.0;
  }
  auto Analysis = cantFail(analyze(Cube));
  auto Findings = diagnose(Cube, Analysis);
  const Diagnosis *Dominance =
      findKind(Findings, DiagnosisKind::SingleRegionDominance);
  ASSERT_NE(Dominance, nullptr);
  EXPECT_EQ(Dominance->Region, 0u);
  EXPECT_NEAR(Dominance->Score, 0.9, 1e-9);
}

TEST(DiagnosisTest, ThresholdsAreConfigurable) {
  MeasurementCube Cube = paper::buildCube();
  auto Analysis = cantFail(analyze(Cube));
  DiagnosisOptions Options;
  Options.CandidateScaledIndex = 1.0; // Impossible bar.
  Options.HotspotRegionFraction = 1.0;
  auto Findings = diagnose(Cube, Analysis, Options);
  EXPECT_FALSE(hasKind(Findings, DiagnosisKind::RegionLoadImbalance));
  EXPECT_FALSE(hasKind(Findings, DiagnosisKind::ProcessorHotspot));
}

TEST(DiagnosisTest, RenderingNumbersAndSeverities) {
  MeasurementCube Cube = paper::buildCube();
  auto Analysis = cantFail(analyze(Cube));
  auto Findings = diagnose(Cube, Analysis);
  std::string Report = renderDiagnoses(Cube, Findings);
  EXPECT_NE(Report.find("1. ["), std::string::npos);
  EXPECT_NE(Report.find("->"), std::string::npos);
  EXPECT_NE(Report.find("region-load-imbalance"), std::string::npos);
}

TEST(DiagnosisTest, EmptyFindingsRendering) {
  MeasurementCube Cube({"r"}, {"computation"}, 2);
  Cube.at(0, 0, 0) = 1.0;
  Cube.at(0, 0, 1) = 1.0;
  auto Analysis = cantFail(analyze(Cube));
  auto Findings = diagnose(Cube, Analysis);
  if (Findings.empty()) {
    EXPECT_NE(renderDiagnoses(Cube, Findings).find("well balanced"),
              std::string::npos);
  }
}

TEST(DiagnosisTest, NamesAreStable) {
  EXPECT_EQ(diagnosisKindName(DiagnosisKind::RegionLoadImbalance),
            "region-load-imbalance");
  EXPECT_EQ(severityName(Severity::Critical), "critical");
  EXPECT_EQ(severityName(Severity::Info), "info");
}
