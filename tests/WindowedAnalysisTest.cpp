//===- tests/WindowedAnalysisTest.cpp - Windowed analysis tests -----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/WindowedAnalysis.h"
#include "core/TraceReduction.h"
#include "TestHelpers.h"
#include <gtest/gtest.h>
#include <limits>

using namespace lima;
using namespace lima::core;
using trace::EventKind;

namespace {

/// Two regions, two activities, three processors with uneven times —
/// enough structure for every view to be non-trivial.
trace::Trace makeTrace() {
  trace::Trace T(3);
  uint32_t R0 = T.addRegion("setup");
  uint32_t R1 = T.addRegion("solve");
  uint32_t Comp = T.addActivity("comp");
  uint32_t Comm = T.addActivity("comm");
  double Durations[3] = {1.0, 1.5, 0.75};
  for (uint32_t P = 0; P != 3; ++P) {
    double D = Durations[P];
    T.append({0.0, P, EventKind::RegionEnter, R0, 0});
    T.append({0.0, P, EventKind::ActivityBegin, Comp, 0});
    T.append({D, P, EventKind::ActivityEnd, Comp, 0});
    T.append({D, P, EventKind::RegionExit, R0, 0});
    T.append({D, P, EventKind::RegionEnter, R1, 0});
    T.append({D, P, EventKind::ActivityBegin, Comm, 0});
    T.append({D + 0.5, P, EventKind::ActivityEnd, Comm, 0});
    T.append({D + 0.5, P, EventKind::ActivityBegin, Comp, 0});
    T.append({2.5 + 0.25 * P, P, EventKind::ActivityEnd, Comp, 0});
    T.append({2.5 + 0.25 * P, P, EventKind::RegionExit, R1, 0});
  }
  return T;
}

WindowedAnalyzer makeAnalyzer(const trace::Trace &T, WindowedOptions Opts) {
  return WindowedAnalyzer(T.regionNames(), T.activityNames(), T.numProcs(),
                          Opts);
}

} // namespace

TEST(WindowedAnalysisTest, FullSpanWindowBitIdenticalToReduceTrace) {
  trace::Trace T = makeTrace();
  MeasurementCube Whole = cantFail(reduceTrace(T));

  WindowedOptions Opts;
  Opts.WindowSeconds = 100.0; // One window covers the whole span.
  WindowedAnalyzer A = makeAnalyzer(T, Opts);
  ASSERT_FALSE(A.addTrace(T));
  std::vector<WindowResult> Windows = A.finish();
  ASSERT_EQ(Windows.size(), 1u);
  const MeasurementCube &Cube = Windows[0].Cube;

  // Bitwise equality, not tolerance: the windowed fold must perform the
  // same additions in the same order as the whole-trace reduction.
  ASSERT_EQ(Cube.numRegions(), Whole.numRegions());
  ASSERT_EQ(Cube.numActivities(), Whole.numActivities());
  ASSERT_EQ(Cube.numProcs(), Whole.numProcs());
  for (size_t I = 0; I != Whole.numRegions(); ++I)
    for (size_t J = 0; J != Whole.numActivities(); ++J)
      for (unsigned P = 0; P != Whole.numProcs(); ++P)
        EXPECT_EQ(Cube.time(I, J, P), Whole.time(I, J, P))
            << "cell (" << I << ", " << J << ", " << P << ")";
  EXPECT_EQ(Cube.programTime(), Whole.programTime());

  // Identical cube bits imply identical views; spot-check the derived
  // indices are bitwise equal too.
  ActivityView WholeA = computeActivityView(Whole);
  RegionView WholeR = computeRegionView(Whole);
  ProcessorView WholeP = computeProcessorView(Whole);
  for (size_t J = 0; J != WholeA.Index.size(); ++J) {
    EXPECT_EQ(Windows[0].Activities.Index[J], WholeA.Index[J]);
    EXPECT_EQ(Windows[0].Activities.ScaledIndex[J], WholeA.ScaledIndex[J]);
  }
  for (size_t I = 0; I != WholeR.Index.size(); ++I) {
    EXPECT_EQ(Windows[0].Regions.Index[I], WholeR.Index[I]);
    EXPECT_EQ(Windows[0].Regions.ScaledIndex[I], WholeR.ScaledIndex[I]);
  }
  EXPECT_EQ(Windows[0].Processors.MostFrequentlyImbalanced,
            WholeP.MostFrequentlyImbalanced);
}

TEST(WindowedAnalysisTest, WindowedCellsSumToWholeCube) {
  trace::Trace T = makeTrace();
  MeasurementCube Whole = cantFail(reduceTrace(T));

  WindowedOptions Opts;
  Opts.WindowSeconds = 0.4; // Forces splits at many boundaries.
  WindowedAnalyzer A = makeAnalyzer(T, Opts);
  ASSERT_FALSE(A.addTrace(T));
  std::vector<WindowResult> Windows = A.finish();
  ASSERT_GT(Windows.size(), 2u);

  for (size_t I = 0; I != Whole.numRegions(); ++I)
    for (size_t J = 0; J != Whole.numActivities(); ++J)
      for (unsigned P = 0; P != Whole.numProcs(); ++P) {
        double Sum = 0.0;
        for (const WindowResult &W : Windows)
          Sum += W.Cube.time(I, J, P);
        EXPECT_NEAR(Sum, Whole.time(I, J, P), 1e-12)
            << "cell (" << I << ", " << J << ", " << P << ")";
      }
}

TEST(WindowedAnalysisTest, IntervalSplitsAcrossBoundaries) {
  trace::Trace T(1);
  T.addRegion("r");
  T.addActivity("a");
  T.append({0.5, 0, EventKind::RegionEnter, 0, 0});
  T.append({0.5, 0, EventKind::ActivityBegin, 0, 0});
  T.append({2.5, 0, EventKind::ActivityEnd, 0, 0});
  T.append({2.5, 0, EventKind::RegionExit, 0, 0});

  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  WindowedAnalyzer A = makeAnalyzer(T, Opts);
  ASSERT_FALSE(A.addTrace(T));
  std::vector<WindowResult> Windows = A.finish();
  ASSERT_EQ(Windows.size(), 3u);
  EXPECT_DOUBLE_EQ(Windows[0].Cube.time(0, 0, 0), 0.5); // [0.5, 1).
  EXPECT_DOUBLE_EQ(Windows[1].Cube.time(0, 0, 0), 1.0); // [1, 2).
  EXPECT_DOUBLE_EQ(Windows[2].Cube.time(0, 0, 0), 0.5); // [2, 2.5).
  EXPECT_EQ(Windows[0].Index, 0u);
  EXPECT_EQ(Windows[2].Index, 2u);
}

TEST(WindowedAnalysisTest, FeedOrderDoesNotChangeResults) {
  trace::Trace T = makeTrace();

  WindowedOptions Opts;
  Opts.WindowSeconds = 0.6;
  WindowedAnalyzer ByProc = makeAnalyzer(T, Opts);
  ASSERT_FALSE(ByProc.addTrace(T)); // Processor-major.

  // Time-interleaved feed: merge the per-processor streams by time.
  WindowedAnalyzer ByTime = makeAnalyzer(T, Opts);
  std::vector<trace::Event> All;
  for (unsigned P = 0; P != T.numProcs(); ++P)
    for (const trace::Event &E : T.events(P))
      All.push_back(E);
  std::stable_sort(All.begin(), All.end(),
                   [](const trace::Event &A, const trace::Event &B) {
                     return A.Time < B.Time;
                   });
  for (const trace::Event &E : All)
    ASSERT_FALSE(ByTime.addEvent(E));

  std::vector<WindowResult> A = ByProc.finish();
  std::vector<WindowResult> B = ByTime.finish();
  ASSERT_EQ(A.size(), B.size());
  for (size_t W = 0; W != A.size(); ++W) {
    ASSERT_EQ(A[W].Index, B[W].Index);
    for (size_t I = 0; I != A[W].Cube.numRegions(); ++I)
      for (size_t J = 0; J != A[W].Cube.numActivities(); ++J)
        for (unsigned P = 0; P != A[W].Cube.numProcs(); ++P)
          EXPECT_EQ(A[W].Cube.time(I, J, P), B[W].Cube.time(I, J, P));
  }
}

TEST(WindowedAnalysisTest, WatermarkGatesDraining) {
  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  WindowedAnalyzer A({"r"}, {"a"}, 2, Opts);

  // Proc 0 races ahead to t=3.2; proc 1 has seen nothing yet.
  ASSERT_FALSE(A.addEvent({0.0, 0, EventKind::RegionEnter, 0, 0}));
  ASSERT_FALSE(A.addEvent({0.1, 0, EventKind::ActivityBegin, 0, 0}));
  ASSERT_FALSE(A.addEvent({3.2, 0, EventKind::ActivityEnd, 0, 0}));
  EXPECT_DOUBLE_EQ(A.watermark(), 0.0);
  EXPECT_TRUE(A.drainCompleted().empty());

  // Proc 1 advances to t=1.5: windows ending at or before 1.5 drain.
  ASSERT_FALSE(A.addEvent({0.0, 1, EventKind::RegionEnter, 0, 0}));
  ASSERT_FALSE(A.addEvent({1.5, 1, EventKind::ActivityBegin, 0, 0}));
  EXPECT_DOUBLE_EQ(A.watermark(), 1.5);
  std::vector<WindowResult> Done = A.drainCompleted();
  ASSERT_EQ(Done.size(), 1u);
  EXPECT_EQ(Done[0].Index, 0u);

  // An open activity pins the watermark at its begin time even when
  // later events (a message send) advance the processor's clock.
  ASSERT_FALSE(A.addEvent({2.0, 1, EventKind::ActivityEnd, 0, 0}));
  ASSERT_FALSE(A.addEvent({2.2, 1, EventKind::ActivityBegin, 0, 0}));
  ASSERT_FALSE(A.addEvent({2.8, 1, EventKind::MessageSend, 0, 16}));
  EXPECT_DOUBLE_EQ(A.watermark(), 2.2);
  Done = A.drainCompleted();
  ASSERT_EQ(Done.size(), 1u); // Window [1, 2) only.
  EXPECT_EQ(Done[0].Index, 1u);

  // finish() flushes the rest regardless of the watermark.
  Done = A.finish();
  ASSERT_FALSE(Done.empty());
  EXPECT_EQ(Done.front().Index, 2u);
}

TEST(WindowedAnalysisTest, LenientDropCountsMatchReduceTrace) {
  // An activity end with no begin on proc 0: reduceTrace drops exactly
  // one record in lenient mode; the windowed fold must agree.
  trace::Trace T(1);
  T.addRegion("r");
  T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, 0, 0});
  T.append({1.0, 0, EventKind::ActivityEnd, 0, 0}); // No begin.
  T.append({1.5, 0, EventKind::ActivityBegin, 0, 0});
  T.append({2.0, 0, EventKind::ActivityEnd, 0, 0});
  T.append({2.0, 0, EventKind::RegionExit, 0, 0});

  ParseReport WholeReport;
  ReductionOptions Reduction;
  Reduction.Mode = ParseMode::Lenient;
  Reduction.Report = &WholeReport;
  MeasurementCube Whole = cantFail(reduceTrace(T, Reduction));

  ParseReport WindowReport;
  WindowedOptions Opts;
  Opts.WindowSeconds = 100.0;
  Opts.Mode = ParseMode::Lenient;
  Opts.Report = &WindowReport;
  WindowedAnalyzer A = makeAnalyzer(T, Opts);
  ASSERT_FALSE(A.addTrace(T));
  std::vector<WindowResult> Windows = A.finish();

  EXPECT_EQ(WindowReport.TotalRecords, WholeReport.TotalRecords);
  EXPECT_EQ(WindowReport.DroppedRecords, WholeReport.DroppedRecords);
  EXPECT_EQ(WindowReport.DroppedRecords, 1u);
  ASSERT_EQ(Windows.size(), 1u);
  EXPECT_EQ(Windows[0].Cube.time(0, 0, 0), Whole.time(0, 0, 0));
}

TEST(WindowedAnalysisTest, StrictModeRejectsStructuralErrors) {
  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  WindowedAnalyzer A({"r"}, {"a"}, 1, Opts);
  EXPECT_TRUE(testutil::failed(
      A.addEvent({0.0, 0, EventKind::RegionExit, 0, 0})));
}

TEST(WindowedAnalysisTest, RejectsOutOfRangeAndTimeRegression) {
  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  WindowedAnalyzer A({"r"}, {"a"}, 1, Opts);
  EXPECT_TRUE(testutil::failed(
      A.addEvent({0.0, 1, EventKind::RegionEnter, 0, 0}))); // Bad proc.
  EXPECT_TRUE(testutil::failed(
      A.addEvent({0.0, 0, EventKind::RegionEnter, 7, 0}))); // Bad region.
  ASSERT_FALSE(A.addEvent({1.0, 0, EventKind::RegionEnter, 0, 0}));
  EXPECT_TRUE(testutil::failed(
      A.addEvent({0.5, 0, EventKind::RegionEnter, 0, 0}))); // Backwards.
}

TEST(WindowedAnalysisTest, RejectsNonFiniteTimes) {
  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  WindowedAnalyzer A({"r"}, {"a"}, 1, Opts);
  double Inf = std::numeric_limits<double>::infinity();
  double NaN = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(testutil::failed(
      A.addEvent({Inf, 0, EventKind::RegionEnter, 0, 0})));
  EXPECT_TRUE(testutil::failed(
      A.addEvent({NaN, 0, EventKind::RegionEnter, 0, 0})));
  EXPECT_TRUE(testutil::failed(
      A.addEvent({-1.0, 0, EventKind::RegionEnter, 0, 0})));
}

TEST(WindowedAnalysisTest, HugeIntervalSpanFailsWithLimitExceeded) {
  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  WindowedAnalyzer A({"r"}, {"a"}, 1, Opts);
  ASSERT_FALSE(A.addEvent({0.0, 0, EventKind::RegionEnter, 0, 0}));
  ASSERT_FALSE(A.addEvent({0.0, 0, EventKind::ActivityBegin, 0, 0}));
  // A finite but absurd end time must fail fast instead of allocating
  // one cube per window across 1e15 seconds (the test finishing at all
  // is the point).
  EXPECT_TRUE(testutil::failed(
      A.addEvent({1e15, 0, EventKind::ActivityEnd, 0, 0})));
}

TEST(WindowedAnalysisTest, WindowsInFlightCapEnforced) {
  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  Opts.MaxWindowsInFlight = 4;
  WindowedAnalyzer A({"r"}, {"a"}, 1, Opts);
  // Message events touch only the per-window event counter; each lands
  // in its own window and nothing is drained in between.
  for (int T = 0; T != 4; ++T)
    ASSERT_FALSE(A.addEvent({double(T), 0, EventKind::MessageSend, 0, 8}));
  EXPECT_TRUE(testutil::failed(
      A.addEvent({4.0, 0, EventKind::MessageSend, 0, 8})));
}

TEST(WindowedAnalysisTest, LenientDropAdvancesTimeline) {
  ParseReport Report;
  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  Opts.Mode = ParseMode::Lenient;
  Opts.Report = &Report;
  WindowedAnalyzer A({"r"}, {"a"}, 1, Opts);
  // A dropped malformed event still advances the processor clock, the
  // watermark, and the event counters — mirroring reduceTrace, whose
  // span includes dropped events — it just attributes no time.
  ASSERT_FALSE(A.addEvent({2.5, 0, EventKind::RegionExit, 0, 0}));
  EXPECT_EQ(Report.DroppedRecords, 1u);
  EXPECT_DOUBLE_EQ(A.watermark(), 2.5);
  EXPECT_DOUBLE_EQ(A.spanEnd(), 2.5);
  EXPECT_EQ(A.eventsSeen(), 1u);
  // Later events are judged against the dropped event's time, so the
  // strict-mode and lenient-mode timelines agree.
  EXPECT_TRUE(testutil::failed(
      A.addEvent({1.0, 0, EventKind::MessageSend, 0, 8})));
}

TEST(WindowedAnalysisTest, EmptyWindowsSkippedUnlessRequested) {
  trace::Trace T(1);
  T.addRegion("r");
  T.addActivity("a");
  // Activity in window 0 and window 3; nothing in 1-2.
  T.append({0.0, 0, EventKind::RegionEnter, 0, 0});
  T.append({0.0, 0, EventKind::ActivityBegin, 0, 0});
  T.append({0.5, 0, EventKind::ActivityEnd, 0, 0});
  T.append({3.2, 0, EventKind::ActivityBegin, 0, 0});
  T.append({3.4, 0, EventKind::ActivityEnd, 0, 0});
  T.append({3.4, 0, EventKind::RegionExit, 0, 0});

  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  WindowedAnalyzer Skip = makeAnalyzer(T, Opts);
  ASSERT_FALSE(Skip.addTrace(T));
  std::vector<WindowResult> Windows = Skip.finish();
  ASSERT_EQ(Windows.size(), 2u);
  EXPECT_EQ(Windows[0].Index, 0u);
  EXPECT_EQ(Windows[1].Index, 3u);
  EXPECT_FALSE(Windows[0].Empty);

  Opts.EmitEmptyWindows = true;
  WindowedAnalyzer Keep = makeAnalyzer(T, Opts);
  ASSERT_FALSE(Keep.addTrace(T));
  Windows = Keep.finish();
  // Only windows touched by events materialize; window 3 carries the
  // region-exit boundary so 0 and 3 exist, and 3's cube has time.
  for (const WindowResult &W : Windows) {
    if (W.Index == 3u) {
      EXPECT_FALSE(W.Empty);
    }
  }
}

TEST(WindowedAnalysisTest, PartialFinalWindowProgramTimeIsCoveredSpan) {
  trace::Trace T(1);
  T.addRegion("r");
  T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, 0, 0});
  T.append({0.0, 0, EventKind::ActivityBegin, 0, 0});
  T.append({1.25, 0, EventKind::ActivityEnd, 0, 0});
  T.append({1.25, 0, EventKind::RegionExit, 0, 0});

  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  WindowedAnalyzer A = makeAnalyzer(T, Opts);
  ASSERT_FALSE(A.addTrace(T));
  std::vector<WindowResult> Windows = A.finish();
  ASSERT_EQ(Windows.size(), 2u);
  EXPECT_DOUBLE_EQ(Windows[0].Cube.programTime(), 1.0);
  EXPECT_DOUBLE_EQ(Windows[1].Cube.programTime(), 0.25);
}
