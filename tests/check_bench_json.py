#!/usr/bin/env python3
"""Validates the BENCH_parallel.json envelope produced by bench/perf_parallel.

Used by the bench_smoke ctest and the CI bench-smoke leg: parses the
file, checks the envelope fields and the per-section schema (including
the ingest and binary_ingest sections), and exits non-zero with a
readable message on the first violation.  Timing values are only
checked for type/positivity, never magnitude, so the check is stable on
loaded CI machines.

Compare mode:

    check_bench_json.py BENCH_parallel.json --compare bench/baseline.json

validates the file as above, then compares wall-clock numbers of the
hot sections (ingest, binary_ingest, reduce records) against a
checked-in baseline.  Only slowdowns beyond SLOWDOWN_LIMIT (2x) fail —
shared CI runners jitter far too much for tight thresholds, but a 2x
regression on the same workload is a real change.  Keys missing from
either side are skipped, so adding or renaming sections never breaks
the gate before the baseline is refreshed.
"""

import argparse
import json
import sys

# A section must be at least this many times slower than the baseline
# before compare mode fails.  Deliberately loose: the gate exists to
# catch algorithmic regressions, not scheduler noise.
SLOWDOWN_LIMIT = 2.0

# Wall-clock values below this are pure noise on any machine; skip the
# ratio check for them so microsecond legs cannot flip the gate.
MIN_COMPARABLE_MS = 5.0

REQUIRED_ENVELOPE = {
    "bench": str,
    "schema_version": int,
    "version": str,
    "git_rev": str,
    "hardware_threads": int,
    "timestamp": str,
    "records": list,
}

PARSE_LEG = {"strict_wall_ms": float, "lenient_wall_ms": float,
             "overhead_pct": float}

INGEST_LEG = {"wall_ms": float, "events_per_s": float, "mb_per_s": float,
              "speedup_vs_legacy": float}

BINARY_LEG = {"wall_ms": float, "events_per_s": float, "mb_per_s": float,
              "speedup_vs_v1": float}

WRITE_LEG = {"wall_ms": float, "events_per_s": float, "mb_per_s": float,
             "vs_buffered": float}

RECORD = {"name": str, "threads": int, "events": int,
          "wall_ms": float, "speedup": float}

HTTP = {"series": int, "render_wall_ms": float, "render_target_ms": float,
        "render_ok": bool, "scrape_requests": int,
        "scrape_p50_ms": float, "scrape_p99_ms": float,
        "sse_subscribers": int, "sse_frames": int, "sse_wall_ms": float,
        "sse_fanout_frames_per_s": float,
        "history_windows": int, "history_render_wall_ms": float}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_object(obj, schema, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected an object, got {type(obj).__name__}")
    for key, kind in schema.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        value = obj[key]
        if kind is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(f"{where}.{key}: expected a number, got {value!r}")
            # Overheads can legitimately dip below zero (timing noise);
            # wall-clock and throughput values cannot.
            if value < 0 and ("wall_ms" in key or "_per_s" in key):
                fail(f"{where}.{key}: negative timing value {value!r}")
        elif not isinstance(value, kind) or isinstance(value, bool) != (
                kind is bool):
            fail(f"{where}.{key}: expected {kind.__name__}, got {value!r}")


def validate(doc, path):
    check_object(doc, REQUIRED_ENVELOPE, "envelope")
    if doc["bench"] != "parallel":
        fail(f"envelope.bench: expected 'parallel', got {doc['bench']!r}")
    if doc["schema_version"] < 1:
        fail(f"envelope.schema_version: bad value {doc['schema_version']!r}")

    # Sections.
    parse = doc.get("parse")
    check_object(parse, {"events": int}, "parse")
    check_object(parse.get("text"), PARSE_LEG, "parse.text")
    check_object(parse.get("binary"), PARSE_LEG, "parse.binary")

    ingest = doc.get("ingest")
    check_object(ingest, {
        "events": int, "bytes": int, "hardware_threads": int,
        "lenient_overhead_pct": float, "lenient_overhead_target_pct": float,
        "lenient_overhead_ok": bool,
    }, "ingest")
    for leg in ("legacy", "scanner", "sharded_1", "sharded_hw"):
        check_object(ingest.get(leg), INGEST_LEG, f"ingest.{leg}")
    if ingest["legacy"]["speedup_vs_legacy"] != 1.0:
        fail("ingest.legacy.speedup_vs_legacy: must be 1.0 by definition")

    binary = doc.get("binary_ingest")
    check_object(binary, {
        "events": int, "v1_bytes": int, "v2_bytes": int,
        "hardware_threads": int, "index_overhead_pct": float,
        "index_overhead_target_pct": float, "index_overhead_ok": bool,
    }, "binary_ingest")
    for leg in ("v1", "v2_seq", "v2_sharded"):
        check_object(binary.get(leg), BINARY_LEG, f"binary_ingest.{leg}")
    if binary["v1"]["speedup_vs_v1"] != 1.0:
        fail("binary_ingest.v1.speedup_vs_v1: must be 1.0 by definition")
    # The on-disk block index is a hard size budget, not a timing: a
    # violation means the writer grew the format, so it fails even on
    # the noisiest runner.
    if not binary["index_overhead_ok"]:
        fail(f"binary_ingest: index overhead "
             f"{binary['index_overhead_pct']}% exceeds "
             f"{binary['index_overhead_target_pct']}% of the file")

    stream = doc.get("streaming_write")
    check_object(stream, {
        "events": int, "bytes": int, "peak_buffered_bytes": int,
        "block_bound_bytes": int, "peak_buffered_ok": bool,
    }, "streaming_write")
    for leg in ("buffered", "streamed"):
        check_object(stream.get(leg), WRITE_LEG, f"streaming_write.{leg}")
    if stream["buffered"]["vs_buffered"] != 1.0:
        fail("streaming_write.buffered.vs_buffered: must be 1.0 by "
             "definition")
    # Like the index budget, the writer's memory bound is structural,
    # not a timing: a violation means the one-block claim broke.
    if not stream["peak_buffered_ok"]:
        fail(f"streaming_write: peak buffered "
             f"{stream['peak_buffered_bytes']} bytes exceeds the "
             f"one-block bound of {stream['block_bound_bytes']}")

    for section in ("telemetry", "metrics"):
        check_object(doc.get(section), {"compiled": bool,
                                        "disabled_wall_ms": float,
                                        "enabled_wall_ms": float,
                                        "overhead_pct": float}, section)

    http = doc.get("http")
    check_object(http, HTTP, "http")
    if http["series"] < 1:
        fail(f"http.series: expected >= 1, got {http['series']!r}")
    if http["scrape_p50_ms"] > http["scrape_p99_ms"]:
        fail("http: scrape_p50_ms exceeds scrape_p99_ms")
    if http["sse_subscribers"] < 1 or http["sse_frames"] < 1:
        fail("http: SSE fan-out leg ran with no subscribers or frames")
    if http["history_windows"] < 1:
        fail("http: history render leg ran over an empty ring")

    if not doc["records"]:
        fail("records: empty")
    for i, record in enumerate(doc["records"]):
        check_object(record, RECORD, f"records[{i}]")

    print(f"check_bench_json: OK ({path}: "
          f"{len(doc['records'])} records, ingest scanner speedup "
          f"{ingest['scanner']['speedup_vs_legacy']}x, "
          f"binary v2 sharded "
          f"{binary['v2_sharded']['speedup_vs_v1']}x vs v1)")


def comparable_walls(doc):
    """Yields (label, wall_ms) pairs for the sections the regression
    gate watches.  Missing sections or legs are silently skipped so the
    gate tolerates schema evolution until the baseline is refreshed."""
    for section, legs in (("ingest", ("legacy", "scanner", "sharded_1",
                                      "sharded_hw")),
                          ("binary_ingest", ("v1", "v2_seq", "v2_sharded")),
                          ("streaming_write", ("buffered", "streamed"))):
        obj = doc.get(section)
        if not isinstance(obj, dict):
            continue
        for leg in legs:
            wall = obj.get(leg, {}).get("wall_ms") \
                if isinstance(obj.get(leg), dict) else None
            if isinstance(wall, (int, float)):
                yield f"{section}.{leg}", float(wall)
    for record in doc.get("records", []):
        if not isinstance(record, dict):
            continue
        name, threads = record.get("name"), record.get("threads")
        wall = record.get("wall_ms")
        if name in ("reduce", "stats", "bootstrap",
                    "kmeans") and isinstance(wall, (int, float)):
            yield f"records.{name}@{threads}", float(wall)


def compare(doc, baseline_path):
    try:
        with open(baseline_path, encoding="utf-8") as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse baseline {baseline_path}: {err}")

    base_walls = dict(comparable_walls(base))
    checked = 0
    worst = ("", 0.0)
    for label, wall in comparable_walls(doc):
        base_wall = base_walls.get(label)
        if base_wall is None or base_wall < MIN_COMPARABLE_MS:
            continue
        ratio = wall / base_wall
        checked += 1
        if ratio > worst[1]:
            worst = (label, ratio)
        if ratio > SLOWDOWN_LIMIT:
            fail(f"regression: {label} took {wall:.1f} ms vs baseline "
                 f"{base_wall:.1f} ms ({ratio:.2f}x > {SLOWDOWN_LIMIT}x)")
    if checked == 0:
        print("check_bench_json: compare: no overlapping sections above "
              f"{MIN_COMPARABLE_MS} ms; baseline likely needs a refresh")
    else:
        print(f"check_bench_json: compare OK ({checked} sections vs "
              f"{baseline_path}; worst {worst[0]} at {worst[1]:.2f}x, "
              f"limit {SLOWDOWN_LIMIT}x)")


def main():
    parser = argparse.ArgumentParser(
        description="validate (and optionally baseline-compare) "
                    "BENCH_parallel.json")
    parser.add_argument("bench_json")
    parser.add_argument("--compare", metavar="BASELINE_JSON",
                        help="also compare wall-clock numbers against a "
                             "checked-in baseline (fails only on "
                             f">{SLOWDOWN_LIMIT}x slowdowns)")
    args = parser.parse_args()
    try:
        with open(args.bench_json, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {args.bench_json}: {err}")

    validate(doc, args.bench_json)
    if args.compare:
        compare(doc, args.compare)


if __name__ == "__main__":
    main()
