#!/usr/bin/env python3
"""Validates the BENCH_parallel.json envelope produced by bench/perf_parallel.

Used by the bench_smoke ctest and the CI bench-smoke leg: parses the
file, checks the envelope fields and the per-section schema (including
the ingest section added with the parallel-ingestion fast path), and
exits non-zero with a readable message on the first violation.  Timing
values are only checked for type/positivity, never magnitude, so the
check is stable on loaded CI machines.
"""

import json
import sys

REQUIRED_ENVELOPE = {
    "bench": str,
    "schema_version": int,
    "version": str,
    "git_rev": str,
    "hardware_threads": int,
    "timestamp": str,
    "records": list,
}

PARSE_LEG = {"strict_wall_ms": float, "lenient_wall_ms": float,
             "overhead_pct": float}

INGEST_LEG = {"wall_ms": float, "events_per_s": float, "mb_per_s": float,
              "speedup_vs_legacy": float}

RECORD = {"name": str, "threads": int, "events": int,
          "wall_ms": float, "speedup": float}

HTTP = {"series": int, "render_wall_ms": float, "render_target_ms": float,
        "render_ok": bool, "scrape_requests": int,
        "scrape_p50_ms": float, "scrape_p99_ms": float}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_object(obj, schema, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected an object, got {type(obj).__name__}")
    for key, kind in schema.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        value = obj[key]
        if kind is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(f"{where}.{key}: expected a number, got {value!r}")
            # Overheads can legitimately dip below zero (timing noise);
            # wall-clock and throughput values cannot.
            if value < 0 and ("wall_ms" in key or "_per_s" in key):
                fail(f"{where}.{key}: negative timing value {value!r}")
        elif not isinstance(value, kind) or isinstance(value, bool) != (
                kind is bool):
            fail(f"{where}.{key}: expected {kind.__name__}, got {value!r}")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py <BENCH_parallel.json>")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {sys.argv[1]}: {err}")

    check_object(doc, REQUIRED_ENVELOPE, "envelope")
    if doc["bench"] != "parallel":
        fail(f"envelope.bench: expected 'parallel', got {doc['bench']!r}")
    if doc["schema_version"] < 1:
        fail(f"envelope.schema_version: bad value {doc['schema_version']!r}")

    # Sections.
    parse = doc.get("parse")
    check_object(parse, {"events": int}, "parse")
    check_object(parse.get("text"), PARSE_LEG, "parse.text")
    check_object(parse.get("binary"), PARSE_LEG, "parse.binary")

    ingest = doc.get("ingest")
    check_object(ingest, {
        "events": int, "bytes": int, "hardware_threads": int,
        "lenient_overhead_pct": float, "lenient_overhead_target_pct": float,
        "lenient_overhead_ok": bool,
    }, "ingest")
    for leg in ("legacy", "scanner", "sharded_1", "sharded_hw"):
        check_object(ingest.get(leg), INGEST_LEG, f"ingest.{leg}")
    if ingest["legacy"]["speedup_vs_legacy"] != 1.0:
        fail("ingest.legacy.speedup_vs_legacy: must be 1.0 by definition")

    for section in ("telemetry", "metrics"):
        check_object(doc.get(section), {"compiled": bool,
                                        "disabled_wall_ms": float,
                                        "enabled_wall_ms": float,
                                        "overhead_pct": float}, section)

    http = doc.get("http")
    check_object(http, HTTP, "http")
    if http["series"] < 1:
        fail(f"http.series: expected >= 1, got {http['series']!r}")
    if http["scrape_p50_ms"] > http["scrape_p99_ms"]:
        fail("http: scrape_p50_ms exceeds scrape_p99_ms")

    if not doc["records"]:
        fail("records: empty")
    for i, record in enumerate(doc["records"]):
        check_object(record, RECORD, f"records[{i}]")

    print(f"check_bench_json: OK ({sys.argv[1]}: "
          f"{len(doc['records'])} records, ingest scanner speedup "
          f"{ingest['scanner']['speedup_vs_legacy']}x, "
          f"http render {http['render_wall_ms']} ms)")


if __name__ == "__main__":
    main()
