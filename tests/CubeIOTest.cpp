//===- tests/CubeIOTest.cpp - cube persistence tests ----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/CubeIO.h"
#include "core/PaperDataset.h"
#include "core/Views.h"
#include "TestHelpers.h"
#include <cstdio>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;

TEST(CubeIOTest, RoundTripsPaperCube) {
  MeasurementCube Original = paper::buildCube();
  std::string CSV = writeCubeCSV(Original);
  MeasurementCube Parsed = cantFail(parseCubeCSV(CSV));

  ASSERT_EQ(Parsed.numRegions(), Original.numRegions());
  ASSERT_EQ(Parsed.numActivities(), Original.numActivities());
  ASSERT_EQ(Parsed.numProcs(), Original.numProcs());
  EXPECT_DOUBLE_EQ(Parsed.programTime(), Original.programTime());
  for (size_t I = 0; I != Original.numRegions(); ++I) {
    EXPECT_EQ(Parsed.regionName(I), Original.regionName(I));
    for (size_t J = 0; J != Original.numActivities(); ++J)
      for (unsigned P = 0; P != Original.numProcs(); ++P)
        EXPECT_NEAR(Parsed.time(I, J, P), Original.time(I, J, P), 1e-9);
  }
  // The round-tripped cube reproduces the same analysis.
  auto MatrixA = computeDissimilarityMatrix(Original);
  auto MatrixB = computeDissimilarityMatrix(Parsed);
  for (size_t I = 0; I != Original.numRegions(); ++I)
    for (size_t J = 0; J != Original.numActivities(); ++J)
      EXPECT_NEAR(MatrixA[I][J], MatrixB[I][J], 1e-9);
}

TEST(CubeIOTest, HandWrittenCSVAccepted) {
  std::string CSV = "region,activity,proc,seconds\n"
                    "solve,comp,1,2.5\n"
                    "solve,comp,2,3.5\n"
                    "solve,comm,1,0.5\n"
                    "io,comp,2,0.25\n";
  MeasurementCube Cube = cantFail(parseCubeCSV(CSV));
  EXPECT_EQ(Cube.numRegions(), 2u);
  EXPECT_EQ(Cube.numActivities(), 2u);
  EXPECT_EQ(Cube.numProcs(), 2u);
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 1), 3.5);
  EXPECT_DOUBLE_EQ(Cube.time(1, 0, 1), 0.25);
  EXPECT_DOUBLE_EQ(Cube.time(1, 1, 0), 0.0);
  EXPECT_FALSE(Cube.hasExplicitProgramTime());
}

TEST(CubeIOTest, ProgramTimePseudoRow) {
  std::string CSV = "region,activity,proc,seconds\n"
                    "#program-time,,,42.5\n"
                    "r,a,1,1.0\n";
  MeasurementCube Cube = cantFail(parseCubeCSV(CSV));
  EXPECT_TRUE(Cube.hasExplicitProgramTime());
  EXPECT_DOUBLE_EQ(Cube.programTime(), 42.5);
}

TEST(CubeIOTest, DuplicateCellsAccumulate) {
  std::string CSV = "region,activity,proc,seconds\n"
                    "r,a,1,1.0\n"
                    "r,a,1,2.0\n";
  MeasurementCube Cube = cantFail(parseCubeCSV(CSV));
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 3.0);
}

TEST(CubeIOTest, RejectsMalformedInput) {
  EXPECT_TRUE(testutil::failed(parseCubeCSV("wrong,header\n")));
  EXPECT_TRUE(testutil::failed(
      parseCubeCSV("region,activity,proc,seconds\nr,a,0,1.0\n")));
  EXPECT_TRUE(testutil::failed(
      parseCubeCSV("region,activity,proc,seconds\nr,a,1,-1.0\n")));
  EXPECT_TRUE(testutil::failed(
      parseCubeCSV("region,activity,proc,seconds\nr,a,1\n")));
  EXPECT_TRUE(testutil::failed(
      parseCubeCSV("region,activity,proc,seconds\n")));
  // Program time below the instrumented total fails cube validation.
  EXPECT_TRUE(testutil::failed(
      parseCubeCSV("region,activity,proc,seconds\n"
                   "#program-time,,,0.1\nr,a,1,5.0\n")));
}

TEST(CubeIOTest, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/lima_cube_test.csv";
  MeasurementCube Original = paper::buildCube();
  cantFail(saveCube(Original, Path));
  MeasurementCube Loaded = cantFail(loadCube(Path));
  EXPECT_NEAR(Loaded.instrumentedTotal(), Original.instrumentedTotal(),
              1e-9);
  std::remove(Path.c_str());
}
