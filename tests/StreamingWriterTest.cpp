//===- tests/StreamingWriterTest.cpp - crash-consistent writer tests ------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Pins the StreamingBinaryWriter's two contracts:
//
//  1. A close()d file is byte-identical to writeTraceBinary's output
//     except for the streamed header flag, so every existing reader
//     path (indexed, parallel, sequential fallback) applies unchanged.
//
//  2. Kill the writer at ANY byte boundary — simulated by truncating a
//     finished file at every block boundary +/- a few bytes, and by
//     snapshotting the live file mid-write — and parsing recovers
//     exactly the fully-flushed block prefix, in strict and lenient
//     mode, at every thread count.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include "trace/BinaryIO.h"
#include "trace/ParallelBinary.h"
#include "trace/TraceIO.h"
#include "TestHelpers.h"
#include <gtest/gtest.h>
#include <sys/stat.h>

using namespace lima;
using namespace lima::trace;
using lima::testutil::failed;

namespace {

constexpr unsigned NumProcs = 3;

/// A deterministic interleaved event sequence: per-processor times are
/// non-decreasing and every id is in range, so the values survive
/// validation; the processor interleaving forces multiple runs per
/// block.
std::vector<Event> makeEvents(size_t Total) {
  std::vector<Event> Events;
  Events.reserve(Total);
  for (size_t I = 0; I != Total; ++I) {
    Event E;
    E.Proc = static_cast<uint32_t>((I / 5) % NumProcs);
    E.Time = 0.001 * static_cast<double>(I);
    switch (I % 4) {
    case 0:
      E.Kind = EventKind::RegionEnter;
      E.Id = static_cast<uint32_t>(I % 2);
      break;
    case 1:
      E.Kind = EventKind::ActivityBegin;
      E.Id = static_cast<uint32_t>(I % 2);
      break;
    case 2:
      E.Kind = EventKind::ActivityEnd;
      E.Id = static_cast<uint32_t>(I % 2);
      E.Bytes = I;
      break;
    default:
      E.Kind = EventKind::RegionExit;
      E.Id = static_cast<uint32_t>(I % 2);
      break;
    }
    Events.push_back(E);
  }
  return Events;
}

/// The trace the first \p Count events of the sequence describe.
Trace prefixTrace(const std::vector<Event> &Events, size_t Count) {
  Trace T(NumProcs);
  T.addRegion("halo");
  T.addRegion("solve");
  T.addActivity("compute");
  T.addActivity("wait");
  for (size_t I = 0; I != Count; ++I)
    T.append(Events[I]);
  return T;
}

Error openWriter(StreamingBinaryWriter &W, const std::string &Path,
                 const BinaryWriteOptions &Options) {
  return W.open(Path, {"halo", "solve"}, {"compute", "wait"}, NumProcs,
                Options);
}

uint64_t fileSize(const std::string &Path) {
  struct stat St;
  EXPECT_EQ(::stat(Path.c_str(), &St), 0);
  return static_cast<uint64_t>(St.st_size);
}

bool tracesEqual(const Trace &A, const Trace &B) {
  return writeTraceText(A) == writeTraceText(B);
}

/// Expects \p Data (a possibly-truncated streamed file) to parse to
/// exactly \p Expected events in both modes at 1/2/8 threads.
void expectSalvage(const std::string &Data, const std::vector<Event> &Events,
                   uint64_t Expected, const char *What) {
  Trace Want = prefixTrace(Events, Expected);
  for (unsigned Threads : {1u, 2u, 8u}) {
    for (ParseMode Mode : {ParseMode::Strict, ParseMode::Lenient}) {
      ParseOptions Options;
      Options.Mode = Mode;
      ParseReport Report;
      if (Mode == ParseMode::Lenient)
        Options.Report = &Report;
      auto ParsedOrErr = parseTraceBinaryParallel(Data, Options, Threads);
      ASSERT_FALSE(failed(std::move(ParsedOrErr)))
          << What << " threads=" << Threads;
      Trace Parsed =
          cantFail(parseTraceBinaryParallel(Data, Options, Threads));
      EXPECT_EQ(Parsed.numEvents(), Expected)
          << What << " threads=" << Threads;
      EXPECT_TRUE(tracesEqual(Parsed, Want))
          << What << " threads=" << Threads;
      if (Mode == ParseMode::Lenient) {
        EXPECT_EQ(Report.DroppedRecords, 0u) << What;
      }
    }
  }
}

} // namespace

TEST(StreamingWriterTest, ByteIdenticalToBufferedExceptFlag) {
  std::vector<Event> Events = makeEvents(1000);
  Trace T = prefixTrace(Events, Events.size());
  BinaryWriteOptions Options;
  Options.BlockEvents = 64;
  std::string Buffered = writeTraceBinary(T, Options);

  std::string Path = ::testing::TempDir() + "/lima_stream_ident.limb";
  ASSERT_FALSE(failed(StreamingBinaryWriter::writeTrace(T, Path, Options)));
  std::string Streamed = cantFail(readFile(Path));

  ASSERT_EQ(Streamed.size(), Buffered.size());
  // The only difference is flag bit 1 in the u32 at offset 8.
  EXPECT_EQ(Streamed[8] & 0x2, 0x2);
  Streamed[8] = static_cast<char>(Streamed[8] & ~0x2);
  EXPECT_EQ(Streamed, Buffered);
  std::remove(Path.c_str());
}

TEST(StreamingWriterTest, RoundTripsInterleavedAppends) {
  std::vector<Event> Events = makeEvents(777);
  std::string Path = ::testing::TempDir() + "/lima_stream_roundtrip.limb";
  BinaryWriteOptions Options;
  Options.BlockEvents = 50;
  StreamingBinaryWriter W;
  ASSERT_FALSE(failed(openWriter(W, Path, Options)));
  for (const Event &E : Events)
    ASSERT_FALSE(failed(W.append(E)));
  EXPECT_EQ(W.eventsAppended(), Events.size());
  EXPECT_LE(W.bufferedBytes(), 50u * 24u); // O(one block), never the file
  ASSERT_FALSE(failed(W.close()));
  EXPECT_FALSE(W.isOpen());

  std::string Data = cantFail(readFile(Path));
  expectSalvage(Data, Events, Events.size(), "complete file");
  std::remove(Path.c_str());
}

TEST(StreamingWriterTest, LiveFileSnapshotsRecoverFlushedPrefix) {
  // Read the file while the writer is still open — byte-for-byte what a
  // kill -9 at that instant would leave — and at a destructor-closed
  // (crashed, never close()d) end state.
  std::vector<Event> Events = makeEvents(500);
  std::string Path = ::testing::TempDir() + "/lima_stream_live.limb";
  BinaryWriteOptions Options;
  Options.BlockEvents = 64;
  {
    StreamingBinaryWriter W;
    ASSERT_FALSE(failed(openWriter(W, Path, Options)));
    for (size_t I = 0; I != Events.size(); ++I) {
      ASSERT_FALSE(failed(W.append(Events[I])));
      if (I % 50 == 0 || I + 1 == Events.size()) {
        std::string Snapshot = cantFail(readFile(Path));
        expectSalvage(Snapshot, Events, W.eventsFlushed(), "live snapshot");
      }
    }
    // Writer destroyed here without close(): no tail flush, no index.
  }
  std::string Data = cantFail(readFile(Path));
  // 500 events / 64 per block = 7 full blocks (448 events) flushed.
  expectSalvage(Data, Events, 448, "unclosed file");
  std::remove(Path.c_str());
}

TEST(StreamingWriterTest, TruncationSweepRecoversExactPrefix) {
  // 576 events / 48 per block = exactly 12 blocks, so the last recorded
  // boundary is the payload end and everything past it is index bytes.
  std::vector<Event> Events = makeEvents(576);
  std::string Path = ::testing::TempDir() + "/lima_stream_sweep.limb";
  BinaryWriteOptions Options;
  Options.BlockEvents = 48;

  // Record every block boundary (file size, flushed events) as blocks
  // land; the first entry is the header end (payload start, 0 events).
  struct Boundary {
    uint64_t Offset;
    uint64_t Events;
  };
  std::vector<Boundary> Boundaries;
  StreamingBinaryWriter W;
  ASSERT_FALSE(failed(openWriter(W, Path, Options)));
  Boundaries.push_back({fileSize(Path), 0});
  uint64_t SeenBlocks = 0;
  for (const Event &E : Events) {
    ASSERT_FALSE(failed(W.append(E)));
    if (W.blocksFlushed() != SeenBlocks) {
      SeenBlocks = W.blocksFlushed();
      Boundaries.push_back({fileSize(Path), W.eventsFlushed()});
    }
  }
  ASSERT_FALSE(failed(W.close()));
  ASSERT_EQ(Boundaries.size(), 13u); // header + 12 blocks
  EXPECT_EQ(Boundaries.back().Events, Events.size());

  std::string Full = cantFail(readFile(Path));
  const uint64_t PayloadStart = Boundaries.front().Offset;

  // Cut at every block boundary +/- a few bytes.  Cuts past the payload
  // end land inside the index: the reader loses the index, falls back
  // to the sequential walk, consumes the header total exactly and
  // still recovers everything.  The same max-boundary-at-or-below-cut
  // rule predicts both regimes.
  auto expectedAt = [&](uint64_t Cut) {
    uint64_t Expected = 0;
    for (const Boundary &C : Boundaries)
      if (C.Offset <= Cut)
        Expected = std::max(Expected, C.Events);
    return Expected;
  };
  for (const Boundary &B : Boundaries) {
    for (int64_t Delta : {-7, -3, -1, 0, 1, 3, 7}) {
      int64_t Cut = static_cast<int64_t>(B.Offset) + Delta;
      if (Cut < static_cast<int64_t>(PayloadStart) ||
          Cut >= static_cast<int64_t>(Full.size()))
        continue;
      std::string Truncated = Full.substr(0, static_cast<size_t>(Cut));
      expectSalvage(Truncated, Events, expectedAt(static_cast<uint64_t>(Cut)),
                    "sweep cut");
    }
  }

  // Two representative index-region cuts: mid-index and one byte short
  // of the footer.
  const uint64_t PayloadEnd = Boundaries.back().Offset;
  ASSERT_LT(PayloadEnd, Full.size());
  for (uint64_t Cut : {(PayloadEnd + Full.size()) / 2, Full.size() - 1})
    expectSalvage(Full.substr(0, Cut), Events, Events.size(), "index cut");
  std::remove(Path.c_str());
}

TEST(StreamingWriterTest, EmptyFileAndHeaderOnlyCrashParse) {
  std::string Path = ::testing::TempDir() + "/lima_stream_empty.limb";
  BinaryWriteOptions Options;
  {
    StreamingBinaryWriter W;
    ASSERT_FALSE(failed(openWriter(W, Path, Options)));
    ASSERT_FALSE(failed(W.close()));
    Trace Parsed = cantFail(loadTraceBinary(Path));
    EXPECT_EQ(Parsed.numEvents(), 0u);
    EXPECT_EQ(Parsed.numProcs(), NumProcs);
    EXPECT_EQ(Parsed.numRegions(), 2u);
  }
  {
    // Crash right after open(): header only, total 0, no index.
    StreamingBinaryWriter W;
    ASSERT_FALSE(failed(openWriter(W, Path, Options)));
  }
  Trace Parsed = cantFail(loadTraceBinary(Path));
  EXPECT_EQ(Parsed.numEvents(), 0u);
  EXPECT_EQ(Parsed.numProcs(), NumProcs);
  std::remove(Path.c_str());
}

TEST(StreamingWriterTest, FailedFlushIsRetryable) {
  // ENOSPC on the header patch of the first block flush: the append
  // reports the error, the writer stays consistent, and once space
  // frees up (fault exhausted) close() finishes the full file.
  std::vector<Event> Events = makeEvents(64);
  std::string Path = ::testing::TempDir() + "/lima_stream_enospc.limb";
  BinaryWriteOptions Options;
  Options.BlockEvents = 64;
  StreamingBinaryWriter W;
  ASSERT_FALSE(failed(openWriter(W, Path, Options)));
  ASSERT_FALSE(failed(fault::configure("stream.patch:enospc@1")));
  bool SawError = false;
  for (const Event &E : Events) {
    if (Error Err = W.append(E)) {
      EXPECT_EQ(Err.code(), ErrorCode::IoError);
      Err.consume();
      SawError = true;
      break;
    }
  }
  ASSERT_TRUE(SawError);
  EXPECT_EQ(W.eventsFlushed(), 0u);
  EXPECT_EQ(W.eventsAppended(), Events.size());
  fault::reset();

  ASSERT_FALSE(failed(W.close()));
  std::string Data = cantFail(readFile(Path));
  expectSalvage(Data, Events, Events.size(), "post-retry file");
  std::remove(Path.c_str());
}

TEST(StreamingWriterTest, BufferedTruncationStaysFatal) {
  // The salvage carve-out is gated on the streamed flag: the same
  // truncation of a buffered (non-streamed) v2 file is still the hard
  // corruption error ParseErrorTest pins.
  std::vector<Event> Events = makeEvents(200);
  Trace T = prefixTrace(Events, Events.size());
  BinaryWriteOptions Options;
  Options.BlockEvents = 48;
  std::string Buffered = writeTraceBinary(T, Options);
  // Cut mid-payload; the header total (200) can no longer be consumed.
  std::string Truncated = Buffered.substr(0, Buffered.size() / 2);
  for (ParseMode Mode : {ParseMode::Strict, ParseMode::Lenient}) {
    ParseOptions ParseOpts;
    ParseOpts.Mode = Mode;
    ParseReport Report;
    if (Mode == ParseMode::Lenient)
      ParseOpts.Report = &Report;
    EXPECT_TRUE(failed(parseTraceBinaryParallel(Truncated, ParseOpts, 1)));
  }
}
