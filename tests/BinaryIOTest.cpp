//===- tests/BinaryIOTest.cpp - binary trace format tests -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "trace/BinaryIO.h"
#include "trace/TraceIO.h"
#include "TestHelpers.h"
#include <cstdio>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::trace;

namespace {

Trace makeTrace() {
  Trace T(2);
  uint32_t R = T.addRegion("region-with-a-long-name");
  uint32_t A = T.addActivity("computation");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.0, 0, EventKind::ActivityBegin, A, 0});
  T.append({1.25, 0, EventKind::ActivityEnd, A, 0});
  T.append({1.25, 0, EventKind::MessageSend, 1, 4096});
  T.append({1.5, 0, EventKind::RegionExit, R, 0});
  T.append({0.0, 1, EventKind::RegionEnter, R, 0});
  T.append({2.0, 1, EventKind::MessageRecv, 0, 4096});
  T.append({2.0, 1, EventKind::RegionExit, R, 0});
  return T;
}

bool tracesEqual(const Trace &A, const Trace &B) {
  return writeTraceText(A) == writeTraceText(B);
}

} // namespace

TEST(BinaryIOTest, RoundTripsExactly) {
  Trace T = makeTrace();
  Trace Parsed = cantFail(parseTraceBinary(writeTraceBinary(T)));
  EXPECT_TRUE(tracesEqual(T, Parsed));
}

TEST(BinaryIOTest, RoundTripsCfdTrace) {
  cfd::CfdConfig Config;
  Config.Procs = 6;
  Config.Nx = 32;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  Trace T = cantFail(cfd::runCfd(Config)).Trace;
  Trace Parsed = cantFail(parseTraceBinary(writeTraceBinary(T)));
  EXPECT_TRUE(tracesEqual(T, Parsed));
  Error E = Parsed.validate();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(BinaryIOTest, MuchSmallerThanText) {
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 32;
  Config.RowsPerRank = 4;
  Config.Iterations = 3;
  Trace T = cantFail(cfd::runCfd(Config)).Trace;
  size_t TextSize = writeTraceText(T).size();
  size_t BinarySize = writeTraceBinary(T).size();
  EXPECT_LT(BinarySize, TextSize / 1.7);
}

TEST(BinaryIOTest, RejectsBadMagic) {
  EXPECT_TRUE(testutil::failed(parseTraceBinary("NOPE00000000")));
  EXPECT_TRUE(testutil::failed(parseTraceBinary("")));
}

TEST(BinaryIOTest, RejectsBadVersion) {
  std::string Data = writeTraceBinary(makeTrace());
  Data[4] = 99; // Version field.
  EXPECT_TRUE(testutil::failed(parseTraceBinary(Data)));
}

TEST(BinaryIOTest, RejectsTruncation) {
  std::string Data = writeTraceBinary(makeTrace());
  for (size_t Cut : {Data.size() - 1, Data.size() / 2, size_t(6)})
    EXPECT_TRUE(testutil::failed(
        parseTraceBinary(std::string_view(Data).substr(0, Cut))))
        << "cut at " << Cut;
}

TEST(BinaryIOTest, RejectsTrailingBytes) {
  std::string Data = writeTraceBinary(makeTrace()) + "junk";
  EXPECT_TRUE(testutil::failed(parseTraceBinary(Data)));
}

TEST(BinaryIOTest, RejectsOutOfRangeIds) {
  Trace T = makeTrace();
  std::string Data = writeTraceBinary(T);
  // Corrupt the first event's id varint (after time f64 + kind u8).
  // Header: magic 4 + version 4 + procs 4 + regions(4 + 4+23) +
  // activities(4 + 4+11) + proc0 count 8 = 70; event time at 70.
  size_t IdOffset = 70 + 8 + 1;
  ASSERT_LT(IdOffset + 1, Data.size());
  Data[IdOffset] = 0x7F; // Region id 127, far out of range.
  EXPECT_TRUE(testutil::failed(parseTraceBinary(Data)));
}

TEST(BinaryIOTest, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/lima_binary_test.limb";
  Trace T = makeTrace();
  cantFail(saveTraceBinary(T, Path));
  Trace Loaded = cantFail(loadTraceBinary(Path));
  EXPECT_TRUE(tracesEqual(T, Loaded));
  std::remove(Path.c_str());
}
