//===- tests/BinaryIOTest.cpp - binary trace format tests -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "trace/BinaryIO.h"
#include "trace/TraceIO.h"
#include "TestHelpers.h"
#include <cstdio>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::trace;

namespace {

Trace makeTrace() {
  Trace T(2);
  uint32_t R = T.addRegion("region-with-a-long-name");
  uint32_t A = T.addActivity("computation");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.0, 0, EventKind::ActivityBegin, A, 0});
  T.append({1.25, 0, EventKind::ActivityEnd, A, 0});
  T.append({1.25, 0, EventKind::MessageSend, 1, 4096});
  T.append({1.5, 0, EventKind::RegionExit, R, 0});
  T.append({0.0, 1, EventKind::RegionEnter, R, 0});
  T.append({2.0, 1, EventKind::MessageRecv, 0, 4096});
  T.append({2.0, 1, EventKind::RegionExit, R, 0});
  return T;
}

bool tracesEqual(const Trace &A, const Trace &B) {
  return writeTraceText(A) == writeTraceText(B);
}

} // namespace

TEST(BinaryIOTest, RoundTripsExactly) {
  Trace T = makeTrace();
  Trace Parsed = cantFail(parseTraceBinary(writeTraceBinary(T)));
  EXPECT_TRUE(tracesEqual(T, Parsed));
}

TEST(BinaryIOTest, RoundTripsCfdTrace) {
  cfd::CfdConfig Config;
  Config.Procs = 6;
  Config.Nx = 32;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  Trace T = cantFail(cfd::runCfd(Config)).Trace;
  Trace Parsed = cantFail(parseTraceBinary(writeTraceBinary(T)));
  EXPECT_TRUE(tracesEqual(T, Parsed));
  Error E = Parsed.validate();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(BinaryIOTest, MuchSmallerThanText) {
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 32;
  Config.RowsPerRank = 4;
  Config.Iterations = 3;
  Trace T = cantFail(cfd::runCfd(Config)).Trace;
  size_t TextSize = writeTraceText(T).size();
  size_t BinarySize = writeTraceBinary(T).size();
  EXPECT_LT(BinarySize, TextSize / 1.7);
}

TEST(BinaryIOTest, RejectsBadMagic) {
  EXPECT_TRUE(testutil::failed(parseTraceBinary("NOPE00000000")));
  EXPECT_TRUE(testutil::failed(parseTraceBinary("")));
}

TEST(BinaryIOTest, RejectsBadVersion) {
  std::string Data = writeTraceBinary(makeTrace());
  Data[4] = 99; // Version field.
  EXPECT_TRUE(testutil::failed(parseTraceBinary(Data)));
}

TEST(BinaryIOTest, RejectsTruncationV1) {
  std::string Data = writeTraceBinaryV1(makeTrace());
  for (size_t Cut : {Data.size() - 1, Data.size() / 2, size_t(6)})
    EXPECT_TRUE(testutil::failed(
        parseTraceBinary(std::string_view(Data).substr(0, Cut))))
        << "cut at " << Cut;
}

TEST(BinaryIOTest, TruncationV2) {
  // Clipping into the header or payload is fatal; clipping only the
  // index/footer falls back to the sequential block walk and still
  // yields the complete trace (the payload is self-framing).
  Trace T = makeTrace();
  std::string Data = writeTraceBinary(T);
  for (size_t Cut : {Data.size() / 2, size_t(6)})
    EXPECT_TRUE(testutil::failed(
        parseTraceBinary(std::string_view(Data).substr(0, Cut))))
        << "cut at " << Cut;
  Trace Salvaged = cantFail(
      parseTraceBinary(std::string_view(Data).substr(0, Data.size() - 1)));
  EXPECT_TRUE(tracesEqual(T, Salvaged));
}

TEST(BinaryIOTest, RejectsTrailingBytesV1) {
  std::string Data = writeTraceBinaryV1(makeTrace()) + "junk";
  EXPECT_TRUE(testutil::failed(parseTraceBinary(Data)));
}

TEST(BinaryIOTest, TrailingBytesV2AreADamagedIndex) {
  // Appended bytes shift the footer, so the index no longer validates;
  // the reader salvages the self-framed payload and ignores the tail.
  Trace T = makeTrace();
  std::string Data = writeTraceBinary(T) + "junk";
  Trace Salvaged = cantFail(parseTraceBinary(Data));
  EXPECT_TRUE(tracesEqual(T, Salvaged));
}

TEST(BinaryIOTest, RejectsOutOfRangeIds) {
  Trace T = makeTrace();
  std::string Data = writeTraceBinaryV1(T);
  // Corrupt the first event's id varint (after time f64 + kind u8).
  // Header: magic 4 + version 4 + procs 4 + regions(4 + 4+23) +
  // activities(4 + 4+11) + proc0 count 8 = 70; event time at 70.
  size_t IdOffset = 70 + 8 + 1;
  ASSERT_LT(IdOffset + 1, Data.size());
  Data[IdOffset] = 0x7F; // Region id 127, far out of range.
  EXPECT_TRUE(testutil::failed(parseTraceBinary(Data)));
}

TEST(BinaryIOTest, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/lima_binary_test.limb";
  Trace T = makeTrace();
  cantFail(saveTraceBinary(T, Path));
  Trace Loaded = cantFail(loadTraceBinary(Path));
  EXPECT_TRUE(tracesEqual(T, Loaded));
  std::remove(Path.c_str());
}

TEST(BinaryIOTest, RoundTripsV1Format) {
  Trace T = makeTrace();
  Trace Parsed = cantFail(parseTraceBinary(writeTraceBinaryV1(T)));
  EXPECT_TRUE(tracesEqual(T, Parsed));
}

TEST(BinaryIOTest, RoundTripsTinyBlocks) {
  // A 3-event block size forces many blocks, several of which straddle
  // processors (runs from two streams in one block).
  cfd::CfdConfig Config;
  Config.Procs = 5;
  Config.Nx = 32;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  Trace T = cantFail(cfd::runCfd(Config)).Trace;
  BinaryWriteOptions Options;
  Options.BlockEvents = 3;
  Trace Parsed = cantFail(parseTraceBinary(writeTraceBinary(T, Options)));
  EXPECT_TRUE(tracesEqual(T, Parsed));
}

TEST(BinaryIOTest, RoundTripsWithoutBlockCrc) {
  Trace T = makeTrace();
  BinaryWriteOptions Options;
  Options.BlockCrc = false;
  Trace Parsed = cantFail(parseTraceBinary(writeTraceBinary(T, Options)));
  EXPECT_TRUE(tracesEqual(T, Parsed));
}

TEST(BinaryIOTest, V2FooterAndIndexOverhead) {
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 32;
  Config.RowsPerRank = 4;
  Config.Iterations = 50;
  Trace T = cantFail(cfd::runCfd(Config)).Trace;
  std::string V2 = writeTraceBinary(T);
  std::string V1 = writeTraceBinaryV1(T);
  // Fixed footer magic in the last 8 bytes.
  ASSERT_GE(V2.size(), 8u);
  EXPECT_EQ(V2.substr(V2.size() - 8), "LIMBIDX2");
  // Index + footer + header growth stay under 2 % of the file at the
  // default block size.
  ASSERT_GT(V2.size(), V1.size());
  double OverheadPct =
      100.0 * double(V2.size() - V1.size()) / double(V2.size());
  EXPECT_LT(OverheadPct, 2.0);
}

TEST(BinaryIOTest, EmptyStreamsRoundTrip) {
  Trace T(3);
  T.addRegion("r");
  T.addActivity("a");
  // No events at all: zero blocks, empty index, just header + footer.
  Trace Parsed = cantFail(parseTraceBinary(writeTraceBinary(T)));
  EXPECT_TRUE(tracesEqual(T, Parsed));
  EXPECT_EQ(Parsed.numEvents(), 0u);
}
