//===- tests/WindowHistoryTest.cpp - Window-history ring tests ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// core/WindowHistory: bounded retention (eviction order, counters),
// summarize() equivalence against the full cube it compresses, the
// since/limit snapshot contract, and append/snapshot races at 1, 2 and
// 8 threads (the TSan leg turns the latter into a real race hunt).
//
//===----------------------------------------------------------------------===//

#include "core/WindowHistory.h"
#include "core/Views.h"
#include "core/WindowedAnalysis.h"
#include "trace/Trace.h"
#include <atomic>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace lima;
using namespace lima::core;
using trace::EventKind;

namespace {

/// A minimal summary with a recognisable index.
WindowSummary makeSummary(uint64_t Index) {
  WindowSummary S;
  S.Index = Index;
  S.StartTime = static_cast<double>(Index);
  S.EndTime = static_cast<double>(Index + 1);
  S.Events = Index * 10;
  S.ProcLoad = {1.0, 2.0};
  S.MaxSidC = 0.5;
  return S;
}

/// Two regions, two activities, three processors with uneven times —
/// the same shape the windowed-analysis tests use, so every summary
/// field is non-trivial.
trace::Trace makeTrace() {
  trace::Trace T(3);
  uint32_t R0 = T.addRegion("setup");
  uint32_t R1 = T.addRegion("solve");
  uint32_t Comp = T.addActivity("comp");
  uint32_t Comm = T.addActivity("comm");
  double Durations[3] = {1.0, 1.5, 0.75};
  for (uint32_t P = 0; P != 3; ++P) {
    double D = Durations[P];
    T.append({0.0, P, EventKind::RegionEnter, R0, 0});
    T.append({0.0, P, EventKind::ActivityBegin, Comp, 0});
    T.append({D, P, EventKind::ActivityEnd, Comp, 0});
    T.append({D, P, EventKind::RegionExit, R0, 0});
    T.append({D, P, EventKind::RegionEnter, R1, 0});
    T.append({D, P, EventKind::ActivityBegin, Comm, 0});
    T.append({D + 0.5, P, EventKind::ActivityEnd, Comm, 0});
    T.append({D + 0.5, P, EventKind::ActivityBegin, Comp, 0});
    T.append({2.5 + 0.25 * P, P, EventKind::ActivityEnd, Comp, 0});
    T.append({2.5 + 0.25 * P, P, EventKind::RegionExit, R1, 0});
  }
  return T;
}

TEST(WindowHistoryTest, EvictsOldestInOrder) {
  WindowHistory H(3);
  for (uint64_t I = 0; I != 5; ++I)
    H.append(makeSummary(I));

  EXPECT_EQ(H.size(), 3u);
  EXPECT_EQ(H.capacity(), 3u);
  EXPECT_EQ(H.appended(), 5u);
  EXPECT_EQ(H.evictions(), 2u);

  // Windows 0 and 1 are gone; 2, 3, 4 remain in ascending order.
  std::vector<WindowSummary> Snap = H.snapshot();
  ASSERT_EQ(Snap.size(), 3u);
  EXPECT_EQ(Snap[0].Index, 2u);
  EXPECT_EQ(Snap[1].Index, 3u);
  EXPECT_EQ(Snap[2].Index, 4u);
  EXPECT_FALSE(H.get(0).has_value());
  EXPECT_FALSE(H.get(1).has_value());
  ASSERT_TRUE(H.get(4).has_value());
  EXPECT_EQ(H.get(4)->Events, 40u);
}

TEST(WindowHistoryTest, ZeroCapacityClampsToOne) {
  WindowHistory H(0);
  EXPECT_EQ(H.capacity(), 1u);
  H.append(makeSummary(0));
  H.append(makeSummary(1));
  EXPECT_EQ(H.size(), 1u);
  EXPECT_EQ(H.snapshot().front().Index, 1u);
  EXPECT_EQ(H.evictions(), 1u);
}

TEST(WindowHistoryTest, SnapshotSinceAndLimit) {
  WindowHistory H(10);
  for (uint64_t I = 0; I != 6; ++I)
    H.append(makeSummary(I));

  std::vector<WindowSummary> Since = H.snapshot(3);
  ASSERT_EQ(Since.size(), 3u);
  EXPECT_EQ(Since[0].Index, 3u);

  std::vector<WindowSummary> Limited = H.snapshot(0, 2);
  ASSERT_EQ(Limited.size(), 2u);
  EXPECT_EQ(Limited[0].Index, 0u);
  EXPECT_EQ(Limited[1].Index, 1u);

  std::vector<WindowSummary> Both = H.snapshot(2, 2);
  ASSERT_EQ(Both.size(), 2u);
  EXPECT_EQ(Both[0].Index, 2u);
  EXPECT_EQ(Both[1].Index, 3u);

  EXPECT_TRUE(H.snapshot(100).empty());
}

TEST(WindowHistoryTest, NamesSetOnceFromFirstResult) {
  WindowHistory H(4);
  H.setNames({"a", "b"}, {"x"});
  // Second set is a no-op once entries exist with the first names.
  H.append(makeSummary(0));
  H.setNames({"other"}, {"names"});
  EXPECT_EQ(H.regionNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(H.activityNames(), (std::vector<std::string>{"x"}));
}

TEST(WindowHistoryTest, SummarizeMatchesCube) {
  trace::Trace T = makeTrace();
  WindowedOptions Opts;
  Opts.WindowSeconds = 1.0;
  WindowedAnalyzer A(T.regionNames(), T.activityNames(), T.numProcs(), Opts);
  ASSERT_FALSE(A.addTrace(T));
  std::vector<WindowResult> Windows = A.finish();
  ASSERT_GE(Windows.size(), 2u);

  WindowHistory H(16);
  for (const WindowResult &W : Windows)
    H.appendResult(W, /*DroppedRecords=*/7);

  EXPECT_EQ(H.regionNames(), T.regionNames());
  EXPECT_EQ(H.activityNames(), T.activityNames());

  for (const WindowResult &W : Windows) {
    std::optional<WindowSummary> SOpt = H.get(W.Index);
    ASSERT_TRUE(SOpt.has_value()) << "window " << W.Index;
    const WindowSummary &S = *SOpt;

    EXPECT_EQ(S.StartTime, W.StartTime);
    EXPECT_EQ(S.EndTime, W.EndTime);
    EXPECT_EQ(S.Events, W.Events);
    EXPECT_EQ(S.Empty, W.Empty);
    EXPECT_EQ(S.DroppedRecords, 7u);

    // Per-processor load: bitwise equal to the cube column sums (same
    // additions in the same order).
    ASSERT_EQ(S.ProcLoad.size(), W.Cube.numProcs());
    for (unsigned P = 0; P != W.Cube.numProcs(); ++P) {
      double Sum = 0.0;
      for (size_t I = 0; I != W.Cube.numRegions(); ++I)
        for (size_t J = 0; J != W.Cube.numActivities(); ++J)
          Sum += W.Cube.time(I, J, P);
      EXPECT_EQ(S.ProcLoad[P], Sum) << "proc " << P;
    }

    // Dispersion indices are copies of the result's views.
    EXPECT_EQ(S.RegionIdC, W.Regions.Index);
    EXPECT_EQ(S.RegionSidC, W.Regions.ScaledIndex);
    EXPECT_EQ(S.ActivityIdA, W.Activities.Index);
    EXPECT_EQ(S.ActivitySidA, W.Activities.ScaledIndex);
    EXPECT_EQ(S.TopRegion, W.Regions.MostImbalancedScaled);
    EXPECT_EQ(S.TopActivity, W.Activities.MostImbalancedScaled);
    EXPECT_EQ(S.MostImbalancedProc, W.Processors.MostFrequentlyImbalanced);
    double MaxSid = 0.0;
    for (double V : W.Regions.ScaledIndex)
      MaxSid = std::max(MaxSid, V);
    EXPECT_EQ(S.MaxSidC, MaxSid);
  }
}

/// One writer appending, \p Readers threads snapshotting and point-
/// reading concurrently.  Under TSan this is the race hunt; under the
/// normal build it checks the counters and bounds stay coherent.
void raceAppendAndSnapshot(unsigned Readers) {
  WindowHistory H(32);
  std::atomic<bool> Done{false};
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Pool;
  for (unsigned R = 0; R != Readers; ++R)
    Pool.emplace_back([&] {
      while (!Done.load(std::memory_order_acquire)) {
        std::vector<WindowSummary> Snap = H.snapshot(0, 8);
        if (Snap.size() > 8)
          Failures.fetch_add(1);
        // Ascending, contiguous indices within one snapshot.
        for (size_t I = 1; I < Snap.size(); ++I)
          if (Snap[I].Index != Snap[I - 1].Index + 1)
            Failures.fetch_add(1);
        if (H.size() > 32)
          Failures.fetch_add(1);
        (void)H.get(H.appended() / 2);
      }
    });
  for (uint64_t I = 0; I != 2000; ++I)
    H.append(makeSummary(I));
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(H.appended(), 2000u);
  EXPECT_EQ(H.evictions(), 2000u - 32u);
  EXPECT_EQ(H.size(), 32u);
}

TEST(WindowHistoryTest, ConcurrentReads1Thread) { raceAppendAndSnapshot(1); }
TEST(WindowHistoryTest, ConcurrentReads2Threads) { raceAppendAndSnapshot(2); }
TEST(WindowHistoryTest, ConcurrentReads8Threads) { raceAppendAndSnapshot(8); }

} // namespace
