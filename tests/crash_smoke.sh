#!/bin/sh
# Smoke test for the crash-dump path: runs crash_dump_harness, which
# installs the fatal-signal handler and then takes a real SIGSEGV, and
# asserts (a) the process died by signal and (b) the dump file carries
# every section the handler promises.
# Usage: crash_smoke.sh HARNESS_BIN WORK_DIR
set -u

Harness="$1"
Work="$2"

rm -rf "$Work"
mkdir -p "$Work"
Dump="$Work/crash.dump"
Out="$Work/harness.out"

# Sanitizer runtimes intercept SIGSEGV by default; let the application
# handler run instead so the crash path under test actually executes.
ASAN_OPTIONS="${ASAN_OPTIONS:-}:handle_segv=0:allow_user_segv_handler=1"
TSAN_OPTIONS="${TSAN_OPTIONS:-}:handle_segv=0:allow_user_segv_handler=1"
UBSAN_OPTIONS="${UBSAN_OPTIONS:-}:handle_segv=0"
export ASAN_OPTIONS TSAN_OPTIONS UBSAN_OPTIONS

"$Harness" "$Dump" > "$Out" 2>&1
Status=$?

# 128+SIGSEGV(11)=139 under sh; anything >=128 is a signal death, which
# is what re-raising with the default disposition must produce.
if [ "$Status" -lt 128 ]; then
  echo "crash_smoke: expected signal death, got exit $Status" >&2
  cat "$Out" >&2
  exit 1
fi

if [ ! -s "$Dump" ]; then
  echo "crash_smoke: dump file missing or empty" >&2
  cat "$Out" >&2
  exit 1
fi

for Needle in \
    "==== lima crash dump ====" \
    "signal: SIGSEGV (11)" \
    "recent log records" \
    "about to fault" \
    "flight-recorder spans" \
    "span harness.work" \
    "==== end of crash dump ===="; do
  if ! grep -q "$Needle" "$Dump"; then
    echo "crash_smoke: dump missing \"$Needle\"" >&2
    cat "$Dump" >&2
    exit 1
  fi
done

echo "crash_smoke: OK (exit $Status)"
