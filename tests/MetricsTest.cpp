//===- tests/MetricsTest.cpp - Metrics registry & exporter tests ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/MetricsExport.h"
#include <gtest/gtest.h>
#include <thread>

using namespace lima;
using namespace lima::metrics;

//===----------------------------------------------------------------------===//
// Histogram quantiles
//===----------------------------------------------------------------------===//

TEST(HistogramTest, ExactQuantilesOnKnownDistribution) {
  // Bounds 10, 20, ..., 100; observations 1..100 — every bucket holds
  // exactly 10 samples, so the interpolated quantiles are exact.
  Histogram H("h", Histogram::linearBounds(10.0, 10.0, 10));
  for (int V = 1; V <= 100; ++V)
    H.observe(static_cast<double>(V));

  Histogram::Snapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Count, 100u);
  EXPECT_DOUBLE_EQ(Snap.Sum, 5050.0);
  EXPECT_DOUBLE_EQ(Snap.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(Snap.quantile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(Snap.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(Snap.quantile(1.0), 100.0);
}

TEST(HistogramTest, QuantileInterpolatesInsideBucket) {
  // One bucket [0, 10] with 4 samples: rank q*4 lands at 10 * q*4/4.
  Histogram H("h", {10.0, 20.0});
  for (int I = 0; I != 4; ++I)
    H.observe(5.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.25), 2.5);
}

TEST(HistogramTest, OverflowBucketClampsToLargestBound) {
  Histogram H("h", {1.0, 2.0});
  H.observe(1000.0);
  H.observe(2000.0);
  Histogram::Snapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Counts.back(), 2u);
  EXPECT_DOUBLE_EQ(Snap.quantile(0.99), 2.0);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram H("h", {1.0});
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 0.0);
}

TEST(HistogramTest, MergeOfShardsEqualsSingleShard) {
  std::vector<double> Bounds = Histogram::exponentialBounds(1.0, 2.0, 8);
  Histogram Single("s", Bounds);
  Histogram Spread("m", Bounds);
  for (int V = 0; V != 200; ++V) {
    double X = static_cast<double>(V % 97);
    Single.observeShard(X, 0);
    Spread.observeShard(X, static_cast<unsigned>(V) % NumShards);
  }
  Histogram::Snapshot A = Single.snapshot();
  Histogram::Snapshot B = Spread.snapshot();
  EXPECT_EQ(A.Counts, B.Counts);
  EXPECT_EQ(A.Count, B.Count);
  EXPECT_DOUBLE_EQ(A.Sum, B.Sum);
  EXPECT_DOUBLE_EQ(A.quantile(0.5), B.quantile(0.5));
  EXPECT_DOUBLE_EQ(A.quantile(0.99), B.quantile(0.99));
}

TEST(HistogramTest, QuantilesMonotonicInQ) {
  Histogram H("h", Histogram::exponentialBounds(0.001, 10.0, 7));
  // A skewed distribution across several buckets.
  for (int I = 0; I != 500; ++I)
    H.observe(0.0005 * static_cast<double>(1 + (I * I) % 4000));
  Histogram::Snapshot Snap = H.snapshot();
  double Prev = 0.0;
  for (double Q = 0.05; Q <= 1.0; Q += 0.05) {
    double Est = Snap.quantile(Q);
    EXPECT_GE(Est, Prev) << "quantile not monotone at q=" << Q;
    Prev = Est;
  }
}

TEST(HistogramTest, BucketSelectionUsesLeSemantics) {
  Histogram H("h", {1.0, 2.0});
  H.observe(1.0); // == bound -> first bucket (le="1").
  H.observe(1.5);
  Histogram::Snapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Counts[0], 1u);
  EXPECT_EQ(Snap.Counts[1], 1u);
  EXPECT_EQ(Snap.Counts[2], 0u);
}

//===----------------------------------------------------------------------===//
// Counter / gauge
//===----------------------------------------------------------------------===//

TEST(CounterTest, ShardMergeIsExact) {
  Counter C("c");
  uint64_t Expect = 0;
  for (unsigned I = 0; I != 100; ++I) {
    C.addShard(I, I % NumShards);
    Expect += I;
  }
  EXPECT_EQ(C.value(), Expect);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  for (unsigned Threads : {1u, 2u, 8u}) {
    Counter C("c");
    constexpr uint64_t PerThread = 20000;
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&C] {
        for (uint64_t I = 0; I != PerThread; ++I)
          C.add(1);
      });
    for (std::thread &T : Pool)
      T.join();
    EXPECT_EQ(C.value(), PerThread * Threads) << Threads << " threads";
  }
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  for (unsigned Threads : {1u, 2u, 8u}) {
    Histogram H("h", {0.5, 1.5, 2.5});
    constexpr uint64_t PerThread = 10000;
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&H, T] {
        for (uint64_t I = 0; I != PerThread; ++I)
          H.observe(static_cast<double>(T % 3));
      });
    for (std::thread &T : Pool)
      T.join();
    EXPECT_EQ(H.snapshot().Count, PerThread * Threads)
        << Threads << " threads";
  }
}

TEST(GaugeTest, SetAndAdd) {
  Gauge G("g");
  G.set(4.0);
  EXPECT_DOUBLE_EQ(G.value(), 4.0);
  G.add(-1.5);
  EXPECT_DOUBLE_EQ(G.value(), 2.5);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, SameNameReturnsSameObject) {
  Counter &A = counter("test.registry.same");
  Counter &B = counter("test.registry.same");
  EXPECT_EQ(&A, &B);
  Histogram &H1 = histogram("test.registry.hist", {1.0, 2.0});
  // Bounds are fixed at first registration; a later conflicting request
  // still returns the registered instance.
  Histogram &H2 = histogram("test.registry.hist", {9.0});
  EXPECT_EQ(&H1, &H2);
  EXPECT_EQ(H2.upperBounds().size(), 2u);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  counter("test.sort.b").add(1);
  counter("test.sort.a").add(1);
  RegistrySnapshot Snap = snapshotAll();
  std::string Prev;
  for (const RegistrySnapshot::CounterValue &C : Snap.Counters) {
    EXPECT_LE(Prev, C.Name);
    Prev = C.Name;
  }
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsRegistration) {
  Counter &C = counter("test.reset.c");
  C.add(7);
  resetAll();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(&counter("test.reset.c"), &C);
}

#if LIMA_TELEMETRY
TEST(MetricsRegistryTest, MacrosGateOnEnabled) {
  resetAll();
  setEnabled(false);
  LIMA_METRIC_COUNT("test.gate.counter", 5);
  EXPECT_EQ(counter("test.gate.counter").value(), 0u);
  setEnabled(true);
  LIMA_METRIC_COUNT("test.gate.counter", 5);
  EXPECT_EQ(counter("test.gate.counter").value(), 5u);
  setEnabled(false);
}
#endif

//===----------------------------------------------------------------------===//
// Prometheus exporter
//===----------------------------------------------------------------------===//

TEST(MetricsExportTest, SplitMetricNameSanitizesAndSplitsLabels) {
  SplitName Plain = splitMetricName("lima.reduce.events_total");
  EXPECT_EQ(Plain.Base, "lima_reduce_events_total");
  EXPECT_TRUE(Plain.Labels.empty());

  SplitName Labeled = splitMetricName("lima.window.sid_c{region=\"loop 1\"}");
  EXPECT_EQ(Labeled.Base, "lima_window_sid_c");
  EXPECT_EQ(Labeled.Labels, "region=\"loop 1\"");

  EXPECT_EQ(splitMetricName("9starts.with.digit").Base,
            "_starts_with_digit");
}

TEST(MetricsExportTest, ExpositionFormat) {
  // A hand-built snapshot gives a fully deterministic exposition.
  RegistrySnapshot Snap;
  Snap.Counters.push_back({"app.requests_total", 3});
  Snap.Gauges.push_back({"app.depth", 2.5});
  Histogram::Snapshot H;
  H.UpperBounds = {1.0, 2.0};
  H.Counts = {1, 2, 1}; // le=1: 1, le=2: 2, +Inf: 1.
  H.Count = 4;
  H.Sum = 7.5;
  Snap.Histograms.push_back({"app.latency_seconds", H});

  std::string Text = writePrometheusText(Snap);
  EXPECT_EQ(Text, "# TYPE app_requests_total counter\n"
                  "app_requests_total 3\n"
                  "# TYPE app_depth gauge\n"
                  "app_depth 2.5\n"
                  "# TYPE app_latency_seconds histogram\n"
                  "app_latency_seconds_bucket{le=\"1\"} 1\n"
                  "app_latency_seconds_bucket{le=\"2\"} 3\n"
                  "app_latency_seconds_bucket{le=\"+Inf\"} 4\n"
                  "app_latency_seconds_sum 7.5\n"
                  "app_latency_seconds_count 4\n");
}

TEST(MetricsExportTest, LabeledSamplesShareOneTypeLine) {
  RegistrySnapshot Snap;
  Snap.Gauges.push_back({"app.sid{region=\"a\"}", 1.0});
  Snap.Gauges.push_back({"app.sid{region=\"b\"}", 2.0});
  std::string Text = writePrometheusText(Snap);
  EXPECT_EQ(Text, "# TYPE app_sid gauge\n"
                  "app_sid{region=\"a\"} 1\n"
                  "app_sid{region=\"b\"} 2\n");
}

TEST(MetricsExportTest, EscapeLabelValue) {
  EXPECT_EQ(escapeLabelValue("plain"), "plain");
  EXPECT_EQ(escapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  // An escaped hostile name embedded the way lima_monitor builds its
  // per-region gauges yields valid exposition output.
  RegistrySnapshot Snap;
  Snap.Gauges.push_back(
      {"app.sid{region=\"" + escapeLabelValue("evil\"}\nname") + "\"}", 1.0});
  std::string Text = writePrometheusText(Snap);
  EXPECT_EQ(Text, "# TYPE app_sid gauge\n"
                  "app_sid{region=\"evil\\\"}\\nname\"} 1\n");
}

TEST(MetricsExportTest, HistogramLabelsComposeWithLe) {
  RegistrySnapshot Snap;
  Histogram::Snapshot H;
  H.UpperBounds = {1.0};
  H.Counts = {1, 0};
  H.Count = 1;
  H.Sum = 0.5;
  Snap.Histograms.push_back({"app.lat{stage=\"reduce\"}", H});
  std::string Text = writePrometheusText(Snap);
  EXPECT_NE(Text.find("app_lat_bucket{stage=\"reduce\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("app_lat_sum{stage=\"reduce\"} 0.5"),
            std::string::npos);
  EXPECT_NE(Text.find("app_lat_count{stage=\"reduce\"} 1"),
            std::string::npos);
}
