//===- tests/BinaryEquivalenceTest.cpp - v2 sharded vs v1 sequential ------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The golden-equivalence suite for the block-indexed binary reader:
// the same logical trace is serialized as LIMB v1 and as LIMB v2 (at
// several block sizes), then parsed through the v1 sequential reader
// and the v2 sharded reader at 1, 2 and 8 threads, in strict and
// lenient mode.
//
//  - Across v2 thread counts, everything must agree bit for bit:
//    events, success/failure, error code/offset/message, and the full
//    ParseReport (totals, per-code drops, sample order and text).
//  - Across encodings (v2 vs v1), the logical outcome must agree:
//    identical events, identical drop counts per code, identical error
//    codes — byte offsets necessarily differ between encodings.
//
// The suite also pins the fallback matrix: every corrupt-index shape
// (truncated footer, bad footer magic, index CRC damage, out-of-range
// index offset, inconsistent entries) must take the sequential salvage
// walk and still produce the full trace, while payload damage under a
// *valid* index is confined to the enclosing block (strict: that
// block's error; lenient: exactly that block's events dropped).  The
// checked-in corrupt fixtures in fuzz/corpus/fuzz_trace_binary/ are
// replayed against the same expectations.
//
//===----------------------------------------------------------------------===//

#include "support/Checksum.h"
#include "support/FileUtils.h"
#include "support/ParseLimits.h"
#include "trace/BinaryIO.h"
#include "trace/ParallelBinary.h"
#include "trace/TraceIO.h"
#include "gtest/gtest.h"
#include <cstring>
#include <vector>

using namespace lima;
using trace::Event;
using trace::EventKind;
using trace::Trace;

namespace {

std::string fixture(const std::string &Name) {
  return cantFail(readFile(std::string(LIMA_FUZZ_CORPUS_DIR) + "/" + Name));
}

/// A multi-processor trace with uneven streams, messages and (when
/// \p Dirty) a few negative-time events — the one value error both
/// writers can encode, so the same logical drops exist in v1 and v2.
Trace makeTrace(unsigned Procs, unsigned Rounds, bool Dirty) {
  Trace T(Procs);
  uint32_t Main = T.addRegion("main");
  uint32_t Loop = T.addRegion("loop");
  uint32_t Comp = T.addActivity("computation");
  uint32_t Comm = T.addActivity("communication");
  for (unsigned P = 0; P != Procs; ++P) {
    double Time = 0.0;
    T.append({Time, P, EventKind::RegionEnter, Main, 0});
    // Uneven stream lengths: processor P does P extra rounds.
    for (unsigned R = 0; R != Rounds + P; ++R) {
      T.append({Time += 0.1, P, EventKind::RegionEnter, Loop, 0});
      T.append({Time, P, EventKind::ActivityBegin, Comp, 0});
      T.append({Time += 0.5 + 0.01 * P, P, EventKind::ActivityEnd, Comp, 0});
      if (Dirty && R % 7 == 3)
        T.append({-1.0, P, EventKind::ActivityBegin, Comm, 0});
      T.append({Time, P, EventKind::ActivityBegin, Comm, 0});
      if (P + 1 != Procs)
        T.append({Time, P, EventKind::MessageSend, P + 1, 64 + R});
      if (P != 0)
        T.append({Time += 0.05, P, EventKind::MessageRecv, P - 1, 64 + R});
      T.append({Time += 0.05, P, EventKind::ActivityEnd, Comm, 0});
      T.append({Time, P, EventKind::RegionExit, Loop, 0});
    }
    T.append({Time + 0.1, P, EventKind::RegionExit, Main, 0});
  }
  return T;
}

/// One parse outcome, flattened for comparison.
struct Outcome {
  bool Ok = false;
  std::string TraceText; // writeTraceText on success
  ParseError Err;        // structured error on failure
  ParseReport Report;    // attached in lenient mode
};

Outcome runParse(std::string_view Bytes, ParseMode Mode, unsigned Threads) {
  Outcome O;
  ParseOptions Options;
  Options.Mode = Mode;
  Options.Report = Mode == ParseMode::Lenient ? &O.Report : nullptr;
  Expected<Trace> Result =
      trace::parseTraceBinaryParallel(Bytes, Options, Threads);
  if (Result) {
    O.Ok = true;
    O.TraceText = trace::writeTraceText(*Result);
  } else {
    O.Err = Result.takeError().toParseError();
  }
  return O;
}

/// Bit-for-bit agreement: trace, error (incl. offset and message) and
/// report samples.  Used across thread counts of the same encoding.
void expectIdenticalOutcome(const Outcome &Ref, const Outcome &Got,
                            const std::string &What) {
  ASSERT_EQ(Ref.Ok, Got.Ok) << What;
  if (Ref.Ok) {
    EXPECT_EQ(Ref.TraceText, Got.TraceText) << What;
  } else {
    EXPECT_EQ(Ref.Err.Code, Got.Err.Code) << What;
    EXPECT_EQ(Ref.Err.Offset, Got.Err.Offset) << What;
    EXPECT_EQ(Ref.Err.Msg, Got.Err.Msg) << What;
  }
  EXPECT_EQ(Ref.Report.TotalRecords, Got.Report.TotalRecords) << What;
  EXPECT_EQ(Ref.Report.DroppedRecords, Got.Report.DroppedRecords) << What;
  EXPECT_EQ(Ref.Report.DroppedByCode, Got.Report.DroppedByCode) << What;
  ASSERT_EQ(Ref.Report.Samples.size(), Got.Report.Samples.size()) << What;
  for (size_t I = 0; I != Ref.Report.Samples.size(); ++I) {
    EXPECT_EQ(Ref.Report.Samples[I].Code, Got.Report.Samples[I].Code)
        << What << " sample " << I;
    EXPECT_EQ(Ref.Report.Samples[I].Offset, Got.Report.Samples[I].Offset)
        << What << " sample " << I;
    EXPECT_EQ(Ref.Report.Samples[I].Msg, Got.Report.Samples[I].Msg)
        << What << " sample " << I;
  }
}

/// Logical agreement across encodings: identical events, drop counts
/// per code and error codes; offsets and messages differ by design.
void expectSameLogicalOutcome(const Outcome &Ref, const Outcome &Got,
                              const std::string &What) {
  ASSERT_EQ(Ref.Ok, Got.Ok) << What;
  if (Ref.Ok)
    EXPECT_EQ(Ref.TraceText, Got.TraceText) << What;
  else
    EXPECT_EQ(Ref.Err.Code, Got.Err.Code) << What;
  EXPECT_EQ(Ref.Report.TotalRecords, Got.Report.TotalRecords) << What;
  EXPECT_EQ(Ref.Report.DroppedRecords, Got.Report.DroppedRecords) << What;
  EXPECT_EQ(Ref.Report.DroppedByCode, Got.Report.DroppedByCode) << What;
}

constexpr size_t FooterSize = 24;

/// Patches the footer's index-offset field and recomputes nothing: the
/// offset no longer matches the index bounds, so the index is invalid.
std::string withIndexOffsetPastEof(std::string V2) {
  uint64_t Offset = V2.size() + 1024;
  std::memcpy(V2.data() + V2.size() - FooterSize, &Offset, sizeof(Offset));
  return V2;
}

/// Reads the footer's index-offset field.
size_t indexStart(const std::string &V2) {
  uint64_t Offset;
  std::memcpy(&Offset, V2.data() + V2.size() - FooterSize, sizeof(Offset));
  return static_cast<size_t>(Offset);
}

/// Flips a byte inside the index region and fixes the footer CRC so
/// only the *contents* are inconsistent — exercising the semantic
/// index validation rather than the CRC gate.
std::string withInconsistentIndex(std::string V2) {
  size_t Start = indexStart(V2);
  // First block entry: u64 offset at Start+4.  Shift it by one byte so
  // the blocks no longer tile the payload.
  V2[Start + 4] = static_cast<char>(V2[Start + 4] + 1);
  std::string_view Index(V2.data() + Start,
                         V2.size() - FooterSize - Start);
  uint32_t Crc = crc32(Index);
  std::memcpy(V2.data() + V2.size() - FooterSize + 12, &Crc, sizeof(Crc));
  return V2;
}

} // namespace

TEST(BinaryEquivalenceTest, V2ThreadCountsAreBitIdentical) {
  for (bool Dirty : {false, true}) {
    Trace T = makeTrace(4, 20, Dirty);
    for (size_t BlockEvents : {size_t(3), size_t(16), size_t(1) << 16}) {
      trace::BinaryWriteOptions W;
      W.BlockEvents = BlockEvents;
      std::string V2 = writeTraceBinary(T, W);
      for (ParseMode Mode : {ParseMode::Strict, ParseMode::Lenient}) {
        Outcome Ref = runParse(V2, Mode, 1);
        for (unsigned Threads : {2u, 8u}) {
          std::string What = std::string("dirty=") + (Dirty ? "1" : "0") +
                             " block=" + std::to_string(BlockEvents) +
                             " mode=" +
                             (Mode == ParseMode::Strict ? "strict"
                                                        : "lenient") +
                             " threads=" + std::to_string(Threads);
          expectIdenticalOutcome(Ref, runParse(V2, Mode, Threads), What);
        }
      }
    }
  }
}

TEST(BinaryEquivalenceTest, V2MatchesV1OnTheSameLogicalTrace) {
  for (bool Dirty : {false, true}) {
    Trace T = makeTrace(4, 20, Dirty);
    std::string V1 = writeTraceBinaryV1(T);
    for (size_t BlockEvents : {size_t(5), size_t(1) << 16}) {
      trace::BinaryWriteOptions W;
      W.BlockEvents = BlockEvents;
      std::string V2 = writeTraceBinary(T, W);
      for (ParseMode Mode : {ParseMode::Strict, ParseMode::Lenient}) {
        Outcome Ref = runParse(V1, Mode, 1);
        for (unsigned Threads : {1u, 2u, 8u}) {
          std::string What = std::string("dirty=") + (Dirty ? "1" : "0") +
                             " block=" + std::to_string(BlockEvents) +
                             " mode=" +
                             (Mode == ParseMode::Strict ? "strict"
                                                        : "lenient") +
                             " threads=" + std::to_string(Threads);
          expectSameLogicalOutcome(Ref, runParse(V2, Mode, Threads), What);
        }
      }
    }
  }
}

TEST(BinaryEquivalenceTest, IndexlessSalvageMatchesIndexedDecode) {
  // Every corrupt-index shape must fall back to the sequential walk
  // and still produce the exact trace the indexed decode produces.
  Trace T = makeTrace(3, 12, false);
  trace::BinaryWriteOptions W;
  W.BlockEvents = 7;
  std::string V2 = writeTraceBinary(T, W);
  Outcome Ref = runParse(V2, ParseMode::Strict, 2);
  ASSERT_TRUE(Ref.Ok);

  std::string TruncatedFooter = V2.substr(0, V2.size() - 3);
  std::string BadFooterMagic = V2;
  BadFooterMagic[V2.size() - 1] = 'X';
  std::string BadIndexCrc = V2;
  BadIndexCrc[indexStart(V2) + 4] ^= 0x01; // no CRC fix-up
  std::string Cases[] = {TruncatedFooter, BadFooterMagic, BadIndexCrc,
                         withIndexOffsetPastEof(V2),
                         withInconsistentIndex(V2)};
  const char *Names[] = {"truncated-footer", "bad-footer-magic",
                         "bad-index-crc", "index-offset-past-eof",
                         "inconsistent-index"};
  for (size_t I = 0; I != std::size(Cases); ++I) {
    for (ParseMode Mode : {ParseMode::Strict, ParseMode::Lenient}) {
      Outcome Got = runParse(Cases[I], Mode, 4);
      ASSERT_TRUE(Got.Ok) << Names[I];
      EXPECT_EQ(Ref.TraceText, Got.TraceText) << Names[I];
      EXPECT_EQ(Got.Report.DroppedRecords, 0u) << Names[I];
    }
  }
}

TEST(BinaryEquivalenceTest, PayloadDamageUnderValidIndexIsBlockScoped) {
  Trace T = makeTrace(3, 12, false);
  trace::BinaryWriteOptions W;
  W.BlockEvents = 7;
  std::string V2 = writeTraceBinary(T, W);
  size_t Total = T.numEvents();

  // Flip one payload byte in the middle of the file: the block CRC
  // catches it, the index stays valid.
  std::string Damaged = V2;
  size_t Hit = indexStart(V2) / 2;
  Damaged[Hit] ^= 0x40;

  Outcome Strict = runParse(Damaged, ParseMode::Strict, 2);
  ASSERT_FALSE(Strict.Ok);
  EXPECT_EQ(Strict.Err.Code, ErrorCode::MalformedRecord);

  Outcome Ref = runParse(Damaged, ParseMode::Lenient, 1);
  ASSERT_TRUE(Ref.Ok);
  EXPECT_GT(Ref.Report.DroppedRecords, 0u);
  // Whole blocks drop: the loss is a multiple of the block size (the
  // final block may be short, but a mid-file hit lands in a full one).
  EXPECT_EQ(Ref.Report.DroppedRecords % 7, 0u);
  EXPECT_LT(Ref.Report.DroppedRecords, Total);
  EXPECT_EQ(Ref.Report.TotalRecords, Total);
  EXPECT_EQ(Ref.Report.DroppedByCode[size_t(ErrorCode::MalformedRecord)],
            Ref.Report.DroppedRecords);
  for (unsigned Threads : {2u, 8u})
    expectIdenticalOutcome(Ref, runParse(Damaged, ParseMode::Lenient, Threads),
                           "threads=" + std::to_string(Threads));
}

TEST(BinaryEquivalenceTest, CheckedInCorruptFixturesFollowTheMatrix) {
  // The fixtures were generated from the make_corpus seed trace; the
  // salvageable ones must all decode to that same trace.
  std::string Valid = fixture("fuzz_trace_binary/valid-v2.limb");
  Outcome Ref = runParse(Valid, ParseMode::Strict, 2);
  ASSERT_TRUE(Ref.Ok);

  // Damaged or inconsistent index, intact payload: salvage succeeds.
  for (const char *Name :
       {"fuzz_trace_binary/truncated-index.limb",
        "fuzz_trace_binary/index-offset-past-eof.limb",
        "fuzz_trace_binary/count-mismatch.limb",
        "fuzz_trace_binary/overlapping-blocks.limb"}) {
    Outcome Got = runParse(fixture(Name), ParseMode::Strict, 4);
    ASSERT_TRUE(Got.Ok) << Name;
    EXPECT_EQ(Ref.TraceText, Got.TraceText) << Name;
  }

  // Valid index, corrupt block payload: strict errors, lenient drops
  // the block.
  std::string BadCrc = fixture("fuzz_trace_binary/bad-block-crc.limb");
  Outcome Strict = runParse(BadCrc, ParseMode::Strict, 2);
  ASSERT_FALSE(Strict.Ok);
  EXPECT_EQ(Strict.Err.Code, ErrorCode::MalformedRecord);
  Outcome Lenient = runParse(BadCrc, ParseMode::Lenient, 2);
  ASSERT_TRUE(Lenient.Ok);
  EXPECT_GT(Lenient.Report.DroppedRecords, 0u);
}

TEST(BinaryEquivalenceTest, LoadTraceAutoRoutesV2ThroughShardedReader) {
  Trace T = makeTrace(3, 10, false);
  std::string Path = ::testing::TempDir() + "/lima_equiv_auto.limb";
  cantFail(trace::saveTraceBinary(T, Path));
  for (unsigned Threads : {1u, 4u}) {
    Trace Loaded = cantFail(trace::loadTraceAuto(Path, {}, Threads));
    EXPECT_EQ(trace::writeTraceText(T), trace::writeTraceText(Loaded));
  }
  std::remove(Path.c_str());
}

TEST(BinaryEquivalenceTest, LimitsFailBeforeAllocationFromDeclaredTotals) {
  Trace T = makeTrace(2, 8, false);
  std::string V2 = writeTraceBinary(T);
  ParseOptions Options;
  Options.Limits.MaxEvents = 4; // far below the declared total
  Expected<Trace> R = trace::parseTraceBinaryParallel(V2, Options, 2);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.takeError().toParseError().Code, ErrorCode::LimitExceeded);

  ParseOptions Alloc;
  Alloc.Limits.MaxAllocBytes = 512; // name tables fit, events do not
  Expected<Trace> R2 = trace::parseTraceBinaryParallel(V2, Alloc, 2);
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_EQ(R2.takeError().toParseError().Code, ErrorCode::LimitExceeded);
}
