//===- tests/AnalysisPropertiesTest.cpp - methodology invariants ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Property-based tests of invariants the methodology must satisfy on
// *any* measurement cube:
//
//  * processor-relabeling equivariance: permuting the processor columns
//    permutes ID_P and leaves ID_ij / ID_A / ID_C unchanged;
//  * unit invariance: scaling every cell (and the program total) by a
//    constant leaves every index unchanged;
//  * per-processor-constant cubes are perfectly balanced;
//  * injecting a Robin Hood transfer into a slice never increases its
//    dispersion index;
//  * SID never exceeds ID, and shrinks when the program total grows.
//
//===----------------------------------------------------------------------===//

#include "core/Measurement.h"
#include "core/Views.h"
#include "stats/Dispersion.h"
#include "stats/Majorization.h"
#include "support/RNG.h"
#include <algorithm>
#include <gtest/gtest.h>
#include <string>

using namespace lima;
using namespace lima::core;

namespace {

/// Random cube: extents in [2, 6] x [2, 5] x [3, 9], cells in [0, 10)
/// with ~20% zeros (regions that skip activities).
MeasurementCube randomCube(RNG &Rng) {
  size_t N = 2 + Rng.uniformInt(5);
  size_t K = 2 + Rng.uniformInt(4);
  unsigned P = 3 + static_cast<unsigned>(Rng.uniformInt(7));
  std::vector<std::string> Regions, Activities;
  for (size_t I = 0; I != N; ++I)
    Regions.push_back("r" + std::to_string(I));
  for (size_t J = 0; J != K; ++J)
    Activities.push_back("a" + std::to_string(J));
  MeasurementCube Cube(std::move(Regions), std::move(Activities), P);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != K; ++J) {
      bool Skip = Rng.uniform() < 0.2;
      for (unsigned Q = 0; Q != P; ++Q)
        Cube.at(I, J, Q) = Skip ? 0.0 : Rng.uniformIn(0.0, 10.0);
    }
  // Ensure at least one nonzero cell.
  Cube.at(0, 0, 0) += 1.0;
  return Cube;
}

/// Applies a processor permutation to a cube.
MeasurementCube permuteProcs(const MeasurementCube &Cube,
                             const std::vector<unsigned> &Perm) {
  MeasurementCube Out(Cube.regionNames(), Cube.activityNames(),
                      Cube.numProcs());
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      for (unsigned P = 0; P != Cube.numProcs(); ++P)
        Out.at(I, J, Perm[P]) = Cube.time(I, J, P);
  if (Cube.hasExplicitProgramTime())
    Out.setProgramTime(Cube.programTime());
  return Out;
}

} // namespace

class CubePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CubePropertyTest, ProcessorRelabelingEquivariance) {
  RNG Rng(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    MeasurementCube Cube = randomCube(Rng);
    std::vector<unsigned> Perm(Cube.numProcs());
    for (unsigned P = 0; P != Cube.numProcs(); ++P)
      Perm[P] = P;
    Rng.shuffle(Perm);
    MeasurementCube Permuted = permuteProcs(Cube, Perm);

    // ID_ij and the view summaries are permutation invariant.
    auto MatrixA = computeDissimilarityMatrix(Cube);
    auto MatrixB = computeDissimilarityMatrix(Permuted);
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      for (size_t J = 0; J != Cube.numActivities(); ++J)
        EXPECT_NEAR(MatrixA[I][J], MatrixB[I][J], 1e-9);

    ActivityView AA = computeActivityView(Cube);
    ActivityView AB = computeActivityView(Permuted);
    for (size_t J = 0; J != Cube.numActivities(); ++J) {
      EXPECT_NEAR(AA.Index[J], AB.Index[J], 1e-9);
      EXPECT_NEAR(AA.ScaledIndex[J], AB.ScaledIndex[J], 1e-9);
    }

    // ID_P permutes along with the processors.
    ProcessorView PA = computeProcessorView(Cube);
    ProcessorView PB = computeProcessorView(Permuted);
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      for (unsigned P = 0; P != Cube.numProcs(); ++P)
        EXPECT_NEAR(PA.Index[I][P], PB.Index[I][Perm[P]], 1e-9);
  }
}

TEST_P(CubePropertyTest, UnitInvariance) {
  RNG Rng(GetParam() + 1000);
  for (int Trial = 0; Trial != 20; ++Trial) {
    MeasurementCube Cube = randomCube(Rng);
    double Factor = Rng.uniformIn(0.1, 50.0);
    MeasurementCube Scaled(Cube.regionNames(), Cube.activityNames(),
                           Cube.numProcs());
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      for (size_t J = 0; J != Cube.numActivities(); ++J)
        for (unsigned P = 0; P != Cube.numProcs(); ++P)
          Scaled.at(I, J, P) = Factor * Cube.time(I, J, P);

    RegionView A = computeRegionView(Cube);
    RegionView B = computeRegionView(Scaled);
    for (size_t I = 0; I != Cube.numRegions(); ++I) {
      EXPECT_NEAR(A.Index[I], B.Index[I], 1e-9);
      EXPECT_NEAR(A.ScaledIndex[I], B.ScaledIndex[I], 1e-9);
    }
  }
}

TEST_P(CubePropertyTest, UniformCubesArePerfectlyBalanced) {
  RNG Rng(GetParam() + 2000);
  for (int Trial = 0; Trial != 10; ++Trial) {
    MeasurementCube Cube = randomCube(Rng);
    // Overwrite: every processor identical within each (region, activity).
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      for (size_t J = 0; J != Cube.numActivities(); ++J) {
        double Value = Rng.uniformIn(0.0, 5.0);
        for (unsigned P = 0; P != Cube.numProcs(); ++P)
          Cube.at(I, J, P) = Value;
      }
    Cube.at(0, 0, 0) = Cube.time(0, 0, 1); // Keep uniformity.
    auto Matrix = computeDissimilarityMatrix(Cube);
    for (const auto &Row : Matrix)
      for (double Index : Row)
        EXPECT_NEAR(Index, 0.0, 1e-9);
    ProcessorView View = computeProcessorView(Cube);
    for (const auto &Row : View.Index)
      for (double Index : Row)
        EXPECT_NEAR(Index, 0.0, 1e-9);
  }
}

TEST_P(CubePropertyTest, RobinHoodTransferNeverIncreasesSliceIndex) {
  RNG Rng(GetParam() + 3000);
  for (int Trial = 0; Trial != 30; ++Trial) {
    MeasurementCube Cube = randomCube(Rng);
    size_t I = Rng.uniformInt(Cube.numRegions());
    size_t J = Rng.uniformInt(Cube.numActivities());
    std::vector<double> Slice = Cube.processorSlice(I, J);
    double Gap = *std::max_element(Slice.begin(), Slice.end()) -
                 *std::min_element(Slice.begin(), Slice.end());
    if (Gap <= 0.0)
      continue;
    double Before = stats::imbalanceIndex(Slice);
    std::vector<double> After =
        stats::robinHoodTransfer(Slice, Rng.uniformIn(0.0, Gap / 2.0));
    EXPECT_LE(stats::imbalanceIndex(After), Before + 1e-9);
  }
}

TEST_P(CubePropertyTest, ScaledIndexBoundedByIndex) {
  RNG Rng(GetParam() + 4000);
  for (int Trial = 0; Trial != 20; ++Trial) {
    MeasurementCube Cube = randomCube(Rng);
    ActivityView AView = computeActivityView(Cube);
    RegionView RView = computeRegionView(Cube);
    // t_i <= T and T_j <= T, so SID <= ID always.
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      EXPECT_LE(AView.ScaledIndex[J], AView.Index[J] + 1e-12);
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      EXPECT_LE(RView.ScaledIndex[I], RView.Index[I] + 1e-12);

    // Growing the program total shrinks SID proportionally.
    double T = Cube.programTime();
    Cube.setProgramTime(T * 3.0);
    RegionView Shrunk = computeRegionView(Cube);
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      EXPECT_NEAR(Shrunk.ScaledIndex[I], RView.ScaledIndex[I] / 3.0, 1e-9);
  }
}

TEST_P(CubePropertyTest, DissimilarityBoundedByTheoreticalMax) {
  RNG Rng(GetParam() + 5000);
  for (int Trial = 0; Trial != 20; ++Trial) {
    MeasurementCube Cube = randomCube(Rng);
    double Bound = stats::maxImbalanceIndex(Cube.numProcs());
    auto Matrix = computeDissimilarityMatrix(Cube);
    for (const auto &Row : Matrix)
      for (double Index : Row) {
        EXPECT_GE(Index, 0.0);
        EXPECT_LE(Index, Bound + 1e-12);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubePropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

//===----------------------------------------------------------------------===//
// Structural identities of the views, for every index family: the
// weighted-average definitions of ID_A and ID_C must hold exactly, and
// every family agrees that a balanced cube scores zero.
//===----------------------------------------------------------------------===//

class ViewStructureTest
    : public ::testing::TestWithParam<stats::DispersionKind> {};

TEST_P(ViewStructureTest, WeightedAverageIdentityHolds) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 7919 + 17);
  for (int Trial = 0; Trial != 10; ++Trial) {
    MeasurementCube Cube = randomCube(Rng);
    ViewOptions Options;
    Options.Kind = GetParam();
    auto Matrix = computeDissimilarityMatrix(Cube, Options);
    ActivityView AView = computeActivityView(Cube, Options);
    RegionView RView = computeRegionView(Cube, Options);

    for (size_t J = 0; J != Cube.numActivities(); ++J) {
      double Tj = Cube.activityTime(J);
      if (Tj <= 0.0) {
        EXPECT_DOUBLE_EQ(AView.Index[J], 0.0);
        continue;
      }
      double Expected = 0.0;
      for (size_t I = 0; I != Cube.numRegions(); ++I)
        Expected += Cube.regionActivityTime(I, J) * Matrix[I][J];
      Expected /= Tj;
      EXPECT_NEAR(AView.Index[J], Expected, 1e-9)
          << stats::dispersionKindName(GetParam());
      EXPECT_NEAR(AView.ScaledIndex[J],
                  Tj / Cube.programTime() * Expected, 1e-9);
    }
    for (size_t I = 0; I != Cube.numRegions(); ++I) {
      double Ti = Cube.regionTime(I);
      if (Ti <= 0.0)
        continue;
      double Expected = 0.0;
      for (size_t J = 0; J != Cube.numActivities(); ++J)
        Expected += Cube.regionActivityTime(I, J) * Matrix[I][J];
      Expected /= Ti;
      EXPECT_NEAR(RView.Index[I], Expected, 1e-9);
    }
  }
}

TEST_P(ViewStructureTest, BalancedCubeScoresZero) {
  MeasurementCube Cube({"r0", "r1"}, {"a", "b"}, 6);
  for (size_t I = 0; I != 2; ++I)
    for (size_t J = 0; J != 2; ++J)
      for (unsigned P = 0; P != 6; ++P)
        Cube.at(I, J, P) = 1.0 + static_cast<double>(I + J);
  ViewOptions Options;
  Options.Kind = GetParam();
  if (GetParam() == stats::DispersionKind::Maximum)
    return; // Maximum of a balanced share vector is 1/P by definition.
  RegionView View = computeRegionView(Cube, Options);
  for (double Index : View.Index)
    EXPECT_NEAR(Index, 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ViewStructureTest,
    ::testing::ValuesIn(stats::AllDispersionKinds), [](const auto &Info) {
      std::string Name(stats::dispersionKindName(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });
