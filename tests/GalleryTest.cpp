//===- tests/GalleryTest.cpp - workload-gallery tests ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/gallery/BspStencil.h"
#include "apps/gallery/Decomposition.h"
#include "apps/gallery/MasterWorker.h"
#include "apps/gallery/ParticleExchange.h"
#include "core/Profile.h"
#include "core/TraceReduction.h"
#include "core/Views.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::gallery;

//===----------------------------------------------------------------------===//
// Master-worker task farm
//===----------------------------------------------------------------------===//

TEST(MasterWorkerTest, RunsAndValidates) {
  MasterWorkerConfig Config;
  Config.Procs = 5;
  Config.Tasks = 40;
  auto Trace = cantFail(runMasterWorker(Config));
  Error E = Trace.validate();
  EXPECT_FALSE(static_cast<bool>(E));
  // Every task produces a master->worker message plus the stop messages,
  // and each worker sends one request per task plus the initial one.
  trace::TraceStats Stats = trace::computeTraceStats(Trace);
  EXPECT_EQ(Stats.TotalMessages,
            (40u + 4u) /* tasks + stops */ + (40u + 4u) /* requests */);
}

TEST(MasterWorkerTest, SelfSchedulingBalancesVariableTasks) {
  MasterWorkerConfig Config;
  Config.Procs = 9;
  Config.Tasks = 400; // 50 tasks per worker: plenty to self-balance.
  Config.TaskSizeSigma = 1.0;
  auto Trace = cantFail(runMasterWorker(Config));
  auto Cube = cantFail(core::reduceTrace(Trace));
  // Computation dispersion across the *workers* must be small.  The
  // idle master contributes no computation, so exclude it by hand.
  std::vector<double> WorkerComp;
  for (unsigned P = 1; P != Config.Procs; ++P)
    WorkerComp.push_back(Cube.time(0, 0, P));
  EXPECT_LT(stats::imbalanceIndex(WorkerComp), 0.05);
}

TEST(MasterWorkerTest, CoarseTasksRecreateImbalance) {
  MasterWorkerConfig Fine, Coarse;
  Fine.Procs = Coarse.Procs = 9;
  Fine.Tasks = 400;
  Coarse.Tasks = 10; // Barely more tasks than workers.
  Fine.TaskSizeSigma = Coarse.TaskSizeSigma = 1.0;

  auto fineIndex = [](const MasterWorkerConfig &Config) {
    auto Trace = cantFail(runMasterWorker(Config));
    auto Cube = cantFail(core::reduceTrace(Trace));
    std::vector<double> WorkerComp;
    for (unsigned P = 1; P != Config.Procs; ++P)
      WorkerComp.push_back(Cube.time(0, 0, P));
    return stats::imbalanceIndex(WorkerComp);
  };
  EXPECT_GT(fineIndex(Coarse), 3.0 * fineIndex(Fine));
}

TEST(MasterWorkerTest, MasterIsCommunicationBound) {
  MasterWorkerConfig Config;
  Config.Procs = 5;
  Config.Tasks = 60;
  auto Trace = cantFail(runMasterWorker(Config));
  auto Cube = cantFail(core::reduceTrace(Trace));
  // Master (proc 0): p2p time dwarfs computation.
  EXPECT_GT(Cube.time(0, 1, 0), 5.0 * Cube.time(0, 0, 0));
}

TEST(MasterWorkerTest, RejectsDegenerateConfig) {
  MasterWorkerConfig Config;
  Config.Procs = 1;
  EXPECT_TRUE(testutil::failed(runMasterWorker(Config)));
  Config.Procs = 4;
  Config.Tasks = 0;
  EXPECT_TRUE(testutil::failed(runMasterWorker(Config)));
}

//===----------------------------------------------------------------------===//
// BSP stencil
//===----------------------------------------------------------------------===//

TEST(BspStencilTest, RunsAndValidates) {
  BspStencilConfig Config;
  Config.Procs = 6;
  Config.Steps = 5;
  auto Trace = cantFail(runBspStencil(Config));
  Error E = Trace.validate();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(BspStencilTest, BarrierConvertsSkewToSynchronization) {
  BspStencilConfig Config;
  Config.Procs = 8;
  Config.Steps = 10;
  Config.Skew = 0.5;
  auto Trace = cantFail(runBspStencil(Config));
  auto Cube = cantFail(core::reduceTrace(Trace));
  // The lightest rank (0) waits in the barrier roughly the skew of the
  // heaviest rank's compute.
  double Sync0 = Cube.time(0, 3, 0);
  double SyncLast = Cube.time(0, 3, Config.Procs - 1);
  EXPECT_GT(Sync0, 5.0 * std::max(SyncLast, 1e-9));
  // Total sync share is substantial.
  double SyncShare = Cube.activityTime(3) / Cube.instrumentedTotal();
  EXPECT_GT(SyncShare, 0.1);
}

TEST(BspStencilTest, BalancedRunHasAlmostNoSyncTime) {
  BspStencilConfig Config;
  Config.Procs = 8;
  Config.Steps = 10;
  Config.Skew = 0.0;
  auto Trace = cantFail(runBspStencil(Config));
  auto Cube = cantFail(core::reduceTrace(Trace));
  double SyncShare = Cube.activityTime(3) / Cube.instrumentedTotal();
  EXPECT_LT(SyncShare, 0.02);
}

TEST(BspStencilTest, SynchronizationIndexTracksSkew) {
  auto syncIndex = [](double Skew) {
    BspStencilConfig Config;
    Config.Procs = 8;
    Config.Steps = 6;
    Config.Skew = Skew;
    auto Trace = cantFail(runBspStencil(Config));
    auto Cube = cantFail(core::reduceTrace(Trace));
    auto Matrix = core::computeDissimilarityMatrix(Cube);
    return Matrix[0][3];
  };
  EXPECT_GT(syncIndex(0.8), syncIndex(0.2));
}

//===----------------------------------------------------------------------===//
// Particle exchange
//===----------------------------------------------------------------------===//

TEST(ParticleExchangeTest, RunsAndValidates) {
  ParticleExchangeConfig Config;
  Config.Procs = 6;
  Config.Steps = 4;
  auto Trace = cantFail(runParticleExchange(Config));
  Error E = Trace.validate();
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(Trace.numRegions(), 2u);
}

TEST(ParticleExchangeTest, LoadPilesUpOnHighRanks) {
  ParticleExchangeConfig Config;
  Config.Procs = 8;
  Config.Steps = 12;
  Config.MigrationFraction = 0.1;
  auto Trace = cantFail(runParticleExchange(Config));
  auto Cube = cantFail(core::reduceTrace(Trace));
  // Aggregate compute of the last rank exceeds the first rank's.
  EXPECT_GT(Cube.time(0, 0, Config.Procs - 1), Cube.time(0, 0, 0));
}

TEST(ParticleExchangeTest, RejectsBadMigrationFraction) {
  ParticleExchangeConfig Config;
  Config.MigrationFraction = 1.5;
  EXPECT_TRUE(testutil::failed(runParticleExchange(Config)));
}

TEST(GalleryTest, AllProgramsAreDeterministic) {
  MasterWorkerConfig MW;
  MW.Procs = 4;
  MW.Tasks = 20;
  auto A = cantFail(runMasterWorker(MW));
  auto B = cantFail(runMasterWorker(MW));
  EXPECT_EQ(trace::writeTraceText(A), trace::writeTraceText(B));

  BspStencilConfig Bsp;
  Bsp.Procs = 4;
  Bsp.Steps = 3;
  auto C = cantFail(runBspStencil(Bsp));
  auto D = cantFail(runBspStencil(Bsp));
  EXPECT_EQ(trace::writeTraceText(C), trace::writeTraceText(D));

  ParticleExchangeConfig Px;
  Px.Procs = 4;
  Px.Steps = 3;
  auto E = cantFail(runParticleExchange(Px));
  auto F = cantFail(runParticleExchange(Px));
  EXPECT_EQ(trace::writeTraceText(E), trace::writeTraceText(F));
}

//===----------------------------------------------------------------------===//
// Decomposition study
//===----------------------------------------------------------------------===//

TEST(DecompositionTest, BothLayoutsRunAndValidate) {
  DecompositionConfig Config;
  Config.Procs = 16;
  Config.GridN = 64;
  Config.Steps = 3;
  for (Decomposition Layout :
       {Decomposition::Strips1D, Decomposition::Blocks2D}) {
    Config.Layout = Layout;
    auto Trace = cantFail(runDecomposition(Config));
    Error E = Trace.validate();
    EXPECT_FALSE(static_cast<bool>(E)) << decompositionName(Layout);
  }
}

TEST(DecompositionTest, CommunicationVolumeMatchesSurfaceModel) {
  DecompositionConfig Config;
  Config.Procs = 16;
  Config.GridN = 128;
  Config.Steps = 2;
  Config.Layout = Decomposition::Strips1D;
  auto Strips = cantFail(runDecomposition(Config));
  Config.Layout = Decomposition::Blocks2D;
  auto Blocks = cantFail(runDecomposition(Config));

  trace::TraceStats StripStats = trace::computeTraceStats(Strips);
  trace::TraceStats BlockStats = trace::computeTraceStats(Blocks);
  // Strips: 2*(P-1) messages of N cells per step.
  EXPECT_EQ(StripStats.TotalMessages, 2u * 15u * 2u);
  EXPECT_EQ(StripStats.TotalBytes, 2ull * 15 * 2 * 128 * 8);
  // Blocks (4x4): 2 * (2 * Side * (Side-1)) = 48 messages of N/4 cells.
  EXPECT_EQ(BlockStats.TotalMessages, 48u * 2u);
  EXPECT_EQ(BlockStats.TotalBytes, 48ull * 2 * 32 * 8);
  // 2-D moves less data in total even at this modest size.
  EXPECT_LT(BlockStats.TotalBytes, StripStats.TotalBytes);
}

TEST(DecompositionTest, CrossoverDirectionMatchesTheory) {
  DecompositionConfig Config;
  Config.Procs = 16;
  Config.Steps = 3;
  auto p2p = [&](Decomposition Layout, unsigned GridN) {
    Config.Layout = Layout;
    Config.GridN = GridN;
    auto Cube =
        cantFail(core::reduceTrace(cantFail(runDecomposition(Config))));
    return Cube.regionActivityTime(0, 1);
  };
  // Small grid: latency dominates, strips (fewer messages) win.
  EXPECT_LT(p2p(Decomposition::Strips1D, 64),
            p2p(Decomposition::Blocks2D, 64));
  // Large grid: bandwidth dominates, blocks (less data) win.
  EXPECT_GT(p2p(Decomposition::Strips1D, 4096),
            p2p(Decomposition::Blocks2D, 4096));
}

TEST(DecompositionTest, RejectsNonSquareBlockCounts) {
  DecompositionConfig Config;
  Config.Procs = 6;
  Config.Layout = Decomposition::Blocks2D;
  EXPECT_TRUE(testutil::failed(runDecomposition(Config)));
  Config.Procs = 16;
  Config.GridN = 130; // Not divisible by 4.
  EXPECT_TRUE(testutil::failed(runDecomposition(Config)));
}
