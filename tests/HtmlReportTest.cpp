//===- tests/HtmlReportTest.cpp - HTML report tests -----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/HtmlReport.h"
#include "core/PaperDataset.h"
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;

namespace {

std::string paperReport() {
  MeasurementCube Cube = paper::buildCube();
  AnalysisResult Analysis = cantFail(analyze(Cube));
  return renderHtmlReport(Cube, Analysis);
}

/// Counts occurrences of \p Needle in \p Haystack.
size_t countOf(const std::string &Haystack, const std::string &Needle) {
  size_t Count = 0, Pos = 0;
  while ((Pos = Haystack.find(Needle, Pos)) != std::string::npos) {
    ++Count;
    Pos += Needle.size();
  }
  return Count;
}

} // namespace

TEST(HtmlReportTest, EscapesSpecialCharacters) {
  EXPECT_EQ(escapeHtml("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(escapeHtml("plain"), "plain");
}

TEST(HtmlReportTest, WellFormedSkeleton) {
  std::string Html = paperReport();
  EXPECT_EQ(Html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(Html.find("</html>"), std::string::npos);
  // Balanced structural tags.
  EXPECT_EQ(countOf(Html, "<table>"), countOf(Html, "</table>"));
  EXPECT_EQ(countOf(Html, "<svg "), countOf(Html, "</svg>"));
  EXPECT_EQ(countOf(Html, "<div "), countOf(Html, "</div>"));
}

TEST(HtmlReportTest, ContainsAllSections) {
  std::string Html = paperReport();
  EXPECT_NE(Html.find("Wall-clock breakdown"), std::string::npos);
  EXPECT_NE(Html.find("Dissimilarity indices"), std::string::npos);
  EXPECT_NE(Html.find("Scaled indices"), std::string::npos);
  EXPECT_NE(Html.find("Per-processor patterns"), std::string::npos);
  EXPECT_NE(Html.find("Findings"), std::string::npos);
  // Region names and key numbers appear.
  EXPECT_NE(Html.find("loop1"), std::string::npos);
  EXPECT_NE(Html.find("0.30571"), std::string::npos); // Table 2 max.
  EXPECT_NE(Html.find("region-load-imbalance"), std::string::npos);
}

TEST(HtmlReportTest, SectionsCanBeDisabled) {
  MeasurementCube Cube = paper::buildCube();
  AnalysisResult Analysis = cantFail(analyze(Cube));
  HtmlReportOptions Options;
  Options.IncludePatterns = false;
  Options.IncludeDiagnosis = false;
  Options.Title = "Custom <Title>";
  std::string Html = renderHtmlReport(Cube, Analysis, Options);
  EXPECT_EQ(Html.find("Per-processor patterns"), std::string::npos);
  EXPECT_EQ(Html.find("Findings"), std::string::npos);
  EXPECT_NE(Html.find("Custom &lt;Title&gt;"), std::string::npos);
}

TEST(HtmlReportTest, PatternHeatMapHasOneRectPerCell) {
  MeasurementCube Cube = paper::buildCube();
  AnalysisResult Analysis = cantFail(analyze(Cube));
  HtmlReportOptions Options;
  Options.IncludeDiagnosis = false;
  std::string Html = renderHtmlReport(Cube, Analysis, Options);
  // Rect count: pattern cells (7 + 4 + 4 + 3 rows) * 16 procs, plus
  // 7 + 4 bars of the two charts.
  size_t PatternCells = (7 + 4 + 4 + 3) * 16;
  EXPECT_EQ(countOf(Html, "<rect "), PatternCells + 7 + 4);
}
