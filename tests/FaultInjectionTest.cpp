//===- tests/FaultInjectionTest.cpp - fault shim and retry tests ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include "support/Retry.h"
#include "TestHelpers.h"
#include <cerrno>
#include <cstdio>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

using namespace lima;
using lima::testutil::failed;

namespace {

/// RAII guard: every test leaves the schedule disarmed, whatever path
/// it exits through.
struct FaultGuard {
  ~FaultGuard() { fault::reset(); }
};

} // namespace

TEST(FaultInjectionTest, DisarmedCheckIsNone) {
  FaultGuard Guard;
  fault::reset();
  EXPECT_FALSE(static_cast<bool>(fault::check("anything")));
}

TEST(FaultInjectionTest, SpecParsing) {
  FaultGuard Guard;
  EXPECT_FALSE(failed(fault::configure("")));
  EXPECT_FALSE(failed(fault::configure("a.b:eintr")));
  EXPECT_FALSE(failed(fault::configure("a:enospc@3x2,b:short@1x*~50")));
  EXPECT_TRUE(failed(fault::configure("a:bogus")));
  EXPECT_TRUE(failed(fault::configure("noseparator")));
  EXPECT_TRUE(failed(fault::configure("a:eintr@zork")));
  EXPECT_TRUE(failed(fault::configure("a:eintr~101")));
}

TEST(FaultInjectionTest, CountdownFiresNthCallForMCalls) {
  FaultGuard Guard;
  ASSERT_FALSE(failed(fault::configure("s:enospc@2x2")));
  EXPECT_FALSE(static_cast<bool>(fault::check("s")));     // call 1: clean
  EXPECT_EQ(fault::check("s").K, fault::Fault::Enospc);   // call 2: fires
  EXPECT_EQ(fault::check("s").K, fault::Fault::Enospc);   // call 3: fires
  EXPECT_FALSE(static_cast<bool>(fault::check("s")));     // exhausted
  EXPECT_FALSE(static_cast<bool>(fault::check("other"))); // wrong site
  EXPECT_EQ(fault::injectedTotal(), 2u);
}

TEST(FaultInjectionTest, ForeverRepeats) {
  FaultGuard Guard;
  ASSERT_FALSE(failed(fault::configure("s:eio@1x*")));
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(fault::check("s").K, fault::Fault::Eio);
}

TEST(FaultInjectionTest, ProbabilisticDrawsAreSeeded) {
  FaultGuard Guard;
  auto drawPattern = [](uint64_t Seed) {
    EXPECT_FALSE(failed(fault::configure("s:eintr@1x*~50", Seed)));
    std::string Pattern;
    for (int I = 0; I != 32; ++I)
      Pattern += fault::check("s") ? '1' : '0';
    return Pattern;
  };
  std::string A = drawPattern(7);
  std::string B = drawPattern(7);
  std::string C = drawPattern(8);
  EXPECT_EQ(A, B);           // same seed, same schedule
  EXPECT_NE(A, C);           // different seed, different schedule
  EXPECT_NE(A, std::string(32, '0'));
  EXPECT_NE(A, std::string(32, '1'));
}

TEST(FaultInjectionTest, ErrnoValuesMatchKinds) {
  EXPECT_EQ(fault::Fault{fault::Fault::Eintr}.errnoValue(), EINTR);
  EXPECT_EQ(fault::Fault{fault::Fault::Enospc}.errnoValue(), ENOSPC);
  EXPECT_EQ(fault::Fault{fault::Fault::Emfile}.errnoValue(), EMFILE);
  EXPECT_EQ(fault::Fault{fault::Fault::Enoent}.errnoValue(), ENOENT);
  EXPECT_EQ(fault::Fault{fault::Fault::Eagain}.errnoValue(), EAGAIN);
  EXPECT_EQ(fault::Fault{fault::Fault::Eio}.errnoValue(), EIO);
}

TEST(FaultInjectionTest, ShortWriteHalvesTransfer) {
  FaultGuard Guard;
  std::string Path = ::testing::TempDir() + "/lima_fault_short.bin";
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(Fd, 0);
  ASSERT_FALSE(failed(fault::configure("w:short@1")));
  char Buf[8] = {0};
  EXPECT_EQ(fault::write("w", Fd, Buf, sizeof(Buf)), 4); // halved
  EXPECT_EQ(fault::write("w", Fd, Buf, sizeof(Buf)), 8); // exhausted
  ::close(Fd);
  std::remove(Path.c_str());
}

TEST(FaultInjectionTest, FailedSyscallSetsErrno) {
  FaultGuard Guard;
  ASSERT_FALSE(failed(fault::configure("r:enospc@1")));
  char Buf[8];
  errno = 0;
  EXPECT_EQ(fault::read("r", 0, Buf, sizeof(Buf)), -1);
  EXPECT_EQ(errno, ENOSPC);
}

TEST(RetryTest, EintrLoopRetries) {
  int Calls = 0;
  auto R = retry::retryEintr([&]() -> ssize_t {
    if (++Calls < 3) {
      errno = EINTR;
      return -1;
    }
    return 7;
  });
  EXPECT_EQ(R, 7);
  EXPECT_EQ(Calls, 3);
}

TEST(RetryTest, EintrPredicateBreaksOut) {
  int Calls = 0;
  auto R = retry::retryEintr(
      [&]() -> ssize_t {
        ++Calls;
        errno = EINTR;
        return -1;
      },
      [] { return true; });
  EXPECT_EQ(R, -1);
  EXPECT_EQ(errno, EINTR);
  EXPECT_EQ(Calls, 1); // the wakeup wins over the retry
}

TEST(RetryTest, TransientErrnoClassification) {
  EXPECT_TRUE(retry::isTransientErrno(EINTR));
  EXPECT_TRUE(retry::isTransientErrno(EAGAIN));
  EXPECT_TRUE(retry::isTransientErrno(ENOSPC));
  EXPECT_TRUE(retry::isTransientErrno(EMFILE));
  EXPECT_FALSE(retry::isTransientErrno(ENOENT));
  EXPECT_FALSE(retry::isTransientErrno(EBADF));
  EXPECT_FALSE(retry::isTransientErrno(0));
}

TEST(RetryTest, BackoffScheduleIsCappedExponential) {
  retry::BackoffPolicy Policy;
  Policy.InitialDelayMs = 10;
  Policy.Multiplier = 2.0;
  Policy.MaxDelayMs = 45;
  EXPECT_EQ(Policy.delayMs(0), 10u);
  EXPECT_EQ(Policy.delayMs(1), 20u);
  EXPECT_EQ(Policy.delayMs(2), 40u);
  EXPECT_EQ(Policy.delayMs(3), 45u); // capped
  EXPECT_EQ(Policy.delayMs(9), 45u);
}

TEST(RetryTest, WithBackoffRetriesTransientIoError) {
  retry::BackoffPolicy Policy;
  Policy.MaxAttempts = 5;
  int Attempts = 0;
  std::vector<unsigned> Slept;
  Error Err = retry::withBackoff(
      Policy, "test.transient",
      [&]() -> Error {
        if (++Attempts < 3)
          return makeCodedError(ErrorCode::IoError, "disk full");
        return Error::success();
      },
      [&](unsigned Ms) { Slept.push_back(Ms); });
  EXPECT_FALSE(failed(std::move(Err)));
  EXPECT_EQ(Attempts, 3);
  ASSERT_EQ(Slept.size(), 2u);
  EXPECT_EQ(Slept[0], 10u);
  EXPECT_EQ(Slept[1], 20u);
}

TEST(RetryTest, WithBackoffFailsFastOnPermanentErrors) {
  retry::BackoffPolicy Policy;
  int Attempts = 0;
  Error Err = retry::withBackoff(
      Policy, "test.permanent",
      [&]() -> Error {
        ++Attempts;
        return makeCodedError(ErrorCode::BadMagic, "not a trace");
      },
      [](unsigned) {});
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_EQ(Err.code(), ErrorCode::BadMagic);
  Err.consume();
  EXPECT_EQ(Attempts, 1); // the PR-3 taxonomy says don't retry this
}

TEST(RetryTest, WithBackoffExhaustsAndReturnsLastError) {
  retry::BackoffPolicy Policy;
  Policy.MaxAttempts = 3;
  int Attempts = 0;
  Error Err = retry::withBackoff(
      Policy, "test.exhaust",
      [&]() -> Error {
        ++Attempts;
        return makeCodedError(ErrorCode::IoError, "still full");
      },
      [](unsigned) {});
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_EQ(Err.code(), ErrorCode::IoError);
  Err.consume();
  EXPECT_EQ(Attempts, 3);
}

TEST(FileUtilsFaultTest, AtomicWriteSurvivesShortWrites) {
  FaultGuard Guard;
  std::string Path = ::testing::TempDir() + "/lima_fault_atomic.txt";
  ASSERT_FALSE(failed(fault::configure("file.write:short@1x*")));
  std::string Contents(8192, 'x');
  ASSERT_FALSE(failed(writeFileAtomic(Path, Contents)));
  EXPECT_EQ(cantFail(readFile(Path)), Contents);
  std::remove(Path.c_str());
}

TEST(FileUtilsFaultTest, FsyncFailureLeavesOldContents) {
  FaultGuard Guard;
  std::string Path = ::testing::TempDir() + "/lima_fault_fsync.txt";
  ASSERT_FALSE(failed(writeFileAtomic(Path, "old")));
  // Durability::Full fsyncs the temporary before rename; when that
  // fsync reports ENOSPC the write must fail WITHOUT renaming — the
  // destination keeps its previous contents.
  ASSERT_FALSE(failed(fault::configure("file.fsync:enospc@1")));
  Error Err = writeFileAtomic(Path, "new", Durability::Full);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_EQ(Err.code(), ErrorCode::IoError);
  Err.consume();
  EXPECT_EQ(cantFail(readFile(Path)), "old");
  // NoSync never calls fsync, so the (re-armed) fault cannot fire and
  // the hot-dump path keeps working on the same sick filesystem.
  ASSERT_FALSE(failed(fault::configure("file.fsync:enospc@1x*")));
  ASSERT_FALSE(failed(writeFileAtomic(Path, "new", Durability::NoSync)));
  EXPECT_EQ(cantFail(readFile(Path)), "new");
  std::remove(Path.c_str());
}

TEST(FileUtilsFaultTest, OpenFailurePropagates) {
  FaultGuard Guard;
  std::string Path = ::testing::TempDir() + "/lima_fault_open.txt";
  ASSERT_FALSE(failed(fault::configure("file.open:emfile@1")));
  Error Err = writeFileAtomic(Path, "contents");
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_EQ(Err.code(), ErrorCode::IoError);
  Err.consume();
}
