//===- tests/EfficiencyRebalanceTest.cpp - efficiency & repair tests ------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/Efficiency.h"
#include "core/TraceReduction.h"
#include "core/PaperDataset.h"
#include "core/Rebalance.h"
#include "core/Views.h"
#include "support/RNG.h"
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;

//===----------------------------------------------------------------------===//
// Efficiency metrics
//===----------------------------------------------------------------------===//

TEST(EfficiencyTest, BalancedCubeIsFullyEfficient) {
  MeasurementCube Cube({"r"}, {"computation"}, 4);
  for (unsigned P = 0; P != 4; ++P)
    Cube.at(0, 0, P) = 2.5;
  EfficiencyReport Report = computeEfficiency(Cube);
  EXPECT_DOUBLE_EQ(Report.LoadBalance, 1.0);
  EXPECT_DOUBLE_EQ(Report.ComputationShare, 1.0);
  EXPECT_DOUBLE_EQ(Report.ParallelEfficiency, 1.0);
  EXPECT_DOUBLE_EQ(Report.WastedProcessorSeconds, 0.0);
}

TEST(EfficiencyTest, HandComputedImbalance) {
  // Useful work {1, 2}: LB = 1.5/2, waste = (2-1) = 1 proc-second.
  MeasurementCube Cube({"r"}, {"computation", "point-to-point"}, 2);
  Cube.at(0, 0, 0) = 1.0;
  Cube.at(0, 0, 1) = 2.0;
  Cube.at(0, 1, 1) = 1.0;
  EfficiencyReport Report = computeEfficiency(Cube);
  EXPECT_DOUBLE_EQ(Report.BusyTime[0], 1.0);
  EXPECT_DOUBLE_EQ(Report.BusyTime[1], 3.0);
  EXPECT_DOUBLE_EQ(Report.UsefulWork[0], 1.0);
  EXPECT_DOUBLE_EQ(Report.UsefulWork[1], 2.0);
  EXPECT_NEAR(Report.LoadBalance, 0.75, 1e-12);
  EXPECT_NEAR(Report.WastedProcessorSeconds, 1.0, 1e-12);
  // Computation is 3 of the 4 busy seconds.
  EXPECT_NEAR(Report.ComputationShare, 0.75, 1e-12);
  EXPECT_NEAR(Report.ParallelEfficiency, 0.75 * 0.75, 1e-12);
}

TEST(EfficiencyTest, RegionLoadBalancePerRegion) {
  MeasurementCube Cube({"balanced", "skewed"}, {"computation"}, 2);
  Cube.at(0, 0, 0) = 1.0;
  Cube.at(0, 0, 1) = 1.0;
  Cube.at(1, 0, 0) = 1.0;
  Cube.at(1, 0, 1) = 3.0;
  EfficiencyReport Report = computeEfficiency(Cube);
  EXPECT_DOUBLE_EQ(Report.RegionLoadBalance[0], 1.0);
  EXPECT_NEAR(Report.RegionLoadBalance[1], 2.0 / 3.0, 1e-12);
}

TEST(EfficiencyTest, PaperCubeNumbersArePlausible) {
  EfficiencyReport Report = computeEfficiency(paper::buildCube());
  // The paper's program is imbalanced but not catastrophically so.
  EXPECT_GT(Report.LoadBalance, 0.5);
  EXPECT_LT(Report.LoadBalance, 1.0);
  // Computation dominates (41.56 of 64.754 mean seconds).
  EXPECT_NEAR(Report.ComputationShare, 41.56 / 64.754, 1e-3);
}

//===----------------------------------------------------------------------===//
// Rebalancing
//===----------------------------------------------------------------------===//

TEST(RebalanceTest, PredictionsMonotoneAndReachTarget) {
  MeasurementCube Cube = paper::buildCube();
  RebalanceOptions Options;
  Options.TargetIndex = 0.005;
  RebalancePlan Plan = planRebalance(Cube, 0, paper::Computation, Options);
  EXPECT_NEAR(Plan.InitialIndex, 0.03674, 1e-9);
  ASSERT_FALSE(Plan.Transfers.empty());
  double Previous = Plan.InitialIndex;
  for (const Transfer &Move : Plan.Transfers) {
    EXPECT_LT(Move.PredictedIndex, Previous + 1e-12);
    EXPECT_GT(Move.Seconds, 0.0);
    Previous = Move.PredictedIndex;
  }
  EXPECT_LE(Plan.FinalIndex, Options.TargetIndex);
}

TEST(RebalanceTest, AlreadyBalancedNeedsNoTransfers) {
  MeasurementCube Cube({"r"}, {"computation"}, 4);
  for (unsigned P = 0; P != 4; ++P)
    Cube.at(0, 0, P) = 1.0;
  RebalancePlan Plan = planRebalance(Cube, 0, 0);
  EXPECT_TRUE(Plan.Transfers.empty());
  EXPECT_DOUBLE_EQ(Plan.InitialIndex, 0.0);
}

TEST(RebalanceTest, ApplyMatchesPrediction) {
  MeasurementCube Cube = paper::buildCube();
  RebalanceOptions Options;
  Options.TargetIndex = 0.002;
  RebalancePlan Plan = planRebalance(Cube, 0, paper::Computation, Options);
  MeasurementCube Fixed = applyRebalance(Cube, Plan);

  // The repaired slice's measured index equals the last prediction.
  auto Matrix = computeDissimilarityMatrix(Fixed);
  EXPECT_NEAR(Matrix[0][paper::Computation], Plan.FinalIndex, 1e-9);
  // Untouched slices are unchanged.
  EXPECT_NEAR(Matrix[5][paper::Computation], 0.05017, 1e-9);
  // Work is conserved.
  EXPECT_NEAR(Fixed.regionActivityTime(0, paper::Computation), 12.24,
              1e-9);
}

TEST(RebalanceTest, RepairedRegionStopsBeingTheCandidate) {
  MeasurementCube Cube = paper::buildCube();
  RegionView Before = computeRegionView(Cube);
  ASSERT_EQ(Before.MostImbalancedScaled, 0u); // Loop 1, as in the paper.

  // Repair loop 1's two heavy activities.
  RebalanceOptions Options;
  Options.TargetIndex = 0.001;
  MeasurementCube Fixed = applyRebalance(
      Cube, planRebalance(Cube, 0, paper::Computation, Options));
  Fixed = applyRebalance(
      Fixed, planRebalance(Fixed, 0, paper::Collective, Options));

  RegionView After = computeRegionView(Fixed);
  EXPECT_LT(After.ScaledIndex[0], 0.15 * Before.ScaledIndex[0]);
  EXPECT_NE(After.MostImbalancedScaled, 0u);
}

TEST(RebalanceTest, RandomSlicesAlwaysConverge) {
  RNG Rng(77);
  for (int Trial = 0; Trial != 30; ++Trial) {
    unsigned P = 2 + static_cast<unsigned>(Rng.uniformInt(14));
    MeasurementCube Cube({"r"}, {"a"}, P);
    for (unsigned Proc = 0; Proc != P; ++Proc)
      Cube.at(0, 0, Proc) = Rng.uniformIn(0.0, 10.0);
    RebalanceOptions Options;
    Options.TargetIndex = 0.02;
    Options.MaxTransfers = 64;
    RebalancePlan Plan = planRebalance(Cube, 0, 0, Options);
    EXPECT_LE(Plan.FinalIndex, Options.TargetIndex + 1e-9)
        << "P=" << P << " trial " << Trial;
  }
}

TEST(EfficiencyTest, CfdLoadBalanceTracksInjectedSkew) {
  auto loadBalance = [](double Scale) {
    cfd::CfdConfig Config;
    Config.Procs = 8;
    Config.Nx = 44;
    Config.RowsPerRank = 4;
    Config.Iterations = 2;
    Config.ImbalanceScale = Scale;
    auto Run = cantFail(cfd::runCfd(Config));
    auto Cube = cantFail(core::reduceTrace(Run.Trace));
    return computeEfficiency(Cube).LoadBalance;
  };
  double Balanced = loadBalance(0.0);
  double Skewed = loadBalance(1.0);
  EXPECT_GT(Balanced, 0.99);
  EXPECT_LT(Skewed, Balanced - 0.05);
}
