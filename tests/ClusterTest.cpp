//===- tests/ClusterTest.cpp - clustering library tests -------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterSelection.h"
#include "cluster/Distance.h"
#include "cluster/Hierarchical.h"
#include "cluster/KMeans.h"
#include "cluster/Silhouette.h"
#include "support/RNG.h"
#include <algorithm>
#include <gtest/gtest.h>
#include <set>
#include <string>

using namespace lima;
using namespace lima::cluster;

namespace {

/// Three well-separated 2-D blobs of \p PerBlob points each.
std::vector<std::vector<double>> makeBlobs(size_t PerBlob, uint64_t Seed) {
  const double Centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  RNG Rng(Seed);
  std::vector<std::vector<double>> Points;
  for (const auto &Center : Centers)
    for (size_t I = 0; I != PerBlob; ++I)
      Points.push_back(
          {Center[0] + Rng.normal() * 0.3, Center[1] + Rng.normal() * 0.3});
  return Points;
}

/// True when \p Assignments puts exactly the points of each blob
/// together (labels may be permuted).
bool recoversBlobs(const std::vector<size_t> &Assignments, size_t PerBlob) {
  for (size_t Blob = 0; Blob != 3; ++Blob) {
    size_t First = Assignments[Blob * PerBlob];
    for (size_t I = 0; I != PerBlob; ++I)
      if (Assignments[Blob * PerBlob + I] != First)
        return false;
    for (size_t Other = 0; Other != 3 * PerBlob; ++Other)
      if (Other / PerBlob != Blob && Assignments[Other] == First)
        return false;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Distances
//===----------------------------------------------------------------------===//

TEST(DistanceTest, KnownValues) {
  std::vector<double> A = {0.0, 0.0}, B = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(Metric::Euclidean, A, B), 5.0);
  EXPECT_DOUBLE_EQ(distance(Metric::SquaredEuclidean, A, B), 25.0);
  EXPECT_DOUBLE_EQ(distance(Metric::Manhattan, A, B), 7.0);
  EXPECT_DOUBLE_EQ(distance(Metric::Chebyshev, A, B), 4.0);
}

TEST(DistanceTest, IdentityAndSymmetry) {
  std::vector<double> A = {1.5, -2.0, 3.0}, B = {0.5, 1.0, -1.0};
  for (Metric M : {Metric::Euclidean, Metric::SquaredEuclidean,
                   Metric::Manhattan, Metric::Chebyshev}) {
    EXPECT_DOUBLE_EQ(distance(M, A, A), 0.0) << metricName(M);
    EXPECT_DOUBLE_EQ(distance(M, A, B), distance(M, B, A)) << metricName(M);
  }
}

//===----------------------------------------------------------------------===//
// k-means
//===----------------------------------------------------------------------===//

class KMeansInitTest : public ::testing::TestWithParam<KMeansInit> {};

TEST_P(KMeansInitTest, RecoversSeparatedBlobs) {
  auto Points = makeBlobs(20, 5);
  KMeansOptions Options;
  Options.K = 3;
  Options.Init = GetParam();
  Options.Seed = 9;
  auto Result = cantFail(kMeans(Points, Options));
  EXPECT_TRUE(recoversBlobs(Result.Assignments, 20))
      << kmeansInitName(GetParam());
  EXPECT_LT(Result.Inertia, 60.0 * 2.0); // ~N * dim * 0.3^2 with slack.
}

INSTANTIATE_TEST_SUITE_P(AllInits, KMeansInitTest,
                         ::testing::Values(KMeansInit::RandomPoints,
                                           KMeansInit::PlusPlus,
                                           KMeansInit::FarthestFirst),
                         [](const auto &Info) {
                           std::string Name(kmeansInitName(Info.param));
                           std::replace(Name.begin(), Name.end(), '+', 'p');
                           std::replace(Name.begin(), Name.end(), '-', '_');
                           return Name;
                         });

TEST(KMeansTest, DeterministicForFixedSeed) {
  auto Points = makeBlobs(10, 3);
  KMeansOptions Options;
  Options.K = 3;
  Options.Seed = 42;
  auto A = cantFail(kMeans(Points, Options));
  auto B = cantFail(kMeans(Points, Options));
  EXPECT_EQ(A.Assignments, B.Assignments);
  EXPECT_DOUBLE_EQ(A.Inertia, B.Inertia);
}

TEST(KMeansTest, RejectsZeroK) {
  KMeansOptions Options;
  Options.K = 0;
  auto Result = kMeans({{1.0}, {2.0}}, Options);
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(KMeansTest, RejectsTooFewDistinctPoints) {
  KMeansOptions Options;
  Options.K = 3;
  auto Result = kMeans({{1.0}, {1.0}, {2.0}}, Options);
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(KMeansTest, RejectsMixedDimensions) {
  KMeansOptions Options;
  Options.K = 1;
  auto Result = kMeans({{1.0, 2.0}, {1.0}}, Options);
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(KMeansTest, KEqualsNumberOfDistinctPoints) {
  KMeansOptions Options;
  Options.K = 3;
  auto Result =
      cantFail(kMeans({{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}}, Options));
  EXPECT_NEAR(Result.Inertia, 0.0, 1e-12);
  std::set<size_t> Labels(Result.Assignments.begin(),
                          Result.Assignments.end());
  EXPECT_EQ(Labels.size(), 3u);
}

TEST(KMeansTest, MembersPartitionInput) {
  auto Points = makeBlobs(5, 8);
  KMeansOptions Options;
  Options.K = 3;
  auto Result = cantFail(kMeans(Points, Options));
  auto Members = Result.members();
  size_t Total = 0;
  for (const auto &Group : Members)
    Total += Group.size();
  EXPECT_EQ(Total, Points.size());
}

TEST(KMeansTest, HartiganRefinementNeverWorsensInertia) {
  auto Points = makeBlobs(15, 21);
  KMeansOptions Plain;
  Plain.K = 3;
  Plain.Seed = 5;
  Plain.Restarts = 1;
  Plain.HartiganRefinement = false;
  KMeansOptions Refined = Plain;
  Refined.HartiganRefinement = true;
  auto A = cantFail(kMeans(Points, Plain));
  auto B = cantFail(kMeans(Points, Refined));
  EXPECT_LE(B.Inertia, A.Inertia + 1e-9);
}

//===----------------------------------------------------------------------===//
// Hierarchical clustering
//===----------------------------------------------------------------------===//

class LinkageTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageTest, RecoversSeparatedBlobsAtCutThree) {
  auto Points = makeBlobs(8, 12);
  auto Tree = cantFail(
      hierarchicalCluster(Points, Metric::Euclidean, GetParam()));
  EXPECT_EQ(Tree.NumPoints, Points.size());
  EXPECT_EQ(Tree.Merges.size(), Points.size() - 1);
  auto Assignments = Tree.cut(3);
  EXPECT_TRUE(recoversBlobs(Assignments, 8)) << linkageName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkageTest,
                         ::testing::Values(Linkage::Single, Linkage::Complete,
                                           Linkage::Average),
                         [](const auto &Info) {
                           return std::string(linkageName(Info.param));
                         });

TEST(HierarchicalTest, CutExtremes) {
  auto Points = makeBlobs(3, 4);
  auto Tree =
      cantFail(hierarchicalCluster(Points, Metric::Euclidean,
                                   Linkage::Average));
  auto AllOne = Tree.cut(1);
  EXPECT_EQ(std::set<size_t>(AllOne.begin(), AllOne.end()).size(), 1u);
  auto AllSingletons = Tree.cut(Points.size());
  EXPECT_EQ(std::set<size_t>(AllSingletons.begin(), AllSingletons.end())
                .size(),
            Points.size());
}

TEST(HierarchicalTest, SingleLinkageMergesNearestFirst) {
  std::vector<std::vector<double>> Points = {{0.0}, {1.0}, {10.0}};
  auto Tree = cantFail(
      hierarchicalCluster(Points, Metric::Euclidean, Linkage::Single));
  EXPECT_DOUBLE_EQ(Tree.Merges[0].Distance, 1.0);
  EXPECT_DOUBLE_EQ(Tree.Merges[1].Distance, 9.0);
}

TEST(HierarchicalTest, CompleteLinkageUsesFarthestPair) {
  std::vector<std::vector<double>> Points = {{0.0}, {1.0}, {10.0}};
  auto Tree = cantFail(
      hierarchicalCluster(Points, Metric::Euclidean, Linkage::Complete));
  // Second merge joins {0,1} with {10}: complete distance = 10.
  EXPECT_DOUBLE_EQ(Tree.Merges[1].Distance, 10.0);
}

TEST(HierarchicalTest, RejectsEmptyInput) {
  auto Result =
      hierarchicalCluster({}, Metric::Euclidean, Linkage::Average);
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

//===----------------------------------------------------------------------===//
// Silhouette
//===----------------------------------------------------------------------===//

TEST(SilhouetteTest, SeparatedBlobsScoreHigh) {
  auto Points = makeBlobs(10, 6);
  std::vector<size_t> Truth(Points.size());
  for (size_t I = 0; I != Points.size(); ++I)
    Truth[I] = I / 10;
  EXPECT_GT(silhouetteScore(Points, Truth), 0.85);
}

TEST(SilhouetteTest, BadPartitionScoresLower) {
  auto Points = makeBlobs(10, 6);
  std::vector<size_t> Truth(Points.size()), Scrambled(Points.size());
  for (size_t I = 0; I != Points.size(); ++I) {
    Truth[I] = I / 10;
    Scrambled[I] = I % 3; // Mixes the blobs.
  }
  EXPECT_GT(silhouetteScore(Points, Truth),
            silhouetteScore(Points, Scrambled) + 0.5);
}

TEST(SilhouetteTest, SingletonClusterScoresZero) {
  std::vector<std::vector<double>> Points = {{0.0}, {0.1}, {5.0}};
  std::vector<size_t> Assignments = {0, 0, 1};
  auto Values = silhouetteValues(Points, Assignments);
  EXPECT_DOUBLE_EQ(Values[2], 0.0);
  EXPECT_GT(Values[0], 0.9);
}

TEST(SilhouetteTest, SingleClusterIsZeroOverall) {
  std::vector<std::vector<double>> Points = {{0.0}, {1.0}, {2.0}};
  std::vector<size_t> Assignments = {0, 0, 0};
  EXPECT_DOUBLE_EQ(silhouetteScore(Points, Assignments), 0.0);
}

//===----------------------------------------------------------------------===//
// Cluster-count selection
//===----------------------------------------------------------------------===//

TEST(ClusterSelectionTest, FindsThreeBlobs) {
  auto Points = makeBlobs(12, 9);
  auto Choice = cantFail(chooseClusterCount(Points, 6));
  EXPECT_EQ(Choice.K, 3u);
  EXPECT_GT(Choice.Silhouette, 0.8);
  EXPECT_EQ(Choice.Sweep.size(), 5u); // K = 2..6.
  EXPECT_TRUE(recoversBlobs(Choice.Result.Assignments, 12));
}

TEST(ClusterSelectionTest, ClampsToDistinctPointCount) {
  std::vector<std::vector<double>> Points = {{0.0}, {0.0}, {5.0}, {5.1}};
  auto Choice = cantFail(chooseClusterCount(Points, 10));
  EXPECT_LE(Choice.K, 3u); // Only 3 distinct points.
}

TEST(ClusterSelectionTest, RejectsDegenerateInput) {
  std::vector<std::vector<double>> Points = {{1.0}, {1.0}};
  auto Choice = chooseClusterCount(Points, 4);
  EXPECT_FALSE(static_cast<bool>(Choice));
  Choice.takeError().consume();
}
