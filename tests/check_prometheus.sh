#!/bin/sh
# Validates a Prometheus text-exposition (0.0.4) file:
#  - every sample line is `name{labels} value` or `name value` with a
#    legal metric name and a numeric value;
#  - every sample's family has a preceding `# TYPE family kind` line;
#  - histogram `_bucket` series are cumulative (non-decreasing in le
#    order as emitted), end in `le="+Inf"`, and the +Inf count equals
#    the family's `_count` sample.
# Usage: check_prometheus.sh FILE
set -eu

File="$1"
[ -s "$File" ] || { echo "check_prometheus: $File missing or empty" >&2; exit 1; }

awk '
function fail(msg) { printf "check_prometheus: line %d: %s\n", NR, msg > "/dev/stderr"; bad = 1 }
function base_of(name) {
  # Strip a histogram suffix to find the family the TYPE line declared.
  if (name ~ /_bucket$/) return substr(name, 1, length(name) - 7)
  if (name ~ /_sum$/) return substr(name, 1, length(name) - 4)
  if (name ~ /_count$/) return substr(name, 1, length(name) - 6)
  return name
}
/^#/ {
  if ($0 ~ /^# TYPE /) {
    if (NF != 4) { fail("malformed TYPE line"); next }
    if ($4 != "counter" && $4 != "gauge" && $4 != "histogram" && $4 != "summary" && $4 != "untyped")
      fail("unknown metric type " $4)
    type[$3] = $4
  }
  next
}
/^$/ { next }
{
  # Split "name{labels} value" / "name value".
  line = $0
  name = line; labels = ""
  brace = index(line, "{")
  if (brace > 0) {
    close_brace = index(line, "}")
    if (close_brace <= brace) { fail("unbalanced braces"); next }
    name = substr(line, 1, brace - 1)
    labels = substr(line, brace + 1, close_brace - brace - 1)
    rest = substr(line, close_brace + 1)
  } else {
    sp = index(line, " ")
    if (sp == 0) { fail("no value"); next }
    name = substr(line, 1, sp - 1)
    rest = substr(line, sp)
  }
  sub(/^ +/, "", rest)
  value = rest
  if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) { fail("bad metric name " name); next }
  if (value !~ /^[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[0-9]+\.?[0-9]*([eE][-+]?[0-9]+)?|NaN|[-+]?Inf)$/)
    fail("bad sample value \"" value "\" for " name)
  fam = base_of(name)
  if (!(fam in type) && !(name in type)) fail("sample " name " has no TYPE line")
  if (labels != "" && labels !~ /^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*$/)
    fail("bad label block {" labels "}")

  if (name ~ /_bucket$/) {
    # Cumulative check per family+non-le labels.
    lbl = labels
    sub(/(^|,)le="[^"]*"/, "", lbl)
    key = fam "|" lbl
    if (value + 0 < last_bucket[key] + 0) fail("bucket counts not cumulative for " name)
    last_bucket[key] = value
    if (labels ~ /le="\+Inf"/) inf_count[key] = value
    seen_inf[key] = (labels ~ /le="\+Inf"/) ? 1 : seen_inf[key]
    bucket_fam[key] = fam
  }
  if (name ~ /_count$/) count_val[fam "|" labels] = value
}
END {
  for (key in bucket_fam) {
    if (!seen_inf[key]) { printf "check_prometheus: histogram %s missing +Inf bucket\n", key > "/dev/stderr"; bad = 1 }
    fam = bucket_fam[key]
    split(key, parts, "|")
    ckey = parts[1] "|" parts[2]
    if ((ckey in count_val) && inf_count[key] + 0 != count_val[ckey] + 0) {
      printf "check_prometheus: histogram %s +Inf (%s) != _count (%s)\n", key, inf_count[key], count_val[ckey] > "/dev/stderr"
      bad = 1
    }
  }
  exit bad ? 1 : 0
}
' "$File"

echo "check_prometheus: $File OK"
