//===- tests/IngestEquivalenceTest.cpp - Fast path vs legacy parser -------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The golden-equivalence suite for the ingestion fast path: every text
// fixture in fuzz/corpus/ plus a set of synthetic stress inputs runs
// through the frozen legacy parser, the single-pass scanner and the
// sharded parallel parser at 1, 2 and 8 threads, in both strict and
// lenient mode.  Success/failure, the serialized Trace, the structured
// error (code, line, offset, message) and the full ParseReport (totals,
// per-code drop counts, samples) must agree bit for bit.  This is the
// test that licenses every future optimization of the fast path.
//
// Also pins the tightened ParseLimits allocation accounting to its
// documented formula.
//
//===----------------------------------------------------------------------===//

#include "support/FileUtils.h"
#include "support/ParseLimits.h"
#include "trace/ParallelParse.h"
#include "trace/TextScan.h"
#include "trace/TraceIO.h"
#include "gtest/gtest.h"
#include <filesystem>
#include <vector>

using namespace lima;
using trace::Event;
using trace::Trace;

namespace {

/// One parse outcome, flattened for comparison.
struct Outcome {
  bool Ok = false;
  std::string TraceText; // writeTraceText on success
  ParseError Err;        // structured error on failure
  ParseReport Report;    // attached in lenient mode
};

Outcome runParse(std::string_view Text, ParseMode Mode,
                 int Threads /* -1 = legacy, 0 = new sequential */) {
  Outcome O;
  ParseOptions Options;
  Options.Mode = Mode;
  Options.Report = Mode == ParseMode::Lenient ? &O.Report : nullptr;
  Expected<Trace> Result =
      Threads < 0 ? trace::parseTraceTextLegacy(Text, Options)
      : Threads == 0
          ? trace::parseTraceText(Text, Options)
          : trace::parseTraceTextParallel(Text, Options,
                                          static_cast<unsigned>(Threads));
  if (Result) {
    O.Ok = true;
    O.TraceText = trace::writeTraceText(*Result);
  } else {
    O.Err = Result.takeError().toParseError();
  }
  return O;
}

void expectSameOutcome(const Outcome &Ref, const Outcome &Got,
                       const std::string &What) {
  ASSERT_EQ(Ref.Ok, Got.Ok) << What;
  if (Ref.Ok) {
    EXPECT_EQ(Ref.TraceText, Got.TraceText) << What;
  } else {
    EXPECT_EQ(Ref.Err.Code, Got.Err.Code) << What;
    EXPECT_EQ(Ref.Err.Line, Got.Err.Line) << What;
    EXPECT_EQ(Ref.Err.Offset, Got.Err.Offset) << What;
    EXPECT_EQ(Ref.Err.Msg, Got.Err.Msg) << What;
  }
  EXPECT_EQ(Ref.Report.TotalRecords, Got.Report.TotalRecords) << What;
  EXPECT_EQ(Ref.Report.DroppedRecords, Got.Report.DroppedRecords) << What;
  for (size_t I = 0; I != Ref.Report.DroppedByCode.size(); ++I)
    EXPECT_EQ(Ref.Report.DroppedByCode[I], Got.Report.DroppedByCode[I])
        << What << " code " << I;
  ASSERT_EQ(Ref.Report.Samples.size(), Got.Report.Samples.size()) << What;
  for (size_t I = 0; I != Ref.Report.Samples.size(); ++I) {
    EXPECT_EQ(Ref.Report.Samples[I].Code, Got.Report.Samples[I].Code) << What;
    EXPECT_EQ(Ref.Report.Samples[I].Line, Got.Report.Samples[I].Line) << What;
    EXPECT_EQ(Ref.Report.Samples[I].Offset, Got.Report.Samples[I].Offset)
        << What;
    EXPECT_EQ(Ref.Report.Samples[I].Msg, Got.Report.Samples[I].Msg) << What;
  }
}

/// Legacy is the reference; the scanner and the sharded parser at every
/// thread count must match it in both modes.
void expectEquivalent(std::string_view Text, const std::string &Name) {
  for (ParseMode Mode : {ParseMode::Strict, ParseMode::Lenient}) {
    const char *ModeName = Mode == ParseMode::Strict ? "strict" : "lenient";
    Outcome Ref = runParse(Text, Mode, -1);
    expectSameOutcome(Ref, runParse(Text, Mode, 0),
                      Name + " [" + ModeName + ", scanner]");
    for (int Threads : {1, 2, 8})
      expectSameOutcome(Ref, runParse(Text, Mode, Threads),
                        Name + " [" + ModeName + ", threads=" +
                            std::to_string(Threads) + "]");
  }
}

/// A valid trace big enough (>64 KiB of events) that the parallel
/// parser actually shards instead of falling back to sequential.
std::string makeBigTrace(size_t Rounds) {
  std::string Text = "LIMATRACE 1\nprocs 4\nregion 0 main\n"
                     "activity 0 compute\n";
  char Buf[128];
  double T = 0.0;
  for (size_t I = 0; I != Rounds; ++I)
    for (unsigned P = 0; P != 4; ++P) {
      T += 0.001;
      std::snprintf(Buf, sizeof(Buf),
                    "re %u %.6f 0\nab %u %.6f 0\nae %u %.6f 0\n"
                    "rx %u %.6f 0\nms %u %.6f %u 64\n",
                    P, T, P, T + 0.1, P, T + 0.2, P, T + 0.3, P, T + 0.4,
                    (P + 1) % 4);
      Text += Buf;
    }
  return Text;
}

TEST(IngestEquivalence, CorpusFixtures) {
  std::filesystem::path Dir =
      std::filesystem::path(LIMA_FUZZ_CORPUS_DIR) / "fuzz_trace_text";
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  ASSERT_FALSE(Files.empty());
  for (const auto &File : Files) {
    std::string Text = cantFail(readFile(File.string()));
    expectEquivalent(Text, File.filename().string());
  }
}

TEST(IngestEquivalence, SyntheticEdgeCases) {
  const std::string Header = "LIMATRACE 1\nprocs 2\nregion 0 r\n";
  struct Case {
    const char *Name;
    std::string Text;
  } Cases[] = {
      {"empty", ""},
      {"only-newlines", "\n\n\n"},
      {"magic-only", "LIMATRACE 1\n"},
      {"magic-only-no-newline", "LIMATRACE 1"},
      {"no-trailing-newline", Header + "re 0 1.0 0"},
      {"trailing-newline", Header + "re 0 1.0 0\n"},
      {"trailing-blank-lines", Header + "re 0 1.0 0\n\n \n"},
      {"comments-between-events", Header + "re 0 1.0 0\n# c\nrx 0 2.0 0\n"},
      {"plus-prefixed-proc", Header + "re +0 1.0 0\n"},
      {"plus-prefixed-time", Header + "re 0 +1.0 0\n"},
      {"hex-float-time", Header + "re 0 0x1p-3 0\n"},
      {"subnormal-time", Header + "re 0 1e-320 0\n"},
      {"overflow-time", Header + "re 0 1e999 0\n"},
      {"inf-time", Header + "re 0 inf 0\n"},
      {"nan-time", Header + "re 0 nan 0\n"},
      {"negative-time", Header + "re 0 -1.0 0\n"},
      {"six-fields", Header + "ms 0 1.0 1 64 extra\n"},
      {"seven-fields", Header + "ms 0 1.0 1 64 extra more\n"},
      {"late-declaration", Header + "re 0 1.0 0\nregion 1 late\n"
                                     "re 0 2.0 1\n"},
      {"late-procs", Header + "re 0 1.0 0\nprocs 4\n"},
      {"magic-mid-events", Header + "re 0 1.0 0\nLIMATRACE 1\n"},
      {"events-before-procs", "LIMATRACE 1\nre 0 1.0 0\n"},
      {"declaration-extra-tokens", "LIMATRACE 1\nprocs 2\n"
                                   "region 0 name with extra tokens\n"
                                   "re 0 1.0 0\n"},
  };
  for (const Case &C : Cases)
    expectEquivalent(C.Text, C.Name);
}

TEST(IngestEquivalence, BigValidTraceShards) {
  std::string Text = makeBigTrace(800); // ~0.5 MB, 16000 events
  ASSERT_GT(Text.size(), size_t(64) * 1024);
  expectEquivalent(Text, "big-valid");
}

TEST(IngestEquivalence, BigTraceStrictErrorDeepInside) {
  // A strict error far past the first shard boundary: the reported
  // line/offset must be the sequentially-first failure regardless of
  // which shard hits an error first in wall-clock order.
  std::string Text = makeBigTrace(800);
  size_t Mid = Text.find("\nre 2 ", Text.size() / 2);
  ASSERT_NE(Mid, std::string::npos);
  Text.insert(Mid + 1, "re 9 0.5 0\nre 0 bogus 0\n");
  expectEquivalent(Text, "big-strict-error");
}

TEST(IngestEquivalence, BigTraceLenientScatteredDrops) {
  // More than ParseReport::MaxSamples bad lines scattered across the
  // whole event section: drop counts and the first-16 sample list must
  // merge back in file order at every thread count.
  std::string Text = makeBigTrace(800);
  std::string Peppered;
  Peppered.reserve(Text.size() + 4096);
  size_t LineIdx = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size() - 1;
    Peppered.append(Text, Pos, Nl - Pos + 1);
    if (++LineIdx % 163 == 0)
      Peppered += LineIdx % 2 ? "re 0 bogus 0\n" : "zz 0 1.0 0\n";
    Pos = Nl + 1;
  }
  expectEquivalent(Peppered, "big-lenient-drops");
}

TEST(IngestEquivalence, AllocAccountingPinned) {
  // The tightened accounting formula, pinned: a std::string header per
  // name plus the out-of-line buffer (len + NUL) only beyond the SSO
  // capacity, sizeof(std::vector<Event>) per declared processor, and
  // sizeof(Event) per event.
  const std::string LongName(100, 'n'); // comfortably past any SSO
  const std::string Text = "LIMATRACE 1\nprocs 2\nregion 0 ab\n"
                           "region 1 " + LongName + "\n"
                           "re 0 1.0 0\nrx 0 2.0 0\n";
  const uint64_t Accounted = 2 * sizeof(std::vector<Event>) +
                             trace::scan::nameAllocCost(2) +
                             trace::scan::nameAllocCost(100) +
                             2 * sizeof(Event);
  // Short names cost only the string header under SSO...
  EXPECT_EQ(trace::scan::nameAllocCost(2), sizeof(std::string));
  // ...and long names additionally their NUL-terminated buffer.
  EXPECT_EQ(trace::scan::nameAllocCost(100), sizeof(std::string) + 101);

  ParseOptions Exact;
  Exact.Limits.MaxAllocBytes = Accounted;
  EXPECT_TRUE(static_cast<bool>(trace::parseTraceText(Text, Exact)));

  ParseOptions OneLess;
  OneLess.Limits.MaxAllocBytes = Accounted - 1;
  Expected<Trace> Fail = trace::parseTraceText(Text, OneLess);
  ASSERT_FALSE(static_cast<bool>(Fail));
  EXPECT_EQ(Fail.takeError().toParseError().Code, ErrorCode::LimitExceeded);
}

} // namespace
