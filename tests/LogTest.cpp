//===- tests/LogTest.cpp - Structured logging tests -----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"
#include "support/CommandLine.h"
#include "support/raw_ostream.h"
#include "TestHelpers.h"
#include <chrono>
#include <gtest/gtest.h>
#include <thread>

using namespace lima;
using namespace lima::logging;

namespace {

/// Captures log output into a string for the duration of a test.
class LogTest : public ::testing::Test {
protected:
  void SetUp() override {
    resetForTest();
    setSink(&OS);
    setRepeatWindowMs(0); // Determinism: every call emits.
  }
  void TearDown() override { resetForTest(); }

  /// Returns everything captured since the last call.
  std::string taken() {
    OS.flush();
    std::string Out = Captured;
    Captured.clear();
    return Out;
  }

  std::string Captured;
  raw_string_ostream OS{Captured};
};

} // namespace

TEST_F(LogTest, TextFormat) {
  info("reduced trace", {field("events", uint64_t(42)),
                         field("path", "a b.trace")});
  EXPECT_EQ(taken(), "[info] reduced trace events=42 path=\"a b.trace\"\n");
}

TEST_F(LogTest, LevelsBelowThresholdDropped) {
  setLevel(Level::Warn);
  debug("nope");
  info("nope");
  warn("yes");
  error("also");
  EXPECT_EQ(taken(), "[warn] yes\n[error] also\n");
}

TEST_F(LogTest, OffSilencesEverything) {
  setLevel(Level::Off);
  error("nope");
  EXPECT_EQ(taken(), "");
}

TEST_F(LogTest, JsonFormat) {
  setJson(true);
  warn("drop", {field("count", uint64_t(3)), field("why", "bad record"),
                field("ratio", 0.5)});
  EXPECT_EQ(taken(), "{\"level\":\"warn\",\"msg\":\"drop\",\"count\":3,"
                     "\"why\":\"bad record\",\"ratio\":0.5}\n");
}

TEST_F(LogTest, JsonEscapesSpecials) {
  setJson(true);
  info("a\"b\\c\nd");
  EXPECT_EQ(taken(),
            "{\"level\":\"info\",\"msg\":\"a\\\"b\\\\c\\nd\"}\n");
}

TEST_F(LogTest, RepeatSuppressionCountsAndReemits) {
  setRepeatWindowMs(40);
  info("dup");
  info("dup"); // Suppressed.
  info("dup"); // Suppressed.
  EXPECT_EQ(taken(), "[info] dup\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  info("dup"); // Outside the window: emits with the suppressed count.
  EXPECT_EQ(taken(), "[info] dup repeats=2\n");
}

TEST_F(LogTest, DifferentMessagesDoNotSuppressEachOther) {
  setRepeatWindowMs(60000);
  info("one");
  info("two");
  warn("one"); // Different level: its own key.
  EXPECT_EQ(taken(), "[info] one\n[info] two\n[warn] one\n");
}

TEST(LogLevelTest, ParseLevelRoundTrips) {
  for (Level L : {Level::Debug, Level::Info, Level::Warn, Level::Error,
                  Level::Off}) {
    auto Parsed = parseLevel(levelName(L));
    ASSERT_TRUE(static_cast<bool>(Parsed));
    EXPECT_EQ(*Parsed, L);
  }
  EXPECT_TRUE(testutil::failed(parseLevel("loud")));
}

TEST_F(LogTest, ConfigureFromFlags) {
  ArgParser Parser("t", "test");
  addFlags(Parser);
  const char *Argv[] = {"t", "--log-level", "debug", "--log-json"};
  ASSERT_FALSE(Parser.parse(4, Argv));
  ASSERT_FALSE(configureFromFlags(Parser));
  EXPECT_EQ(level(), Level::Debug);
  EXPECT_TRUE(json());
}

TEST_F(LogTest, QuietOverridesLogLevel) {
  ArgParser Parser("t", "test");
  addFlags(Parser);
  const char *Argv[] = {"t", "--log-level", "debug"};
  ASSERT_FALSE(Parser.parse(3, Argv));
  ASSERT_FALSE(configureFromFlags(Parser, /*Quiet=*/true));
  EXPECT_EQ(level(), Level::Error);
}

TEST_F(LogTest, BadLevelRejected) {
  ArgParser Parser("t", "test");
  addFlags(Parser);
  const char *Argv[] = {"t", "--log-level", "loud"};
  ASSERT_FALSE(Parser.parse(3, Argv));
  EXPECT_TRUE(testutil::failed(configureFromFlags(Parser)));
}
