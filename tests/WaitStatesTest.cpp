//===- tests/WaitStatesTest.cpp - late-sender analysis tests --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/TraceReduction.h"
#include "core/Views.h"
#include "core/WaitStates.h"
#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;
using trace::EventKind;

namespace {

/// Receiver blocks at t=1 inside its p2p bracket; the sender only sends
/// at t=3 -> 2 seconds of late-sender wait.  A second, punctual message
/// (send at t=4, recv posted at t=5) contributes none.
trace::Trace makeLateSenderTrace() {
  trace::Trace T(2);
  uint32_t R = T.addRegion("r");
  uint32_t Comp = T.addActivity("computation");
  uint32_t P2P = T.addActivity("point-to-point");

  // Sender (proc 0): computes until 3, sends, computes, sends at 4.
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.0, 0, EventKind::ActivityBegin, Comp, 0});
  T.append({3.0, 0, EventKind::ActivityEnd, Comp, 0});
  T.append({3.0, 0, EventKind::ActivityBegin, P2P, 0});
  T.append({3.0, 0, EventKind::MessageSend, 1, 100});
  T.append({3.1, 0, EventKind::ActivityEnd, P2P, 0});
  T.append({3.1, 0, EventKind::ActivityBegin, Comp, 0});
  T.append({4.0, 0, EventKind::ActivityEnd, Comp, 0});
  T.append({4.0, 0, EventKind::ActivityBegin, P2P, 0});
  T.append({4.0, 0, EventKind::MessageSend, 1, 200});
  T.append({4.1, 0, EventKind::ActivityEnd, P2P, 0});
  T.append({4.1, 0, EventKind::RegionExit, R, 0});

  // Receiver (proc 1): blocks early for the first message, late for the
  // second.
  T.append({0.0, 1, EventKind::RegionEnter, R, 0});
  T.append({0.0, 1, EventKind::ActivityBegin, Comp, 0});
  T.append({1.0, 1, EventKind::ActivityEnd, Comp, 0});
  T.append({1.0, 1, EventKind::ActivityBegin, P2P, 0});
  T.append({3.2, 1, EventKind::MessageRecv, 0, 100});
  T.append({3.2, 1, EventKind::ActivityEnd, P2P, 0});
  T.append({3.2, 1, EventKind::ActivityBegin, Comp, 0});
  T.append({5.0, 1, EventKind::ActivityEnd, Comp, 0});
  T.append({5.0, 1, EventKind::ActivityBegin, P2P, 0});
  T.append({5.1, 1, EventKind::MessageRecv, 0, 200});
  T.append({5.1, 1, EventKind::ActivityEnd, P2P, 0});
  T.append({5.1, 1, EventKind::RegionExit, R, 0});
  return T;
}

} // namespace

TEST(WaitStatesTest, HandComputedLateSenderWait) {
  auto Report = cantFail(analyzeWaitStates(makeLateSenderTrace()));
  EXPECT_EQ(Report.TotalReceives, 2u);
  EXPECT_EQ(Report.LateReceives, 1u);
  // Receiver blocked at 1.0; sender sent at 3.0 -> 2.0 s late-sender.
  EXPECT_NEAR(Report.TotalLateSender, 2.0, 1e-12);
  EXPECT_NEAR(Report.LateSender.time(0, 0, 1), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(Report.LateSender.time(0, 0, 0), 0.0);
  ASSERT_EQ(Report.Channels.size(), 1u);
  EXPECT_EQ(Report.Channels[0].From, 0u);
  EXPECT_EQ(Report.Channels[0].To, 1u);
  EXPECT_EQ(Report.Channels[0].Messages, 1u);
}

TEST(WaitStatesTest, RejectsInvalidTrace) {
  trace::Trace T(1);
  T.addRegion("r");
  T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, 0, 0});
  EXPECT_TRUE(testutil::failed(analyzeWaitStates(T)));
}

TEST(WaitStatesTest, PipelineFillIsLateSenderDominated) {
  // The CFD wavefront's p2p time is pipeline fill: downstream ranks
  // block long before upstream ranks send.  Late-sender wait must
  // account for the bulk of the sweep region's p2p time.
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 44;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  auto Run = cantFail(cfd::runCfd(Config));
  auto Report = cantFail(analyzeWaitStates(Run.Trace));
  auto Cube = cantFail(core::reduceTrace(Run.Trace));

  double SweepP2P = Cube.regionActivityTime(2, 1) * Config.Procs;
  double SweepLate = 0.0;
  for (unsigned P = 0; P != Config.Procs; ++P)
    SweepLate += Report.LateSender.time(2, 0, P);
  EXPECT_GT(SweepLate, 0.5 * SweepP2P);
  EXPECT_LT(SweepLate, SweepP2P + 1e-9);
}

TEST(WaitStatesTest, OverlappedHaloHasNoLateSenderInAdvection) {
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 44;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  Config.OverlapHalo = true;
  auto Run = cantFail(cfd::runCfd(Config));
  auto Report = cantFail(analyzeWaitStates(Run.Trace));
  // Advection (region 3): sends happen before the compute, so by wait
  // time every matching send long precedes the receive -> no late
  // senders.
  for (unsigned P = 0; P != Config.Procs; ++P)
    EXPECT_NEAR(Report.LateSender.time(3, 0, P), 0.0, 1e-9) << "rank " << P;
}

TEST(WaitStatesTest, DispersionMachineryAppliesToWaits) {
  // The late-sender cube is a MeasurementCube: the region view runs on
  // it unchanged, localizing who waits.
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 44;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  auto Run = cantFail(cfd::runCfd(Config));
  auto Report = cantFail(analyzeWaitStates(Run.Trace));
  if (Report.TotalLateSender <= 0.0)
    GTEST_SKIP() << "no waits to analyze";
  auto Matrix = core::computeDissimilarityMatrix(Report.LateSender);
  for (const auto &Row : Matrix)
    for (double Index : Row)
      EXPECT_GE(Index, 0.0);
}
