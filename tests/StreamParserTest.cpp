//===- tests/StreamParserTest.cpp - Incremental parser tests --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/StreamParser.h"
#include "support/FileUtils.h"
#include "support/MappedFile.h"
#include "trace/TraceIO.h"
#include "TestHelpers.h"
#include <cstdio>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::trace;

namespace {

const char *SampleTrace = "LIMATRACE 1\n"
                          "procs 2\n"
                          "region 0 main\n"
                          "activity 0 comp\n"
                          "# a comment\n"
                          "re 0 0.0 0\n"
                          "ab 0 0.0 0\n"
                          "ae 0 1.0 0\n"
                          "rx 0 1.0 0\n"
                          "re 1 0.0 0\n"
                          "ab 1 0.0 0\n"
                          "ae 1 2.0 0\n"
                          "rx 1 2.0 0\n";

/// Feeds \p Text in chunks of \p ChunkSize bytes and returns all events.
Expected<std::vector<Event>> parseChunked(std::string_view Text,
                                          size_t ChunkSize,
                                          ParseOptions Options = {}) {
  StreamParser P(Options);
  std::vector<Event> Events;
  for (size_t I = 0; I < Text.size(); I += ChunkSize) {
    if (auto Err = P.feed(Text.substr(I, ChunkSize), Events))
      return Err;
  }
  if (auto Err = P.finish(Events))
    return Err;
  return Events;
}

} // namespace

TEST(StreamParserTest, MatchesBatchParserAtAnyChunkSize) {
  Trace Whole = cantFail(parseTraceText(SampleTrace));
  for (size_t Chunk : {size_t(1), size_t(7), size_t(64), size_t(4096)}) {
    auto EventsOrErr = parseChunked(SampleTrace, Chunk);
    ASSERT_TRUE(static_cast<bool>(EventsOrErr)) << "chunk " << Chunk;
    size_t Total = 0;
    for (unsigned P = 0; P != Whole.numProcs(); ++P)
      Total += Whole.events(P).size();
    EXPECT_EQ(EventsOrErr->size(), Total) << "chunk " << Chunk;
  }
}

TEST(StreamParserTest, HeaderTablesExposed) {
  StreamParser P;
  std::vector<Event> Events;
  ASSERT_FALSE(P.feed(SampleTrace, Events));
  EXPECT_TRUE(P.headerComplete());
  EXPECT_EQ(P.numProcs(), 2u);
  ASSERT_EQ(P.regionNames().size(), 1u);
  EXPECT_EQ(P.regionNames()[0], "main");
  ASSERT_EQ(P.activityNames().size(), 1u);
  EXPECT_EQ(P.activityNames()[0], "comp");
  EXPECT_EQ(P.eventsParsed(), 8u);
}

TEST(StreamParserTest, TrailingLineParsedAtFinish) {
  StreamParser P;
  std::vector<Event> Events;
  // No trailing newline on the last event.
  ASSERT_FALSE(P.feed("LIMATRACE 1\nprocs 1\nregion 0 r\nactivity 0 a\n"
                      "re 0 0.5 0",
                      Events));
  EXPECT_EQ(Events.size(), 0u); // Line incomplete until finish.
  ASSERT_FALSE(P.finish(Events));
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Kind, EventKind::RegionEnter);
  EXPECT_DOUBLE_EQ(Events[0].Time, 0.5);
}

TEST(StreamParserTest, MissingHeaderFailsAtFinish) {
  StreamParser P;
  std::vector<Event> Events;
  EXPECT_TRUE(testutil::failed(P.finish(Events)));

  StreamParser P2;
  ASSERT_FALSE(P2.feed("LIMATRACE 1\n", Events));
  EXPECT_TRUE(testutil::failed(P2.finish(Events))); // No 'procs'.
}

TEST(StreamParserTest, BadMagicFailsImmediately) {
  StreamParser P;
  std::vector<Event> Events;
  EXPECT_TRUE(testutil::failed(P.feed("NOTATRACE 1\n", Events)));
}

TEST(StreamParserTest, StrictModeFailsOnMalformedRecord) {
  StreamParser P;
  std::vector<Event> Events;
  EXPECT_TRUE(testutil::failed(
      P.feed("LIMATRACE 1\nprocs 1\nregion 0 r\nactivity 0 a\n"
             "re 0 notanumber 0\n",
             Events)));
}

TEST(StreamParserTest, LenientModeDropsAndCounts) {
  ParseReport Report;
  ParseOptions Options;
  Options.Mode = ParseMode::Lenient;
  Options.Report = &Report;
  StreamParser P(Options);
  std::vector<Event> Events;
  ASSERT_FALSE(P.feed("LIMATRACE 1\nprocs 1\nregion 0 r\nactivity 0 a\n"
                      "re 0 notanumber 0\n"
                      "zz 0 1.0 0\n"
                      "re 0 1.0 0\n",
                      Events));
  ASSERT_FALSE(P.finish(Events));
  EXPECT_EQ(Events.size(), 1u);
  EXPECT_EQ(Report.TotalRecords, 3u);
  EXPECT_EQ(Report.DroppedRecords, 2u);
}

TEST(StreamParserTest, NonFiniteTimesRejected) {
  // strtod accepts "inf" and "nan"; a non-finite time reaching the
  // windowed analyzer would hang or invoke undefined behavior, so the
  // parser must reject it like a negative time.
  for (const char *Time : {"inf", "-inf", "nan", "Infinity", "NAN"}) {
    StreamParser P;
    std::vector<Event> Events;
    std::string Text = "LIMATRACE 1\nprocs 1\nregion 0 r\nactivity 0 a\n"
                       "re 0 " +
                       std::string(Time) + " 0\n";
    EXPECT_TRUE(testutil::failed(P.feed(Text, Events))) << Time;
  }
}

TEST(StreamParserTest, OverlongPartialLineRejected) {
  ParseOptions Options;
  Options.Limits.MaxLineBytes = 16;
  StreamParser P(Options);
  std::vector<Event> Events;
  std::string Long(64, 'x'); // No newline: still must fail fast.
  EXPECT_TRUE(testutil::failed(P.feed(Long, Events)));
}

TEST(StreamParserTest, EventLimitEnforced) {
  ParseOptions Options;
  Options.Limits.MaxEvents = 2;
  StreamParser P(Options);
  std::vector<Event> Events;
  EXPECT_TRUE(testutil::failed(
      P.feed("LIMATRACE 1\nprocs 1\nregion 0 r\nactivity 0 a\n"
             "re 0 0.0 0\nab 0 0.1 0\nae 0 0.2 0\n",
             Events)));
}

TEST(StreamParserTest, DuplicateProcsRejected) {
  StreamParser P;
  std::vector<Event> Events;
  EXPECT_TRUE(testutil::failed(
      P.feed("LIMATRACE 1\nprocs 2\nprocs 2\n", Events)));
}

TEST(StreamParserTest, ChunkedStreamMatchesMappedBatchLoad) {
  // Chunk-boundary parity extended to the mmap-backed path: a stream
  // parse reassembled from 7-byte chunks must see exactly the events
  // loadTrace() produces when it parses the same bytes in place from a
  // MappedFile view.
  std::string Path = ::testing::TempDir() + "/lima_stream_mmap.trace";
  cantFail(writeFile(Path, SampleTrace));
  Trace Loaded = cantFail(loadTrace(Path));
  std::remove(Path.c_str());

  auto StreamedOrErr = parseChunked(SampleTrace, 7);
  ASSERT_TRUE(static_cast<bool>(StreamedOrErr));
  ASSERT_EQ(StreamedOrErr->size(), Loaded.numEvents());
  Trace Rebuilt(Loaded.numProcs());
  Rebuilt.addRegion("main");
  Rebuilt.addActivity("comp");
  for (const Event &E : *StreamedOrErr)
    Rebuilt.append(E);
  EXPECT_EQ(writeTraceText(Rebuilt), writeTraceText(Loaded));
}

TEST(StreamParserTest, MappedFileViewsAreZeroCopyForRegularFiles) {
  std::string Path = ::testing::TempDir() + "/lima_mapped_file.trace";
  cantFail(writeFile(Path, SampleTrace));
  MappedFile File = cantFail(MappedFile::open(Path));
  EXPECT_TRUE(File.isMapped());
  EXPECT_EQ(File.view(), SampleTrace);
  std::remove(Path.c_str());

  EXPECT_TRUE(testutil::failed(
      MappedFile::open(::testing::TempDir() + "/lima_no_such_file")));
}
