//===- tests/CfdTest.cpp - CFD application tests --------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/Profile.h"
#include "core/TraceReduction.h"
#include "core/Views.h"
#include "trace/TraceIO.h"
#include <cmath>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::cfd;

namespace {

/// A small, fast configuration used by most tests.
CfdConfig smallConfig() {
  CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 48;
  Config.RowsPerRank = 6;
  Config.Iterations = 3;
  return Config;
}

} // namespace

TEST(CfdTest, RunsAndProducesValidTrace) {
  auto Result = cantFail(runCfd(smallConfig()));
  Error E = Result.Trace.validate();
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(Result.Trace.numProcs(), 8u);
  EXPECT_EQ(Result.Trace.numRegions(), 7u);
  EXPECT_EQ(Result.Trace.numActivities(), 4u);
}

TEST(CfdTest, ResidualDecreasesAcrossIterations) {
  CfdConfig Config = smallConfig();
  Config.Iterations = 6;
  auto Result = cantFail(runCfd(Config));
  ASSERT_EQ(Result.ResidualHistory.size(), 6u);
  for (double R : Result.ResidualHistory) {
    EXPECT_TRUE(std::isfinite(R));
    EXPECT_GE(R, 0.0);
  }
  // The diffusive solver must make clear overall progress.
  EXPECT_LT(Result.FinalResidual, 0.5 * Result.ResidualHistory.front());
}

TEST(CfdTest, DeterministicAcrossRuns) {
  auto A = cantFail(runCfd(smallConfig()));
  auto B = cantFail(runCfd(smallConfig()));
  EXPECT_EQ(trace::writeTraceText(A.Trace), trace::writeTraceText(B.Trace));
  EXPECT_DOUBLE_EQ(A.FinalResidual, B.FinalResidual);
}

TEST(CfdTest, WorkFactorsAreCenteredAndPositive) {
  CfdConfig Config;
  Config.Procs = 16;
  for (unsigned Loop = 0; Loop != 7; ++Loop) {
    double Sum = 0.0;
    for (unsigned R = 0; R != Config.Procs; ++R) {
      double F = cfdWorkFactor(Config, Loop, R);
      EXPECT_GT(F, 0.0);
      Sum += F;
    }
    EXPECT_NEAR(Sum / Config.Procs, 1.0, 1e-9) << "loop " << Loop;
  }
}

TEST(CfdTest, ImbalanceScaleZeroBalancesWork) {
  CfdConfig Config;
  Config.Procs = 16;
  Config.ImbalanceScale = 0.0;
  for (unsigned Loop = 0; Loop != 7; ++Loop)
    for (unsigned R = 0; R != Config.Procs; ++R)
      EXPECT_DOUBLE_EQ(cfdWorkFactor(Config, Loop, R), 1.0);
}

TEST(CfdTest, RejectsDegenerateConfigs) {
  CfdConfig Config = smallConfig();
  Config.Procs = 1;
  auto R1 = runCfd(Config);
  EXPECT_FALSE(static_cast<bool>(R1));
  R1.takeError().consume();

  Config = smallConfig();
  Config.Iterations = 0;
  auto R2 = runCfd(Config);
  EXPECT_FALSE(static_cast<bool>(R2));
  R2.takeError().consume();

  Config = smallConfig();
  Config.Nx = 2; // Below the pipeline chunk count.
  auto R3 = runCfd(Config);
  EXPECT_FALSE(static_cast<bool>(R3));
  R3.takeError().consume();
}

//===----------------------------------------------------------------------===//
// Shape of the default (paper-like) run at P = 16.
//===----------------------------------------------------------------------===//

namespace {

core::MeasurementCube defaultCube() {
  CfdConfig Config;
  Config.Iterations = 4; // Enough for stable shapes, fast enough for CI.
  auto Result = cantFail(runCfd(Config));
  return cantFail(core::reduceTrace(Result.Trace));
}

} // namespace

TEST(CfdShapeTest, PressureLoopIsHeaviestAndComputationDominates) {
  core::MeasurementCube Cube = defaultCube();
  core::CoarseProfile Profile = core::computeCoarseProfile(Cube);
  EXPECT_EQ(Cube.regionName(Profile.HeaviestRegion), "pressure");
  EXPECT_EQ(Cube.activityName(Profile.DominantActivity), "computation");
}

TEST(CfdShapeTest, ImplicitSweepsLeadPointToPoint) {
  core::MeasurementCube Cube = defaultCube();
  core::CoarseProfile Profile = core::computeCoarseProfile(Cube);
  // Loop 3 analogue: the pipelined sweeps spend the most p2p time, and
  // comparable to their computation time (paper: 5.68 vs 5.22).
  size_t P2P = 1; // activity order: computation, point-to-point, ...
  EXPECT_EQ(Cube.regionName(Profile.Extremes[P2P].WorstRegion),
            "implicit-sweeps");
  size_t Sweeps = 2;
  double Ratio = Cube.regionActivityTime(Sweeps, 1) /
                 Cube.regionActivityTime(Sweeps, 0);
  EXPECT_GT(Ratio, 0.5);
  EXPECT_LT(Ratio, 2.0);
}

TEST(CfdShapeTest, CollectiveWaitTracksInjectedSkew) {
  core::MeasurementCube Cube = defaultCube();
  // Pressure loop: collective wait should be a substantial fraction of
  // computation (paper: 6.75 / 12.24 ~ 0.55).
  double Ratio = Cube.regionActivityTime(0, 2) / Cube.regionActivityTime(0, 0);
  EXPECT_GT(Ratio, 0.25);
  EXPECT_LT(Ratio, 1.0);
}

TEST(CfdShapeTest, BalancedRunHasFarSmallerDispersion) {
  CfdConfig Skewed;
  Skewed.Iterations = 3;
  CfdConfig Balanced = Skewed;
  Balanced.ImbalanceScale = 0.0;

  auto SkewedCube =
      cantFail(core::reduceTrace(cantFail(runCfd(Skewed)).Trace));
  auto BalancedCube =
      cantFail(core::reduceTrace(cantFail(runCfd(Balanced)).Trace));

  core::RegionView SkewedView = core::computeRegionView(SkewedCube);
  core::RegionView BalancedView = core::computeRegionView(BalancedCube);
  // Pressure-loop dissimilarity collapses when the injection is off.
  EXPECT_LT(BalancedView.Index[0], 0.2 * SkewedView.Index[0]);
}

TEST(CfdShapeTest, OnlyExpectedLoopsSynchronize) {
  core::MeasurementCube Cube = defaultCube();
  // Loops 1, 5 and 6 contain barriers (paper: three loops synchronize).
  size_t Sync = 3;
  unsigned Performing = 0;
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    if (Cube.regionActivityTime(I, Sync) > 0.0)
      ++Performing;
  EXPECT_EQ(Performing, 3u);
}

TEST(CfdShapeTest, LargerScaleIncreasesPressureImbalance) {
  CfdConfig Mild;
  Mild.Iterations = 3;
  Mild.ImbalanceScale = 0.3;
  CfdConfig Strong = Mild;
  Strong.ImbalanceScale = 1.0;
  auto MildCube = cantFail(core::reduceTrace(cantFail(runCfd(Mild)).Trace));
  auto StrongCube =
      cantFail(core::reduceTrace(cantFail(runCfd(Strong)).Trace));
  auto MildMatrix = core::computeDissimilarityMatrix(MildCube);
  auto StrongMatrix = core::computeDissimilarityMatrix(StrongCube);
  EXPECT_GT(StrongMatrix[0][0], MildMatrix[0][0]);
}

TEST(CfdShapeTest, OverlappedHaloRemovesAdvectionWaits) {
  CfdConfig Blocking;
  Blocking.Iterations = 3;
  CfdConfig Overlapped = Blocking;
  Overlapped.OverlapHalo = true;

  auto BlockingCube =
      cantFail(core::reduceTrace(cantFail(runCfd(Blocking)).Trace));
  auto OverlappedCube =
      cantFail(core::reduceTrace(cantFail(runCfd(Overlapped)).Trace));

  // Advection (region 3): p2p waits vanish when the exchange overlaps
  // the compute; the pipelined sweeps (region 2) cannot benefit.
  EXPECT_GT(BlockingCube.regionActivityTime(3, 1), 0.01);
  EXPECT_LT(OverlappedCube.regionActivityTime(3, 1),
            0.05 * BlockingCube.regionActivityTime(3, 1));
  EXPECT_NEAR(OverlappedCube.regionActivityTime(2, 1),
              BlockingCube.regionActivityTime(2, 1),
              0.1 * BlockingCube.regionActivityTime(2, 1));
  // The overlapped run must not be slower overall.
  EXPECT_LE(OverlappedCube.programTime(),
            BlockingCube.programTime() * 1.001);
}
