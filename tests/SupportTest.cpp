//===- tests/SupportTest.cpp - support library unit tests -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CSV.h"
#include "support/Checksum.h"
#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/MathUtils.h"
#include "support/RNG.h"
#include "support/StringUtils.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"
#include "TestHelpers.h"
#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>
#include <set>

using namespace lima;

//===----------------------------------------------------------------------===//
// Error / Expected
//===----------------------------------------------------------------------===//

TEST(ErrorTest, SuccessIsFalsy) {
  Error E = Error::success();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(ErrorTest, FailureCarriesMessage) {
  Error E = Error::failure("boom");
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "boom");
}

TEST(ErrorTest, MakeStringErrorFormats) {
  Error E = makeStringError("code %d in %s", 42, "parser");
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "code 42 in parser");
}

TEST(ErrorTest, MoveTransfersState) {
  Error E = makeStringError("original");
  Error Moved = std::move(E);
  ASSERT_TRUE(static_cast<bool>(Moved));
  EXPECT_EQ(Moved.message(), "original");
}

TEST(ErrorTest, ConsumeDiscards) {
  Error E = makeStringError("ignored");
  E.consume(); // Must not abort at destruction.
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> V(7);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 7);
  cantFail(V.takeError());
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> V(makeStringError("no value"));
  ASSERT_FALSE(static_cast<bool>(V));
  Error E = V.takeError();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "no value");
}

TEST(ExpectedTest, TakeErrorOnSuccessIsSuccess) {
  Expected<std::string> V(std::string("ok"));
  Error E = V.takeError();
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(V.get(), "ok");
}

TEST(ExpectedTest, MoveIntoAssigns) {
  Expected<std::string> V(std::string("payload"));
  std::string Out;
  Error E = V.moveInto(Out);
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(Out, "payload");
}

TEST(ExpectedTest, MoveIntoPropagatesError) {
  Expected<std::string> V(makeStringError("nope"));
  std::string Out = "untouched";
  Error E = V.moveInto(Out);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "nope");
  EXPECT_EQ(Out, "untouched");
}

TEST(ExpectedTest, CantFailUnwraps) {
  EXPECT_EQ(cantFail(Expected<int>(9)), 9);
}

//===----------------------------------------------------------------------===//
// raw_ostream
//===----------------------------------------------------------------------===//

TEST(RawOstreamTest, WritesScalars) {
  std::string Buf;
  raw_string_ostream OS(Buf);
  OS << "x=" << 42 << ' ' << -7L << ' ' << 3.5 << ' ' << true;
  EXPECT_EQ(Buf, "x=42 -7 3.5 true");
}

TEST(RawOstreamTest, WritesUnsignedAndStrings) {
  std::string Buf;
  raw_string_ostream OS(Buf);
  OS << static_cast<unsigned long long>(1) << std::string("/a/")
     << std::string_view("b");
  EXPECT_EQ(Buf, "1/a/b");
}

TEST(RawOstreamTest, IndentRepeats) {
  std::string Buf;
  raw_string_ostream OS(Buf);
  OS.indent(3, '-') << "x";
  EXPECT_EQ(Buf, "---x");
}

TEST(RawOstreamTest, OutsAndErrsAreDistinct) {
  EXPECT_NE(&outs(), &errs());
}

//===----------------------------------------------------------------------===//
// Format
//===----------------------------------------------------------------------===//

TEST(FormatTest, FixedPrecision) {
  EXPECT_EQ(formatFixed(0.12870, 5), "0.12870");
  EXPECT_EQ(formatFixed(19.051, 3), "19.051");
  EXPECT_EQ(formatFixed(-1.5, 0), "-2"); // Round-half-even of snprintf.
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(formatPercent(0.2713, 1), "27.1%");
  EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(FormatTest, Justify) {
  EXPECT_EQ(leftJustify("ab", 4), "ab  ");
  EXPECT_EQ(rightJustify("ab", 4), "  ab");
  EXPECT_EQ(centerJustify("ab", 5), " ab  ");
  EXPECT_EQ(leftJustify("abcdef", 4), "abcdef"); // Never truncates.
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  auto Fields = splitString("a,,b,", ',');
  ASSERT_EQ(Fields.size(), 4u);
  EXPECT_EQ(Fields[0], "a");
  EXPECT_EQ(Fields[1], "");
  EXPECT_EQ(Fields[2], "b");
  EXPECT_EQ(Fields[3], "");
}

TEST(StringUtilsTest, SplitWhitespaceSkipsRuns) {
  auto Fields = splitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(Fields.size(), 3u);
  EXPECT_EQ(Fields[0], "a");
  EXPECT_EQ(Fields[2], "c");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trimString("  x y \t"), "x y");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString(""), "");
}

TEST(StringUtilsTest, ParseIntValid) {
  EXPECT_EQ(cantFail(parseInt("-12")), -12);
  EXPECT_EQ(cantFail(parseUnsigned("42")), 42u);
  EXPECT_DOUBLE_EQ(cantFail(parseDouble("2.5e-3")), 2.5e-3);
}

TEST(StringUtilsTest, ParseRejectsGarbage) {
  EXPECT_TRUE(testutil::failed(parseInt("12x")));
  EXPECT_TRUE(testutil::failed(parseInt("")));
  EXPECT_TRUE(testutil::failed(parseUnsigned("-3")));
  EXPECT_TRUE(testutil::failed(parseDouble("1.2.3")));
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
}

//===----------------------------------------------------------------------===//
// CSV
//===----------------------------------------------------------------------===//

TEST(CSVTest, ParsesSimpleRows) {
  auto Rows = cantFail(parseCSV("a,b\nc,d\n"));
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CSVTest, ParsesQuotedFields) {
  auto Rows = cantFail(parseCSV("\"a,b\",\"c\"\"d\",\"e\nf\"\n"));
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0][0], "a,b");
  EXPECT_EQ(Rows[0][1], "c\"d");
  EXPECT_EQ(Rows[0][2], "e\nf");
}

TEST(CSVTest, NoTrailingNewlineStillYieldsRow) {
  auto Rows = cantFail(parseCSV("x,y"));
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0][1], "y");
}

TEST(CSVTest, RejectsUnterminatedQuote) {
  EXPECT_TRUE(testutil::failed(parseCSV("\"abc")));
}

TEST(CSVTest, RejectsQuoteInsideField) {
  EXPECT_TRUE(testutil::failed(parseCSV("ab\"c,d")));
}

TEST(CSVTest, RoundTrips) {
  std::vector<std::vector<std::string>> Rows = {
      {"plain", "with,comma", "with\"quote"},
      {"line\nbreak", "", "end"},
  };
  auto Parsed = cantFail(parseCSV(writeCSV(Rows)));
  EXPECT_EQ(Parsed, Rows);
}

//===----------------------------------------------------------------------===//
// ArgParser
//===----------------------------------------------------------------------===//

TEST(ArgParserTest, ParsesFlagsOptionsPositionals) {
  ArgParser Parser("tool", "test tool");
  Parser.addFlag("verbose", "more output");
  Parser.addOption("procs", "processor count", "16");
  Parser.addOption("scale", "imbalance", "1.0");
  Parser.addPositional("input", "input file");
  const char *Argv[] = {"tool", "--verbose", "--procs", "8",
                        "--scale=0.5", "trace.txt"};
  cantFail(Parser.parse(6, Argv));
  EXPECT_TRUE(Parser.getFlag("verbose"));
  EXPECT_EQ(Parser.getUnsigned("procs"), 8u);
  EXPECT_DOUBLE_EQ(Parser.getDouble("scale"), 0.5);
  ASSERT_EQ(Parser.getPositionals().size(), 1u);
  EXPECT_EQ(Parser.getPositionals()[0], "trace.txt");
}

TEST(ArgParserTest, DefaultsApply) {
  ArgParser Parser("tool", "test tool");
  Parser.addOption("procs", "processor count", "16");
  Parser.addFlag("verbose", "more output");
  const char *Argv[] = {"tool"};
  cantFail(Parser.parse(1, Argv));
  EXPECT_EQ(Parser.getUnsigned("procs"), 16u);
  EXPECT_FALSE(Parser.getFlag("verbose"));
}

TEST(ArgParserTest, RejectsUnknownOption) {
  ArgParser Parser("tool", "test tool");
  const char *Argv[] = {"tool", "--bogus"};
  Error E = Parser.parse(2, Argv);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("bogus"), std::string::npos);
}

TEST(ArgParserTest, RejectsMissingValue) {
  ArgParser Parser("tool", "test tool");
  Parser.addOption("procs", "processor count", "16");
  const char *Argv[] = {"tool", "--procs"};
  EXPECT_TRUE(testutil::failed(Parser.parse(2, Argv)));
}

TEST(ArgParserTest, RejectsMissingPositional) {
  ArgParser Parser("tool", "test tool");
  Parser.addPositional("input", "input file");
  const char *Argv[] = {"tool"};
  EXPECT_TRUE(testutil::failed(Parser.parse(1, Argv)));
}

TEST(ArgParserTest, RejectsValueOnFlag) {
  ArgParser Parser("tool", "test tool");
  Parser.addFlag("verbose", "more output");
  const char *Argv[] = {"tool", "--verbose=yes"};
  EXPECT_TRUE(testutil::failed(Parser.parse(2, Argv)));
}

//===----------------------------------------------------------------------===//
// RNG
//===----------------------------------------------------------------------===//

TEST(RNGTest, SameSeedSameStream) {
  RNG A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGTest, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(RNGTest, UniformInUnitInterval) {
  RNG Rng(7);
  for (int I = 0; I != 10000; ++I) {
    double U = Rng.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RNGTest, UniformIntRespectsBound) {
  RNG Rng(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 2000; ++I) {
    uint64_t V = Rng.uniformInt(10);
    EXPECT_LT(V, 10u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 10u); // Every residue appears.
}

TEST(RNGTest, NormalMomentsRoughlyStandard) {
  RNG Rng(11);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I != N; ++I) {
    double X = Rng.normal();
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.03);
  EXPECT_NEAR(Var, 1.0, 0.05);
}

TEST(RNGTest, ExponentialMeanMatchesRate) {
  RNG Rng(13);
  double Sum = 0.0;
  const int N = 20000;
  for (int I = 0; I != N; ++I)
    Sum += Rng.exponential(2.0);
  EXPECT_NEAR(Sum / N, 0.5, 0.02);
}

TEST(RNGTest, ShuffleIsPermutation) {
  RNG Rng(17);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  Rng.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

//===----------------------------------------------------------------------===//
// MathUtils
//===----------------------------------------------------------------------===//

TEST(MathUtilsTest, KahanBeatsNaiveSummation) {
  // 1 + 1e-16 * 1e6 accumulations lose everything naively but not with
  // compensation.
  KahanSum Sum;
  Sum.add(1.0);
  for (int I = 0; I != 1000000; ++I)
    Sum.add(1e-16);
  EXPECT_NEAR(Sum.total() - 1.0, 1e-10, 1e-12);
}

TEST(MathUtilsTest, AlmostEqual) {
  EXPECT_TRUE(almostEqual(1.0, 1.0 + 1e-13));
  EXPECT_TRUE(almostEqual(1e9, 1e9 * (1.0 + 1e-10)));
  EXPECT_FALSE(almostEqual(1.0, 1.001));
}

//===----------------------------------------------------------------------===//
// TextTable
//===----------------------------------------------------------------------===//

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable Table({"name", "value"});
  Table.setAlign(0, Align::Left);
  Table.addRow({"alpha", "1"});
  Table.addRow({"b", "22"});
  std::string Out = Table.toString();
  EXPECT_NE(Out.find("| alpha | "), std::string::npos);
  EXPECT_NE(Out.find("|    22 |"), std::string::npos);
  EXPECT_NE(Out.find("+"), std::string::npos);
}

TEST(TextTableTest, TitleAppearsFirst) {
  TextTable Table({"c"});
  Table.setTitle("My Title");
  Table.addRow({"x"});
  EXPECT_EQ(Table.toString().rfind("My Title", 0), 0u);
}

TEST(TextTableTest, CSVEscapes) {
  TextTable Table({"a", "b"});
  Table.addRow({"x,y", "plain"});
  EXPECT_EQ(Table.toCSV(), "a,b\n\"x,y\",plain\n");
}

//===----------------------------------------------------------------------===//
// FileUtils
//===----------------------------------------------------------------------===//

TEST(FileUtilsTest, WriteReadRoundTrip) {
  std::string Path = ::testing::TempDir() + "/lima_file_test.txt";
  cantFail(writeFile(Path, "hello\nworld"));
  EXPECT_EQ(cantFail(readFile(Path)), "hello\nworld");
  std::remove(Path.c_str());
}

TEST(FileUtilsTest, ReadMissingFileFails) {
  auto Result = readFile("/nonexistent/path/file.txt");
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

//===----------------------------------------------------------------------===//
// Checksum
//===----------------------------------------------------------------------===//

TEST(ChecksumTest, Crc32KnownAnswers) {
  // The CRC-32/IEEE check value every implementation must reproduce,
  // plus vectors spanning the slicing-by-8 fast loop (>= 8 bytes), its
  // scalar tail, and the empty input.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
  std::string Zeros(32, '\0');
  EXPECT_EQ(crc32(Zeros), 0x190A55ADu);
}

TEST(ChecksumTest, Crc32UpdateChainsAcrossAnySplit) {
  std::string Data = "block-index-payload-0123456789-abcdefghijklmnop";
  uint32_t Whole = crc32(Data);
  for (size_t Split = 0; Split <= Data.size(); ++Split) {
    std::string_view View(Data);
    EXPECT_EQ(crc32Update(crc32(View.substr(0, Split)), View.substr(Split)),
              Whole)
        << "split at " << Split;
  }
}

TEST(ChecksumTest, Crc32KnownAnswersOnBothPaths) {
  // The same check values, pinned on each implementation explicitly:
  // the table walk and (when the CPU has PCLMUL — on older hardware
  // the hardware pin falls back, making this a second software run)
  // the carry-less-multiply folding path.  A 200-byte vector forces
  // the folding path through its 64-byte blocks, 16-byte folds and
  // scalar tail.
  struct {
    std::string Data;
    uint32_t Expected;
  } Vectors[] = {
      {"", 0x00000000u},
      {"a", 0xE8B7BE43u},
      {"123456789", 0xCBF43926u},
      {"The quick brown fox jumps over the lazy dog", 0x414FA339u},
      {std::string(32, '\0'), 0x190A55ADu},
      {std::string(200, 'x'), crc32(std::string(200, 'x'))},
  };
  for (const auto &V : Vectors) {
    EXPECT_EQ(crc32UpdateSoftware(0, V.Data), V.Expected)
        << "software, len " << V.Data.size();
    EXPECT_EQ(crc32UpdateHardware(0, V.Data), V.Expected)
        << "hardware (available: " << crc32HardwareAvailable() << "), len "
        << V.Data.size();
  }
}

TEST(ChecksumTest, Crc32PathsAgreeOnAllSizes) {
  // Software vs hardware over every length 0..300: covers the 64-byte
  // dispatch threshold, multiple-of-16 bodies, and every tail length
  // the folding path can hand back to the table walk.  Deterministic
  // LCG bytes so failures reproduce.
  uint32_t Seed = 0x4C494D41; // "LIMA"
  std::string Data;
  for (size_t N = 0; N <= 300; ++N) {
    uint32_t Sw = crc32UpdateSoftware(0, Data);
    uint32_t Hw = crc32UpdateHardware(0, Data);
    uint32_t Pub = crc32(Data);
    EXPECT_EQ(Sw, Hw) << "len " << N;
    EXPECT_EQ(Sw, Pub) << "len " << N;
    // Streaming through the hardware path chains like the software
    // one.
    if (N > 2) {
      size_t Split = N / 3;
      std::string_view View(Data);
      EXPECT_EQ(crc32UpdateHardware(
                    crc32UpdateHardware(0, View.substr(0, Split)),
                    View.substr(Split)),
                Sw)
          << "split len " << N;
    }
    Seed = Seed * 1664525u + 1013904223u;
    Data.push_back(static_cast<char>(Seed >> 24));
  }
}
