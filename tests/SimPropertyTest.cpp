//===- tests/SimPropertyTest.cpp - simulator fuzz properties --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Randomized-program properties of the discrete-event engine: for any
// well-formed program (every rank derives the same communication
// schedule from a shared seed, so all sends and collectives match), the
// simulation must terminate, produce a structurally valid trace, reduce
// to a valid cube, and be bit-identical across runs.
//
//===----------------------------------------------------------------------===//

#include "core/TraceReduction.h"
#include "sim/Simulation.h"
#include "support/RNG.h"
#include "trace/TraceIO.h"
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::sim;

namespace {

/// One randomly scheduled, always-well-formed program.  All ranks build
/// the same schedule from \p Seed; per-rank variation only enters
/// through rank-dependent compute amounts (which cannot deadlock).
void randomProgram(Comm &C, uint64_t Seed, unsigned Steps) {
  RNG Schedule(Seed); // Identical stream on every rank.
  unsigned Rank = C.rank();
  unsigned Procs = C.size();
  RegionScope Scope(C, 0);
  for (unsigned Step = 0; Step != Steps; ++Step) {
    uint64_t Op = Schedule.uniformInt(6);
    double Base = Schedule.uniformIn(0.0, 0.01);
    uint64_t Bytes = 1 + Schedule.uniformInt(4096);
    switch (Op) {
    case 0: // Rank-skewed compute.
      C.compute(Base * (1.0 + 0.3 * Rank));
      break;
    case 1: { // Ring shift.
      unsigned Next = (Rank + 1) % Procs;
      unsigned Prev = (Rank + Procs - 1) % Procs;
      C.send(Next, Bytes, static_cast<int>(Step));
      C.recv(Prev, static_cast<int>(Step));
      break;
    }
    case 2: // Allreduce.
      C.allReduce(Bytes);
      break;
    case 3: // Barrier.
      C.barrier();
      break;
    case 4: // All-to-all.
      C.allToAll(Bytes % 512);
      break;
    case 5: { // Gather to a schedule-chosen root.
      unsigned Root = static_cast<unsigned>(Schedule.uniformInt(Procs));
      C.gather(Root, Bytes % 256);
      break;
    }
    default:
      break;
    }
  }
}

} // namespace

class SimFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimFuzzTest, RandomProgramsProduceValidDeterministicTraces) {
  uint64_t Seed = GetParam();
  SimulationOptions Options;
  Options.NumProcs = 2 + static_cast<unsigned>(Seed % 7);
  Options.RegionNames = {"random"};

  auto Run = [&] {
    return cantFail(simulate(
        Options, [&](Comm &C) { randomProgram(C, Seed, 40); }));
  };
  trace::Trace A = Run();
  Error E = A.validate();
  EXPECT_FALSE(static_cast<bool>(E));

  // Deterministic replay.
  trace::Trace B = Run();
  EXPECT_EQ(trace::writeTraceText(A), trace::writeTraceText(B));

  // Reduces to a valid cube with non-negative cells and sane totals.
  auto Cube = cantFail(core::reduceTrace(A));
  Error CubeErr = Cube.validate();
  EXPECT_FALSE(static_cast<bool>(CubeErr));
  EXPECT_GE(Cube.programTime(), Cube.instrumentedTotal() - 1e-9);

  // Round-trips through the text format.
  trace::Trace Parsed = cantFail(trace::parseTraceText(
      trace::writeTraceText(A)));
  Error ParsedErr = Parsed.validate();
  EXPECT_FALSE(static_cast<bool>(ParsedErr));
}

TEST_P(SimFuzzTest, AnySourceServerDrainsAllClients) {
  uint64_t Seed = GetParam();
  SimulationOptions Options;
  Options.NumProcs = 3 + static_cast<unsigned>(Seed % 6);
  Options.RegionNames = {"server"};
  unsigned Procs = Options.NumProcs;

  std::vector<unsigned> SeenCount(Procs, 0);
  cantFail(simulate(Options, [&](Comm &C) {
    RegionScope Scope(C, 0);
    RNG Rng(Seed + C.rank());
    if (C.rank() == 0) {
      for (unsigned I = 0; I + 1 != Procs; ++I) {
        Comm::RecvResult R = C.recvAny(0);
        ++SeenCount[R.Source];
      }
    } else {
      C.compute(Rng.uniformIn(0.0, 0.05));
      C.send(0, 16);
    }
  }));
  EXPECT_EQ(SeenCount[0], 0u);
  for (unsigned P = 1; P != Procs; ++P)
    EXPECT_EQ(SeenCount[P], 1u) << "client " << P;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));
