//===- tests/ParallelTest.cpp - Parallel execution layer tests ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Covers the thread-pool layer itself (correctness under contention)
// and its contract with the analysis paths: reduction, trace stats,
// bootstrap intervals, k-means and the full pipeline must be
// bit-identical at every thread count, and malformed traces must fold
// to descriptive errors instead of crashing.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "cluster/KMeans.h"
#include "core/Pipeline.h"
#include "core/TraceReduction.h"
#include "stats/Bootstrap.h"
#include "support/Parallel.h"
#include "support/RNG.h"
#include "trace/TraceStats.h"
#include <atomic>
#include <gtest/gtest.h>
#include <numeric>

using namespace lima;
using lima::testutil::failed;
using lima::testutil::messageOf;

namespace {

constexpr unsigned ThreadCounts[] = {1, 2, 8};

//===----------------------------------------------------------------------===//
// Thread pool and helpers
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEverySubmittedTaskUnderContention) {
  ThreadPool Pool(8);
  EXPECT_EQ(Pool.numThreads(), 8u);
  std::atomic<int> Counter{0};
  for (int I = 0; I != 5000; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 5000);

  // The pool stays usable after a wait().
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 5100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  Pool.wait();
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (unsigned Threads : ThreadCounts) {
    std::vector<int> Visits(10000, 0);
    parallelFor(Visits.size(), Threads,
                [&](size_t I) { ++Visits[I]; });
    EXPECT_EQ(std::count(Visits.begin(), Visits.end(), 1),
              static_cast<ptrdiff_t>(Visits.size()))
        << "threads=" << Threads;
  }
}

TEST(ParallelForTest, HandlesEmptyAndTinyRanges) {
  int Calls = 0;
  parallelFor(0, 8, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  std::atomic<int> Atomic{0};
  parallelFor(3, 8, [&](size_t) { Atomic.fetch_add(1); });
  EXPECT_EQ(Atomic.load(), 3);
}

TEST(ParallelChunksTest, ChunksPartitionTheRangeContiguously) {
  std::vector<unsigned char> Covered(1000, 0);
  std::atomic<int> Chunks{0};
  parallelChunks(Covered.size(), 8,
                 [&](size_t, size_t Begin, size_t End) {
                   Chunks.fetch_add(1);
                   for (size_t I = Begin; I != End; ++I)
                     Covered[I] = 1;
                 });
  EXPECT_LE(Chunks.load(), 8);
  EXPECT_EQ(std::count(Covered.begin(), Covered.end(), 1),
            static_cast<ptrdiff_t>(Covered.size()));
}

TEST(ParallelReduceTest, IntegerSumMatchesClosedFormAtAnyThreadCount) {
  const size_t N = 100000;
  for (unsigned Threads : ThreadCounts) {
    uint64_t Sum = parallelReduce<uint64_t>(
        N, Threads, 0,
        [](uint64_t &Acc, size_t I) { Acc += I; },
        [](uint64_t &Into, uint64_t &From) { Into += From; });
    EXPECT_EQ(Sum, static_cast<uint64_t>(N) * (N - 1) / 2)
        << "threads=" << Threads;
  }
}

TEST(ParallelSupportTest, ThreadCountResolution) {
  EXPECT_GE(hardwareThreads(), 1u);
  EXPECT_EQ(resolveThreadCount(0), hardwareThreads());
  EXPECT_EQ(resolveThreadCount(1), 1u);
  EXPECT_EQ(resolveThreadCount(7), 7u);
}

TEST(ParallelSupportTest, SplitSeedDerivesDistinctDeterministicStreams) {
  EXPECT_EQ(splitSeed(42, 3), splitSeed(42, 3));
  EXPECT_NE(splitSeed(42, 3), splitSeed(42, 4));
  EXPECT_NE(splitSeed(42, 3), splitSeed(43, 3));
}

//===----------------------------------------------------------------------===//
// Bit-identical analysis across thread counts
//===----------------------------------------------------------------------===//

/// A nontrivial valid trace: nested regions, per-processor skewed
/// activity intervals, gaps, and matched message traffic.
trace::Trace makeTrace(unsigned Procs, unsigned Rounds) {
  trace::Trace T(Procs);
  uint32_t Outer = T.addRegion("outer");
  uint32_t Inner = T.addRegion("inner");
  uint32_t Comp = T.addActivity("comp");
  uint32_t P2P = T.addActivity("p2p");

  double MaxClock = 0.0;
  for (unsigned P = 0; P != Procs; ++P) {
    double Clock = 0.001 * P;
    for (unsigned R = 0; R != Rounds; ++R) {
      double Work = 0.01 + 0.001 * ((P * 7 + R) % 13);
      T.append({Clock, P, trace::EventKind::RegionEnter, Outer, 0});
      T.append({Clock, P, trace::EventKind::ActivityBegin, Comp, 0});
      Clock += Work;
      T.append({Clock, P, trace::EventKind::ActivityEnd, Comp, 0});
      T.append({Clock, P, trace::EventKind::RegionEnter, Inner, 0});
      T.append({Clock, P, trace::EventKind::ActivityBegin, P2P, 0});
      Clock += Work * 0.5;
      T.append({Clock, P, trace::EventKind::ActivityEnd, P2P, 0});
      T.append({Clock, P, trace::EventKind::RegionExit, Inner, 0});
      Clock += 0.002; // Uncovered gap inside the outer region.
      T.append({Clock, P, trace::EventKind::RegionExit, Outer, 0});
    }
    MaxClock = std::max(MaxClock, Clock);
  }
  // Matched ring traffic appended after all brackets closed.
  for (unsigned P = 0; P != Procs; ++P)
    T.append({MaxClock + 1.0, P, trace::EventKind::MessageSend,
              (P + 1) % Procs, 256});
  for (unsigned P = 0; P != Procs; ++P)
    T.append({MaxClock + 2.0, P, trace::EventKind::MessageRecv,
              (P + Procs - 1) % Procs, 256});
  return T;
}

TEST(ParallelIdentityTest, ReduceTraceIsBitIdenticalAcrossThreadCounts) {
  trace::Trace T = makeTrace(16, 20);
  core::ReductionOptions Serial;
  Serial.AttributeGaps = true;
  Serial.Threads = 1;
  core::MeasurementCube Reference = cantFail(core::reduceTrace(T, Serial));

  for (unsigned Threads : ThreadCounts) {
    core::ReductionOptions Options = Serial;
    Options.Threads = Threads;
    core::MeasurementCube Cube = cantFail(core::reduceTrace(T, Options));
    ASSERT_EQ(Cube.numRegions(), Reference.numRegions());
    ASSERT_EQ(Cube.numProcs(), Reference.numProcs());
    EXPECT_EQ(Cube.programTime(), Reference.programTime())
        << "threads=" << Threads;
    for (size_t I = 0; I != Reference.numRegions(); ++I)
      for (size_t J = 0; J != Reference.numActivities(); ++J)
        for (unsigned P = 0; P != Reference.numProcs(); ++P)
          ASSERT_EQ(Cube.time(I, J, P), Reference.time(I, J, P))
              << "threads=" << Threads << " cell (" << I << ',' << J << ','
              << P << ')';
  }
}

TEST(ParallelIdentityTest, TraceStatsAreBitIdenticalAcrossThreadCounts) {
  trace::Trace T = makeTrace(16, 20);
  trace::TraceStats Reference = trace::computeTraceStats(T, 1);
  for (unsigned Threads : ThreadCounts) {
    trace::TraceStats Stats = trace::computeTraceStats(T, Threads);
    EXPECT_EQ(Stats.EventCounts, Reference.EventCounts);
    EXPECT_EQ(Stats.TotalEvents, Reference.TotalEvents);
    EXPECT_EQ(Stats.Span, Reference.Span);
    EXPECT_EQ(Stats.TotalMessages, Reference.TotalMessages);
    EXPECT_EQ(Stats.TotalBytes, Reference.TotalBytes);
    EXPECT_EQ(Stats.RegionInstances, Reference.RegionInstances);
    EXPECT_EQ(Stats.BusyTime, Reference.BusyTime);
    for (unsigned From = 0; From != T.numProcs(); ++From)
      for (unsigned To = 0; To != T.numProcs(); ++To) {
        EXPECT_EQ(Stats.traffic(From, To).Messages,
                  Reference.traffic(From, To).Messages);
        EXPECT_EQ(Stats.traffic(From, To).Bytes,
                  Reference.traffic(From, To).Bytes);
      }
  }
}

TEST(ParallelIdentityTest, BootstrapIsBitIdenticalAcrossThreadCounts) {
  RNG Rng(7);
  std::vector<double> Times;
  for (int I = 0; I != 64; ++I)
    Times.push_back(Rng.uniformIn(0.5, 2.0));

  stats::BootstrapOptions Serial;
  Serial.Resamples = 2000;
  Serial.Threads = 1;
  stats::BootstrapInterval Reference =
      stats::bootstrapImbalanceCI(Times, Serial);

  for (unsigned Threads : ThreadCounts) {
    stats::BootstrapOptions Options = Serial;
    Options.Threads = Threads;
    stats::BootstrapInterval Interval =
        stats::bootstrapImbalanceCI(Times, Options);
    EXPECT_EQ(Interval.Estimate, Reference.Estimate) << "threads=" << Threads;
    EXPECT_EQ(Interval.Lower, Reference.Lower) << "threads=" << Threads;
    EXPECT_EQ(Interval.Upper, Reference.Upper) << "threads=" << Threads;
  }
}

TEST(ParallelIdentityTest, KMeansIsBitIdenticalAcrossThreadCounts) {
  RNG Rng(11);
  std::vector<std::vector<double>> Points;
  for (int I = 0; I != 400; ++I) {
    double Center = static_cast<double>(I % 3) * 10.0;
    Points.push_back({Center + Rng.normal(), Center + Rng.normal(),
                      Center + Rng.normal(), Center + Rng.normal()});
  }

  cluster::KMeansOptions Serial;
  Serial.K = 3;
  Serial.Threads = 1;
  cluster::KMeansResult Reference = cantFail(cluster::kMeans(Points, Serial));

  for (unsigned Threads : ThreadCounts) {
    cluster::KMeansOptions Options = Serial;
    Options.Threads = Threads;
    cluster::KMeansResult Result = cantFail(cluster::kMeans(Points, Options));
    EXPECT_EQ(Result.Assignments, Reference.Assignments)
        << "threads=" << Threads;
    EXPECT_EQ(Result.Centroids, Reference.Centroids) << "threads=" << Threads;
    EXPECT_EQ(Result.Inertia, Reference.Inertia) << "threads=" << Threads;
    EXPECT_EQ(Result.Iterations, Reference.Iterations)
        << "threads=" << Threads;
  }
}

TEST(ParallelIdentityTest, AnalyzeIsBitIdenticalAcrossThreadCounts) {
  trace::Trace T = makeTrace(16, 20);
  core::MeasurementCube Cube = cantFail(core::reduceTrace(T));

  core::AnalysisOptions Serial;
  Serial.Threads = 1;
  core::AnalysisResult Reference = cantFail(core::analyze(Cube, Serial));

  for (unsigned Threads : ThreadCounts) {
    core::AnalysisOptions Options = Serial;
    Options.Threads = Threads;
    core::AnalysisResult Result = cantFail(core::analyze(Cube, Options));
    EXPECT_EQ(Result.Activities.Index, Reference.Activities.Index);
    EXPECT_EQ(Result.Activities.ScaledIndex, Reference.Activities.ScaledIndex);
    EXPECT_EQ(Result.Activities.Dissimilarity,
              Reference.Activities.Dissimilarity);
    EXPECT_EQ(Result.Regions.Index, Reference.Regions.Index);
    EXPECT_EQ(Result.Regions.ScaledIndex, Reference.Regions.ScaledIndex);
    EXPECT_EQ(Result.Processors.Index, Reference.Processors.Index);
    EXPECT_EQ(Result.Processors.MostImbalancedProc,
              Reference.Processors.MostImbalancedProc);
    ASSERT_EQ(Result.Patterns.size(), Reference.Patterns.size());
    for (size_t D = 0; D != Reference.Patterns.size(); ++D) {
      EXPECT_EQ(Result.Patterns[D].Activity, Reference.Patterns[D].Activity);
      EXPECT_EQ(Result.Patterns[D].Regions, Reference.Patterns[D].Regions);
      EXPECT_EQ(Result.Patterns[D].Cells, Reference.Patterns[D].Cells);
    }
    EXPECT_EQ(Result.HasClusters, Reference.HasClusters);
    if (Result.HasClusters) {
      EXPECT_EQ(Result.Clusters.Assignments, Reference.Clusters.Assignments);
    }
  }
}

//===----------------------------------------------------------------------===//
// Malformed-trace error paths in reduceTrace
//===----------------------------------------------------------------------===//

TEST(ReduceTraceErrorTest, RegionExitWithoutEnterIsAnError) {
  trace::Trace T(1);
  uint32_t R = T.addRegion("r");
  T.addActivity("a");
  T.append({1.0, 0, trace::EventKind::RegionExit, R, 0});
  auto Result = core::reduceTrace(T);
  std::string Message = messageOf(std::move(Result));
  EXPECT_NE(Message.find("exit without matching enter"), std::string::npos)
      << Message;
}

TEST(ReduceTraceErrorTest, ActivityOutsideAnyRegionIsAnError) {
  trace::Trace T(2);
  uint32_t R = T.addRegion("r");
  uint32_t A = T.addActivity("a");
  // Proc 0 is fine; proc 1 begins an activity outside any region.
  T.append({0.0, 0, trace::EventKind::RegionEnter, R, 0});
  T.append({1.0, 0, trace::EventKind::RegionExit, R, 0});
  T.append({0.5, 1, trace::EventKind::ActivityBegin, A, 0});
  T.append({0.7, 1, trace::EventKind::ActivityEnd, A, 0});
  auto Result = core::reduceTrace(T);
  std::string Message = messageOf(std::move(Result));
  EXPECT_NE(Message.find("outside any region"), std::string::npos) << Message;
}

TEST(ReduceTraceErrorTest, ActivityEndWithoutBeginIsAnError) {
  trace::Trace T(1);
  uint32_t R = T.addRegion("r");
  uint32_t A = T.addActivity("a");
  T.append({0.0, 0, trace::EventKind::RegionEnter, R, 0});
  T.append({0.5, 0, trace::EventKind::ActivityEnd, A, 0});
  T.append({1.0, 0, trace::EventKind::RegionExit, R, 0});
  auto Result = core::reduceTrace(T);
  std::string Message = messageOf(std::move(Result));
  EXPECT_NE(Message.find("without matching begin"), std::string::npos)
      << Message;
}

TEST(ReduceTraceErrorTest, ValidTraceStillReducesAfterErrorPathsAdded) {
  trace::Trace T = makeTrace(4, 3);
  core::MeasurementCube Cube = cantFail(core::reduceTrace(T));
  EXPECT_GT(Cube.instrumentedTotal(), 0.0);
}

} // namespace
