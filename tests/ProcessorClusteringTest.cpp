//===- tests/ProcessorClusteringTest.cpp - processor grouping tests -------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "apps/gallery/MasterWorker.h"
#include "core/ProcessorClustering.h"
#include "core/TraceReduction.h"
#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;

TEST(ProcessorClusteringTest, FeatureMatrixRowsAreCellShares) {
  MeasurementCube Cube({"r"}, {"a", "b"}, 2);
  Cube.at(0, 0, 0) = 3.0;
  Cube.at(0, 0, 1) = 1.0;
  Cube.at(0, 1, 0) = 0.0;
  Cube.at(0, 1, 1) = 2.0;
  auto Features = processorFeatureMatrix(Cube);
  ASSERT_EQ(Features.size(), 2u);
  ASSERT_EQ(Features[0].size(), 2u);
  EXPECT_DOUBLE_EQ(Features[0][0], 0.75);
  EXPECT_DOUBLE_EQ(Features[1][0], 0.25);
  EXPECT_DOUBLE_EQ(Features[0][1], 0.0);
  EXPECT_DOUBLE_EQ(Features[1][1], 1.0);
}

TEST(ProcessorClusteringTest, SeparatesTwoBehavioralRoles) {
  // Procs 0-2 compute-heavy, procs 3-5 communication-heavy.
  MeasurementCube Cube({"r"}, {"comp", "comm"}, 6);
  for (unsigned P = 0; P != 6; ++P) {
    Cube.at(0, 0, P) = P < 3 ? 4.0 : 0.5;
    Cube.at(0, 1, P) = P < 3 ? 0.5 : 4.0;
  }
  ProcessorClusteringOptions Options;
  Options.K = 2;
  auto Clusters = cantFail(clusterProcessors(Cube, Options));
  EXPECT_EQ(Clusters.Assignments[0], Clusters.Assignments[1]);
  EXPECT_EQ(Clusters.Assignments[0], Clusters.Assignments[2]);
  EXPECT_EQ(Clusters.Assignments[3], Clusters.Assignments[4]);
  EXPECT_NE(Clusters.Assignments[0], Clusters.Assignments[3]);
  EXPECT_GT(Clusters.Silhouette, 0.5);
}

TEST(ProcessorClusteringTest, AutomaticKSeparatesMasterFromWorkers) {
  gallery::MasterWorkerConfig Config;
  Config.Procs = 8;
  Config.Tasks = 120;
  auto Trace = cantFail(gallery::runMasterWorker(Config));
  auto Cube = cantFail(core::reduceTrace(Trace));
  auto Clusters = cantFail(clusterProcessors(Cube));
  // The master (rank 0) must sit in its own group; all workers together.
  size_t MasterGroup = Clusters.Assignments[0];
  unsigned GroupSize = 0;
  for (size_t Group : Clusters.Assignments)
    GroupSize += Group == MasterGroup;
  EXPECT_EQ(GroupSize, 1u);
  size_t WorkerGroup = Clusters.Assignments[1];
  for (unsigned P = 2; P != Config.Procs; ++P)
    EXPECT_EQ(Clusters.Assignments[P], WorkerGroup) << "worker " << P;
}

TEST(ProcessorClusteringTest, GroupsPartitionProcessors) {
  MeasurementCube Cube({"r"}, {"a"}, 5);
  for (unsigned P = 0; P != 5; ++P)
    Cube.at(0, 0, P) = 1.0 + P;
  ProcessorClusteringOptions Options;
  Options.K = 2;
  auto Clusters = cantFail(clusterProcessors(Cube, Options));
  size_t Total = 0;
  for (const auto &Group : Clusters.Groups)
    Total += Group.size();
  EXPECT_EQ(Total, 5u);
}

TEST(ProcessorClusteringTest, RejectsDegenerateInput) {
  // All processors identical: a single distinct feature point.
  MeasurementCube Cube({"r"}, {"a"}, 4);
  for (unsigned P = 0; P != 4; ++P)
    Cube.at(0, 0, P) = 1.0;
  ProcessorClusteringOptions Options;
  Options.K = 2;
  EXPECT_TRUE(testutil::failed(clusterProcessors(Cube, Options)));
}

TEST(ProcessorClusteringTest, IsolatesDegradedNodeAndItsNeighbors) {
  // A balanced program on a machine with one slow node (0-based rank 4
  // of 8).  At K = 3 the behavioral grouping isolates the degraded rank
  // as a singleton AND puts its pipeline neighbors (ranks 3 and 5, who
  // absorb its lateness as extra p2p wait) in a second group — the
  // clustering finds not just the fault but its blast radius.
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 44;
  Config.RowsPerRank = 4;
  Config.Iterations = 3;
  Config.ImbalanceScale = 0.0;
  Config.ComputeSpeed.assign(Config.Procs, 1.0);
  Config.ComputeSpeed[4] = 0.5;
  auto Run = cantFail(cfd::runCfd(Config));
  auto Cube = cantFail(core::reduceTrace(Run.Trace));
  ProcessorClusteringOptions Options;
  Options.K = 3;
  auto Clusters = cantFail(clusterProcessors(Cube, Options));

  // Slow rank is a singleton.
  size_t SlowGroup = Clusters.Assignments[4];
  unsigned SlowGroupSize = 0;
  for (size_t Group : Clusters.Assignments)
    SlowGroupSize += Group == SlowGroup;
  EXPECT_EQ(SlowGroupSize, 1u);
  // Its neighbors share a group distinct from the healthy majority.
  EXPECT_EQ(Clusters.Assignments[3], Clusters.Assignments[5]);
  EXPECT_NE(Clusters.Assignments[3], Clusters.Assignments[0]);
  EXPECT_NE(Clusters.Assignments[3], SlowGroup);
}
