//===- tests/TraceTest.cpp - trace library tests --------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"
#include "trace/TraceIO.h"
#include "TestHelpers.h"
#include <cstdio>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::trace;

namespace {

/// A tiny, structurally valid two-processor trace: each proc runs one
/// region with one computation activity; proc 0 sends 64 bytes to proc 1.
Trace makeValidTrace() {
  Trace T(2);
  uint32_t Loop = T.addRegion("loop");
  uint32_t Comp = T.addActivity("computation");
  uint32_t P2P = T.addActivity("p2p");

  T.append({0.0, 0, EventKind::RegionEnter, Loop, 0});
  T.append({0.0, 0, EventKind::ActivityBegin, Comp, 0});
  T.append({1.0, 0, EventKind::ActivityEnd, Comp, 0});
  T.append({1.0, 0, EventKind::ActivityBegin, P2P, 0});
  T.append({1.0, 0, EventKind::MessageSend, 1, 64});
  T.append({1.1, 0, EventKind::ActivityEnd, P2P, 0});
  T.append({1.1, 0, EventKind::RegionExit, Loop, 0});

  T.append({0.0, 1, EventKind::RegionEnter, Loop, 0});
  T.append({0.0, 1, EventKind::ActivityBegin, P2P, 0});
  T.append({1.2, 1, EventKind::MessageRecv, 0, 64});
  T.append({1.2, 1, EventKind::ActivityEnd, P2P, 0});
  T.append({1.2, 1, EventKind::RegionExit, Loop, 0});
  return T;
}

} // namespace

TEST(TraceTest, RegistersNamesAndIds) {
  Trace T(4);
  EXPECT_EQ(T.numProcs(), 4u);
  uint32_t A = T.addRegion("alpha");
  uint32_t B = T.addRegion("beta");
  EXPECT_EQ(A, 0u);
  EXPECT_EQ(B, 1u);
  EXPECT_EQ(T.regionName(B), "beta");
  EXPECT_EQ(T.findRegion("alpha"), 0u);
  EXPECT_EQ(T.findRegion("gamma"), Trace::InvalidId);
  uint32_t Act = T.addActivity("compute");
  EXPECT_EQ(T.findActivity("compute"), Act);
}

TEST(TraceTest, ValidTracePasses) {
  Trace T = makeValidTrace();
  EXPECT_EQ(T.numEvents(), 12u);
  Error E = T.validate();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(TraceValidationTest, DetectsBackwardsTime) {
  Trace T(1);
  uint32_t R = T.addRegion("r");
  T.addActivity("a");
  T.append({1.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.5, 0, EventKind::RegionExit, R, 0});
  Error E = T.validate();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("backwards"), std::string::npos);
}

TEST(TraceValidationTest, ProperlyNestedRegionsAreValid) {
  // Regions may nest (routine > loop > statement granularity).
  Trace T(1);
  uint32_t Routine = T.addRegion("routine");
  uint32_t Loop = T.addRegion("loop");
  uint32_t A = T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, Routine, 0});
  T.append({0.1, 0, EventKind::RegionEnter, Loop, 0});
  T.append({0.1, 0, EventKind::ActivityBegin, A, 0});
  T.append({0.5, 0, EventKind::ActivityEnd, A, 0});
  T.append({0.5, 0, EventKind::RegionExit, Loop, 0});
  T.append({0.9, 0, EventKind::RegionExit, Routine, 0});
  Error E = T.validate();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(TraceValidationTest, DetectsCrossedRegionBrackets) {
  // Exits must match the innermost open region.
  Trace T(1);
  uint32_t R = T.addRegion("r");
  uint32_t S = T.addRegion("s");
  T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.1, 0, EventKind::RegionEnter, S, 0});
  T.append({0.2, 0, EventKind::RegionExit, R, 0}); // Crossed.
  T.append({0.3, 0, EventKind::RegionExit, S, 0});
  Error E = T.validate();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("innermost"), std::string::npos);
}

TEST(TraceValidationTest, DetectsRegionEnterInsideActivity) {
  Trace T(1);
  uint32_t R = T.addRegion("r");
  uint32_t S = T.addRegion("s");
  uint32_t A = T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.1, 0, EventKind::ActivityBegin, A, 0});
  T.append({0.2, 0, EventKind::RegionEnter, S, 0}); // Inside activity.
  EXPECT_TRUE(testutil::failed(T.validate()));
}

TEST(TraceValidationTest, DetectsMismatchedRegionExit) {
  Trace T(1);
  uint32_t R = T.addRegion("r");
  uint32_t S = T.addRegion("s");
  T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.1, 0, EventKind::RegionExit, S, 0});
  EXPECT_TRUE(testutil::failed(T.validate()));
}

TEST(TraceValidationTest, DetectsActivityOutsideRegion) {
  Trace T(1);
  T.addRegion("r");
  uint32_t A = T.addActivity("a");
  T.append({0.0, 0, EventKind::ActivityBegin, A, 0});
  Error E = T.validate();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("outside"), std::string::npos);
}

TEST(TraceValidationTest, DetectsOverlappingActivities) {
  Trace T(1);
  uint32_t R = T.addRegion("r");
  uint32_t A = T.addActivity("a");
  uint32_t B = T.addActivity("b");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.1, 0, EventKind::ActivityBegin, A, 0});
  T.append({0.2, 0, EventKind::ActivityBegin, B, 0});
  EXPECT_TRUE(testutil::failed(T.validate()));
}

TEST(TraceValidationTest, DetectsRegionExitWithOpenActivity) {
  Trace T(1);
  uint32_t R = T.addRegion("r");
  uint32_t A = T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.1, 0, EventKind::ActivityBegin, A, 0});
  T.append({0.2, 0, EventKind::RegionExit, R, 0});
  EXPECT_TRUE(testutil::failed(T.validate()));
}

TEST(TraceValidationTest, DetectsDanglingOpenRegion) {
  Trace T(1);
  uint32_t R = T.addRegion("r");
  T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  Error E = T.validate();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("open"), std::string::npos);
}

TEST(TraceValidationTest, DetectsUnmatchedSend) {
  Trace T = makeValidTrace();
  T.append({2.0, 0, EventKind::RegionEnter, 0, 0});
  T.append({2.1, 0, EventKind::MessageSend, 1, 99});
  T.append({2.2, 0, EventKind::RegionExit, 0, 0});
  Error E = T.validate();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("unmatched"), std::string::npos);
}

TEST(TraceValidationTest, DetectsByteCountMismatch) {
  Trace T(2);
  uint32_t R = T.addRegion("r");
  T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.1, 0, EventKind::MessageSend, 1, 10});
  T.append({0.2, 0, EventKind::RegionExit, R, 0});
  T.append({0.0, 1, EventKind::RegionEnter, R, 0});
  T.append({0.3, 1, EventKind::MessageRecv, 0, 20});
  T.append({0.4, 1, EventKind::RegionExit, R, 0});
  EXPECT_TRUE(testutil::failed(T.validate()));
}

//===----------------------------------------------------------------------===//
// Text format
//===----------------------------------------------------------------------===//

TEST(TraceIOTest, RoundTripsExactly) {
  Trace T = makeValidTrace();
  std::string Text = writeTraceText(T);
  Trace Parsed = cantFail(parseTraceText(Text));
  EXPECT_EQ(Parsed.numProcs(), T.numProcs());
  EXPECT_EQ(Parsed.numRegions(), T.numRegions());
  EXPECT_EQ(Parsed.numActivities(), T.numActivities());
  ASSERT_EQ(Parsed.numEvents(), T.numEvents());
  for (unsigned P = 0; P != T.numProcs(); ++P) {
    const auto &A = T.events(P);
    const auto &B = Parsed.events(P);
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I != A.size(); ++I) {
      EXPECT_EQ(A[I].Kind, B[I].Kind);
      EXPECT_EQ(A[I].Id, B[I].Id);
      EXPECT_EQ(A[I].Bytes, B[I].Bytes);
      EXPECT_NEAR(A[I].Time, B[I].Time, 1e-9);
    }
  }
  // And the round-tripped trace still validates.
  Error E = Parsed.validate();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(TraceIOTest, HeaderAndCommentsTolerated) {
  std::string Text = "# comment\nLIMATRACE 1\nprocs 1\n\nregion 0 r\n"
                     "activity 0 a\n# more\nre 0 0.0 0\nrx 0 1.0 0\n";
  Trace T = cantFail(parseTraceText(Text));
  EXPECT_EQ(T.numEvents(), 2u);
}

TEST(TraceIOTest, RejectsMissingMagic) {
  auto Result = parseTraceText("procs 2\n");
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(TraceIOTest, RejectsEventBeforeProcs) {
  auto Result = parseTraceText("LIMATRACE 1\nre 0 0.0 0\n");
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(TraceIOTest, RejectsOutOfRangeProc) {
  auto Result = parseTraceText(
      "LIMATRACE 1\nprocs 1\nregion 0 r\nactivity 0 a\nre 3 0.0 0\n");
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(TraceIOTest, RejectsOutOfRangeRegion) {
  auto Result = parseTraceText(
      "LIMATRACE 1\nprocs 1\nregion 0 r\nactivity 0 a\nre 0 0.0 7\n");
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(TraceIOTest, RejectsNegativeTime) {
  auto Result = parseTraceText(
      "LIMATRACE 1\nprocs 1\nregion 0 r\nactivity 0 a\nre 0 -1.0 0\n");
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(TraceIOTest, RejectsNonDenseDeclarationIds) {
  auto Result = parseTraceText("LIMATRACE 1\nprocs 1\nregion 5 r\n");
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(TraceIOTest, RejectsUnknownRecord) {
  auto Result = parseTraceText("LIMATRACE 1\nprocs 1\nzz 0 0.0 0\n");
  EXPECT_FALSE(static_cast<bool>(Result));
  Result.takeError().consume();
}

TEST(TraceIOTest, SaveLoadRoundTrip) {
  Trace T = makeValidTrace();
  std::string Path = ::testing::TempDir() + "/lima_trace_test.trace";
  cantFail(saveTrace(T, Path));
  Trace Loaded = cantFail(loadTrace(Path));
  EXPECT_EQ(Loaded.numEvents(), T.numEvents());
  std::remove(Path.c_str());
}

TEST(EventTest, MnemonicsAreStable) {
  EXPECT_EQ(eventKindMnemonic(EventKind::RegionEnter), "re");
  EXPECT_EQ(eventKindMnemonic(EventKind::RegionExit), "rx");
  EXPECT_EQ(eventKindMnemonic(EventKind::ActivityBegin), "ab");
  EXPECT_EQ(eventKindMnemonic(EventKind::ActivityEnd), "ae");
  EXPECT_EQ(eventKindMnemonic(EventKind::MessageSend), "ms");
  EXPECT_EQ(eventKindMnemonic(EventKind::MessageRecv), "mr");
}
