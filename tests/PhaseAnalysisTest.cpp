//===- tests/PhaseAnalysisTest.cpp - temporal analysis tests --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "apps/gallery/ParticleExchange.h"
#include "core/PhaseAnalysis.h"
#include "TestHelpers.h"
#include <cmath>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;
using trace::EventKind;

namespace {

/// Two procs, one region, two instances: balanced first, skewed second.
trace::Trace makePhaseTrace() {
  trace::Trace T(2);
  uint32_t R = T.addRegion("loop");
  uint32_t A = T.addActivity("comp");
  auto instance = [&](unsigned Proc, double Begin, double Work) {
    T.append({Begin, Proc, EventKind::RegionEnter, R, 0});
    T.append({Begin, Proc, EventKind::ActivityBegin, A, 0});
    T.append({Begin + Work, Proc, EventKind::ActivityEnd, A, 0});
    T.append({Begin + Work, Proc, EventKind::RegionExit, R, 0});
  };
  instance(0, 0.0, 1.0);
  instance(0, 2.0, 1.0);
  instance(1, 0.0, 1.0);
  instance(1, 2.0, 3.0); // Skewed second instance.
  return T;
}

} // namespace

TEST(PhaseAnalysisTest, PerInstanceIndices) {
  auto Result = cantFail(analyzePhases(makePhaseTrace()));
  ASSERT_EQ(Result.Series.size(), 1u);
  const PhaseSeries &Series = Result.Series[0];
  ASSERT_EQ(Series.InstanceIndex.size(), 2u);
  // First instance balanced, second skewed {1, 3}: shares {0.25, 0.75}.
  EXPECT_NEAR(Series.InstanceIndex[0], 0.0, 1e-12);
  EXPECT_NEAR(Series.InstanceIndex[1], std::sqrt(2 * 0.25 * 0.25), 1e-12);
  EXPECT_NEAR(Series.InstanceTime[0], 1.0, 1e-12);
  EXPECT_NEAR(Series.InstanceTime[1], 2.0, 1e-12);
}

TEST(PhaseAnalysisTest, RejectsMisalignedInstanceCounts) {
  trace::Trace T(2);
  uint32_t R = T.addRegion("loop");
  uint32_t A = T.addActivity("comp");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.0, 0, EventKind::ActivityBegin, A, 0});
  T.append({1.0, 0, EventKind::ActivityEnd, A, 0});
  T.append({1.0, 0, EventKind::RegionExit, R, 0});
  // Proc 1 never runs the region.
  auto Result = analyzePhases(T);
  EXPECT_TRUE(testutil::failed(std::move(Result)));
}

TEST(PhaseAnalysisTest, TrendDetectsSlope) {
  Trend Up = linearTrend({1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(Up.Slope, 1.0, 1e-12);
  EXPECT_NEAR(Up.RelativeSlope, 0.4, 1e-12);
  Trend Flat = linearTrend({2.0, 2.0, 2.0});
  EXPECT_NEAR(Flat.Slope, 0.0, 1e-12);
  Trend Short = linearTrend({5.0});
  EXPECT_DOUBLE_EQ(Short.Slope, 0.0);
}

TEST(PhaseAnalysisTest, SparklineShape) {
  EXPECT_EQ(renderSparkline({0.0, 1.0}), ".@");
  EXPECT_EQ(renderSparkline({1.0, 1.0, 1.0}), "...");
  EXPECT_EQ(renderSparkline({}), "");
  std::string Ramp = renderSparkline({0, 1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(Ramp, ".:-=+*#%@");
}

TEST(PhaseAnalysisTest, StableCfdRunHasFlatIndexSeries) {
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 48;
  Config.RowsPerRank = 4;
  Config.Iterations = 6;
  auto Run = cantFail(cfd::runCfd(Config));
  auto Phases = cantFail(analyzePhases(Run.Trace));
  // Pressure loop: per-iteration indices must stay near the aggregate
  // (no drift configured).
  const PhaseSeries &Pressure = Phases.Series[0];
  ASSERT_EQ(Pressure.InstanceIndex.size(), 6u);
  Trend T = linearTrend(Pressure.InstanceIndex);
  EXPECT_LT(std::fabs(T.RelativeSlope), 0.05);
}

TEST(PhaseAnalysisTest, CfdDriftShowsIncreasingTrend) {
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 48;
  Config.RowsPerRank = 4;
  Config.Iterations = 6;
  Config.ImbalanceScale = 0.3;
  Config.ImbalanceDriftPerIteration = 0.5;
  auto Run = cantFail(cfd::runCfd(Config));
  auto Phases = cantFail(analyzePhases(Run.Trace));
  const PhaseSeries &Pressure = Phases.Series[0];
  Trend T = linearTrend(Pressure.InstanceIndex);
  EXPECT_GT(T.RelativeSlope, 0.1);
  // And the last instance is clearly worse than the first.
  EXPECT_GT(Pressure.InstanceIndex.back(),
            1.5 * Pressure.InstanceIndex.front());
}

TEST(PhaseAnalysisTest, ParticleMigrationDriftDetected) {
  gallery::ParticleExchangeConfig Config;
  Config.Procs = 8;
  Config.Steps = 10;
  Config.MigrationFraction = 0.1;
  auto Trace = cantFail(gallery::runParticleExchange(Config));
  auto Phases = cantFail(analyzePhases(Trace));
  // Region 0 is the force computation whose load drifts to high ranks.
  const PhaseSeries &Forces = Phases.Series[0];
  ASSERT_EQ(Forces.InstanceIndex.size(), 10u);
  Trend T = linearTrend(Forces.InstanceIndex);
  EXPECT_GT(T.Slope, 0.0);
  EXPECT_GT(Forces.InstanceIndex.back(), Forces.InstanceIndex.front());
  // Without migration the series stays flat at zero.
  Config.MigrationFraction = 0.0;
  auto Balanced = cantFail(gallery::runParticleExchange(Config));
  auto BalancedPhases = cantFail(analyzePhases(Balanced));
  for (double Index : BalancedPhases.Series[0].InstanceIndex)
    EXPECT_NEAR(Index, 0.0, 1e-9);
}
