//===- tests/TraceStatsTest.cpp - trace statistics & timeline tests -------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"
#include "trace/Timeline.h"
#include "trace/TraceStats.h"
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::trace;

namespace {

/// Two procs: p1 computes then sends twice to p2; p2 receives.
Trace makeStatsTrace() {
  Trace T(2);
  uint32_t R = T.addRegion("loop");
  uint32_t Comp = T.addActivity("comp");
  uint32_t P2P = T.addActivity("p2p");

  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.0, 0, EventKind::ActivityBegin, Comp, 0});
  T.append({2.0, 0, EventKind::ActivityEnd, Comp, 0});
  T.append({2.0, 0, EventKind::ActivityBegin, P2P, 0});
  T.append({2.0, 0, EventKind::MessageSend, 1, 100});
  T.append({2.1, 0, EventKind::MessageSend, 1, 300});
  T.append({2.2, 0, EventKind::ActivityEnd, P2P, 0});
  T.append({2.2, 0, EventKind::RegionExit, R, 0});

  T.append({0.0, 1, EventKind::RegionEnter, R, 0});
  T.append({0.0, 1, EventKind::ActivityBegin, P2P, 0});
  T.append({2.5, 1, EventKind::MessageRecv, 0, 100});
  T.append({2.6, 1, EventKind::MessageRecv, 0, 300});
  T.append({2.6, 1, EventKind::ActivityEnd, P2P, 0});
  T.append({2.6, 1, EventKind::RegionExit, R, 0});
  return T;
}

} // namespace

TEST(TraceStatsTest, CountsAndSpan) {
  TraceStats Stats = computeTraceStats(makeStatsTrace());
  EXPECT_EQ(Stats.TotalEvents, 14u);
  EXPECT_DOUBLE_EQ(Stats.Span, 2.6);
  EXPECT_EQ(Stats.EventCounts[static_cast<size_t>(EventKind::MessageSend)],
            2u);
  EXPECT_EQ(Stats.EventCounts[static_cast<size_t>(EventKind::MessageRecv)],
            2u);
  EXPECT_EQ(Stats.EventCounts[static_cast<size_t>(EventKind::RegionEnter)],
            2u);
}

TEST(TraceStatsTest, TrafficMatrix) {
  TraceStats Stats = computeTraceStats(makeStatsTrace());
  EXPECT_EQ(Stats.traffic(0, 1).Messages, 2u);
  EXPECT_EQ(Stats.traffic(0, 1).Bytes, 400u);
  EXPECT_EQ(Stats.traffic(1, 0).Messages, 0u);
  EXPECT_EQ(Stats.TotalMessages, 2u);
  EXPECT_EQ(Stats.TotalBytes, 400u);
}

TEST(TraceStatsTest, BusyTimeAndInstances) {
  TraceStats Stats = computeTraceStats(makeStatsTrace());
  EXPECT_NEAR(Stats.BusyTime[0], 2.2, 1e-12);
  EXPECT_NEAR(Stats.BusyTime[1], 2.6, 1e-12);
  EXPECT_EQ(Stats.RegionInstances[0], 1u);
}

TEST(TraceStatsTest, MatrixRendering) {
  std::string Matrix = renderCommunicationMatrix(
      computeTraceStats(makeStatsTrace()));
  EXPECT_NE(Matrix.find("2/400"), std::string::npos);
  EXPECT_NE(Matrix.find("from\\to"), std::string::npos);
  EXPECT_NE(Matrix.find("p2"), std::string::npos);
}

TEST(TraceStatsTest, AgreesWithSimulatorTraffic) {
  sim::SimulationOptions Options;
  Options.NumProcs = 4;
  Options.RegionNames = {"r"};
  auto Trace = cantFail(sim::simulate(Options, [](sim::Comm &C) {
    sim::RegionScope Scope(C, 0);
    unsigned Next = (C.rank() + 1) % C.size();
    unsigned Prev = (C.rank() + C.size() - 1) % C.size();
    C.send(Next, 50 * (C.rank() + 1));
    C.recv(Prev);
  }));
  TraceStats Stats = computeTraceStats(Trace);
  EXPECT_EQ(Stats.TotalMessages, 4u);
  EXPECT_EQ(Stats.TotalBytes, 50u + 100u + 150u + 200u);
  EXPECT_EQ(Stats.traffic(2, 3).Bytes, 150u);
}

//===----------------------------------------------------------------------===//
// Timeline rendering
//===----------------------------------------------------------------------===//

TEST(TimelineTest, RendersDominantActivityPerBucket) {
  Trace T = makeStatsTrace();
  TimelineOptions Options;
  Options.Width = 13; // 0.2s buckets over the 2.6s span.
  std::string Art = renderTimeline(T, Options);
  // Proc 1: computation (activity 0 -> 'c') for the first ~10 buckets,
  // then p2p ('p').
  EXPECT_NE(Art.find("p1 |cccccccccc"), std::string::npos);
  // Proc 2 is p2p the whole way.
  EXPECT_NE(Art.find("p2 |ppppppppppppp|"), std::string::npos);
  EXPECT_NE(Art.find("legend:"), std::string::npos);
  EXPECT_NE(Art.find("c=comp"), std::string::npos);
}

TEST(TimelineTest, EmptyTraceHandled) {
  Trace T(2);
  T.addRegion("r");
  T.addActivity("a");
  EXPECT_EQ(renderTimeline(T), "(empty trace)\n");
}

TEST(TimelineTest, IdleGapsBlank) {
  Trace T(1);
  uint32_t R = T.addRegion("r");
  uint32_t A = T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, R, 0});
  T.append({0.0, 0, EventKind::ActivityBegin, A, 0});
  T.append({1.0, 0, EventKind::ActivityEnd, A, 0});
  // Gap from 1.0 to 3.0.
  T.append({3.0, 0, EventKind::ActivityBegin, A, 0});
  T.append({4.0, 0, EventKind::ActivityEnd, A, 0});
  T.append({4.0, 0, EventKind::RegionExit, R, 0});
  TimelineOptions Options;
  Options.Width = 4; // 1s buckets.
  std::string Art = renderTimeline(T, Options);
  EXPECT_NE(Art.find("|c  c|"), std::string::npos);
}

TEST(TimelineTest, CustomActivityCharsAndWidth) {
  Trace T = makeStatsTrace();
  TimelineOptions Options;
  Options.Width = 5;
  Options.ActivityChars = "XY";
  Options.IdleChar = '_';
  std::string Art = renderTimeline(T, Options);
  EXPECT_NE(Art.find('X'), std::string::npos);
  EXPECT_NE(Art.find('Y'), std::string::npos);
  EXPECT_NE(Art.find("X=comp"), std::string::npos);
  EXPECT_NE(Art.find("Y=p2p"), std::string::npos);
}
