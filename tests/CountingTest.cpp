//===- tests/CountingTest.cpp - counting-parameter tests ------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/CountingReduction.h"
#include "core/Views.h"
#include "trace/TraceStats.h"
#include "TestHelpers.h"
#include <cmath>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;
using trace::EventKind;

namespace {

/// Proc 0 sends 2 messages (100B + 300B) from region r0 and 1 message
/// (50B) from region r1; proc 1 receives them all in region r0.
trace::Trace makeCountingTrace() {
  trace::Trace T(2);
  uint32_t R0 = T.addRegion("r0");
  uint32_t R1 = T.addRegion("r1");
  T.addActivity("comp");

  T.append({0.0, 0, EventKind::RegionEnter, R0, 0});
  T.append({0.1, 0, EventKind::MessageSend, 1, 100});
  T.append({0.2, 0, EventKind::MessageSend, 1, 300});
  T.append({0.3, 0, EventKind::RegionExit, R0, 0});
  T.append({0.4, 0, EventKind::RegionEnter, R1, 0});
  T.append({0.5, 0, EventKind::MessageSend, 1, 50});
  T.append({0.6, 0, EventKind::RegionExit, R1, 0});

  T.append({0.0, 1, EventKind::RegionEnter, R0, 0});
  T.append({0.5, 1, EventKind::MessageRecv, 0, 100});
  T.append({0.6, 1, EventKind::MessageRecv, 0, 300});
  T.append({0.7, 1, EventKind::MessageRecv, 0, 50});
  T.append({0.8, 1, EventKind::RegionExit, R0, 0});
  return T;
}

} // namespace

TEST(CountingTest, MessagesSentAttributedToRegions) {
  auto Cube = cantFail(
      reduceTraceCounts(makeCountingTrace(), CountingMetric::MessagesSent));
  EXPECT_EQ(Cube.numActivities(), 1u);
  EXPECT_EQ(Cube.activityName(0), "messages-sent");
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(Cube.time(1, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 1), 0.0);
}

TEST(CountingTest, BytesSentAndReceived) {
  auto Sent = cantFail(
      reduceTraceCounts(makeCountingTrace(), CountingMetric::BytesSent));
  EXPECT_DOUBLE_EQ(Sent.time(0, 0, 0), 400.0);
  EXPECT_DOUBLE_EQ(Sent.time(1, 0, 0), 50.0);

  auto Received = cantFail(reduceTraceCounts(
      makeCountingTrace(), CountingMetric::BytesReceived));
  EXPECT_DOUBLE_EQ(Received.time(0, 0, 1), 450.0);
  EXPECT_DOUBLE_EQ(Received.time(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Received.time(1, 0, 1), 0.0);
}

TEST(CountingTest, DispersionMachineryAppliesToCounts) {
  auto Cube = cantFail(
      reduceTraceCounts(makeCountingTrace(), CountingMetric::MessagesSent));
  auto Matrix = computeDissimilarityMatrix(Cube);
  // All messages from proc 0: one-hot across two procs.
  EXPECT_NEAR(Matrix[0][0], std::sqrt(0.5), 1e-12);
}

TEST(CountingTest, MetricNames) {
  EXPECT_EQ(countingMetricName(CountingMetric::MessagesSent),
            "messages-sent");
  EXPECT_EQ(countingMetricName(CountingMetric::BytesReceived),
            "bytes-received");
}

TEST(CountingTest, RejectsInvalidTrace) {
  trace::Trace T(1);
  T.addRegion("r");
  T.addActivity("a");
  T.append({0.0, 0, EventKind::RegionEnter, 0, 0});
  EXPECT_TRUE(testutil::failed(
      reduceTraceCounts(T, CountingMetric::MessagesSent)));
}

TEST(CountingTest, CfdMessageCountsMatchTraceStats) {
  cfd::CfdConfig Config;
  Config.Procs = 6;
  Config.Nx = 32;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  auto Run = cantFail(cfd::runCfd(Config));
  auto Cube = cantFail(
      reduceTraceCounts(Run.Trace, CountingMetric::MessagesSent));
  trace::TraceStats Stats = trace::computeTraceStats(Run.Trace);
  // Region-attributed counts must sum to the trace's total sends.
  double Total = 0.0;
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    for (unsigned P = 0; P != Cube.numProcs(); ++P)
      Total += Cube.time(I, 0, P);
  EXPECT_DOUBLE_EQ(Total, static_cast<double>(Stats.TotalMessages));
}

TEST(CountingTest, CfdCommunicationVolumeSkewedByPipeline) {
  cfd::CfdConfig Config;
  Config.Procs = 8;
  Config.Nx = 48;
  Config.RowsPerRank = 4;
  Config.Iterations = 2;
  auto Run = cantFail(cfd::runCfd(Config));
  auto Cube = cantFail(
      reduceTraceCounts(Run.Trace, CountingMetric::MessagesSent));
  // In the wavefront region, edge rank P-1 sends only backward chunks
  // while middle ranks send both directions: real count imbalance that
  // the timing view does not expose.
  auto Matrix = computeDissimilarityMatrix(Cube);
  EXPECT_GT(Matrix[2][0], 0.0);
}
