//===- tests/ParseErrorTest.cpp - Error taxonomy and lenient parsing ------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Corpus-driven checks of the structured parse errors: every malformed
// fixture in fuzz/corpus/ must fail with a specific ErrorCode at a
// specific location, lenient mode must drop exactly the bad records
// (deterministically at any thread count), and ParseLimits must turn
// hostile inputs into LimitExceeded before memory is committed.
//
//===----------------------------------------------------------------------===//

#include "core/CubeIO.h"
#include "core/TraceReduction.h"
#include "support/CSV.h"
#include "support/FileUtils.h"
#include "support/ParseLimits.h"
#include "trace/BinaryIO.h"
#include "trace/TraceIO.h"
#include "gtest/gtest.h"

using namespace lima;
using trace::Event;
using trace::EventKind;
using trace::Trace;

namespace {

std::string fixture(const std::string &Name) {
  return cantFail(readFile(std::string(LIMA_FUZZ_CORPUS_DIR) + "/" + Name));
}

/// Byte offset of the start of 1-based \p LineNo in \p Text.
size_t lineStart(std::string_view Text, size_t LineNo) {
  size_t Offset = 0;
  for (size_t L = 1; L < LineNo; ++L)
    Offset = Text.find('\n', Offset) + 1;
  return Offset;
}

template <typename T> ParseError takeParseError(Expected<T> ValOrErr) {
  if (ValOrErr) {
    ADD_FAILURE() << "expected a parse failure, got a value";
    return ParseError{};
  }
  return ValOrErr.takeError().toParseError();
}

/// Two processors, one region, one activity, all well-formed.
Trace makeValidTrace() {
  Trace T(2);
  uint32_t R = T.addRegion("main");
  uint32_t A = T.addActivity("compute");
  for (uint32_t P = 0; P != 2; ++P) {
    T.append({0.0, P, EventKind::RegionEnter, R, 0});
    T.append({0.1, P, EventKind::ActivityBegin, A, 0});
    T.append({1.0 + P, P, EventKind::ActivityEnd, A, 0});
    T.append({1.1 + P, P, EventKind::RegionExit, R, 0});
  }
  return T;
}

TEST(ParseErrorTest, TraceTextFixtures) {
  struct Case {
    const char *Name;
    ErrorCode Code;
    size_t Line;
  };
  const Case Cases[] = {
      {"fuzz_trace_text/bad-magic.trace", ErrorCode::BadMagic, 1},
      {"fuzz_trace_text/bad-version.trace", ErrorCode::UnsupportedVersion, 1},
      {"fuzz_trace_text/missing-procs.trace", ErrorCode::MissingSection, 2},
      {"fuzz_trace_text/dup-procs.trace", ErrorCode::DuplicateDeclaration, 3},
      {"fuzz_trace_text/bad-number.trace", ErrorCode::BadNumber, 5},
      {"fuzz_trace_text/out-of-range-proc.trace", ErrorCode::ValueOutOfRange,
       5},
      {"fuzz_trace_text/unknown-record.trace", ErrorCode::MalformedRecord, 5},
      {"fuzz_trace_text/sparse-declaration.trace", ErrorCode::MalformedRecord,
       3},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Name);
    std::string Text = fixture(C.Name);
    ParseError PE = takeParseError(trace::parseTraceText(Text));
    EXPECT_EQ(PE.Code, C.Code);
    EXPECT_EQ(PE.Line, C.Line);
    EXPECT_EQ(PE.Offset, lineStart(Text, C.Line));
  }
}

TEST(ParseErrorTest, CubeFixtures) {
  struct Case {
    const char *Name;
    ErrorCode Code;
    size_t Line; // CSV row number; 0 when the error is not row-scoped.
  };
  const Case Cases[] = {
      {"fuzz_cube/bad-header.cube.csv", ErrorCode::BadMagic, 0},
      {"fuzz_cube/bad-row.cube.csv", ErrorCode::MalformedRecord, 2},
      {"fuzz_cube/negative-time.cube.csv", ErrorCode::ValueOutOfRange, 2},
      {"fuzz_cube/proc-zero.cube.csv", ErrorCode::ValueOutOfRange, 2},
      {"fuzz_cube/unknown-declaration.cube.csv", ErrorCode::MalformedRecord,
       2},
      {"fuzz_cube/no-data.cube.csv", ErrorCode::MissingSection, 0},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Name);
    ParseError PE = takeParseError(core::parseCubeCSV(fixture(C.Name)));
    EXPECT_EQ(PE.Code, C.Code);
    EXPECT_EQ(PE.Line, C.Line);
  }
}

TEST(ParseErrorTest, CsvFixtures) {
  {
    std::string Text = fixture("fuzz_csv/stray-quote.csv");
    ParseError PE = takeParseError(parseCSV(Text));
    EXPECT_EQ(PE.Code, ErrorCode::MalformedRecord);
    EXPECT_EQ(PE.Line, 1u);
    EXPECT_EQ(PE.Offset, Text.find('"'));
  }
  {
    std::string Text = fixture("fuzz_csv/unterminated-quote.csv");
    ParseError PE = takeParseError(parseCSV(Text));
    EXPECT_EQ(PE.Code, ErrorCode::TruncatedInput);
    EXPECT_EQ(PE.Line, 2u);
    EXPECT_EQ(PE.Offset, Text.size());
  }
}

TEST(ParseErrorTest, BinaryErrors) {
  std::string Bytes = trace::writeTraceBinaryV1(makeValidTrace());

  std::string BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_EQ(takeParseError(trace::parseTraceBinary(BadMagic)).Code,
            ErrorCode::BadMagic);

  std::string BadVersion = Bytes;
  BadVersion[4] = 0x7f;
  EXPECT_EQ(takeParseError(trace::parseTraceBinary(BadVersion)).Code,
            ErrorCode::UnsupportedVersion);

  // Clipping inside the magic itself means the format cannot even be
  // identified: BadMagic, not TruncatedInput.
  EXPECT_EQ(takeParseError(
                trace::parseTraceBinary(std::string_view(Bytes).substr(0, 2)))
                .Code,
            ErrorCode::BadMagic);

  // Any truncation point past the magic loses framing: TruncatedInput,
  // with the reported offset inside the clipped buffer.
  for (size_t Cut : {size_t(9), Bytes.size() / 2, Bytes.size() - 1}) {
    SCOPED_TRACE(Cut);
    ParseError PE = takeParseError(
        trace::parseTraceBinary(std::string_view(Bytes).substr(0, Cut)));
    EXPECT_EQ(PE.Code, ErrorCode::TruncatedInput);
    EXPECT_LE(PE.Offset, Cut);
  }

  // Trailing garbage: fatal in strict mode, dropped in lenient mode.
  std::string Trailing = Bytes + "garbage";
  EXPECT_EQ(takeParseError(trace::parseTraceBinary(Trailing)).Code,
            ErrorCode::MalformedRecord);
  ParseReport Report;
  ParseOptions Lenient;
  Lenient.Mode = ParseMode::Lenient;
  Lenient.Report = &Report;
  Trace Reparsed = cantFail(trace::parseTraceBinary(Trailing, Lenient));
  EXPECT_EQ(Reparsed.numEvents(), makeValidTrace().numEvents());
  EXPECT_EQ(Report.DroppedRecords, 1u);
  EXPECT_EQ(Report.DroppedByCode[size_t(ErrorCode::MalformedRecord)], 1u);
}

TEST(ParseErrorTest, BinaryV2Errors) {
  std::string Bytes = trace::writeTraceBinary(makeValidTrace());

  // Header errors carry the same taxonomy as v1.
  std::string BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_EQ(takeParseError(trace::parseTraceBinary(BadMagic)).Code,
            ErrorCode::BadMagic);
  std::string BadVersion = Bytes;
  BadVersion[4] = 0x7f;
  EXPECT_EQ(takeParseError(trace::parseTraceBinary(BadVersion)).Code,
            ErrorCode::UnsupportedVersion);

  // Unknown format flags are an unsupported dialect, not garbage.
  std::string BadFlags = Bytes;
  BadFlags[8] = char(0x80); // Flags field follows the version.
  EXPECT_EQ(takeParseError(trace::parseTraceBinary(BadFlags)).Code,
            ErrorCode::UnsupportedVersion);

  // Truncation inside the payload loses framing even for v2 (the index
  // is gone too, so the sequential walk hits the cliff).
  ParseError PE = takeParseError(trace::parseTraceBinary(
      std::string_view(Bytes).substr(0, Bytes.size() / 2)));
  EXPECT_EQ(PE.Code, ErrorCode::TruncatedInput);
  EXPECT_LE(PE.Offset, Bytes.size() / 2);
}

TEST(ParseErrorTest, LenientTraceTextDropsAreDeterministic) {
  std::string Text = fixture("fuzz_trace_text/valid-with-bad-lines.trace");
  EXPECT_EQ(takeParseError(trace::parseTraceText(Text)).Code,
            ErrorCode::MalformedRecord);

  // The file has 10 event lines, two of them bad (one unknown mnemonic,
  // one out-of-range processor); lenient keeps the other eight.
  ParseReport First;
  for (int Round = 0; Round != 3; ++Round) {
    ParseReport Report;
    ParseOptions Options;
    Options.Mode = ParseMode::Lenient;
    Options.Report = &Report;
    Trace T = cantFail(trace::parseTraceText(Text, Options));
    EXPECT_EQ(T.numEvents(), 8u);
    EXPECT_EQ(Report.TotalRecords, 10u);
    EXPECT_EQ(Report.DroppedRecords, 2u);
    EXPECT_EQ(Report.DroppedByCode[size_t(ErrorCode::MalformedRecord)], 1u);
    EXPECT_EQ(Report.DroppedByCode[size_t(ErrorCode::ValueOutOfRange)], 1u);
    if (Round == 0)
      First = Report;
    else
      EXPECT_EQ(Report.DroppedByCode, First.DroppedByCode);
  }
}

TEST(ParseErrorTest, LenientCubeDropsBadRows) {
  std::string Text = fixture("fuzz_cube/valid-with-bad-rows.cube.csv");
  EXPECT_EQ(takeParseError(core::parseCubeCSV(Text)).Code,
            ErrorCode::BadNumber);

  ParseReport Report;
  ParseOptions Options;
  Options.Mode = ParseMode::Lenient;
  Options.Report = &Report;
  core::MeasurementCube Cube = cantFail(core::parseCubeCSV(Text, Options));
  EXPECT_EQ(Report.DroppedRecords, 2u);
  EXPECT_EQ(Report.DroppedByCode[size_t(ErrorCode::BadNumber)], 1u);
  EXPECT_EQ(Report.DroppedByCode[size_t(ErrorCode::ValueOutOfRange)], 1u);
  ASSERT_EQ(Cube.numProcs(), 2u);
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 0), 1.5);
  EXPECT_DOUBLE_EQ(Cube.time(0, 0, 1), 2.5);
}

TEST(ParseErrorTest, LenientCsvResyncsAtNextRow) {
  ParseReport Report;
  ParseOptions Options;
  Options.Mode = ParseMode::Lenient;
  Options.Report = &Report;
  auto Rows =
      cantFail(parseCSV(fixture("fuzz_csv/stray-quote.csv"), Options));
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0], (std::vector<std::string>{"e", "f"}));
  EXPECT_EQ(Report.DroppedRecords, 1u);
}

// The reduceTrace regression from the issue: exit-without-enter and
// activity-outside-region must flow through the ParseReport in lenient
// mode instead of aborting, with counts independent of the thread count.
TEST(ParseErrorTest, LenientReductionIsDeterministicAcrossThreads) {
  Trace T(8);
  uint32_t R = T.addRegion("main");
  uint32_t A = T.addActivity("compute");
  for (uint32_t P = 0; P != 8; ++P) {
    if (P % 2 == 0)
      T.append({0.0, P, EventKind::RegionExit, R, 0}); // exit w/o enter
    T.append({0.1, P, EventKind::RegionEnter, R, 0});
    T.append({0.2, P, EventKind::ActivityBegin, A, 0});
    T.append({1.0 + P, P, EventKind::ActivityEnd, A, 0});
    T.append({1.1 + P, P, EventKind::RegionExit, R, 0});
    if (P % 4 == 0)
      T.append({2.0 + P, P, EventKind::ActivityBegin, A, 0}); // outside
  }

  core::ReductionOptions Strict;
  Strict.Threads = 1;
  auto StrictResult = core::reduceTrace(T, Strict);
  EXPECT_FALSE(static_cast<bool>(StrictResult));
  StrictResult.takeError().consume();

  std::vector<double> Reference;
  for (unsigned Threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(Threads);
    ParseReport Report;
    core::ReductionOptions Options;
    Options.Threads = Threads;
    Options.Mode = ParseMode::Lenient;
    Options.Report = &Report;
    core::MeasurementCube Cube = cantFail(core::reduceTrace(T, Options));

    EXPECT_EQ(Report.TotalRecords, T.numEvents());
    EXPECT_EQ(Report.DroppedRecords, 6u); // 4 exits + 2 begins
    EXPECT_EQ(Report.DroppedByCode[size_t(ErrorCode::StructuralError)], 6u);

    std::vector<double> Cells;
    for (unsigned P = 0; P != Cube.numProcs(); ++P)
      Cells.push_back(Cube.time(0, 0, P));
    if (Reference.empty())
      Reference = Cells;
    else
      EXPECT_EQ(Cells, Reference); // bit-identical, not just close
  }
}

TEST(ParseErrorTest, LimitsRejectHostileInputs) {
  // Event-count cap on the text format.
  std::string Text = trace::writeTraceText(makeValidTrace());
  ParseOptions Options;
  Options.Limits.MaxEvents = 3;
  EXPECT_EQ(takeParseError(trace::parseTraceText(Text, Options)).Code,
            ErrorCode::LimitExceeded);

  // Processor-count cap, below the format's own hard range check.
  ParseOptions ProcOptions;
  ProcOptions.Limits.MaxProcs = 10;
  EXPECT_EQ(takeParseError(trace::parseTraceText("LIMATRACE 1\nprocs 100\n",
                                                 ProcOptions))
                .Code,
            ErrorCode::LimitExceeded);

  // A hostile cube header declaring a huge cell cuboid must fail before
  // the cube allocates regions x activities x processors doubles.
  std::string Cube = "region,activity,proc,seconds\n";
  Cube += "#procs,,,100000\n";
  for (int I = 0; I != 10; ++I) {
    Cube += "#region,r" + std::to_string(I) + ",,\n";
    Cube += "#activity,a" + std::to_string(I) + ",,\n";
  }
  Cube += "r0,a0,1,1.0\n";
  ParseOptions CubeOptions;
  CubeOptions.Limits.MaxAllocBytes = 1u << 20;
  EXPECT_EQ(takeParseError(core::parseCubeCSV(Cube, CubeOptions)).Code,
            ErrorCode::LimitExceeded);

  // Name-length cap on the binary format's string table.
  Trace Named(1);
  Named.addRegion(std::string(100, 'r'));
  Named.addActivity("a");
  Named.append({0.0, 0, EventKind::RegionEnter, 0, 0});
  Named.append({1.0, 0, EventKind::RegionExit, 0, 0});
  std::string Binary = trace::writeTraceBinary(Named);
  ParseOptions NameOptions;
  NameOptions.Limits.MaxNameBytes = 16;
  EXPECT_EQ(takeParseError(trace::parseTraceBinary(Binary, NameOptions)).Code,
            ErrorCode::LimitExceeded);
}

TEST(ParseErrorTest, ExitCodesAndNamesAreStable) {
  EXPECT_EQ(exitCodeFor(ErrorCode::Generic), 1);
  EXPECT_EQ(exitCodeFor(ErrorCode::IoError), 2);
  EXPECT_EQ(exitCodeFor(ErrorCode::BadMagic), 3);
  EXPECT_EQ(exitCodeFor(ErrorCode::UnsupportedVersion), 3);
  EXPECT_EQ(exitCodeFor(ErrorCode::TruncatedInput), 4);
  EXPECT_EQ(exitCodeFor(ErrorCode::MalformedRecord), 4);
  EXPECT_EQ(exitCodeFor(ErrorCode::BadNumber), 4);
  EXPECT_EQ(exitCodeFor(ErrorCode::ValueOutOfRange), 5);
  EXPECT_EQ(exitCodeFor(ErrorCode::DuplicateDeclaration), 5);
  EXPECT_EQ(exitCodeFor(ErrorCode::MissingSection), 5);
  EXPECT_EQ(exitCodeFor(ErrorCode::StructuralError), 6);
  EXPECT_EQ(exitCodeFor(ErrorCode::LimitExceeded), 7);
  EXPECT_EQ(errorCodeName(ErrorCode::BadMagic), "bad-magic");
  EXPECT_EQ(errorCodeName(ErrorCode::LimitExceeded), "limit-exceeded");
}

TEST(ParseErrorTest, ReportSummaryMentionsCodesAndSamples) {
  ParseReport Report;
  Report.TotalRecords = 5;
  Report.addDrop({ErrorCode::MalformedRecord, 3, 42, "line 3: bad"});
  Report.addDrop({ErrorCode::BadNumber, 4, 50, "line 4: worse"});
  std::string Summary = Report.summary();
  EXPECT_NE(Summary.find("dropped 2 of 5 records"), std::string::npos);
  EXPECT_NE(Summary.find("malformed-record: 1"), std::string::npos);
  EXPECT_NE(Summary.find("bad-number: 1"), std::string::npos);
  EXPECT_NE(Summary.find("line 3: bad"), std::string::npos);
}

} // namespace
