//===- tests/PaperReproductionTest.cpp - published-numbers tests ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Pins the reconstruction of the paper's experiment: the rebuilt cube
// must reproduce Table 1 and Table 2 essentially exactly (they are
// construction targets), Tables 3-4 to within the rounding of the
// published values, and the qualitative findings of the figures and the
// processor view.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/PatternDiagram.h"
#include "core/Pipeline.h"
#include "core/Profile.h"
#include "cluster/ClusterSelection.h"
#include "cluster/Hierarchical.h"
#include "core/RegionClustering.h"
#include "core/Views.h"
#include <algorithm>
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;
namespace paper = lima::core::paper;

namespace {

const MeasurementCube &paperCube() {
  static const MeasurementCube Cube = paper::buildCube();
  return Cube;
}

} // namespace

TEST(PaperDatasetTest, CubeShapeAndValidity) {
  const MeasurementCube &Cube = paperCube();
  EXPECT_EQ(Cube.numRegions(), paper::NumLoops);
  EXPECT_EQ(Cube.numActivities(), paper::NumActivities);
  EXPECT_EQ(Cube.numProcs(), paper::NumProcs);
  EXPECT_DOUBLE_EQ(Cube.programTime(), paper::ProgramTime);
  Error E = Cube.validate();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(PaperDatasetTest, Table1ReproducedExactly) {
  const MeasurementCube &Cube = paperCube();
  const auto &T1 = paper::table1();
  for (size_t I = 0; I != paper::NumLoops; ++I)
    for (size_t J = 0; J != paper::NumActivities; ++J)
      EXPECT_NEAR(Cube.regionActivityTime(I, J), T1[I][J], 1e-9)
          << "loop " << I + 1 << ", activity " << J;
  // Published per-loop overall values.
  const double Overall[7] = {19.051, 14.22, 10.90, 10.54,
                             9.041,  0.692, 0.31};
  for (size_t I = 0; I != paper::NumLoops; ++I)
    EXPECT_NEAR(Cube.regionTime(I), Overall[I], 1e-9);
  // The instrumented loops sum to 64.754s of the 69.9s program.
  EXPECT_NEAR(Cube.instrumentedTotal(), 64.754, 1e-9);
}

TEST(PaperDatasetTest, Table2ReproducedExactly) {
  auto Matrix = computeDissimilarityMatrix(paperCube());
  const auto &T2 = paper::table2();
  for (size_t I = 0; I != paper::NumLoops; ++I)
    for (size_t J = 0; J != paper::NumActivities; ++J)
      EXPECT_NEAR(Matrix[I][J], T2[I][J], 1e-9)
          << "loop " << I + 1 << ", activity " << J;
}

TEST(PaperDatasetTest, Table3ReproducedWithinRounding) {
  ActivityView View = computeActivityView(paperCube());
  const auto &T3 = paper::table3();
  for (size_t J = 0; J != paper::NumActivities; ++J) {
    EXPECT_NEAR(View.Index[J], T3[J].ID_A, 5e-4) << "activity " << J;
    EXPECT_NEAR(View.ScaledIndex[J], T3[J].SID_A, 2e-5) << "activity " << J;
  }
  // The qualitative conclusions of Section 4.
  EXPECT_EQ(View.MostImbalanced, paper::Synchronization);
  EXPECT_EQ(View.MostImbalancedScaled, paper::Computation);
}

TEST(PaperDatasetTest, Table4ReproducedWithinRounding) {
  RegionView View = computeRegionView(paperCube());
  const auto &T4 = paper::table4();
  for (size_t I = 0; I != paper::NumLoops; ++I) {
    EXPECT_NEAR(View.Index[I], T4[I].ID_C, 5e-4) << "loop " << I + 1;
    EXPECT_NEAR(View.ScaledIndex[I], T4[I].SID_C, 2e-5) << "loop " << I + 1;
  }
  // Loop 6 is the most imbalanced; loop 1 the best scaled candidate.
  EXPECT_EQ(View.MostImbalanced, 5u);
  EXPECT_EQ(View.MostImbalancedScaled, 0u);
}

TEST(PaperDatasetTest, DominanceFindingsMatchSection4) {
  CoarseProfile Profile = computeCoarseProfile(paperCube());
  // "the heaviest loop, that is, loop 1, accounts for about 27% of the
  // overall wall clock time".
  EXPECT_EQ(Profile.HeaviestRegion, 0u);
  EXPECT_NEAR(Profile.Regions[0].FractionOfProgram, 0.2725, 0.005);
  EXPECT_EQ(Profile.DominantActivity, paper::Computation);
  // Loop 1 also leads the dominant activity.
  EXPECT_EQ(Profile.RegionDominatingDominantActivity, 0u);
  // "The loop which spends the longest time in point-to-point
  // communications is loop 3."
  EXPECT_EQ(Profile.Extremes[paper::PointToPoint].WorstRegion, 2u);
  // "only three loops perform synchronizations".
  EXPECT_EQ(Profile.Extremes[paper::Synchronization].RegionsPerforming, 3u);
}

TEST(PaperDatasetTest, KMeansSeparatesHeavyLoops) {
  // "Clustering yields a partition of the loops into two groups.  The
  // heaviest loops of the program, that is, loops 1 and 2, belong to one
  // group, whereas the remaining loops belong to the second group."
  auto Clusters = cantFail(clusterRegions(paperCube()));
  EXPECT_EQ(Clusters.Assignments[0], Clusters.Assignments[1]);
  for (size_t I = 2; I != paper::NumLoops; ++I)
    EXPECT_NE(Clusters.Assignments[I], Clusters.Assignments[0])
        << "loop " << I + 1;
}

TEST(PaperDatasetTest, Figure1PatternsReproduced) {
  const MeasurementCube &Cube = paperCube();
  PatternDiagram Fig1 = computePatternDiagram(Cube, paper::Computation);
  // All seven loops perform computation.
  EXPECT_EQ(Fig1.Regions.size(), 7u);
  // "the times spent in computation by five out of 16 processors
  // executing loop 4 belong to the upper 15% interval".
  size_t Loop4Row = 3;
  size_t Upper = Fig1.countInRow(Loop4Row, PatternCategory::Maximum) +
                 Fig1.countInRow(Loop4Row, PatternCategory::UpperBand);
  EXPECT_EQ(Upper, 5u);
  // "on loop 6 the times of 11 out of 16 processors belong to the lower
  // 15% interval".
  size_t Loop6Row = 5;
  size_t Lower = Fig1.countInRow(Loop6Row, PatternCategory::Minimum) +
                 Fig1.countInRow(Loop6Row, PatternCategory::LowerBand);
  EXPECT_EQ(Lower, 11u);
}

TEST(PaperDatasetTest, Figure2OnlyP2PLoopsPlotted) {
  PatternDiagram Fig2 =
      computePatternDiagram(paperCube(), paper::PointToPoint);
  // Loops 3, 4, 5, 6 perform point-to-point communication.
  ASSERT_EQ(Fig2.Regions.size(), 4u);
  EXPECT_EQ(Fig2.Regions[0], 2u);
  EXPECT_EQ(Fig2.Regions[1], 3u);
  EXPECT_EQ(Fig2.Regions[2], 4u);
  EXPECT_EQ(Fig2.Regions[3], 5u);
}

TEST(PaperDatasetTest, ProcessorViewFindingsReproduced) {
  ProcessorView View = computeProcessorView(paperCube());
  const auto &Findings = paper::processorFindings();
  // Processor numbering in the paper is 1-based.
  unsigned Proc1 = Findings.MostFrequentlyImbalanced - 1;
  unsigned Proc2 = Findings.LongestImbalanced - 1;

  // "processor 1 is the most frequently imbalanced as it is
  // characterized by the largest values of the index of dispersion on
  // two loops, namely, loops 3 and 7".
  EXPECT_EQ(View.MostFrequentlyImbalanced, Proc1);
  EXPECT_EQ(View.TimesMostImbalanced[Proc1], 2u);
  EXPECT_EQ(View.MostImbalancedProc[2], Proc1);
  EXPECT_EQ(View.MostImbalancedProc[6], Proc1);

  // "Processor 2 is imbalanced for the longest time.  This processor is
  // the most imbalanced on one loop only, namely, loop 1, with an index
  // of dispersion equal to 0.25754 and a wall clock time equal to 15.93
  // seconds."
  EXPECT_EQ(View.LongestImbalanced, Proc2);
  EXPECT_EQ(View.MostImbalancedProc[0], Proc2);
  EXPECT_EQ(View.TimesMostImbalanced[Proc2], 1u);
  EXPECT_NEAR(View.Index[0][Proc2], Findings.Proc2Loop1Index, 0.02);
  EXPECT_NEAR(paperCube().procRegionTime(0, Proc2),
              Findings.Proc2Loop1WallClock, 0.3);
}

TEST(PaperDatasetTest, FullPipelineConclusionMatchesPaper) {
  auto Result = cantFail(analyze(paperCube()));
  // The paper's bottom line: loop 1 is the best tuning candidate (large
  // index *and* large scaled index), the dominant activity is
  // computation, and synchronization's imbalance is negligible once
  // scaled.
  ASSERT_FALSE(Result.RegionCandidates.empty());
  EXPECT_EQ(Result.RegionCandidates[0].Item, 0u);
  EXPECT_LT(Result.Activities.ScaledIndex[paper::Synchronization], 0.001);
  EXPECT_EQ(Result.Profile.DominantActivity, paper::Computation);
}

TEST(PaperDatasetTest, HierarchicalClusteringIsolatesLoopOne) {
  // Cross-check with a different algorithm family: average-linkage
  // agglomerative clustering on the same standardized features peels
  // loop 1 off *first* — its synchronization share makes it an outlier
  // in z-space.  A different partition than k-means' {1,2}/{3..7}, but
  // the same conclusion: loop 1 is the special region.  (k-means is the
  // paper's choice; this documents the sensitivity.)
  auto Points = regionFeatureMatrix(paperCube(), /*Standardize=*/true);
  auto Tree = cantFail(cluster::hierarchicalCluster(
      Points, cluster::Metric::Euclidean, cluster::Linkage::Average));
  auto Assignments = Tree.cut(2);
  for (size_t I = 1; I != Assignments.size(); ++I) {
    EXPECT_NE(Assignments[I], Assignments[0]) << "loop " << I + 1;
    EXPECT_EQ(Assignments[I], Assignments[1]) << "loop " << I + 1;
  }
  // The light loops 6 and 7 merge first: they are the closest pair.
  EXPECT_EQ(std::min(Tree.Merges[0].Left, Tree.Merges[0].Right), 5u);
  EXPECT_EQ(std::max(Tree.Merges[0].Left, Tree.Merges[0].Right), 6u);
}

TEST(PaperDatasetTest, SilhouetteSweepOnSevenPointsPrefersFinerK) {
  // With only 7 region points the silhouette criterion prefers K = 4
  // (pairs of similar loops) over the paper's a-priori K = 2 — a known
  // small-sample effect, documented here so the automated selection is
  // not mistaken for a reproduction knob.
  auto Points = regionFeatureMatrix(paperCube(), /*Standardize=*/true);
  auto Choice = cantFail(cluster::chooseClusterCount(Points, 4));
  EXPECT_EQ(Choice.K, 4u);
  ASSERT_EQ(Choice.Sweep.size(), 3u); // K = 2, 3, 4.
  EXPECT_GT(Choice.Sweep[2], Choice.Sweep[0]);
}
