//===- tests/HttpServerTest.cpp - Embedded HTTP server tests --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Exercises support/HttpServer with a raw-socket client: happy-path GET
// and HEAD, keep-alive reuse, the 4xx taxonomy for malformed and
// oversized requests, address parsing, and concurrent scrapes at 1, 2
// and 8 client threads (the TSan leg turns the latter into a real race
// hunt across handler state).
//
//===----------------------------------------------------------------------===//

#include "support/HttpServer.h"
#include "support/StatusServer.h"
#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>
#include <sys/time.h>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lima;
using namespace lima::http;

namespace {

/// Blocking client socket connected to 127.0.0.1:Port; -1 on failure.
int connectTo(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool sendAll(int Fd, std::string_view Data) {
  while (!Data.empty()) {
    ssize_t N = ::send(Fd, Data.data(), Data.size(), MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Data.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

/// Reads until the peer closes.
std::string readToEof(int Fd) {
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  return Out;
}

struct ClientResponse {
  int Status = 0;
  std::string Head;
  std::string Body;
};

/// Reads exactly one framed response (status line + headers +
/// Content-Length bytes) so keep-alive connections can be reused.
bool readResponse(int Fd, ClientResponse &R) {
  std::string Buf;
  char C;
  // Head, byte at a time (tests, not a hot path).
  while (Buf.find("\r\n\r\n") == std::string::npos) {
    if (::recv(Fd, &C, 1, 0) != 1)
      return false;
    Buf += C;
  }
  R.Head = Buf;
  if (Buf.compare(0, 9, "HTTP/1.1 ") != 0)
    return false;
  R.Status = std::atoi(Buf.c_str() + 9);
  size_t LenPos = Buf.find("Content-Length: ");
  if (LenPos == std::string::npos)
    return false;
  size_t Len = static_cast<size_t>(
      std::atoll(Buf.c_str() + LenPos + std::strlen("Content-Length: ")));
  R.Body.clear();
  while (R.Body.size() < Len) {
    char Chunk[4096];
    size_t Want = std::min(Len - R.Body.size(), sizeof(Chunk));
    ssize_t N = ::recv(Fd, Chunk, Want, 0);
    if (N <= 0)
      return false;
    R.Body.append(Chunk, static_cast<size_t>(N));
  }
  return true;
}

/// One-shot helper: connect, send, read everything until close.
std::string roundTrip(uint16_t Port, const std::string &Raw) {
  int Fd = connectTo(Port);
  EXPECT_GE(Fd, 0);
  if (Fd < 0)
    return {};
  EXPECT_TRUE(sendAll(Fd, Raw));
  std::string Out = readToEof(Fd);
  ::close(Fd);
  return Out;
}

/// A server with one echo-ish handler on "/x", started on an ephemeral
/// port.
class ServerFixture {
public:
  explicit ServerFixture(ServerLimits Limits = {}) : Server(Limits) {
    Server.handle("/x", [this](const Request &Req) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      Response R;
      R.Body = "method=" + Req.Method + " path=" + Req.Path +
               " query=" + Req.Query + "\n";
      return R;
    });
    auto Err = Server.start("127.0.0.1:0");
    EXPECT_FALSE(static_cast<bool>(Err)) << Err.message();
  }
  HttpServer Server;
  std::atomic<uint64_t> Hits{0};
};

TEST(HttpAddress, Forms) {
  auto Full = parseAddress("127.0.0.1:9190");
  ASSERT_TRUE(static_cast<bool>(Full));
  EXPECT_EQ(Full->first, "127.0.0.1");
  EXPECT_EQ(Full->second, 9190);

  auto PortColon = parseAddress(":8080");
  ASSERT_TRUE(static_cast<bool>(PortColon));
  EXPECT_EQ(PortColon->first, "127.0.0.1");
  EXPECT_EQ(PortColon->second, 8080);

  auto Bare = parseAddress("8080");
  ASSERT_TRUE(static_cast<bool>(Bare));
  EXPECT_EQ(Bare->second, 8080);

  auto Localhost = parseAddress("localhost:0");
  ASSERT_TRUE(static_cast<bool>(Localhost));
  EXPECT_EQ(Localhost->first, "127.0.0.1");
  EXPECT_EQ(Localhost->second, 0);
}

TEST(HttpAddress, Rejects) {
  for (const char *Bad :
       {"", "example.com:80", "127.0.0.1:", "127.0.0.1:notaport",
        "127.0.0.1:65536", "1.2.3:80"}) {
    auto HostPort = parseAddress(Bad);
    EXPECT_FALSE(static_cast<bool>(HostPort)) << Bad;
    if (!HostPort)
      HostPort.takeError().consume();
  }
}

TEST(HttpServerTest, StartStop) {
  HttpServer Server;
  Server.handle("/", [](const Request &) { return Response(); });
  ASSERT_FALSE(Server.start("127.0.0.1:0"));
  EXPECT_TRUE(Server.running());
  EXPECT_NE(Server.port(), 0);
  EXPECT_EQ(Server.address(), "127.0.0.1:" + std::to_string(Server.port()));
  Server.stop();
  EXPECT_FALSE(Server.running());
  Server.stop(); // idempotent
}

TEST(HttpServerTest, GetWithQuery) {
  ServerFixture F;
  std::string Out = roundTrip(
      F.Server.port(), "GET /x?a=b HTTP/1.1\r\nHost: t\r\n"
                       "Connection: close\r\n\r\n");
  EXPECT_NE(Out.find("HTTP/1.1 200 OK"), std::string::npos) << Out;
  EXPECT_NE(Out.find("method=GET path=/x query=a=b"), std::string::npos)
      << Out;
  EXPECT_EQ(F.Server.requestsServed(), 1u);
}

TEST(HttpServerTest, HeadSuppressesBody) {
  ServerFixture F;
  std::string Out = roundTrip(F.Server.port(),
                              "HEAD /x HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(Out.find("HTTP/1.1 200 OK"), std::string::npos);
  // Content-Length advertises the GET body, but none is sent.
  EXPECT_NE(Out.find("Content-Length: "), std::string::npos);
  EXPECT_EQ(Out.find("method=HEAD"), std::string::npos);
  EXPECT_EQ(Out.substr(Out.size() - 4), "\r\n\r\n");
}

TEST(HttpServerTest, NotFound) {
  ServerFixture F;
  std::string Out = roundTrip(F.Server.port(),
                              "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(Out.find("HTTP/1.1 404 Not Found"), std::string::npos) << Out;
}

TEST(HttpServerTest, MethodNotAllowed) {
  ServerFixture F;
  std::string Out = roundTrip(F.Server.port(),
                              "POST /x HTTP/1.1\r\n\r\n");
  EXPECT_NE(Out.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("Allow: GET, HEAD"), std::string::npos) << Out;
}

TEST(HttpServerTest, MalformedRequestLine) {
  ServerFixture F;
  std::string Out = roundTrip(F.Server.port(), "GET /x\r\n\r\n");
  EXPECT_NE(Out.find("HTTP/1.1 400 Bad Request"), std::string::npos) << Out;
}

TEST(HttpServerTest, UnsupportedVersion) {
  ServerFixture F;
  std::string Out = roundTrip(F.Server.port(), "GET /x HTTP/2.0\r\n\r\n");
  EXPECT_NE(Out.find("HTTP/1.1 505"), std::string::npos) << Out;
}

TEST(HttpServerTest, BodyRejected) {
  ServerFixture F;
  std::string Out = roundTrip(F.Server.port(),
                              "GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\n"
                              "hello");
  EXPECT_NE(Out.find("HTTP/1.1 400"), std::string::npos) << Out;
}

TEST(HttpServerTest, RequestLineTooLong) {
  ServerLimits Limits;
  Limits.MaxRequestLineBytes = 128;
  ServerFixture F(Limits);
  std::string Out = roundTrip(F.Server.port(),
                              "GET /" + std::string(4096, 'a') +
                                  " HTTP/1.1\r\n\r\n");
  EXPECT_NE(Out.find("HTTP/1.1 414"), std::string::npos) << Out;
}

TEST(HttpServerTest, HeadersTooLarge) {
  ServerLimits Limits;
  Limits.MaxHeaderBytes = 256;
  ServerFixture F(Limits);
  std::string Raw = "GET /x HTTP/1.1\r\n";
  for (int I = 0; I != 8; ++I)
    Raw += "X-Pad-" + std::to_string(I) + ": " + std::string(64, 'p') +
           "\r\n";
  Raw += "\r\n";
  std::string Out = roundTrip(F.Server.port(), Raw);
  EXPECT_NE(Out.find("HTTP/1.1 431"), std::string::npos) << Out;
}

TEST(HttpServerTest, TooManyHeaders) {
  ServerLimits Limits;
  Limits.MaxHeaderCount = 4;
  ServerFixture F(Limits);
  std::string Raw = "GET /x HTTP/1.1\r\n";
  for (int I = 0; I != 16; ++I)
    Raw += "X-" + std::to_string(I) + ": v\r\n";
  Raw += "\r\n";
  std::string Out = roundTrip(F.Server.port(), Raw);
  EXPECT_NE(Out.find("HTTP/1.1 431"), std::string::npos) << Out;
}

TEST(HttpServerTest, KeepAliveReusesConnection) {
  ServerFixture F;
  int Fd = connectTo(F.Server.port());
  ASSERT_GE(Fd, 0);
  for (int I = 0; I != 3; ++I) {
    ASSERT_TRUE(sendAll(Fd, "GET /x HTTP/1.1\r\nHost: t\r\n\r\n"));
    ClientResponse R;
    ASSERT_TRUE(readResponse(Fd, R)) << "request " << I;
    EXPECT_EQ(R.Status, 200);
    EXPECT_NE(R.Head.find("Connection: keep-alive"), std::string::npos);
  }
  ::close(Fd);
  EXPECT_EQ(F.Hits.load(), 3u);
  EXPECT_EQ(F.Server.requestsServed(), 3u);
}

TEST(HttpServerTest, Http10ClosesByDefault) {
  ServerFixture F;
  std::string Out = roundTrip(F.Server.port(), "GET /x HTTP/1.0\r\n\r\n");
  EXPECT_NE(Out.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(Out.find("Connection: close"), std::string::npos);
}

TEST(HttpServerTest, PipelinedRequestsAllAnswered) {
  ServerFixture F;
  int Fd = connectTo(F.Server.port());
  ASSERT_GE(Fd, 0);
  // Two requests in one write; the second asks to close so the test
  // can read to EOF.
  ASSERT_TRUE(sendAll(Fd, "GET /x HTTP/1.1\r\n\r\n"
                          "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n"));
  std::string Out = readToEof(Fd);
  ::close(Fd);
  size_t First = Out.find("HTTP/1.1 200");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Out.find("HTTP/1.1 200", First + 1), std::string::npos) << Out;
  EXPECT_EQ(F.Hits.load(), 2u);
}

void scrapeConcurrently(unsigned Threads, unsigned RequestsPerThread) {
  ServerFixture F;
  uint16_t Port = F.Server.port();
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      for (unsigned R = 0; R != RequestsPerThread; ++R) {
        std::string Out = roundTrip(
            Port, "GET /x?t=" + std::to_string(T) +
                      " HTTP/1.1\r\nConnection: close\r\n\r\n");
        if (Out.find("HTTP/1.1 200 OK") == std::string::npos)
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(F.Hits.load(), uint64_t(Threads) * RequestsPerThread);
  EXPECT_EQ(F.Server.requestsServed(), uint64_t(Threads) * RequestsPerThread);
}

TEST(HttpServerTest, ConcurrentScrape1Thread) { scrapeConcurrently(1, 16); }
TEST(HttpServerTest, ConcurrentScrape2Threads) { scrapeConcurrently(2, 16); }
TEST(HttpServerTest, ConcurrentScrape8Threads) { scrapeConcurrently(8, 8); }

// ---- Streaming responses (the SSE transport) ---------------------------

void setRecvTimeout(int Fd, int Ms) {
  timeval Tv{Ms / 1000, (Ms % 1000) * 1000};
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

/// Reads until \p Needle appears in the accumulated bytes, the peer
/// closes, or the receive timeout fires.
std::string readUntil(int Fd, std::string_view Needle) {
  std::string Out;
  char Buf[4096];
  while (Out.find(Needle) == std::string::npos) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  return Out;
}

/// Decodes chunked transfer framing; stops cleanly at the terminating
/// 0-chunk or when the input ends mid-chunk (a live stream usually
/// does).
std::string dechunk(std::string_view Raw) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < Raw.size()) {
    size_t LineEnd = Raw.find("\r\n", Pos);
    if (LineEnd == std::string_view::npos)
      break;
    size_t Len = std::strtoull(
        std::string(Raw.substr(Pos, LineEnd - Pos)).c_str(), nullptr, 16);
    if (Len == 0)
      break;
    Pos = LineEnd + 2;
    if (Pos + Len > Raw.size())
      break;
    Out.append(Raw.substr(Pos, Len));
    Pos += Len + 2; // payload + trailing CRLF
  }
  return Out;
}

/// Keeps receiving and re-decoding the chunked stream until the decoded
/// payload contains \p Needle (or timeout/close).  \p Raw accumulates
/// the wire bytes across calls.
std::string readChunkedUntil(int Fd, std::string &Raw,
                             std::string_view Needle) {
  std::string Decoded = dechunk(Raw);
  char Buf[4096];
  while (Decoded.find(Needle) == std::string::npos) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Raw.append(Buf, static_cast<size_t>(N));
    Decoded = dechunk(Raw);
  }
  return Decoded;
}

/// A server with one buffered handler and one SSE endpoint fed by a
/// shared hub, on an ephemeral port.
class StreamFixture {
public:
  explicit StreamFixture(size_t MaxPendingBytes = 1 << 20)
      : Hub(std::make_shared<StreamHub>(MaxPendingBytes)) {
    Server.handle("/x", [](const Request &) {
      Response R;
      R.Body = "plain\n";
      return R;
    });
    Server.handle("/events", [this](const Request &) {
      return Response::stream("text/event-stream", Hub, ": hello\n\n");
    });
    auto Err = Server.start("127.0.0.1:0");
    EXPECT_FALSE(static_cast<bool>(Err)) << Err.message();
  }

  /// Spins until the hub sees \p N subscribers (subscription happens on
  /// the server thread after the request parses).
  bool waitSubscribers(size_t N, int Ms = 5000) {
    for (int I = 0; I != Ms; ++I) {
      if (Hub->subscribers() == N)
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Hub->subscribers() == N;
  }

  HttpServer Server;
  std::shared_ptr<StreamHub> Hub;
};

TEST(HttpStreamTest, ChunkedSseDelivery) {
  StreamFixture F;
  int Fd = connectTo(F.Server.port());
  ASSERT_GE(Fd, 0);
  setRecvTimeout(Fd, 5000);
  ASSERT_TRUE(sendAll(Fd, "GET /events HTTP/1.1\r\nHost: t\r\n\r\n"));
  std::string Raw = readUntil(Fd, "\r\n\r\n");
  EXPECT_NE(Raw.find("HTTP/1.1 200"), std::string::npos) << Raw;
  EXPECT_NE(Raw.find("Content-Type: text/event-stream"), std::string::npos);
  EXPECT_NE(Raw.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_NE(Raw.find("Connection: close"), std::string::npos);
  EXPECT_NE(Raw.find("Cache-Control: no-cache"), std::string::npos);
  ASSERT_TRUE(F.waitSubscribers(1));

  F.Hub->publish("event: window\ndata: {\"id\":1}\n\n");
  F.Hub->publish("event: alert\ndata: {\"id\":1,\"sid\":2.5}\n\n");
  Raw.erase(0, Raw.find("\r\n\r\n") + 4);
  std::string Decoded = readChunkedUntil(Fd, Raw, "\"sid\":2.5");

  // Initial payload first, then the two frames, wire-exact and in
  // publish order.
  EXPECT_EQ(Decoded.find(": hello\n\n"), 0u) << Decoded;
  size_t W = Decoded.find("event: window\ndata: {\"id\":1}\n\n");
  size_t A = Decoded.find("event: alert\ndata: {\"id\":1,\"sid\":2.5}\n\n");
  ASSERT_NE(W, std::string::npos) << Decoded;
  ASSERT_NE(A, std::string::npos) << Decoded;
  EXPECT_LT(W, A);
  EXPECT_EQ(F.Hub->framesPublished(), 2u);
  EXPECT_EQ(F.Hub->framesDropped(), 0u);
  ::close(Fd);
}

TEST(HttpStreamTest, Http10StreamsRawBytes) {
  StreamFixture F;
  int Fd = connectTo(F.Server.port());
  ASSERT_GE(Fd, 0);
  setRecvTimeout(Fd, 5000);
  ASSERT_TRUE(sendAll(Fd, "GET /events HTTP/1.0\r\n\r\n"));
  std::string Head = readUntil(Fd, "\r\n\r\n");
  EXPECT_NE(Head.find("HTTP/1.1 200"), std::string::npos) << Head;
  EXPECT_EQ(Head.find("Transfer-Encoding"), std::string::npos) << Head;
  EXPECT_NE(Head.find("Connection: close"), std::string::npos);
  ASSERT_TRUE(F.waitSubscribers(1));
  F.Hub->publish("data: raw\n\n");
  // No chunk framing on 1.0: the frame arrives as published.
  std::string Raw = Head.substr(Head.find("\r\n\r\n") + 4);
  Raw += readUntil(Fd, "data: raw\n\n");
  EXPECT_NE(Raw.find(": hello\n\ndata: raw\n\n"), std::string::npos) << Raw;
  ::close(Fd);
}

TEST(HttpStreamTest, HeadDoesNotSubscribe) {
  StreamFixture F;
  int Fd = connectTo(F.Server.port());
  ASSERT_GE(Fd, 0);
  setRecvTimeout(Fd, 5000);
  ASSERT_TRUE(sendAll(Fd, "HEAD /events HTTP/1.1\r\n\r\n"));
  // Headers only, then the server closes; the probe never joins the
  // hub.
  std::string Out = readToEof(Fd);
  ::close(Fd);
  EXPECT_NE(Out.find("HTTP/1.1 200"), std::string::npos) << Out;
  EXPECT_NE(Out.find("Content-Type: text/event-stream"), std::string::npos);
  EXPECT_EQ(Out.find(": hello"), std::string::npos) << Out;
  EXPECT_EQ(F.Hub->subscribers(), 0u);
}

TEST(HttpStreamTest, ClientDisconnectUnsubscribes) {
  StreamFixture F;
  int Fd = connectTo(F.Server.port());
  ASSERT_GE(Fd, 0);
  setRecvTimeout(Fd, 5000);
  ASSERT_TRUE(sendAll(Fd, "GET /events HTTP/1.1\r\n\r\n"));
  readUntil(Fd, "\r\n\r\n");
  ASSERT_TRUE(F.waitSubscribers(1));
  ::close(Fd);
  // The poll loop notices the hangup and unsubscribes; keep nudging it
  // with publishes until the subscriber count drops.
  bool Gone = false;
  for (int I = 0; I != 5000 && !Gone; ++I) {
    F.Hub->publish("data: ping\n\n");
    Gone = F.Hub->subscribers() == 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(Gone);
}

TEST(HttpStreamTest, KeepAliveThenStream) {
  StreamFixture F;
  int Fd = connectTo(F.Server.port());
  ASSERT_GE(Fd, 0);
  setRecvTimeout(Fd, 5000);
  // A buffered request first: the connection stays in keep-alive...
  ASSERT_TRUE(sendAll(Fd, "GET /x HTTP/1.1\r\nHost: t\r\n\r\n"));
  ClientResponse R;
  ASSERT_TRUE(readResponse(Fd, R));
  EXPECT_EQ(R.Status, 200);
  EXPECT_NE(R.Head.find("Connection: keep-alive"), std::string::npos);
  // ...then upgrades to a stream, which is the connection's last
  // request.
  ASSERT_TRUE(sendAll(Fd, "GET /events HTTP/1.1\r\n\r\n"));
  std::string Raw = readUntil(Fd, "\r\n\r\n");
  EXPECT_NE(Raw.find("Transfer-Encoding: chunked"), std::string::npos) << Raw;
  EXPECT_NE(Raw.find("Connection: close"), std::string::npos) << Raw;
  ASSERT_TRUE(F.waitSubscribers(1));
  F.Hub->publish("data: after-keepalive\n\n");
  Raw.erase(0, Raw.find("\r\n\r\n") + 4);
  std::string Decoded = readChunkedUntil(Fd, Raw, "after-keepalive");
  EXPECT_NE(Decoded.find("data: after-keepalive\n\n"), std::string::npos);
  EXPECT_EQ(F.Server.requestsServed(), 2u);
  ::close(Fd);
}

TEST(HttpStreamTest, StopTerminatesChunkedStream) {
  StreamFixture F;
  int Fd = connectTo(F.Server.port());
  ASSERT_GE(Fd, 0);
  setRecvTimeout(Fd, 5000);
  ASSERT_TRUE(sendAll(Fd, "GET /events HTTP/1.1\r\n\r\n"));
  readUntil(Fd, "\r\n\r\n");
  ASSERT_TRUE(F.waitSubscribers(1));
  F.Server.stop();
  // Graceful stop flushes pending frames and sends the terminating
  // 0-chunk so the client sees a clean end-of-stream.
  std::string Tail = readToEof(Fd);
  ::close(Fd);
  EXPECT_NE(Tail.find("0\r\n\r\n"), std::string::npos) << Tail;
}

TEST(HttpStreamTest, StalledSubscriberDropsNotBuffers) {
  // A tiny pending cap so a non-reading client trips backpressure
  // quickly.
  StreamFixture F(1024);
  int Fd = connectTo(F.Server.port());
  ASSERT_GE(Fd, 0);
  // Shrink the client's receive window so kernel buffering cannot
  // swallow the flood.
  int RcvBuf = 4096;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &RcvBuf, sizeof(RcvBuf));
  setRecvTimeout(Fd, 5000);
  ASSERT_TRUE(sendAll(Fd, "GET /events HTTP/1.1\r\n\r\n"));
  readUntil(Fd, "\r\n\r\n");
  ASSERT_TRUE(F.waitSubscribers(1));
  // Stop reading and publish until the hub reports drops: the pending
  // buffer must cap at MaxPendingBytes instead of growing without
  // bound.
  const std::string Frame = "data: " + std::string(500, 'z') + "\n\n";
  bool Dropped = false;
  for (int I = 0; I != 200000 && !Dropped; ++I) {
    F.Hub->publish(Frame);
    Dropped = F.Hub->framesDropped() > 0;
    if (I % 256 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(Dropped);
  ::close(Fd);
}

TEST(StatusServerTest, EndpointsServe) {
  status::StatusServer Status;
  std::atomic<bool> Ready{false};
  Status.addHealthProbe("alive", [] {
    return status::ProbeResult{true, "yes"};
  });
  Status.addReadyProbe("warmup", [&Ready] {
    bool R = Ready.load();
    return status::ProbeResult{R, R ? "warm" : "cold"};
  });
  Status.addVar("answer", [] { return std::string("42"); });
  ASSERT_FALSE(Status.start("127.0.0.1:0"));

  auto get = [&](const std::string &Path) {
    return roundTrip(Status.port(), "GET " + Path +
                                        " HTTP/1.1\r\nConnection: close"
                                        "\r\n\r\n");
  };

  EXPECT_NE(get("/healthz").find("HTTP/1.1 200"), std::string::npos);
  // Not ready yet: 503 with the probe detail.
  std::string NotReady = get("/readyz");
  EXPECT_NE(NotReady.find("HTTP/1.1 503"), std::string::npos) << NotReady;
  EXPECT_NE(NotReady.find("[-] warmup: cold"), std::string::npos) << NotReady;
  Ready.store(true);
  EXPECT_NE(get("/readyz").find("HTTP/1.1 200"), std::string::npos);

  std::string Varz = get("/varz");
  EXPECT_NE(Varz.find("\"version\""), std::string::npos);
  EXPECT_NE(Varz.find("\"answer\": 42"), std::string::npos) << Varz;

  std::string Metrics = get("/metrics");
  EXPECT_NE(Metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(Metrics.find("process_resident_memory_bytes"), std::string::npos)
      << Metrics;

  std::string Spans = get("/debug/spans");
  EXPECT_NE(Spans.find("\"traceEvents\""), std::string::npos) << Spans;

  Status.stop();
  EXPECT_FALSE(Status.running());
}

} // namespace
