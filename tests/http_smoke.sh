#!/bin/sh
# End-to-end smoke test for the status server: starts lima_monitor
# following a growing trace with --http on an ephemeral port, scrapes
# /healthz and /metrics (validated with check_prometheus.sh), appends
# more trace while scraping, checks /readyz, /varz and /debug/spans
# (JSON-validated with python3), then sends SIGTERM and requires a clean
# exit.  Skips (exit 77) when curl is unavailable.
# Usage: http_smoke.sh LIMA_MONITOR_BIN WORK_DIR CHECKER_SH
set -u

Monitor="$1"
Work="$2"
Checker="$3"

command -v curl > /dev/null 2>&1 || { echo "http_smoke: SKIP (no curl)"; exit 77; }

rm -rf "$Work"
mkdir -p "$Work"
Trace="$Work/smoke.trace"
Out="$Work/monitor.out"

cat > "$Trace" <<'EOF'
LIMATRACE 1
procs 2
region 0 loop
activity 0 comp
activity 1 comm
re 0 0.0 0
ab 0 0.0 0
ae 0 0.9 0
re 1 0.0 0
ab 1 0.0 0
ae 1 1.25 0
EOF

# --history 2 is deliberately tiny: with >=3 windows the history must
# evict, and the eviction counters must show on /metrics.  The low
# alert threshold guarantees at least one SSE alert frame.
"$Monitor" "$Trace" --window 1 --follow --idle-exit-ms 0 --interval-ms 50 \
    --log-json --http 127.0.0.1:0 --flight-recorder 1024 \
    --history 2 --alert-threshold 0.0001 \
    > "$Out" 2>&1 &
Pid=$!

fail() {
  echo "http_smoke: $1" >&2
  cat "$Out" >&2
  kill "$Pid" 2> /dev/null
  exit 1
}

# The monitor logs the bound address once the server is up; poll for it.
Addr=""
Tries=0
while [ "$Tries" -lt 100 ]; do
  Addr=$(sed -n 's/.*status server listening.*"address":"\([^"]*\)".*/\1/p' "$Out")
  [ -n "$Addr" ] && break
  kill -0 "$Pid" 2> /dev/null || fail "monitor died before listening"
  sleep 0.1
  Tries=$((Tries + 1))
done
[ -n "$Addr" ] || fail "status server never announced an address"

Base="http://$Addr"

curl -fsS "$Base/healthz" > "$Work/healthz" || fail "GET /healthz failed"
grep -q '^ok$' "$Work/healthz" || fail "/healthz did not report ok"

curl -fsS "$Base/metrics" > "$Work/metrics" || fail "GET /metrics failed"
sh "$Checker" "$Work/metrics" || fail "/metrics failed Prometheus validation"
grep -q '^process_resident_memory_bytes ' "$Work/metrics" \
    || fail "/metrics missing process self-metrics"

# Subscribe to the live event stream before the trace grows, so the
# windows drained below must arrive as SSE frames.  SSE is fan-out
# only (no replay), so wait until the monitor reports the subscription
# before appending — otherwise a slow-starting curl misses the frames.
curl -sN --max-time 120 "$Base/events" > "$Work/sse" 2> /dev/null &
SsePid=$!
Tries=0
while [ "$Tries" -lt 200 ]; do
  curl -fsS "$Base/varz" 2> /dev/null | grep -q '"sse_subscribers": [1-9]' \
      && break
  sleep 0.1
  Tries=$((Tries + 1))
done
curl -fsS "$Base/varz" 2> /dev/null | grep -q '"sse_subscribers": [1-9]' \
    || fail "SSE subscription never registered"

# Grow the trace while the server is live: scrape-during-ingest.
cat >> "$Trace" <<'EOF'
ab 0 0.9 1
ae 0 1.1 1
ab 1 1.25 1
ae 1 1.4 1
ab 0 1.1 0
ae 0 2.6 0
rx 0 2.6 0
ab 1 1.4 0
ae 1 2.3 0
rx 1 2.3 0
re 0 2.6 0
ab 0 2.6 0
ae 0 3.6 0
rx 0 3.6 0
re 1 2.3 0
ab 1 2.3 0
ae 1 3.2 0
rx 1 3.2 0
EOF

# Wait for the monitor to ingest the appended events and emit windows:
# three complete windows, one past the --history 2 cap, so the ring
# must evict.
Tries=0
while [ "$Tries" -lt 100 ]; do
  Windows=$(grep -c '"msg":"window"' "$Out" || true)
  [ "$Windows" -ge 3 ] && break
  sleep 0.1
  Tries=$((Tries + 1))
done
[ "${Windows:-0}" -ge 3 ] || fail "expected >=3 windows while following"

curl -fsS "$Base/readyz" > "$Work/readyz" || fail "GET /readyz failed"
grep -q '^ready$' "$Work/readyz" || fail "/readyz did not report ready"

curl -fsS "$Base/varz" > "$Work/varz" || fail "GET /varz failed"
curl -fsS "$Base/debug/spans" > "$Work/spans" || fail "GET /debug/spans failed"

if command -v python3 > /dev/null 2>&1; then
  python3 - "$Work/varz" "$Work/spans" <<'EOF' || fail "JSON validation failed"
import json, sys
varz = json.load(open(sys.argv[1]))
assert "version" in varz and "windows_emitted" in varz, varz.keys()
assert varz["flight_recorder"] is True
spans = json.load(open(sys.argv[2]))
assert "traceEvents" in spans and isinstance(spans["traceEvents"], list)
EOF
fi

# The dashboard page: served inline, no external asset fetches.
curl -fsS "$Base/dashboard" > "$Work/dashboard" || fail "GET /dashboard failed"
grep -q '<canvas' "$Work/dashboard" || fail "/dashboard missing canvas markup"
grep -q 'EventSource' "$Work/dashboard" || fail "/dashboard missing SSE client"
if grep -Eq 'src="https?:|href="https?:|@import|url\(' "$Work/dashboard"; then
  fail "/dashboard references external assets"
fi

# The windows API: every retained window as valid JSON, the ring capped
# at --history 2 with evictions counted.
curl -fsS "$Base/api/windows" > "$Work/windows.json" \
    || fail "GET /api/windows failed"
if command -v python3 > /dev/null 2>&1; then
  python3 - "$Work/windows.json" <<'EOF' || fail "/api/windows validation failed"
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["capacity"] == 2, doc["capacity"]
assert doc["size"] == len(doc["windows"]) <= 2
assert doc["appended"] >= 2
assert doc["appended"] - doc["evictions"] == doc["size"]
ids = [w["id"] for w in doc["windows"]]
assert ids == sorted(ids)
for w in doc["windows"]:
    assert len(w["proc_load"]) == 2, w
    assert isinstance(w["max_sid_c"], (int, float))
    assert w["regions"] and "sid_c" in w["regions"][0]
EOF
  LastId=$(python3 -c \
      'import json,sys; print(json.load(open(sys.argv[1]))["windows"][-1]["id"])' \
      "$Work/windows.json")
  curl -fsS "$Base/api/windows/$LastId" > /dev/null \
      || fail "GET /api/windows/$LastId failed"
fi
Code=$(curl -s -o /dev/null -w '%{http_code}' "$Base/api/windows/999999")
[ "$Code" = "404" ] || fail "expected 404 for unretained window, got $Code"
Code=$(curl -s -o /dev/null -w '%{http_code}' "$Base/api/windows?since=abc")
[ "$Code" = "400" ] || fail "expected 400 for bad since, got $Code"

# At least one SSE window frame (and one alert, given the threshold)
# must have been pushed while the trace grew.
Tries=0
while [ "$Tries" -lt 300 ]; do
  grep -q '^event: alert$' "$Work/sse" 2> /dev/null && break
  sleep 0.1
  Tries=$((Tries + 1))
done
grep -q '^event: window$' "$Work/sse" || fail "no SSE window frame received"
grep -q '^event: alert$' "$Work/sse" || fail "no SSE alert frame received"
grep -q '^data: {' "$Work/sse" || fail "SSE frames carry no JSON data"
kill "$SsePid" 2> /dev/null

# History gauges are direct registry entries, present in every build;
# the lima_http_* request metrics ride the LIMA_METRIC macros and are
# asserted only when /varz says telemetry is compiled in.
curl -fsS "$Base/metrics" > "$Work/metrics2" || fail "second /metrics failed"
grep -q '^lima_history_windows 2' "$Work/metrics2" \
    || fail "/metrics missing bounded lima_history_windows"
grep -q '^lima_history_evictions_total [1-9]' "$Work/metrics2" \
    || fail "/metrics missing lima_history_evictions_total"
if grep -q '"telemetry_compiled": true' "$Work/varz"; then
  grep -q '^lima_http_requests_total{' "$Work/metrics2" \
      || fail "/metrics missing lima_http_requests_total"
  grep -q '^lima_http_request_duration_seconds_bucket{' "$Work/metrics2" \
      || fail "/metrics missing request duration histogram"
fi

# 404 for unknown paths, with the server still healthy afterwards.
Code=$(curl -s -o /dev/null -w '%{http_code}' "$Base/nope")
[ "$Code" = "404" ] || fail "expected 404 for /nope, got $Code"
curl -fsS "$Base/healthz" > /dev/null || fail "server unhealthy after 404"

kill -TERM "$Pid"
Status=0
wait "$Pid" || Status=$?
[ "$Status" -eq 0 ] || fail "expected clean exit after SIGTERM, got $Status"

grep -q '"msg":"stream complete"' "$Out" || fail "missing stream-complete record"

echo "http_smoke: OK ($Windows windows, addr $Addr)"
