#!/bin/sh
# End-to-end smoke test for the status server: starts lima_monitor
# following a growing trace with --http on an ephemeral port, scrapes
# /healthz and /metrics (validated with check_prometheus.sh), appends
# more trace while scraping, checks /readyz, /varz and /debug/spans
# (JSON-validated with python3), then sends SIGTERM and requires a clean
# exit.  Skips (exit 77) when curl is unavailable.
# Usage: http_smoke.sh LIMA_MONITOR_BIN WORK_DIR CHECKER_SH
set -u

Monitor="$1"
Work="$2"
Checker="$3"

command -v curl > /dev/null 2>&1 || { echo "http_smoke: SKIP (no curl)"; exit 77; }

rm -rf "$Work"
mkdir -p "$Work"
Trace="$Work/smoke.trace"
Out="$Work/monitor.out"

cat > "$Trace" <<'EOF'
LIMATRACE 1
procs 2
region 0 loop
activity 0 comp
activity 1 comm
re 0 0.0 0
ab 0 0.0 0
ae 0 0.9 0
re 1 0.0 0
ab 1 0.0 0
ae 1 1.25 0
EOF

"$Monitor" "$Trace" --window 1 --follow --idle-exit-ms 0 --interval-ms 50 \
    --log-json --http 127.0.0.1:0 --flight-recorder 1024 \
    > "$Out" 2>&1 &
Pid=$!

fail() {
  echo "http_smoke: $1" >&2
  cat "$Out" >&2
  kill "$Pid" 2> /dev/null
  exit 1
}

# The monitor logs the bound address once the server is up; poll for it.
Addr=""
Tries=0
while [ "$Tries" -lt 100 ]; do
  Addr=$(sed -n 's/.*status server listening.*"address":"\([^"]*\)".*/\1/p' "$Out")
  [ -n "$Addr" ] && break
  kill -0 "$Pid" 2> /dev/null || fail "monitor died before listening"
  sleep 0.1
  Tries=$((Tries + 1))
done
[ -n "$Addr" ] || fail "status server never announced an address"

Base="http://$Addr"

curl -fsS "$Base/healthz" > "$Work/healthz" || fail "GET /healthz failed"
grep -q '^ok$' "$Work/healthz" || fail "/healthz did not report ok"

curl -fsS "$Base/metrics" > "$Work/metrics" || fail "GET /metrics failed"
sh "$Checker" "$Work/metrics" || fail "/metrics failed Prometheus validation"
grep -q '^process_resident_memory_bytes ' "$Work/metrics" \
    || fail "/metrics missing process self-metrics"

# Grow the trace while the server is live: scrape-during-ingest.
cat >> "$Trace" <<'EOF'
ab 0 0.9 1
ae 0 1.1 1
ab 1 1.25 1
ae 1 1.4 1
ab 0 1.1 0
ae 0 2.6 0
rx 0 2.6 0
ab 1 1.4 0
ae 1 2.3 0
rx 1 2.3 0
EOF

# Wait for the monitor to ingest the appended events and emit windows.
Tries=0
while [ "$Tries" -lt 100 ]; do
  Windows=$(grep -c '"msg":"window"' "$Out" || true)
  [ "$Windows" -ge 2 ] && break
  sleep 0.1
  Tries=$((Tries + 1))
done
[ "${Windows:-0}" -ge 2 ] || fail "expected >=2 windows while following"

curl -fsS "$Base/readyz" > "$Work/readyz" || fail "GET /readyz failed"
grep -q '^ready$' "$Work/readyz" || fail "/readyz did not report ready"

curl -fsS "$Base/varz" > "$Work/varz" || fail "GET /varz failed"
curl -fsS "$Base/debug/spans" > "$Work/spans" || fail "GET /debug/spans failed"

if command -v python3 > /dev/null 2>&1; then
  python3 - "$Work/varz" "$Work/spans" <<'EOF' || fail "JSON validation failed"
import json, sys
varz = json.load(open(sys.argv[1]))
assert "version" in varz and "windows_emitted" in varz, varz.keys()
assert varz["flight_recorder"] is True
spans = json.load(open(sys.argv[2]))
assert "traceEvents" in spans and isinstance(spans["traceEvents"], list)
EOF
fi

# 404 for unknown paths, with the server still healthy afterwards.
Code=$(curl -s -o /dev/null -w '%{http_code}' "$Base/nope")
[ "$Code" = "404" ] || fail "expected 404 for /nope, got $Code"
curl -fsS "$Base/healthz" > /dev/null || fail "server unhealthy after 404"

kill -TERM "$Pid"
Status=0
wait "$Pid" || Status=$?
[ "$Status" -eq 0 ] || fail "expected clean exit after SIGTERM, got $Status"

grep -q '"msg":"stream complete"' "$Out" || fail "missing stream-complete record"

echo "http_smoke: OK ($Windows windows, addr $Addr)"
