//===- tests/crash_dump_harness.cpp - Induced-crash test binary -----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Installs the crash-dump handler, records some telemetry, then takes a
// real SIGSEGV so crash_smoke.sh can assert the dump file contents and
// the signal-death exit status.  Not a gtest: it must die.
//
//===----------------------------------------------------------------------===//

#include "support/CrashDump.h"
#include "support/Log.h"
#include "support/Telemetry.h"
#include <cstdio>
#include <cstring>
#include <unistd.h>

using namespace lima;

int main(int argc, char **argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <dump-path>\n", argv[0]);
    return 2;
  }

  if (Error E = crashdump::install(argv[1])) {
    E.consume();
    std::fprintf(stderr, "crashdump::install failed\n");
    return 2;
  }

  telemetry::setEnabled(true);
  telemetry::enableFlightRecorder(16);
  telemetry::setRingOnly(true);

  logging::setLevel(logging::Level::Info);
  logging::info("harness starting", {logging::field("pid", getpid())});
  logging::info("about to fault", {logging::field("step", 2)});

  uint32_t Name = telemetry::internName("harness.work");
  for (uint64_t I = 0; I < 6; ++I)
    telemetry::recordSpan(Name, telemetry::InvalidName, 1000 * I, 500);

  // Take a genuine fault so the signal path — not a direct writeDump()
  // call — produces the dump.
  volatile int *Null = nullptr;
  *Null = 42;
  return 0; // unreachable
}
