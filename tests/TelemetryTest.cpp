//===- tests/TelemetryTest.cpp - Self-instrumentation layer tests ---------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Covers the telemetry layer end to end: span recording and stage
// attribution across pool workers, counter atomicity at several thread
// counts, the disabled-mode zero-event guarantee, well-formedness of the
// Chrome trace-event export (checked with a tiny JSON parser), bit-level
// determinism of the analysis under instrumentation, and reconstruction
// of the self-profile measurement cube.
//
// Telemetry state is process-global, so every test begins with reset()
// and ends with recording disabled.  Tests that need recorded events
// skip themselves when the layer is compiled out (LIMA_TELEMETRY=0).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "core/Pipeline.h"
#include "core/SelfProfile.h"
#include "core/TraceReduction.h"
#include "support/Parallel.h"
#include "support/Telemetry.h"
#include "support/TraceEventExport.h"
#include <atomic>
#include <cctype>
#include <gtest/gtest.h>

using namespace lima;
using lima::testutil::failed;
using lima::testutil::messageOf;

namespace {

constexpr bool TelemetryCompiled = LIMA_TELEMETRY != 0;

/// RAII guard: every test starts from a clean slate and never leaks an
/// enabled recorder into the next test.
struct TelemetrySession {
  TelemetrySession() {
    telemetry::reset();
    telemetry::setEnabled(true);
  }
  ~TelemetrySession() {
    telemetry::setEnabled(false);
    telemetry::collect();
  }
};

/// A small trace with deliberate skew, enough to exercise every stage.
trace::Trace makeTrace(unsigned Procs, unsigned Rounds) {
  trace::Trace T(Procs);
  uint32_t Solve = T.addRegion("solve");
  uint32_t Comp = T.addActivity("computation");
  for (unsigned P = 0; P != Procs; ++P) {
    double Clock = 0.0;
    for (unsigned R = 0; R != Rounds; ++R) {
      double Work = 0.001 * (1.0 + P + R % 3);
      T.append({Clock, P, trace::EventKind::RegionEnter, Solve, 0});
      T.append({Clock, P, trace::EventKind::ActivityBegin, Comp, 0});
      Clock += Work;
      T.append({Clock, P, trace::EventKind::ActivityEnd, Comp, 0});
      T.append({Clock, P, trace::EventKind::RegionExit, Solve, 0});
    }
  }
  return T;
}

//===----------------------------------------------------------------------===//
// A minimal JSON well-formedness checker (no values retained)
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(std::string_view Text) : Text(Text) {}

  bool valid() {
    skipSpace();
    if (!value())
      return false;
    skipSpace();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipSpace();
    if (peek() == '}')
      return ++Pos, true;
    while (true) {
      skipSpace();
      if (!string())
        return false;
      skipSpace();
      if (peek() != ':')
        return false;
      ++Pos;
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}')
        return ++Pos, true;
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipSpace();
    if (peek() == ']')
      return ++Pos, true;
    while (true) {
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']')
        return ++Pos, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\') {
        if (Pos + 1 >= Text.size())
          return false;
        ++Pos;
      }
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    ++Pos;
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  std::string_view Text;
  size_t Pos = 0;
};

/// Extracts the "ts" values of complete ("X") events in document order.
std::vector<double> completeEventTimestamps(const std::string &Json) {
  std::vector<double> Timestamps;
  size_t Pos = 0;
  while ((Pos = Json.find("\"ph\": \"X\"", Pos)) != std::string::npos) {
    size_t Ts = Json.find("\"ts\": ", Pos);
    EXPECT_NE(Ts, std::string::npos);
    Timestamps.push_back(std::stod(Json.substr(Ts + 6)));
    Pos += 9;
  }
  return Timestamps;
}

//===----------------------------------------------------------------------===//
// Spans, stages and counters
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, NestedSpansRecordWithStageAttribution) {
  if (!TelemetryCompiled)
    GTEST_SKIP() << "telemetry compiled out";
  TelemetrySession Session;
  {
    LIMA_STAGE("test-stage");
    LIMA_SPAN("outer");
    LIMA_SPAN("inner");
  }
  telemetry::setEnabled(false);
  telemetry::Snapshot S = telemetry::collect();

  ASSERT_EQ(S.Stages.size(), 1u);
  EXPECT_EQ(S.Stages[0].Name, "test-stage");
  EXPECT_GT(S.Stages[0].WallMs, 0.0);

  ASSERT_EQ(S.Events.size(), 2u);
  double OuterMs = 0.0, InnerMs = 0.0;
  for (const telemetry::SpanEvent &E : S.Events) {
    EXPECT_EQ(S.nameOf(E.Stage), "test-stage");
    EXPECT_EQ(E.Worker, 0u);
    if (S.nameOf(E.Name) == "outer")
      OuterMs = static_cast<double>(E.DurNs);
    else if (S.nameOf(E.Name) == "inner")
      InnerMs = static_cast<double>(E.DurNs);
    else
      ADD_FAILURE() << "unexpected span " << S.nameOf(E.Name);
  }
  // The inner span closes before (and within) the outer one.
  EXPECT_LE(InnerMs, OuterMs);
}

TEST(TelemetryTest, SpansInsidePoolTasksCarryTheSubmittingStage) {
  if (!TelemetryCompiled)
    GTEST_SKIP() << "telemetry compiled out";
  TelemetrySession Session;
  {
    LIMA_STAGE("sharded");
    parallelChunks(1000, 8, [](size_t, size_t, size_t) {
      LIMA_SPAN("shard");
    });
  }
  telemetry::setEnabled(false);
  telemetry::Snapshot S = telemetry::collect();

  unsigned Shards = 0, Tasks = 0;
  for (const telemetry::SpanEvent &E : S.Events) {
    if (S.nameOf(E.Name) == "shard") {
      ++Shards;
      EXPECT_EQ(S.nameOf(E.Stage), "sharded");
      EXPECT_LT(E.Worker, S.NumWorkers);
    }
    if (S.nameOf(E.Name) == "pool.task") {
      ++Tasks;
      EXPECT_EQ(S.nameOf(E.Stage), "sharded");
    }
  }
  EXPECT_GT(Shards, 0u);
  EXPECT_EQ(Shards, Tasks); // caller-run chunks are tasks too
  ASSERT_EQ(S.Stages.size(), 1u);
  double Busy = 0.0;
  for (double Ms : S.Stages[0].WorkerComputeMs)
    Busy += Ms;
  EXPECT_GT(Busy, 0.0);
}

TEST(TelemetryTest, CountersAreAtomicAcrossThreadCounts) {
  if (!TelemetryCompiled)
    GTEST_SKIP() << "telemetry compiled out";
  for (unsigned Threads : {1u, 2u, 8u}) {
    TelemetrySession Session;
    parallelFor(10000, Threads, [](size_t) {
      LIMA_COUNTER_ADD("test.increments", 1);
    });
    telemetry::setEnabled(false);
    telemetry::Snapshot S = telemetry::collect();
    bool Found = false;
    for (const telemetry::CounterValue &C : S.Counters)
      if (C.Name == "test.increments") {
        Found = true;
        EXPECT_EQ(C.Value, 10000u) << "threads=" << Threads;
      }
    EXPECT_TRUE(Found) << "threads=" << Threads;
  }
}

TEST(TelemetryTest, DisabledModeRecordsNothing) {
  telemetry::reset();
  ASSERT_FALSE(telemetry::enabled());
  {
    LIMA_STAGE("dark");
    LIMA_SPAN("unseen");
    LIMA_COUNTER_ADD("unseen.counter", 42);
  }
  parallelFor(100, 4, [](size_t) { LIMA_SPAN("unseen.parallel"); });
  telemetry::Snapshot S = telemetry::collect();
  EXPECT_TRUE(S.Events.empty());
  EXPECT_TRUE(S.Stages.empty());
  EXPECT_TRUE(S.Counters.empty());
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(TelemetryExportTest, ChromeTraceIsWellFormedWithMonotonicTimestamps) {
  if (!TelemetryCompiled)
    GTEST_SKIP() << "telemetry compiled out";
  TelemetrySession Session;
  trace::Trace T = makeTrace(8, 40);
  core::ReductionOptions Reduction;
  Reduction.Threads = 4;
  core::MeasurementCube Cube = cantFail(core::reduceTrace(T, Reduction));
  core::AnalysisOptions Options;
  Options.Threads = 4;
  (void)cantFail(core::analyze(Cube, Options));
  telemetry::setEnabled(false);
  telemetry::Snapshot S = telemetry::collect();
  ASSERT_FALSE(S.Events.empty());

  std::string Json = telemetry::exportChromeTrace(S);
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json.substr(0, 400);
  EXPECT_NE(Json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);

  std::vector<double> Ts = completeEventTimestamps(Json);
  ASSERT_FALSE(Ts.empty());
  for (size_t I = 1; I < Ts.size(); ++I)
    EXPECT_LE(Ts[I - 1], Ts[I]) << "timestamps regress at event " << I;

  std::string Stats = telemetry::exportSelfProfileJson(S);
  EXPECT_TRUE(JsonChecker(Stats).valid()) << Stats.substr(0, 400);
  EXPECT_NE(Stats.find("\"git_rev\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Determinism and the self-profile cube
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, RecordingDoesNotChangeAnalysisResults) {
  trace::Trace T = makeTrace(8, 60);
  core::ReductionOptions Reduction;
  Reduction.Threads = 4;
  core::AnalysisOptions Options;
  Options.Threads = 4;

  telemetry::reset();
  core::MeasurementCube PlainCube = cantFail(core::reduceTrace(T, Reduction));
  core::AnalysisResult Plain = cantFail(core::analyze(PlainCube, Options));

  core::AnalysisResult Recorded = [&] {
    TelemetrySession Session;
    core::MeasurementCube Cube = cantFail(core::reduceTrace(T, Reduction));
    return cantFail(core::analyze(Cube, Options));
  }();

  EXPECT_EQ(Plain.Regions.Index, Recorded.Regions.Index);
  EXPECT_EQ(Plain.Regions.ScaledIndex, Recorded.Regions.ScaledIndex);
  EXPECT_EQ(Plain.Processors.Index, Recorded.Processors.Index);
  EXPECT_EQ(Plain.Activities.Dissimilarity, Recorded.Activities.Dissimilarity);
}

TEST(SelfProfileTest, CubeReproducesStageWallTimes) {
  if (!TelemetryCompiled)
    GTEST_SKIP() << "telemetry compiled out";
  TelemetrySession Session;
  trace::Trace T = makeTrace(8, 40);
  core::ReductionOptions Reduction;
  Reduction.Threads = 4;
  core::MeasurementCube Cube = cantFail(core::reduceTrace(T, Reduction));
  core::AnalysisOptions Options;
  Options.Threads = 4;
  (void)cantFail(core::analyze(Cube, Options));
  telemetry::setEnabled(false);
  telemetry::Snapshot S = telemetry::collect();

  core::MeasurementCube Self = cantFail(core::buildSelfProfileCube(S));
  ASSERT_EQ(Self.numRegions(), S.Stages.size());
  EXPECT_EQ(Self.numActivities(), 3u);
  EXPECT_EQ(Self.numProcs(), S.NumWorkers);

  // Each worker's compute+wait+idle row sums to the stage wall, so the
  // cube's instrumented total is (stages x wall) and the program time
  // covers the whole session.
  for (size_t R = 0; R != Self.numRegions(); ++R) {
    EXPECT_EQ(Self.regionName(R), S.Stages[R].Name);
    for (unsigned P = 0; P != Self.numProcs(); ++P) {
      double RowSec = 0.0;
      for (size_t A = 0; A != Self.numActivities(); ++A)
        RowSec += Self.time(R, A, P);
      EXPECT_NEAR(RowSec, S.Stages[R].WallMs / 1e3,
                  1e-9 + S.Stages[R].WallMs / 1e3 * 1e-6);
    }
  }
  EXPECT_GE(Self.programTime(), 0.999 * (S.SessionWallMs / 1e3));

  // The dogfooded cube feeds back into the standard analysis.
  core::AnalysisOptions SelfOptions;
  SelfOptions.Clusters = 0;
  SelfOptions.Threads = 1;
  core::AnalysisResult Result = cantFail(core::analyze(Self, SelfOptions));
  EXPECT_EQ(Result.Regions.Index.size(), S.Stages.size());
}

TEST(SelfProfileTest, EmptySnapshotIsARecoverableError) {
  telemetry::reset();
  telemetry::Snapshot S = telemetry::collect();
  std::string Message = messageOf(core::buildSelfProfileCube(S));
  EXPECT_NE(Message.find("no pipeline stages"), std::string::npos)
      << Message;
}

} // namespace
