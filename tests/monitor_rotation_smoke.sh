#!/bin/sh
# Resilience smoke for lima_monitor --follow: the followed trace is
# rotated to a new inode, then truncated in place (copytruncate), and
# the monitor must survive both, keep window numbering monotonic across
# segments, and count each reopen in lima_reopen_total.  A second run
# restarted from the --checkpoint file must replay the final trace
# without re-reporting any window (no double-counting).
# Usage: monitor_rotation_smoke.sh LIMA_MONITOR_BIN WORK_DIR CHECKER_SH
set -eu

Monitor="$1"
Work="$2"
Checker="$3"

rm -rf "$Work"
mkdir -p "$Work"
Trace="$Work/rotating.trace"
Out="$Work/monitor.out"
Prom="$Work/monitor.prom"
Ck="$Work/monitor.ckpt"

Pid=""
wait_for() { # pattern file
  _i=0
  while [ "$_i" -lt 200 ]; do
    if grep -q "$1" "$2" 2>/dev/null; then
      return 0
    fi
    _i=$((_i + 1))
    sleep 0.1
  done
  echo "rotation_smoke: timed out waiting for $1" >&2
  cat "$2" >&2 || true
  [ -n "$Pid" ] && kill "$Pid" 2>/dev/null
  exit 1
}

# Segment A: windows 0..2 complete while following (watermark 3.5),
# window 3 flushes when the segment is retired.
cat > "$Trace" <<'EOF'
LIMATRACE 1
procs 2
region 0 loop
activity 0 comp
re 0 0.0 0
re 1 0.0 0
ab 0 0.0 0
ae 0 1.0 0
ab 1 0.0 0
ae 1 1.0 0
ab 0 1.0 0
ae 0 2.0 0
ab 1 1.0 0
ae 1 2.0 0
ab 0 2.0 0
ae 0 3.2 0
ab 1 2.0 0
ae 1 3.2 0
ab 0 3.2 0
ae 0 3.5 0
ab 1 3.2 0
ae 1 3.5 0
EOF

"$Monitor" "$Trace" --follow --interval-ms 50 --window 1 --log-json \
    --checkpoint "$Ck" --metrics-out "$Prom" > "$Out" 2>&1 &
Pid=$!

wait_for '"window":2,' "$Out"

# Rotate: the old file moves away, a fresh segment (its own header, its
# own t = 0) lands at the path.  Windows continue at global index 4
# (window 3 is flushed from the retired segment).
mv "$Trace" "$Trace.1"
cat > "$Trace" <<'EOF'
LIMATRACE 1
procs 2
region 0 loop
activity 0 comp
re 0 0.0 0
re 1 0.0 0
ab 0 0.0 0
ae 0 1.0 0
ab 1 0.0 0
ae 1 1.0 0
ab 0 1.0 0
ae 0 2.5 0
ab 1 1.0 0
ae 1 2.5 0
EOF

wait_for '"window":5,' "$Out"

# Truncate in place (copytruncate rotation): same inode shrinks to
# zero, then a shorter third segment is appended.  The retired segment
# flushes global window 6; the new one reports 7 and, at exit, 8.
: > "$Trace"
sleep 0.5
cat >> "$Trace" <<'EOF'
LIMATRACE 1
procs 2
region 0 loop
activity 0 comp
re 0 0.0 0
re 1 0.0 0
ab 0 0.0 0
ae 0 1.0 0
ab 1 0.0 0
ae 1 1.0 0
ab 0 1.0 0
ae 0 1.5 0
ab 1 1.0 0
ae 1 1.5 0
EOF

wait_for '"window":7,' "$Out"

kill -TERM "$Pid"
Rc=0
wait "$Pid" || Rc=$?
if [ "$Rc" -ne 0 ]; then
  echo "rotation_smoke: monitor exited $Rc after SIGTERM" >&2
  cat "$Out" >&2
  exit 1
fi

# Windows 0..8, each exactly once, strictly increasing.
Indices=$(grep '"msg":"window"' "$Out" |
  sed 's/.*"window":\([0-9][0-9]*\),.*/\1/')
Got=$(printf '%s\n' "$Indices" | tr '\n' ' ' | sed 's/ $//')
Want="0 1 2 3 4 5 6 7 8"
if [ "$Got" != "$Want" ]; then
  echo "rotation_smoke: expected windows '$Want', got '$Got'" >&2
  cat "$Out" >&2
  exit 1
fi

# Both reopen reasons must be counted in the metrics dump.
if ! grep -q 'lima_reopen_total{reason="rotate"} 1' "$Prom" ||
   ! grep -q 'lima_reopen_total{reason="truncate"} 1' "$Prom"; then
  echo "rotation_smoke: missing lima_reopen_total counters" >&2
  cat "$Prom" >&2
  exit 1
fi
sh "$Checker" "$Prom"

# The checkpoint recorded the final segment base and the last window.
grep -q '^LIMACKPT 1$' "$Ck"
grep -q '^base 7$' "$Ck"
grep -q '^reported 8$' "$Ck"
grep -q '^emitted 9$' "$Ck"

# Restart against the final trace with the checkpoint: every window it
# can compute was already reported, so the replay must emit none, yet
# --min-windows 9 still passes on the restored count.
Out2="$Work/monitor2.out"
"$Monitor" "$Trace" --window 1 --log-json --checkpoint "$Ck" \
    --min-windows 9 > "$Out2" 2>&1
Rerun=$(grep -c '"msg":"window"' "$Out2" || true)
if [ "$Rerun" -ne 0 ]; then
  echo "rotation_smoke: restart re-reported $Rerun windows" >&2
  cat "$Out2" >&2
  exit 1
fi
grep -q '"msg":"checkpoint restored"' "$Out2"

echo "rotation_smoke: OK (9 windows once each across 3 segments)"
