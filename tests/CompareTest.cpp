//===- tests/CompareTest.cpp - run-comparison tests -----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Compare.h"
#include "core/PaperDataset.h"
#include "core/Rebalance.h"
#include "stats/Bootstrap.h"
#include "stats/Descriptive.h"
#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace lima;
using namespace lima::core;

namespace {

MeasurementCube makeCube(double Skew) {
  MeasurementCube Cube({"solve", "io"}, {"computation"}, 4);
  const double Base[4] = {1.0, 1.0, 1.0, 1.0};
  for (unsigned P = 0; P != 4; ++P) {
    Cube.at(0, 0, P) = Base[P] + (P == 3 ? Skew : 0.0);
    Cube.at(1, 0, P) = 0.1;
  }
  return Cube;
}

} // namespace

TEST(CompareTest, DetectsImprovement) {
  MeasurementCube Before = makeCube(2.0);
  MeasurementCube After = makeCube(0.0);
  RunComparison Comparison = cantFail(compareRuns(Before, After));
  EXPECT_EQ(Comparison.Regions[0].Verdict, RegionVerdict::Improved);
  EXPECT_EQ(Comparison.Regions[1].Verdict, RegionVerdict::Unchanged);
  EXPECT_GT(Comparison.Speedup, 1.0);
}

TEST(CompareTest, DetectsRegression) {
  MeasurementCube Before = makeCube(0.0);
  MeasurementCube After = makeCube(2.0);
  RunComparison Comparison = cantFail(compareRuns(Before, After));
  EXPECT_EQ(Comparison.Regions[0].Verdict, RegionVerdict::Regressed);
  EXPECT_LT(Comparison.Speedup, 1.0);
}

TEST(CompareTest, IdenticalRunsUnchanged) {
  MeasurementCube Cube = makeCube(1.0);
  RunComparison Comparison = cantFail(compareRuns(Cube, Cube));
  for (const RegionDelta &Delta : Comparison.Regions)
    EXPECT_EQ(Delta.Verdict, RegionVerdict::Unchanged);
  EXPECT_DOUBLE_EQ(Comparison.Speedup, 1.0);
}

TEST(CompareTest, RejectsMismatchedShapes) {
  MeasurementCube A({"x"}, {"computation"}, 2);
  A.at(0, 0, 0) = 1.0;
  MeasurementCube B({"y"}, {"computation"}, 2);
  B.at(0, 0, 0) = 1.0;
  EXPECT_TRUE(testutil::failed(compareRuns(A, B)));
}

TEST(CompareTest, DifferentProcCountsStillComparable) {
  MeasurementCube Before = makeCube(2.0);
  MeasurementCube After({"solve", "io"}, {"computation"}, 8);
  for (unsigned P = 0; P != 8; ++P) {
    After.at(0, 0, P) = 0.5;
    After.at(1, 0, P) = 0.05;
  }
  RunComparison Comparison = cantFail(compareRuns(Before, After));
  EXPECT_EQ(Comparison.Regions[0].Verdict, RegionVerdict::Improved);
}

TEST(CompareTest, RebalanceRepairVerifiesAsImproved) {
  // The paper cube, repaired on loop 1, must verify as improved there
  // and unchanged elsewhere — the closing step of the tuning cycle.
  MeasurementCube Before = paper::buildCube();
  RebalanceOptions Options;
  Options.TargetIndex = 0.005;
  MeasurementCube After = applyRebalance(
      Before, planRebalance(Before, 0, paper::Computation, Options));
  After = applyRebalance(
      After, planRebalance(After, 0, paper::Collective, Options));

  RunComparison Comparison = cantFail(compareRuns(Before, After));
  EXPECT_EQ(Comparison.Regions[0].Verdict, RegionVerdict::Improved);
  for (size_t I = 1; I != Comparison.Regions.size(); ++I)
    EXPECT_EQ(Comparison.Regions[I].Verdict, RegionVerdict::Unchanged)
        << "loop " << I + 1;
}

TEST(CompareTest, TableRendersVerdicts) {
  MeasurementCube Before = makeCube(2.0);
  MeasurementCube After = makeCube(0.0);
  RunComparison Comparison = cantFail(compareRuns(Before, After));
  std::string Out = makeComparisonTable(Before, Comparison).toString();
  EXPECT_NE(Out.find("improved"), std::string::npos);
  EXPECT_NE(Out.find("speedup"), std::string::npos);
  EXPECT_NE(Out.find("solve"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Bootstrap confidence intervals
//===----------------------------------------------------------------------===//

TEST(BootstrapTest, IntervalBracketsTheEstimateForStableStatistics) {
  std::vector<double> Times = {1.0, 1.2, 0.9, 1.1, 1.05, 0.95, 1.0, 1.1};
  auto Interval = stats::bootstrapImbalanceCI(Times);
  EXPECT_LE(Interval.Lower, Interval.Upper);
  EXPECT_GE(Interval.Estimate, Interval.Lower * 0.5);
  EXPECT_GT(Interval.Upper, 0.0);
}

TEST(BootstrapTest, ConstantSampleHasDegenerateInterval) {
  std::vector<double> Times(8, 3.0);
  auto Interval = stats::bootstrapImbalanceCI(Times);
  EXPECT_DOUBLE_EQ(Interval.Estimate, 0.0);
  EXPECT_DOUBLE_EQ(Interval.Lower, 0.0);
  EXPECT_DOUBLE_EQ(Interval.Upper, 0.0);
}

TEST(BootstrapTest, SkewedSampleExcludesZero) {
  std::vector<double> Times = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0};
  auto Interval = stats::bootstrapImbalanceCI(Times);
  EXPECT_GT(Interval.Estimate, 0.3);
  // Resamples dropping the outlier pull the lower bound down, but the
  // upper bound stays high.
  EXPECT_GT(Interval.Upper, 0.3);
}

TEST(BootstrapTest, DeterministicForFixedSeed) {
  std::vector<double> Times = {1.0, 2.0, 3.0, 4.0};
  auto A = stats::bootstrapImbalanceCI(Times);
  auto B = stats::bootstrapImbalanceCI(Times);
  EXPECT_DOUBLE_EQ(A.Lower, B.Lower);
  EXPECT_DOUBLE_EQ(A.Upper, B.Upper);
}

TEST(BootstrapTest, GenericStatisticMeanCoverage) {
  // Bootstrap the mean of a uniform sample: the true mean must fall in
  // the 95% interval (deterministic seed, so no flakiness).
  std::vector<double> Sample;
  for (int I = 0; I != 100; ++I)
    Sample.push_back(static_cast<double>(I % 10));
  auto Interval = stats::bootstrapCI(
      Sample,
      [](const std::vector<double> &V) { return stats::mean(V); });
  EXPECT_LT(Interval.Lower, 4.5);
  EXPECT_GT(Interval.Upper, 4.5);
  EXPECT_NEAR(Interval.Estimate, 4.5, 1e-12);
}

TEST(BootstrapTest, WiderConfidenceWidensInterval) {
  std::vector<double> Times = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  stats::BootstrapOptions Narrow;
  Narrow.Confidence = 0.5;
  stats::BootstrapOptions Wide;
  Wide.Confidence = 0.99;
  auto A = stats::bootstrapImbalanceCI(Times, Narrow);
  auto B = stats::bootstrapImbalanceCI(Times, Wide);
  EXPECT_GE(B.Upper - B.Lower, A.Upper - A.Lower);
}
