//===- tests/TestHelpers.h - shared test utilities --------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for testing fallible APIs under the checked-error discipline:
/// a failure Error/Expected must be consumed before destruction, so
/// "expect this to fail" assertions go through these helpers.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TESTS_TESTHELPERS_H
#define LIMA_TESTS_TESTHELPERS_H

#include "support/Error.h"
#include <string>

namespace lima {
namespace testutil {

/// True when \p E holds a failure; consumes it either way.
inline bool failed(Error E) {
  if (E) {
    E.consume();
    return true;
  }
  return false;
}

/// True when \p V holds an error; consumes the error.
template <typename T> bool failed(Expected<T> V) {
  if (V)
    return false;
  V.takeError().consume();
  return true;
}

/// The failure message of \p E ("" for success).
inline std::string messageOf(Error E) {
  if (E)
    return E.message();
  return std::string();
}

/// The failure message of \p V ("" for success).
template <typename T> std::string messageOf(Expected<T> V) {
  return messageOf(V.takeError());
}

} // namespace testutil
} // namespace lima

#endif // LIMA_TESTS_TESTHELPERS_H
