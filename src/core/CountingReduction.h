//===- core/CountingReduction.h - Counting-parameter cubes ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "counting parameters" of Section 2 of the paper: besides timings,
/// the performance of a parallel program is characterized by counts —
/// number of messages, bytes sent/received, and so on.  The paper
/// focuses on timings "not to clutter the presentation"; this module
/// supplies the counting side.  A counting metric reduces a trace to a
/// MeasurementCube whose cells are per-(region, processor) counts, so
/// the entire dissimilarity machinery (standardization, indices of
/// dispersion, views, pattern diagrams) applies unchanged to counts.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_COUNTINGREDUCTION_H
#define LIMA_CORE_COUNTINGREDUCTION_H

#include "core/Measurement.h"
#include "support/Error.h"
#include "trace/Trace.h"
#include <string_view>

namespace lima {
namespace core {

/// Counting metrics derivable from a message-passing trace.
enum class CountingMetric {
  /// Point-to-point messages sent.
  MessagesSent,
  /// Point-to-point payload bytes sent.
  BytesSent,
  /// Point-to-point messages received.
  MessagesReceived,
  /// Point-to-point payload bytes received.
  BytesReceived,
};

/// Human-readable metric name ("messages-sent", ...).
std::string_view countingMetricName(CountingMetric Metric);

/// Reduces \p T to a cube of \p Metric counts: one region per trace
/// region, a single pseudo-activity named after the metric, one column
/// per processor.  Message events are attributed to the region open on
/// the sending (receiving) processor at event time; events outside any
/// region are dropped.  Runs trace validation first.
///
/// The resulting cube's "times" are counts; the region/activity views
/// and pattern diagrams operate on it unchanged because the methodology
/// only relies on non-negativity and standardization.
Expected<MeasurementCube> reduceTraceCounts(const trace::Trace &T,
                                            CountingMetric Metric);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_COUNTINGREDUCTION_H
