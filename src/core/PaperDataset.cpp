//===- core/PaperDataset.cpp - Published-data reconstruction --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Share-vector construction.  For each (loop, activity) cell with
// published total t_ij and dispersion ID_ij, per-processor shares are
// built as x_p = 1/P + ID_ij * u_p with a direction u satisfying
// sum(u) = 0 and |u| = 1, so that sum(x) = 1 and the Euclidean index of
// dispersion of x equals ID_ij *exactly*.  The direction shapes who is
// high/low, which is how the figures' patterns and the processor-view
// findings are reproduced:
//
//  * pinnedDirection fixes one processor's component to a chosen value
//    and spreads the remainder over two levels — used to give processor 2
//    its computation deficit / collective surplus in loop 1 (solving the
//    published ID_P = 0.25754 and 15.93 s wall clock gives components
//    -0.683 and +0.243), and to pin the most-imbalanced processor of the
//    other loops;
//  * layeredDirection places explicit raw levels — used for Figure 1's
//    loop-4 "five processors high" and loop-6 "eleven processors low";
//  * waveDirection alternates +/- evenly — used where Figure 2 shows
//    balanced behavior.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "support/Compiler.h"
#include "support/MathUtils.h"
#include <cassert>
#include <cmath>

using namespace lima;
using namespace lima::core;
using namespace lima::core::paper;

const std::array<std::array<double, NumActivities>, NumLoops> &
paper::table1() {
  static const std::array<std::array<double, NumActivities>, NumLoops> T = {{
      // computation, point-to-point, collective, synchronization
      {12.24, 0.0, 6.75, 0.061},  // loop 1
      {7.90, 0.0, 6.32, 0.0},     // loop 2
      {5.22, 5.68, 0.0, 0.0},     // loop 3
      {8.03, 2.51, 0.0, 0.0},     // loop 4
      {7.53, 0.07, 1.43, 0.011},  // loop 5
      {0.36, 0.33, 0.0, 0.002},   // loop 6
      {0.28, 0.0, 0.03, 0.0},     // loop 7
  }};
  return T;
}

const std::array<std::array<double, NumActivities>, NumLoops> &
paper::table2() {
  static const std::array<std::array<double, NumActivities>, NumLoops> T = {{
      {0.03674, 0.0, 0.06793, 0.12870},     // loop 1
      {0.01095, 0.0, 0.00318, 0.0},         // loop 2
      {0.00672, 0.02833, 0.0, 0.0},         // loop 3
      {0.01615, 0.10742, 0.0, 0.0},         // loop 4
      {0.00933, 0.08872, 0.04907, 0.30571}, // loop 5
      {0.05017, 0.23200, 0.0, 0.16163},     // loop 6
      {0.00719, 0.0, 0.01138, 0.0},         // loop 7
  }};
  return T;
}

const std::array<ActivitySummaryRow, NumActivities> &paper::table3() {
  static const std::array<ActivitySummaryRow, NumActivities> T = {{
      {0.01904, 0.01132}, // computation
      {0.05973, 0.00734}, // point-to-point
      {0.03781, 0.00786}, // collective
      {0.15559, 0.00016}, // synchronization
  }};
  return T;
}

const std::array<RegionSummaryRow, NumLoops> &paper::table4() {
  static const std::array<RegionSummaryRow, NumLoops> T = {{
      {0.04809, 0.01311}, // loop 1
      {0.00750, 0.00152}, // loop 2
      {0.01798, 0.00280}, // loop 3
      {0.03790, 0.00571}, // loop 4
      {0.01655, 0.00214}, // loop 5
      {0.13734, 0.00135}, // loop 6
      {0.00760, 0.00003}, // loop 7
  }};
  return T;
}

const ProcessorFindings &paper::processorFindings() {
  static const ProcessorFindings F;
  return F;
}

namespace {

using Direction = std::array<double, NumProcs>;

/// Verifies sum(u) == 0 and |u| == 1 within tolerance.
void checkDirection(const Direction &U) {
  KahanSum Sum, Norm;
  for (double V : U) {
    Sum.add(V);
    Norm.add(V * V);
  }
  assert(std::fabs(Sum.total()) < 1e-9 && "direction must sum to zero");
  assert(std::fabs(Norm.total() - 1.0) < 1e-9 && "direction must be unit");
  (void)Sum;
  (void)Norm;
}

/// Direction with component \p Gamma pinned at \p Pinned; the remaining
/// P-1 components take two levels (the first \p HighCount remaining slots
/// the higher one) solving sum(u) = 0, |u| = 1.
Direction pinnedDirection(unsigned Pinned, double Gamma, unsigned HighCount) {
  assert(Pinned < NumProcs && "pinned processor out of range");
  assert(std::fabs(Gamma) < 1.0 && "pinned component must have |g| < 1");
  unsigned N1 = HighCount;
  unsigned N2 = NumProcs - 1 - N1;
  assert(N1 >= 1 && N2 >= 1 && "need both levels populated");
  double S = -Gamma;          // Remaining components must sum to -Gamma.
  double Q = 1.0 - Gamma * Gamma; // ...and carry the remaining norm.
  // Solve N1*a + N2*b = S, N1*a^2 + N2*b^2 = Q with a > b: substitute
  // a = (S - N2*b)/N1 and solve the quadratic for b.
  double A = static_cast<double>(N2) * (N1 + N2);
  double B = -2.0 * S * static_cast<double>(N2);
  double C = S * S - static_cast<double>(N1) * Q;
  double Disc = B * B - 4.0 * A * C;
  assert(Disc > 0.0 && "pinned direction infeasible (norm too small)");
  double BLow = (-B - std::sqrt(Disc)) / (2.0 * A);
  double ALow = (S - static_cast<double>(N2) * BLow) / static_cast<double>(N1);

  Direction U{};
  U[Pinned] = Gamma;
  unsigned Placed = 0;
  for (unsigned P = 0; P != NumProcs; ++P) {
    if (P == Pinned)
      continue;
    U[P] = Placed < N1 ? ALow : BLow;
    ++Placed;
  }
  checkDirection(U);
  return U;
}

/// Direction from explicit raw levels: mean-centered and normalized.
Direction layeredDirection(const std::array<double, NumProcs> &Raw) {
  KahanSum Sum;
  for (double V : Raw)
    Sum.add(V);
  double Mean = Sum.total() / NumProcs;
  Direction U{};
  KahanSum Norm;
  for (unsigned P = 0; P != NumProcs; ++P) {
    U[P] = Raw[P] - Mean;
    Norm.add(U[P] * U[P]);
  }
  double Scale = std::sqrt(Norm.total());
  assert(Scale > 0.0 && "layered direction must not be constant");
  for (double &V : U)
    V /= Scale;
  checkDirection(U);
  return U;
}

/// Evenly alternating +/- direction (maximally spread, "balanced" look).
Direction waveDirection() {
  Direction U{};
  double Level = 1.0 / std::sqrt(static_cast<double>(NumProcs));
  for (unsigned P = 0; P != NumProcs; ++P)
    U[P] = (P % 2 == 0 ? Level : -Level);
  checkDirection(U);
  return U;
}

/// Figure 1, loop 4: five processors in the upper band, the rest spread
/// through the middle (slight jitter keeps them off the exact minimum).
Direction loop4ComputationDirection() {
  std::array<double, NumProcs> Raw{};
  const bool High[NumProcs] = {false, false, false, true, false, true,
                               false, false, true,  false, true, false,
                               false, true,  false, false};
  for (unsigned P = 0; P != NumProcs; ++P) {
    if (High[P])
      Raw[P] = 1.0;
    else
      Raw[P] = -0.4545 + (P % 2 == 0 ? 0.10 : -0.10);
  }
  return layeredDirection(Raw);
}

/// Figure 1, loop 6: eleven processors in the lower band.
Direction loop6ComputationDirection() {
  std::array<double, NumProcs> Raw{};
  const bool High[NumProcs] = {false, false, true,  false, false, false,
                               true,  false, false, true,  false, false,
                               true,  false, false, true};
  for (unsigned P = 0; P != NumProcs; ++P) {
    if (High[P])
      Raw[P] = 2.2;
    else
      Raw[P] = -1.0 + (P % 2 == 0 ? 0.04 : -0.04);
  }
  return layeredDirection(Raw);
}

/// Fills cube cell (Loop, Act) from the published total and index with
/// the given direction.
void fillCell(MeasurementCube &Cube, size_t Loop, size_t Act,
              const Direction &U) {
  double Total = table1()[Loop][Act];
  double Index = table2()[Loop][Act];
  assert(Total > 0.0 && "filling a cell the paper leaves empty");
  for (unsigned P = 0; P != NumProcs; ++P) {
    double Share = 1.0 / NumProcs + Index * U[P];
    assert(Share >= 0.0 && "infeasible share (direction too extreme)");
    Cube.at(Loop, Act, P) = Share * Total * NumProcs;
  }
}

} // namespace

MeasurementCube paper::buildCube() {
  std::vector<std::string> Loops;
  for (unsigned I = 1; I <= NumLoops; ++I)
    Loops.push_back("loop" + std::to_string(I));
  std::vector<std::string> Activities = {"computation", "point-to-point",
                                         "collective", "synchronization"};
  MeasurementCube Cube(std::move(Loops), std::move(Activities), NumProcs);
  Cube.setProgramTime(ProgramTime);

  // Loop 1: processor 2 (index 1) computation-starved and
  // collective-heavy; solving the published ID_P = 0.25754 and the
  // 15.93 s wall clock gives the pinned components -0.683 and +0.243.
  fillCell(Cube, 0, Computation, pinnedDirection(1, -0.683, 7));
  fillCell(Cube, 0, Collective, pinnedDirection(1, +0.243, 7));
  fillCell(Cube, 0, Synchronization, pinnedDirection(8, +0.90, 7));

  // Loop 2: most imbalanced processor is number 5 (index 4).
  fillCell(Cube, 1, Computation, pinnedDirection(4, -0.50, 7));
  fillCell(Cube, 1, Collective, waveDirection());

  // Loop 3: processor 1 (index 0) point-to-point heavy -> its most
  // imbalanced loop together with loop 7.
  fillCell(Cube, 2, Computation, waveDirection());
  fillCell(Cube, 2, PointToPoint, pinnedDirection(0, +0.90, 7));

  // Loop 4: Figure 1 shows five processors in the upper computation
  // band; processor 11 (index 10) dominates point-to-point.
  fillCell(Cube, 3, Computation, loop4ComputationDirection());
  fillCell(Cube, 3, PointToPoint, pinnedDirection(10, +0.70, 7));

  // Loop 5: synchronization is extremely spread (ID = 0.30571).
  fillCell(Cube, 4, Computation, pinnedDirection(6, -0.30, 7));
  fillCell(Cube, 4, PointToPoint, pinnedDirection(12, +0.80, 7));
  fillCell(Cube, 4, Collective, waveDirection());
  fillCell(Cube, 4, Synchronization, pinnedDirection(12, +0.90, 7));

  // Loop 6: Figure 1 shows eleven processors in the lower computation
  // band; processor 15 (index 14) dominates the tiny p2p/sync work.
  fillCell(Cube, 5, Computation, loop6ComputationDirection());
  fillCell(Cube, 5, PointToPoint, pinnedDirection(14, +0.85, 7));
  fillCell(Cube, 5, Synchronization, pinnedDirection(14, +0.90, 7));

  // Loop 7: processor 1 (index 0) again dominates the collective.
  fillCell(Cube, 6, Computation, waveDirection());
  fillCell(Cube, 6, Collective, pinnedDirection(0, +0.90, 7));

  cantFail(Cube.validate());
  return Cube;
}
