//===- core/CountingReduction.cpp - Counting-parameter cubes --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/CountingReduction.h"
#include "support/Compiler.h"
#include <vector>

using namespace lima;
using namespace lima::core;
using trace::Event;
using trace::EventKind;

std::string_view core::countingMetricName(CountingMetric Metric) {
  switch (Metric) {
  case CountingMetric::MessagesSent:
    return "messages-sent";
  case CountingMetric::BytesSent:
    return "bytes-sent";
  case CountingMetric::MessagesReceived:
    return "messages-received";
  case CountingMetric::BytesReceived:
    return "bytes-received";
  }
  lima_unreachable("unknown CountingMetric");
}

Expected<MeasurementCube> core::reduceTraceCounts(const trace::Trace &T,
                                                  CountingMetric Metric) {
  if (auto Err = T.validate())
    return Err;
  if (T.numRegions() == 0)
    return makeStringError("trace declares no regions");

  bool WantSend = Metric == CountingMetric::MessagesSent ||
                  Metric == CountingMetric::BytesSent;
  bool WantBytes = Metric == CountingMetric::BytesSent ||
                   Metric == CountingMetric::BytesReceived;

  MeasurementCube Cube(T.regionNames(),
                       {std::string(countingMetricName(Metric))},
                       T.numProcs());
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc) {
    // Messages are attributed to the innermost open region.
    std::vector<uint32_t> Stack;
    for (const Event &E : T.events(Proc)) {
      switch (E.Kind) {
      case EventKind::RegionEnter:
        Stack.push_back(E.Id);
        break;
      case EventKind::RegionExit:
        Stack.pop_back();
        break;
      case EventKind::MessageSend:
      case EventKind::MessageRecv: {
        bool IsSend = E.Kind == EventKind::MessageSend;
        if (IsSend != WantSend || Stack.empty())
          break;
        Cube.accumulate(Stack.back(), 0, Proc,
                        WantBytes ? static_cast<double>(E.Bytes) : 1.0);
        break;
      }
      case EventKind::ActivityBegin:
      case EventKind::ActivityEnd:
        break;
      }
    }
  }
  return Cube;
}
