//===- core/RegionClustering.h - Grouping similar code regions --*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The region-grouping step of Section 2: "each code region i is
/// described by its wall clock times t_ij and is represented in a
/// K-dimensional space.  Clustering partitions this space into groups of
/// code regions with homogeneous characteristics."  k-means as in the
/// paper, with hierarchical clustering available as a cross-check.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_REGIONCLUSTERING_H
#define LIMA_CORE_REGIONCLUSTERING_H

#include "cluster/KMeans.h"
#include "core/Measurement.h"
#include <vector>

namespace lima {
namespace core {

/// Region-clustering configuration.
struct RegionClusteringOptions {
  /// Cluster count (the paper's example yields 2 groups).
  size_t K = 2;
  /// Standardize each activity dimension to zero mean / unit variance
  /// before clustering, as in the workload-characterization practice the
  /// paper builds on (the authors' MEDEA tool).  Without it, raw seconds
  /// let the dominant activity drown the others: on the paper's data,
  /// unstandardized k-means narrowly prefers {1,2,4,5} / {3,6,7} over
  /// the published {1,2} / rest partition.
  bool StandardizeFeatures = true;
  /// Underlying k-means knobs; K above overrides KMeans.K.
  cluster::KMeansOptions KMeans;
};

/// Result of clustering regions by activity profile.
struct RegionClusters {
  /// Cluster id per region.
  std::vector<size_t> Assignments;
  /// Regions in each cluster, region-ordered.
  std::vector<std::vector<size_t>> Groups;
  /// Mean silhouette of the partition.
  double Silhouette = 0.0;
  /// k-means inertia.
  double Inertia = 0.0;
};

/// The feature matrix clustering runs on: one row per region, one column
/// per activity (t_ij), optionally z-score standardized per column.
/// Constant columns standardize to zero.
std::vector<std::vector<double>>
regionFeatureMatrix(const MeasurementCube &Cube, bool Standardize);

/// Clusters the cube's regions, each described by its t_ij vector.
Expected<RegionClusters>
clusterRegions(const MeasurementCube &Cube,
               const RegionClusteringOptions &Options = {});

} // namespace core
} // namespace lima

#endif // LIMA_CORE_REGIONCLUSTERING_H
