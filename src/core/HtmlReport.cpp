//===- core/HtmlReport.cpp - Self-contained HTML reports ------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/HtmlReport.h"
#include "support/Format.h"

using namespace lima;
using namespace lima::core;

std::string core::escapeHtml(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

namespace {

/// Horizontal SVG bar chart of labeled values (max value spans the
/// full width).
std::string barChart(const std::vector<std::string> &Labels,
                     const std::vector<double> &Values,
                     const std::string &Color) {
  const int BarHeight = 18, Gap = 6, LabelWidth = 150, ChartWidth = 420;
  double Max = 0.0;
  for (double V : Values)
    Max = std::max(Max, V);
  int Height = static_cast<int>(Values.size()) * (BarHeight + Gap);
  std::string Svg = "<svg width=\"" +
                    std::to_string(LabelWidth + ChartWidth + 90) +
                    "\" height=\"" + std::to_string(Height) +
                    "\" xmlns=\"http://www.w3.org/2000/svg\">";
  for (size_t I = 0; I != Values.size(); ++I) {
    int Y = static_cast<int>(I) * (BarHeight + Gap);
    double Fraction = Max > 0.0 ? Values[I] / Max : 0.0;
    int Width = static_cast<int>(Fraction * ChartWidth);
    Svg += "<text x=\"0\" y=\"" + std::to_string(Y + BarHeight - 4) +
           "\" font-size=\"12\" font-family=\"sans-serif\">" +
           escapeHtml(Labels[I]) + "</text>";
    Svg += "<rect x=\"" + std::to_string(LabelWidth) + "\" y=\"" +
           std::to_string(Y) + "\" width=\"" + std::to_string(Width) +
           "\" height=\"" + std::to_string(BarHeight) + "\" fill=\"" +
           Color + "\"/>";
    Svg += "<text x=\"" + std::to_string(LabelWidth + Width + 6) +
           "\" y=\"" + std::to_string(Y + BarHeight - 4) +
           "\" font-size=\"11\" font-family=\"monospace\">" +
           formatFixed(Values[I], 5) + "</text>";
  }
  Svg += "</svg>";
  return Svg;
}

/// SVG heat map of one pattern diagram.
std::string patternSvg(const PatternDiagram &Diagram,
                       const MeasurementCube &Cube) {
  const int Cell = 16, LabelWidth = 130;
  auto color = [](PatternCategory Category) {
    switch (Category) {
    case PatternCategory::Maximum:
      return "#b40000";
    case PatternCategory::UpperBand:
      return "#ff8c00";
    case PatternCategory::Middle:
      return "#ebebeb";
    case PatternCategory::LowerBand:
      return "#78b4ff";
    case PatternCategory::Minimum:
      return "#0000a0";
    }
    return "#000000";
  };
  size_t Rows = Diagram.Cells.size();
  size_t Cols = Rows == 0 ? 0 : Diagram.Cells.front().size();
  std::string Svg =
      "<svg width=\"" +
      std::to_string(LabelWidth + static_cast<int>(Cols) * Cell) +
      "\" height=\"" + std::to_string(static_cast<int>(Rows) * Cell) +
      "\" xmlns=\"http://www.w3.org/2000/svg\">";
  for (size_t R = 0; R != Rows; ++R) {
    Svg += "<text x=\"0\" y=\"" +
           std::to_string(static_cast<int>(R) * Cell + Cell - 4) +
           "\" font-size=\"11\" font-family=\"sans-serif\">" +
           escapeHtml(Cube.regionName(Diagram.Regions[R])) + "</text>";
    for (size_t C = 0; C != Cols; ++C)
      Svg += "<rect x=\"" +
             std::to_string(LabelWidth + static_cast<int>(C) * Cell) +
             "\" y=\"" + std::to_string(static_cast<int>(R) * Cell) +
             "\" width=\"" + std::to_string(Cell - 1) + "\" height=\"" +
             std::to_string(Cell - 1) + "\" fill=\"" +
             color(Diagram.Cells[R][C]) + "\"/>";
  }
  Svg += "</svg>";
  return Svg;
}

/// One HTML table from cube columns.
void appendTable(std::string &Html, const std::string &Caption,
                 const std::vector<std::string> &Header,
                 const std::vector<std::vector<std::string>> &Rows) {
  Html += "<table><caption>" + escapeHtml(Caption) + "</caption><tr>";
  for (const std::string &Cell : Header)
    Html += "<th>" + escapeHtml(Cell) + "</th>";
  Html += "</tr>";
  for (const auto &Row : Rows) {
    Html += "<tr>";
    for (const std::string &Cell : Row)
      Html += "<td>" + escapeHtml(Cell) + "</td>";
    Html += "</tr>";
  }
  Html += "</table>";
}

std::string timeCell(double Seconds) {
  return Seconds > 0.0 ? formatFixed(Seconds, 3) : "-";
}

std::string indexCell(double Index) {
  return Index > 0.0 ? formatFixed(Index, 5) : "-";
}

} // namespace

std::string core::renderHtmlReport(const MeasurementCube &Cube,
                                   const AnalysisResult &Analysis,
                                   const HtmlReportOptions &Options) {
  std::string Html =
      "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>" +
      escapeHtml(Options.Title) +
      "</title><style>"
      "body{font-family:sans-serif;max-width:960px;margin:2em auto;}"
      "table{border-collapse:collapse;margin:1em 0;}"
      "caption{font-weight:bold;text-align:left;padding:4px 0;}"
      "th,td{border:1px solid #bbb;padding:3px 9px;font-size:13px;"
      "text-align:right;}"
      "th:first-child,td:first-child{text-align:left;}"
      "h2{border-bottom:1px solid #ddd;padding-bottom:4px;}"
      ".finding{margin:6px 0;padding:6px 10px;border-left:4px solid;}"
      ".critical{border-color:#b40000;background:#fff0f0;}"
      ".warning{border-color:#ff8c00;background:#fff8ee;}"
      ".advice{border-color:#2a7ae2;background:#f0f6ff;}"
      ".info{border-color:#999;background:#f6f6f6;}"
      "</style></head><body><h1>" +
      escapeHtml(Options.Title) + "</h1>";

  // Overview.
  EfficiencyReport Efficiency = computeEfficiency(Cube);
  Html += "<p>" + std::to_string(Cube.numRegions()) + " regions, " +
          std::to_string(Cube.numActivities()) + " activities, " +
          std::to_string(Cube.numProcs()) +
          " processors; program time " +
          formatFixed(Cube.programTime(), 3) + " s (instrumented " +
          formatPercent(Cube.instrumentedTotal() / Cube.programTime()) +
          "); load balance " + formatFixed(Efficiency.LoadBalance, 3) +
          ", parallel efficiency " +
          formatFixed(Efficiency.ParallelEfficiency, 3) + ".</p>";

  // Table 1.
  {
    std::vector<std::string> Header = {"region", "overall"};
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      Header.push_back(Cube.activityName(J));
    std::vector<std::vector<std::string>> Rows;
    for (const RegionTotal &Row : Analysis.Profile.Regions) {
      std::vector<std::string> Cells = {Cube.regionName(Row.Region),
                                        formatFixed(Row.Time, 3)};
      for (double Tij : Row.ByActivity)
        Cells.push_back(timeCell(Tij));
      Rows.push_back(std::move(Cells));
    }
    Html += "<h2>Wall-clock breakdown</h2>";
    appendTable(Html, "Per-region wall clock and activity breakdown (s)",
                Header, Rows);
  }

  // Dissimilarity matrix.
  {
    std::vector<std::string> Header = {"region"};
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      Header.push_back(Cube.activityName(J));
    std::vector<std::vector<std::string>> Rows;
    for (size_t I = 0; I != Cube.numRegions(); ++I) {
      std::vector<std::string> Cells = {Cube.regionName(I)};
      for (size_t J = 0; J != Cube.numActivities(); ++J)
        Cells.push_back(indexCell(Analysis.Activities.Dissimilarity[I][J]));
      Rows.push_back(std::move(Cells));
    }
    Html += "<h2>Dissimilarity indices</h2>";
    appendTable(Html, "ID_ij across processors", Header, Rows);
  }

  // Scaled index bar charts.
  {
    std::vector<std::string> RegionLabels, ActivityLabels;
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      RegionLabels.push_back(Cube.regionName(I));
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      ActivityLabels.push_back(Cube.activityName(J));
    Html += "<h2>Scaled indices (tuning relevance)</h2>";
    Html += "<p>SID_C per region:</p>" +
            barChart(RegionLabels, Analysis.Regions.ScaledIndex,
                     "#2a7ae2");
    Html += "<p>SID_A per activity:</p>" +
            barChart(ActivityLabels, Analysis.Activities.ScaledIndex,
                     "#2aa876");
  }

  // Pattern heat maps.
  if (Options.IncludePatterns && !Analysis.Patterns.empty()) {
    Html += "<h2>Per-processor patterns</h2>"
            "<p>red = maximum / upper band, blue = minimum / lower band, "
            "gray = middle; columns are processors 1.." +
            std::to_string(Cube.numProcs()) + ".</p>";
    for (const PatternDiagram &Diagram : Analysis.Patterns) {
      Html += "<h3>" + escapeHtml(Cube.activityName(Diagram.Activity)) +
              "</h3>" + patternSvg(Diagram, Cube);
    }
  }

  // Diagnosis.
  if (Options.IncludeDiagnosis) {
    Html += "<h2>Findings</h2>";
    std::vector<Diagnosis> Findings = diagnose(Cube, Analysis);
    if (Findings.empty())
      Html += "<p>No findings: the program looks well balanced.</p>";
    for (const Diagnosis &D : Findings) {
      Html += "<div class=\"finding " +
              std::string(severityName(D.Level)) + "\"><b>[" +
              std::string(severityName(D.Level)) + "] " +
              std::string(diagnosisKindName(D.Kind)) + "</b>: " +
              escapeHtml(D.Explanation) + "<br><i>" +
              escapeHtml(D.Suggestion) + "</i></div>";
    }
  }

  Html += "</body></html>";
  return Html;
}
