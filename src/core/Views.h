//===- core/Views.h - Processor, activity and region views ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three complementary dissimilarity views of Section 3 of the paper.
/// All are built from standardized wall-clock times and a configurable
/// index of dispersion (Euclidean distance by default, as the paper
/// argues is best suited):
///
///  * Processor view — ID_P[i][p]: the distance between processor p's
///    standardized activity mix inside region i and the mean mix;
///    identifies the most frequently imbalanced processor and the one
///    imbalanced for the longest time.
///  * Activity view — ID[i][j] (spread across processors of t[i][j][.]),
///    summarized per activity as ID_A[j] = sum_i (t_ij / T_j) ID_ij and
///    scaled as SID_A[j] = (T_j / T) ID_A[j].
///  * Code-region view — ID_C[i] = sum_j (t_ij / t_i) ID_ij, scaled as
///    SID_C[i] = (t_i / T) ID_C[i].
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_VIEWS_H
#define LIMA_CORE_VIEWS_H

#include "core/Measurement.h"
#include "stats/Dispersion.h"
#include <vector>

namespace lima {
namespace core {

/// Options shared by the view computations.
struct ViewOptions {
  /// Index-of-dispersion family (the paper uses Euclidean).
  stats::DispersionKind Kind = stats::DispersionKind::Euclidean;
};

/// The ID_ij matrix: dissimilarity across processors of the times spent
/// in activity j within region i.  Zero when no processor performed the
/// activity in that region.
///
/// Entry [I][J] corresponds to the paper's Table 2.
std::vector<std::vector<double>>
computeDissimilarityMatrix(const MeasurementCube &Cube,
                           const ViewOptions &Options = {});

//===----------------------------------------------------------------------===//
// Processor view
//===----------------------------------------------------------------------===//

/// Result of the processor view.
struct ProcessorView {
  /// ID_P[i][p]: processor p's deviation from the mean activity mix in
  /// region i.  Regions where a processor did no work contribute 0.
  std::vector<std::vector<double>> Index;
  /// For each region, the processor with the largest ID_P (the "most
  /// imbalanced" processor of that region).
  std::vector<unsigned> MostImbalancedProc;
  /// How many regions each processor is the most imbalanced of.
  std::vector<unsigned> TimesMostImbalanced;
  /// The processor that is most imbalanced on the largest number of
  /// regions (paper: processor 1, on loops 3 and 7).
  unsigned MostFrequentlyImbalanced = 0;
  /// For each processor, its total wall clock over the regions where it
  /// is the most imbalanced one.
  std::vector<double> ImbalancedWallClock;
  /// The processor imbalanced for the longest time — largest
  /// ImbalancedWallClock (paper: processor 2 via loop 1, 15.93 s).
  unsigned LongestImbalanced = 0;
};

/// Computes the processor view.  Standardization is per (region,
/// processor): t[i][.][p] is divided by processor p's total time in
/// region i, then compared against the across-processor mean mix.
ProcessorView computeProcessorView(const MeasurementCube &Cube,
                                   const ViewOptions &Options = {});

//===----------------------------------------------------------------------===//
// Activity view
//===----------------------------------------------------------------------===//

/// Result of the activity view (the paper's Tables 2 and 3).
struct ActivityView {
  /// ID_ij (Table 2).
  std::vector<std::vector<double>> Dissimilarity;
  /// ID_A[j]: weighted average of ID_ij with weights t_ij / T_j.
  std::vector<double> Index;
  /// SID_A[j] = (T_j / T) * ID_A[j].
  std::vector<double> ScaledIndex;
  /// Activity with the largest ID_A (paper: synchronization).
  size_t MostImbalanced = 0;
  /// Activity with the largest SID_A (paper: computation).
  size_t MostImbalancedScaled = 0;
};

/// Computes the activity view.
ActivityView computeActivityView(const MeasurementCube &Cube,
                                 const ViewOptions &Options = {});

//===----------------------------------------------------------------------===//
// Code-region view
//===----------------------------------------------------------------------===//

/// Result of the code-region view (the paper's Table 4).
struct RegionView {
  /// ID_C[i]: weighted average of ID_ij with weights t_ij / t_i.
  std::vector<double> Index;
  /// SID_C[i] = (t_i / T) * ID_C[i].
  std::vector<double> ScaledIndex;
  /// Region with the largest ID_C (paper: loop 6).
  size_t MostImbalanced = 0;
  /// Region with the largest SID_C (paper: loop 1).
  size_t MostImbalancedScaled = 0;
};

/// Computes the code-region view.
RegionView computeRegionView(const MeasurementCube &Cube,
                             const ViewOptions &Options = {});

} // namespace core
} // namespace lima

#endif // LIMA_CORE_VIEWS_H
