//===- core/ProcessorClustering.cpp - Grouping similar processors ---------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/ProcessorClustering.h"
#include "cluster/ClusterSelection.h"
#include "cluster/Silhouette.h"
#include "stats/Standardize.h"

using namespace lima;
using namespace lima::core;

std::vector<std::vector<double>>
core::processorFeatureMatrix(const MeasurementCube &Cube) {
  unsigned P = Cube.numProcs();
  size_t Columns = Cube.numRegions() * Cube.numActivities();
  std::vector<std::vector<double>> Features(
      P, std::vector<double>(Columns, 0.0));
  size_t Column = 0;
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    for (size_t J = 0; J != Cube.numActivities(); ++J) {
      std::vector<double> Shares =
          stats::toShares(Cube.processorSlice(I, J));
      for (unsigned Proc = 0; Proc != P; ++Proc)
        Features[Proc][Column] = Shares[Proc];
      ++Column;
    }
  return Features;
}

Expected<ProcessorClusters>
core::clusterProcessors(const MeasurementCube &Cube,
                        const ProcessorClusteringOptions &Options) {
  std::vector<std::vector<double>> Features = processorFeatureMatrix(Cube);

  ProcessorClusters Clusters;
  if (Options.K == 0) {
    auto ChoiceOrErr =
        cluster::chooseClusterCount(Features, Options.MaxK, Options.KMeans);
    if (auto Err = ChoiceOrErr.takeError())
      return Err;
    Clusters.Assignments = std::move(ChoiceOrErr->Result.Assignments);
    Clusters.Silhouette = ChoiceOrErr->Silhouette;
  } else {
    cluster::KMeansOptions KOpts = Options.KMeans;
    KOpts.K = Options.K;
    auto ResultOrErr = cluster::kMeans(Features, KOpts);
    if (auto Err = ResultOrErr.takeError())
      return Err;
    Clusters.Assignments = std::move(ResultOrErr->Assignments);
    Clusters.Silhouette =
        cluster::silhouetteScore(Features, Clusters.Assignments);
  }

  size_t K = 0;
  for (size_t Group : Clusters.Assignments)
    K = std::max(K, Group + 1);
  Clusters.Groups.resize(K);
  for (unsigned Proc = 0; Proc != Cube.numProcs(); ++Proc)
    Clusters.Groups[Clusters.Assignments[Proc]].push_back(Proc);
  return Clusters;
}
