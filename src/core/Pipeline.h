//===- core/Pipeline.h - End-to-end analysis facade -------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-down methodology as a single call: coarse-grain profile,
/// region clustering, the three dissimilarity views, pattern diagrams
/// and ranked tuning candidates.  This is the "what expert programmers
/// do when tuning their programs" pipeline the paper's conclusions ask
/// performance tools to automate.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_PIPELINE_H
#define LIMA_CORE_PIPELINE_H

#include "core/Measurement.h"
#include "core/PatternDiagram.h"
#include "core/Profile.h"
#include "core/Ranking.h"
#include "core/RegionClustering.h"
#include "core/Views.h"
#include "support/Error.h"

namespace lima {
namespace core {

/// Pipeline configuration.
struct AnalysisOptions {
  /// Dispersion-index family used by the views.
  ViewOptions Views;
  /// Region clustering (set Clusters to 0 to skip clustering).
  size_t Clusters = 2;
  RegionClusteringOptions Clustering;
  /// Ranking criterion for candidate selection.
  RankingOptions Ranking;
  /// Band fraction of the pattern diagrams.
  double PatternBand = 0.15;
  /// Worker threads (0 = all hardware threads, 1 = serial).  The coarse
  /// profile, the three views and the per-activity pattern diagrams are
  /// independent read-only computations over the cube; each runs as its
  /// own task writing its own result slot, so the analysis is
  /// bit-identical at any thread count.  Propagated to the k-means
  /// assignment step of region clustering.
  unsigned Threads = 0;
};

/// Everything the methodology derives from one measurement cube.
struct AnalysisResult {
  CoarseProfile Profile;
  ActivityView Activities;
  RegionView Regions;
  ProcessorView Processors;
  /// One diagram per activity actually performed somewhere.
  std::vector<PatternDiagram> Patterns;
  /// Region groups (empty when clustering was skipped or failed —
  /// e.g. fewer distinct regions than clusters).
  RegionClusters Clusters;
  bool HasClusters = false;
  /// Tuning candidates among regions ranked by SID_C.
  std::vector<RankedItem> RegionCandidates;
  /// Tuning candidates among activities ranked by SID_A.
  std::vector<RankedItem> ActivityCandidates;
};

/// Runs the full pipeline over \p Cube.  Fails when the cube is invalid
/// or carries no time at all.
Expected<AnalysisResult> analyze(const MeasurementCube &Cube,
                                 const AnalysisOptions &Options = {});

} // namespace core
} // namespace lima

#endif // LIMA_CORE_PIPELINE_H
