//===- core/Rebalance.h - Work redistribution planning ----------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "repair" step of the tuning loop the paper's Section 2 sketches
/// (identify -> localize -> repair -> verify): given the dissimilarity
/// analysis, propose a concrete work redistribution for a region — a
/// sequence of Robin Hood transfers of computation time from the most
/// to the least loaded processor — and *predict* the index of dispersion
/// after each transfer, so the user can decide how far the rebalancing
/// must go before the region stops being a candidate.  Majorization
/// theory guarantees each transfer weakly decreases every Schur-convex
/// index, so the predicted series is monotone.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_REBALANCE_H
#define LIMA_CORE_REBALANCE_H

#include "core/Measurement.h"
#include "stats/Dispersion.h"
#include <vector>

namespace lima {
namespace core {

/// One proposed transfer of work.
struct Transfer {
  /// Processors are 0-based here, like the cube.
  unsigned From = 0;
  unsigned To = 0;
  /// Seconds of the activity's work to move.
  double Seconds = 0.0;
  /// Predicted region dispersion index after this transfer.
  double PredictedIndex = 0.0;
};

/// A rebalancing plan for one (region, activity).
struct RebalancePlan {
  size_t Region = 0;
  size_t Activity = 0;
  /// Index before any transfer.
  double InitialIndex = 0.0;
  /// Proposed transfers, in application order.
  std::vector<Transfer> Transfers;
  /// Predicted index after the full plan.
  double FinalIndex = 0.0;
};

/// Rebalancing knobs.
struct RebalanceOptions {
  /// Stop when the predicted index drops below this.
  double TargetIndex = 0.01;
  /// Never propose more transfers than this.
  unsigned MaxTransfers = 16;
  /// Each transfer moves this fraction of the max-min gap (must be in
  /// (0, 0.5]; 0.5 fully levels the extreme pair each step).
  double StepFraction = 0.5;
  /// Index family used for the predictions.
  stats::DispersionKind Kind = stats::DispersionKind::Euclidean;
};

/// Plans transfers for activity \p Activity of region \p Region.
/// Returns an empty-transfer plan when the slice is already at or below
/// the target.
RebalancePlan planRebalance(const MeasurementCube &Cube, size_t Region,
                            size_t Activity,
                            const RebalanceOptions &Options = {});

/// Applies \p Plan to a copy of \p Cube and returns it — the "verify"
/// input for re-running the analysis.
MeasurementCube applyRebalance(const MeasurementCube &Cube,
                               const RebalancePlan &Plan);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_REBALANCE_H
