//===- core/Compare.h - Before/after run comparison -------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "verification and validation of the achieved performance" step of
/// the paper's tuning cycle: compare two measurement cubes of the same
/// program (before and after a change) region by region — time deltas,
/// index deltas, and a verdict per region (improved / regressed /
/// unchanged) — rendered as a table.  Cubes must agree on the region and
/// activity name sets; processor counts may differ (a before/after on a
/// different machine size is still comparable through the indices).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_COMPARE_H
#define LIMA_CORE_COMPARE_H

#include "core/Measurement.h"
#include "core/Views.h"
#include "support/Error.h"
#include "support/TableFormatter.h"
#include <vector>

namespace lima {
namespace core {

/// Verdict for one region of the comparison.
enum class RegionVerdict { Improved, Regressed, Unchanged };

/// Human-readable verdict name.
std::string_view regionVerdictName(RegionVerdict Verdict);

/// Per-region comparison row.
struct RegionDelta {
  size_t Region = 0;
  double TimeBefore = 0.0;
  double TimeAfter = 0.0;
  double IndexBefore = 0.0;
  double IndexAfter = 0.0;
  RegionVerdict Verdict = RegionVerdict::Unchanged;
};

/// The full comparison.
struct RunComparison {
  std::vector<RegionDelta> Regions;
  double ProgramTimeBefore = 0.0;
  double ProgramTimeAfter = 0.0;
  /// ProgramTimeBefore / ProgramTimeAfter.
  double Speedup = 1.0;
};

/// Comparison thresholds.
struct CompareOptions {
  /// Relative time change below which a region counts as unchanged.
  double TimeTolerance = 0.02;
  /// Absolute index change below which a region counts as unchanged.
  double IndexTolerance = 0.005;
  /// Index family for the per-region dissimilarity.
  ViewOptions Views;
};

/// Compares \p Before and \p After.  Fails when the region or activity
/// name sets differ.
Expected<RunComparison> compareRuns(const MeasurementCube &Before,
                                    const MeasurementCube &After,
                                    const CompareOptions &Options = {});

/// Renders the comparison as a table.
TextTable makeComparisonTable(const MeasurementCube &Before,
                              const RunComparison &Comparison);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_COMPARE_H
