//===- core/HtmlReport.h - Self-contained HTML reports ----------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a complete analysis as a single self-contained HTML document:
/// the four tables, inline-SVG bar charts of the scaled indices, an SVG
/// heat map of the pattern diagrams, the efficiency numbers and the
/// diagnosis findings.  No external assets or scripts — the file opens
/// anywhere, which is what "integrate the methodology into a
/// performance tool" (the paper's closing goal) needs in practice.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_HTMLREPORT_H
#define LIMA_CORE_HTMLREPORT_H

#include "core/Diagnosis.h"
#include "core/Efficiency.h"
#include "core/Pipeline.h"
#include <string>

namespace lima {
namespace core {

/// HTML rendering options.
struct HtmlReportOptions {
  /// Document title.
  std::string Title = "LIMA load-imbalance report";
  /// Include the per-activity pattern heat maps.
  bool IncludePatterns = true;
  /// Include the diagnosis section.
  bool IncludeDiagnosis = true;
};

/// Renders \p Cube / \p Analysis as one HTML document.
std::string renderHtmlReport(const MeasurementCube &Cube,
                             const AnalysisResult &Analysis,
                             const HtmlReportOptions &Options = {});

/// Escapes &, <, >, " for safe embedding in HTML.
std::string escapeHtml(std::string_view Text);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_HTMLREPORT_H
