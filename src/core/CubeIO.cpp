//===- core/CubeIO.cpp - Measurement cube persistence ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/CubeIO.h"
#include "support/CSV.h"
#include "support/FileUtils.h"
#include "support/MappedFile.h"
#include "support/StringUtils.h"
#include <cstdio>
#include <map>

using namespace lima;
using namespace lima::core;

std::string core::writeCubeCSV(const MeasurementCube &Cube) {
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"region", "activity", "proc", "seconds"});
  // Declaration pseudo-rows pin the dimension order and extents even
  // when some regions/activities/processors have only zero cells.
  Rows.push_back({"#procs", "", "", std::to_string(Cube.numProcs())});
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    Rows.push_back({"#region", Cube.regionName(I), "", ""});
  for (size_t J = 0; J != Cube.numActivities(); ++J)
    Rows.push_back({"#activity", Cube.activityName(J), "", ""});
  if (Cube.hasExplicitProgramTime()) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.12g", Cube.programTime());
    Rows.push_back({"#program-time", "", "", Buf});
  }
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      for (unsigned P = 0; P != Cube.numProcs(); ++P) {
        double Value = Cube.time(I, J, P);
        if (Value == 0.0)
          continue;
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), "%.12g", Value);
        Rows.push_back({Cube.regionName(I), Cube.activityName(J),
                        std::to_string(P + 1), Buf});
      }
  return writeCSV(Rows);
}

Expected<MeasurementCube> core::parseCubeCSV(std::string_view Text,
                                             const ParseOptions &Options) {
  const ParseLimits &Limits = Options.Limits;
  auto RowsOrErr = parseCSV(Text, Options);
  if (auto Err = RowsOrErr.takeError())
    return Err;
  const auto &Rows = *RowsOrErr;
  if (Rows.empty() || Rows[0] !=
      std::vector<std::string>{"region", "activity", "proc", "seconds"})
    return makeCodedError(
        ErrorCode::BadMagic,
        "cube CSV must start with 'region,activity,proc,seconds'");

  // First pass: discover names, processor count and the program total.
  std::vector<std::string> Regions, Activities;
  std::map<std::string, size_t> RegionIds, ActivityIds;
  unsigned MaxProc = 0;
  double ProgramTime = -1.0;
  struct Cell {
    size_t Region, Activity;
    unsigned Proc;
    double Seconds;
  };
  std::vector<Cell> Cells;

  auto internName = [&](const std::string &Name, bool IsRegion,
                        size_t &IdOut) -> Error {
    auto &Ids = IsRegion ? RegionIds : ActivityIds;
    auto &Names = IsRegion ? Regions : Activities;
    auto It = Ids.find(Name);
    if (It != Ids.end()) {
      IdOut = It->second;
      return Error::success();
    }
    if (Names.size() >= (IsRegion ? Limits.MaxRegions : Limits.MaxActivities))
      return makeCodedError(ErrorCode::LimitExceeded,
                            "cube CSV: %s count exceeds the limit",
                            IsRegion ? "region" : "activity");
    IdOut = Names.size();
    Ids.emplace(Name, IdOut);
    Names.push_back(Name);
    return Error::success();
  };

  for (size_t RowIndex = 1; RowIndex != Rows.size(); ++RowIndex) {
    const auto &Row = Rows[RowIndex];
    size_t RowNo = RowIndex + 1;
    if (Row.size() == 1 && Row[0].empty())
      continue; // Blank line.

    // #-pseudo-rows declare dimensions and the program total; they are
    // load-bearing headers, fatal in either mode.
    if (!Row.empty() && !Row[0].empty() && Row[0].front() == '#') {
      if (Row.size() != 4)
        return makeParseError(ErrorCode::MalformedRecord, RowNo,
                              NoByteOffset,
                              "cube CSV row %zu: expected 4 fields, got %zu",
                              RowNo, Row.size());
      if (Row[0] == "#program-time") {
        auto TimeOrErr = parseDouble(Row[3]);
        if (auto Err = TimeOrErr.takeError())
          return Err;
        ProgramTime = *TimeOrErr;
        continue;
      }
      if (Row[0] == "#procs") {
        auto CountOrErr = parseUnsigned(Row[3]);
        if (auto Err = CountOrErr.takeError())
          return Err;
        if (*CountOrErr == 0)
          return makeParseError(ErrorCode::ValueOutOfRange, RowNo,
                                NoByteOffset,
                                "cube CSV: processor count must be positive");
        if (*CountOrErr > Limits.MaxProcs)
          return makeParseError(ErrorCode::LimitExceeded, RowNo,
                                NoByteOffset,
                                "cube CSV: processor count exceeds the "
                                "limit");
        MaxProc = std::max<unsigned>(MaxProc,
                                     static_cast<unsigned>(*CountOrErr) - 1);
        continue;
      }
      if (Row[0] == "#region" || Row[0] == "#activity") {
        size_t Ignored;
        if (auto Err = internName(Row[1], Row[0] == "#region", Ignored))
          return Err;
        continue;
      }
      return makeParseError(ErrorCode::MalformedRecord, RowNo, NoByteOffset,
                            "cube CSV row %zu: unknown declaration '%s'",
                            RowNo, Row[0].c_str());
    }

    // Data rows are records: droppable in lenient mode.
    Cell C{};
    Error RecordErr = [&]() -> Error {
      if (Row.size() != 4)
        return makeParseError(ErrorCode::MalformedRecord, RowNo,
                              NoByteOffset,
                              "cube CSV row %zu: expected 4 fields, got %zu",
                              RowNo, Row.size());
      auto ProcOrErr = parseUnsigned(Row[2]);
      if (!ProcOrErr)
        return makeParseError(ErrorCode::BadNumber, RowNo, NoByteOffset,
                              "cube CSV row %zu: %s", RowNo,
                              ProcOrErr.takeError().message().c_str());
      if (*ProcOrErr == 0)
        return makeParseError(ErrorCode::ValueOutOfRange, RowNo,
                              NoByteOffset,
                              "cube CSV row %zu: processors are numbered "
                              "from 1",
                              RowNo);
      if (*ProcOrErr > Limits.MaxProcs)
        return makeParseError(ErrorCode::LimitExceeded, RowNo, NoByteOffset,
                              "cube CSV row %zu: processor exceeds the "
                              "limit",
                              RowNo);
      auto SecondsOrErr = parseDouble(Row[3]);
      if (!SecondsOrErr)
        return makeParseError(ErrorCode::BadNumber, RowNo, NoByteOffset,
                              "cube CSV row %zu: %s", RowNo,
                              SecondsOrErr.takeError().message().c_str());
      if (*SecondsOrErr < 0.0)
        return makeParseError(ErrorCode::ValueOutOfRange, RowNo,
                              NoByteOffset, "cube CSV row %zu: negative time",
                              RowNo);
      if (auto Err = internName(Row[0], /*IsRegion=*/true, C.Region))
        return Err;
      if (auto Err = internName(Row[1], /*IsRegion=*/false, C.Activity))
        return Err;
      C.Proc = static_cast<unsigned>(*ProcOrErr) - 1;
      C.Seconds = *SecondsOrErr;
      return Error::success();
    }();
    if (RecordErr) {
      // Limit violations are a resource guard, never droppable.
      ParseError PE = RecordErr.toParseError();
      if (PE.Code != ErrorCode::LimitExceeded && Options.dropRecord(PE))
        continue;
      return Error::fromParse(std::move(PE));
    }
    MaxProc = std::max(MaxProc, C.Proc);
    Cells.push_back(C);
  }
  if (Cells.empty())
    return makeCodedError(ErrorCode::MissingSection,
                          "cube CSV contains no data rows");

  // The cube allocates regions x activities x processors cells; check
  // the product against the cap before touching the allocator (the
  // classic hostile-header amplification).
  uint64_t CellBytes = static_cast<uint64_t>(Regions.size()) *
                       Activities.size() * (MaxProc + 1) * sizeof(double);
  if (CellBytes > Limits.MaxAllocBytes)
    return makeCodedError(ErrorCode::LimitExceeded,
                          "cube CSV: %zu x %zu x %u cells exceed the "
                          "allocation cap",
                          Regions.size(), Activities.size(), MaxProc + 1);

  MeasurementCube Cube(std::move(Regions), std::move(Activities),
                       MaxProc + 1);
  for (const Cell &C : Cells)
    Cube.accumulate(C.Region, C.Activity, C.Proc, C.Seconds);
  if (ProgramTime >= 0.0)
    Cube.setProgramTime(ProgramTime);
  if (auto Err = Cube.validate())
    return Err;
  return Cube;
}

Error core::saveCube(const MeasurementCube &Cube, const std::string &Path) {
  return writeFileAtomic(Path, writeCubeCSV(Cube));
}

Expected<MeasurementCube> core::loadCube(const std::string &Path,
                                         const ParseOptions &Options) {
  auto FileOrErr = MappedFile::open(Path);
  if (auto Err = FileOrErr.takeError())
    return Err;
  return parseCubeCSV(FileOrErr->view(), Options);
}
