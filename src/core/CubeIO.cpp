//===- core/CubeIO.cpp - Measurement cube persistence ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/CubeIO.h"
#include "support/CSV.h"
#include "support/FileUtils.h"
#include "support/StringUtils.h"
#include <cstdio>
#include <map>

using namespace lima;
using namespace lima::core;

std::string core::writeCubeCSV(const MeasurementCube &Cube) {
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"region", "activity", "proc", "seconds"});
  // Declaration pseudo-rows pin the dimension order and extents even
  // when some regions/activities/processors have only zero cells.
  Rows.push_back({"#procs", "", "", std::to_string(Cube.numProcs())});
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    Rows.push_back({"#region", Cube.regionName(I), "", ""});
  for (size_t J = 0; J != Cube.numActivities(); ++J)
    Rows.push_back({"#activity", Cube.activityName(J), "", ""});
  if (Cube.hasExplicitProgramTime()) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.12g", Cube.programTime());
    Rows.push_back({"#program-time", "", "", Buf});
  }
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      for (unsigned P = 0; P != Cube.numProcs(); ++P) {
        double Value = Cube.time(I, J, P);
        if (Value == 0.0)
          continue;
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), "%.12g", Value);
        Rows.push_back({Cube.regionName(I), Cube.activityName(J),
                        std::to_string(P + 1), Buf});
      }
  return writeCSV(Rows);
}

Expected<MeasurementCube> core::parseCubeCSV(std::string_view Text) {
  auto RowsOrErr = parseCSV(Text);
  if (auto Err = RowsOrErr.takeError())
    return Err;
  const auto &Rows = *RowsOrErr;
  if (Rows.empty() || Rows[0] !=
      std::vector<std::string>{"region", "activity", "proc", "seconds"})
    return makeStringError(
        "cube CSV must start with 'region,activity,proc,seconds'");

  // First pass: discover names, processor count and the program total.
  std::vector<std::string> Regions, Activities;
  std::map<std::string, size_t> RegionIds, ActivityIds;
  unsigned MaxProc = 0;
  double ProgramTime = -1.0;
  struct Cell {
    size_t Region, Activity;
    unsigned Proc;
    double Seconds;
  };
  std::vector<Cell> Cells;

  for (size_t RowIndex = 1; RowIndex != Rows.size(); ++RowIndex) {
    const auto &Row = Rows[RowIndex];
    if (Row.size() == 1 && Row[0].empty())
      continue; // Blank line.
    if (Row.size() != 4)
      return makeStringError("cube CSV row %zu: expected 4 fields, got %zu",
                             RowIndex + 1, Row.size());
    if (Row[0] == "#program-time") {
      auto TimeOrErr = parseDouble(Row[3]);
      if (auto Err = TimeOrErr.takeError())
        return Err;
      ProgramTime = *TimeOrErr;
      continue;
    }
    if (Row[0] == "#procs") {
      auto CountOrErr = parseUnsigned(Row[3]);
      if (auto Err = CountOrErr.takeError())
        return Err;
      if (*CountOrErr == 0)
        return makeStringError("cube CSV: processor count must be positive");
      MaxProc = std::max<unsigned>(MaxProc,
                                   static_cast<unsigned>(*CountOrErr) - 1);
      continue;
    }
    if (Row[0] == "#region") {
      if (!RegionIds.count(Row[1])) {
        RegionIds.emplace(Row[1], Regions.size());
        Regions.push_back(Row[1]);
      }
      continue;
    }
    if (Row[0] == "#activity") {
      if (!ActivityIds.count(Row[1])) {
        ActivityIds.emplace(Row[1], Activities.size());
        Activities.push_back(Row[1]);
      }
      continue;
    }
    auto ProcOrErr = parseUnsigned(Row[2]);
    if (auto Err = ProcOrErr.takeError())
      return Err;
    if (*ProcOrErr == 0)
      return makeStringError("cube CSV row %zu: processors are numbered "
                             "from 1",
                             RowIndex + 1);
    auto SecondsOrErr = parseDouble(Row[3]);
    if (auto Err = SecondsOrErr.takeError())
      return Err;
    if (*SecondsOrErr < 0.0)
      return makeStringError("cube CSV row %zu: negative time",
                             RowIndex + 1);

    auto RegionIt = RegionIds.find(Row[0]);
    if (RegionIt == RegionIds.end()) {
      RegionIt = RegionIds.emplace(Row[0], Regions.size()).first;
      Regions.push_back(Row[0]);
    }
    auto ActivityIt = ActivityIds.find(Row[1]);
    if (ActivityIt == ActivityIds.end()) {
      ActivityIt = ActivityIds.emplace(Row[1], Activities.size()).first;
      Activities.push_back(Row[1]);
    }
    unsigned Proc = static_cast<unsigned>(*ProcOrErr) - 1;
    MaxProc = std::max(MaxProc, Proc);
    Cells.push_back(
        {RegionIt->second, ActivityIt->second, Proc, *SecondsOrErr});
  }
  if (Cells.empty())
    return makeStringError("cube CSV contains no data rows");

  MeasurementCube Cube(std::move(Regions), std::move(Activities),
                       MaxProc + 1);
  for (const Cell &C : Cells)
    Cube.accumulate(C.Region, C.Activity, C.Proc, C.Seconds);
  if (ProgramTime >= 0.0)
    Cube.setProgramTime(ProgramTime);
  if (auto Err = Cube.validate())
    return Err;
  return Cube;
}

Error core::saveCube(const MeasurementCube &Cube, const std::string &Path) {
  return writeFile(Path, writeCubeCSV(Cube));
}

Expected<MeasurementCube> core::loadCube(const std::string &Path) {
  auto TextOrErr = readFile(Path);
  if (auto Err = TextOrErr.takeError())
    return Err;
  return parseCubeCSV(*TextOrErr);
}
