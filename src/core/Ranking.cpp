//===- core/Ranking.cpp - Severity ranking criteria -----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Ranking.h"
#include "stats/Descriptive.h"
#include <algorithm>

using namespace lima;
using namespace lima::core;

std::string_view core::rankCriterionName(RankCriterion Criterion) {
  switch (Criterion) {
  case RankCriterion::Maximum:
    return "maximum";
  case RankCriterion::Percentile:
    return "percentile";
  case RankCriterion::Threshold:
    return "threshold";
  }
  lima_unreachable("unknown RankCriterion");
}

std::vector<RankedItem> core::rankIndices(const std::vector<double> &Values,
                                          const RankingOptions &Options) {
  assert(!Values.empty() && "ranking over an empty index set");
  double Cutoff = 0.0;
  switch (Options.Criterion) {
  case RankCriterion::Maximum:
    Cutoff = stats::maximum(Values);
    break;
  case RankCriterion::Percentile:
    assert(Options.Percentile >= 0.0 && Options.Percentile <= 100.0 &&
           "percentile out of range");
    Cutoff = stats::percentile(Values, Options.Percentile);
    break;
  case RankCriterion::Threshold:
    Cutoff = Options.Threshold;
    break;
  }

  std::vector<RankedItem> Selected;
  for (size_t I = 0; I != Values.size(); ++I)
    if (Values[I] >= Cutoff)
      Selected.push_back({I, Values[I]});
  std::stable_sort(Selected.begin(), Selected.end(),
                   [](const RankedItem &A, const RankedItem &B) {
                     if (A.Value != B.Value)
                       return A.Value > B.Value;
                     return A.Item < B.Item;
                   });
  return Selected;
}
