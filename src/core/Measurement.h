//===- core/Measurement.h - The t[i][j][p] measurement cube -----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central data structure of the methodology: the wall-clock time
/// cube t[i][j][p] of Section 2 of the paper — the time processor p spent
/// in activity j of code region i — together with the aggregations the
/// analysis is built from:
///
///   t_ij = mean_p t_ijp   (region i, activity j)
///   t_i  = sum_j t_ij     (region i)
///   T_j  = sum_i t_ij     (activity j)
///   T    = program wall clock time
///
/// Aggregates use the per-processor *mean*: this is the only reading of
/// the paper consistent with all its published numbers at once — loop 1
/// lasts t_1 = 19.051s while processor 2's wall clock in it is 15.93s
/// (impossible if t_1 were a processor sum, given loop 1's small ID_C of
/// 0.048), and back-solving the scaled indices of Tables 3-4 gives a
/// program time T ~= 69.9s against a 64.75s loop sum — i.e. T is the
/// program *duration* and the instrumented loops do not cover all of it.
/// The cube therefore allows an explicit program total overriding the
/// derived sum.  All ratio-based indices (Tables 2-4) are invariant to
/// the mean-vs-sum choice as long as it is consistent.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_MEASUREMENT_H
#define LIMA_CORE_MEASUREMENT_H

#include "support/Error.h"
#include <cassert>
#include <optional>
#include <string>
#include <vector>

namespace lima {
namespace core {

/// The measurement cube: N code regions x K activities x P processors of
/// non-negative wall-clock seconds, with region/activity names.
class MeasurementCube {
public:
  /// Creates a zero-initialized cube.  All three extents must be >= 1 and
  /// names must be unique within their dimension.
  MeasurementCube(std::vector<std::string> RegionNames,
                  std::vector<std::string> ActivityNames, unsigned NumProcs);

  size_t numRegions() const { return RegionNames_.size(); }
  size_t numActivities() const { return ActivityNames_.size(); }
  unsigned numProcs() const { return NumProcs_; }

  const std::string &regionName(size_t I) const {
    assert(I < numRegions() && "region out of range");
    return RegionNames_[I];
  }
  const std::string &activityName(size_t J) const {
    assert(J < numActivities() && "activity out of range");
    return ActivityNames_[J];
  }
  const std::vector<std::string> &regionNames() const { return RegionNames_; }
  const std::vector<std::string> &activityNames() const {
    return ActivityNames_;
  }

  /// Mutable cell access.
  double &at(size_t I, size_t J, unsigned P) {
    return Data[index(I, J, P)];
  }
  /// t_ijp: time processor \p P spent in activity \p J of region \p I.
  double time(size_t I, size_t J, unsigned P) const {
    return Data[index(I, J, P)];
  }

  /// Adds \p Seconds to cell (I, J, P); used by the trace reduction.
  void accumulate(size_t I, size_t J, unsigned P, double Seconds) {
    assert(Seconds >= 0.0 && "cannot accumulate negative time");
    Data[index(I, J, P)] += Seconds;
  }

  /// t_ij: the wall clock of activity \p J in region \p I (mean over
  /// processors).
  double regionActivityTime(size_t I, size_t J) const;
  /// t_i: wall clock of region \p I (sum over activities of t_ij).
  double regionTime(size_t I) const;
  /// T_j: wall clock of activity \p J across all regions (sum of t_ij).
  double activityTime(size_t J) const;
  /// sum_i t_i — the program time covered by instrumented regions.
  double instrumentedTotal() const;
  /// Raw processor sum over the whole cube (sum of every cell).
  double cellSum() const;
  /// Processor \p P's wall clock within region \p I (sum over activities
  /// of the raw t_ijp) — e.g. the paper's "15.93 seconds" for processor 2
  /// in loop 1.
  double procRegionTime(size_t I, unsigned P) const;

  /// Program wall clock time T: the explicit override when set, otherwise
  /// the instrumented total.
  double programTime() const;

  /// Sets the explicit program wall clock time.  Must be >= the
  /// instrumented total at analysis time (validated by validate()).
  void setProgramTime(double Seconds) { ProgramTotal = Seconds; }
  bool hasExplicitProgramTime() const { return ProgramTotal.has_value(); }

  /// The per-processor slice t[I][J][.] as a vector of length P.
  std::vector<double> processorSlice(size_t I, size_t J) const;

  /// The activity profile of region \p I: (t_i1, ..., t_iK) — the vector
  /// each region is described by for clustering (Section 2).
  std::vector<double> activityProfile(size_t I) const;

  /// Per-processor times of processor \p P across activities of region
  /// \p I (the processor-view slice t[I][.][P]).
  std::vector<double> activitySliceForProc(size_t I, unsigned P) const;

  /// Checks invariants: non-negative cells; explicit program time (when
  /// set) not smaller than the instrumented total.
  Error validate() const;

private:
  size_t index(size_t I, size_t J, unsigned P) const {
    assert(I < numRegions() && "region out of range");
    assert(J < numActivities() && "activity out of range");
    assert(P < NumProcs_ && "processor out of range");
    return (I * numActivities() + J) * NumProcs_ + P;
  }

  std::vector<std::string> RegionNames_;
  std::vector<std::string> ActivityNames_;
  unsigned NumProcs_;
  std::vector<double> Data;
  std::optional<double> ProgramTotal;
};

} // namespace core
} // namespace lima

#endif // LIMA_CORE_MEASUREMENT_H
