//===- core/Rebalance.cpp - Work redistribution planning ------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Rebalance.h"
#include "stats/Descriptive.h"
#include <cassert>

using namespace lima;
using namespace lima::core;

RebalancePlan core::planRebalance(const MeasurementCube &Cube, size_t Region,
                                  size_t Activity,
                                  const RebalanceOptions &Options) {
  assert(Region < Cube.numRegions() && "region out of range");
  assert(Activity < Cube.numActivities() && "activity out of range");
  assert(Options.StepFraction > 0.0 && Options.StepFraction <= 0.5 &&
         "step fraction must be in (0, 0.5]");

  RebalancePlan Plan;
  Plan.Region = Region;
  Plan.Activity = Activity;

  std::vector<double> Times = Cube.processorSlice(Region, Activity);
  Plan.InitialIndex = stats::imbalanceIndexAs(Options.Kind, Times);
  Plan.FinalIndex = Plan.InitialIndex;
  if (Plan.InitialIndex <= Options.TargetIndex)
    return Plan;

  for (unsigned Step = 0; Step != Options.MaxTransfers; ++Step) {
    size_t Rich = stats::argMax(Times);
    size_t Poor = stats::argMin(Times);
    double Gap = Times[Rich] - Times[Poor];
    if (Gap <= 0.0)
      break;
    double Amount = Options.StepFraction * Gap;
    Times[Rich] -= Amount;
    Times[Poor] += Amount;

    Transfer Move;
    Move.From = static_cast<unsigned>(Rich);
    Move.To = static_cast<unsigned>(Poor);
    Move.Seconds = Amount;
    Move.PredictedIndex = stats::imbalanceIndexAs(Options.Kind, Times);
    Plan.FinalIndex = Move.PredictedIndex;
    Plan.Transfers.push_back(Move);
    if (Plan.FinalIndex <= Options.TargetIndex)
      break;
  }
  return Plan;
}

MeasurementCube core::applyRebalance(const MeasurementCube &Cube,
                                     const RebalancePlan &Plan) {
  MeasurementCube Result(Cube.regionNames(), Cube.activityNames(),
                         Cube.numProcs());
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      for (unsigned P = 0; P != Cube.numProcs(); ++P)
        Result.at(I, J, P) = Cube.time(I, J, P);
  if (Cube.hasExplicitProgramTime())
    Result.setProgramTime(Cube.programTime());

  for (const Transfer &Move : Plan.Transfers) {
    double &From = Result.at(Plan.Region, Plan.Activity, Move.From);
    double &To = Result.at(Plan.Region, Plan.Activity, Move.To);
    assert(From >= Move.Seconds - 1e-12 && "transfer exceeds donor work");
    From -= Move.Seconds;
    To += Move.Seconds;
  }
  return Result;
}
