//===- core/WaitStates.cpp - Late-sender wait-state analysis --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/WaitStates.h"
#include <algorithm>
#include <deque>
#include <map>
#include <tuple>

using namespace lima;
using namespace lima::core;
using trace::Event;
using trace::EventKind;

Expected<WaitStateReport> core::analyzeWaitStates(const trace::Trace &T) {
  if (auto Err = T.validate())
    return Err;

  // Collect send timestamps per (from, to, bytes) channel, FIFO.
  std::map<std::tuple<unsigned, unsigned, uint64_t>, std::deque<double>>
      Sends;
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc)
    for (const Event &E : T.events(Proc))
      if (E.Kind == EventKind::MessageSend)
        Sends[{Proc, E.Id, E.Bytes}].push_back(E.Time);

  WaitStateReport Report;
  Report.LateSender = MeasurementCube(
      T.regionNames(), {"late-sender"}, T.numProcs());
  std::map<std::pair<unsigned, unsigned>, ChannelWait> Channels;

  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc) {
    std::vector<uint32_t> RegionStack;
    double ActivityBegin = 0.0;
    bool ActivityOpen = false;
    for (const Event &E : T.events(Proc)) {
      switch (E.Kind) {
      case EventKind::RegionEnter:
        RegionStack.push_back(E.Id);
        break;
      case EventKind::RegionExit:
        RegionStack.pop_back();
        break;
      case EventKind::ActivityBegin:
        ActivityBegin = E.Time;
        ActivityOpen = true;
        break;
      case EventKind::ActivityEnd:
        ActivityOpen = false;
        break;
      case EventKind::MessageRecv: {
        ++Report.TotalReceives;
        auto &Queue = Sends[{E.Id, Proc, E.Bytes}];
        // validate() guarantees a matching send exists.
        double SendTime = Queue.front();
        Queue.pop_front();
        // The receive call time is the enclosing p2p activity's begin
        // (receives outside an activity bracket have no measurable
        // blocking interval and are skipped).
        if (!ActivityOpen || RegionStack.empty())
          break;
        double Wait = SendTime - ActivityBegin;
        if (Wait <= 0.0)
          break;
        ++Report.LateReceives;
        Report.TotalLateSender += Wait;
        Report.LateSender.accumulate(RegionStack.back(), 0, Proc, Wait);
        ChannelWait &Channel = Channels[{E.Id, Proc}];
        Channel.From = E.Id;
        Channel.To = Proc;
        Channel.Seconds += Wait;
        ++Channel.Messages;
        break;
      }
      case EventKind::MessageSend:
        break;
      }
    }
  }

  for (const auto &[Key, Channel] : Channels)
    Report.Channels.push_back(Channel);
  std::stable_sort(Report.Channels.begin(), Report.Channels.end(),
                   [](const ChannelWait &A, const ChannelWait &B) {
                     return A.Seconds > B.Seconds;
                   });
  return Report;
}
