//===- core/Dashboard.cpp - Live window API + dashboard endpoints ---------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Dashboard.h"
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace lima;
using namespace lima::core;

namespace {

std::string jsonEscape(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += ' ';
      else
        Out += C;
    }
  }
  return Out;
}

std::string jsonString(std::string_view Str) {
  return '"' + jsonEscape(Str) + '"';
}

/// Compact finite JSON number.  Non-finite dispersion values cannot
/// occur, but JSON has no NaN/Inf — emit 0 rather than corrupt the
/// document.
std::string num(double V) {
  if (!std::isfinite(V))
    return "0";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

std::string numArray(const std::vector<double> &Values) {
  std::string Out = "[";
  for (size_t I = 0; I != Values.size(); ++I) {
    if (I)
      Out += ',';
    Out += num(Values[I]);
  }
  Out += ']';
  return Out;
}

std::string nameArray(const std::vector<std::string> &Names) {
  std::string Out = "[";
  for (size_t I = 0; I != Names.size(); ++I) {
    if (I)
      Out += ',';
    Out += jsonString(Names[I]);
  }
  Out += ']';
  return Out;
}

/// Full-string unsigned decimal parse; rejects empty, signs, suffixes.
bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

const std::string &nameAt(const std::vector<std::string> &Names, size_t I) {
  static const std::string Empty;
  return I < Names.size() ? Names[I] : Empty;
}

} // namespace

std::string dash::windowJson(const WindowSummary &S,
                             const std::vector<std::string> &RegionNames,
                             const std::vector<std::string> &ActivityNames) {
  std::string Out = "{\"id\":" + std::to_string(S.Index);
  Out += ",\"start\":" + num(S.StartTime);
  Out += ",\"end\":" + num(S.EndTime);
  Out += ",\"events\":" + std::to_string(S.Events);
  Out += ",\"empty\":";
  Out += S.Empty ? "true" : "false";
  Out += ",\"proc_load\":" + numArray(S.ProcLoad);
  Out += ",\"regions\":[";
  for (size_t I = 0; I != S.RegionIdC.size(); ++I) {
    if (I)
      Out += ',';
    Out += "{\"name\":" + jsonString(nameAt(RegionNames, I));
    Out += ",\"id_c\":" + num(S.RegionIdC[I]);
    Out += ",\"sid_c\":" +
           num(I < S.RegionSidC.size() ? S.RegionSidC[I] : 0.0) + "}";
  }
  Out += "],\"activities\":[";
  for (size_t J = 0; J != S.ActivityIdA.size(); ++J) {
    if (J)
      Out += ',';
    Out += "{\"name\":" + jsonString(nameAt(ActivityNames, J));
    Out += ",\"id_a\":" + num(S.ActivityIdA[J]);
    Out += ",\"sid_a\":" +
           num(J < S.ActivitySidA.size() ? S.ActivitySidA[J] : 0.0) + "}";
  }
  Out += "],\"top_region\":" + std::to_string(S.TopRegion);
  Out += ",\"top_activity\":" + std::to_string(S.TopActivity);
  Out += ",\"most_imbalanced_proc\":" + std::to_string(S.MostImbalancedProc);
  Out += ",\"max_sid_c\":" + num(S.MaxSidC);
  Out += ",\"dropped\":" + std::to_string(S.DroppedRecords);
  Out += "}";
  return Out;
}

std::string dash::windowsJson(const WindowHistory &History, uint64_t Since,
                              size_t Limit) {
  std::vector<WindowSummary> Wins = History.snapshot(Since, Limit);
  std::vector<std::string> Regions = History.regionNames();
  std::vector<std::string> Activities = History.activityNames();
  std::string Out = "{\"capacity\":" + std::to_string(History.capacity());
  Out += ",\"size\":" + std::to_string(History.size());
  Out += ",\"appended\":" + std::to_string(History.appended());
  Out += ",\"evictions\":" + std::to_string(History.evictions());
  Out += ",\"regions\":" + nameArray(Regions);
  Out += ",\"activities\":" + nameArray(Activities);
  Out += ",\"windows\":[";
  for (size_t I = 0; I != Wins.size(); ++I) {
    if (I)
      Out += ',';
    Out += windowJson(Wins[I], Regions, Activities);
  }
  Out += "]}\n";
  return Out;
}

std::string dash::sseWindowFrame(const WindowSummary &S,
                                 const std::vector<std::string> &RegionNames,
                                 const std::vector<std::string> &ActivityNames) {
  return "event: window\ndata: " +
         windowJson(S, RegionNames, ActivityNames) + "\n\n";
}

std::string dash::sseAlertFrame(uint64_t WindowIndex, size_t Region,
                                const std::string &RegionName, double SidC,
                                double Threshold) {
  std::string Out = "event: alert\ndata: {\"window\":";
  Out += std::to_string(WindowIndex);
  Out += ",\"region\":" + std::to_string(Region);
  Out += ",\"region_name\":" + jsonString(RegionName);
  Out += ",\"sid_c\":" + num(SidC);
  Out += ",\"threshold\":" + num(Threshold);
  Out += "}\n\n";
  return Out;
}

std::string dash::dashboardHtml(const std::string &Title) {
  // One self-contained page: styling mirrors core/HtmlReport, all
  // script inline, zero external fetches beyond /api + /events.
  std::string Html =
      "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>" +
      jsonEscape(Title) + // HTML-safe for our titles (no <>&)
      "</title><style>"
      "body{font-family:sans-serif;max-width:960px;margin:2em auto;}"
      "table{border-collapse:collapse;margin:1em 0;}"
      "th,td{border:1px solid #bbb;padding:3px 9px;font-size:13px;"
      "text-align:right;}"
      "th:first-child,td:first-child{text-align:left;}"
      "h2{border-bottom:1px solid #ddd;padding-bottom:4px;}"
      "#mode{float:right;font-size:12px;color:#666;font-weight:normal;}"
      "canvas{border:1px solid #ddd;display:block;margin:0.5em 0;}"
      ".alert{margin:6px 0;padding:6px 10px;border-left:4px solid #b40000;"
      "background:#fff0f0;font-size:13px;}"
      "</style></head><body><h1>" +
      jsonEscape(Title) + "<span id=\"mode\">connecting\xE2\x80\xA6</span></h1>";
  Html += R"HTML(
<div id="alerts"></div>
<h2>max SID_C per window</h2>
<canvas id="spark" width="920" height="120"></canvas>
<h2>per-processor load heatmap</h2>
<canvas id="heat" width="920" height="160"></canvas>
<h2>latest window</h2>
<div id="latest">waiting for data&hellip;</div>
<script>
'use strict';
var MAXW = 120, wins = [], poller = null, es = null;
function setMode(t) { document.getElementById('mode').textContent = t; }
function esc(s) {
  var d = document.createElement('span');
  d.textContent = s == null ? '' : s;
  return d.innerHTML;
}
function addWin(w) {
  if (wins.length && wins[wins.length - 1].id >= w.id) return;
  wins.push(w);
  if (wins.length > MAXW) wins.shift();
  render();
}
function showAlert(a) {
  var d = document.createElement('div');
  d.className = 'alert';
  d.textContent = 'window ' + a.window + ': region ' +
      (a.region_name || a.region) + ' SID_C ' + a.sid_c.toFixed(3) +
      ' over threshold ' + a.threshold.toFixed(3);
  var box = document.getElementById('alerts');
  box.insertBefore(d, box.firstChild);
  while (box.childNodes.length > 5) box.removeChild(box.lastChild);
}
function render() {
  var spark = document.getElementById('spark'), g = spark.getContext('2d');
  g.clearRect(0, 0, spark.width, spark.height);
  if (!wins.length) return;
  var max = 0;
  wins.forEach(function (w) { if (w.max_sid_c > max) max = w.max_sid_c; });
  var bw = spark.width / Math.max(wins.length, 1);
  wins.forEach(function (w, i) {
    var h = max > 0 ? (w.max_sid_c / max) * (spark.height - 10) : 0;
    g.fillStyle = '#2a7ae2';
    g.fillRect(i * bw + 1, spark.height - h, Math.max(bw - 2, 1), h);
  });
  var heat = document.getElementById('heat'), hg = heat.getContext('2d');
  hg.clearRect(0, 0, heat.width, heat.height);
  var procs = wins[wins.length - 1].proc_load.length;
  var ch = heat.height / Math.max(procs, 1), cw = heat.width / wins.length;
  var lmax = 0;
  wins.forEach(function (w) {
    w.proc_load.forEach(function (v) { if (v > lmax) lmax = v; });
  });
  wins.forEach(function (w, i) {
    w.proc_load.forEach(function (v, p) {
      var t = lmax > 0 ? v / lmax : 0;
      hg.fillStyle = 'rgb(' + Math.round(255 * t) + ',64,' +
          Math.round(255 * (1 - t)) + ')';
      hg.fillRect(i * cw, p * ch, Math.ceil(cw), Math.ceil(ch));
    });
  });
  var w = wins[wins.length - 1];
  var html = '<p>window ' + w.id + ' [' + w.start.toFixed(2) + ', ' +
      w.end.toFixed(2) + ') &mdash; ' + w.events +
      ' events, most imbalanced proc ' + w.most_imbalanced_proc + '</p>';
  html += '<table><tr><th>region</th><th>ID_C</th><th>SID_C</th></tr>';
  w.regions.forEach(function (r) {
    html += '<tr><td>' + esc(r.name) + '</td><td>' + r.id_c.toFixed(4) +
        '</td><td>' + r.sid_c.toFixed(4) + '</td></tr>';
  });
  html += '</table>';
  document.getElementById('latest').innerHTML = html;
}
function seed() {
  return fetch('/api/windows').then(function (r) { return r.json(); })
      .then(function (j) { wins = j.windows.slice(-MAXW); render(); })
      .catch(function () {});
}
function startPolling() {
  if (poller) return;
  setMode('polling /api/windows');
  poller = setInterval(seed, 2000);
}
function connect() {
  if (!window.EventSource) { startPolling(); return; }
  es = new EventSource('/events');
  es.addEventListener('window', function (e) { addWin(JSON.parse(e.data)); });
  es.addEventListener('alert', function (e) { showAlert(JSON.parse(e.data)); });
  es.onopen = function () { setMode('live (SSE)'); };
  es.onerror = function () { es.close(); startPolling(); };
}
seed().then(connect);
</script>
</body></html>
)HTML";
  return Html;
}

void dash::mountDashboard(status::StatusServer &Server,
                          std::shared_ptr<WindowHistory> History,
                          std::shared_ptr<http::StreamHub> Events,
                          DashboardOptions Options) {
  Server.handle("/api/windows", [History](const http::Request &Req) {
    uint64_t Since = 0;
    uint64_t Limit = 0;
    std::string SinceStr = Req.queryParam("since");
    if (!SinceStr.empty() && !parseU64(SinceStr, Since))
      return http::Response::text(400, "bad since parameter\n");
    std::string LimitStr = Req.queryParam("limit");
    if (!LimitStr.empty() && !parseU64(LimitStr, Limit))
      return http::Response::text(400, "bad limit parameter\n");
    return http::Response::json(
        windowsJson(*History, Since, static_cast<size_t>(Limit)));
  });

  Server.handlePrefix("/api/windows/", [History](const http::Request &Req) {
    std::string IdStr = Req.Path.substr(sizeof("/api/windows/") - 1);
    uint64_t Id = 0;
    if (!parseU64(IdStr, Id))
      return http::Response::text(400, "bad window id\n");
    std::optional<WindowSummary> S = History->get(Id);
    if (!S)
      return http::Response::text(404, "window not retained\n");
    return http::Response::json(windowJson(*S, History->regionNames(),
                                           History->activityNames()) +
                                "\n");
  });

  Server.handle("/events", [Events](const http::Request &) {
    // The comment line tests reachability; the retry hint keeps
    // browser reconnects gentle.
    return http::Response::stream("text/event-stream", Events,
                                  ": lima-events\nretry: 2000\n\n");
  });

  std::string Page = dashboardHtml(Options.Title);
  Server.handle("/dashboard", [Page](const http::Request &) {
    http::Response R;
    R.ContentType = "text/html; charset=utf-8";
    R.Body = Page;
    return R;
  });

  Server.describeEndpoint(
      "  /api/windows  retained window summaries (JSON; ?since= &limit=)");
  Server.describeEndpoint("  /events       live window/alert stream (SSE)");
  Server.describeEndpoint("  /dashboard    live imbalance dashboard (HTML)");
}
