//===- core/Diagnosis.cpp - Rule-based automatic diagnosis ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Diagnosis.h"
#include "support/Compiler.h"
#include "support/Format.h"
#include <algorithm>
#include <climits>

using namespace lima;
using namespace lima::core;

std::string_view core::diagnosisKindName(DiagnosisKind Kind) {
  switch (Kind) {
  case DiagnosisKind::RegionLoadImbalance:
    return "region-load-imbalance";
  case DiagnosisKind::NegligibleImbalance:
    return "negligible-imbalance";
  case DiagnosisKind::ProcessorHotspot:
    return "processor-hotspot";
  case DiagnosisKind::SynchronizationOverhead:
    return "synchronization-overhead";
  case DiagnosisKind::CommunicationBound:
    return "communication-bound";
  case DiagnosisKind::SingleRegionDominance:
    return "single-region-dominance";
  case DiagnosisKind::LowCoverage:
    return "low-coverage";
  }
  lima_unreachable("unknown DiagnosisKind");
}

std::string_view core::severityName(Severity S) {
  switch (S) {
  case Severity::Info:
    return "info";
  case Severity::Advice:
    return "advice";
  case Severity::Warning:
    return "warning";
  case Severity::Critical:
    return "critical";
  }
  lima_unreachable("unknown Severity");
}

namespace {

/// Sum of activity times whose names appear in \p Names.
double shareOfActivities(const MeasurementCube &Cube,
                         const std::vector<std::string> &Names) {
  double Total = 0.0;
  for (size_t J = 0; J != Cube.numActivities(); ++J)
    for (const std::string &Name : Names)
      if (Cube.activityName(J) == Name)
        Total += Cube.activityTime(J);
  return Total / Cube.programTime();
}

} // namespace

std::vector<Diagnosis> core::diagnose(const MeasurementCube &Cube,
                                      const AnalysisResult &Analysis,
                                      const DiagnosisOptions &Options) {
  std::vector<Diagnosis> Findings;
  double T = Cube.programTime();

  // Rule 1: regions that are imbalanced *and* heavy — tuning candidates.
  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    double SID = Analysis.Regions.ScaledIndex[I];
    double ID = Analysis.Regions.Index[I];
    if (SID < Options.CandidateScaledIndex)
      continue;
    Diagnosis D;
    D.Kind = DiagnosisKind::RegionLoadImbalance;
    D.Level = SID >= 2 * Options.CandidateScaledIndex ? Severity::Critical
                                                      : Severity::Warning;
    D.Region = I;
    D.Score = SID;
    D.Explanation = "region '" + Cube.regionName(I) +
                    "' is imbalanced (ID_C = " + formatFixed(ID, 5) +
                    ") and accounts for " +
                    formatPercent(Cube.regionTime(I) / T) +
                    " of the program (SID_C = " + formatFixed(SID, 5) + ")";
    D.Suggestion = "redistribute the region's work across processors; "
                   "start from the processors its pattern diagram marks "
                   "as extreme";
    Findings.push_back(std::move(D));
  }

  // Rule 2: severe imbalance with negligible weight (regions and
  // activities) — explicitly de-prioritized, like the paper's
  // synchronization finding.
  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    if (Analysis.Regions.Index[I] < Options.SevereIndex ||
        Analysis.Regions.ScaledIndex[I] > Options.NegligibleScaledIndex)
      continue;
    Diagnosis D;
    D.Kind = DiagnosisKind::NegligibleImbalance;
    D.Level = Severity::Info;
    D.Region = I;
    D.Score = Analysis.Regions.Index[I];
    D.Explanation = "region '" + Cube.regionName(I) +
                    "' is strongly imbalanced (ID_C = " +
                    formatFixed(Analysis.Regions.Index[I], 5) +
                    ") but too short to matter (" +
                    formatPercent(Cube.regionTime(I) / T) +
                    " of the program)";
    D.Suggestion = "not a tuning candidate; revisit only if its share of "
                   "the program grows";
    Findings.push_back(std::move(D));
  }
  for (size_t J = 0; J != Cube.numActivities(); ++J) {
    if (Analysis.Activities.Index[J] < Options.SevereIndex ||
        Analysis.Activities.ScaledIndex[J] > Options.NegligibleScaledIndex)
      continue;
    Diagnosis D;
    D.Kind = DiagnosisKind::NegligibleImbalance;
    D.Level = Severity::Info;
    D.Activity = J;
    D.Score = Analysis.Activities.Index[J];
    D.Explanation = "activity '" + Cube.activityName(J) +
                    "' is strongly imbalanced (ID_A = " +
                    formatFixed(Analysis.Activities.Index[J], 5) +
                    ") but accounts for only " +
                    formatPercent(Cube.activityTime(J) / T) +
                    " of the program";
    D.Suggestion = "not a tuning candidate; the scaled index SID_A = " +
                   formatFixed(Analysis.Activities.ScaledIndex[J], 5) +
                   " already discounts it";
    Findings.push_back(std::move(D));
  }

  // Rule 3: processor hotspot.  Only count regions where the winning
  // processor's index is meaningful — in a balanced region "the most
  // imbalanced processor" is an artifact of tie-breaking.
  {
    unsigned Proc = Analysis.Processors.MostFrequentlyImbalanced;
    unsigned Wins = 0;
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      if (Analysis.Processors.MostImbalancedProc[I] == Proc &&
          Analysis.Processors.Index[I][Proc] >= Options.HotspotMinIndex)
        ++Wins;
    double Fraction =
        static_cast<double>(Wins) / static_cast<double>(Cube.numRegions());
    if (Fraction >= Options.HotspotRegionFraction && Wins >= 2) {
      Diagnosis D;
      D.Kind = DiagnosisKind::ProcessorHotspot;
      D.Level = Severity::Warning;
      D.Proc = Proc;
      D.Score = Fraction;
      D.Explanation = "processor " + std::to_string(Proc + 1) +
                      " is the most imbalanced processor in " +
                      std::to_string(Wins) + " of " +
                      std::to_string(Cube.numRegions()) + " regions";
      D.Suggestion = "check for asymmetric work assignment (e.g. rank-0 "
                     "duties), slower hardware, or placement effects on "
                     "that processor";
      Findings.push_back(std::move(D));
    }
  }

  // Rule 4: synchronization overhead.
  {
    double Share = shareOfActivities(Cube, Options.SynchronizationActivities);
    if (Share >= Options.SynchronizationShare) {
      Diagnosis D;
      D.Kind = DiagnosisKind::SynchronizationOverhead;
      D.Level = Share >= 2 * Options.SynchronizationShare
                    ? Severity::Critical
                    : Severity::Warning;
      D.Score = Share;
      D.Explanation = "synchronization accounts for " +
                      formatPercent(Share) + " of the program time";
      D.Suggestion = "remove barriers that only order I/O or debugging, "
                     "or replace global barriers with point-to-point "
                     "dependencies";
      Findings.push_back(std::move(D));
    }
  }

  // Rule 5: communication bound.
  {
    double Share = shareOfActivities(Cube, Options.CommunicationActivities);
    if (Share >= Options.CommunicationShare) {
      Diagnosis D;
      D.Kind = DiagnosisKind::CommunicationBound;
      D.Level = Severity::Advice;
      D.Score = Share;
      D.Explanation = "communication (point-to-point + collective) "
                      "accounts for " +
                      formatPercent(Share) + " of the program time";
      D.Suggestion = "overlap communication with computation, aggregate "
                     "messages, or revisit the domain decomposition";
      Findings.push_back(std::move(D));
    }
  }

  // Rule 6: single-region dominance.
  {
    size_t Heaviest = Analysis.Profile.HeaviestRegion;
    double Share = Cube.regionTime(Heaviest) / T;
    if (Share >= Options.DominanceShare) {
      Diagnosis D;
      D.Kind = DiagnosisKind::SingleRegionDominance;
      D.Level = Severity::Advice;
      D.Region = Heaviest;
      D.Score = Share;
      D.Explanation = "region '" + Cube.regionName(Heaviest) +
                      "' alone accounts for " + formatPercent(Share) +
                      " of the program";
      D.Suggestion = "any tuning effort should start inside this region";
      Findings.push_back(std::move(D));
    }
  }

  // Rule 7: low instrumentation coverage.
  {
    double Coverage = Cube.instrumentedTotal() / T;
    if (Coverage < Options.CoverageFloor) {
      Diagnosis D;
      D.Kind = DiagnosisKind::LowCoverage;
      D.Level = Severity::Info;
      D.Score = Coverage;
      D.Explanation = "instrumented regions cover only " +
                      formatPercent(Coverage) + " of the program time";
      D.Suggestion = "instrument more code regions before trusting the "
                     "scaled indices";
      Findings.push_back(std::move(D));
    }
  }

  std::stable_sort(Findings.begin(), Findings.end(),
                   [](const Diagnosis &A, const Diagnosis &B) {
                     if (A.Level != B.Level)
                       return A.Level > B.Level;
                     return A.Score > B.Score;
                   });
  return Findings;
}

std::string core::renderDiagnoses(const MeasurementCube &Cube,
                                  const std::vector<Diagnosis> &Findings) {
  (void)Cube;
  if (Findings.empty())
    return "no findings: the program looks well balanced.\n";
  std::string Out;
  unsigned Counter = 0;
  for (const Diagnosis &D : Findings) {
    Out += std::to_string(++Counter) + ". [" +
           std::string(severityName(D.Level)) + "] " +
           std::string(diagnosisKindName(D.Kind)) + ": " + D.Explanation +
           "\n   -> " + D.Suggestion + "\n";
  }
  return Out;
}
