//===- core/Report.h - Table and report rendering ---------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the analysis results in the shape of the paper's Tables 1-4
/// plus the processor-view and clustering summaries, as aligned text
/// tables (and CSV through TextTable::toCSV).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_REPORT_H
#define LIMA_CORE_REPORT_H

#include "core/Measurement.h"
#include "core/Profile.h"
#include "core/RegionClustering.h"
#include "core/Views.h"
#include "support/TableFormatter.h"

namespace lima {
namespace core {

/// Table 1: per-region wall clock with the per-activity breakdown.
/// Zero cells render as "-" like the paper.
TextTable makeRegionBreakdownTable(const MeasurementCube &Cube,
                                   const CoarseProfile &Profile);

/// Table 2: the ID_ij dissimilarity matrix.
TextTable makeDissimilarityTable(const MeasurementCube &Cube,
                                 const ActivityView &View);

/// Table 3: ID_A / SID_A per activity.
TextTable makeActivityViewTable(const MeasurementCube &Cube,
                                const ActivityView &View);

/// Table 4: ID_C / SID_C per region.
TextTable makeRegionViewTable(const MeasurementCube &Cube,
                              const RegionView &View);

/// Processor-view summary: per-region most imbalanced processor plus the
/// most-frequently / longest-imbalanced findings.
TextTable makeProcessorViewTable(const MeasurementCube &Cube,
                                 const ProcessorView &View);

/// The full ID_P matrix (one row per region, one column per processor);
/// zero entries render as "-".
TextTable makeProcessorMatrixTable(const MeasurementCube &Cube,
                                   const ProcessorView &View);

/// One-paragraph textual conclusion naming the tuning candidates, in the
/// spirit of the paper's Section 4 discussion.
std::string summarizeFindings(const MeasurementCube &Cube,
                              const CoarseProfile &Profile,
                              const ActivityView &AView,
                              const RegionView &RView,
                              const ProcessorView &PView);

/// Cluster membership rendering ("group 0: loop1 loop2 ...").
std::string describeClusters(const MeasurementCube &Cube,
                             const RegionClusters &Clusters);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_REPORT_H
