//===- core/WindowHistory.h - Bounded ring of window summaries --*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, thread-safe ring of per-window imbalance summaries — the
/// retained form of the windowed analysis.  The windowed analyzer
/// computes a full MeasurementCube per window and lima_monitor used to
/// reduce it to one log line; the history keeps the part an operator
/// asks about afterwards (which processors, which regions, when) at
/// O(procs + regions + activities) bytes per window, so a
/// million-window run holds memory at Cap summaries, not Cap cubes.
///
/// Contents per window (WindowSummary): the window id and time span,
/// the per-processor load vector (each processor's wall clock inside
/// the window, summed over the cube), the per-region ID_C/SID_C and
/// per-activity ID_A/SID_A dispersion indices, the most-imbalanced
/// region/activity/processor picks, and the drop count the producer
/// attributes to the window.  Region/activity names are stored once on
/// the history (identical across windows — they come from the trace
/// header), not per summary.
///
/// Concurrency: one mutex guards the deque; append() runs on the
/// analysis thread while snapshot()/get() run on the HTTP server
/// thread.  Summaries are value types, so a snapshot hands back copies
/// and readers never observe a summary mid-mutation.  Evictions are
/// counted directly into the metrics registry
/// (lima.history.evictions_total) — a direct Counter call, not a
/// LIMA_METRIC macro, so the count exists in telemetry-off builds too.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_WINDOWHISTORY_H
#define LIMA_CORE_WINDOWHISTORY_H

#include "core/WindowedAnalysis.h"
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace lima {
namespace core {

/// The compact retained form of one drained WindowResult.
struct WindowSummary {
  uint64_t Index = 0;     ///< Window number k; covers [k*W, (k+1)*W).
  double StartTime = 0.0;
  double EndTime = 0.0;
  uint64_t Events = 0;    ///< Events whose timestamp fell in the window.
  bool Empty = false;     ///< Nothing attributed (EmitEmptyWindows only).

  /// Per-processor wall clock inside the window: sum over the cube of
  /// t[.][.][p].  The dashboard's heatmap rows.
  std::vector<double> ProcLoad;
  /// Per-region ID_C / SID_C (code-region view).
  std::vector<double> RegionIdC;
  std::vector<double> RegionSidC;
  /// Per-activity ID_A / SID_A (activity view).
  std::vector<double> ActivityIdA;
  std::vector<double> ActivitySidA;

  /// Region with the largest SID_C — where the scaled imbalance lives.
  size_t TopRegion = 0;
  /// Activity with the largest SID_A.
  size_t TopActivity = 0;
  /// The processor most frequently the most-imbalanced one.
  unsigned MostImbalancedProc = 0;
  /// max over regions of SID_C — the scalar the monitor alerts on.
  double MaxSidC = 0.0;

  /// Records the producer attributed to this window but had to drop
  /// (lenient-mode structural violations since the previous drain).
  uint64_t DroppedRecords = 0;
};

/// Bounded ring of WindowSummary, newest at the back.
class WindowHistory {
public:
  /// \p Cap is the retention bound; appending the Cap+1st summary
  /// evicts the oldest.  A cap of 0 is clamped to 1 (an eviction-only
  /// history retains nothing worth serving).
  explicit WindowHistory(size_t Cap);

  /// Extracts the retained summary from a drained window.  Pure
  /// function of the result (plus the producer's drop attribution);
  /// exposed for tests to prove summary-vs-cube equivalence.
  static WindowSummary summarize(const WindowResult &Result,
                                 uint64_t DroppedRecords = 0);

  /// Appends \p Summary, evicting the oldest entry past the cap.
  void append(WindowSummary Summary);

  /// summarize() + append(), capturing region/activity names from the
  /// first result's cube (identical on every later one).
  void appendResult(const WindowResult &Result, uint64_t DroppedRecords = 0);

  /// Sets the dimension names served alongside summaries (no-op when
  /// already set; appendResult does this automatically).
  void setNames(std::vector<std::string> RegionNames,
                std::vector<std::string> ActivityNames);

  /// Copies of retained summaries in ascending window order, starting
  /// at the first window with Index >= \p SinceIndex, at most \p Limit
  /// entries (0 = no limit).
  std::vector<WindowSummary> snapshot(uint64_t SinceIndex = 0,
                                      size_t Limit = 0) const;

  /// The summary of window \p Index, if retained.
  std::optional<WindowSummary> get(uint64_t Index) const;

  size_t size() const;
  size_t capacity() const { return Cap; }
  /// Summaries evicted over the history's lifetime.
  uint64_t evictions() const;
  /// Total summaries ever appended.
  uint64_t appended() const;

  std::vector<std::string> regionNames() const;
  std::vector<std::string> activityNames() const;

private:
  const size_t Cap;
  mutable std::mutex Mu;
  std::deque<WindowSummary> Ring;
  std::vector<std::string> RegionNames;
  std::vector<std::string> ActivityNames;
  uint64_t Evicted = 0;
  uint64_t Appended = 0;
};

} // namespace core
} // namespace lima

#endif // LIMA_CORE_WINDOWHISTORY_H
