//===- core/Diagnosis.h - Rule-based automatic diagnosis --------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automation step the paper's conclusions call for: "tools should
/// do what expert programmers do when tuning their programs, that is,
/// detect the presence of inefficiencies, localize them and assess
/// their severity."  A small rule engine turns an AnalysisResult into a
/// ranked list of structured findings, each localized (region /
/// activity / processor), scored, explained and paired with a remedy
/// hint — in the spirit of the Poirot and Paradyn diagnosis systems the
/// paper discusses.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_DIAGNOSIS_H
#define LIMA_CORE_DIAGNOSIS_H

#include "core/Pipeline.h"
#include <climits>
#include <string>
#include <vector>

namespace lima {
namespace core {

/// What a finding is about.
enum class DiagnosisKind {
  /// A region is both imbalanced and heavy: the prime tuning candidate.
  RegionLoadImbalance,
  /// Something is severely imbalanced but too light to matter.
  NegligibleImbalance,
  /// One processor is repeatedly the most imbalanced.
  ProcessorHotspot,
  /// Synchronization consumes a noticeable share of the program.
  SynchronizationOverhead,
  /// Communication (point-to-point + collective) dominates.
  CommunicationBound,
  /// One region dominates the program: tuning focus is obvious.
  SingleRegionDominance,
  /// The instrumented regions cover little of the program time.
  LowCoverage,
};

/// Human-readable kind name ("region-load-imbalance", ...).
std::string_view diagnosisKindName(DiagnosisKind Kind);

/// Severity ladder of a finding.
enum class Severity { Info, Advice, Warning, Critical };

/// Human-readable severity name.
std::string_view severityName(Severity S);

/// One structured finding.
struct Diagnosis {
  DiagnosisKind Kind;
  Severity Level = Severity::Info;
  /// Affected region (SIZE_MAX when not region-specific).
  size_t Region = SIZE_MAX;
  /// Affected activity (SIZE_MAX when not activity-specific).
  size_t Activity = SIZE_MAX;
  /// Affected processor (UINT_MAX when not processor-specific).
  unsigned Proc = UINT_MAX;
  /// The index/ratio that triggered the rule.
  double Score = 0.0;
  /// One-sentence explanation with the numbers filled in.
  std::string Explanation;
  /// Suggested direction for the fix.
  std::string Suggestion;
};

/// Thresholds of the rule engine.  Defaults are calibrated so the
/// paper's experiment produces the conclusions of its Section 4.
struct DiagnosisOptions {
  /// ID threshold above which imbalance counts as severe.
  double SevereIndex = 0.05;
  /// SID threshold below which imbalance is negligible.
  double NegligibleScaledIndex = 0.002;
  /// SID threshold above which a region becomes a tuning candidate.
  double CandidateScaledIndex = 0.005;
  /// Fraction of regions a processor must "win" to be a hotspot.
  double HotspotRegionFraction = 0.25;
  /// A "win" only counts when the processor's ID_P exceeds this floor
  /// (a balanced region has no meaningful most-imbalanced processor).
  double HotspotMinIndex = 0.01;
  /// Program-time fraction that flags synchronization overhead.
  double SynchronizationShare = 0.05;
  /// Program-time fraction that flags a communication-bound program.
  double CommunicationShare = 0.4;
  /// Program-time fraction that flags single-region dominance.
  double DominanceShare = 0.5;
  /// Instrumented-time fraction below which coverage is flagged.
  double CoverageFloor = 0.5;
  /// Activity names classified as synchronization / communication for
  /// the share rules (matched against the cube's activity names).
  std::vector<std::string> SynchronizationActivities = {"synchronization"};
  std::vector<std::string> CommunicationActivities = {"point-to-point",
                                                      "collective"};
};

/// Runs every rule over \p Cube / \p Analysis and returns the findings
/// sorted by decreasing severity (ties by decreasing score).
std::vector<Diagnosis> diagnose(const MeasurementCube &Cube,
                                const AnalysisResult &Analysis,
                                const DiagnosisOptions &Options = {});

/// Renders findings as a numbered text report.
std::string renderDiagnoses(const MeasurementCube &Cube,
                            const std::vector<Diagnosis> &Findings);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_DIAGNOSIS_H
