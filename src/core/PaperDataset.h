//===- core/PaperDataset.h - Published-data reconstruction ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstruction of the paper's measurement cube.  The paper publishes
/// only aggregates: Table 1 (t_ij), Table 2 (ID_ij), the figures'
/// qualitative patterns and a handful of processor-view findings; the raw
/// t[i][j][p] values are lost.  This module rebuilds a full cube that
///
///  * reproduces Table 1 exactly (cell sums match the published t_ij),
///  * reproduces Table 2 exactly (each (i,j) share vector is constructed
///    as x = 1/P + ID_ij * u for a unit-norm, zero-sum direction u, so
///    the Euclidean index equals ID_ij by construction),
///  * and shapes the directions u to also reproduce the qualitative
///    facts: Figure 1's five-high / eleven-low computation patterns,
///    Figure 2's balanced point-to-point patterns, processor 1 being the
///    most imbalanced on loops 3 and 7, and processor 2 being imbalanced
///    longest (loop 1, ID_P ~ 0.2575, wall clock ~ 15.93 s).
///
/// Tables 3 and 4 are deterministic functions of Tables 1-2 and follow
/// automatically (with T = 69.9 s, the program time back-solved from the
/// published scaled indices).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_PAPERDATASET_H
#define LIMA_CORE_PAPERDATASET_H

#include "core/Measurement.h"
#include <array>

namespace lima {
namespace core {
namespace paper {

/// Extents of the paper's experiment: 7 loops, 4 activities, 16 procs.
inline constexpr size_t NumLoops = 7;
inline constexpr size_t NumActivities = 4;
inline constexpr unsigned NumProcs = 16;

/// The program wall clock time (seconds) back-solved from the published
/// SID columns; the instrumented loops sum to only 64.754 s.
inline constexpr double ProgramTime = 69.9;

/// Activity order used throughout (matches the tables' column order).
enum Activity : size_t {
  Computation = 0,
  PointToPoint = 1,
  Collective = 2,
  Synchronization = 3,
};

/// Table 1: t_ij in seconds, [loop][activity]; zero where the table
/// shows "-".
const std::array<std::array<double, NumActivities>, NumLoops> &table1();

/// Table 2: ID_ij, [loop][activity]; zero where the table shows "-".
const std::array<std::array<double, NumActivities>, NumLoops> &table2();

/// Table 3 as published: ID_A[j] and SID_A[j].
struct ActivitySummaryRow {
  double ID_A;
  double SID_A;
};
const std::array<ActivitySummaryRow, NumActivities> &table3();

/// Table 4 as published: ID_C[i] and SID_C[i].
struct RegionSummaryRow {
  double ID_C;
  double SID_C;
};
const std::array<RegionSummaryRow, NumLoops> &table4();

/// Processor-view findings quoted in Section 4 (1-based processor
/// numbers as in the paper).
struct ProcessorFindings {
  /// "processor 1 is the most frequently imbalanced" (loops 3 and 7).
  unsigned MostFrequentlyImbalanced = 1;
  /// "Processor 2 is imbalanced for the longest time."
  unsigned LongestImbalanced = 2;
  /// Loop 1 index of dispersion of processor 2.
  double Proc2Loop1Index = 0.25754;
  /// Processor 2's wall clock in loop 1, seconds.
  double Proc2Loop1WallClock = 15.93;
};
const ProcessorFindings &processorFindings();

/// Builds the reconstructed cube (regions "loop1".."loop7", the four
/// activities, 16 processors, explicit program time 69.9 s).
MeasurementCube buildCube();

} // namespace paper
} // namespace core
} // namespace lima

#endif // LIMA_CORE_PAPERDATASET_H
