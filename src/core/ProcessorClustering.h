//===- core/ProcessorClustering.h - Grouping similar processors -*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dual of the region-clustering step: group *processors* whose
/// behavior is alike.  Each processor is described by its standardized
/// time share of every (region, activity) cell; k-means over those
/// vectors exposes structural roles — edge vs interior ranks of a
/// decomposition, a master vs its workers, a degraded node — without
/// any prior knowledge of the program.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_PROCESSORCLUSTERING_H
#define LIMA_CORE_PROCESSORCLUSTERING_H

#include "cluster/KMeans.h"
#include "core/Measurement.h"
#include <vector>

namespace lima {
namespace core {

/// Processor-clustering configuration.
struct ProcessorClusteringOptions {
  /// Number of groups; 0 selects it by silhouette sweep up to MaxK.
  size_t K = 0;
  size_t MaxK = 4;
  cluster::KMeansOptions KMeans;
};

/// Result of clustering processors.
struct ProcessorClusters {
  /// Group id per processor.
  std::vector<size_t> Assignments;
  /// Processors in each group, rank-ordered.
  std::vector<std::vector<unsigned>> Groups;
  /// Mean silhouette of the partition.
  double Silhouette = 0.0;
};

/// The feature matrix: one row per processor; columns are that
/// processor's share of each (region, activity) cell (its time divided
/// by the cell's processor sum; all-zero cells contribute 0).  Shares
/// make the grouping about behavioral *shape*, not absolute speed.
std::vector<std::vector<double>>
processorFeatureMatrix(const MeasurementCube &Cube);

/// Clusters the cube's processors.
Expected<ProcessorClusters>
clusterProcessors(const MeasurementCube &Cube,
                  const ProcessorClusteringOptions &Options = {});

} // namespace core
} // namespace lima

#endif // LIMA_CORE_PROCESSORCLUSTERING_H
