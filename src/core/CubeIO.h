//===- core/CubeIO.h - Measurement cube persistence -------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV persistence for measurement cubes, so that measurements can be
/// stored, exchanged and re-analyzed without the original event traces —
/// the "community repository" use case of the Tracefile Testbed the
/// authors co-built (paper reference [3]).  Format: a header row
/// `region,activity,proc,seconds`, one row per nonzero cell, plus a
/// pseudo-row `#program-time,,,T` carrying the explicit program total.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_CUBEIO_H
#define LIMA_CORE_CUBEIO_H

#include "core/Measurement.h"
#include "support/Error.h"
#include "support/ParseLimits.h"
#include <string>

namespace lima {
namespace core {

/// Serializes \p Cube to CSV (deterministic row order).
std::string writeCubeCSV(const MeasurementCube &Cube);

/// Parses a cube from CSV produced by writeCubeCSV (or by hand/other
/// tools).  Regions, activities and the processor count are inferred
/// from the rows; region/activity order follows first appearance.
///
/// The header row and #-pseudo-rows are load-bearing (fatal in either
/// mode); data rows are records that ParseMode::Lenient drops (counted
/// in Options.Report) when malformed.  ParseLimits bounds the declared
/// dimensions and, crucially, the region x activity x processor cell
/// allocation.
Expected<MeasurementCube> parseCubeCSV(std::string_view Text,
                                       const ParseOptions &Options = {});

/// Convenience wrappers over whole files.
Error saveCube(const MeasurementCube &Cube, const std::string &Path);
Expected<MeasurementCube> loadCube(const std::string &Path,
                                   const ParseOptions &Options = {});

} // namespace core
} // namespace lima

#endif // LIMA_CORE_CUBEIO_H
