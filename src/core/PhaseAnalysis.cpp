//===- core/PhaseAnalysis.cpp - Per-instance (temporal) analysis ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/PhaseAnalysis.h"
#include "stats/Descriptive.h"
#include "stats/Dispersion.h"
#include "support/MathUtils.h"
#include <cassert>

using namespace lima;
using namespace lima::core;
using trace::Event;
using trace::EventKind;

Expected<PhaseResult> core::analyzePhases(const trace::Trace &T,
                                          const ViewOptions &Options) {
  if (auto Err = T.validate())
    return Err;

  size_t N = T.numRegions();
  size_t K = T.numActivities();
  unsigned P = T.numProcs();

  // PerInstance[region][instance][activity][proc] accumulated times.
  std::vector<std::vector<std::vector<std::vector<double>>>> PerInstance(N);
  // Instance counter per (region, proc).
  std::vector<std::vector<size_t>> InstanceCount(
      N, std::vector<size_t>(P, 0));

  for (unsigned Proc = 0; Proc != P; ++Proc) {
    // Regions may nest; activity time goes to the innermost frame's
    // instance (exclusive-time semantics, matching reduceTrace).
    struct Frame {
      uint32_t Region;
      size_t Instance;
    };
    std::vector<Frame> Stack;
    uint32_t OpenActivity = trace::Trace::InvalidId;
    double ActivityBegin = 0.0;
    for (const Event &E : T.events(Proc)) {
      switch (E.Kind) {
      case EventKind::RegionEnter: {
        size_t Instance = InstanceCount[E.Id][Proc]++;
        auto &Instances = PerInstance[E.Id];
        if (Instances.size() <= Instance)
          Instances.resize(Instance + 1,
                           std::vector<std::vector<double>>(
                               K, std::vector<double>(P, 0.0)));
        Stack.push_back({E.Id, Instance});
        break;
      }
      case EventKind::RegionExit:
        Stack.pop_back();
        break;
      case EventKind::ActivityBegin:
        OpenActivity = E.Id;
        ActivityBegin = E.Time;
        break;
      case EventKind::ActivityEnd:
        assert(!Stack.empty() &&
               "validated trace has activities inside regions");
        PerInstance[Stack.back().Region][Stack.back().Instance]
                   [OpenActivity][Proc] += E.Time - ActivityBegin;
        OpenActivity = trace::Trace::InvalidId;
        break;
      case EventKind::MessageSend:
      case EventKind::MessageRecv:
        break;
      }
    }
  }

  // All processors must agree on the instance count of each region they
  // execute at all.
  for (size_t I = 0; I != N; ++I) {
    size_t Expected = 0;
    for (unsigned Proc = 0; Proc != P; ++Proc)
      Expected = std::max(Expected, InstanceCount[I][Proc]);
    for (unsigned Proc = 0; Proc != P; ++Proc)
      if (InstanceCount[I][Proc] != Expected)
        return makeStringError(
            "region '%s': processor %u executed %zu instances, others %zu "
            "(phase analysis needs SPMD-shaped traces)",
            T.regionName(static_cast<uint32_t>(I)).c_str(), Proc,
            InstanceCount[I][Proc], Expected);
  }

  PhaseResult Result;
  Result.Series.resize(N);
  for (size_t I = 0; I != N; ++I) {
    PhaseSeries &Series = Result.Series[I];
    Series.Region = I;
    for (const auto &Activities : PerInstance[I]) {
      // Weighted dispersion across processors, exactly like ID_C but
      // restricted to this instance.
      double InstanceTotal = 0.0;
      KahanSum Weighted;
      for (size_t J = 0; J != K; ++J) {
        double Tij = stats::sum(Activities[J]) / P;
        if (Tij <= 0.0)
          continue;
        InstanceTotal += Tij;
        Weighted.add(Tij *
                     stats::imbalanceIndexAs(Options.Kind, Activities[J]));
      }
      Series.InstanceIndex.push_back(
          InstanceTotal > 0.0 ? Weighted.total() / InstanceTotal : 0.0);
      Series.InstanceTime.push_back(InstanceTotal);
    }
  }
  return Result;
}

Trend core::linearTrend(const std::vector<double> &Values) {
  Trend Result;
  size_t N = Values.size();
  if (N < 2)
    return Result;
  double MeanX = static_cast<double>(N - 1) / 2.0;
  double MeanY = stats::mean(Values);
  double Num = 0.0, Den = 0.0;
  for (size_t I = 0; I != N; ++I) {
    double DX = static_cast<double>(I) - MeanX;
    Num += DX * (Values[I] - MeanY);
    Den += DX * DX;
  }
  Result.Slope = Den > 0.0 ? Num / Den : 0.0;
  Result.RelativeSlope = MeanY != 0.0 ? Result.Slope / MeanY : 0.0;
  return Result;
}

std::string core::renderSparkline(const std::vector<double> &Values) {
  static const char Levels[] = ".:-=+*#%@";
  constexpr size_t NumLevels = sizeof(Levels) - 1;
  if (Values.empty())
    return "";
  double Lo = stats::minimum(Values);
  double Hi = stats::maximum(Values);
  std::string Out;
  Out.reserve(Values.size());
  for (double V : Values) {
    size_t Level = 0;
    if (Hi > Lo)
      Level = std::min(NumLevels - 1,
                       static_cast<size_t>((V - Lo) / (Hi - Lo) *
                                           (NumLevels - 1) +
                                           0.5));
    Out += Levels[Level];
  }
  return Out;
}
