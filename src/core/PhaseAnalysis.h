//===- core/PhaseAnalysis.h - Per-instance (temporal) analysis --*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Temporal refinement of the methodology: instead of aggregating a
/// whole run into one cube, each dynamic *instance* of a code region
/// (e.g. each iteration of a main loop) gets its own dissimilarity
/// index.  This localizes imbalance in time — a region can look mildly
/// imbalanced on aggregate while actually drifting from balanced to
/// severely skewed as the computation evolves (adaptive meshes, moving
/// fronts).  The per-instance series plus a least-squares trend make
/// that visible.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_PHASEANALYSIS_H
#define LIMA_CORE_PHASEANALYSIS_H

#include "core/Views.h"
#include "support/Error.h"
#include "trace/Trace.h"
#include <string>
#include <vector>

namespace lima {
namespace core {

/// Per-instance series of one region.
struct PhaseSeries {
  size_t Region = 0;
  /// ID_C-style dissimilarity of each instance (activity-weighted
  /// dispersion across processors within that instance).
  std::vector<double> InstanceIndex;
  /// Mean (over processors) wall clock of each instance.
  std::vector<double> InstanceTime;
};

/// Least-squares trend of a series.
struct Trend {
  /// Slope per instance.
  double Slope = 0.0;
  /// Slope normalized by the series mean (relative drift per instance).
  double RelativeSlope = 0.0;
};

/// Result of the temporal analysis.
struct PhaseResult {
  /// One series per region, in region order (regions never executed get
  /// empty series).
  std::vector<PhaseSeries> Series;
};

/// Splits \p T into region instances (the k-th execution of region i on
/// every processor is instance k) and computes per-instance indices.
///
/// Fails when the trace is invalid or processors executed a region a
/// different number of times (non-SPMD shape this analysis cannot
/// align).
Expected<PhaseResult> analyzePhases(const trace::Trace &T,
                                    const ViewOptions &Options = {});

/// Least-squares trend of \p Values (slope 0 for fewer than 2 points).
Trend linearTrend(const std::vector<double> &Values);

/// Renders \p Values as a one-line ASCII sparkline using ".:-=+*#%@"
/// from smallest to largest.
std::string renderSparkline(const std::vector<double> &Values);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_PHASEANALYSIS_H
