//===- core/WindowedAnalysis.cpp - Rolling-window imbalance ---------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/WindowedAnalysis.h"
#include "support/Metrics.h"
#include "trace/Trace.h"
#include <cassert>
#include <cmath>

using namespace lima;
using namespace lima::core;
using trace::Event;
using trace::EventKind;

WindowedAnalyzer::WindowedAnalyzer(std::vector<std::string> Regions,
                                   std::vector<std::string> Activities,
                                   unsigned Procs, WindowedOptions Opts)
    : RegionNames(std::move(Regions)), ActivityNames(std::move(Activities)),
      NumProcs(Procs), Options(std::move(Opts)) {
  assert(!RegionNames.empty() && !ActivityNames.empty() && NumProcs > 0 &&
         "windowed analysis needs declared regions, activities and procs");
  assert(Options.WindowSeconds > 0.0 && "window width must be positive");
  this->Procs.resize(NumProcs);
  for (ProcState &P : this->Procs)
    P.OpenActivity = trace::Trace::InvalidId;
}

uint64_t WindowedAnalyzer::windowIndexOf(double Time) const {
  double K = std::floor(Time / Options.WindowSeconds);
  if (K <= 0.0)
    return 0;
  // Casting a double at or beyond 2^64 to uint64_t is undefined
  // behavior; saturate instead (the limit checks reject such indices
  // long before 2^64 anyway).
  if (K >= 18446744073709551616.0) // 2^64
    return UINT64_MAX;
  return static_cast<uint64_t>(K);
}

WindowedAnalyzer::WindowAccum *WindowedAnalyzer::windowAt(uint64_t Index) {
  auto It = Windows.find(Index);
  if (It == Windows.end()) {
    if (Windows.size() >= Options.MaxWindowsInFlight)
      return nullptr;
    It = Windows
             .emplace(Index, WindowAccum(MeasurementCube(
                                 RegionNames, ActivityNames, NumProcs)))
             .first;
  }
  return &It->second;
}

Error WindowedAnalyzer::accumulateInterval(uint32_t Region, uint32_t Activity,
                                           unsigned Proc, double Begin,
                                           double End) {
  if (End <= Begin) // Zero-length intervals add nothing (reduceTrace adds 0.0).
    return Error::success();
  double W = Options.WindowSeconds;
  uint64_t First = windowIndexOf(Begin);
  // Fail before allocating: a finite but absurd end time (say 1e15 s
  // with a 1 s window) would otherwise drive one cube allocation per
  // window across the whole span.
  uint64_t Last = windowIndexOf(End);
  if (Last - First >= Options.MaxIntervalWindows)
    return makeCodedError(ErrorCode::LimitExceeded,
                          "proc %u: interval [%.9f, %.9f) spans more than "
                          "%llu windows of %.9f s",
                          Proc, Begin, End,
                          static_cast<unsigned long long>(
                              Options.MaxIntervalWindows),
                          W);
  for (uint64_t K = First;; ++K) {
    double WinStart = static_cast<double>(K) * W;
    if (WinStart >= End)
      break;
    double WinEnd = static_cast<double>(K + 1) * W;
    // An interval contained in one window reduces to the plain
    // End - Begin difference (max/min select the originals), keeping
    // single-window accumulation bit-identical to reduceTrace.
    double Lo = std::max(Begin, WinStart);
    double Hi = std::min(End, WinEnd);
    if (Hi > Lo) {
      WindowAccum *Accum = windowAt(K);
      if (!Accum)
        return makeCodedError(ErrorCode::LimitExceeded,
                              "more than %llu windows in flight; drain "
                              "more often or widen --window",
                              static_cast<unsigned long long>(
                                  Options.MaxWindowsInFlight));
      Accum->Cube.accumulate(Region, Activity, Proc, Hi - Lo);
      Accum->AnyTime = true;
    }
  }
  return Error::success();
}

Error WindowedAnalyzer::addEvent(const Event &E) {
  assert(!Finished && "addEvent after finish()");
  if (E.Proc >= NumProcs)
    return makeCodedError(ErrorCode::ValueOutOfRange,
                          "event processor %u out of range (trace declares "
                          "%u)",
                          E.Proc, NumProcs);
  // The parsers reject non-finite times, but events can also arrive
  // from in-memory traces; a non-finite time would poison the window
  // index arithmetic, so it is always an error here too.
  if (!std::isfinite(E.Time) || E.Time < 0.0)
    return makeCodedError(ErrorCode::ValueOutOfRange,
                          "proc %u event time %f is not finite and "
                          "non-negative",
                          E.Proc, E.Time);
  ProcState &P = Procs[E.Proc];
  if (P.AnyEvents && E.Time < P.LastTime)
    return makeCodedError(ErrorCode::StructuralError,
                          "proc %u time goes backwards (%.9f after %.9f)",
                          E.Proc, E.Time, P.LastTime);
  if (Options.Report)
    ++Options.Report->TotalRecords;

  // Mirrors TraceReduction's lenient contract: a structurally
  // impossible event is dropped and counted instead of aborting.  A
  // drop returns success so the event still reaches the timeline
  // updates below — its timestamp advances the processor clock and the
  // watermark, exactly like reduceTrace's span — it just attributes no
  // time.
  auto malformed = [&](const char *What) -> Error {
    ParseError PE{ErrorCode::StructuralError, 0, NoByteOffset,
                  "proc " + std::to_string(E.Proc) + ": " + What};
    if (Options.Mode == ParseMode::Lenient) {
      if (Options.Report)
        Options.Report->addDrop(std::move(PE));
      return Error::success();
    }
    return Error::fromParse(std::move(PE));
  };

  switch (E.Kind) {
  case EventKind::RegionEnter:
    if (E.Id >= RegionNames.size())
      return makeCodedError(ErrorCode::ValueOutOfRange,
                            "event region %u out of range", E.Id);
    P.Stack.push_back({E.Id});
    break;
  case EventKind::RegionExit:
    if (P.Stack.empty()) {
      if (auto Err = malformed("region exit without matching enter"))
        return Err;
    } else
      P.Stack.pop_back();
    break;
  case EventKind::ActivityBegin:
    if (E.Id >= ActivityNames.size())
      return makeCodedError(ErrorCode::ValueOutOfRange,
                            "event activity %u out of range", E.Id);
    if (P.Stack.empty()) {
      if (auto Err = malformed("activity begins outside any region"))
        return Err;
    } else {
      P.OpenActivity = E.Id;
      P.ActivityBeginTime = E.Time;
    }
    break;
  case EventKind::ActivityEnd:
    if (P.Stack.empty()) {
      if (auto Err = malformed("activity ends outside any region"))
        return Err;
    } else if (P.OpenActivity == trace::Trace::InvalidId) {
      if (auto Err = malformed("activity end without matching begin"))
        return Err;
    } else {
      if (auto Err = accumulateInterval(P.Stack.back().Region,
                                        P.OpenActivity, E.Proc,
                                        P.ActivityBeginTime, E.Time))
        return Err;
      P.OpenActivity = trace::Trace::InvalidId;
    }
    break;
  case EventKind::MessageSend:
  case EventKind::MessageRecv:
    break; // No attributable duration.
  }

  P.LastTime = E.Time;
  P.AnyEvents = true;
  MaxTime = std::max(MaxTime, E.Time);
  ++EventsSeen;
  WindowAccum *Accum = windowAt(windowIndexOf(E.Time));
  if (!Accum)
    return makeCodedError(ErrorCode::LimitExceeded,
                          "more than %llu windows in flight; drain more "
                          "often or widen --window",
                          static_cast<unsigned long long>(
                              Options.MaxWindowsInFlight));
  Accum->Events += 1;
  LIMA_METRIC_COUNT("lima.windowed.events_total", 1);
  return Error::success();
}

Error WindowedAnalyzer::addTrace(const trace::Trace &T) {
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc)
    for (const Event &E : T.events(Proc))
      if (auto Err = addEvent(E))
        return Err;
  return Error::success();
}

double WindowedAnalyzer::watermark() const {
  // The time below which no further attribution can happen: a
  // processor's open activity will be attributed back to its begin
  // time when it closes, so an open interval pins the watermark there.
  double Mark = MaxTime;
  for (const ProcState &P : Procs) {
    double Safe = !P.AnyEvents ? 0.0
                  : P.OpenActivity != trace::Trace::InvalidId
                      ? P.ActivityBeginTime
                      : P.LastTime;
    Mark = std::min(Mark, Safe);
  }
  return Mark;
}

WindowResult WindowedAnalyzer::emitWindow(uint64_t Index,
                                          WindowAccum &&Accum) {
  double W = Options.WindowSeconds;
  double Start = static_cast<double>(Index) * W;
  double End = static_cast<double>(Index + 1) * W;
  WindowResult R{Index,        Start, End, Accum.Events, !Accum.AnyTime,
                 std::move(Accum.Cube), {},  {},  {}};
  // Program time is the covered span, so SID scaling in a partial
  // final window reflects the time actually observed.  A full-span
  // single window reproduces reduceTrace's span-derived program time
  // bit for bit (min selects MaxTime, Start is 0).
  double Covered = std::min(MaxTime, End) - Start;
  if (Covered > 0.0)
    R.Cube.setProgramTime(Covered);
  if (!R.Empty) {
    R.Activities = computeActivityView(R.Cube, Options.Views);
    R.Regions = computeRegionView(R.Cube, Options.Views);
    R.Processors = computeProcessorView(R.Cube, Options.Views);
  }
  LIMA_METRIC_COUNT("lima.windowed.windows_total", 1);
  return R;
}

std::vector<WindowResult> WindowedAnalyzer::drainUpTo(double Bound,
                                                      bool Flush) {
  std::vector<WindowResult> Out;
  for (auto It = Windows.begin(); It != Windows.end();) {
    double WinEnd =
        static_cast<double>(It->first + 1) * Options.WindowSeconds;
    if (!Flush && WinEnd > Bound)
      break; // Map iteration is in index order; later windows end later.
    if (It->second.AnyTime || Options.EmitEmptyWindows)
      Out.push_back(emitWindow(It->first, std::move(It->second)));
    It = Windows.erase(It);
  }
  return Out;
}

std::vector<WindowResult> WindowedAnalyzer::drainCompleted() {
  return drainUpTo(watermark(), false);
}

std::vector<WindowResult> WindowedAnalyzer::finish() {
  Finished = true;
  return drainUpTo(0.0, true);
}
