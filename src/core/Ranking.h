//===- core/Ranking.h - Severity ranking criteria ---------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The criteria of Section 3 for assessing the severity of dissimilarity
/// indices: the maximum, the percentiles of their distribution, or
/// predefined thresholds.  Each criterion selects "candidates for
/// performance tuning" out of a labeled set of index values.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_RANKING_H
#define LIMA_CORE_RANKING_H

#include "support/Compiler.h"
#include <cassert>
#include <cstddef>
#include <string_view>
#include <vector>

namespace lima {
namespace core {

/// Which ranking criterion to apply.
enum class RankCriterion {
  /// Select only the item(s) attaining the maximum index.
  Maximum,
  /// Select items at or above the Q-th percentile of the index values.
  Percentile,
  /// Select items whose index exceeds a fixed threshold.
  Threshold,
};

/// Human-readable criterion name.
std::string_view rankCriterionName(RankCriterion Criterion);

/// Ranking configuration.
struct RankingOptions {
  RankCriterion Criterion = RankCriterion::Maximum;
  /// Percentile (0-100) for RankCriterion::Percentile.
  double Percentile = 85.0;
  /// Cutoff for RankCriterion::Threshold.
  double Threshold = 0.1;
};

/// One selected candidate.
struct RankedItem {
  /// Index into the input vector.
  size_t Item;
  /// The index-of-dispersion value that selected it.
  double Value;
};

/// Applies \p Options to \p Values and returns the selected candidates
/// sorted by decreasing value (ties by increasing item index).
std::vector<RankedItem> rankIndices(const std::vector<double> &Values,
                                    const RankingOptions &Options = {});

} // namespace core
} // namespace lima

#endif // LIMA_CORE_RANKING_H
