//===- core/SelfProfile.h - Dogfooded imbalance analysis --------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the loop the paper's conclusion asks for: LIMA is itself a
/// parallel program (the support/Parallel thread pool), so its own
/// telemetry — per-worker busy time, queue wait and idle time per
/// pipeline stage — is converted into the very MeasurementCube the
/// methodology analyzes:
///
///   region    = pipeline stage   (load, reduce, analyze, ...)
///   activity  = {compute, queue-wait, idle}
///   processor = worker           (0 = orchestrating thread)
///
/// Running the cube through core::analyze yields Table-1-style
/// breakdowns, ID_C / ID_P dispersion indices and ranked tuning
/// candidates *for LIMA's own execution* (`lima_analyze --self-profile`).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_SELFPROFILE_H
#define LIMA_CORE_SELFPROFILE_H

#include "core/Measurement.h"
#include "support/Error.h"
#include "support/Telemetry.h"

namespace lima {
namespace core {

/// Builds the self-profile measurement cube from a telemetry snapshot.
///
/// Per stage i and worker p: compute = instrumented busy time (the
/// interval union of tasks and spans), queue-wait =
/// submit-to-start latency of the tasks p executed, idle = the remainder
/// of the stage's wall time (clamped at zero under timer jitter).  Each
/// worker's row therefore sums to (approximately) the stage wall time,
/// so region times t_i reproduce the stage walls and imbalance across
/// workers is exactly what the dispersion indices measure.  The explicit
/// program time is the telemetry session wall clock.
///
/// Fails when the snapshot holds no stages or no wall time (telemetry
/// disabled, compiled out, or nothing instrumented ran).
Expected<MeasurementCube>
buildSelfProfileCube(const telemetry::Snapshot &S);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_SELFPROFILE_H
