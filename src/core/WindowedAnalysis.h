//===- core/WindowedAnalysis.h - Rolling-window imbalance -------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-resolved imbalance analysis: the event stream is cut into
/// fixed-width windows [k*W, (k+1)*W) anchored at t = 0, each window
/// accumulates its own measurement cube incrementally, and when a
/// window completes the paper's dispersion indices (ID_P, ID_A/SID_A,
/// ID_C/SID_C) are evaluated over just that window.  This turns the
/// post-mortem methodology into the rolling health signal a long-lived
/// trace consumer (lima_monitor) reports, following the time-resolved
/// reading of the indices in Haldar's trace-window analysis
/// (PAPERS.md).
///
/// Determinism contract: with a single window spanning the whole trace,
/// the accumulated cube — and therefore every derived index — is
/// bit-identical to core::reduceTrace + the whole-trace views.  Cell
/// accumulation happens per processor in event order, exactly like the
/// reduction's per-processor fold, and an interval that does not cross
/// a window boundary is added as one plain `end - begin` difference
/// (never as a sum of split parts).
///
/// Memory: O(windows in flight).  A window can be emitted once every
/// processor's stream has advanced past its end (the watermark); live
/// interleaved streams keep at most a couple of windows open, while a
/// processor-grouped post-mortem file holds windows until finish().
///
/// Unclosed intervals contribute nothing (matching reduceTrace, which
/// only accumulates on ActivityEnd); gap attribution is not supported
/// here.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_WINDOWEDANALYSIS_H
#define LIMA_CORE_WINDOWEDANALYSIS_H

#include "core/Measurement.h"
#include "core/Views.h"
#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Event.h"
#include <map>
#include <string>
#include <vector>

namespace lima {
namespace trace {
class Trace;
} // namespace trace
namespace core {

/// Options for the windowed analyzer.
struct WindowedOptions {
  /// Window width in seconds; windows are [k*W, (k+1)*W) from t = 0.
  double WindowSeconds = 1.0;
  /// Dispersion-index family for the per-window views.
  ViewOptions Views;
  /// Strict: the first structurally impossible event fails addEvent.
  /// Lenient: such events are dropped and counted into Report.
  ParseMode Mode = ParseMode::Strict;
  /// Receives dropped-event counts in lenient mode (may be null).
  ParseReport *Report = nullptr;
  /// Windows with no attributed time are skipped (no views can be
  /// computed over an all-zero cube); set to true to receive them
  /// anyway with Empty = true.
  bool EmitEmptyWindows = false;
  /// Caps on windowed bookkeeping, in the spirit of ParseLimits: a
  /// finite but absurd timestamp must not drive unbounded work.  A
  /// closed interval may span at most MaxIntervalWindows windows, and
  /// at most MaxWindowsInFlight windows may be held before draining;
  /// exceeding either fails addEvent with ErrorCode::LimitExceeded.
  /// The defaults accept any plausible real cadence (a million windows
  /// is 11 days at 1 s width) while bounding allocation.
  uint64_t MaxIntervalWindows = 1ull << 20;
  uint64_t MaxWindowsInFlight = 1ull << 20;
};

/// One completed window with its cube and index views.
struct WindowResult {
  /// Window number k; the window covers [k*W, (k+1)*W).
  uint64_t Index = 0;
  double StartTime = 0.0;
  double EndTime = 0.0;
  /// Events whose timestamp fell inside the window.
  uint64_t Events = 0;
  /// True when nothing was attributed (only with EmitEmptyWindows).
  bool Empty = false;
  /// The window's t[i][j][p] cube.  Program time is the covered span:
  /// min(window end, last event time) - window start.
  MeasurementCube Cube;
  ActivityView Activities;
  RegionView Regions;
  ProcessorView Processors;
};

/// Incremental per-window reduction + analysis.  Feed events (each
/// processor's events in non-decreasing time order; processors may
/// interleave arbitrarily), then drain completed windows as the
/// watermark advances, and finish() to flush the rest.
class WindowedAnalyzer {
public:
  /// Region/activity names and processor count come from the trace
  /// header (they bound the per-window cube's extents).
  WindowedAnalyzer(std::vector<std::string> RegionNames,
                   std::vector<std::string> ActivityNames, unsigned NumProcs,
                   WindowedOptions Options);

  /// Consumes one event.  Structural violations (exit without enter,
  /// activity outside a region, end without begin) fail in strict mode
  /// and are dropped + counted in lenient mode; a dropped event still
  /// advances the processor's clock, the watermark, and the event
  /// counters (mirroring reduceTrace, whose span includes dropped
  /// events), it just attributes no time.  Out-of-range ids,
  /// non-finite or negative times, and time regressions within a
  /// processor are always errors.
  Error addEvent(const trace::Event &E);

  /// Convenience: feeds every event of \p T in processor-major order
  /// (the same order writeTraceText emits).
  Error addTrace(const trace::Trace &T);

  /// Windows whose end lies at or below the watermark, in index order.
  /// Draining is destructive.
  std::vector<WindowResult> drainCompleted();

  /// Flushes every remaining window (the stream is over), in index
  /// order.  The analyzer stays usable only for inspection afterwards.
  std::vector<WindowResult> finish();

  /// min over all processors of the last event time seen (0 until every
  /// processor has produced at least one event).
  double watermark() const;

  /// max event time seen so far.
  double spanEnd() const { return MaxTime; }

  uint64_t eventsSeen() const { return EventsSeen; }
  double windowSeconds() const { return Options.WindowSeconds; }

private:
  struct ProcState {
    struct Frame {
      uint32_t Region;
    };
    std::vector<Frame> Stack;
    uint32_t OpenActivity;
    double ActivityBeginTime = 0.0;
    double LastTime = 0.0;
    bool AnyEvents = false;
  };

  struct WindowAccum {
    MeasurementCube Cube;
    uint64_t Events = 0;
    bool AnyTime = false;
    explicit WindowAccum(MeasurementCube C) : Cube(std::move(C)) {}
  };

  uint64_t windowIndexOf(double Time) const;
  /// The accumulator for window \p Index, or null when allocating it
  /// would exceed MaxWindowsInFlight.
  WindowAccum *windowAt(uint64_t Index);
  /// Splits [Begin, End) across windows and accumulates into cell
  /// (Region, Activity, Proc).  An interval inside one window is added
  /// as a single plain difference.  Fails with LimitExceeded when the
  /// interval spans more than MaxIntervalWindows windows or the
  /// in-flight cap is hit.
  Error accumulateInterval(uint32_t Region, uint32_t Activity, unsigned Proc,
                           double Begin, double End);
  WindowResult emitWindow(uint64_t Index, WindowAccum &&Accum);
  std::vector<WindowResult> drainUpTo(double Bound, bool Flush);

  std::vector<std::string> RegionNames;
  std::vector<std::string> ActivityNames;
  unsigned NumProcs;
  WindowedOptions Options;
  std::vector<ProcState> Procs;
  std::map<uint64_t, WindowAccum> Windows;
  double MaxTime = 0.0;
  uint64_t EventsSeen = 0;
  bool Finished = false;
};

} // namespace core
} // namespace lima

#endif // LIMA_CORE_WINDOWEDANALYSIS_H
