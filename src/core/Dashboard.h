//===- core/Dashboard.h - Live window API + dashboard endpoints -*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability surface over a WindowHistory: JSON history
/// queries, a Server-Sent-Events stream, and a dependency-free HTML
/// dashboard, mounted onto a status::StatusServer.  This lives in core
/// (not support) because it renders core analysis types — support
/// cannot depend on core, so the endpoints come to the server through
/// StatusServer::handle/handlePrefix.
///
///   /api/windows        every retained window summary as JSON;
///                       ?since=K cuts windows below index K, ?limit=N
///                       caps the count
///   /api/windows/<id>   one window's summary, 404 when evicted/unknown
///   /events             SSE stream: a `window` event per drained
///                       window, an `alert` event when the monitor's
///                       threshold fires (frames published by the app
///                       through the shared StreamHub)
///   /dashboard          inline HTML/JS page: live sparkline of the
///                       per-window max SID_C, a proc x window load
///                       heatmap, and the latest window's region table,
///                       fed by /events with automatic fallback to
///                       polling /api/windows.  Zero external assets.
///
/// The JSON renderers are pure functions, exposed so tests can pin the
/// wire format and the monitor can build its SSE frames without a
/// server.  All JSON is emitted single-line (SSE `data:` framing is
/// line-delimited).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_DASHBOARD_H
#define LIMA_CORE_DASHBOARD_H

#include "core/WindowHistory.h"
#include "support/HttpServer.h"
#include "support/StatusServer.h"
#include <memory>
#include <string>
#include <vector>

namespace lima {
namespace core {
namespace dash {

/// One summary as a single-line JSON object.  Names label the region /
/// activity vectors; shorter name vectors leave entries unnamed.
std::string windowJson(const WindowSummary &Summary,
                       const std::vector<std::string> &RegionNames,
                       const std::vector<std::string> &ActivityNames);

/// The /api/windows payload: ring stats, dimension names, and every
/// retained summary with Index >= \p Since (at most \p Limit, 0 = all).
std::string windowsJson(const WindowHistory &History, uint64_t Since = 0,
                        size_t Limit = 0);

/// A complete SSE frame ("event: window\ndata: {...}\n\n") for one
/// drained window.
std::string sseWindowFrame(const WindowSummary &Summary,
                           const std::vector<std::string> &RegionNames,
                           const std::vector<std::string> &ActivityNames);

/// A complete SSE frame ("event: alert\ndata: {...}\n\n") carrying the
/// triggering window id, region, its SID_C and the configured
/// threshold.
std::string sseAlertFrame(uint64_t WindowIndex, size_t Region,
                          const std::string &RegionName, double SidC,
                          double Threshold);

/// The dashboard page (static: state arrives over /events + /api).
std::string dashboardHtml(const std::string &Title);

struct DashboardOptions {
  std::string Title = "LIMA live imbalance dashboard";
};

/// Mounts the four endpoints.  \p History and \p Events are shared with
/// the producing application (the monitor appends summaries and
/// publishes frames); both must outlive the server.  Call before
/// StatusServer::start().
void mountDashboard(status::StatusServer &Server,
                    std::shared_ptr<WindowHistory> History,
                    std::shared_ptr<http::StreamHub> Events,
                    DashboardOptions Options = {});

} // namespace dash
} // namespace core
} // namespace lima

#endif // LIMA_CORE_DASHBOARD_H
