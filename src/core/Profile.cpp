//===- core/Profile.cpp - Coarse-grain performance properties -------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Profile.h"
#include "stats/Descriptive.h"
#include <limits>

using namespace lima;
using namespace lima::core;

CoarseProfile core::computeCoarseProfile(const MeasurementCube &Cube) {
  CoarseProfile Profile;
  Profile.ProgramTime = Cube.programTime();
  Profile.InstrumentedTime = Cube.instrumentedTotal();
  double T = Profile.ProgramTime;
  assert(T > 0.0 && "profile of an all-zero cube");

  std::vector<double> ActivityTimes(Cube.numActivities());
  for (size_t J = 0; J != Cube.numActivities(); ++J) {
    ActivityTimes[J] = Cube.activityTime(J);
    Profile.Activities.push_back({J, ActivityTimes[J], ActivityTimes[J] / T});
  }

  std::vector<double> RegionTimes(Cube.numRegions());
  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    RegionTotal Row;
    Row.Region = I;
    Row.Time = Cube.regionTime(I);
    Row.FractionOfProgram = Row.Time / T;
    Row.ByActivity = Cube.activityProfile(I);
    RegionTimes[I] = Row.Time;
    Profile.Regions.push_back(std::move(Row));
  }

  Profile.DominantActivity = stats::argMax(ActivityTimes);
  Profile.HeaviestRegion = stats::argMax(RegionTimes);

  std::vector<double> DominantColumn(Cube.numRegions());
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    DominantColumn[I] = Profile.Regions[I].ByActivity[Profile.DominantActivity];
  Profile.RegionDominatingDominantActivity = stats::argMax(DominantColumn);

  for (size_t J = 0; J != Cube.numActivities(); ++J) {
    ActivityExtremes Ext;
    Ext.Activity = J;
    Ext.WorstRegion = 0;
    Ext.WorstTime = 0.0;
    Ext.BestRegion = SIZE_MAX;
    Ext.BestTime = std::numeric_limits<double>::infinity();
    Ext.RegionsPerforming = 0;
    for (size_t I = 0; I != Cube.numRegions(); ++I) {
      double Tij = Profile.Regions[I].ByActivity[J];
      if (Tij > Ext.WorstTime) {
        Ext.WorstTime = Tij;
        Ext.WorstRegion = I;
      }
      if (Tij <= 0.0)
        continue;
      ++Ext.RegionsPerforming;
      if (Tij < Ext.BestTime) {
        Ext.BestTime = Tij;
        Ext.BestRegion = I;
      }
    }
    if (Ext.RegionsPerforming == 0) {
      Ext.BestTime = 0.0;
      Ext.WorstTime = 0.0;
    }
    Profile.Extremes.push_back(Ext);
  }
  return Profile;
}
