//===- core/Efficiency.h - Efficiency metrics -------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic efficiency metrics computed from the measurement cube,
/// connecting the paper's dissimilarity indices to the load-balance /
/// parallel-efficiency vocabulary later codified by tools like Scalasca:
///
///   load-balance efficiency LB = mean_p(W_p) / max_p(W_p)
///   communication efficiency  = computation share of the busy time
///   parallel efficiency       = LB * communication efficiency
///
/// where W_p is processor p's *useful work* — its time in the
/// computation activities.  Total busy time (which includes waits
/// inside communication and synchronization calls) is deliberately NOT
/// used for LB: in a synchronized program waits equalize busy time
/// across processors, so a busy-time LB is always ~1 and hides exactly
/// the imbalance being measured.  LB = 1 means perfectly balanced; the
/// difference 1 - LB is the fraction of the allocation wasted waiting
/// for the slowest processor.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_EFFICIENCY_H
#define LIMA_CORE_EFFICIENCY_H

#include "core/Measurement.h"
#include <vector>

namespace lima {
namespace core {

/// Efficiency metrics of one cube.
struct EfficiencyReport {
  /// Busy time of each processor (sum over regions and activities,
  /// including communication/synchronization waits).
  std::vector<double> BusyTime;
  /// Useful work of each processor (computation activities only).
  std::vector<double> UsefulWork;
  /// mean(W_p) / max(W_p) over the useful work, in (0, 1].
  double LoadBalance = 1.0;
  /// Per-region load balance, same formula on the region's useful work.
  std::vector<double> RegionLoadBalance;
  /// Fraction of total busy time in activities named in
  /// ComputationActivities (below).
  double ComputationShare = 1.0;
  /// LoadBalance * ComputationShare.
  double ParallelEfficiency = 1.0;
  /// Processor time idle-or-waiting relative to a perfectly balanced
  /// run: sum_p (max W - W_p) over the useful work, processor-seconds.
  double WastedProcessorSeconds = 0.0;
};

/// Options for computeEfficiency.
struct EfficiencyOptions {
  /// Activity names counted as useful computation.
  std::vector<std::string> ComputationActivities = {"computation"};
};

/// Computes the efficiency metrics of \p Cube.
EfficiencyReport computeEfficiency(const MeasurementCube &Cube,
                                   const EfficiencyOptions &Options = {});

} // namespace core
} // namespace lima

#endif // LIMA_CORE_EFFICIENCY_H
