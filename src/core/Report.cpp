//===- core/Report.cpp - Table and report rendering -----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "support/Format.h"

using namespace lima;
using namespace lima::core;

/// Renders a time cell, using "-" for activities a region does not
/// perform (matching the paper's tables).
static std::string timeCell(double Seconds) {
  if (Seconds <= 0.0)
    return "-";
  return formatFixed(Seconds, 3);
}

static std::string indexCell(double Index) {
  if (Index <= 0.0)
    return "-";
  return formatFixed(Index, 5);
}

TextTable core::makeRegionBreakdownTable(const MeasurementCube &Cube,
                                         const CoarseProfile &Profile) {
  std::vector<std::string> Header = {"region", "overall"};
  for (size_t J = 0; J != Cube.numActivities(); ++J)
    Header.push_back(Cube.activityName(J));
  TextTable Table(std::move(Header));
  Table.setTitle("Table 1: wall clock time of the regions and breakdown "
                 "into activities (seconds)");
  Table.setAlign(0, Align::Left);
  for (const RegionTotal &Row : Profile.Regions) {
    std::vector<std::string> Cells;
    Cells.push_back(Cube.regionName(Row.Region));
    Cells.push_back(formatFixed(Row.Time, 3));
    for (double Tij : Row.ByActivity)
      Cells.push_back(timeCell(Tij));
    Table.addRow(std::move(Cells));
  }
  return Table;
}

TextTable core::makeDissimilarityTable(const MeasurementCube &Cube,
                                       const ActivityView &View) {
  std::vector<std::string> Header = {"region"};
  for (size_t J = 0; J != Cube.numActivities(); ++J)
    Header.push_back(Cube.activityName(J));
  TextTable Table(std::move(Header));
  Table.setTitle("Table 2: indices of dispersion ID_ij of the activities "
                 "performed by the regions");
  Table.setAlign(0, Align::Left);
  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    std::vector<std::string> Cells;
    Cells.push_back(Cube.regionName(I));
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      Cells.push_back(indexCell(View.Dissimilarity[I][J]));
    Table.addRow(std::move(Cells));
  }
  return Table;
}

TextTable core::makeActivityViewTable(const MeasurementCube &Cube,
                                      const ActivityView &View) {
  TextTable Table({"activity", "ID_A", "SID_A"});
  Table.setTitle("Table 3: summary of the indices of dispersion of the "
                 "activity view");
  Table.setAlign(0, Align::Left);
  for (size_t J = 0; J != Cube.numActivities(); ++J)
    Table.addRow({Cube.activityName(J), formatFixed(View.Index[J], 5),
                  formatFixed(View.ScaledIndex[J], 5)});
  return Table;
}

TextTable core::makeRegionViewTable(const MeasurementCube &Cube,
                                    const RegionView &View) {
  TextTable Table({"region", "ID_C", "SID_C"});
  Table.setTitle("Table 4: summary of the indices of dispersion of the "
                 "code region view");
  Table.setAlign(0, Align::Left);
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    Table.addRow({Cube.regionName(I), formatFixed(View.Index[I], 5),
                  formatFixed(View.ScaledIndex[I], 5)});
  return Table;
}

TextTable core::makeProcessorViewTable(const MeasurementCube &Cube,
                                       const ProcessorView &View) {
  TextTable Table(
      {"region", "most imbalanced proc", "ID_P", "proc wall clock [s]"});
  Table.setTitle("Processor view: most imbalanced processor per region "
                 "(processors numbered from 1)");
  Table.setAlign(0, Align::Left);
  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    unsigned Proc = View.MostImbalancedProc[I];
    Table.addRow({Cube.regionName(I), std::to_string(Proc + 1),
                  formatFixed(View.Index[I][Proc], 5),
                  formatFixed(Cube.procRegionTime(I, Proc), 2)});
  }
  return Table;
}

TextTable core::makeProcessorMatrixTable(const MeasurementCube &Cube,
                                         const ProcessorView &View) {
  std::vector<std::string> Header = {"region"};
  for (unsigned P = 0; P != Cube.numProcs(); ++P)
    Header.push_back("p" + std::to_string(P + 1));
  TextTable Table(std::move(Header));
  Table.setTitle("Processor view: full ID_P matrix");
  Table.setAlign(0, Align::Left);
  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    std::vector<std::string> Row = {Cube.regionName(I)};
    for (unsigned P = 0; P != Cube.numProcs(); ++P)
      Row.push_back(View.Index[I][P] > 0.0
                        ? formatFixed(View.Index[I][P], 3)
                        : std::string("-"));
    Table.addRow(std::move(Row));
  }
  return Table;
}

std::string core::summarizeFindings(const MeasurementCube &Cube,
                                    const CoarseProfile &Profile,
                                    const ActivityView &AView,
                                    const RegionView &RView,
                                    const ProcessorView &PView) {
  std::string Out;
  Out += "The heaviest region is " +
         Cube.regionName(Profile.HeaviestRegion) + " (" +
         formatPercent(Profile.Regions[Profile.HeaviestRegion]
                           .FractionOfProgram) +
         " of the program wall clock time); the dominant activity is " +
         Cube.activityName(Profile.DominantActivity) + ".\n";
  Out += "The most imbalanced activity is " +
         Cube.activityName(AView.MostImbalanced) +
         " (ID_A = " + formatFixed(AView.Index[AView.MostImbalanced], 5) +
         "), but after scaling by its share of the program time the "
         "activity to tune is " +
         Cube.activityName(AView.MostImbalancedScaled) +
         " (SID_A = " +
         formatFixed(AView.ScaledIndex[AView.MostImbalancedScaled], 5) +
         ").\n";
  Out += "The most imbalanced region is " +
         Cube.regionName(RView.MostImbalanced) +
         " (ID_C = " + formatFixed(RView.Index[RView.MostImbalanced], 5) +
         "); weighted by region weight the best tuning candidate is " +
         Cube.regionName(RView.MostImbalancedScaled) +
         " (SID_C = " +
         formatFixed(RView.ScaledIndex[RView.MostImbalancedScaled], 5) +
         ").\n";
  unsigned Wins = PView.TimesMostImbalanced[PView.MostFrequentlyImbalanced];
  Out += "Processor " + std::to_string(PView.MostFrequentlyImbalanced + 1) +
         " is the most frequently imbalanced (" + std::to_string(Wins) +
         (Wins == 1 ? " region" : " regions") + "). Processor " +
         std::to_string(PView.LongestImbalanced + 1) +
         " is imbalanced for the longest time (" +
         formatFixed(PView.ImbalancedWallClock[PView.LongestImbalanced], 2) +
         " s).\n";
  return Out;
}

std::string core::describeClusters(const MeasurementCube &Cube,
                                   const RegionClusters &Clusters) {
  std::string Out;
  for (size_t G = 0; G != Clusters.Groups.size(); ++G) {
    Out += "group " + std::to_string(G) + ":";
    for (size_t Region : Clusters.Groups[G])
      Out += " " + Cube.regionName(Region);
    Out += "\n";
  }
  Out += "silhouette = " + formatFixed(Clusters.Silhouette, 3) + "\n";
  return Out;
}
