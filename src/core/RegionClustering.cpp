//===- core/RegionClustering.cpp - Grouping similar code regions ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/RegionClustering.h"
#include "cluster/Silhouette.h"
#include "stats/Descriptive.h"

using namespace lima;
using namespace lima::core;

std::vector<std::vector<double>>
core::regionFeatureMatrix(const MeasurementCube &Cube, bool Standardize) {
  std::vector<std::vector<double>> Points;
  Points.reserve(Cube.numRegions());
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    Points.push_back(Cube.activityProfile(I));
  if (!Standardize)
    return Points;
  for (size_t J = 0; J != Cube.numActivities(); ++J) {
    std::vector<double> Column(Cube.numRegions());
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      Column[I] = Points[I][J];
    double Mean = stats::mean(Column);
    double Sd = stats::stdDev(Column);
    for (size_t I = 0; I != Cube.numRegions(); ++I)
      Points[I][J] = Sd > 0.0 ? (Points[I][J] - Mean) / Sd : 0.0;
  }
  return Points;
}

Expected<RegionClusters>
core::clusterRegions(const MeasurementCube &Cube,
                     const RegionClusteringOptions &Options) {
  std::vector<std::vector<double>> Points =
      regionFeatureMatrix(Cube, Options.StandardizeFeatures);

  cluster::KMeansOptions KOpts = Options.KMeans;
  KOpts.K = Options.K;
  auto ResultOrErr = cluster::kMeans(Points, KOpts);
  if (auto Err = ResultOrErr.takeError())
    return Err;

  RegionClusters Clusters;
  Clusters.Assignments = ResultOrErr->Assignments;
  Clusters.Groups = ResultOrErr->members();
  Clusters.Inertia = ResultOrErr->Inertia;
  Clusters.Silhouette =
      cluster::silhouetteScore(Points, Clusters.Assignments);
  return Clusters;
}
