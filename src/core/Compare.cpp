//===- core/Compare.cpp - Before/after run comparison ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Compare.h"
#include "support/Compiler.h"
#include "support/Format.h"
#include <cmath>

using namespace lima;
using namespace lima::core;

std::string_view core::regionVerdictName(RegionVerdict Verdict) {
  switch (Verdict) {
  case RegionVerdict::Improved:
    return "improved";
  case RegionVerdict::Regressed:
    return "regressed";
  case RegionVerdict::Unchanged:
    return "unchanged";
  }
  lima_unreachable("unknown RegionVerdict");
}

Expected<RunComparison> core::compareRuns(const MeasurementCube &Before,
                                          const MeasurementCube &After,
                                          const CompareOptions &Options) {
  if (Before.regionNames() != After.regionNames())
    return makeStringError("cubes disagree on the region set");
  if (Before.activityNames() != After.activityNames())
    return makeStringError("cubes disagree on the activity set");

  RegionView ViewBefore = computeRegionView(Before, Options.Views);
  RegionView ViewAfter = computeRegionView(After, Options.Views);

  RunComparison Comparison;
  Comparison.ProgramTimeBefore = Before.programTime();
  Comparison.ProgramTimeAfter = After.programTime();
  Comparison.Speedup = Comparison.ProgramTimeAfter > 0.0
                           ? Comparison.ProgramTimeBefore /
                                 Comparison.ProgramTimeAfter
                           : 1.0;

  for (size_t I = 0; I != Before.numRegions(); ++I) {
    RegionDelta Delta;
    Delta.Region = I;
    Delta.TimeBefore = Before.regionTime(I);
    Delta.TimeAfter = After.regionTime(I);
    Delta.IndexBefore = ViewBefore.Index[I];
    Delta.IndexAfter = ViewAfter.Index[I];

    double TimeBase = std::max(Delta.TimeBefore, 1e-12);
    double RelativeTime = (Delta.TimeAfter - Delta.TimeBefore) / TimeBase;
    double IndexChange = Delta.IndexAfter - Delta.IndexBefore;
    bool TimeMoved = std::fabs(RelativeTime) > Options.TimeTolerance;
    bool IndexMoved = std::fabs(IndexChange) > Options.IndexTolerance;
    if (!TimeMoved && !IndexMoved)
      Delta.Verdict = RegionVerdict::Unchanged;
    else if (RelativeTime <= Options.TimeTolerance &&
             IndexChange <= Options.IndexTolerance)
      Delta.Verdict = RegionVerdict::Improved;
    else if (RelativeTime >= -Options.TimeTolerance &&
             IndexChange >= -Options.IndexTolerance)
      Delta.Verdict = RegionVerdict::Regressed;
    else
      Delta.Verdict = RegionVerdict::Unchanged; // Mixed signals.
    Comparison.Regions.push_back(Delta);
  }
  return Comparison;
}

TextTable core::makeComparisonTable(const MeasurementCube &Before,
                                    const RunComparison &Comparison) {
  TextTable Table({"region", "time before [s]", "time after [s]",
                   "ID before", "ID after", "verdict"});
  Table.setTitle("Before/after comparison (speedup " +
                 formatFixed(Comparison.Speedup, 2) + "x)");
  Table.setAlign(0, Align::Left);
  Table.setAlign(5, Align::Left);
  for (const RegionDelta &Delta : Comparison.Regions)
    Table.addRow({Before.regionName(Delta.Region),
                  formatFixed(Delta.TimeBefore, 3),
                  formatFixed(Delta.TimeAfter, 3),
                  formatFixed(Delta.IndexBefore, 4),
                  formatFixed(Delta.IndexAfter, 4),
                  std::string(regionVerdictName(Delta.Verdict))});
  return Table;
}
