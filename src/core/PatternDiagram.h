//===- core/PatternDiagram.h - Figure 1/2 pattern diagrams ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qualitative per-processor pattern diagrams of the paper's Figures
/// 1 and 2: for one activity, each row is a code region performing it and
/// each cell classifies one processor's wall-clock time against the
/// row's range — the maximum, the minimum, the upper or lower 15% band of
/// the range, or the middle.  Rendered as ASCII art or as a PPM image.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_PATTERNDIAGRAM_H
#define LIMA_CORE_PATTERNDIAGRAM_H

#include "core/Measurement.h"
#include <string>
#include <vector>

namespace lima {
namespace core {

/// Classification of one processor's time within its region row.
enum class PatternCategory : uint8_t {
  /// The largest time of the row.
  Maximum,
  /// Within the upper band (>= max - band * range), but not the maximum.
  UpperBand,
  /// Between the bands.
  Middle,
  /// Within the lower band (<= min + band * range), but not the minimum.
  LowerBand,
  /// The smallest time of the row.
  Minimum,
};

/// Single-character mnemonic used by the ASCII rendering
/// (M, +, ., -, m in the category order above).
char patternCategoryChar(PatternCategory Category);

/// The pattern diagram of one activity.
struct PatternDiagram {
  /// The activity the diagram describes.
  size_t Activity = 0;
  /// Band width as a fraction of the row range (paper: 0.15).
  double BandFraction = 0.15;
  /// Regions performing the activity, in region order (rows).
  std::vector<size_t> Regions;
  /// Cells[row][proc] classification.
  std::vector<std::vector<PatternCategory>> Cells;

  /// Number of processors of \p Category in \p Row.
  size_t countInRow(size_t Row, PatternCategory Category) const;
};

/// Builds the diagram of \p Activity over \p Cube.  Regions with zero
/// total time in the activity are omitted ("the diagrams plot only the
/// loops performing the activity").  Rows whose times are all equal
/// classify every processor as Middle (no meaningful extremes).
PatternDiagram computePatternDiagram(const MeasurementCube &Cube,
                                     size_t Activity,
                                     double BandFraction = 0.15);

/// Renders \p Diagram as ASCII art with a legend, one row per region.
std::string renderPatternASCII(const PatternDiagram &Diagram,
                               const MeasurementCube &Cube);

/// Renders \p Diagram as a plain-text PPM (P3) image, \p CellSize pixels
/// per cell, using the four-color scheme of the paper's figures.
std::string renderPatternPPM(const PatternDiagram &Diagram,
                             unsigned CellSize = 12);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_PATTERNDIAGRAM_H
