//===- core/TraceReduction.h - Trace to measurement cube --------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-mortem reduction of an event trace to the measurement cube: for
/// every processor, activity intervals are attributed to the enclosing
/// code region.  This is the "analyzing the performance measures post
/// mortem" step of the paper's experimental approach.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_TRACEREDUCTION_H
#define LIMA_CORE_TRACEREDUCTION_H

#include "core/Measurement.h"
#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Trace.h"

namespace lima {
namespace core {

/// Options for reduceTrace.
struct ReductionOptions {
  /// When true, time inside a region not covered by any activity bracket
  /// is attributed to GapActivity (by id); when false, gaps are dropped.
  bool AttributeGaps = false;
  /// Activity receiving gap time when AttributeGaps is set.
  uint32_t GapActivity = 0;
  /// Set the cube's explicit program time to the trace span (max event
  /// time): the program's wall-clock duration, including uninstrumented
  /// stretches between regions.
  bool ProgramTimeFromSpan = true;
  /// Worker threads for the per-processor reduction shards (0 = all
  /// hardware threads, 1 = serial).  Results are bit-identical at any
  /// setting: each processor's stream folds into disjoint cube cells.
  unsigned Threads = 0;
  /// Strict: the first structurally impossible event aborts the
  /// reduction.  Lenient: such events are skipped (the fold continues
  /// with the surrounding structure intact), counted into Report, and
  /// full-trace validation is not run first — one bad event no longer
  /// kills a million-event analysis.
  ParseMode Mode = ParseMode::Strict;
  /// Receives dropped-event counts in lenient mode.  Per-processor
  /// shard reports are merged in processor order, so counts are
  /// deterministic at any thread count.
  ParseReport *Report = nullptr;
};

/// Reduces \p T to a cube with one region per trace region, one activity
/// per trace activity and one column per processor.  In strict mode runs
/// trace::Trace::validate() first and propagates its errors; the fold
/// itself additionally rejects structurally impossible streams (region
/// exit without enter, activity brackets outside any region) with a
/// typed ErrorCode::StructuralError rather than relying on validation
/// having run.  In lenient mode those events are dropped and counted
/// instead (see ReductionOptions::Mode).
Expected<MeasurementCube> reduceTrace(const trace::Trace &T,
                                      const ReductionOptions &Options = {});

} // namespace core
} // namespace lima

#endif // LIMA_CORE_TRACEREDUCTION_H
