//===- core/Views.cpp - Processor, activity and region views --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Views.h"
#include "stats/Descriptive.h"
#include "stats/Standardize.h"
#include "support/MathUtils.h"
#include <cmath>

using namespace lima;
using namespace lima::core;

std::vector<std::vector<double>>
core::computeDissimilarityMatrix(const MeasurementCube &Cube,
                                 const ViewOptions &Options) {
  std::vector<std::vector<double>> Matrix(
      Cube.numRegions(), std::vector<double>(Cube.numActivities(), 0.0));
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      Matrix[I][J] =
          stats::imbalanceIndexAs(Options.Kind, Cube.processorSlice(I, J));
  return Matrix;
}

ProcessorView core::computeProcessorView(const MeasurementCube &Cube,
                                         const ViewOptions &Options) {
  // The processor view compares whole activity-mix *vectors*, so the
  // index family option does not apply here; the paper's Euclidean
  // distance between a processor's standardized mix and the mean mix is
  // used unconditionally.
  (void)Options;

  size_t N = Cube.numRegions();
  size_t K = Cube.numActivities();
  unsigned P = Cube.numProcs();

  ProcessorView View;
  View.Index.assign(N, std::vector<double>(P, 0.0));
  View.MostImbalancedProc.assign(N, 0);
  View.TimesMostImbalanced.assign(P, 0);
  View.ImbalancedWallClock.assign(P, 0.0);

  for (size_t I = 0; I != N; ++I) {
    // Standardize each processor's times over its own total within the
    // region ("...standardizing the t_ijp's over the sum of the times
    // spent by each processor in the various activities performed within
    // a given code region").
    std::vector<std::vector<double>> Mix(P);
    std::vector<bool> Active(P, false);
    for (unsigned Q = 0; Q != P; ++Q) {
      std::vector<double> Slice = Cube.activitySliceForProc(I, Q);
      double Total = stats::sum(Slice);
      if (Total > 0.0) {
        Active[Q] = true;
        Mix[Q] = stats::toShares(Slice);
      } else {
        Mix[Q].assign(K, 0.0); // Idle processor: excluded from the mean.
      }
    }
    unsigned ActiveCount = 0;
    std::vector<double> MeanMix(K, 0.0);
    for (unsigned Q = 0; Q != P; ++Q) {
      if (!Active[Q])
        continue;
      ++ActiveCount;
      for (size_t J = 0; J != K; ++J)
        MeanMix[J] += Mix[Q][J];
    }
    if (ActiveCount == 0)
      continue; // Nobody executed this region: all indices stay 0.
    for (size_t J = 0; J != K; ++J)
      MeanMix[J] /= static_cast<double>(ActiveCount);

    for (unsigned Q = 0; Q != P; ++Q) {
      if (!Active[Q])
        continue;
      KahanSum Acc;
      for (size_t J = 0; J != K; ++J)
        Acc.add((Mix[Q][J] - MeanMix[J]) * (Mix[Q][J] - MeanMix[J]));
      View.Index[I][Q] = std::sqrt(Acc.total());
    }
    View.MostImbalancedProc[I] =
        static_cast<unsigned>(stats::argMax(View.Index[I]));
  }

  for (size_t I = 0; I != N; ++I) {
    unsigned Worst = View.MostImbalancedProc[I];
    ++View.TimesMostImbalanced[Worst];
    View.ImbalancedWallClock[Worst] += Cube.procRegionTime(I, Worst);
  }

  std::vector<double> Freq(View.TimesMostImbalanced.begin(),
                           View.TimesMostImbalanced.end());
  View.MostFrequentlyImbalanced = static_cast<unsigned>(stats::argMax(Freq));
  View.LongestImbalanced =
      static_cast<unsigned>(stats::argMax(View.ImbalancedWallClock));
  return View;
}

ActivityView core::computeActivityView(const MeasurementCube &Cube,
                                       const ViewOptions &Options) {
  ActivityView View;
  View.Dissimilarity = computeDissimilarityMatrix(Cube, Options);
  size_t N = Cube.numRegions();
  size_t K = Cube.numActivities();
  double T = Cube.programTime();
  assert(T > 0.0 && "activity view of an all-zero cube");

  View.Index.assign(K, 0.0);
  View.ScaledIndex.assign(K, 0.0);
  for (size_t J = 0; J != K; ++J) {
    double Tj = Cube.activityTime(J);
    if (Tj <= 0.0)
      continue;
    KahanSum Weighted;
    for (size_t I = 0; I != N; ++I)
      Weighted.add(Cube.regionActivityTime(I, J) * View.Dissimilarity[I][J]);
    View.Index[J] = Weighted.total() / Tj;
    View.ScaledIndex[J] = Tj / T * View.Index[J];
  }
  View.MostImbalanced = stats::argMax(View.Index);
  View.MostImbalancedScaled = stats::argMax(View.ScaledIndex);
  return View;
}

RegionView core::computeRegionView(const MeasurementCube &Cube,
                                   const ViewOptions &Options) {
  std::vector<std::vector<double>> Dissimilarity =
      computeDissimilarityMatrix(Cube, Options);
  size_t N = Cube.numRegions();
  size_t K = Cube.numActivities();
  double T = Cube.programTime();
  assert(T > 0.0 && "region view of an all-zero cube");

  RegionView View;
  View.Index.assign(N, 0.0);
  View.ScaledIndex.assign(N, 0.0);
  for (size_t I = 0; I != N; ++I) {
    double Ti = Cube.regionTime(I);
    if (Ti <= 0.0)
      continue;
    KahanSum Weighted;
    for (size_t J = 0; J != K; ++J)
      Weighted.add(Cube.regionActivityTime(I, J) * Dissimilarity[I][J]);
    View.Index[I] = Weighted.total() / Ti;
    View.ScaledIndex[I] = Ti / T * View.Index[I];
  }
  View.MostImbalanced = stats::argMax(View.Index);
  View.MostImbalancedScaled = stats::argMax(View.ScaledIndex);
  return View;
}
