//===- core/Efficiency.cpp - Efficiency metrics ---------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Efficiency.h"
#include "stats/Descriptive.h"
#include "support/MathUtils.h"
#include <algorithm>

using namespace lima;
using namespace lima::core;

EfficiencyReport core::computeEfficiency(const MeasurementCube &Cube,
                                         const EfficiencyOptions &Options) {
  EfficiencyReport Report;
  unsigned P = Cube.numProcs();

  auto isComputation = [&](size_t J) {
    return std::find(Options.ComputationActivities.begin(),
                     Options.ComputationActivities.end(),
                     Cube.activityName(J)) !=
           Options.ComputationActivities.end();
  };

  Report.BusyTime.assign(P, 0.0);
  Report.UsefulWork.assign(P, 0.0);
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      for (unsigned Proc = 0; Proc != P; ++Proc) {
        double Value = Cube.time(I, J, Proc);
        Report.BusyTime[Proc] += Value;
        if (isComputation(J))
          Report.UsefulWork[Proc] += Value;
      }

  double MaxWork = stats::maximum(Report.UsefulWork);
  double MeanWork = stats::mean(Report.UsefulWork);
  Report.LoadBalance = MaxWork > 0.0 ? MeanWork / MaxWork : 1.0;
  KahanSum Wasted;
  for (double Work : Report.UsefulWork)
    Wasted.add(MaxWork - Work);
  Report.WastedProcessorSeconds = Wasted.total();

  Report.RegionLoadBalance.assign(Cube.numRegions(), 1.0);
  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    std::vector<double> Region(P, 0.0);
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      if (isComputation(J))
        for (unsigned Proc = 0; Proc != P; ++Proc)
          Region[Proc] += Cube.time(I, J, Proc);
    double Max = stats::maximum(Region);
    if (Max > 0.0)
      Report.RegionLoadBalance[I] = stats::mean(Region) / Max;
  }

  double ComputationTime = 0.0;
  for (size_t J = 0; J != Cube.numActivities(); ++J)
    if (isComputation(J))
      ComputationTime += Cube.activityTime(J);
  double Total = Cube.instrumentedTotal();
  Report.ComputationShare = Total > 0.0 ? ComputationTime / Total : 1.0;
  Report.ParallelEfficiency = Report.LoadBalance * Report.ComputationShare;
  return Report;
}
