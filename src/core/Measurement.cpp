//===- core/Measurement.cpp - The t[i][j][p] measurement cube -------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Measurement.h"
#include "support/MathUtils.h"
#include <set>

using namespace lima;
using namespace lima::core;

MeasurementCube::MeasurementCube(std::vector<std::string> RegionNames,
                                 std::vector<std::string> ActivityNames,
                                 unsigned NumProcs)
    : RegionNames_(std::move(RegionNames)),
      ActivityNames_(std::move(ActivityNames)), NumProcs_(NumProcs) {
  assert(!RegionNames_.empty() && "cube needs at least one region");
  assert(!ActivityNames_.empty() && "cube needs at least one activity");
  assert(NumProcs_ > 0 && "cube needs at least one processor");
  assert(std::set<std::string>(RegionNames_.begin(), RegionNames_.end())
                 .size() == RegionNames_.size() &&
         "duplicate region names");
  assert(std::set<std::string>(ActivityNames_.begin(), ActivityNames_.end())
                 .size() == ActivityNames_.size() &&
         "duplicate activity names");
  Data.assign(RegionNames_.size() * ActivityNames_.size() * NumProcs_, 0.0);
}

double MeasurementCube::regionActivityTime(size_t I, size_t J) const {
  KahanSum Sum;
  for (unsigned P = 0; P != NumProcs_; ++P)
    Sum.add(time(I, J, P));
  return Sum.total() / static_cast<double>(NumProcs_);
}

double MeasurementCube::regionTime(size_t I) const {
  KahanSum Sum;
  for (size_t J = 0; J != numActivities(); ++J)
    for (unsigned P = 0; P != NumProcs_; ++P)
      Sum.add(time(I, J, P));
  return Sum.total() / static_cast<double>(NumProcs_);
}

double MeasurementCube::activityTime(size_t J) const {
  KahanSum Sum;
  for (size_t I = 0; I != numRegions(); ++I)
    for (unsigned P = 0; P != NumProcs_; ++P)
      Sum.add(time(I, J, P));
  return Sum.total() / static_cast<double>(NumProcs_);
}

double MeasurementCube::instrumentedTotal() const {
  return sumKahan(Data) / static_cast<double>(NumProcs_);
}

double MeasurementCube::cellSum() const { return sumKahan(Data); }

double MeasurementCube::procRegionTime(size_t I, unsigned P) const {
  KahanSum Sum;
  for (size_t J = 0; J != numActivities(); ++J)
    Sum.add(time(I, J, P));
  return Sum.total();
}

double MeasurementCube::programTime() const {
  return ProgramTotal.value_or(instrumentedTotal());
}

std::vector<double> MeasurementCube::processorSlice(size_t I, size_t J) const {
  std::vector<double> Slice(NumProcs_);
  for (unsigned P = 0; P != NumProcs_; ++P)
    Slice[P] = time(I, J, P);
  return Slice;
}

std::vector<double> MeasurementCube::activityProfile(size_t I) const {
  std::vector<double> Profile(numActivities());
  for (size_t J = 0; J != numActivities(); ++J)
    Profile[J] = regionActivityTime(I, J);
  return Profile;
}

std::vector<double> MeasurementCube::activitySliceForProc(size_t I,
                                                          unsigned P) const {
  std::vector<double> Slice(numActivities());
  for (size_t J = 0; J != numActivities(); ++J)
    Slice[J] = time(I, J, P);
  return Slice;
}

Error MeasurementCube::validate() const {
  for (size_t I = 0; I != numRegions(); ++I)
    for (size_t J = 0; J != numActivities(); ++J)
      for (unsigned P = 0; P != NumProcs_; ++P)
        if (time(I, J, P) < 0.0)
          return makeStringError(
              "cube cell (%zu, %zu, %u) is negative: %g", I, J, P,
              time(I, J, P));
  if (ProgramTotal) {
    double Instrumented = instrumentedTotal();
    // Allow a relative epsilon so cubes built from traces round-trip.
    if (*ProgramTotal < Instrumented * (1.0 - 1e-9) - 1e-12)
      return makeStringError("explicit program time %g is smaller than the "
                             "instrumented total %g",
                             *ProgramTotal, Instrumented);
  }
  return Error::success();
}
