//===- core/Pipeline.cpp - End-to-end analysis facade ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

using namespace lima;
using namespace lima::core;

Expected<AnalysisResult> core::analyze(const MeasurementCube &Cube,
                                       const AnalysisOptions &Options) {
  if (auto Err = Cube.validate())
    return Err;
  if (Cube.instrumentedTotal() <= 0.0)
    return makeStringError("measurement cube carries no time");

  AnalysisResult Result;
  Result.Profile = computeCoarseProfile(Cube);
  Result.Activities = computeActivityView(Cube, Options.Views);
  Result.Regions = computeRegionView(Cube, Options.Views);
  Result.Processors = computeProcessorView(Cube, Options.Views);

  for (size_t J = 0; J != Cube.numActivities(); ++J) {
    if (Cube.activityTime(J) <= 0.0)
      continue;
    Result.Patterns.push_back(
        computePatternDiagram(Cube, J, Options.PatternBand));
  }

  if (Options.Clusters >= 2 && Cube.numRegions() >= 2) {
    RegionClusteringOptions ClusterOpts = Options.Clustering;
    ClusterOpts.K = Options.Clusters;
    auto ClustersOrErr = clusterRegions(Cube, ClusterOpts);
    if (ClustersOrErr) {
      Result.Clusters = std::move(*ClustersOrErr);
      Result.HasClusters = true;
    } else {
      // Too few distinct regions for the requested K: clustering is an
      // optional refinement, so degrade gracefully.
      ClustersOrErr.takeError().consume();
    }
  }

  Result.RegionCandidates =
      rankIndices(Result.Regions.ScaledIndex, Options.Ranking);
  Result.ActivityCandidates =
      rankIndices(Result.Activities.ScaledIndex, Options.Ranking);
  return Result;
}
