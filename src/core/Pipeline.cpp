//===- core/Pipeline.cpp - End-to-end analysis facade ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "support/Parallel.h"
#include "support/Telemetry.h"
#include <functional>

using namespace lima;
using namespace lima::core;

Expected<AnalysisResult> core::analyze(const MeasurementCube &Cube,
                                       const AnalysisOptions &Options) {
  if (auto Err = Cube.validate())
    return Err;
  if (Cube.instrumentedTotal() <= 0.0)
    return makeStringError("measurement cube carries no time");

  LIMA_STAGE("analyze");
  AnalysisResult Result;

  // The profile, the three views and the pattern diagrams only read the
  // cube and each fill their own result slot, so they run as one batch
  // of independent tasks.  Ranking and clustering consume the views and
  // follow serially.
  std::vector<size_t> ActiveActivities;
  for (size_t J = 0; J != Cube.numActivities(); ++J)
    if (Cube.activityTime(J) > 0.0)
      ActiveActivities.push_back(J);
  Result.Patterns.resize(ActiveActivities.size());

  std::vector<std::function<void()>> Tasks;
  Tasks.push_back([&] {
    LIMA_SPAN("analyze.profile");
    Result.Profile = computeCoarseProfile(Cube);
  });
  Tasks.push_back([&] {
    LIMA_SPAN("analyze.activity-view");
    Result.Activities = computeActivityView(Cube, Options.Views);
  });
  Tasks.push_back([&] {
    LIMA_SPAN("analyze.region-view");
    Result.Regions = computeRegionView(Cube, Options.Views);
  });
  Tasks.push_back([&] {
    LIMA_SPAN("analyze.processor-view");
    Result.Processors = computeProcessorView(Cube, Options.Views);
  });
  for (size_t Slot = 0; Slot != ActiveActivities.size(); ++Slot)
    Tasks.push_back([&, Slot] {
      LIMA_SPAN("analyze.pattern");
      Result.Patterns[Slot] = computePatternDiagram(
          Cube, ActiveActivities[Slot], Options.PatternBand);
    });
  parallelFor(Tasks.size(), Options.Threads,
              [&](size_t Task) { Tasks[Task](); });

  if (Options.Clusters >= 2 && Cube.numRegions() >= 2) {
    LIMA_SPAN("analyze.cluster");
    RegionClusteringOptions ClusterOpts = Options.Clustering;
    ClusterOpts.K = Options.Clusters;
    ClusterOpts.KMeans.Threads = Options.Threads;
    auto ClustersOrErr = clusterRegions(Cube, ClusterOpts);
    if (ClustersOrErr) {
      Result.Clusters = std::move(*ClustersOrErr);
      Result.HasClusters = true;
    } else {
      // Too few distinct regions for the requested K: clustering is an
      // optional refinement, so degrade gracefully.
      ClustersOrErr.takeError().consume();
    }
  }

  Result.RegionCandidates =
      rankIndices(Result.Regions.ScaledIndex, Options.Ranking);
  Result.ActivityCandidates =
      rankIndices(Result.Activities.ScaledIndex, Options.Ranking);
  return Result;
}
