//===- core/SelfProfile.cpp - Dogfooded imbalance analysis ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/SelfProfile.h"
#include <algorithm>

using namespace lima;
using namespace lima::core;

Expected<MeasurementCube>
core::buildSelfProfileCube(const telemetry::Snapshot &S) {
  if (S.Stages.empty())
    return makeStringError(
        "self-profile: no pipeline stages recorded (telemetry disabled, "
        "compiled out, or no instrumented stage ran)");

  std::vector<std::string> Regions;
  for (const telemetry::StageStats &Stage : S.Stages)
    Regions.push_back(Stage.Name);
  MeasurementCube Cube(std::move(Regions),
                       {"compute", "queue-wait", "idle"}, S.NumWorkers);

  constexpr size_t Compute = 0, QueueWait = 1, Idle = 2;
  double InstrumentedSec = 0.0;
  for (size_t I = 0; I != S.Stages.size(); ++I) {
    const telemetry::StageStats &Stage = S.Stages[I];
    InstrumentedSec += Stage.WallMs / 1e3;
    for (unsigned P = 0; P != S.NumWorkers; ++P) {
      // Clamp so each row sums exactly to the stage wall: a task can end
      // a hair after its stage closes, and queue waits of a backlog
      // overlap each other, so the raw sums may exceed the wall time.
      double ComputeMs = std::min(Stage.WorkerComputeMs[P], Stage.WallMs);
      double WaitMs = std::min(Stage.WorkerQueueWaitMs[P],
                               Stage.WallMs - ComputeMs);
      double IdleMs = std::max(0.0, Stage.WallMs - ComputeMs - WaitMs);
      Cube.accumulate(I, Compute, P, ComputeMs / 1e3);
      Cube.accumulate(I, QueueWait, P, WaitMs / 1e3);
      Cube.accumulate(I, Idle, P, IdleMs / 1e3);
    }
  }
  if (InstrumentedSec <= 0.0)
    return makeStringError("self-profile: recorded stages carry no time");

  // The stages are sequential on the orchestrating thread, so the
  // session wall clock is a valid program duration; clamp against the
  // instrumented total to absorb timer jitter.
  Cube.setProgramTime(
      std::max(S.SessionWallMs / 1e3, Cube.instrumentedTotal()));
  if (auto Err = Cube.validate())
    return Err;
  return Cube;
}
