//===- core/Profile.h - Coarse-grain performance properties -----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coarse-grain characterization of Section 2 of the paper: wall
/// clock breakdowns by activity and by code region, the dominant
/// ("heaviest") activity and region, and the worst/best region for each
/// activity.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_PROFILE_H
#define LIMA_CORE_PROFILE_H

#include "core/Measurement.h"
#include <vector>

namespace lima {
namespace core {

/// Per-activity summary (one row of the T_j breakdown).
struct ActivityTotal {
  size_t Activity;
  /// T_j, seconds.
  double Time;
  /// T_j / T.
  double FractionOfProgram;
};

/// Per-region summary (one row of the paper's Table 1).
struct RegionTotal {
  size_t Region;
  /// t_i, seconds.
  double Time;
  /// t_i / T.
  double FractionOfProgram;
  /// t_ij for every activity j, seconds.
  std::vector<double> ByActivity;
};

/// Worst/best region of one activity (max/min t_ij over i).
struct ActivityExtremes {
  size_t Activity;
  /// Region with the largest t_ij.
  size_t WorstRegion;
  double WorstTime;
  /// Region with the smallest *non-zero* t_ij; SIZE_MAX when the
  /// activity is performed nowhere.
  size_t BestRegion;
  double BestTime;
  /// Number of regions actually performing the activity (t_ij > 0).
  size_t RegionsPerforming;
};

/// The complete coarse-grain profile.
struct CoarseProfile {
  /// T, seconds (explicit program total when the cube has one).
  double ProgramTime;
  /// Sum of all region times (instrumented coverage).
  double InstrumentedTime;
  /// Breakdown by activity, in activity order.
  std::vector<ActivityTotal> Activities;
  /// Breakdown by region with per-activity columns, in region order.
  std::vector<RegionTotal> Regions;
  /// The dominant activity (max T_j).
  size_t DominantActivity;
  /// The heaviest region (max t_i).
  size_t HeaviestRegion;
  /// The region with the maximum time spent in the dominant activity.
  size_t RegionDominatingDominantActivity;
  /// Worst and best regions per activity.
  std::vector<ActivityExtremes> Extremes;
};

/// Computes the coarse-grain profile of \p Cube.
CoarseProfile computeCoarseProfile(const MeasurementCube &Cube);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_PROFILE_H
