//===- core/TraceReduction.cpp - Trace to measurement cube ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/TraceReduction.h"
#include <algorithm>

using namespace lima;
using namespace lima::core;
using trace::Event;
using trace::EventKind;

Expected<MeasurementCube> core::reduceTrace(const trace::Trace &T,
                                            const ReductionOptions &Options) {
  if (auto Err = T.validate())
    return Err;
  if (T.numRegions() == 0)
    return makeStringError("trace declares no regions");
  if (T.numActivities() == 0)
    return makeStringError("trace declares no activities");
  if (Options.AttributeGaps && Options.GapActivity >= T.numActivities())
    return makeStringError("gap activity id %u out of range",
                           Options.GapActivity);

  MeasurementCube Cube(T.regionNames(), T.activityNames(), T.numProcs());
  double Span = 0.0;

  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc) {
    // Regions may nest; activity time is attributed to the *innermost*
    // open region, yielding exclusive-time semantics per region.  Each
    // frame keeps a gap cursor (end of its last attributed interval).
    struct Frame {
      uint32_t Region;
      double Cursor;
    };
    std::vector<Frame> Stack;
    uint32_t OpenActivity = trace::Trace::InvalidId;
    double ActivityBeginTime = 0.0;

    for (const Event &E : T.events(Proc)) {
      Span = std::max(Span, E.Time);
      switch (E.Kind) {
      case EventKind::RegionEnter:
        if (Options.AttributeGaps && !Stack.empty() &&
            E.Time > Stack.back().Cursor)
          Cube.accumulate(Stack.back().Region, Options.GapActivity, Proc,
                          E.Time - Stack.back().Cursor);
        Stack.push_back({E.Id, E.Time});
        break;
      case EventKind::RegionExit:
        if (Options.AttributeGaps && E.Time > Stack.back().Cursor)
          Cube.accumulate(Stack.back().Region, Options.GapActivity, Proc,
                          E.Time - Stack.back().Cursor);
        Stack.pop_back();
        // Time spent in the child is covered from the parent's view.
        if (!Stack.empty())
          Stack.back().Cursor = E.Time;
        break;
      case EventKind::ActivityBegin:
        if (Options.AttributeGaps && E.Time > Stack.back().Cursor)
          Cube.accumulate(Stack.back().Region, Options.GapActivity, Proc,
                          E.Time - Stack.back().Cursor);
        OpenActivity = E.Id;
        ActivityBeginTime = E.Time;
        break;
      case EventKind::ActivityEnd:
        Cube.accumulate(Stack.back().Region, OpenActivity, Proc,
                        E.Time - ActivityBeginTime);
        Stack.back().Cursor = E.Time;
        OpenActivity = trace::Trace::InvalidId;
        break;
      case EventKind::MessageSend:
      case EventKind::MessageRecv:
        break; // Message endpoints carry no attributable duration.
      }
    }
  }

  // The cube reports per-processor-mean aggregates, so the matching
  // program total is the plain trace span (the program's duration).
  if (Options.ProgramTimeFromSpan)
    Cube.setProgramTime(Span);
  return Cube;
}
