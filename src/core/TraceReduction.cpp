//===- core/TraceReduction.cpp - Trace to measurement cube ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/TraceReduction.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Telemetry.h"
#include <algorithm>

using namespace lima;
using namespace lima::core;
using trace::Event;
using trace::EventKind;

namespace {

/// Folds one processor's event stream into \p Cube.  Writes only cells
/// of processor \p Proc (which no other worker touches), so concurrent
/// folds over distinct processors are race-free and bit-identical to
/// the serial processor-order loop.  In strict mode a malformed stream
/// stops the fold and fills \p ErrOut; in lenient mode the offending
/// event is skipped and counted into \p Report instead.  Returns true
/// on success.
bool foldProcessor(const trace::Trace &T, unsigned Proc,
                   const ReductionOptions &Options, MeasurementCube &Cube,
                   double &Span, ParseReport &Report, ParseError &ErrOut) {
  bool Lenient = Options.Mode == ParseMode::Lenient;
  // Regions may nest; activity time is attributed to the *innermost*
  // open region, yielding exclusive-time semantics per region.  Each
  // frame keeps a gap cursor (end of its last attributed interval).
  struct Frame {
    uint32_t Region;
    double Cursor;
  };
  std::vector<Frame> Stack;
  uint32_t OpenActivity = trace::Trace::InvalidId;
  double ActivityBeginTime = 0.0;

  // In lenient mode records the skipped event and keeps folding; in
  // strict mode fills ErrOut and stops.
  auto malformed = [&](size_t Index, const char *What) {
    if (Lenient) {
      Report.addDrop({ErrorCode::StructuralError, 0, NoByteOffset,
                      "proc " + std::to_string(Proc) + " event " +
                          std::to_string(Index) + ": " + What});
      return true;
    }
    ErrOut = {ErrorCode::StructuralError, 0, NoByteOffset,
              "proc " + std::to_string(Proc) + " event " +
                  std::to_string(Index) + ": " + What};
    return false;
  };

  // Read the stream through its columns: the fold touches time, kind
  // and id but never the message byte counts, so the SoA layout keeps
  // one whole column out of the cache entirely.
  const trace::Trace::EventsRef Stream = T.events(Proc);
  const double *Times = Stream.times();
  const EventKind *Kinds = Stream.kinds();
  const uint32_t *Ids = Stream.ids();
  Report.TotalRecords += Stream.size();
  for (size_t Index = 0; Index != Stream.size(); ++Index) {
    const Event E{Times[Index], Proc, Kinds[Index], Ids[Index], 0};
    Span = std::max(Span, E.Time);
    switch (E.Kind) {
    case EventKind::RegionEnter:
      if (Options.AttributeGaps && !Stack.empty() &&
          E.Time > Stack.back().Cursor)
        Cube.accumulate(Stack.back().Region, Options.GapActivity, Proc,
                        E.Time - Stack.back().Cursor);
      Stack.push_back({E.Id, E.Time});
      break;
    case EventKind::RegionExit:
      if (Stack.empty()) {
        if (malformed(Index, "region exit without matching enter"))
          continue;
        return false;
      }
      if (Options.AttributeGaps && E.Time > Stack.back().Cursor)
        Cube.accumulate(Stack.back().Region, Options.GapActivity, Proc,
                        E.Time - Stack.back().Cursor);
      Stack.pop_back();
      // Time spent in the child is covered from the parent's view.
      if (!Stack.empty())
        Stack.back().Cursor = E.Time;
      break;
    case EventKind::ActivityBegin:
      if (Stack.empty()) {
        if (malformed(Index, "activity begins outside any region"))
          continue;
        return false;
      }
      if (Options.AttributeGaps && E.Time > Stack.back().Cursor)
        Cube.accumulate(Stack.back().Region, Options.GapActivity, Proc,
                        E.Time - Stack.back().Cursor);
      OpenActivity = E.Id;
      ActivityBeginTime = E.Time;
      break;
    case EventKind::ActivityEnd:
      if (Stack.empty()) {
        if (malformed(Index, "activity ends outside any region"))
          continue;
        return false;
      }
      if (OpenActivity == trace::Trace::InvalidId) {
        if (malformed(Index, "activity end without matching begin"))
          continue;
        return false;
      }
      Cube.accumulate(Stack.back().Region, OpenActivity, Proc,
                      E.Time - ActivityBeginTime);
      Stack.back().Cursor = E.Time;
      OpenActivity = trace::Trace::InvalidId;
      break;
    case EventKind::MessageSend:
    case EventKind::MessageRecv:
      break; // Message endpoints carry no attributable duration.
    }
  }
  return true;
}

} // namespace

Expected<MeasurementCube> core::reduceTrace(const trace::Trace &T,
                                            const ReductionOptions &Options) {
  // Lenient mode exists to digest traces that validation would reject;
  // the fold's own structural handling covers them event by event.
  if (Options.Mode == ParseMode::Strict)
    if (auto Err = T.validate())
      return Err;
  if (T.numRegions() == 0)
    return makeCodedError(ErrorCode::MissingSection,
                          "trace declares no regions");
  if (T.numActivities() == 0)
    return makeCodedError(ErrorCode::MissingSection,
                          "trace declares no activities");
  if (Options.AttributeGaps && Options.GapActivity >= T.numActivities())
    return makeCodedError(ErrorCode::ValueOutOfRange,
                          "gap activity id %u out of range",
                          Options.GapActivity);

  LIMA_STAGE("reduce");
  MeasurementCube Cube(T.regionNames(), T.activityNames(), T.numProcs());

  // Shard per processor: every worker folds its own event stream into
  // the cube's disjoint processor column and its own span/report/error
  // slot, then the slots are merged in processor order.  No cell is
  // written by two workers, no floating-point sum crosses a processor
  // boundary and reports merge in a fixed order, so the result — cube
  // AND dropped-record counts — is bit-identical at any thread count.
  std::vector<double> Spans(T.numProcs(), 0.0);
  std::vector<ParseError> Errors(T.numProcs());
  std::vector<char> Failed(T.numProcs(), 0);
  std::vector<ParseReport> Reports(T.numProcs());
  parallelFor(T.numProcs(), Options.Threads, [&](size_t Proc) {
    LIMA_SPAN("reduce.shard");
    LIMA_COUNTER_ADD("reduce.events", T.events(Proc).size());
    LIMA_METRIC_COUNT("lima.reduce.events_total", T.events(Proc).size());
    Failed[Proc] = !foldProcessor(T, static_cast<unsigned>(Proc), Options,
                                  Cube, Spans[Proc], Reports[Proc],
                                  Errors[Proc]);
  });

  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc)
    if (Failed[Proc])
      return Error::fromParse(std::move(Errors[Proc]));
  if (Options.Report)
    for (const ParseReport &Shard : Reports)
      Options.Report->merge(Shard);
  double Span = 0.0;
  for (double ProcSpan : Spans)
    Span = std::max(Span, ProcSpan);

  // The cube reports per-processor-mean aggregates, so the matching
  // program total is the plain trace span (the program's duration).
  if (Options.ProgramTimeFromSpan)
    Cube.setProgramTime(Span);
  return Cube;
}
