//===- core/WindowHistory.cpp - Bounded ring of window summaries ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/WindowHistory.h"
#include "support/Metrics.h"
#include <algorithm>

using namespace lima;
using namespace lima::core;

WindowHistory::WindowHistory(size_t Cap) : Cap(std::max<size_t>(Cap, 1)) {}

WindowSummary WindowHistory::summarize(const WindowResult &Result,
                                       uint64_t DroppedRecords) {
  WindowSummary S;
  S.Index = Result.Index;
  S.StartTime = Result.StartTime;
  S.EndTime = Result.EndTime;
  S.Events = Result.Events;
  S.Empty = Result.Empty;
  S.DroppedRecords = DroppedRecords;

  const MeasurementCube &Cube = Result.Cube;
  S.ProcLoad.assign(Cube.numProcs(), 0.0);
  for (size_t I = 0; I != Cube.numRegions(); ++I)
    for (size_t J = 0; J != Cube.numActivities(); ++J)
      for (unsigned P = 0; P != Cube.numProcs(); ++P)
        S.ProcLoad[P] += Cube.time(I, J, P);

  S.RegionIdC = Result.Regions.Index;
  S.RegionSidC = Result.Regions.ScaledIndex;
  S.ActivityIdA = Result.Activities.Index;
  S.ActivitySidA = Result.Activities.ScaledIndex;
  S.TopRegion = Result.Regions.MostImbalancedScaled;
  S.TopActivity = Result.Activities.MostImbalancedScaled;
  S.MostImbalancedProc = Result.Processors.MostFrequentlyImbalanced;
  S.MaxSidC = S.RegionSidC.empty()
                  ? 0.0
                  : *std::max_element(S.RegionSidC.begin(), S.RegionSidC.end());
  return S;
}

void WindowHistory::append(WindowSummary Summary) {
  bool Evict;
  size_t Size;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Ring.push_back(std::move(Summary));
    Evict = Ring.size() > Cap;
    if (Evict) {
      Ring.pop_front();
      ++Evicted;
    }
    ++Appended;
    Size = Ring.size();
  }
  // Direct registry calls (not LIMA_METRIC macros): the history owns
  // these series, so they exist in telemetry-off builds too and the
  // smoke test can assert on them unconditionally.
  if (Evict)
    metrics::counter("lima.history.evictions_total").add(1);
  metrics::gauge("lima.history.windows").set(static_cast<double>(Size));
}

void WindowHistory::appendResult(const WindowResult &Result,
                                 uint64_t DroppedRecords) {
  setNames(Result.Cube.regionNames(), Result.Cube.activityNames());
  append(summarize(Result, DroppedRecords));
}

void WindowHistory::setNames(std::vector<std::string> NewRegionNames,
                             std::vector<std::string> NewActivityNames) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (RegionNames.empty())
    RegionNames = std::move(NewRegionNames);
  if (ActivityNames.empty())
    ActivityNames = std::move(NewActivityNames);
}

std::vector<WindowSummary> WindowHistory::snapshot(uint64_t SinceIndex,
                                                   size_t Limit) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<WindowSummary> Out;
  for (const WindowSummary &S : Ring) {
    if (S.Index < SinceIndex)
      continue;
    Out.push_back(S);
    if (Limit != 0 && Out.size() == Limit)
      break;
  }
  return Out;
}

std::optional<WindowSummary> WindowHistory::get(uint64_t Index) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const WindowSummary &S : Ring)
    if (S.Index == Index)
      return S;
  return std::nullopt;
}

size_t WindowHistory::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Ring.size();
}

uint64_t WindowHistory::evictions() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Evicted;
}

uint64_t WindowHistory::appended() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Appended;
}

std::vector<std::string> WindowHistory::regionNames() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return RegionNames;
}

std::vector<std::string> WindowHistory::activityNames() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return ActivityNames;
}
