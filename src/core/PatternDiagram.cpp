//===- core/PatternDiagram.cpp - Figure 1/2 pattern diagrams --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/PatternDiagram.h"
#include "stats/Descriptive.h"
#include "support/Compiler.h"
#include <algorithm>
#include <cassert>

using namespace lima;
using namespace lima::core;

char core::patternCategoryChar(PatternCategory Category) {
  switch (Category) {
  case PatternCategory::Maximum:
    return 'M';
  case PatternCategory::UpperBand:
    return '+';
  case PatternCategory::Middle:
    return '.';
  case PatternCategory::LowerBand:
    return '-';
  case PatternCategory::Minimum:
    return 'm';
  }
  lima_unreachable("unknown PatternCategory");
}

size_t PatternDiagram::countInRow(size_t Row, PatternCategory Category) const {
  assert(Row < Cells.size() && "row out of range");
  return static_cast<size_t>(
      std::count(Cells[Row].begin(), Cells[Row].end(), Category));
}

PatternDiagram core::computePatternDiagram(const MeasurementCube &Cube,
                                           size_t Activity,
                                           double BandFraction) {
  assert(Activity < Cube.numActivities() && "activity out of range");
  assert(BandFraction > 0.0 && BandFraction < 0.5 &&
         "band fraction must be in (0, 0.5)");
  PatternDiagram Diagram;
  Diagram.Activity = Activity;
  Diagram.BandFraction = BandFraction;

  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    std::vector<double> Times = Cube.processorSlice(I, Activity);
    if (stats::sum(Times) <= 0.0)
      continue; // Region does not perform the activity.
    Diagram.Regions.push_back(I);

    double Max = stats::maximum(Times);
    double Min = stats::minimum(Times);
    double Range = Max - Min;
    std::vector<PatternCategory> Row(Times.size(), PatternCategory::Middle);
    if (Range > 0.0) {
      double UpperCut = Max - BandFraction * Range;
      double LowerCut = Min + BandFraction * Range;
      // Only the first occurrence gets the Max/Min marker, matching the
      // figures' single max/min color per row.
      size_t MaxAt = stats::argMax(Times);
      size_t MinAt = stats::argMin(Times);
      for (size_t P = 0; P != Times.size(); ++P) {
        if (P == MaxAt)
          Row[P] = PatternCategory::Maximum;
        else if (P == MinAt)
          Row[P] = PatternCategory::Minimum;
        else if (Times[P] >= UpperCut)
          Row[P] = PatternCategory::UpperBand;
        else if (Times[P] <= LowerCut)
          Row[P] = PatternCategory::LowerBand;
      }
    }
    Diagram.Cells.push_back(std::move(Row));
  }
  return Diagram;
}

std::string core::renderPatternASCII(const PatternDiagram &Diagram,
                                     const MeasurementCube &Cube) {
  std::string Out;
  Out += Cube.activityName(Diagram.Activity);
  Out += "\n";
  size_t NameWidth = 0;
  for (size_t Region : Diagram.Regions)
    NameWidth = std::max(NameWidth, Cube.regionName(Region).size());
  for (size_t Row = 0; Row != Diagram.Regions.size(); ++Row) {
    const std::string &Name = Cube.regionName(Diagram.Regions[Row]);
    Out += Name;
    Out.append(NameWidth - Name.size() + 2, ' ');
    Out += '[';
    for (PatternCategory Category : Diagram.Cells[Row])
      Out += patternCategoryChar(Category);
    Out += "]\n";
  }
  Out += "legend: M=max  +=upper band  .=middle  -=lower band  m=min "
         "(band = ";
  // Integer percent is enough for the legend.
  Out += std::to_string(static_cast<int>(Diagram.BandFraction * 100.0 + 0.5));
  Out += "% of range)\n";
  return Out;
}

std::string core::renderPatternPPM(const PatternDiagram &Diagram,
                                   unsigned CellSize) {
  assert(CellSize > 0 && "cell size must be positive");
  struct RGB {
    int R, G, B;
  };
  auto colorOf = [](PatternCategory Category) -> RGB {
    switch (Category) {
    case PatternCategory::Maximum:
      return {180, 0, 0}; // dark red
    case PatternCategory::UpperBand:
      return {255, 140, 0}; // orange
    case PatternCategory::Middle:
      return {235, 235, 235}; // light gray
    case PatternCategory::LowerBand:
      return {120, 180, 255}; // light blue
    case PatternCategory::Minimum:
      return {0, 0, 160}; // dark blue
    }
    lima_unreachable("unknown PatternCategory");
  };

  size_t Rows = Diagram.Cells.size();
  size_t Cols = Rows == 0 ? 0 : Diagram.Cells.front().size();
  unsigned Width = static_cast<unsigned>(Cols) * CellSize;
  unsigned Height = static_cast<unsigned>(Rows) * CellSize;
  std::string Out = "P3\n" + std::to_string(Width) + " " +
                    std::to_string(Height) + "\n255\n";
  for (unsigned Y = 0; Y != Height; ++Y) {
    for (unsigned X = 0; X != Width; ++X) {
      RGB Color = colorOf(Diagram.Cells[Y / CellSize][X / CellSize]);
      Out += std::to_string(Color.R) + " " + std::to_string(Color.G) + " " +
             std::to_string(Color.B) + " ";
    }
    Out += '\n';
  }
  return Out;
}
