//===- core/WaitStates.h - Late-sender wait-state analysis ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Root-cause refinement of point-to-point time: a receiver's blocking
/// time splits into *late-sender wait* (the receiver blocked before the
/// matching send was even issued — pure load imbalance) and transfer
/// time (the wire).  The late-sender part is computable exactly from a
/// matched trace: for every receive, pair it with its send and measure
/// max(0, sendTime - receiveBeginTime).  This is the classic wait-state
/// pattern later systematized by tools like Scalasca, and it connects
/// the paper's dissimilarity indices to their *cause*: regions whose
/// point-to-point time is dominated by late senders are load-imbalance
/// problems, not bandwidth problems.
///
/// Send/receive pairing follows the trace format's matching guarantee:
/// FIFO order within each (sender, receiver, byte-count) channel.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CORE_WAITSTATES_H
#define LIMA_CORE_WAITSTATES_H

#include "core/Measurement.h"
#include "support/Error.h"
#include "trace/Trace.h"
#include <vector>

namespace lima {
namespace core {

/// One sender->receiver channel's aggregate late-sender wait.
struct ChannelWait {
  unsigned From = 0;
  unsigned To = 0;
  double Seconds = 0.0;
  uint64_t Messages = 0;
};

/// Result of the wait-state analysis.
struct WaitStateReport {
  /// Late-sender seconds per (region, processor): a cube with the
  /// single pseudo-activity "late-sender", so the dissimilarity
  /// machinery applies to the waits themselves.
  MeasurementCube LateSender;
  /// Total late-sender seconds over the whole run.
  double TotalLateSender = 0.0;
  /// Total receives examined / receives that waited on a late sender.
  uint64_t TotalReceives = 0;
  uint64_t LateReceives = 0;
  /// Channels sorted by decreasing wait.
  std::vector<ChannelWait> Channels;

  WaitStateReport() : LateSender({"<none>"}, {"late-sender"}, 1) {}
};

/// Runs the late-sender analysis on \p T (validates it first).
Expected<WaitStateReport> analyzeWaitStates(const trace::Trace &T);

} // namespace core
} // namespace lima

#endif // LIMA_CORE_WAITSTATES_H
