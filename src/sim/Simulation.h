//===- sim/Simulation.h - Discrete-event MPI-like simulator -----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic discrete-event simulator with an MPI-like programming
/// interface.  Programs are ordinary C++ callables that receive a Comm
/// handle; blocking semantics are provided by running each simulated rank
/// on its own thread while a sequential scheduler guarantees that exactly
/// one thread executes at a time, advancing virtual clocks in
/// deterministic order.  The simulator emits a lima::trace::Trace with
/// region and activity attribution — the substrate that replaces the
/// paper's instrumented IBM SP2 runs.
///
/// Activity classification follows the paper's taxonomy:
///   computation       — Comm::compute
///   point-to-point    — Comm::send / Comm::recv
///   collective        — reduce / allReduce / broadcast / allToAll /
///                       gather / scatter
///   synchronization   — Comm::barrier
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SIM_SIMULATION_H
#define LIMA_SIM_SIMULATION_H

#include "sim/Network.h"
#include "support/Error.h"
#include "trace/Trace.h"
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lima {
namespace sim {

/// Built-in activity ids of simulator-produced traces (the paper's four
/// activity classes).
enum ActivityId : uint32_t {
  ActComputation = 0,
  ActPointToPoint = 1,
  ActCollective = 2,
  ActSynchronization = 3,
};

/// Names matching ActivityId, in order.
extern const char *const ActivityNames[4];

/// Configuration of one simulation run.
struct SimulationOptions {
  /// Number of simulated processes; must be >= 1.
  unsigned NumProcs = 16;
  /// Communication cost model.
  NetworkModel Network;
  /// Region (code-region / loop) names to pre-register; programs refer to
  /// regions by index into this vector.
  std::vector<std::string> RegionNames;
  /// Optional per-process relative compute speed (1.0 = nominal); empty
  /// means homogeneous.  compute(S) advances rank p's clock by
  /// S / ComputeSpeed[p] — a way to model heterogeneous nodes.
  std::vector<double> ComputeSpeed;
  /// Abort the run with an error if any virtual clock exceeds this.
  double TimeLimit = 1e9;
};

class Engine;

/// Per-rank communication handle passed to the simulated program.
///
/// All methods advance the calling rank's virtual clock and append the
/// corresponding region/activity/message events to the run's trace.
/// Methods must only be called from inside the program function.
class Comm {
public:
  /// This process's rank in [0, size()).
  unsigned rank() const { return Rank; }

  /// Number of simulated processes.
  unsigned size() const;

  /// Current virtual time of this rank, seconds.
  double now() const;

  /// Consumes \p Seconds of CPU time (scaled by this rank's speed),
  /// attributed to the computation activity.
  void compute(double Seconds);

  /// Buffered (eager) send of \p Bytes to \p Dest: the sender is charged
  /// only its send overhead; the message arrives after the wire time.
  /// Attributed to the point-to-point activity.
  void send(unsigned Dest, uint64_t Bytes, int Tag = 0);

  /// Like send, but carries \p Bytes of real payload starting at
  /// \p Data, delivered to the matching recv.
  void sendData(unsigned Dest, const void *Data, uint64_t Bytes, int Tag = 0);

  /// Blocking receive of the next matching message from \p Src.  Blocks
  /// until the message's arrival time; returns its byte count.
  /// Attributed to the point-to-point activity.
  uint64_t recv(unsigned Src, int Tag = 0);

  /// Like recv, but copies up to \p Capacity payload bytes into
  /// \p Buffer.  Returns the message's byte count (which may exceed
  /// \p Capacity; only min(Capacity, Bytes) are copied).
  uint64_t recvData(unsigned Src, void *Buffer, uint64_t Capacity,
                    int Tag = 0);

  /// A received message's metadata (for recvAny).
  struct RecvResult {
    unsigned Source = 0;
    uint64_t Bytes = 0;
  };

  /// Blocking receive from *any* source with tag \p Tag (the analogue of
  /// MPI_ANY_SOURCE).  Among already-arrived candidates the earliest
  /// arrival wins (ties to the lowest source rank).  Copies up to
  /// \p Capacity payload bytes into \p Buffer when it is non-null.
  RecvResult recvAny(int Tag = 0, void *Buffer = nullptr,
                     uint64_t Capacity = 0);

  /// Handle of a non-blocking receive posted with irecv.
  using Request = uint64_t;

  /// Posts a non-blocking receive (the analogue of MPI_Irecv): returns
  /// immediately at no time cost; the message is bound and the payload
  /// copied when wait() completes.  \p Buffer must stay valid until
  /// then.  Enables communication/computation overlap: computation
  /// executed between irecv and wait hides the message's flight time.
  Request irecv(unsigned Src, void *Buffer = nullptr, uint64_t Capacity = 0,
                int Tag = 0);

  /// Completes a posted receive: blocks until the matching message's
  /// arrival, charges the receive overhead, and returns its byte count.
  /// Each request must be waited on exactly once, in any order.
  uint64_t wait(Request Handle);

  /// Barrier across all ranks; attributed to synchronization.
  void barrier();

  /// Rooted reduction of \p Bytes; attributed to collective.
  void reduce(unsigned Root, uint64_t Bytes);

  /// Allreduce of \p Bytes; attributed to collective.
  void allReduce(uint64_t Bytes);

  /// Value-carrying allreduce: returns the sum of every rank's
  /// \p Value.  Timed as an 8-byte allreduce; attributed to collective.
  double allReduceSum(double Value);

  /// Value-carrying rooted reduction: on \p Root, returns the sum of
  /// every rank's \p Value; on other ranks returns 0.  Timed as an
  /// 8-byte reduce; attributed to collective.
  double reduceSum(unsigned Root, double Value);

  /// Inclusive prefix sum by rank (the analogue of MPI_Scan): rank r
  /// receives the sum of the values of ranks 0..r.  Timed as an 8-byte
  /// tree collective; attributed to collective.
  double scanSum(double Value);

  /// Rooted broadcast of \p Bytes; attributed to collective.
  void broadcast(unsigned Root, uint64_t Bytes);

  /// All-to-all personalized exchange of \p BytesPerRank; collective.
  void allToAll(uint64_t BytesPerRank);

  /// Rooted gather of \p BytesPerRank from each rank; collective.
  void gather(unsigned Root, uint64_t BytesPerRank);

  /// Rooted scatter of \p BytesPerRank to each rank; collective.
  void scatter(unsigned Root, uint64_t BytesPerRank);

  /// Enters code region \p RegionId (an index into
  /// SimulationOptions::RegionNames).  Regions may nest (routines >
  /// loops > statements); analysis attributes time to the innermost.
  void regionEnter(uint32_t RegionId);

  /// Exits code region \p RegionId, which must be the innermost open
  /// region.
  void regionExit(uint32_t RegionId);

private:
  friend class Engine;
  Comm(Engine &Owner, unsigned Rank) : Owner(Owner), Rank(Rank) {}

  Engine &Owner;
  unsigned Rank;
};

/// RAII region bracket.
class RegionScope {
public:
  RegionScope(Comm &C, uint32_t RegionId) : C(C), RegionId(RegionId) {
    C.regionEnter(RegionId);
  }
  ~RegionScope() { C.regionExit(RegionId); }
  RegionScope(const RegionScope &) = delete;
  RegionScope &operator=(const RegionScope &) = delete;

private:
  Comm &C;
  uint32_t RegionId;
};

/// The simulated program: invoked once per rank with that rank's Comm.
using ProgramFn = std::function<void(Comm &)>;

/// Runs \p Program on SimulationOptions::NumProcs simulated ranks and
/// returns the recorded trace.
///
/// Fails on deadlock (all unfinished ranks blocked), mismatched
/// collectives (ranks disagree on the k-th collective operation), or a
/// virtual clock exceeding the time limit.
Expected<trace::Trace> simulate(const SimulationOptions &Options,
                                const ProgramFn &Program);

} // namespace sim
} // namespace lima

#endif // LIMA_SIM_SIMULATION_H
