//===- sim/Network.cpp - Network cost model -------------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/Network.h"
#include "support/Compiler.h"
#include <cassert>

using namespace lima;
using namespace lima::sim;

unsigned sim::ceilLog2(unsigned N) {
  assert(N >= 1 && "ceilLog2 of zero");
  unsigned Bits = 0;
  unsigned Value = 1;
  while (Value < N) {
    Value *= 2;
    ++Bits;
  }
  return Bits;
}

double NetworkModel::barrierTime(unsigned Procs) const {
  if (Procs <= 1)
    return 0.0;
  return static_cast<double>(ceilLog2(Procs)) * Latency;
}

double NetworkModel::treeCollectiveTime(unsigned Procs, uint64_t Bytes) const {
  if (Procs <= 1)
    return 0.0;
  return static_cast<double>(ceilLog2(Procs)) * pointToPointTime(Bytes);
}

double NetworkModel::allReduceTime(unsigned Procs, uint64_t Bytes) const {
  return allReduceTimeAs(AllReduce, Procs, Bytes);
}

double NetworkModel::allReduceTimeAs(AllReduceAlgorithm Algorithm,
                                     unsigned Procs, uint64_t Bytes) const {
  if (Procs <= 1)
    return 0.0;
  double P = static_cast<double>(Procs);
  double Wire = static_cast<double>(Bytes) / BytesPerSecond;
  switch (Algorithm) {
  case AllReduceAlgorithm::Tree:
    // Reduce phase followed by broadcast phase.
    return 2.0 * treeCollectiveTime(Procs, Bytes);
  case AllReduceAlgorithm::RecursiveDoubling:
    return static_cast<double>(ceilLog2(Procs)) * (Latency + Wire);
  case AllReduceAlgorithm::Ring:
    // Reduce-scatter + allgather, each (P-1) steps of m/P bytes.
    return 2.0 * (P - 1.0) * Latency + 2.0 * ((P - 1.0) / P) * Wire;
  }
  lima_unreachable("unknown AllReduceAlgorithm");
}

std::string_view sim::allReduceAlgorithmName(AllReduceAlgorithm Algorithm) {
  switch (Algorithm) {
  case AllReduceAlgorithm::Tree:
    return "tree";
  case AllReduceAlgorithm::RecursiveDoubling:
    return "recursive-doubling";
  case AllReduceAlgorithm::Ring:
    return "ring";
  }
  lima_unreachable("unknown AllReduceAlgorithm");
}

double NetworkModel::allToAllTime(unsigned Procs,
                                  uint64_t BytesPerRank) const {
  if (Procs <= 1)
    return 0.0;
  return static_cast<double>(Procs - 1) * pointToPointTime(BytesPerRank);
}

double NetworkModel::rootedLinearTime(unsigned Procs,
                                      uint64_t BytesPerRank) const {
  if (Procs <= 1)
    return 0.0;
  return static_cast<double>(Procs - 1) * pointToPointTime(BytesPerRank);
}
