//===- sim/Simulation.cpp - Discrete-event MPI-like simulator -------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Scheduling scheme: every simulated rank runs its program on a dedicated
// OS thread, but a token protocol guarantees that at most one thread (the
// scheduler or exactly one rank) executes at any moment, so virtual time
// advances deterministically regardless of OS scheduling.  Blocking
// operations hand the token back to the scheduler, which always resumes
// the ready rank with the smallest virtual clock (ties broken by rank).
//
// Exception note: LIMA library code otherwise avoids exceptions entirely;
// the single exception type below (ShutdownSignal) is a private control
// transfer used to unwind simulated programs during teardown after a
// deadlock, collective mismatch or time-limit overrun.  It never crosses
// the public API boundary: simulate() converts it into a lima::Error.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"
#include "support/Compiler.h"
#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

using namespace lima;
using namespace lima::sim;

const char *const sim::ActivityNames[4] = {
    "computation",
    "point-to-point",
    "collective",
    "synchronization",
};

namespace {

/// Private unwinding signal; see the file comment.
struct ShutdownSignal {};

enum class ProcState : uint8_t {
  NotStarted,
  Running,
  Ready,
  BlockedRecv,
  BlockedCollective,
  Finished,
};

enum class CollectiveKind : uint8_t {
  Barrier,
  Reduce,
  AllReduce,
  Broadcast,
  AllToAll,
  Gather,
  Scatter,
  Scan,
};

const char *collectiveKindName(CollectiveKind Kind) {
  switch (Kind) {
  case CollectiveKind::Barrier:
    return "barrier";
  case CollectiveKind::Reduce:
    return "reduce";
  case CollectiveKind::AllReduce:
    return "allreduce";
  case CollectiveKind::Broadcast:
    return "broadcast";
  case CollectiveKind::AllToAll:
    return "alltoall";
  case CollectiveKind::Gather:
    return "gather";
  case CollectiveKind::Scatter:
    return "scatter";
  case CollectiveKind::Scan:
    return "scan";
  }
  lima_unreachable("unknown CollectiveKind");
}

struct Message {
  double Arrival = 0.0;
  uint64_t Bytes = 0;
  std::vector<uint8_t> Data;
};

} // namespace

namespace lima {
namespace sim {

/// The simulation engine: owns the ranks' threads, the virtual clocks,
/// the mailboxes, the collective slots and the output trace.
class Engine {
public:
  Engine(const SimulationOptions &Options, const ProgramFn &Program);

  /// Runs the simulation to completion and returns the trace.
  Expected<trace::Trace> run();

  // Interface used by Comm (called on rank threads).
  unsigned size() const { return Options.NumProcs; }
  double now(unsigned Rank);
  void compute(unsigned Rank, double Seconds);
  void send(unsigned Rank, unsigned Dest, const void *Data, uint64_t Bytes,
            int Tag);
  /// Blocking receive; \p Src == AnySource accepts from every rank.
  /// Returns the actual source and byte count.
  static constexpr unsigned AnySource = UINT32_MAX;
  Comm::RecvResult recv(unsigned Rank, unsigned Src, void *Buffer,
                        uint64_t Capacity, int Tag);
  Comm::Request postRecv(unsigned Rank, unsigned Src, void *Buffer,
                         uint64_t Capacity, int Tag);
  uint64_t waitRecv(unsigned Rank, Comm::Request Handle);
  /// Runs one collective.  \p Value is accumulated across participants;
  /// the sum is returned (to the root only for rooted reductions, but
  /// the engine hands it to every rank and Comm filters).
  double collective(unsigned Rank, CollectiveKind Kind, unsigned Root,
                    uint64_t Bytes, uint32_t Activity, double Value);
  void regionEnter(unsigned Rank, uint32_t RegionId);
  void regionExit(unsigned Rank, uint32_t RegionId);

private:
  struct Proc {
    double Clock = 0.0;
    ProcState State = ProcState::NotStarted;
    bool HasToken = false;
    std::condition_variable CV;
    std::thread Thread;
    // Blocking-receive bookkeeping.
    unsigned RecvSrc = 0;
    int RecvTag = 0;
    double BlockTime = 0.0;
    Message Matched;
    unsigned MatchedSrc = 0;
    // Collective bookkeeping.
    size_t CollectiveIndex = 0;
    // Region bracket tracking for misuse assertions (regions may nest).
    std::vector<uint32_t> RegionStack;
    // Non-blocking receives posted with irecv, indexed by handle.
    struct PostedRecv {
      unsigned Src = 0;
      int Tag = 0;
      void *Buffer = nullptr;
      uint64_t Capacity = 0;
      bool Done = false;
    };
    std::vector<PostedRecv> Posted;
  };

  struct CollectiveSlot {
    CollectiveKind Kind;
    unsigned Root;
    uint64_t Bytes;
    uint32_t Activity;
    unsigned Arrived = 0;
    double MaxArrival = 0.0;
    /// Accumulated value for value-carrying reductions.
    double Sum = 0.0;
    /// Per-rank contributions (kept for prefix scans).
    std::vector<double> Values;
  };

  // All private methods below require Lock to be held by the caller.
  void yieldToken(std::unique_lock<std::mutex> &Lk, unsigned Rank);
  void blockUntilResumed(std::unique_lock<std::mutex> &Lk, unsigned Rank);
  void initiateShutdown(std::string Reason);
  void checkTimeLimit(unsigned Rank);
  void appendEvent(const trace::Event &E) { Output.append(E); }
  void appendActivityInterval(unsigned Rank, uint32_t Activity, double Begin,
                              double End);
  void threadBody(unsigned Rank);

  const SimulationOptions &Options;
  const ProgramFn &Program;
  trace::Trace Output;

  std::mutex Lock;
  std::condition_variable SchedulerCV;
  std::vector<Proc> Procs;
  std::map<std::tuple<unsigned, unsigned, int>, std::deque<Message>>
      Mailboxes;
  std::vector<CollectiveSlot> Collectives;
  bool ShuttingDown = false;
  std::string FatalReason;
  unsigned FinishedCount = 0;
};

} // namespace sim
} // namespace lima

Engine::Engine(const SimulationOptions &Options, const ProgramFn &Program)
    : Options(Options), Program(Program), Output(Options.NumProcs),
      Procs(Options.NumProcs) {
  for (const std::string &Name : Options.RegionNames)
    Output.addRegion(Name);
  for (const char *Name : ActivityNames)
    Output.addActivity(Name);
}

void Engine::appendActivityInterval(unsigned Rank, uint32_t Activity,
                                    double Begin, double End) {
  assert(End >= Begin && "activity interval runs backwards");
  appendEvent({Begin, Rank, trace::EventKind::ActivityBegin, Activity, 0});
  appendEvent({End, Rank, trace::EventKind::ActivityEnd, Activity, 0});
}

double Engine::now(unsigned Rank) {
  std::unique_lock<std::mutex> Lk(Lock);
  return Procs[Rank].Clock;
}

void Engine::checkTimeLimit(unsigned Rank) {
  if (Procs[Rank].Clock <= Options.TimeLimit)
    return;
  initiateShutdown("virtual time limit exceeded on rank " +
                   std::to_string(Rank));
  throw ShutdownSignal{};
}

void Engine::compute(unsigned Rank, double Seconds) {
  assert(Seconds >= 0.0 && "compute time must be non-negative");
  std::unique_lock<std::mutex> Lk(Lock);
  Proc &P = Procs[Rank];
  assert(!P.RegionStack.empty() && "compute() outside any region");
  double Speed = Options.ComputeSpeed.empty() ? 1.0
                                              : Options.ComputeSpeed[Rank];
  assert(Speed > 0.0 && "compute speed must be positive");
  double Begin = P.Clock;
  P.Clock += Seconds / Speed;
  appendActivityInterval(Rank, ActComputation, Begin, P.Clock);
  checkTimeLimit(Rank);
}

void Engine::send(unsigned Rank, unsigned Dest, const void *Data,
                  uint64_t Bytes, int Tag) {
  std::unique_lock<std::mutex> Lk(Lock);
  assert(Dest < Options.NumProcs && "send destination out of range");
  assert(Dest != Rank && "self-send is not supported");
  Proc &P = Procs[Rank];
  assert(!P.RegionStack.empty() && "send() outside any region");
  double Begin = P.Clock;
  P.Clock += Options.Network.SendOverhead;
  double Arrival = P.Clock + Options.Network.pointToPointTime(Bytes);
  appendEvent({Begin, Rank, trace::EventKind::ActivityBegin, ActPointToPoint,
               0});
  appendEvent({Begin, Rank, trace::EventKind::MessageSend, Dest, Bytes});
  appendEvent({P.Clock, Rank, trace::EventKind::ActivityEnd, ActPointToPoint,
               0});

  Message Msg;
  Msg.Arrival = Arrival;
  Msg.Bytes = Bytes;
  if (Data) {
    const uint8_t *Raw = static_cast<const uint8_t *>(Data);
    Msg.Data.assign(Raw, Raw + Bytes);
  }

  Proc &Receiver = Procs[Dest];
  if (Receiver.State == ProcState::BlockedRecv &&
      (Receiver.RecvSrc == Rank || Receiver.RecvSrc == AnySource) &&
      Receiver.RecvTag == Tag) {
    // Wake the blocked receiver directly with its completion time.
    Receiver.Clock = std::max(Receiver.BlockTime, Arrival) +
                     Options.Network.RecvOverhead;
    Receiver.Matched = std::move(Msg);
    Receiver.MatchedSrc = Rank;
    Receiver.State = ProcState::Ready;
  } else {
    Mailboxes[{Rank, Dest, Tag}].push_back(std::move(Msg));
  }
  checkTimeLimit(Rank);
}

Comm::RecvResult Engine::recv(unsigned Rank, unsigned Src, void *Buffer,
                              uint64_t Capacity, int Tag) {
  std::unique_lock<std::mutex> Lk(Lock);
  assert((Src == AnySource || Src < Options.NumProcs) &&
         "recv source out of range");
  assert(Src != Rank && "self-receive is not supported");
  Proc &P = Procs[Rank];
  assert(!P.RegionStack.empty() && "recv() outside any region");
  double Begin = P.Clock;

  // Find an already-delivered candidate: the named source's queue, or —
  // for any-source receives — the earliest arrival over all sources
  // (ties to the lowest source rank for determinism).
  auto Box = Mailboxes.end();
  unsigned From = Src;
  if (Src != AnySource) {
    Box = Mailboxes.find({Src, Rank, Tag});
    if (Box != Mailboxes.end() && Box->second.empty())
      Box = Mailboxes.end();
  } else {
    double BestArrival = 0.0;
    for (unsigned Candidate = 0; Candidate != Options.NumProcs;
         ++Candidate) {
      auto It = Mailboxes.find({Candidate, Rank, Tag});
      if (It == Mailboxes.end() || It->second.empty())
        continue;
      double Arrival = It->second.front().Arrival;
      if (Box == Mailboxes.end() || Arrival < BestArrival) {
        Box = It;
        BestArrival = Arrival;
        From = Candidate;
      }
    }
  }

  Message Msg;
  if (Box != Mailboxes.end()) {
    Msg = std::move(Box->second.front());
    Box->second.pop_front();
    P.Clock = std::max(Begin, Msg.Arrival) + Options.Network.RecvOverhead;
  } else {
    // Block until a matching send resumes us.
    P.State = ProcState::BlockedRecv;
    P.RecvSrc = Src;
    P.RecvTag = Tag;
    P.BlockTime = Begin;
    yieldToken(Lk, Rank);
    blockUntilResumed(Lk, Rank);
    Msg = std::move(P.Matched); // Clock was set by the matching send.
    From = P.MatchedSrc;
    if (Src == AnySource) {
      // The send that woke us matched eagerly, but other ranks may have
      // executed earlier-arriving sends between the wake-up and now (the
      // scheduler runs lower virtual clocks first, so every such send
      // has already executed).  Honor arrival order: swap with the best
      // mailbox candidate if it beats the eager match.
      auto Better = Mailboxes.end();
      unsigned BetterSrc = 0;
      for (unsigned Candidate = 0; Candidate != Options.NumProcs;
           ++Candidate) {
        auto It = Mailboxes.find({Candidate, Rank, Tag});
        if (It == Mailboxes.end() || It->second.empty())
          continue;
        double Arrival = It->second.front().Arrival;
        double BestSoFar = Better == Mailboxes.end()
                               ? Msg.Arrival
                               : Better->second.front().Arrival;
        unsigned BestSrc = Better == Mailboxes.end() ? From : BetterSrc;
        if (Arrival < BestSoFar ||
            (Arrival == BestSoFar && Candidate < BestSrc)) {
          Better = It;
          BetterSrc = Candidate;
        }
      }
      if (Better != Mailboxes.end()) {
        Message Winner = std::move(Better->second.front());
        Better->second.pop_front();
        // Keep FIFO order of the displaced sender's queue.
        Mailboxes[{From, Rank, Tag}].push_front(std::move(Msg));
        Msg = std::move(Winner);
        From = BetterSrc;
        P.Clock = std::max(P.BlockTime, Msg.Arrival) +
                  Options.Network.RecvOverhead;
      }
    }
  }
  assert(From < Options.NumProcs && "receive matched no source");
  if (Buffer && !Msg.Data.empty()) {
    uint64_t Count = std::min<uint64_t>(Capacity, Msg.Data.size());
    std::copy_n(Msg.Data.begin(), Count, static_cast<uint8_t *>(Buffer));
  }
  appendEvent({Begin, Rank, trace::EventKind::ActivityBegin, ActPointToPoint,
               0});
  appendEvent({P.Clock, Rank, trace::EventKind::MessageRecv, From,
               Msg.Bytes});
  appendEvent({P.Clock, Rank, trace::EventKind::ActivityEnd, ActPointToPoint,
               0});
  checkTimeLimit(Rank);
  return {From, Msg.Bytes};
}


Comm::Request Engine::postRecv(unsigned Rank, unsigned Src, void *Buffer,
                               uint64_t Capacity, int Tag) {
  std::unique_lock<std::mutex> Lk(Lock);
  assert(Src < Options.NumProcs && "irecv source out of range");
  assert(Src != Rank && "self-receive is not supported");
  Proc &P = Procs[Rank];
  assert(!P.RegionStack.empty() && "irecv() outside any region");
  P.Posted.push_back({Src, Tag, Buffer, Capacity, false});
  return P.Posted.size() - 1;
}

uint64_t Engine::waitRecv(unsigned Rank, Comm::Request Handle) {
  {
    std::unique_lock<std::mutex> Lk(Lock);
    Proc &P = Procs[Rank];
    assert(Handle < P.Posted.size() && "wait on an unknown request");
    Proc::PostedRecv &Request = P.Posted[Handle];
    assert(!Request.Done && "request already waited on");
    // FIFO matching discipline: requests for the same (source, tag) must
    // complete in post order, or message ordering would be violated.
    for (size_t Earlier = 0; Earlier != Handle; ++Earlier) {
      [[maybe_unused]] const Proc::PostedRecv &Other = P.Posted[Earlier];
      assert((Other.Done || Other.Src != Request.Src ||
              Other.Tag != Request.Tag) &&
             "wait() must complete same-(source, tag) requests in post "
             "order");
    }
    Request.Done = true;
  }
  // Delegate to the blocking-receive machinery; the overlap benefit
  // comes from the compute the program ran between post and wait.
  Proc &P = Procs[Rank];
  Proc::PostedRecv Request = P.Posted[Handle];
  return recv(Rank, Request.Src, Request.Buffer, Request.Capacity,
              Request.Tag).Bytes;
}

double Engine::collective(unsigned Rank, CollectiveKind Kind, unsigned Root,
                          uint64_t Bytes, uint32_t Activity, double Value) {
  std::unique_lock<std::mutex> Lk(Lock);
  assert(Root < Options.NumProcs && "collective root out of range");
  Proc &P = Procs[Rank];
  assert(!P.RegionStack.empty() && "collective outside any region");
  double Begin = P.Clock;

  size_t Index = P.CollectiveIndex++;
  if (Index >= Collectives.size()) {
    assert(Index == Collectives.size() && "collective slots out of sync");
    Collectives.push_back({Kind, Root, Bytes, Activity, 0, 0.0, 0.0, {}});
  }
  CollectiveSlot &Slot = Collectives[Index];
  if (Slot.Values.empty())
    Slot.Values.assign(Options.NumProcs, 0.0);
  if (Slot.Kind != Kind || Slot.Root != Root || Slot.Bytes != Bytes) {
    initiateShutdown(
        "collective mismatch at operation " + std::to_string(Index) +
        ": rank " + std::to_string(Rank) + " called " +
        collectiveKindName(Kind) + " but another rank called " +
        collectiveKindName(Slot.Kind));
    throw ShutdownSignal{};
  }
  ++Slot.Arrived;
  Slot.MaxArrival = std::max(Slot.MaxArrival, Begin);
  Slot.Sum += Value;
  Slot.Values[Rank] = Value;

  if (Slot.Arrived < Options.NumProcs) {
    // Not the last arriver: wait for completion.
    P.State = ProcState::BlockedCollective;
    P.BlockTime = Begin;
    yieldToken(Lk, Rank);
    blockUntilResumed(Lk, Rank);
  } else {
    // Last arriver completes the operation for everyone.
    const NetworkModel &Net = Options.Network;
    double Cost = 0.0;
    switch (Kind) {
    case CollectiveKind::Barrier:
      Cost = Net.barrierTime(Options.NumProcs);
      break;
    case CollectiveKind::Reduce:
    case CollectiveKind::Broadcast:
      Cost = Net.treeCollectiveTime(Options.NumProcs, Bytes);
      break;
    case CollectiveKind::AllReduce:
      Cost = Net.allReduceTime(Options.NumProcs, Bytes);
      break;
    case CollectiveKind::AllToAll:
      Cost = Net.allToAllTime(Options.NumProcs, Bytes);
      break;
    case CollectiveKind::Gather:
    case CollectiveKind::Scatter:
      Cost = Net.rootedLinearTime(Options.NumProcs, Bytes);
      break;
    case CollectiveKind::Scan:
      Cost = Net.treeCollectiveTime(Options.NumProcs, Bytes);
      break;
    }
    double Leave = Slot.MaxArrival + Cost;
    for (unsigned R = 0; R != Options.NumProcs; ++R) {
      if (R == Rank)
        continue;
      Proc &Other = Procs[R];
      assert(Other.State == ProcState::BlockedCollective &&
             "collective participant in unexpected state");
      Other.Clock = Leave;
      Other.State = ProcState::Ready;
    }
    P.Clock = Leave;
  }
  appendActivityInterval(Rank, Activity, Begin, P.Clock);
  checkTimeLimit(Rank);
  // References into Collectives may be stale after blocking; re-index.
  const CollectiveSlot &Done = Collectives[Index];
  if (Kind == CollectiveKind::Scan) {
    double Prefix = 0.0;
    for (unsigned R = 0; R <= Rank; ++R)
      Prefix += Done.Values[R];
    return Prefix;
  }
  return Done.Sum;
}

void Engine::regionEnter(unsigned Rank, uint32_t RegionId) {
  std::unique_lock<std::mutex> Lk(Lock);
  assert(RegionId < Output.numRegions() && "region id out of range");
  Proc &P = Procs[Rank];
  P.RegionStack.push_back(RegionId);
  appendEvent({P.Clock, Rank, trace::EventKind::RegionEnter, RegionId, 0});
}

void Engine::regionExit(unsigned Rank, uint32_t RegionId) {
  std::unique_lock<std::mutex> Lk(Lock);
  Proc &P = Procs[Rank];
  assert(!P.RegionStack.empty() && P.RegionStack.back() == RegionId &&
         "regionExit does not match the innermost open region");
  (void)RegionId;
  P.RegionStack.pop_back();
  appendEvent({P.Clock, Rank, trace::EventKind::RegionExit, RegionId, 0});
}

void Engine::yieldToken(std::unique_lock<std::mutex> &Lk, unsigned Rank) {
  (void)Lk;
  assert(Lk.owns_lock() && "token protocol requires the engine lock");
  Proc &P = Procs[Rank];
  assert(P.HasToken && "yielding a token the rank does not hold");
  P.HasToken = false;
  SchedulerCV.notify_all();
}

void Engine::blockUntilResumed(std::unique_lock<std::mutex> &Lk,
                               unsigned Rank) {
  Proc &P = Procs[Rank];
  P.CV.wait(Lk, [&] { return P.HasToken || ShuttingDown; });
  if (ShuttingDown)
    throw ShutdownSignal{};
  assert(P.State == ProcState::Running && "resumed rank not marked running");
}

void Engine::initiateShutdown(std::string Reason) {
  if (!ShuttingDown) {
    ShuttingDown = true;
    FatalReason = std::move(Reason);
  }
  for (Proc &P : Procs)
    P.CV.notify_all();
  SchedulerCV.notify_all();
}

void Engine::threadBody(unsigned Rank) {
  {
    std::unique_lock<std::mutex> Lk(Lock);
    Proc &P = Procs[Rank];
    P.CV.wait(Lk, [&] { return P.HasToken || ShuttingDown; });
    if (ShuttingDown) {
      P.State = ProcState::Finished;
      ++FinishedCount;
      P.HasToken = false;
      SchedulerCV.notify_all();
      return;
    }
    P.State = ProcState::Running;
  }

  bool Aborted = false;
  try {
    Comm Handle(*this, Rank);
    Program(Handle);
  } catch (const ShutdownSignal &) {
    Aborted = true;
  }

  std::unique_lock<std::mutex> Lk(Lock);
  Proc &P = Procs[Rank];
  if (!Aborted && !P.RegionStack.empty())
    initiateShutdown("rank " + std::to_string(Rank) +
                     " finished with an open region");
  P.State = ProcState::Finished;
  ++FinishedCount;
  P.HasToken = false;
  SchedulerCV.notify_all();
}

Expected<trace::Trace> Engine::run() {
  for (unsigned R = 0; R != Options.NumProcs; ++R)
    Procs[R].Thread = std::thread([this, R] { threadBody(R); });

  {
    std::unique_lock<std::mutex> Lk(Lock);
    while (FinishedCount < Options.NumProcs && !ShuttingDown) {
      // Pick the startable/ready rank with the smallest clock.
      unsigned Next = Options.NumProcs;
      for (unsigned R = 0; R != Options.NumProcs; ++R) {
        Proc &P = Procs[R];
        if (P.State != ProcState::Ready && P.State != ProcState::NotStarted)
          continue;
        if (Next == Options.NumProcs || P.Clock < Procs[Next].Clock)
          Next = R;
      }
      if (Next == Options.NumProcs) {
        // Nobody is runnable: every unfinished rank is blocked.
        std::string Who;
        for (unsigned R = 0; R != Options.NumProcs; ++R) {
          Proc &P = Procs[R];
          if (P.State == ProcState::BlockedRecv)
            Who += " rank " + std::to_string(R) + " waits recv(src=" +
                   std::to_string(P.RecvSrc) + ", tag=" +
                   std::to_string(P.RecvTag) + ");";
          else if (P.State == ProcState::BlockedCollective)
            Who += " rank " + std::to_string(R) + " waits in a collective;";
        }
        initiateShutdown("deadlock:" + Who);
        break;
      }
      Proc &P = Procs[Next];
      if (P.State == ProcState::Ready)
        P.State = ProcState::Running;
      P.HasToken = true;
      P.CV.notify_all();
      SchedulerCV.wait(Lk, [&] { return !P.HasToken; });
    }
    // Teardown: wake every thread still parked so it can unwind.
    if (FinishedCount < Options.NumProcs) {
      ShuttingDown = true;
      for (Proc &P : Procs)
        P.CV.notify_all();
      SchedulerCV.wait(Lk, [&] { return FinishedCount == Options.NumProcs; });
    }
  }

  for (Proc &P : Procs)
    P.Thread.join();

  if (!FatalReason.empty())
    return makeStringError("simulation failed: %s", FatalReason.c_str());
  return std::move(Output);
}

//===----------------------------------------------------------------------===//
// Comm — thin forwarding layer.
//===----------------------------------------------------------------------===//

unsigned Comm::size() const { return Owner.size(); }
double Comm::now() const { return Owner.now(Rank); }
void Comm::compute(double Seconds) { Owner.compute(Rank, Seconds); }
void Comm::send(unsigned Dest, uint64_t Bytes, int Tag) {
  Owner.send(Rank, Dest, nullptr, Bytes, Tag);
}
void Comm::sendData(unsigned Dest, const void *Data, uint64_t Bytes,
                    int Tag) {
  assert(Data && "sendData requires a payload");
  Owner.send(Rank, Dest, Data, Bytes, Tag);
}
uint64_t Comm::recv(unsigned Src, int Tag) {
  return Owner.recv(Rank, Src, nullptr, 0, Tag).Bytes;
}
uint64_t Comm::recvData(unsigned Src, void *Buffer, uint64_t Capacity,
                        int Tag) {
  assert(Buffer && "recvData requires a buffer");
  return Owner.recv(Rank, Src, Buffer, Capacity, Tag).Bytes;
}
Comm::RecvResult Comm::recvAny(int Tag, void *Buffer, uint64_t Capacity) {
  return Owner.recv(Rank, Engine::AnySource, Buffer, Capacity, Tag);
}
Comm::Request Comm::irecv(unsigned Src, void *Buffer, uint64_t Capacity,
                          int Tag) {
  return Owner.postRecv(Rank, Src, Buffer, Capacity, Tag);
}
uint64_t Comm::wait(Request Handle) { return Owner.waitRecv(Rank, Handle); }
void Comm::barrier() {
  Owner.collective(Rank, CollectiveKind::Barrier, 0, 0, ActSynchronization,
                   0.0);
}
void Comm::reduce(unsigned Root, uint64_t Bytes) {
  Owner.collective(Rank, CollectiveKind::Reduce, Root, Bytes, ActCollective,
                   0.0);
}
void Comm::allReduce(uint64_t Bytes) {
  Owner.collective(Rank, CollectiveKind::AllReduce, 0, Bytes, ActCollective,
                   0.0);
}
double Comm::allReduceSum(double Value) {
  return Owner.collective(Rank, CollectiveKind::AllReduce, 0, sizeof(double),
                          ActCollective, Value);
}
double Comm::reduceSum(unsigned Root, double Value) {
  double Sum = Owner.collective(Rank, CollectiveKind::Reduce, Root,
                                sizeof(double), ActCollective, Value);
  return Rank == Root ? Sum : 0.0;
}
double Comm::scanSum(double Value) {
  return Owner.collective(Rank, CollectiveKind::Scan, 0, sizeof(double),
                          ActCollective, Value);
}
void Comm::broadcast(unsigned Root, uint64_t Bytes) {
  Owner.collective(Rank, CollectiveKind::Broadcast, Root, Bytes,
                   ActCollective, 0.0);
}
void Comm::allToAll(uint64_t BytesPerRank) {
  Owner.collective(Rank, CollectiveKind::AllToAll, 0, BytesPerRank,
                   ActCollective, 0.0);
}
void Comm::gather(unsigned Root, uint64_t BytesPerRank) {
  Owner.collective(Rank, CollectiveKind::Gather, Root, BytesPerRank,
                   ActCollective, 0.0);
}
void Comm::scatter(unsigned Root, uint64_t BytesPerRank) {
  Owner.collective(Rank, CollectiveKind::Scatter, Root, BytesPerRank,
                   ActCollective, 0.0);
}
void Comm::regionEnter(uint32_t RegionId) { Owner.regionEnter(Rank, RegionId); }
void Comm::regionExit(uint32_t RegionId) { Owner.regionExit(Rank, RegionId); }

//===----------------------------------------------------------------------===//
// Entry point.
//===----------------------------------------------------------------------===//

Expected<trace::Trace> sim::simulate(const SimulationOptions &Options,
                                     const ProgramFn &Program) {
  if (Options.NumProcs == 0)
    return makeStringError("simulation requires at least one process");
  if (!Options.ComputeSpeed.empty() &&
      Options.ComputeSpeed.size() != Options.NumProcs)
    return makeStringError(
        "ComputeSpeed must be empty or have one entry per process");
  if (!Program)
    return makeStringError("simulation requires a program");
  Engine TheEngine(Options, Program);
  return TheEngine.run();
}
