//===- sim/Network.h - Network cost model -----------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analytic communication cost model for the discrete-event simulator: a
/// latency/bandwidth (alpha-beta) point-to-point model and log-tree /
/// linear collective models, in the spirit of the Hockney and LogP
/// families.  Defaults approximate the interconnect class of the paper's
/// IBM SP2 testbed (tens-of-microseconds latency, ~100 MB/s links); the
/// methodology only needs plausible relative costs, not exact hardware.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SIM_NETWORK_H
#define LIMA_SIM_NETWORK_H

#include <cstdint>
#include <string_view>

namespace lima {
namespace sim {

/// Allreduce algorithm families with different latency/bandwidth
/// trade-offs (the classic MPI implementation choices):
///  - Tree: reduce-then-broadcast, 2*ceil(log2 P) * (a + m/b);
///  - RecursiveDoubling: ceil(log2 P) * (a + m/b) — latency-optimal,
///    best for small messages;
///  - Ring: 2*(P-1)*a + 2*((P-1)/P) * m/b — bandwidth-optimal
///    (Rabenseifner-style), best for large messages.
/// The crossover between the last two is where a + m/b trade-offs flip;
/// bench/collective_crossover maps it.
enum class AllReduceAlgorithm {
  Tree,
  RecursiveDoubling,
  Ring,
};

/// Human-readable algorithm name.
std::string_view allReduceAlgorithmName(AllReduceAlgorithm Algorithm);

/// Analytic cost model for all communication primitives.
struct NetworkModel {
  /// Per-message wire latency (alpha), seconds.
  double Latency = 40e-6;
  /// Link bandwidth (1/beta), bytes per second.
  double BytesPerSecond = 100e6;
  /// CPU-side overhead charged to the sender per send.
  double SendOverhead = 5e-6;
  /// CPU-side overhead charged to the receiver per receive.
  double RecvOverhead = 5e-6;
  /// Allreduce algorithm (see AllReduceAlgorithm).
  AllReduceAlgorithm AllReduce = AllReduceAlgorithm::Tree;

  /// Wire time of one point-to-point message of \p Bytes.
  double pointToPointTime(uint64_t Bytes) const {
    return Latency + static_cast<double>(Bytes) / BytesPerSecond;
  }

  /// Cost of a barrier across \p Procs processes after the last arrival
  /// (dissemination/tree: ceil(log2 P) latency-bound stages).
  double barrierTime(unsigned Procs) const;

  /// Cost of a rooted tree collective (reduce, broadcast) moving
  /// \p Bytes per stage across \p Procs processes.
  double treeCollectiveTime(unsigned Procs, uint64_t Bytes) const;

  /// Cost of an allreduce under the configured algorithm.
  double allReduceTime(unsigned Procs, uint64_t Bytes) const;

  /// Cost of an allreduce under a specific algorithm (for sweeps).
  double allReduceTimeAs(AllReduceAlgorithm Algorithm, unsigned Procs,
                         uint64_t Bytes) const;

  /// Cost of an all-to-all personalized exchange of \p BytesPerRank
  /// between every pair ((P-1) linear rounds).
  double allToAllTime(unsigned Procs, uint64_t BytesPerRank) const;

  /// Cost of gather/scatter with \p BytesPerRank per leaf
  /// (root serializes P-1 messages).
  double rootedLinearTime(unsigned Procs, uint64_t BytesPerRank) const;
};

/// ceil(log2(N)) for N >= 1.
unsigned ceilLog2(unsigned N);

} // namespace sim
} // namespace lima

#endif // LIMA_SIM_NETWORK_H
