//===- support/Log.cpp - Leveled structured logging -----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/SignalSafe.h"
#include "support/raw_ostream.h"
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>

using namespace lima;
using namespace lima::logging;

namespace {

/// Emission state behind one mutex: the sink, the JSON switch and the
/// repeat-suppression table.  The level lives outside as an atomic so
/// the disabled path never takes the lock.
struct LoggerState {
  std::mutex Mutex;
  raw_ostream *Sink = nullptr; // nullptr = errs()
  bool Json = false;
  uint64_t RepeatWindowMs = 1000;

  /// Suppression record per (level, message) key.
  struct Repeat {
    std::chrono::steady_clock::time_point LastEmit;
    uint64_t Suppressed = 0;
  };
  std::unordered_map<std::string, Repeat> Repeats;
};

LoggerState &state() {
  static LoggerState S;
  return S;
}

std::atomic<uint8_t> CurrentLevel{static_cast<uint8_t>(Level::Info)};

/// Crash-dump ring of recently rendered lines.  Appends are serialized
/// by the logger mutex; the fatal-signal handler reads with plain
/// atomic loads and write(2) only.  A slot's sequence number is even
/// while the slot is stable and odd while it is being rewritten, so a
/// handler that interrupts a writer mid-copy skips that slot instead of
/// emitting a torn line.
constexpr size_t CrashRingSlots = 64;
constexpr size_t CrashRingLineBytes = 240;

struct CrashSlot {
  std::atomic<uint32_t> Seq{0};
  std::atomic<uint32_t> Len{0};
  char Text[CrashRingLineBytes];
};

CrashSlot CrashRing[CrashRingSlots];
std::atomic<uint64_t> CrashRingHead{0};

void crashRingAppend(const std::string &Line) {
  uint64_t Claim = CrashRingHead.load(std::memory_order_relaxed);
  CrashSlot &Slot = CrashRing[Claim % CrashRingSlots];
  uint32_t Len = static_cast<uint32_t>(
      Line.size() < CrashRingLineBytes ? Line.size() : CrashRingLineBytes);
  Slot.Seq.fetch_add(1, std::memory_order_relaxed); // odd: rewrite begins
  std::memcpy(Slot.Text, Line.data(), Len);
  Slot.Len.store(Len, std::memory_order_relaxed);
  Slot.Seq.fetch_add(1, std::memory_order_release); // even: stable
  CrashRingHead.store(Claim + 1, std::memory_order_release);
}

void appendJsonEscaped(std::string &Out, std::string_view Str) {
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// Renders one record in the active format.  Caller holds the mutex.
std::string render(const LoggerState &S, Level L, std::string_view Msg,
                   const std::vector<Field> &Fields) {
  std::string Out;
  if (S.Json) {
    Out += "{\"level\":\"";
    Out += levelName(L);
    Out += "\",\"msg\":\"";
    appendJsonEscaped(Out, Msg);
    Out += '"';
    for (const Field &F : Fields) {
      Out += ",\"";
      appendJsonEscaped(Out, F.Key);
      Out += "\":";
      if (F.IsNumber) {
        Out += F.Value;
      } else {
        Out += '"';
        appendJsonEscaped(Out, F.Value);
        Out += '"';
      }
    }
    Out += "}\n";
    return Out;
  }
  Out += '[';
  Out += levelName(L);
  Out += "] ";
  Out += Msg;
  for (const Field &F : Fields) {
    Out += ' ';
    Out += F.Key;
    Out += '=';
    // Quote strings containing whitespace so fields stay splittable.
    bool NeedQuote = !F.IsNumber &&
                     F.Value.find_first_of(" \t\n\"") != std::string::npos;
    if (NeedQuote) {
      Out += '"';
      for (char C : F.Value)
        if (C == '"')
          Out += "\\\"";
        else
          Out += C;
      Out += '"';
    } else {
      Out += F.Value;
    }
  }
  Out += '\n';
  return Out;
}

} // namespace

std::string_view logging::levelName(Level L) {
  switch (L) {
  case Level::Debug:
    return "debug";
  case Level::Info:
    return "info";
  case Level::Warn:
    return "warn";
  case Level::Error:
    return "error";
  case Level::Off:
    return "off";
  }
  return "unknown";
}

Expected<Level> logging::parseLevel(std::string_view Name) {
  for (Level L : {Level::Debug, Level::Info, Level::Warn, Level::Error,
                  Level::Off})
    if (levelName(L) == Name)
      return L;
  return makeStringError("unknown log level '%.*s' (expected debug, info, "
                         "warn, error or off)",
                         static_cast<int>(Name.size()), Name.data());
}

void logging::setLevel(Level L) {
  CurrentLevel.store(static_cast<uint8_t>(L), std::memory_order_relaxed);
}

Level logging::level() {
  return static_cast<Level>(CurrentLevel.load(std::memory_order_relaxed));
}

bool logging::enabled(Level L) {
  return static_cast<uint8_t>(L) >=
         CurrentLevel.load(std::memory_order_relaxed);
}

void logging::setJson(bool On) {
  std::lock_guard<std::mutex> Lock(state().Mutex);
  state().Json = On;
}

bool logging::json() {
  std::lock_guard<std::mutex> Lock(state().Mutex);
  return state().Json;
}

void logging::setSink(raw_ostream *OS) {
  std::lock_guard<std::mutex> Lock(state().Mutex);
  state().Sink = OS;
}

void logging::setRepeatWindowMs(uint64_t Ms) {
  std::lock_guard<std::mutex> Lock(state().Mutex);
  state().RepeatWindowMs = Ms;
}

void logging::resetForTest() {
  setLevel(Level::Info);
  LoggerState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Json = false;
  S.Sink = nullptr;
  S.RepeatWindowMs = 1000;
  S.Repeats.clear();
}

Field logging::field(std::string_view Key, std::string_view Value) {
  return {std::string(Key), std::string(Value), false};
}

Field logging::field(std::string_view Key, const char *Value) {
  return {std::string(Key), std::string(Value), false};
}

Field logging::field(std::string_view Key, double Value) {
  return {std::string(Key), formatGeneral(Value), true};
}

Field logging::field(std::string_view Key, uint64_t Value) {
  return {std::string(Key), std::to_string(Value), true};
}

Field logging::field(std::string_view Key, int64_t Value) {
  return {std::string(Key), std::to_string(Value), true};
}

void logging::log(Level L, std::string_view Msg, std::vector<Field> Fields) {
  if (!enabled(L) || L == Level::Off)
    return;
  LoggerState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);

  // Repeat suppression: identical (level, message) pairs inside the
  // window are counted instead of emitted; the count surfaces on the
  // next emission as a "repeats" field.  Fields are deliberately not
  // part of the key — a repeating diagnosis usually varies its fields
  // (line numbers, counts) while the message stays constant.
  if (S.RepeatWindowMs != 0) {
    std::string Key = std::to_string(static_cast<int>(L)) + "\x1f" +
                      std::string(Msg);
    auto Now = std::chrono::steady_clock::now();
    auto [It, Fresh] = S.Repeats.try_emplace(Key);
    if (!Fresh) {
      uint64_t SinceMs =
          static_cast<uint64_t>(std::chrono::duration_cast<
                                    std::chrono::milliseconds>(
                                    Now - It->second.LastEmit)
                                    .count());
      if (SinceMs < S.RepeatWindowMs) {
        ++It->second.Suppressed;
        return;
      }
      if (It->second.Suppressed != 0) {
        Fields.push_back(field("repeats", It->second.Suppressed));
        It->second.Suppressed = 0;
      }
    }
    It->second.LastEmit = Now;
  }

  std::string Line = render(S, L, Msg, Fields);
  crashRingAppend(Line);
  raw_ostream &OS = S.Sink ? *S.Sink : errs();
  OS << Line;
  OS.flush();
}

void logging::crashWriteRecent(int Fd) {
  uint64_t Head = CrashRingHead.load(std::memory_order_acquire);
  uint64_t Count = Head < CrashRingSlots ? Head : CrashRingSlots;
  for (uint64_t I = Head - Count; I != Head; ++I) {
    CrashSlot &Slot = CrashRing[I % CrashRingSlots];
    uint32_t Seq = Slot.Seq.load(std::memory_order_acquire);
    if (Seq & 1)
      continue; // caught mid-rewrite; a torn line helps nobody
    uint32_t Len = Slot.Len.load(std::memory_order_relaxed);
    if (Len == 0 || Len > CrashRingLineBytes)
      continue;
    sigsafe::writeAll(Fd, Slot.Text, Len);
    if (Slot.Text[Len - 1] != '\n')
      sigsafe::writeStr(Fd, "\n");
  }
}

void logging::addFlags(ArgParser &Parser) {
  Parser.addOption("log-level",
                   "log threshold: debug, info, warn, error or off",
                   "info");
  Parser.addFlag("log-json",
                 "emit log records as newline-delimited JSON");
}

Error logging::configureFromFlags(const ArgParser &Parser, bool Quiet) {
  auto LevelOrErr = parseLevel(Parser.getString("log-level"));
  if (!LevelOrErr)
    return LevelOrErr.takeError();
  Level L = *LevelOrErr;
  // --quiet wins over --log-level: it means "errors only", matching its
  // suppression of the table output.
  if (Quiet && L < Level::Error)
    L = Level::Error;
  setLevel(L);
  setJson(Parser.getFlag("log-json"));
  return Error::success();
}
