//===- support/CommandLine.cpp - Small command-line parser ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/raw_ostream.h"
#include <cstdlib>

using namespace lima;

ArgParser::ArgParser(std::string ToolName, std::string Description)
    : ToolName(std::move(ToolName)), Description(std::move(Description)) {}

void ArgParser::addFlag(std::string Name, std::string Help) {
  assert(!findFlag(Name) && !findOption(Name) && "duplicate argument name");
  Flags.push_back({std::move(Name), std::move(Help), false});
}

void ArgParser::addOption(std::string Name, std::string Help,
                          std::string Default) {
  assert(!findFlag(Name) && !findOption(Name) && "duplicate argument name");
  OptionSpec Spec;
  Spec.Name = std::move(Name);
  Spec.Help = std::move(Help);
  Spec.Default = std::move(Default);
  Spec.Value = Spec.Default;
  Options.push_back(std::move(Spec));
}

void ArgParser::addPositional(std::string Name, std::string Help) {
  PositionalSpecs.push_back({std::move(Name), std::move(Help)});
}

ArgParser::FlagSpec *ArgParser::findFlag(std::string_view Name) {
  for (FlagSpec &Flag : Flags)
    if (Flag.Name == Name)
      return &Flag;
  return nullptr;
}

ArgParser::OptionSpec *ArgParser::findOption(std::string_view Name) {
  for (OptionSpec &Option : Options)
    if (Option.Name == Name)
      return &Option;
  return nullptr;
}

const ArgParser::FlagSpec *ArgParser::findFlag(std::string_view Name) const {
  return const_cast<ArgParser *>(this)->findFlag(Name);
}

const ArgParser::OptionSpec *
ArgParser::findOption(std::string_view Name) const {
  return const_cast<ArgParser *>(this)->findOption(Name);
}

std::string ArgParser::suggestName(std::string_view Name) const {
  // Suggest the nearest registered flag/option, but only when the typo
  // is plausibly a typo: distance at most 1 + len/3 keeps "--cvs" ->
  // "--csv" while refusing to map arbitrary words onto short flags.
  size_t Limit = 1 + Name.size() / 3;
  size_t BestDistance = Limit + 1;
  std::string Best;
  auto consider = [&](const std::string &Candidate) {
    size_t Distance = editDistance(Name, Candidate);
    if (Distance < BestDistance) {
      BestDistance = Distance;
      Best = Candidate;
    }
  };
  for (const FlagSpec &Flag : Flags)
    consider(Flag.Name);
  for (const OptionSpec &Option : Options)
    consider(Option.Name);
  consider("help");
  return BestDistance <= Limit ? Best : std::string();
}

Error ArgParser::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printHelp(outs());
      outs().flush();
      std::exit(0);
    }
    if (!Arg.starts_with("--")) {
      Positionals.push_back(std::string(Arg));
      continue;
    }
    std::string_view Body = Arg.substr(2);
    std::string_view Name = Body;
    std::string_view Inline;
    bool HasInline = false;
    if (size_t Eq = Body.find('='); Eq != std::string_view::npos) {
      Name = Body.substr(0, Eq);
      Inline = Body.substr(Eq + 1);
      HasInline = true;
    }
    if (FlagSpec *Flag = findFlag(Name)) {
      if (HasInline)
        return makeStringError("flag --%.*s does not take a value",
                               static_cast<int>(Name.size()), Name.data());
      Flag->Value = true;
      continue;
    }
    OptionSpec *Option = findOption(Name);
    if (!Option) {
      std::string Nearest = suggestName(Name);
      if (!Nearest.empty())
        return makeStringError("unknown option --%.*s (did you mean "
                               "--%s?)",
                               static_cast<int>(Name.size()), Name.data(),
                               Nearest.c_str());
      return makeStringError("unknown option --%.*s",
                             static_cast<int>(Name.size()), Name.data());
    }
    if (HasInline) {
      Option->Value = std::string(Inline);
      continue;
    }
    if (I + 1 >= Argc)
      return makeStringError("option --%s requires a value",
                             Option->Name.c_str());
    Option->Value = Argv[++I];
  }
  if (Positionals.size() < PositionalSpecs.size())
    return makeStringError("missing positional argument '%s'",
                           PositionalSpecs[Positionals.size()].Name.c_str());
  return Error::success();
}

bool ArgParser::getFlag(std::string_view Name) const {
  const FlagSpec *Flag = findFlag(Name);
  assert(Flag && "unregistered flag queried");
  return Flag->Value;
}

const std::string &ArgParser::getString(std::string_view Name) const {
  const OptionSpec *Option = findOption(Name);
  assert(Option && "unregistered option queried");
  return Option->Value;
}

uint64_t ArgParser::getUnsigned(std::string_view Name) const {
  auto ValueOrErr = parseUnsigned(getString(Name));
  if (!ValueOrErr) {
    errs() << ToolName << ": --" << std::string(Name) << ": "
           << ValueOrErr.takeError().message() << '\n';
    std::exit(1);
  }
  return *ValueOrErr;
}

double ArgParser::getDouble(std::string_view Name) const {
  auto ValueOrErr = parseDouble(getString(Name));
  if (!ValueOrErr) {
    errs() << ToolName << ": --" << std::string(Name) << ": "
           << ValueOrErr.takeError().message() << '\n';
    std::exit(1);
  }
  return *ValueOrErr;
}

void ArgParser::printHelp(raw_ostream &OS) const {
  OS << "usage: " << ToolName << " [options]";
  for (const PositionalSpec &Pos : PositionalSpecs)
    OS << " <" << Pos.Name << '>';
  OS << "\n\n" << Description << "\n\n";
  if (!PositionalSpecs.empty()) {
    OS << "positional arguments:\n";
    for (const PositionalSpec &Pos : PositionalSpecs)
      OS << "  " << Pos.Name << "  " << Pos.Help << '\n';
    OS << '\n';
  }
  OS << "options:\n";
  for (const FlagSpec &Flag : Flags)
    OS << "  --" << Flag.Name << "  " << Flag.Help << '\n';
  for (const OptionSpec &Option : Options)
    OS << "  --" << Option.Name << " <value>  " << Option.Help
       << " (default: " << Option.Default << ")\n";
  OS << "  --help  print this message and exit\n";
}
