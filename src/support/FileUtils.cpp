//===- support/FileUtils.cpp - Whole-file I/O helpers ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/FileUtils.h"
#include <cstdio>

using namespace lima;

Expected<std::string> lima::readFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeCodedError(ErrorCode::IoError, "cannot open '%s' for reading", Path.c_str());
  std::string Contents;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Contents.append(Buf, N);
  bool Failed = std::ferror(File) != 0;
  std::fclose(File);
  if (Failed)
    return makeCodedError(ErrorCode::IoError, "read error on '%s'", Path.c_str());
  return Contents;
}

Error lima::writeFile(const std::string &Path, std::string_view Contents) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return makeCodedError(ErrorCode::IoError, "cannot open '%s' for writing", Path.c_str());
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), File);
  bool CloseFailed = std::fclose(File) != 0;
  if (Written != Contents.size() || CloseFailed)
    return makeCodedError(ErrorCode::IoError, "write error on '%s'", Path.c_str());
  return Error::success();
}
