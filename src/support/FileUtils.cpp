//===- support/FileUtils.cpp - Whole-file I/O helpers ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/FileUtils.h"
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace lima;

Expected<std::string> lima::readFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeCodedError(ErrorCode::IoError, "cannot open '%s' for reading", Path.c_str());
  std::string Contents;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Contents.append(Buf, N);
  bool Failed = std::ferror(File) != 0;
  std::fclose(File);
  if (Failed)
    return makeCodedError(ErrorCode::IoError, "read error on '%s'", Path.c_str());
  return Contents;
}

Error lima::writeFile(const std::string &Path, std::string_view Contents) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return makeCodedError(ErrorCode::IoError, "cannot open '%s' for writing", Path.c_str());
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), File);
  bool CloseFailed = std::fclose(File) != 0;
  if (Written != Contents.size() || CloseFailed)
    return makeCodedError(ErrorCode::IoError, "write error on '%s'", Path.c_str());
  return Error::success();
}

Error lima::writeFileAtomic(const std::string &Path, std::string_view Contents) {
  // The temporary must live in the destination's directory: rename(2)
  // is only atomic within one filesystem.
  size_t Slash = Path.find_last_of('/');
  std::string Tmp = (Slash == std::string::npos
                         ? std::string()
                         : Path.substr(0, Slash + 1)) +
                    ".tmp." +
                    (Slash == std::string::npos ? Path : Path.substr(Slash + 1)) +
                    ".XXXXXX";
  std::string TmpBuf = Tmp; // mkstemp rewrites the template in place
  int Fd = ::mkstemp(TmpBuf.data());
  if (Fd < 0)
    return makeCodedError(ErrorCode::IoError,
                          "cannot create temporary for '%s': %s", Path.c_str(),
                          std::strerror(errno));
  const char *Data = Contents.data();
  size_t Len = Contents.size();
  while (Len != 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(TmpBuf.c_str());
      return makeCodedError(ErrorCode::IoError, "write error on '%s': %s",
                            TmpBuf.c_str(), std::strerror(errno));
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  if (::close(Fd) != 0) {
    ::unlink(TmpBuf.c_str());
    return makeCodedError(ErrorCode::IoError, "close error on '%s': %s",
                          TmpBuf.c_str(), std::strerror(errno));
  }
  if (::rename(TmpBuf.c_str(), Path.c_str()) != 0) {
    ::unlink(TmpBuf.c_str());
    return makeCodedError(ErrorCode::IoError, "cannot rename '%s' to '%s': %s",
                          TmpBuf.c_str(), Path.c_str(), std::strerror(errno));
  }
  return Error::success();
}
