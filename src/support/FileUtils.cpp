//===- support/FileUtils.cpp - Whole-file I/O helpers ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/FileUtils.h"
#include "support/FaultInjection.h"
#include "support/Retry.h"
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <string>
#include <unistd.h>

using namespace lima;

Expected<std::string> lima::readFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeCodedError(ErrorCode::IoError, "cannot open '%s' for reading", Path.c_str());
  std::string Contents;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Contents.append(Buf, N);
  bool Failed = std::ferror(File) != 0;
  std::fclose(File);
  if (Failed)
    return makeCodedError(ErrorCode::IoError, "read error on '%s'", Path.c_str());
  return Contents;
}

Error lima::writeFile(const std::string &Path, std::string_view Contents) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return makeCodedError(ErrorCode::IoError, "cannot open '%s' for writing", Path.c_str());
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), File);
  bool CloseFailed = std::fclose(File) != 0;
  if (Written != Contents.size() || CloseFailed)
    return makeCodedError(ErrorCode::IoError, "write error on '%s'", Path.c_str());
  return Error::success();
}

Error lima::writeFileAtomic(const std::string &Path, std::string_view Contents,
                            Durability Sync) {
  // The temporary must live in the destination's directory: rename(2)
  // is only atomic within one filesystem.
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? std::string(".")
                                               : Path.substr(0, Slash);
  std::string Tmp = (Slash == std::string::npos
                         ? std::string()
                         : Path.substr(0, Slash + 1)) +
                    ".tmp." +
                    (Slash == std::string::npos ? Path : Path.substr(Slash + 1)) +
                    ".XXXXXX";
  std::string TmpBuf = Tmp; // mkstemp rewrites the template in place
  if (fault::Fault F = fault::check("file.open")) {
    errno = F.errnoValue() ? F.errnoValue() : EIO;
    return makeCodedError(ErrorCode::IoError,
                          "cannot create temporary for '%s': %s", Path.c_str(),
                          std::strerror(errno));
  }
  int Fd = ::mkstemp(TmpBuf.data());
  if (Fd < 0)
    return makeCodedError(ErrorCode::IoError,
                          "cannot create temporary for '%s': %s", Path.c_str(),
                          std::strerror(errno));
  const char *Data = Contents.data();
  size_t Len = Contents.size();
  while (Len != 0) {
    ssize_t N = retry::retryEintr(
        [&] { return fault::write("file.write", Fd, Data, Len); });
    if (N < 0) {
      ::close(Fd);
      ::unlink(TmpBuf.c_str());
      return makeCodedError(ErrorCode::IoError, "write error on '%s': %s",
                            TmpBuf.c_str(), std::strerror(errno));
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  // Push the data down before the rename makes it reachable, so a
  // power loss cannot leave the path pointing at a hollow file.  The
  // process-crash case needs no fsync — completed write(2)s survive in
  // the page cache regardless.
  if (Sync == Durability::Full) {
    int SyncRc;
    if (fault::Fault F = fault::check("file.fsync")) {
      errno = F.errnoValue() ? F.errnoValue() : EIO;
      SyncRc = -1;
    } else {
      SyncRc = retry::retryEintr([&] { return ::fsync(Fd); });
    }
    if (SyncRc != 0) {
      ::close(Fd);
      ::unlink(TmpBuf.c_str());
      return makeCodedError(ErrorCode::IoError, "fsync error on '%s': %s",
                            TmpBuf.c_str(), std::strerror(errno));
    }
  }
  if (::close(Fd) != 0) {
    ::unlink(TmpBuf.c_str());
    return makeCodedError(ErrorCode::IoError, "close error on '%s': %s",
                          TmpBuf.c_str(), std::strerror(errno));
  }
  int RenameRc;
  if (fault::Fault F = fault::check("file.rename")) {
    errno = F.errnoValue() ? F.errnoValue() : EIO;
    RenameRc = -1;
  } else {
    RenameRc = ::rename(TmpBuf.c_str(), Path.c_str());
  }
  if (RenameRc != 0) {
    ::unlink(TmpBuf.c_str());
    return makeCodedError(ErrorCode::IoError, "cannot rename '%s' to '%s': %s",
                          TmpBuf.c_str(), Path.c_str(), std::strerror(errno));
  }
  // The rename itself lives in the directory, not the file: fsync the
  // parent so the new directory entry is durable too.  Failure here is
  // not worth un-renaming over — the data is safe, only the entry's
  // durability is weakened — so it is reported but nothing is undone.
  if (Sync == Durability::Full) {
    int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd >= 0) {
      int Rc = fault::check("file.dirsync")
                   ? -1
                   : retry::retryEintr([&] { return ::fsync(DirFd); });
      ::close(DirFd);
      if (Rc != 0)
        return makeCodedError(ErrorCode::IoError,
                              "fsync error on directory '%s'", Dir.c_str());
    }
  }
  return Error::success();
}
