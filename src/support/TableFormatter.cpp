//===- support/TableFormatter.cpp - Plain-text table rendering ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/TableFormatter.h"
#include "support/Format.h"
#include "support/raw_ostream.h"
#include <algorithm>
#include <cassert>

using namespace lima;

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table needs at least one column");
  Alignments.assign(this->Header.size(), Align::Right);
}

void TextTable::setAlign(size_t Col, Align Alignment) {
  assert(Col < Alignments.size() && "column out of range");
  Alignments[Col] = Alignment;
}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row width mismatch");
  Rows.push_back(std::move(Row));
}

void TextTable::addSeparator() { SeparatorAfter.push_back(Rows.size()); }

std::vector<size_t> TextTable::computeWidths() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());
  return Widths;
}

static std::string alignCell(const std::string &Cell, size_t Width,
                             Align Alignment) {
  switch (Alignment) {
  case Align::Left:
    return leftJustify(Cell, Width);
  case Align::Right:
    return rightJustify(Cell, Width);
  case Align::Center:
    return centerJustify(Cell, Width);
  }
  return Cell;
}

void TextTable::print(raw_ostream &OS) const {
  std::vector<size_t> Widths = computeWidths();

  auto printRule = [&] {
    for (size_t C = 0; C != Widths.size(); ++C) {
      OS << '+';
      OS.indent(static_cast<unsigned>(Widths[C]) + 2, '-');
    }
    OS << "+\n";
  };
  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C)
      OS << "| " << alignCell(Row[C], Widths[C], Alignments[C]) << ' ';
    OS << "|\n";
  };
  auto isSeparatorAfter = [&](size_t RowIndex) {
    return std::find(SeparatorAfter.begin(), SeparatorAfter.end(), RowIndex) !=
           SeparatorAfter.end();
  };

  if (!Title.empty())
    OS << Title << '\n';
  printRule();
  printRow(Header);
  printRule();
  for (size_t R = 0; R != Rows.size(); ++R) {
    if (R != 0 && isSeparatorAfter(R))
      printRule();
    printRow(Rows[R]);
  }
  printRule();
}

std::string TextTable::toString() const {
  std::string Buffer;
  raw_string_ostream OS(Buffer);
  print(OS);
  return Buffer;
}

static void appendCSVField(std::string &Out, const std::string &Field) {
  bool NeedsQuoting = Field.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuoting) {
    Out += Field;
    return;
  }
  Out += '"';
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
}

std::string TextTable::toCSV() const {
  std::string Out;
  auto appendRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C != 0)
        Out += ',';
      appendCSVField(Out, Row[C]);
    }
    Out += '\n';
  };
  appendRow(Header);
  for (const auto &Row : Rows)
    appendRow(Row);
  return Out;
}
