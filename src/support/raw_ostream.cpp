//===- support/raw_ostream.cpp - Lightweight output streams ---------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/raw_ostream.h"
#include <cinttypes>
#include <cstdio>

using namespace lima;

raw_ostream::~raw_ostream() = default;

raw_ostream &raw_ostream::operator<<(long long N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%lld", N);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::operator<<(unsigned long long N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%llu", N);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::operator<<(double D) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::indent(unsigned Count, char C) {
  for (unsigned I = 0; I != Count; ++I)
    *this << C;
  return *this;
}

void raw_fd_ostream::writeImpl(const char *Ptr, size_t Size) {
  std::fwrite(Ptr, 1, Size, File);
}

void raw_fd_ostream::flush() { std::fflush(File); }

raw_ostream &lima::outs() {
  static raw_fd_ostream Stream(stdout);
  return Stream;
}

raw_ostream &lima::errs() {
  static raw_fd_ostream Stream(stderr);
  return Stream;
}
