//===- support/ProcessMetrics.h - Process self-metrics ----------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Samples the standard process-level health gauges from /proc/self and
/// publishes them through metrics::Registry, so every exposition path
/// (--metrics-out files, the /metrics HTTP endpoint) carries them
/// alongside the domain metrics:
///
///   process.resident_memory_bytes   RSS right now
///   process.cpu_seconds_total       user + system CPU since start
///   process.start_time_seconds      unix time the process started
///   process.open_fds                open file descriptors right now
///
/// The names follow the Prometheus process-metrics convention once the
/// exporter's dots-to-underscores sanitization is applied.  sample() is
/// cheap (four small /proc reads) and is called before every dump or
/// scrape rather than on a timer — values are as fresh as the last
/// exposition, which is exactly when anyone looks.  On non-Linux
/// systems or a hidden /proc, unavailable gauges are simply left unset.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_PROCESSMETRICS_H
#define LIMA_SUPPORT_PROCESSMETRICS_H

namespace lima {
namespace metrics {

/// Reads /proc/self and updates the four process.* gauges in the
/// registry.  Safe to call from any thread and at any frequency;
/// concurrent calls race benignly (last writer wins per gauge).
void sampleProcessMetrics();

} // namespace metrics
} // namespace lima

#endif // LIMA_SUPPORT_PROCESSMETRICS_H
