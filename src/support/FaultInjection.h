//===- support/FaultInjection.h - Deterministic I/O fault shim --*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic interposition point for I/O syscalls, so the
/// durability and retry paths can be exercised on a healthy machine.
/// Call sites name themselves ("file.write", "monitor.read", ...) and
/// ask check() whether a fault is scheduled; the schedule comes from the
/// LIMA_FAULTS environment variable (or configure() in tests):
///
///   LIMA_FAULTS=site:kind@N[xM|x*][~P][,...]
///
///   site   the call-site name passed to check()
///   kind   eintr | eagain | enospc | emfile | enoent | eio | short
///   @N     arm on the Nth matching call (1-based; default 1)
///   xM     fire for M consecutive matching calls (default 1)
///   x*     fire on every matching call once armed
///   ~P     fire each armed call only with probability P in [0,100],
///          drawn from a deterministic xorshift stream seeded by
///          LIMA_FAULTS_SEED (default 1) — same seed, same faults
///
/// Example: fail lima_monitor's third read with EINTR twice, then make
/// every metrics-dump fsync hit ENOSPC:
///
///   LIMA_FAULTS=monitor.read:eintr@3x2,file.fsync:enospc@1x*
///
/// Cost model: when no spec is configured, check() is a single relaxed
/// atomic load (measured in the bench's streaming_write section next to
/// the syscall it guards).  When armed, matching takes a mutex — fault
/// runs are diagnostics, not production.
///
/// Every injected fault increments
/// lima.faults.injected_total{site="..."} so tests and operators can
/// see exactly what fired.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_FAULTINJECTION_H
#define LIMA_SUPPORT_FAULTINJECTION_H

#include "support/Error.h"
#include <atomic>
#include <cstddef>
#include <string_view>
#include <sys/types.h>

namespace lima {
namespace fault {

/// What check() tells a call site to do.
struct Fault {
  enum Kind : uint8_t {
    None = 0,
    Eintr,
    Eagain,
    Enospc,
    Emfile,
    Enoent,
    Eio,
    /// Complete only part of the transfer (short read / short write).
    ShortIo,
  };
  Kind K = None;

  explicit operator bool() const { return K != None; }

  /// The errno a failing syscall should report for this kind (ShortIo
  /// and None have no errno; callers handle them structurally).
  int errnoValue() const;
};

/// Stable name of \p K as it appears in the spec grammar.
std::string_view kindName(Fault::Kind K);

namespace detail {
extern std::atomic<bool> Armed;
Fault checkSlow(const char *Site);
} // namespace detail

/// Returns the fault scheduled for this call at \p Site, or a None
/// fault.  One relaxed load when no spec is configured.
inline Fault check(const char *Site) {
  if (!detail::Armed.load(std::memory_order_relaxed))
    return Fault{};
  return detail::checkSlow(Site);
}

/// Parses and installs \p Spec (the LIMA_FAULTS grammar above),
/// replacing any previous schedule.  An empty spec disarms.  \p Seed
/// seeds the probabilistic draws.
Error configure(std::string_view Spec, uint64_t Seed = 1);

/// Drops the schedule and disarms check().
void reset();

/// Total faults injected since the last reset (all sites).
uint64_t injectedTotal();

/// read(2) guarded by check(\p Site): an injected fault either fails
/// the call with the kind's errno or truncates the transfer (ShortIo
/// reads at most half the requested bytes, at least one).
ssize_t read(const char *Site, int Fd, void *Buf, size_t Len);

/// write(2) guarded by check(\p Site); ShortIo writes at most half.
ssize_t write(const char *Site, int Fd, const void *Buf, size_t Len);

/// pwrite(2) guarded by check(\p Site); ShortIo writes at most half.
ssize_t pwrite(const char *Site, int Fd, const void *Buf, size_t Len,
               off_t Offset);

} // namespace fault
} // namespace lima

#endif // LIMA_SUPPORT_FAULTINJECTION_H
