//===- support/MappedFile.cpp - Read-only mapped file views ---------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/MappedFile.h"
#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define LIMA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define LIMA_HAVE_MMAP 0
#endif

using namespace lima;

MappedFile &MappedFile::operator=(MappedFile &&Other) noexcept {
  if (this == &Other)
    return *this;
  reset();
  Mapping = Other.Mapping;
  MappedSize = Other.MappedSize;
  Fallback = std::move(Other.Fallback);
  Other.Mapping = nullptr;
  Other.MappedSize = 0;
  Other.Fallback.clear();
  return *this;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() {
#if LIMA_HAVE_MMAP
  if (Mapping)
    ::munmap(Mapping, MappedSize);
#endif
  Mapping = nullptr;
  MappedSize = 0;
}

Expected<MappedFile> MappedFile::open(const std::string &Path) {
  MappedFile Result;
  if (fault::Fault F = fault::check("map.open"))
    return makeCodedError(ErrorCode::IoError, "cannot open '%s': %s",
                          Path.c_str(),
                          std::strerror(F.errnoValue() ? F.errnoValue()
                                                       : EIO));
#if LIMA_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd >= 0) {
    struct stat St;
    bool Mapped = false;
    // Only regular, non-empty files map usefully; pipes and character
    // devices (stdin redirections) take the heap fallback below.
    if (::fstat(Fd, &St) == 0 && S_ISREG(St.st_mode) && St.st_size > 0) {
      size_t Size = static_cast<size_t>(St.st_size);
      void *Base = ::mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
      if (Base != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
        // The parsers stream front to back; let readahead know.
        ::madvise(Base, Size, MADV_SEQUENTIAL);
#endif
        Result.Mapping = Base;
        Result.MappedSize = Size;
        Mapped = true;
      }
    }
    ::close(Fd);
    if (Mapped)
      return Result;
  }
#endif
  // Heap fallback: anything readFile() accepts (including files open()
  // could not map) still loads, just with one copy.
  auto ContentsOrErr = readFile(Path);
  if (auto Err = ContentsOrErr.takeError())
    return Err;
  Result.Fallback = std::move(*ContentsOrErr);
  return Result;
}
