//===- support/MetricsExport.cpp - Prometheus text exposition -------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/MetricsExport.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include <set>

using namespace lima;
using namespace lima::metrics;

namespace {

bool validNameChar(char C, bool First) {
  if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
      C == ':')
    return true;
  return !First && C >= '0' && C <= '9';
}

std::string sanitizeBase(std::string_view Base) {
  std::string Out;
  Out.reserve(Base.size());
  for (size_t I = 0; I != Base.size(); ++I)
    Out += validNameChar(Base[I], I == 0) ? Base[I] : '_';
  return Out.empty() ? std::string("_") : Out;
}

/// Emits one `# TYPE` line per base name, first time it is seen.
void emitType(std::string &Out, std::set<std::string> &Seen,
              const std::string &Base, const char *Type) {
  if (!Seen.insert(Base).second)
    return;
  Out += "# TYPE " + Base + " " + Type + "\n";
}

/// `name{labels} value` or `name value`.
void emitSample(std::string &Out, const std::string &Base,
                const std::string &Labels, const std::string &Value) {
  Out += Base;
  if (!Labels.empty())
    Out += "{" + Labels + "}";
  Out += " " + Value + "\n";
}

/// Joins an existing label block with one extra label.
std::string withLabel(const std::string &Labels, const std::string &Extra) {
  return Labels.empty() ? Extra : Labels + "," + Extra;
}

std::string formatValue(double V) { return formatGeneral(V); }

} // namespace

std::string metrics::escapeLabelValue(std::string_view Value) {
  std::string Out;
  Out.reserve(Value.size());
  for (char C : Value) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

SplitName metrics::splitMetricName(std::string_view Name) {
  SplitName Split;
  size_t Brace = Name.find('{');
  if (Brace == std::string_view::npos) {
    Split.Base = sanitizeBase(Name);
    return Split;
  }
  Split.Base = sanitizeBase(Name.substr(0, Brace));
  std::string_view Rest = Name.substr(Brace + 1);
  if (!Rest.empty() && Rest.back() == '}')
    Rest.remove_suffix(1);
  Split.Labels = std::string(Rest);
  return Split;
}

std::string metrics::writePrometheusText(const RegistrySnapshot &Snap) {
  std::string Out;
  std::set<std::string> Seen;

  for (const RegistrySnapshot::CounterValue &C : Snap.Counters) {
    SplitName N = splitMetricName(C.Name);
    emitType(Out, Seen, N.Base, "counter");
    emitSample(Out, N.Base, N.Labels, std::to_string(C.Value));
  }

  for (const RegistrySnapshot::GaugeValue &G : Snap.Gauges) {
    SplitName N = splitMetricName(G.Name);
    emitType(Out, Seen, N.Base, "gauge");
    emitSample(Out, N.Base, N.Labels, formatValue(G.Value));
  }

  for (const RegistrySnapshot::HistogramValue &H : Snap.Histograms) {
    SplitName N = splitMetricName(H.Name);
    emitType(Out, Seen, N.Base, "histogram");
    uint64_t Cumulative = 0;
    for (size_t I = 0; I != H.Snap.Counts.size(); ++I) {
      Cumulative += H.Snap.Counts[I];
      std::string Le =
          I < H.Snap.UpperBounds.size()
              ? "le=\"" + formatValue(H.Snap.UpperBounds[I]) + "\""
              : std::string("le=\"+Inf\"");
      emitSample(Out, N.Base + "_bucket", withLabel(N.Labels, Le),
                 std::to_string(Cumulative));
    }
    emitSample(Out, N.Base + "_sum", N.Labels, formatValue(H.Snap.Sum));
    emitSample(Out, N.Base + "_count", N.Labels,
               std::to_string(H.Snap.Count));
  }

  return Out;
}

std::string metrics::writePrometheusText() {
  return writePrometheusText(snapshotAll());
}

Error metrics::writeMetricsFile(const std::string &Path) {
  // Atomic replace: a scraper polling the file sees either the previous
  // exposition or this one in full, never a torn prefix.
  // NoSync: dumps are rewritten every few seconds, so paying two
  // fsyncs per dump buys nothing a scraper would notice.
  return writeFileAtomic(Path, writePrometheusText(), Durability::NoSync);
}
