//===- support/CSV.h - CSV reading and writing ------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal RFC-4180-style CSV support: quoted fields, embedded commas and
/// doubled quotes.  Embedded newlines inside quoted fields are supported
/// by parseCSV (whole-document parsing).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_CSV_H
#define LIMA_SUPPORT_CSV_H

#include "support/Error.h"
#include "support/ParseLimits.h"
#include <string>
#include <string_view>
#include <vector>

namespace lima {

/// Parses a whole CSV document into rows of fields.
///
/// Handles quoted fields with embedded separators, quotes ("" escape) and
/// newlines.  A trailing final newline does not produce an empty row.
///
/// Every completed row counts as one record in Options.Report.  In
/// ParseMode::Lenient a row with a quoting error is dropped (scanning
/// resumes at the next newline) instead of aborting; ParseLimits bounds
/// on row length, field length and total allocation are fatal in both
/// modes.
Expected<std::vector<std::vector<std::string>>>
parseCSV(std::string_view Text, const ParseOptions &Options = {});

/// Serializes \p Rows as CSV, quoting fields only where required.
std::string writeCSV(const std::vector<std::vector<std::string>> &Rows);

} // namespace lima

#endif // LIMA_SUPPORT_CSV_H
