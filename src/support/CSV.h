//===- support/CSV.h - CSV reading and writing ------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal RFC-4180-style CSV support: quoted fields, embedded commas and
/// doubled quotes.  Embedded newlines inside quoted fields are supported
/// by parseCSV (whole-document parsing).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_CSV_H
#define LIMA_SUPPORT_CSV_H

#include "support/Error.h"
#include <string>
#include <string_view>
#include <vector>

namespace lima {

/// Parses a whole CSV document into rows of fields.
///
/// Handles quoted fields with embedded separators, quotes ("" escape) and
/// newlines.  A trailing final newline does not produce an empty row.
Expected<std::vector<std::vector<std::string>>> parseCSV(std::string_view Text);

/// Serializes \p Rows as CSV, quoting fields only where required.
std::string writeCSV(const std::vector<std::vector<std::string>> &Rows);

} // namespace lima

#endif // LIMA_SUPPORT_CSV_H
