//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregated runtime metrics: named monotonic counters, gauges and
/// fixed-bucket histograms with quantile extraction, kept in one
/// process-wide registry and exported in Prometheus text exposition
/// format (support/MetricsExport.h).  Where the telemetry layer
/// (support/Telemetry.h) records individual spans for one-shot
/// profiling, this layer keeps cheap running aggregates, the shape a
/// long-lived service (lima_monitor) reports continuously.
///
/// Cost model:
///
///  - Compile-time: the LIMA_METRIC_* macros compile to nothing under
///    -DLIMA_TELEMETRY=0 (the same switch as the span macros — one knob
///    governs all self-instrumentation).  The classes themselves always
///    compile, so lima_monitor links and runs in a compiled-out build
///    with its own directly-registered metrics intact.
///  - Runtime: the macros gate on one relaxed atomic load; recording is
///    off until metrics::setEnabled(true) (lima_analyze flips it for
///    --metrics-out, lima_monitor always does).
///  - Hot path: counters and histograms are sharded — each thread picks
///    a fixed shard of cache-line-padded atomics, so concurrent
///    increments from different threads do not ping-pong one line.
///    Reads merge shards; merged totals are exact (integer adds).
///
/// Histograms use fixed upper-bucket bounds chosen at registration;
/// quantiles (p50/p90/p99) are extracted from the merged bucket counts
/// by linear interpolation inside the selected bucket — the same
/// estimator Prometheus's histogram_quantile() applies server-side, so
/// local and scraped readings agree.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_METRICS_H
#define LIMA_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef LIMA_TELEMETRY
#define LIMA_TELEMETRY 1
#endif

namespace lima {
namespace metrics {

/// Shards per counter/histogram.  Eight covers the contention any
/// realistic LIMA thread count produces without bloating tiny metrics.
constexpr unsigned NumShards = 8;

namespace detail {
extern std::atomic<bool> Enabled;
/// The calling thread's shard index (stable per thread, round-robin
/// assigned on first use).
unsigned threadShard();
} // namespace detail

/// True when the LIMA_METRIC_* macros record.  Direct method calls on
/// registry objects are not gated — a tool that owns its metrics always
/// records them.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Turns macro recording on or off (off by default).
void setEnabled(bool On);

//===----------------------------------------------------------------------===//
// Counter
//===----------------------------------------------------------------------===//

/// A monotonic counter.  add() is one relaxed fetch_add on the calling
/// thread's shard; value() sums the shards (exact).
class Counter {
public:
  explicit Counter(std::string Name) : Name_(std::move(Name)) {}

  void add(uint64_t N) { addShard(N, detail::threadShard()); }

  /// Shard-explicit variant (tests pin shards to prove merge = total).
  void addShard(uint64_t N, unsigned Shard) {
    Shards_[Shard % NumShards].V.fetch_add(N, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t Sum = 0;
    for (const PaddedAtomic &S : Shards_)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

  const std::string &name() const { return Name_; }

  /// Not safe against concurrent add(); used by resetAll()/tests.
  void zero() {
    for (PaddedAtomic &S : Shards_)
      S.V.store(0, std::memory_order_relaxed);
  }

private:
  struct alignas(64) PaddedAtomic {
    std::atomic<uint64_t> V{0};
  };
  std::string Name_;
  std::array<PaddedAtomic, NumShards> Shards_;
};

//===----------------------------------------------------------------------===//
// Gauge
//===----------------------------------------------------------------------===//

/// A last-value-wins instantaneous reading (queue depth, watermark,
/// latest index value).  Unsharded: set() is one relaxed store.
class Gauge {
public:
  explicit Gauge(std::string Name) : Name_(std::move(Name)) {}

  void set(double V) { Value_.store(V, std::memory_order_relaxed); }

  void add(double Delta) {
    double Cur = Value_.load(std::memory_order_relaxed);
    while (!Value_.compare_exchange_weak(Cur, Cur + Delta,
                                         std::memory_order_relaxed))
      ;
  }

  double value() const { return Value_.load(std::memory_order_relaxed); }
  const std::string &name() const { return Name_; }
  void zero() { Value_.store(0.0, std::memory_order_relaxed); }

private:
  std::string Name_;
  std::atomic<double> Value_{0.0};
};

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

/// A fixed-bucket histogram.  A sample lands in the first bucket whose
/// upper bound is >= the value (Prometheus "le" semantics); samples
/// above every bound land in the overflow (+Inf) bucket.  observe() is
/// two relaxed adds on the calling thread's shard.
class Histogram {
public:
  /// \p UpperBounds must be strictly increasing and non-empty.
  Histogram(std::string Name, std::vector<double> UpperBounds);

  void observe(double V) { observeShard(V, detail::threadShard()); }

  /// Shard-explicit variant (tests pin shards to prove merge = total).
  void observeShard(double V, unsigned Shard);

  /// Merged, point-in-time reading.
  struct Snapshot {
    std::vector<double> UpperBounds;
    /// Per-bucket counts, size UpperBounds.size() + 1; the final entry
    /// is the overflow (+Inf) bucket.
    std::vector<uint64_t> Counts;
    uint64_t Count = 0;
    double Sum = 0.0;

    /// Quantile estimate for \p Q in (0, 1) by linear interpolation
    /// inside the selected bucket (the histogram_quantile estimator).
    /// Returns 0 for an empty histogram; a quantile landing in the
    /// overflow bucket clamps to the largest finite bound.
    double quantile(double Q) const;
  };

  Snapshot snapshot() const;
  double quantile(double Q) const { return snapshot().quantile(Q); }

  const std::string &name() const { return Name_; }
  const std::vector<double> &upperBounds() const { return UpperBounds_; }

  /// Not safe against concurrent observe(); used by resetAll()/tests.
  void zero();

  /// \p N bounds starting at \p Start, each \p Factor times the last
  /// (e.g. 0.001, 0.01, ... for latencies in seconds).
  static std::vector<double> exponentialBounds(double Start, double Factor,
                                               unsigned N);
  /// \p N bounds Start, Start + Step, Start + 2*Step, ...
  static std::vector<double> linearBounds(double Start, double Step,
                                          unsigned N);

private:
  struct alignas(64) ShardData {
    /// Bucket counts followed by the overflow slot (size Bounds + 1),
    /// plus the running sum of observed values.
    std::vector<std::atomic<uint64_t>> Counts;
    std::atomic<double> Sum{0.0};
  };

  std::string Name_;
  std::vector<double> UpperBounds_;
  std::array<ShardData, NumShards> Shards_;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Returns the process-wide counter/gauge registered under \p Name,
/// creating it on first use.  References stay valid for the process
/// lifetime.  Names may carry Prometheus-style labels in braces
/// (`lima.window.sid_c{region="loop1"}`); the exporter splits them off.
Counter &counter(std::string_view Name);
Gauge &gauge(std::string_view Name);

/// Returns the process-wide histogram under \p Name; \p UpperBounds is
/// consulted only on first registration.
Histogram &histogram(std::string_view Name,
                     const std::vector<double> &UpperBounds);

/// Point-in-time reading of every registered metric, each family sorted
/// by name so output is deterministic.
struct RegistrySnapshot {
  struct CounterValue {
    std::string Name;
    uint64_t Value;
  };
  struct GaugeValue {
    std::string Name;
    double Value;
  };
  struct HistogramValue {
    std::string Name;
    Histogram::Snapshot Snap;
  };
  std::vector<CounterValue> Counters;
  std::vector<GaugeValue> Gauges;
  std::vector<HistogramValue> Histograms;
};

RegistrySnapshot snapshotAll();

/// Zeroes every registered metric (names stay registered).  Not safe
/// against concurrent recording; tests and tool startup only.
void resetAll();

} // namespace metrics
} // namespace lima

//===----------------------------------------------------------------------===//
// Instrumentation macros (compiled out with the telemetry switch)
//===----------------------------------------------------------------------===//

#if LIMA_TELEMETRY

/// Adds \p N to the counter named \p NameLit when metrics are enabled.
#define LIMA_METRIC_COUNT(NameLit, N)                                          \
  do {                                                                         \
    if (::lima::metrics::enabled()) {                                          \
      static ::lima::metrics::Counter &LimaMetricC_ =                          \
          ::lima::metrics::counter(NameLit);                                   \
      LimaMetricC_.add(N);                                                     \
    }                                                                          \
  } while (false)

/// Sets the gauge named \p NameLit to \p V when metrics are enabled.
#define LIMA_METRIC_GAUGE_SET(NameLit, V)                                      \
  do {                                                                         \
    if (::lima::metrics::enabled()) {                                          \
      static ::lima::metrics::Gauge &LimaMetricG_ =                            \
          ::lima::metrics::gauge(NameLit);                                     \
      LimaMetricG_.set(V);                                                     \
    }                                                                          \
  } while (false)

/// Observes \p V into the histogram named \p NameLit (bounds from
/// \p BoundsExpr, evaluated once) when metrics are enabled.
#define LIMA_METRIC_OBSERVE(NameLit, V, BoundsExpr)                            \
  do {                                                                         \
    if (::lima::metrics::enabled()) {                                          \
      static ::lima::metrics::Histogram &LimaMetricH_ =                        \
          ::lima::metrics::histogram(NameLit, BoundsExpr);                     \
      LimaMetricH_.observe(V);                                                 \
    }                                                                          \
  } while (false)

/// Like LIMA_METRIC_COUNT for a metric name computed at runtime (a
/// label block varying per call, e.g. `...{path="/metrics"}`).  No
/// static caching: every recording pays the registry lookup, so this
/// belongs on request-rate paths, not per-event hot loops.  The name
/// expression is not evaluated when metrics are disabled.
#define LIMA_METRIC_COUNT_DYN(NameExpr, N)                                     \
  do {                                                                         \
    if (::lima::metrics::enabled())                                            \
      ::lima::metrics::counter(NameExpr).add(N);                               \
  } while (false)

#else

#define LIMA_METRIC_COUNT(NameLit, N) ((void)0)
#define LIMA_METRIC_GAUGE_SET(NameLit, V) ((void)0)
#define LIMA_METRIC_OBSERVE(NameLit, V, BoundsExpr) ((void)0)
#define LIMA_METRIC_COUNT_DYN(NameExpr, N) ((void)0)

#endif // LIMA_TELEMETRY

#endif // LIMA_SUPPORT_METRICS_H
