//===- support/CrashDump.h - Fatal-signal flight-data dump ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Last-gasp observability: a fatal-signal handler (SIGSEGV, SIGBUS,
/// SIGABRT) that writes the flight-recorder span ring and the most
/// recent structured log records to a crash file, then restores the
/// default disposition and re-raises so the process still dies with the
/// original signal (and core dump, if enabled).
///
/// Everything on the crash path is async-signal-safe: open(2), write(2),
/// lock-free atomic loads and the helpers in support/SignalSafe.h.  No
/// allocation, no locks, no stdio.  The dump is best-effort by design —
/// a slot caught mid-write is skipped, not waited for.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_CRASHDUMP_H
#define LIMA_SUPPORT_CRASHDUMP_H

#include "support/Error.h"
#include <string>

namespace lima {
namespace crashdump {

/// Installs the SIGSEGV/SIGBUS/SIGABRT handlers.  \p Path is where the
/// dump is written (created/truncated at crash time, mode 0644); it is
/// copied into a fixed buffer so the handler never touches heap memory.
/// Fails if \p Path is too long (> 500 bytes) or sigaction fails.
/// Calling again replaces the path.  Not undoable — the handlers stay
/// for the life of the process.
Error install(const std::string &Path);

/// True once install() has succeeded.
bool installed();

/// Writes the dump body — signal identification, build version, recent
/// log records, flight-recorder spans — to \p Fd using only
/// async-signal-safe calls.  Exposed so tests can exercise the writer
/// directly without taking a real fault.
void writeDump(int Fd, int Sig);

} // namespace crashdump
} // namespace lima

#endif // LIMA_SUPPORT_CRASHDUMP_H
