//===- support/CSV.cpp - CSV reading and writing --------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CSV.h"

using namespace lima;

Expected<std::vector<std::vector<std::string>>>
lima::parseCSV(std::string_view Text, const ParseOptions &Options) {
  const ParseLimits &Limits = Options.Limits;
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::string> Row;
  std::string Field;
  bool InQuotes = false;
  bool FieldStarted = false;
  size_t RowNo = 1;
  size_t RowStart = 0;
  uint64_t AllocBytes = 0;

  auto endField = [&] {
    AllocBytes += Field.size() + sizeof(std::string);
    Row.push_back(std::move(Field));
    Field.clear();
    FieldStarted = false;
  };
  auto endRow = [&] {
    endField();
    AllocBytes += sizeof(std::vector<std::string>);
    Rows.push_back(std::move(Row));
    Row.clear();
    if (Options.Report)
      ++Options.Report->TotalRecords;
    ++RowNo;
  };
  // Lenient recovery from a quoting error: discard the current row and
  // resume at the next newline.  Returns the index to continue from.
  auto skipRow = [&](size_t I) {
    Field.clear();
    Row.clear();
    InQuotes = false;
    FieldStarted = false;
    size_t Next = Text.find('\n', I);
    if (Next == std::string_view::npos)
      return Text.size();
    ++RowNo;
    RowStart = Next + 1;
    return Next + 1;
  };

  for (size_t I = 0; I != Text.size(); ++I) {
    if (I - RowStart > Limits.MaxLineBytes)
      return makeParseError(ErrorCode::LimitExceeded, RowNo, I,
                            "CSV row %zu exceeds the length limit", RowNo);
    if (Field.size() > Limits.MaxNameBytes)
      return makeParseError(ErrorCode::LimitExceeded, RowNo, I,
                            "CSV row %zu: field exceeds the length limit",
                            RowNo);
    if (AllocBytes > Limits.MaxAllocBytes)
      return makeParseError(ErrorCode::LimitExceeded, RowNo, I,
                            "CSV document exceeds the allocation cap");
    char C = Text[I];
    if (InQuotes) {
      if (C != '"') {
        Field += C;
        continue;
      }
      if (I + 1 < Text.size() && Text[I + 1] == '"') {
        Field += '"';
        ++I;
        continue;
      }
      InQuotes = false;
      continue;
    }
    switch (C) {
    case '"':
      if (!Field.empty()) {
        ParseError PE{ErrorCode::MalformedRecord, RowNo, I,
                      "CSV: quote inside unquoted field at byte " +
                          std::to_string(I)};
        if (Options.dropRecord(PE)) {
          if (Options.Report)
            ++Options.Report->TotalRecords;
          I = skipRow(I) - 1; // Loop increment lands on the next row.
          continue;
        }
        return Error::fromParse(std::move(PE));
      }
      InQuotes = true;
      FieldStarted = true;
      break;
    case ',':
      endField();
      FieldStarted = false;
      break;
    case '\r':
      // Tolerate CRLF line endings; bare CR is treated as a terminator too.
      break;
    case '\n':
      endRow();
      RowStart = I + 1;
      break;
    default:
      Field += C;
      FieldStarted = true;
      break;
    }
  }
  if (InQuotes) {
    ParseError PE{ErrorCode::TruncatedInput, RowNo, Text.size(),
                  "CSV: unterminated quoted field"};
    if (Options.dropRecord(PE)) {
      if (Options.Report)
        ++Options.Report->TotalRecords;
      return Rows;
    }
    return Error::fromParse(std::move(PE));
  }
  // Emit a final row only if the document does not end with a newline.
  if (FieldStarted || !Field.empty() || !Row.empty())
    endRow();
  return Rows;
}

static void appendField(std::string &Out, const std::string &Field) {
  bool NeedsQuoting = Field.find_first_of(",\"\n\r") != std::string::npos;
  if (!NeedsQuoting) {
    Out += Field;
    return;
  }
  Out += '"';
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
}

std::string lima::writeCSV(const std::vector<std::vector<std::string>> &Rows) {
  std::string Out;
  for (const auto &Row : Rows) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C != 0)
        Out += ',';
      appendField(Out, Row[C]);
    }
    Out += '\n';
  }
  return Out;
}
