//===- support/CSV.cpp - CSV reading and writing --------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CSV.h"

using namespace lima;

Expected<std::vector<std::vector<std::string>>>
lima::parseCSV(std::string_view Text) {
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::string> Row;
  std::string Field;
  bool InQuotes = false;
  bool FieldStarted = false;

  auto endField = [&] {
    Row.push_back(std::move(Field));
    Field.clear();
    FieldStarted = false;
  };
  auto endRow = [&] {
    endField();
    Rows.push_back(std::move(Row));
    Row.clear();
  };

  for (size_t I = 0; I != Text.size(); ++I) {
    char C = Text[I];
    if (InQuotes) {
      if (C != '"') {
        Field += C;
        continue;
      }
      if (I + 1 < Text.size() && Text[I + 1] == '"') {
        Field += '"';
        ++I;
        continue;
      }
      InQuotes = false;
      continue;
    }
    switch (C) {
    case '"':
      if (!Field.empty())
        return makeStringError("CSV: quote inside unquoted field at byte %zu",
                               I);
      InQuotes = true;
      FieldStarted = true;
      break;
    case ',':
      endField();
      FieldStarted = false;
      break;
    case '\r':
      // Tolerate CRLF line endings; bare CR is treated as a terminator too.
      break;
    case '\n':
      endRow();
      break;
    default:
      Field += C;
      FieldStarted = true;
      break;
    }
  }
  if (InQuotes)
    return makeStringError("CSV: unterminated quoted field");
  // Emit a final row only if the document does not end with a newline.
  if (FieldStarted || !Field.empty() || !Row.empty())
    endRow();
  return Rows;
}

static void appendField(std::string &Out, const std::string &Field) {
  bool NeedsQuoting = Field.find_first_of(",\"\n\r") != std::string::npos;
  if (!NeedsQuoting) {
    Out += Field;
    return;
  }
  Out += '"';
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
}

std::string lima::writeCSV(const std::vector<std::vector<std::string>> &Rows) {
  std::string Out;
  for (const auto &Row : Rows) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C != 0)
        Out += ',';
      appendField(Out, Row[C]);
    }
    Out += '\n';
  }
  return Out;
}
