//===- support/Format.cpp - Text formatting helpers -----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include <cstdio>

using namespace lima;

std::string lima::formatFixed(double Value, unsigned Precision) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%.*f", static_cast<int>(Precision),
                          Value);
  return std::string(Buf, static_cast<size_t>(Len));
}

std::string lima::formatGeneral(double Value) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", Value);
  return std::string(Buf, static_cast<size_t>(Len));
}

std::string lima::formatPercent(double Fraction, unsigned Precision) {
  return formatFixed(Fraction * 100.0, Precision) + "%";
}

std::string lima::leftJustify(std::string_view Str, size_t Width) {
  std::string Result(Str);
  if (Result.size() < Width)
    Result.append(Width - Result.size(), ' ');
  return Result;
}

std::string lima::rightJustify(std::string_view Str, size_t Width) {
  std::string Result;
  if (Str.size() < Width)
    Result.append(Width - Str.size(), ' ');
  Result.append(Str);
  return Result;
}

std::string lima::centerJustify(std::string_view Str, size_t Width) {
  if (Str.size() >= Width)
    return std::string(Str);
  size_t Total = Width - Str.size();
  size_t Left = Total / 2;
  std::string Result(Left, ' ');
  Result.append(Str);
  Result.append(Total - Left, ' ');
  return Result;
}
