//===- support/FaultInjection.cpp - Deterministic I/O fault shim ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unistd.h>
#include <vector>

using namespace lima;
using namespace lima::fault;

int Fault::errnoValue() const {
  switch (K) {
  case Eintr:
    return EINTR;
  case Eagain:
    return EAGAIN;
  case Enospc:
    return ENOSPC;
  case Emfile:
    return EMFILE;
  case Enoent:
    return ENOENT;
  case Eio:
    return EIO;
  case None:
  case ShortIo:
    return 0;
  }
  return 0;
}

std::string_view fault::kindName(Fault::Kind K) {
  switch (K) {
  case Fault::None:
    return "none";
  case Fault::Eintr:
    return "eintr";
  case Fault::Eagain:
    return "eagain";
  case Fault::Enospc:
    return "enospc";
  case Fault::Emfile:
    return "emfile";
  case Fault::Enoent:
    return "enoent";
  case Fault::Eio:
    return "eio";
  case Fault::ShortIo:
    return "short";
  }
  return "none";
}

namespace {

/// One parsed spec entry.  Calls count per rule; the rule fires from
/// call SkipCalls+1 for FireCalls calls (UINT64_MAX = forever).
struct Rule {
  std::string Site;
  Fault::Kind Kind = Fault::None;
  uint64_t SkipCalls = 0;
  uint64_t FireCalls = 1;
  uint64_t Seen = 0;
  uint64_t Fired = 0;
  /// Fire probability in [0,100]; 100 = always.
  unsigned Percent = 100;
};

struct Schedule {
  std::mutex Mutex;
  std::vector<Rule> Rules;
  uint64_t Injected = 0;
  uint64_t Rng = 1;
};

Schedule &schedule() {
  static Schedule S;
  return S;
}

uint64_t xorshift(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

bool parseKind(std::string_view Name, Fault::Kind &Out) {
  for (Fault::Kind K :
       {Fault::Eintr, Fault::Eagain, Fault::Enospc, Fault::Emfile,
        Fault::Enoent, Fault::Eio, Fault::ShortIo})
    if (Name == kindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

bool parseUint(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

/// Installs the spec from the environment before main() runs, so every
/// tool picks it up with no per-tool wiring.  A malformed spec must not
/// silently disable a fault run: warn loudly and keep going disarmed.
struct EnvInit {
  EnvInit() {
    const char *Spec = std::getenv("LIMA_FAULTS");
    if (!Spec || !*Spec)
      return;
    uint64_t Seed = 1;
    if (const char *SeedStr = std::getenv("LIMA_FAULTS_SEED"))
      (void)parseUint(SeedStr, Seed);
    if (Error Err = configure(Spec, Seed))
      std::fprintf(stderr, "lima: ignoring LIMA_FAULTS: %s\n",
                   Err.message().c_str());
  }
};
EnvInit TheEnvInit;

} // namespace

std::atomic<bool> fault::detail::Armed{false};

Error fault::configure(std::string_view Spec, uint64_t Seed) {
  std::vector<Rule> Rules;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Entry = Spec.substr(
        Pos, Comma == std::string_view::npos ? std::string_view::npos
                                             : Comma - Pos);
    Pos = Comma == std::string_view::npos ? Spec.size() : Comma + 1;
    if (Entry.empty())
      continue;

    Rule R;
    size_t Colon = Entry.find(':');
    if (Colon == std::string_view::npos || Colon == 0)
      return makeCodedError(ErrorCode::MalformedRecord,
                            "fault spec entry '%.*s' has no ':kind'",
                            static_cast<int>(Entry.size()), Entry.data());
    R.Site = std::string(Entry.substr(0, Colon));
    std::string_view Rest = Entry.substr(Colon + 1);

    size_t Tilde = Rest.find('~');
    if (Tilde != std::string_view::npos) {
      uint64_t Pct = 0;
      if (!parseUint(Rest.substr(Tilde + 1), Pct) || Pct > 100)
        return makeCodedError(ErrorCode::MalformedRecord,
                              "fault spec '%s': bad probability",
                              R.Site.c_str());
      R.Percent = static_cast<unsigned>(Pct);
      Rest = Rest.substr(0, Tilde);
    }
    size_t X = Rest.find('x');
    if (X != std::string_view::npos) {
      std::string_view Count = Rest.substr(X + 1);
      if (Count == "*") {
        R.FireCalls = UINT64_MAX;
      } else if (!parseUint(Count, R.FireCalls) || R.FireCalls == 0) {
        return makeCodedError(ErrorCode::MalformedRecord,
                              "fault spec '%s': bad repeat count",
                              R.Site.c_str());
      }
      Rest = Rest.substr(0, X);
    }
    size_t At = Rest.find('@');
    if (At != std::string_view::npos) {
      uint64_t Nth = 0;
      if (!parseUint(Rest.substr(At + 1), Nth) || Nth == 0)
        return makeCodedError(ErrorCode::MalformedRecord,
                              "fault spec '%s': bad call index",
                              R.Site.c_str());
      R.SkipCalls = Nth - 1;
      Rest = Rest.substr(0, At);
    }
    if (!parseKind(Rest, R.Kind))
      return makeCodedError(ErrorCode::MalformedRecord,
                            "fault spec '%s': unknown kind '%.*s'",
                            R.Site.c_str(), static_cast<int>(Rest.size()),
                            Rest.data());
    Rules.push_back(std::move(R));
  }

  Schedule &S = schedule();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Rules = std::move(Rules);
  S.Injected = 0;
  S.Rng = Seed ? Seed : 1;
  detail::Armed.store(!S.Rules.empty(), std::memory_order_relaxed);
  return Error::success();
}

void fault::reset() {
  Schedule &S = schedule();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Rules.clear();
  S.Injected = 0;
  detail::Armed.store(false, std::memory_order_relaxed);
}

uint64_t fault::injectedTotal() {
  Schedule &S = schedule();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return S.Injected;
}

Fault fault::detail::checkSlow(const char *Site) {
  Schedule &S = schedule();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  for (Rule &R : S.Rules) {
    if (R.Site != Site)
      continue;
    ++R.Seen;
    if (R.Seen <= R.SkipCalls)
      continue;
    if (R.FireCalls != UINT64_MAX && R.Fired >= R.FireCalls)
      continue;
    if (R.Percent < 100 && xorshift(S.Rng) % 100 >= R.Percent)
      continue;
    ++R.Fired;
    ++S.Injected;
    metrics::counter(std::string("lima.faults.injected_total{site=\"") +
                     Site + "\"}")
        .add(1);
    return Fault{R.Kind};
  }
  return Fault{};
}

ssize_t fault::read(const char *Site, int Fd, void *Buf, size_t Len) {
  if (Fault F = check(Site)) {
    if (F.K == Fault::ShortIo)
      Len = std::max<size_t>(1, Len / 2);
    else {
      errno = F.errnoValue();
      return -1;
    }
  }
  return ::read(Fd, Buf, Len);
}

ssize_t fault::write(const char *Site, int Fd, const void *Buf, size_t Len) {
  if (Fault F = check(Site)) {
    if (F.K == Fault::ShortIo)
      Len = std::max<size_t>(1, Len / 2);
    else {
      errno = F.errnoValue();
      return -1;
    }
  }
  return ::write(Fd, Buf, Len);
}

ssize_t fault::pwrite(const char *Site, int Fd, const void *Buf, size_t Len,
                      off_t Offset) {
  if (Fault F = check(Site)) {
    if (F.K == Fault::ShortIo)
      Len = std::max<size_t>(1, Len / 2);
    else {
      errno = F.errnoValue();
      return -1;
    }
  }
  return ::pwrite(Fd, Buf, Len, Offset);
}
