//===- support/FileUtils.h - Whole-file I/O helpers -------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fallible whole-file read/write used by the trace and report layers.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_FILEUTILS_H
#define LIMA_SUPPORT_FILEUTILS_H

#include "support/Error.h"
#include <string>
#include <string_view>

namespace lima {

/// Reads the entire file at \p Path into a string.
Expected<std::string> readFile(const std::string &Path);

/// Writes \p Contents to \p Path, replacing any existing file.
Error writeFile(const std::string &Path, std::string_view Contents);

} // namespace lima

#endif // LIMA_SUPPORT_FILEUTILS_H
