//===- support/FileUtils.h - Whole-file I/O helpers -------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fallible whole-file read/write used by the trace and report layers.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_FILEUTILS_H
#define LIMA_SUPPORT_FILEUTILS_H

#include "support/Error.h"
#include <string>
#include <string_view>

namespace lima {

/// Reads the entire file at \p Path into a string.
Expected<std::string> readFile(const std::string &Path);

/// Writes \p Contents to \p Path, replacing any existing file.
Error writeFile(const std::string &Path, std::string_view Contents);

/// How hard writeFileAtomic pushes the bytes toward the platters.
enum class Durability : uint8_t {
  /// fsync the temporary before rename(2) and the parent directory
  /// after, so the rename is not just atomic but durable: after a
  /// power loss the path holds either the old file or the complete new
  /// one.  The default — checkpoints and saved traces want this.
  Full,
  /// Skip both fsyncs.  Atomic against concurrent readers and process
  /// crashes, but a power loss can lose the rename or leave the new
  /// file empty.  For hot-path dumps that are re-written every few
  /// seconds anyway (--metrics-out), where two fsyncs per dump is real
  /// rent for no benefit.
  NoSync,
};

/// Writes \p Contents to \p Path atomically: the bytes go to a
/// mkstemp(3) temporary in the same directory, then rename(2) over the
/// destination.  A concurrent reader sees either the old file or the
/// complete new one, never a torn mixture — this is what --metrics-out
/// uses so a scraper polling the file cannot observe a half-written
/// exposition.  The temporary is unlinked on any failure.
Error writeFileAtomic(const std::string &Path, std::string_view Contents,
                      Durability Sync = Durability::Full);

} // namespace lima

#endif // LIMA_SUPPORT_FILEUTILS_H
