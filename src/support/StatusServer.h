//===- support/StatusServer.h - Live observability endpoints ----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application-facing status server: an HttpServer with the LIMA
/// observability surface mounted on it.
///
///   /            index of endpoints (plain text)
///   /metrics     Prometheus text exposition of the metrics registry,
///                including the process.* self-metrics sampled fresh on
///                every scrape
///   /healthz     liveness: 200 when every registered health probe
///                passes, 503 otherwise, with one line per probe
///   /readyz      readiness: same shape over the readiness probes
///   /varz        one JSON object of build/runtime variables (version,
///                git revision, pid, hardware threads, uptime) plus any
///                app-registered vars
///   /debug/spans recent spans from the telemetry flight recorder as
///                Chrome trace-event JSON (load in Perfetto)
///
/// Threading contract: probes and vars are registered before start()
/// and run on the server's own thread, concurrently with the
/// application.  They must therefore only read thread-safe state —
/// metric registry atomics, the flight-recorder ring, the app's own
/// std::atomic flags.  Handlers that would need a lock shared with a
/// hot path do not belong here.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_STATUSSERVER_H
#define LIMA_SUPPORT_STATUSSERVER_H

#include "support/Error.h"
#include "support/HttpServer.h"
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace lima {
namespace status {

/// One probe outcome: passing plus a short human detail ("drained 12
/// windows").  The detail lands verbatim in the response body.
struct ProbeResult {
  bool Ok = true;
  std::string Detail;
};

using Probe = std::function<ProbeResult()>;

/// Producer of one /varz value.  Returns a raw JSON value — already
/// quoted if it is a string ("\"abc\""), bare if a number — so vars can
/// be any JSON type without the server guessing.
using VarProducer = std::function<std::string()>;

class StatusServer {
public:
  StatusServer();
  ~StatusServer();
  StatusServer(const StatusServer &) = delete;
  StatusServer &operator=(const StatusServer &) = delete;

  /// Registers a liveness probe under \p Name.  Register before
  /// start(); the probe runs on the server thread.
  void addHealthProbe(std::string Name, Probe P);

  /// Registers a readiness probe under \p Name ("monitor has drained at
  /// least --min-windows windows").
  void addReadyProbe(std::string Name, Probe P);

  /// Registers an extra /varz entry.  \p Producer returns a raw JSON
  /// value; it runs on the server thread.
  void addVar(std::string Key, VarProducer Producer);

  /// Mounts an application handler at exactly \p Path (the dashboard
  /// layer in core mounts /api/windows, /events and /dashboard this
  /// way — support cannot depend on core, so the endpoints come to the
  /// server, not the other way around).  Register before start(); the
  /// handler runs on the server thread and must only touch thread-safe
  /// state, same contract as probes.
  void handle(std::string Path, http::HttpServer::Handler H);

  /// Mounts \p H for every path starting with \p Prefix (per-window
  /// lookups under /api/windows/).  Exact mounts win; among prefixes
  /// the longest match wins.
  void handlePrefix(std::string Prefix, http::HttpServer::Handler H);

  /// Adds one line to the "/" endpoint index ("  /dashboard    live
  /// imbalance dashboard").  Cosmetic but keeps the index honest when
  /// the application mounts extra endpoints.
  void describeEndpoint(std::string Line);

  /// Binds and serves on \p Address ("host:port", ":port" or "port";
  /// port 0 picks an ephemeral one — read it back with address()).
  /// Mounts all endpoints, then starts the HttpServer thread.
  Error start(const std::string &Address);

  /// Graceful shutdown; idempotent.
  void stop();

  bool running() const;
  uint16_t port() const;
  std::string address() const;
  uint64_t requestsServed() const;

private:
  http::HttpServer Server;
  std::vector<std::pair<std::string, Probe>> HealthProbes;
  std::vector<std::pair<std::string, Probe>> ReadyProbes;
  std::vector<std::pair<std::string, VarProducer>> Vars;
  std::vector<std::string> ExtraIndexLines;
  uint64_t StartWallSeconds = 0;
};

} // namespace status
} // namespace lima

#endif // LIMA_SUPPORT_STATUSSERVER_H
