//===- support/ProcessMetrics.cpp - Process self-metrics ------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/ProcessMetrics.h"
#include "support/FileUtils.h"
#include "support/Metrics.h"
#include <cstdint>
#include <cstdlib>
#include <dirent.h>
#include <string>
#include <string_view>
#include <unistd.h>

using namespace lima;
using namespace lima::metrics;

namespace {

/// Splits whitespace-separated tokens; returns false when \p Index is
/// out of range.  Tolerates the ragged spacing /proc uses.
bool token(std::string_view Text, size_t Index, std::string_view &Out) {
  size_t Pos = 0;
  for (size_t I = 0;; ++I) {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\n'))
      ++Pos;
    if (Pos >= Text.size())
      return false;
    size_t End = Pos;
    while (End < Text.size() && Text[End] != ' ' && Text[End] != '\n')
      ++End;
    if (I == Index) {
      Out = Text.substr(Pos, End - Pos);
      return true;
    }
    Pos = End;
  }
}

bool parseU64(std::string_view Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

/// RSS in bytes from /proc/self/statm (second field, in pages).
bool sampleRss(double &Bytes) {
  auto Contents = readFile("/proc/self/statm");
  if (!Contents) {
    Contents.takeError().consume();
    return false;
  }
  std::string_view Tok;
  uint64_t Pages;
  if (!token(*Contents, 1, Tok) || !parseU64(Tok, Pages))
    return false;
  long PageSize = ::sysconf(_SC_PAGESIZE);
  if (PageSize <= 0)
    return false;
  Bytes = static_cast<double>(Pages) * static_cast<double>(PageSize);
  return true;
}

/// CPU seconds (utime+stime) and start time from /proc/self/stat.  The
/// comm field may contain spaces, so fields are counted from the last
/// ')' — after it, state is field 3, utime 14, stime 15, starttime 22.
bool sampleStat(double &CpuSeconds, uint64_t &StartTicks) {
  auto Contents = readFile("/proc/self/stat");
  if (!Contents) {
    Contents.takeError().consume();
    return false;
  }
  size_t Paren = Contents->rfind(')');
  if (Paren == std::string::npos)
    return false;
  std::string_view Rest(*Contents);
  Rest.remove_prefix(Paren + 1);
  std::string_view UtimeTok, StimeTok, StartTok;
  uint64_t Utime, Stime;
  // Token 0 after ')' is field 3 (state), so field N is token N - 3.
  if (!token(Rest, 14 - 3, UtimeTok) || !token(Rest, 15 - 3, StimeTok) ||
      !token(Rest, 22 - 3, StartTok) || !parseU64(UtimeTok, Utime) ||
      !parseU64(StimeTok, Stime) || !parseU64(StartTok, StartTicks))
    return false;
  long Ticks = ::sysconf(_SC_CLK_TCK);
  if (Ticks <= 0)
    return false;
  CpuSeconds = static_cast<double>(Utime + Stime) / static_cast<double>(Ticks);
  return true;
}

/// Boot time (unix seconds) from the /proc/stat "btime" line.
bool bootTime(uint64_t &Btime) {
  auto Contents = readFile("/proc/stat");
  if (!Contents) {
    Contents.takeError().consume();
    return false;
  }
  size_t Pos = 0;
  while (Pos < Contents->size()) {
    size_t End = Contents->find('\n', Pos);
    if (End == std::string::npos)
      End = Contents->size();
    std::string_view Line(*Contents);
    Line = Line.substr(Pos, End - Pos);
    if (Line.size() > 6 && Line.substr(0, 6) == "btime ") {
      std::string_view Tok;
      return token(Line.substr(6), 0, Tok) && parseU64(Tok, Btime);
    }
    Pos = End + 1;
  }
  return false;
}

/// Open descriptor count: entries in /proc/self/fd minus "." and ".."
/// (the opendir descriptor itself is included, matching other process
/// exporters' behavior).
bool sampleOpenFds(double &Count) {
  DIR *Dir = ::opendir("/proc/self/fd");
  if (!Dir)
    return false;
  uint64_t N = 0;
  while (struct dirent *Entry = ::readdir(Dir)) {
    std::string_view Name = Entry->d_name;
    if (Name != "." && Name != "..")
      ++N;
  }
  ::closedir(Dir);
  Count = static_cast<double>(N);
  return true;
}

} // namespace

void metrics::sampleProcessMetrics() {
  double Rss;
  if (sampleRss(Rss))
    gauge("process.resident_memory_bytes").set(Rss);

  double Cpu = 0.0;
  uint64_t StartTicks = 0;
  if (sampleStat(Cpu, StartTicks)) {
    gauge("process.cpu_seconds_total").set(Cpu);
    // Start time never changes; compute it once and keep re-publishing
    // the cached value so a late /proc/stat hiccup cannot blank it.
    static double StartSeconds = [&] {
      uint64_t Btime;
      long Ticks = ::sysconf(_SC_CLK_TCK);
      if (!bootTime(Btime) || Ticks <= 0)
        return 0.0;
      return static_cast<double>(Btime) +
             static_cast<double>(StartTicks) / static_cast<double>(Ticks);
    }();
    if (StartSeconds > 0.0)
      gauge("process.start_time_seconds").set(StartSeconds);
  }

  double Fds;
  if (sampleOpenFds(Fds))
    gauge("process.open_fds").set(Fds);
}
