//===- support/StringUtils.cpp - String manipulation helpers --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace lima;

std::vector<std::string_view> lima::splitString(std::string_view Str,
                                                char Sep) {
  std::vector<std::string_view> Fields;
  size_t Start = 0;
  while (true) {
    size_t Pos = Str.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Fields.push_back(Str.substr(Start));
      return Fields;
    }
    Fields.push_back(Str.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::vector<std::string_view> lima::splitWhitespace(std::string_view Str) {
  std::vector<std::string_view> Fields;
  size_t I = 0;
  while (I < Str.size()) {
    while (I < Str.size() && std::isspace(static_cast<unsigned char>(Str[I])))
      ++I;
    size_t Start = I;
    while (I < Str.size() && !std::isspace(static_cast<unsigned char>(Str[I])))
      ++I;
    if (I > Start)
      Fields.push_back(Str.substr(Start, I - Start));
  }
  return Fields;
}

std::string_view lima::trimString(std::string_view Str) {
  size_t Begin = 0;
  while (Begin < Str.size() &&
         std::isspace(static_cast<unsigned char>(Str[Begin])))
    ++Begin;
  size_t End = Str.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(Str[End - 1])))
    --End;
  return Str.substr(Begin, End - Begin);
}

Expected<int64_t> lima::parseInt(std::string_view Str) {
  if (Str.empty())
    return makeCodedError(ErrorCode::BadNumber, "cannot parse integer from empty string");
  std::string Buf(Str);
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Buf.c_str(), &End, 10);
  if (End != Buf.c_str() + Buf.size())
    return makeCodedError(ErrorCode::BadNumber, "invalid integer '%s'", Buf.c_str());
  if (errno == ERANGE)
    return makeCodedError(ErrorCode::BadNumber, "integer '%s' out of range", Buf.c_str());
  return static_cast<int64_t>(Value);
}

Expected<uint64_t> lima::parseUnsigned(std::string_view Str) {
  if (Str.empty())
    return makeCodedError(ErrorCode::BadNumber, "cannot parse integer from empty string");
  if (Str.front() == '-')
    return makeCodedError(ErrorCode::BadNumber, "negative value where unsigned expected");
  std::string Buf(Str);
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Buf.c_str(), &End, 10);
  if (End != Buf.c_str() + Buf.size())
    return makeCodedError(ErrorCode::BadNumber, "invalid integer '%s'", Buf.c_str());
  if (errno == ERANGE)
    return makeCodedError(ErrorCode::BadNumber, "integer '%s' out of range", Buf.c_str());
  return static_cast<uint64_t>(Value);
}

Expected<double> lima::parseDouble(std::string_view Str) {
  if (Str.empty())
    return makeCodedError(ErrorCode::BadNumber, "cannot parse number from empty string");
  std::string Buf(Str);
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Buf.c_str(), &End);
  if (End != Buf.c_str() + Buf.size())
    return makeCodedError(ErrorCode::BadNumber, "invalid number '%s'", Buf.c_str());
  if (errno == ERANGE)
    return makeCodedError(ErrorCode::BadNumber, "number '%s' out of range", Buf.c_str());
  return Value;
}

std::string lima::joinStrings(const std::vector<std::string> &Parts,
                              std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I != 0)
      Result.append(Sep);
    Result.append(Parts[I]);
  }
  return Result;
}

size_t lima::editDistance(std::string_view A, std::string_view B) {
  // One-row dynamic program; the inputs are short flag names, so the
  // quadratic time is irrelevant.
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diagonal = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Substitute = Diagonal + (A[I - 1] == B[J - 1] ? 0 : 1);
      Diagonal = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1, Substitute});
    }
  }
  return Row[B.size()];
}
