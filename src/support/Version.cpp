//===- support/Version.cpp - Build version identification -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Version.h"
#include "support/VersionInfo.h" // generated at configure time
#include <string>

using namespace lima;

std::string_view lima::versionString() {
  static const std::string Version = [] {
    std::string S = LIMA_VERSION_MAJOR_MINOR;
    if (std::string_view(LIMA_GIT_REV) != "unknown")
      S += " (git " LIMA_GIT_REV ")";
    return S;
  }();
  return Version;
}

std::string_view lima::gitRevision() { return LIMA_GIT_REV; }

std::string_view lima::gitDescribe() { return LIMA_GIT_DESCRIBE; }
