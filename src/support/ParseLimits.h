//===- support/ParseLimits.h - Parser resource limits & modes ---*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared robustness knobs for every byte-parsing entry point
/// (trace text, trace binary, cube CSV, raw CSV) and the trace
/// reduction:
///
///  - ParseLimits bounds what a parser will allocate on behalf of an
///    input, so a hostile header (say, a declared processor count of
///    10^9) fails fast with ErrorCode::LimitExceeded instead of driving
///    unbounded allocation;
///  - ParseMode selects strict (first malformed record is fatal) or
///    lenient (malformed records are dropped and counted) parsing;
///  - ParseReport is the lenient mode's receipt: exactly how many
///    records were seen, how many were dropped, bucketed by ErrorCode,
///    with the first few structured errors kept as samples.
///
/// All counts are deterministic: the same input produces the same
/// report at any thread count (per-processor shards merge in processor
/// order).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_PARSELIMITS_H
#define LIMA_SUPPORT_PARSELIMITS_H

#include "support/Error.h"
#include <array>
#include <cstdint>
#include <vector>

namespace lima {

/// Resource bounds enforced while parsing untrusted input.  The
/// defaults accept any plausible real trace (hundreds of millions of
/// events, a million processors) while capping what a malicious or
/// corrupt header can make the parser allocate.
struct ParseLimits {
  /// Total events across all processors.
  uint64_t MaxEvents = 1ull << 28;
  /// Declared processor count.
  uint32_t MaxProcs = 1u << 20;
  /// Declared region count.
  uint32_t MaxRegions = 1u << 16;
  /// Declared activity count.
  uint32_t MaxActivities = 1u << 16;
  /// Bytes in one region/activity name or CSV field.
  size_t MaxNameBytes = 1u << 12;
  /// Bytes in one text line / CSV row.
  size_t MaxLineBytes = 1u << 16;
  /// Approximate cap on bytes a parser may allocate for the parsed
  /// result (event storage, name tables, cube cells).
  uint64_t MaxAllocBytes = 4ull << 30;

  /// A fully permissive instance (trusted input, e.g. self-written
  /// intermediate files).
  static ParseLimits unlimited();
};

/// Strictness of a parse.
enum class ParseMode : uint8_t {
  /// The first malformed record aborts the parse with a typed error.
  Strict,
  /// Malformed records are dropped and counted in a ParseReport; only
  /// unrecoverable failures (bad magic, truncation that loses framing,
  /// exceeded limits) abort.
  Lenient,
};

/// Receipt of a lenient parse: what was seen and what was dropped.
struct ParseReport {
  /// Records inspected, including dropped ones.  What counts as a
  /// record is per format: trace text counts event lines (not header/
  /// declaration lines), the binary format counts event records, the
  /// CSV layer counts rows, and the trace reduction counts events.
  uint64_t TotalRecords = 0;
  /// Records dropped as malformed.
  uint64_t DroppedRecords = 0;
  /// Dropped records bucketed by taxonomy code.
  std::array<uint64_t, NumErrorCodes> DroppedByCode{};
  /// First MaxSamples structured errors, for diagnostics.
  std::vector<ParseError> Samples;

  static constexpr size_t MaxSamples = 16;

  /// Records one dropped record.
  void addDrop(ParseError PE);

  /// Folds \p Other into this report (sample list is truncated to
  /// MaxSamples, counts add).  Merge order must be deterministic for
  /// reproducible reports.
  void merge(const ParseReport &Other);

  bool anyDropped() const { return DroppedRecords != 0; }

  /// Human-readable multi-line summary ("dropped 3 of 100 records: ...").
  std::string summary() const;
};

/// Everything a parser needs to know about how careful to be.
struct ParseOptions {
  ParseMode Mode = ParseMode::Strict;
  ParseLimits Limits;
  /// When non-null, lenient drops (and totals) are recorded here.  The
  /// report is not cleared first, so one report can span several files.
  ParseReport *Report = nullptr;

  /// True when a record-level error should be dropped rather than
  /// propagated.  Moves \p PE into the report (when one is attached) and
  /// returns true in lenient mode; leaves \p PE untouched and returns
  /// false in strict mode, so the caller can propagate it.
  bool dropRecord(ParseError &PE) const;
};

} // namespace lima

#endif // LIMA_SUPPORT_PARSELIMITS_H
