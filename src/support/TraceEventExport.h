//===- support/TraceEventExport.h - Telemetry exporters ---------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exporters for telemetry snapshots: human-readable summary tables via
/// TableFormatter, a machine-readable JSON stats document, and Chrome
/// trace-event JSON loadable by chrome://tracing and Perfetto.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_TRACEEVENTEXPORT_H
#define LIMA_SUPPORT_TRACEEVENTEXPORT_H

#include "support/TableFormatter.h"
#include "support/Telemetry.h"
#include <string>

namespace lima {
namespace telemetry {

/// Per-span-name statistics: count, total/min/max/mean wall ms, ordered
/// by descending total.
TextTable makeSpanSummaryTable(const Snapshot &S);

/// Per-stage, per-worker busy/queue-wait/idle milliseconds — the table
/// the self-profile cube is built from.
TextTable makeStageBreakdownTable(const Snapshot &S);

/// Final counter readings.
TextTable makeCounterTable(const Snapshot &S);

/// Chrome trace-event JSON (the "JSON Array Format" wrapped in an object
/// with displayTimeUnit).  Spans and stages become complete ("X") events
/// on their worker's track, in non-decreasing timestamp order; counters
/// become one "C" sample at the session end.
std::string exportChromeTrace(const Snapshot &S);

/// Machine-readable stats document: stages with per-worker breakdowns,
/// span aggregates and counters, plus the build version.
std::string exportSelfProfileJson(const Snapshot &S);

/// Chrome trace-event JSON of a flight-recorder snapshot (the
/// /debug/spans payload): the same "X"-event shape as
/// exportChromeTrace, in non-decreasing timestamp order, plus
/// "total_recorded"/"retained" metadata so consumers can tell how much
/// history the bounded ring has dropped.
std::string exportChromeTrace(const FlightSnapshot &S);

} // namespace telemetry
} // namespace lima

#endif // LIMA_SUPPORT_TRACEEVENTEXPORT_H
