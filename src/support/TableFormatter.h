//===- support/TableFormatter.h - Plain-text table rendering ----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders rows of string cells as an aligned plain-text table.  Used by
/// the report writers that regenerate the paper's Tables 1-4.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_TABLEFORMATTER_H
#define LIMA_SUPPORT_TABLEFORMATTER_H

#include <string>
#include <vector>

namespace lima {

class raw_ostream;

/// Column alignment for TextTable.
enum class Align { Left, Right, Center };

/// An aligned plain-text table builder.
///
/// Typical usage:
/// \code
///   TextTable Table({"loop", "overall", "computation"});
///   Table.addRow({"1", "19.051", "12.24"});
///   Table.print(outs());
/// \endcode
class TextTable {
public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> Header);

  /// Sets the alignment of column \p Col (default Right).
  void setAlign(size_t Col, Align Alignment);

  /// Sets an optional title printed above the table.
  void setTitle(std::string NewTitle) { Title = std::move(NewTitle); }

  /// Appends a data row; its size must match the header.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator rule at the current position.
  void addSeparator();

  /// Renders the table to \p OS.
  void print(raw_ostream &OS) const;

  /// Renders the table to a string.
  std::string toString() const;

  /// Emits the table as CSV (header row first, separators skipped).
  std::string toCSV() const;

  size_t numRows() const { return Rows.size(); }
  size_t numColumns() const { return Header.size(); }

private:
  std::vector<size_t> computeWidths() const;

  std::string Title;
  std::vector<std::string> Header;
  std::vector<Align> Alignments;
  std::vector<std::vector<std::string>> Rows;
  std::vector<size_t> SeparatorAfter;
};

} // namespace lima

#endif // LIMA_SUPPORT_TABLEFORMATTER_H
