//===- support/Metrics.cpp - Process-wide metrics registry ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <mutex>

using namespace lima;
using namespace lima::metrics;

std::atomic<bool> metrics::detail::Enabled{false};

void metrics::setEnabled(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

unsigned metrics::detail::threadShard() {
  static std::atomic<unsigned> Next{0};
  // Round-robin shard assignment on first use per thread: spreads any
  // set of concurrently-live threads across shards without hashing.
  static thread_local unsigned Shard =
      Next.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Shard;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::string Name, std::vector<double> UpperBounds)
    : Name_(std::move(Name)), UpperBounds_(std::move(UpperBounds)) {
  assert(!UpperBounds_.empty() && "histogram needs at least one bound");
  assert(std::is_sorted(UpperBounds_.begin(), UpperBounds_.end()) &&
         "histogram bounds must be increasing");
  for (ShardData &S : Shards_)
    S.Counts = std::vector<std::atomic<uint64_t>>(UpperBounds_.size() + 1);
}

void Histogram::observeShard(double V, unsigned Shard) {
  // First bucket whose upper bound covers the value ("le" semantics);
  // everything above the last bound lands in the overflow slot.
  size_t Bucket = static_cast<size_t>(
      std::lower_bound(UpperBounds_.begin(), UpperBounds_.end(), V) -
      UpperBounds_.begin());
  ShardData &S = Shards_[Shard % NumShards];
  S.Counts[Bucket].fetch_add(1, std::memory_order_relaxed);
  double Cur = S.Sum.load(std::memory_order_relaxed);
  while (!S.Sum.compare_exchange_weak(Cur, Cur + V,
                                      std::memory_order_relaxed))
    ;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot Snap;
  Snap.UpperBounds = UpperBounds_;
  Snap.Counts.assign(UpperBounds_.size() + 1, 0);
  for (const ShardData &S : Shards_) {
    for (size_t I = 0; I != S.Counts.size(); ++I)
      Snap.Counts[I] += S.Counts[I].load(std::memory_order_relaxed);
    Snap.Sum += S.Sum.load(std::memory_order_relaxed);
  }
  for (uint64_t C : Snap.Counts)
    Snap.Count += C;
  return Snap;
}

double Histogram::Snapshot::quantile(double Q) const {
  if (Count == 0 || UpperBounds.empty())
    return 0.0;
  Q = std::min(std::max(Q, 0.0), 1.0);
  double Rank = Q * static_cast<double>(Count);
  uint64_t Cumulative = 0;
  for (size_t I = 0; I != Counts.size(); ++I) {
    uint64_t InBucket = Counts[I];
    if (static_cast<double>(Cumulative + InBucket) < Rank || InBucket == 0) {
      Cumulative += InBucket;
      continue;
    }
    // Overflow bucket: no finite upper edge, clamp to the last bound.
    if (I == UpperBounds.size())
      return UpperBounds.back();
    double Lo = I == 0 ? 0.0 : UpperBounds[I - 1];
    double Hi = UpperBounds[I];
    // Linear interpolation inside the bucket — the histogram_quantile
    // estimator, so local readings match what Prometheus computes from
    // the exported buckets.
    return Lo + (Hi - Lo) * (Rank - static_cast<double>(Cumulative)) /
                    static_cast<double>(InBucket);
  }
  return UpperBounds.back();
}

void Histogram::zero() {
  for (ShardData &S : Shards_) {
    for (std::atomic<uint64_t> &C : S.Counts)
      C.store(0, std::memory_order_relaxed);
    S.Sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::exponentialBounds(double Start, double Factor,
                                                 unsigned N) {
  assert(Start > 0.0 && Factor > 1.0 && N > 0 &&
         "exponential bounds need positive start and factor > 1");
  std::vector<double> Bounds;
  Bounds.reserve(N);
  double B = Start;
  for (unsigned I = 0; I != N; ++I, B *= Factor)
    Bounds.push_back(B);
  return Bounds;
}

std::vector<double> Histogram::linearBounds(double Start, double Step,
                                            unsigned N) {
  assert(Step > 0.0 && N > 0 && "linear bounds need a positive step");
  std::vector<double> Bounds;
  Bounds.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Bounds.push_back(Start + Step * static_cast<double>(I));
  return Bounds;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// The process-wide registry.  std::map keeps iteration (and therefore
/// every snapshot and exposition) sorted by name; unique_ptr keeps
/// references stable across rehash-free growth.
struct Registry {
  std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

Counter &metrics::counter(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Counters.find(Name);
  if (It == R.Counters.end())
    It = R.Counters
             .emplace(std::string(Name),
                      std::make_unique<Counter>(std::string(Name)))
             .first;
  return *It->second;
}

Gauge &metrics::gauge(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Gauges.find(Name);
  if (It == R.Gauges.end())
    It = R.Gauges
             .emplace(std::string(Name),
                      std::make_unique<Gauge>(std::string(Name)))
             .first;
  return *It->second;
}

Histogram &metrics::histogram(std::string_view Name,
                              const std::vector<double> &UpperBounds) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Histograms.find(Name);
  if (It == R.Histograms.end())
    It = R.Histograms
             .emplace(std::string(Name),
                      std::make_unique<Histogram>(std::string(Name),
                                                  UpperBounds))
             .first;
  return *It->second;
}

RegistrySnapshot metrics::snapshotAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  RegistrySnapshot Snap;
  for (const auto &[Name, C] : R.Counters)
    Snap.Counters.push_back({Name, C->value()});
  for (const auto &[Name, G] : R.Gauges)
    Snap.Gauges.push_back({Name, G->value()});
  for (const auto &[Name, H] : R.Histograms)
    Snap.Histograms.push_back({Name, H->snapshot()});
  return Snap;
}

void metrics::resetAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, C] : R.Counters)
    C->zero();
  for (auto &[Name, G] : R.Gauges)
    G->zero();
  for (auto &[Name, H] : R.Histograms)
    H->zero();
}
