//===- support/Retry.cpp - EINTR loops and capped backoff -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Retry.h"
#include "support/Metrics.h"
#include <chrono>
#include <cmath>
#include <thread>

using namespace lima;
using namespace lima::retry;

bool retry::isTransientErrno(int Err) {
  switch (Err) {
  case EINTR:
  case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
  case EWOULDBLOCK:
#endif
  case ENOSPC:
  case EMFILE:
  case ENFILE:
  case EBUSY:
  case ENOBUFS:
  case ENOMEM:
    return true;
  default:
    return false;
  }
}

unsigned BackoffPolicy::delayMs(unsigned Attempt) const {
  double Delay = InitialDelayMs * std::pow(Multiplier, Attempt);
  if (!(Delay < MaxDelayMs))
    return MaxDelayMs;
  return static_cast<unsigned>(Delay);
}

Error retry::withBackoff(const BackoffPolicy &Policy, const char *Site,
                         const std::function<Error()> &Op,
                         const std::function<void(unsigned)> &SleepMs) {
  unsigned Attempts = Policy.MaxAttempts ? Policy.MaxAttempts : 1;
  for (unsigned Attempt = 0;; ++Attempt) {
    Error Err = Op();
    if (!Err)
      return Error::success();
    if (Err.code() != ErrorCode::IoError || Attempt + 1 >= Attempts)
      return Err;
    Err.consume();
    metrics::counter(std::string("lima.retries_total{site=\"") + Site +
                     "\"}")
        .add(1);
    unsigned Delay = Policy.delayMs(Attempt);
    if (SleepMs)
      SleepMs(Delay);
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
  }
}
