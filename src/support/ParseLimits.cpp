//===- support/ParseLimits.cpp - Parser resource limits & modes -----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/ParseLimits.h"
#include <limits>

using namespace lima;

ParseLimits ParseLimits::unlimited() {
  ParseLimits L;
  L.MaxEvents = std::numeric_limits<uint64_t>::max();
  L.MaxProcs = std::numeric_limits<uint32_t>::max();
  L.MaxRegions = std::numeric_limits<uint32_t>::max();
  L.MaxActivities = std::numeric_limits<uint32_t>::max();
  L.MaxNameBytes = std::numeric_limits<size_t>::max();
  L.MaxLineBytes = std::numeric_limits<size_t>::max();
  L.MaxAllocBytes = std::numeric_limits<uint64_t>::max();
  return L;
}

void ParseReport::addDrop(ParseError PE) {
  ++DroppedRecords;
  ++DroppedByCode[static_cast<size_t>(PE.Code)];
  if (Samples.size() < MaxSamples)
    Samples.push_back(std::move(PE));
}

void ParseReport::merge(const ParseReport &Other) {
  TotalRecords += Other.TotalRecords;
  DroppedRecords += Other.DroppedRecords;
  for (size_t I = 0; I != DroppedByCode.size(); ++I)
    DroppedByCode[I] += Other.DroppedByCode[I];
  for (const ParseError &PE : Other.Samples) {
    if (Samples.size() >= MaxSamples)
      break;
    Samples.push_back(PE);
  }
}

std::string ParseReport::summary() const {
  std::string Out = "dropped " + std::to_string(DroppedRecords) + " of " +
                    std::to_string(TotalRecords) + " records";
  if (!anyDropped())
    return Out;
  Out += ':';
  for (size_t I = 0; I != DroppedByCode.size(); ++I)
    if (DroppedByCode[I] != 0) {
      Out += "\n  ";
      Out += errorCodeName(static_cast<ErrorCode>(I));
      Out += ": " + std::to_string(DroppedByCode[I]);
    }
  for (const ParseError &PE : Samples) {
    Out += "\n  e.g. ";
    Out += PE.Msg;
  }
  return Out;
}

bool ParseOptions::dropRecord(ParseError &PE) const {
  if (Mode != ParseMode::Lenient)
    return false;
  if (Report)
    Report->addDrop(std::move(PE));
  return true;
}
