//===- support/Log.h - Leveled structured logging ---------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LIMA's structured logging layer: leveled messages carrying typed
/// key/value fields, rendered either as human-readable text or as
/// newline-delimited JSON (one object per line, ready for `jq` or a log
/// shipper).  This is the second half of the observability story next to
/// support/Metrics.h: metrics aggregate, logs narrate.
///
/// Design contract:
///
///  - One process-wide logger.  Emission is serialized by a mutex, so
///    lines from concurrent threads never interleave mid-record.
///    Logging is NOT a hot-path facility — hot paths use metrics; log
///    call sites fire at most a few times per window/file/run.
///  - Severity gate first: a call below the configured level costs one
///    relaxed atomic load and never formats its fields.
///  - Rate-limited repeats: an identical (level, message) pair emitted
///    again within the repeat window is suppressed and counted; the next
///    emission outside the window carries a "repeats" field with the
///    suppressed count.  This keeps a misbehaving input from turning one
///    diagnosis into a million identical lines.
///  - The sink defaults to stderr; tools may redirect (lima_monitor logs
///    windows to stdout, tests capture into a string).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_LOG_H
#define LIMA_SUPPORT_LOG_H

#include "support/Error.h"
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lima {

class ArgParser;
class raw_ostream;

namespace logging {

/// Severity levels, ordered; Off disables everything.
enum class Level : uint8_t { Debug = 0, Info, Warn, Error, Off };

/// Stable lower-case name ("debug", "info", "warn", "error", "off").
std::string_view levelName(Level L);

/// Parses a level name; fails with a helpful message on anything else.
Expected<Level> parseLevel(std::string_view Name);

/// Sets / reads the emission threshold (default Info).
void setLevel(Level L);
Level level();

/// True when a message at \p L would be emitted.  One relaxed load.
bool enabled(Level L);

/// Selects newline-delimited JSON output instead of human text.
void setJson(bool On);
bool json();

/// Redirects emission; nullptr restores the default (stderr).  The
/// stream must outlive all logging or the next setSink call.
void setSink(raw_ostream *OS);

/// Sets the repeat-suppression window in milliseconds (default 1000).
/// 0 disables suppression entirely (every call emits) — tests use this
/// for determinism.
void setRepeatWindowMs(uint64_t Ms);

/// Restores defaults (level Info, text output, stderr sink, 1000 ms
/// repeat window) and clears the repeat-suppression table.
void resetForTest();

/// One typed key/value pair attached to a message.  Numbers render
/// unquoted in JSON; strings are escaped and quoted.
struct Field {
  std::string Key;
  std::string Value;
  bool IsNumber = false;
};

/// Builds a string-valued field.
Field field(std::string_view Key, std::string_view Value);
Field field(std::string_view Key, const char *Value);
/// Builds numeric fields.  Doubles use shortest round-trip formatting.
Field field(std::string_view Key, double Value);
Field field(std::string_view Key, uint64_t Value);
Field field(std::string_view Key, int64_t Value);
inline Field field(std::string_view Key, int Value) {
  return field(Key, static_cast<int64_t>(Value));
}
inline Field field(std::string_view Key, unsigned Value) {
  return field(Key, static_cast<uint64_t>(Value));
}

/// Emits one record.  Below-threshold calls return immediately.
void log(Level L, std::string_view Msg, std::vector<Field> Fields = {});

/// Async-signal-safe: writes the most recently emitted log lines (a
/// bounded in-process ring of rendered records, oldest first) to \p Fd
/// using only write(2) and atomic loads.  A slot the handler caught
/// mid-rewrite is skipped rather than emitted torn.  Called by
/// support/CrashDump from a fatal-signal handler.
void crashWriteRecent(int Fd);

inline void debug(std::string_view Msg, std::vector<Field> Fields = {}) {
  if (enabled(Level::Debug))
    log(Level::Debug, Msg, std::move(Fields));
}
inline void info(std::string_view Msg, std::vector<Field> Fields = {}) {
  if (enabled(Level::Info))
    log(Level::Info, Msg, std::move(Fields));
}
inline void warn(std::string_view Msg, std::vector<Field> Fields = {}) {
  if (enabled(Level::Warn))
    log(Level::Warn, Msg, std::move(Fields));
}
inline void error(std::string_view Msg, std::vector<Field> Fields = {}) {
  if (enabled(Level::Error))
    log(Level::Error, Msg, std::move(Fields));
}

//===----------------------------------------------------------------------===//
// Command-line integration
//===----------------------------------------------------------------------===//

/// Registers the shared logging options on \p Parser:
///   --log-level {debug,info,warn,error}   (default "info")
///   --log-json                            (newline-delimited JSON)
/// Used by lima_analyze and lima_monitor so the flags mean the same
/// thing everywhere.
void addFlags(ArgParser &Parser);

/// Applies the flags registered by addFlags after Parser.parse().
/// \p Quiet (the tool's own --quiet flag) raises the threshold to
/// Error so routine output is suppressed consistently with tables.
/// Fails on an unrecognized --log-level value.
Error configureFromFlags(const ArgParser &Parser, bool Quiet = false);

} // namespace logging
} // namespace lima

#endif // LIMA_SUPPORT_LOG_H
