//===- support/Compiler.h - Compiler abstraction helpers --------*- C++ -*-===//
//
// Part of LIMA, a reproduction of "Load Imbalance in Parallel Programs"
// (Calzarossa, Massari, Tessera; 2003).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler abstraction macros used throughout LIMA, modeled after
/// llvm/Support/Compiler.h.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_COMPILER_H
#define LIMA_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace lima {

/// Reports a fatal internal error and aborts.
///
/// Used by limaUnreachable below and by internal invariant checks that must
/// fire even in builds without assertions.
[[noreturn]] inline void reportFatalInternalError(const char *Msg,
                                                  const char *File,
                                                  unsigned Line) {
  std::fprintf(stderr, "fatal internal error: %s (at %s:%u)\n", Msg, File,
               Line);
  std::abort();
}

} // namespace lima

/// Marks a point in control flow that must never be reached if program
/// invariants hold.  Prints the message and aborts when reached.
#define lima_unreachable(Msg)                                                  \
  ::lima::reportFatalInternalError(Msg, __FILE__, __LINE__)

#endif // LIMA_SUPPORT_COMPILER_H
