//===- support/MathUtils.h - Numerical helpers ------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numerically careful summation and floating-point comparison helpers.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_MATHUTILS_H
#define LIMA_SUPPORT_MATHUTILS_H

#include <cmath>
#include <cstddef>
#include <vector>

namespace lima {

/// Kahan compensated summation; exact enough for the long accumulations
/// in the dispersion-index computations.
class KahanSum {
public:
  /// Adds \p Value to the running sum.
  void add(double Value) {
    double Y = Value - Compensation;
    double T = Sum + Y;
    Compensation = (T - Sum) - Y;
    Sum = T;
  }

  /// Returns the compensated total.
  double total() const { return Sum; }

private:
  double Sum = 0.0;
  double Compensation = 0.0;
};

/// Compensated sum of a whole range.
double sumKahan(const std::vector<double> &Values);

/// True when |A - B| <= AbsTol + RelTol * max(|A|, |B|).
inline bool almostEqual(double A, double B, double AbsTol = 1e-12,
                        double RelTol = 1e-9) {
  double Diff = std::fabs(A - B);
  if (Diff <= AbsTol)
    return true;
  return Diff <= RelTol * std::fmax(std::fabs(A), std::fabs(B));
}

} // namespace lima

#endif // LIMA_SUPPORT_MATHUTILS_H
