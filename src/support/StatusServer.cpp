//===- support/StatusServer.cpp - Live observability endpoints ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/StatusServer.h"
#include "support/Metrics.h"
#include "support/MetricsExport.h"
#include "support/ProcessMetrics.h"
#include "support/Telemetry.h"
#include "support/TraceEventExport.h"
#include "support/Version.h"
#include <chrono>
#include <cstdint>
#include <thread>
#include <unistd.h>

using namespace lima;
using namespace lima::status;

namespace {

std::string jsonEscape(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size() + 2);
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += ' ';
      else
        Out += C;
    }
  }
  return Out;
}

std::string jsonString(std::string_view Str) {
  return '"' + jsonEscape(Str) + '"';
}

/// Renders a probe list: "ok\n" / "unhealthy\n" first line, then one
/// "[+|-] name: detail" line per probe.  503 when any probe fails.
http::Response renderProbes(
    const std::vector<std::pair<std::string, Probe>> &Probes,
    std::string_view OkWord, std::string_view FailWord) {
  bool AllOk = true;
  std::string Lines;
  for (const auto &[Name, P] : Probes) {
    ProbeResult R = P();
    AllOk = AllOk && R.Ok;
    Lines += R.Ok ? "[+] " : "[-] ";
    Lines += Name;
    if (!R.Detail.empty()) {
      Lines += ": ";
      Lines += R.Detail;
    }
    Lines += '\n';
  }
  std::string Body(AllOk ? OkWord : FailWord);
  Body += '\n';
  Body += Lines;
  return http::Response::text(AllOk ? 200 : 503, std::move(Body));
}

uint64_t wallSeconds() {
  return static_cast<uint64_t>(std::chrono::duration_cast<
                                   std::chrono::seconds>(
                                   std::chrono::system_clock::now()
                                       .time_since_epoch())
                                   .count());
}

} // namespace

StatusServer::StatusServer() = default;

StatusServer::~StatusServer() { stop(); }

void StatusServer::addHealthProbe(std::string Name, Probe P) {
  HealthProbes.emplace_back(std::move(Name), std::move(P));
}

void StatusServer::addReadyProbe(std::string Name, Probe P) {
  ReadyProbes.emplace_back(std::move(Name), std::move(P));
}

void StatusServer::addVar(std::string Key, VarProducer Producer) {
  Vars.emplace_back(std::move(Key), std::move(Producer));
}

void StatusServer::handle(std::string Path, http::HttpServer::Handler H) {
  Server.handle(std::move(Path), std::move(H));
}

void StatusServer::handlePrefix(std::string Prefix,
                                http::HttpServer::Handler H) {
  Server.handlePrefix(std::move(Prefix), std::move(H));
}

void StatusServer::describeEndpoint(std::string Line) {
  ExtraIndexLines.push_back(std::move(Line));
}

Error StatusServer::start(const std::string &Address) {
  StartWallSeconds = wallSeconds();

  Server.handle("/", [this](const http::Request &) {
    std::string Body =
        "lima status server\n"
        "  /metrics      Prometheus text exposition\n"
        "  /healthz      liveness probes\n"
        "  /readyz       readiness probes\n"
        "  /varz         build/runtime variables (JSON)\n"
        "  /debug/spans  flight-recorder spans (Chrome trace JSON)\n";
    for (const std::string &Line : ExtraIndexLines) {
      Body += Line;
      Body += '\n';
    }
    return http::Response::text(200, std::move(Body));
  });

  Server.handle("/metrics", [](const http::Request &) {
    // Self-metrics sampled per scrape: as fresh as the exposition.
    metrics::sampleProcessMetrics();
    http::Response R;
    R.ContentType = "text/plain; version=0.0.4; charset=utf-8";
    R.Body = metrics::writePrometheusText();
    return R;
  });

  Server.handle("/healthz", [this](const http::Request &) {
    return renderProbes(HealthProbes, "ok", "unhealthy");
  });

  Server.handle("/readyz", [this](const http::Request &) {
    return renderProbes(ReadyProbes, "ready", "not ready");
  });

  Server.handle("/varz", [this](const http::Request &) {
    std::string Out = "{\n";
    Out += "  \"version\": " + jsonString(versionString()) + ",\n";
    Out += "  \"git_rev\": " + jsonString(gitRevision()) + ",\n";
    Out += "  \"pid\": " + std::to_string(::getpid()) + ",\n";
    Out += "  \"hardware_threads\": " +
           std::to_string(std::thread::hardware_concurrency()) + ",\n";
    Out += "  \"uptime_seconds\": " +
           std::to_string(wallSeconds() - StartWallSeconds) + ",\n";
    Out += "  \"requests_served\": " +
           std::to_string(Server.requestsServed()) + ",\n";
    Out += "  \"flight_recorder\": " +
           std::string(telemetry::flightRecorderEnabled() ? "true" : "false") +
           ",\n";
    // Whether the LIMA_METRIC_* macros were compiled in: smoke tests
    // gate their lima_http_* assertions on this (the self-metrics
    // series do not exist in a -DLIMA_TELEMETRY=0 build).
    Out += "  \"telemetry_compiled\": ";
    Out += LIMA_TELEMETRY ? "true" : "false";
    for (const auto &[Key, Producer] : Vars) {
      Out += ",\n  " + jsonString(Key) + ": " + Producer();
    }
    Out += "\n}\n";
    return http::Response::json(std::move(Out));
  });

  Server.handle("/debug/spans", [](const http::Request &) {
    return http::Response::json(
        telemetry::exportChromeTrace(telemetry::flightSnapshot()));
  });

  return Server.start(Address);
}

void StatusServer::stop() { Server.stop(); }

bool StatusServer::running() const { return Server.running(); }

uint16_t StatusServer::port() const { return Server.port(); }

std::string StatusServer::address() const { return Server.address(); }

uint64_t StatusServer::requestsServed() const {
  return Server.requestsServed();
}
