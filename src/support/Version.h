//===- support/Version.h - Build version identification ---------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Version and git-revision strings captured at configure time (CMake
/// runs `git describe` / `git rev-parse` and generates VersionInfo.h).
/// Used by `lima_analyze --version` and embedded in the BENCH_*.json
/// envelopes so every recorded measurement is self-describing.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_VERSION_H
#define LIMA_SUPPORT_VERSION_H

#include <string_view>

namespace lima {

/// Human-facing version, e.g. "0.2.0 (git ae5bedd)".  Falls back to the
/// project version alone when the source tree is not a git checkout.
std::string_view versionString();

/// Short git revision captured at configure time ("unknown" outside a
/// checkout).  Stale by at most one configure run.
std::string_view gitRevision();

/// Full `git describe --always --dirty` output ("unknown" outside a
/// checkout).
std::string_view gitDescribe();

} // namespace lima

#endif // LIMA_SUPPORT_VERSION_H
