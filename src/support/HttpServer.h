//===- support/HttpServer.h - Embedded HTTP/1.1 status server ---*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free HTTP/1.1 server for LIMA's observability
/// surface (support/StatusServer.h mounts the actual endpoints).  It is
/// deliberately not a general web server:
///
///  - GET and HEAD only; anything else is answered 405 and the
///    connection closed.  Request bodies are rejected (400): a status
///    surface has no uploads.
///  - Two response modes: a plain buffered Response (Content-Length
///    framing), or a streaming Response fed by a StreamHub — the server
///    sends chunked-transfer headers, keeps the connection open, and
///    pushes every frame the application publishes from its own thread
///    (Server-Sent Events ride on this).  Streaming connections are
///    exempt from the idle timeout (a healthy SSE stream can be silent
///    for minutes) but still count against MaxConnections.
///  - The server meters itself: every answered request increments
///    lima_http_requests_total{path,status} and handler dispatch time
///    lands in lima_http_request_duration_seconds (both via the
///    LIMA_METRIC_* macros, so they compile out with telemetry and
///    cost one relaxed load when disabled).
///  - One background thread multiplexes every connection with poll(2);
///    handlers run on that thread, so they must be cheap (a render of
///    in-memory state) and must only touch thread-safe state — the
///    metrics registry, the telemetry flight ring, and atomics all
///    qualify.
///  - Request-line and header limits follow the ParseLimits philosophy:
///    a hostile peer can make the server answer 4xx, never allocate
///    without bound.  Oversized request lines get 414, oversized or
///    too-many headers 431, malformed framing 400.
///  - Keep-alive is supported (HTTP/1.1 default, opt-in for 1.0) with a
///    per-connection request cap and an idle timeout, so one scraper
///    can reuse its connection but a stuck peer cannot pin a slot
///    forever.
///  - stop() is graceful: the listener closes first, in-flight
///    responses get a short grace period to flush, then everything is
///    torn down and the thread joined.
///
/// Handlers are registered before start() and are immutable while the
/// server runs; every other cross-thread touchpoint (port, request
/// counter, stop flag) is atomic, which keeps the whole layer TSan-clean
/// while the application thread mutates its own state under scrape load.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_HTTPSERVER_H
#define LIMA_SUPPORT_HTTPSERVER_H

#include "support/Error.h"
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lima {
namespace http {

/// Resource bounds enforced on every connection, in the spirit of
/// ParseLimits: generous for any real client, hard caps for a hostile
/// one.
struct ServerLimits {
  /// Bytes in the request line (method + target + version).
  size_t MaxRequestLineBytes = 8 * 1024;
  /// Combined bytes of all header lines.
  size_t MaxHeaderBytes = 16 * 1024;
  /// Number of header lines.
  unsigned MaxHeaderCount = 64;
  /// Concurrently open connections; excess connects are answered 503
  /// and closed.
  unsigned MaxConnections = 64;
  /// Requests served on one keep-alive connection before the server
  /// sends Connection: close.
  uint64_t MaxRequestsPerConnection = 10000;
  /// A connection idle (no bytes either way) longer than this is
  /// closed.  0 disables the timeout.
  uint64_t IdleTimeoutMs = 30000;
};

/// One parsed request, handed to the matching handler.
struct Request {
  std::string Method;  ///< "GET" or "HEAD" (anything else never dispatches).
  std::string Path;    ///< Decoded-nothing target path, query split off.
  std::string Query;   ///< Bytes after '?', or empty.
  std::string Version; ///< "HTTP/1.0" or "HTTP/1.1".
  std::vector<std::pair<std::string, std::string>> Headers;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string *header(std::string_view Name) const;

  /// Value of the query parameter \p Name ("since" in
  /// "?since=3&limit=10"), or empty when absent.  No percent-decoding:
  /// the status API's parameters are plain integers, and refusing to
  /// decode keeps hostile encodings inert.
  std::string queryParam(std::string_view Name) const;
};

class HttpServer;

/// Fan-out point for streaming responses (Server-Sent Events).  The
/// application thread publishes frames; every connection currently
/// subscribed through a streaming Response receives each frame, pushed
/// from the server's poll loop.
///
/// Backpressure: a subscriber that stops reading accumulates pending
/// bytes only up to MaxPendingBytes; beyond that, new frames are
/// dropped *for that subscriber* (counted in framesDropped) rather
/// than buffering without bound — the live stream favors freshness
/// over completeness, and a catching-up client re-syncs from the
/// history API.
///
/// Thread-safe: publish() may race subscribe/unsubscribe/drain (which
/// run on the server thread) and other publishers.
class StreamHub {
public:
  explicit StreamHub(size_t MaxPendingBytes = 1 << 20);

  /// Appends \p Frame to every subscriber's pending buffer and wakes
  /// the serving loop.  The frame must already be wire-formatted for
  /// the stream's content type (for SSE: "event: ...\ndata: ...\n\n").
  void publish(std::string_view Frame);

  size_t subscribers() const {
    return NumSubs.load(std::memory_order_relaxed);
  }
  uint64_t framesPublished() const {
    return Published.load(std::memory_order_relaxed);
  }
  /// Frames discarded because a subscriber's pending buffer was full
  /// (counted once per slow subscriber per frame).
  uint64_t framesDropped() const {
    return Dropped.load(std::memory_order_relaxed);
  }

private:
  friend class HttpServer; // Impl subscribes/drains on the server thread.

  /// Registers a subscriber; \p Waker is invoked (under no lock) after
  /// a publish appends bytes for it.
  uint64_t subscribe(std::function<void()> Waker);
  /// Moves the subscriber's pending bytes into \p Out; false when the
  /// id is unknown.
  bool drain(uint64_t Id, std::string &Out);
  void unsubscribe(uint64_t Id);

  struct Subscriber {
    uint64_t Id;
    std::string Pending;
    std::function<void()> Waker;
  };
  mutable std::mutex Mu;
  std::vector<Subscriber> Subs;
  uint64_t NextId = 1;
  size_t MaxPendingBytes;
  std::atomic<size_t> NumSubs{0};
  std::atomic<uint64_t> Published{0};
  std::atomic<uint64_t> Dropped{0};
};

/// What a handler returns; the server adds framing headers.
struct Response {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
  /// When set, this response is a live stream: the server sends the
  /// headers (chunked transfer on HTTP/1.1, raw bytes + close on
  /// HTTP/1.0), writes Body as the first payload, then holds the
  /// connection open and pushes every frame the hub publishes until
  /// the client disconnects or the server stops.  A streaming response
  /// is the connection's last: keep-alive does not resume after it.
  std::shared_ptr<StreamHub> Stream;

  static Response text(int Status, std::string Body) {
    Response R;
    R.Status = Status;
    R.Body = std::move(Body);
    return R;
  }
  static Response json(std::string Body) {
    Response R;
    R.ContentType = "application/json; charset=utf-8";
    R.Body = std::move(Body);
    return R;
  }
  /// A streaming response fed by \p Hub; \p Initial is sent immediately
  /// (SSE handlers use it for the retry hint and a state snapshot).
  static Response stream(std::string ContentType,
                         std::shared_ptr<StreamHub> Hub,
                         std::string Initial = {}) {
    Response R;
    R.ContentType = std::move(ContentType);
    R.Body = std::move(Initial);
    R.Stream = std::move(Hub);
    return R;
  }
};

/// Standard reason phrase for \p Status ("OK", "Not Found", ...).
std::string_view statusReason(int Status);

/// Splits "host:port" / ":port" / "port" into a numeric IPv4 host
/// (default 127.0.0.1) and a port.  Accepts "localhost" as an alias for
/// 127.0.0.1; anything non-numeric otherwise fails (no resolver — the
/// status server binds addresses, it does not chase DNS).
Expected<std::pair<std::string, uint16_t>>
parseAddress(const std::string &Address);

/// The server.  Lifecycle: construct, handle() for every path, start(),
/// eventually stop() (the destructor stops too).
class HttpServer {
public:
  using Handler = std::function<Response(const Request &)>;

  HttpServer();
  explicit HttpServer(ServerLimits Limits);
  ~HttpServer();
  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Mounts \p H at exactly \p Path.  Must be called before start().
  void handle(std::string Path, Handler H);

  /// Mounts \p H for every path starting with \p Prefix ("/api/windows/"
  /// serves per-id lookups).  Exact mounts win over prefixes; among
  /// prefixes the longest match wins.  Must be called before start().
  void handlePrefix(std::string Prefix, Handler H);

  /// Binds \p Address (see parseAddress; port 0 picks an ephemeral
  /// port — read it back with port()) and spawns the serving thread.
  Error start(const std::string &Address);

  /// Graceful shutdown: stop accepting, give in-flight responses a
  /// short flush window, close everything, join.  Idempotent.
  void stop();

  bool running() const;

  /// The bound port (resolves port 0) — valid after start().
  uint16_t port() const;

  /// "host:port" actually bound — valid after start().
  std::string address() const;

  /// Requests answered so far (any status).  Atomic.
  uint64_t requestsServed() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace http
} // namespace lima

#endif // LIMA_SUPPORT_HTTPSERVER_H
