//===- support/HttpServer.h - Embedded HTTP/1.1 status server ---*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free HTTP/1.1 server for LIMA's observability
/// surface (support/StatusServer.h mounts the actual endpoints).  It is
/// deliberately not a general web server:
///
///  - GET and HEAD only; anything else is answered 405 and the
///    connection closed.  Request bodies are rejected (400): a status
///    surface has no uploads.
///  - One background thread multiplexes every connection with poll(2);
///    handlers run on that thread, so they must be cheap (a render of
///    in-memory state) and must only touch thread-safe state — the
///    metrics registry, the telemetry flight ring, and atomics all
///    qualify.
///  - Request-line and header limits follow the ParseLimits philosophy:
///    a hostile peer can make the server answer 4xx, never allocate
///    without bound.  Oversized request lines get 414, oversized or
///    too-many headers 431, malformed framing 400.
///  - Keep-alive is supported (HTTP/1.1 default, opt-in for 1.0) with a
///    per-connection request cap and an idle timeout, so one scraper
///    can reuse its connection but a stuck peer cannot pin a slot
///    forever.
///  - stop() is graceful: the listener closes first, in-flight
///    responses get a short grace period to flush, then everything is
///    torn down and the thread joined.
///
/// Handlers are registered before start() and are immutable while the
/// server runs; every other cross-thread touchpoint (port, request
/// counter, stop flag) is atomic, which keeps the whole layer TSan-clean
/// while the application thread mutates its own state under scrape load.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_HTTPSERVER_H
#define LIMA_SUPPORT_HTTPSERVER_H

#include "support/Error.h"
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lima {
namespace http {

/// Resource bounds enforced on every connection, in the spirit of
/// ParseLimits: generous for any real client, hard caps for a hostile
/// one.
struct ServerLimits {
  /// Bytes in the request line (method + target + version).
  size_t MaxRequestLineBytes = 8 * 1024;
  /// Combined bytes of all header lines.
  size_t MaxHeaderBytes = 16 * 1024;
  /// Number of header lines.
  unsigned MaxHeaderCount = 64;
  /// Concurrently open connections; excess connects are answered 503
  /// and closed.
  unsigned MaxConnections = 64;
  /// Requests served on one keep-alive connection before the server
  /// sends Connection: close.
  uint64_t MaxRequestsPerConnection = 10000;
  /// A connection idle (no bytes either way) longer than this is
  /// closed.  0 disables the timeout.
  uint64_t IdleTimeoutMs = 30000;
};

/// One parsed request, handed to the matching handler.
struct Request {
  std::string Method;  ///< "GET" or "HEAD" (anything else never dispatches).
  std::string Path;    ///< Decoded-nothing target path, query split off.
  std::string Query;   ///< Bytes after '?', or empty.
  std::string Version; ///< "HTTP/1.0" or "HTTP/1.1".
  std::vector<std::pair<std::string, std::string>> Headers;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string *header(std::string_view Name) const;
};

/// What a handler returns; the server adds framing headers.
struct Response {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;

  static Response text(int Status, std::string Body) {
    Response R;
    R.Status = Status;
    R.Body = std::move(Body);
    return R;
  }
  static Response json(std::string Body) {
    Response R;
    R.ContentType = "application/json; charset=utf-8";
    R.Body = std::move(Body);
    return R;
  }
};

/// Standard reason phrase for \p Status ("OK", "Not Found", ...).
std::string_view statusReason(int Status);

/// Splits "host:port" / ":port" / "port" into a numeric IPv4 host
/// (default 127.0.0.1) and a port.  Accepts "localhost" as an alias for
/// 127.0.0.1; anything non-numeric otherwise fails (no resolver — the
/// status server binds addresses, it does not chase DNS).
Expected<std::pair<std::string, uint16_t>>
parseAddress(const std::string &Address);

/// The server.  Lifecycle: construct, handle() for every path, start(),
/// eventually stop() (the destructor stops too).
class HttpServer {
public:
  using Handler = std::function<Response(const Request &)>;

  HttpServer();
  explicit HttpServer(ServerLimits Limits);
  ~HttpServer();
  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Mounts \p H at exactly \p Path.  Must be called before start().
  void handle(std::string Path, Handler H);

  /// Binds \p Address (see parseAddress; port 0 picks an ephemeral
  /// port — read it back with port()) and spawns the serving thread.
  Error start(const std::string &Address);

  /// Graceful shutdown: stop accepting, give in-flight responses a
  /// short flush window, close everything, join.  Idempotent.
  void stop();

  bool running() const;

  /// The bound port (resolves port 0) — valid after start().
  uint16_t port() const;

  /// "host:port" actually bound — valid after start().
  std::string address() const;

  /// Requests answered so far (any status).  Atomic.
  uint64_t requestsServed() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace http
} // namespace lima

#endif // LIMA_SUPPORT_HTTPSERVER_H
