//===- support/SignalSafe.h - Async-signal-safe output helpers --*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny formatting helpers that are safe to call from a signal handler:
/// nothing here allocates, locks, or calls into stdio — only raw
/// write(2) plus in-place integer-to-decimal conversion.  The crash-dump
/// path (support/CrashDump.h) is the only intended consumer; ordinary
/// code should keep using raw_ostream.
///
/// POSIX guarantees write() is async-signal-safe; lock-free atomic loads
/// are plain memory reads, so walking the flight-recorder ring and the
/// recent-log ring from a handler is safe as long as the walk sticks to
/// these helpers.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_SIGNALSAFE_H
#define LIMA_SUPPORT_SIGNALSAFE_H

#include "support/Retry.h"
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <unistd.h>

namespace lima {
namespace sigsafe {

/// Writes all of \p Data to \p Fd, retrying on short writes and EINTR
/// (via retry::retryEintr, which is a plain loop — safe here).
/// Errors are swallowed: in a crash handler there is nobody to tell.
inline void writeAll(int Fd, const char *Data, size_t Len) {
  while (Len != 0) {
    ssize_t N =
        retry::retryEintr([&] { return ::write(Fd, Data, Len); });
    if (N <= 0)
      return;
    Data += N;
    Len -= static_cast<size_t>(N);
  }
}

/// Writes a string literal / string_view (no allocation; the view must
/// point at memory that is valid in the handler, e.g. a literal).
inline void writeStr(int Fd, std::string_view Str) {
  writeAll(Fd, Str.data(), Str.size());
}

/// Writes \p Value in decimal.
inline void writeUint(int Fd, uint64_t Value) {
  char Buf[24];
  char *End = Buf + sizeof(Buf);
  char *Cur = End;
  do {
    *--Cur = static_cast<char>('0' + Value % 10);
    Value /= 10;
  } while (Value != 0);
  writeAll(Fd, Cur, static_cast<size_t>(End - Cur));
}

/// Writes \p Value in decimal with a leading '-' when negative.
inline void writeInt(int Fd, int64_t Value) {
  if (Value < 0) {
    writeStr(Fd, "-");
    // Negate via uint64 so INT64_MIN does not overflow.
    writeUint(Fd, static_cast<uint64_t>(~Value) + 1);
    return;
  }
  writeUint(Fd, static_cast<uint64_t>(Value));
}

} // namespace sigsafe
} // namespace lima

#endif // LIMA_SUPPORT_SIGNALSAFE_H
