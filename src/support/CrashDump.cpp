//===- support/CrashDump.cpp - Fatal-signal flight-data dump --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CrashDump.h"
#include "support/Log.h"
#include "support/SignalSafe.h"
#include "support/Telemetry.h"
#include "support/Version.h"
#include <atomic>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

using namespace lima;
using namespace lima::crashdump;

namespace {

// The handler may only touch fixed storage: the path and the version
// line are copied here at install() time.
char DumpPath[512];
char VersionLine[128];
std::atomic<bool> Installed{false};
std::atomic<int> DumpStarted{0};

constexpr int FatalSignals[] = {SIGSEGV, SIGBUS, SIGABRT};

std::string_view signalName(int Sig) {
  switch (Sig) {
  case SIGSEGV:
    return "SIGSEGV";
  case SIGBUS:
    return "SIGBUS";
  case SIGABRT:
    return "SIGABRT";
  }
  return "signal";
}

void handler(int Sig) {
  // Restore default dispositions first: a fault inside the dump path
  // then terminates the process instead of recursing.
  for (int S : FatalSignals)
    ::signal(S, SIG_DFL);
  // First fatal signal wins; a second faulting thread re-raises only.
  if (DumpStarted.exchange(1, std::memory_order_relaxed) == 0) {
    int Fd = ::open(DumpPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd >= 0) {
      writeDump(Fd, Sig);
      ::close(Fd);
    }
  }
  ::raise(Sig);
}

} // namespace

Error crashdump::install(const std::string &Path) {
  if (Path.empty())
    return makeStringError("crash-dump path must not be empty");
  if (Path.size() >= sizeof(DumpPath))
    return makeStringError("crash-dump path too long (%zu bytes, max %zu)",
                           Path.size(), sizeof(DumpPath) - 1);
  std::memcpy(DumpPath, Path.data(), Path.size());
  DumpPath[Path.size()] = '\0';

  std::string_view Version = versionString();
  size_t Len = Version.size() < sizeof(VersionLine) - 1
                   ? Version.size()
                   : sizeof(VersionLine) - 1;
  std::memcpy(VersionLine, Version.data(), Len);
  VersionLine[Len] = '\0';

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = handler;
  sigemptyset(&SA.sa_mask);
  for (int S : FatalSignals)
    if (::sigaction(S, &SA, nullptr) != 0)
      return makeStringError("sigaction(%.*s) failed",
                             static_cast<int>(signalName(S).size()),
                             signalName(S).data());
  Installed.store(true, std::memory_order_release);
  return Error::success();
}

bool crashdump::installed() {
  return Installed.load(std::memory_order_acquire);
}

void crashdump::writeDump(int Fd, int Sig) {
  sigsafe::writeStr(Fd, "==== lima crash dump ====\n");
  sigsafe::writeStr(Fd, "signal: ");
  sigsafe::writeStr(Fd, signalName(Sig));
  sigsafe::writeStr(Fd, " (");
  sigsafe::writeInt(Fd, Sig);
  sigsafe::writeStr(Fd, ")\nversion: ");
  sigsafe::writeAll(Fd, VersionLine, std::strlen(VersionLine));
  sigsafe::writeStr(Fd, "\npid: ");
  sigsafe::writeInt(Fd, static_cast<int64_t>(::getpid()));
  sigsafe::writeStr(Fd, "\n\n-- recent log records (oldest first) --\n");
  logging::crashWriteRecent(Fd);
  sigsafe::writeStr(Fd, "\n-- flight-recorder spans (oldest first) --\n");
  telemetry::crashWriteSpans(Fd);
  sigsafe::writeStr(Fd, "==== end of crash dump ====\n");
}
