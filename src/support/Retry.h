//===- support/Retry.h - EINTR loops and capped backoff ---------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two retry shapes transient I/O needs, shared by every call site
/// instead of hand-rolled loops:
///
///  - retryEintr(): re-issues a syscall-shaped callable while it fails
///    with EINTR.  The overload with an interrupt predicate returns the
///    EINTR result instead when the predicate says the caller has
///    something more urgent to do (lima_monitor installs its signal
///    handlers without SA_RESTART precisely so a pending dump/stop
///    request breaks a blocking read — a plain EINTR loop would undo
///    that design).
///
///  - withBackoff(): runs a fallible operation up to MaxAttempts times
///    with a capped exponential, deliberately jitterless delay schedule
///    (deterministic runs reproduce; LIMA processes do not stampede a
///    shared service the way web clients do).  Only ErrorCode::IoError
///    retries — the rest of the PR-3 taxonomy (bad magic, malformed
///    records, limits) is permanent and fails fast.  Attempts beyond
///    the first count into lima.retries_total{site="..."}.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_RETRY_H
#define LIMA_SUPPORT_RETRY_H

#include "support/Error.h"
#include <cerrno>
#include <functional>

namespace lima {
namespace retry {

/// Re-issues \p Op (returning an int or ssize_t, negative + errno on
/// failure) while it fails with EINTR.
template <typename Fn> auto retryEintr(Fn &&Op) {
  while (true) {
    auto R = Op();
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

/// Like retryEintr, but gives up the loop (returning the EINTR result)
/// when \p Interrupted() is true, so callers that use EINTR as a wakeup
/// can service it.
template <typename Fn, typename Pred>
auto retryEintr(Fn &&Op, Pred &&Interrupted) {
  while (true) {
    auto R = Op();
    if (R >= 0 || errno != EINTR || Interrupted())
      return R;
  }
}

/// True for errno values worth retrying after a pause: interruptions,
/// back-pressure and resources that free up as the system drains
/// (EINTR, EAGAIN, ENOSPC, EMFILE, ENFILE, EBUSY, ENOBUFS, ENOMEM).
bool isTransientErrno(int Err);

/// Capped exponential backoff: attempt k (0-based) sleeps
/// min(InitialDelayMs * Multiplier^k, MaxDelayMs) before retrying.
struct BackoffPolicy {
  unsigned MaxAttempts = 5;
  unsigned InitialDelayMs = 10;
  double Multiplier = 2.0;
  unsigned MaxDelayMs = 1000;

  /// Delay before retry number \p Attempt (0-based).  Pure function of
  /// the policy — no jitter, so schedules are reproducible.
  unsigned delayMs(unsigned Attempt) const;
};

/// Runs \p Op up to \p Policy.MaxAttempts times, sleeping the policy's
/// delay between attempts while Op fails with ErrorCode::IoError.  Any
/// other code — and exhaustion — returns the last error.  \p Site
/// labels lima.retries_total.  \p SleepMs overrides the delay (tests
/// pass a recorder; nullptr sleeps for real).
Error withBackoff(const BackoffPolicy &Policy, const char *Site,
                  const std::function<Error()> &Op,
                  const std::function<void(unsigned)> &SleepMs = nullptr);

} // namespace retry
} // namespace lima

#endif // LIMA_SUPPORT_RETRY_H
