//===- support/CommandLine.h - Small command-line parser --------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative command-line parser used by the example tools and
/// benchmark drivers.  Supports --flag, --option value, --option=value and
/// positional arguments, with generated --help text.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_COMMANDLINE_H
#define LIMA_SUPPORT_COMMANDLINE_H

#include "support/Error.h"
#include <cstdint>
#include <string>
#include <vector>

namespace lima {

class raw_ostream;

/// Declarative command-line parser.
///
/// \code
///   ArgParser Parser("mytool", "does things");
///   Parser.addFlag("verbose", "print more");
///   Parser.addOption("procs", "number of processors", "16");
///   if (auto Err = Parser.parse(Argc, Argv)) { ... }
///   unsigned P = Parser.getUnsigned("procs");
/// \endcode
class ArgParser {
public:
  ArgParser(std::string ToolName, std::string Description);

  /// Registers a boolean flag (--name).
  void addFlag(std::string Name, std::string Help);

  /// Registers a value option (--name value or --name=value) with a
  /// default used when the option is absent.
  void addOption(std::string Name, std::string Help, std::string Default);

  /// Registers a named positional argument (for help text and count
  /// validation).  Positional arguments are required in declaration order.
  void addPositional(std::string Name, std::string Help);

  /// Parses argv.  On --help, prints usage and exits with status 0.
  Error parse(int Argc, const char *const *Argv);

  /// True when the flag was given.
  bool getFlag(std::string_view Name) const;

  /// Raw string value of an option (default if not given).
  const std::string &getString(std::string_view Name) const;

  /// Option parsed as unsigned; aborts if the registered default was used
  /// and is not numeric.  Returns an error for malformed user input at
  /// parse() time, so this accessor cannot fail afterwards.
  uint64_t getUnsigned(std::string_view Name) const;

  /// Option parsed as double.
  double getDouble(std::string_view Name) const;

  /// Positional argument values in order.
  const std::vector<std::string> &getPositionals() const { return Positionals; }

  /// Prints the generated usage text.
  void printHelp(raw_ostream &OS) const;

private:
  struct FlagSpec {
    std::string Name;
    std::string Help;
    bool Value = false;
  };
  struct OptionSpec {
    std::string Name;
    std::string Help;
    std::string Default;
    std::string Value;
  };
  struct PositionalSpec {
    std::string Name;
    std::string Help;
  };

  FlagSpec *findFlag(std::string_view Name);
  OptionSpec *findOption(std::string_view Name);
  const FlagSpec *findFlag(std::string_view Name) const;
  const OptionSpec *findOption(std::string_view Name) const;

  /// Nearest registered argument name within a typo-sized edit distance,
  /// or empty when nothing is close enough to suggest.
  std::string suggestName(std::string_view Name) const;

  std::string ToolName;
  std::string Description;
  std::vector<FlagSpec> Flags;
  std::vector<OptionSpec> Options;
  std::vector<PositionalSpec> PositionalSpecs;
  std::vector<std::string> Positionals;
};

} // namespace lima

#endif // LIMA_SUPPORT_COMMANDLINE_H
