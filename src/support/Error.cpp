//===- support/Error.cpp - Recoverable error handling ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include <cstdarg>
#include <vector>

using namespace lima;

std::string_view lima::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Generic:
    return "generic";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::BadMagic:
    return "bad-magic";
  case ErrorCode::UnsupportedVersion:
    return "unsupported-version";
  case ErrorCode::TruncatedInput:
    return "truncated-input";
  case ErrorCode::MalformedRecord:
    return "malformed-record";
  case ErrorCode::BadNumber:
    return "bad-number";
  case ErrorCode::ValueOutOfRange:
    return "value-out-of-range";
  case ErrorCode::DuplicateDeclaration:
    return "duplicate-declaration";
  case ErrorCode::MissingSection:
    return "missing-section";
  case ErrorCode::StructuralError:
    return "structural-error";
  case ErrorCode::LimitExceeded:
    return "limit-exceeded";
  }
  lima_unreachable("unknown ErrorCode");
}

int lima::exitCodeFor(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Generic:
    return 1;
  case ErrorCode::IoError:
    return 2;
  case ErrorCode::BadMagic:
  case ErrorCode::UnsupportedVersion:
    return 3;
  case ErrorCode::TruncatedInput:
  case ErrorCode::MalformedRecord:
  case ErrorCode::BadNumber:
    return 4;
  case ErrorCode::ValueOutOfRange:
  case ErrorCode::DuplicateDeclaration:
  case ErrorCode::MissingSection:
    return 5;
  case ErrorCode::StructuralError:
    return 6;
  case ErrorCode::LimitExceeded:
    return 7;
  }
  lima_unreachable("unknown ErrorCode");
}

/// Shared printf-style formatting for the error constructors.
static std::string formatMessage(const char *Fmt, va_list Args) {
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  if (Len < 0)
    return "<error formatting failed>";
  std::vector<char> Buf(static_cast<size_t>(Len) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, Args);
  return std::string(Buf.data(), static_cast<size_t>(Len));
}

Error lima::makeStringError(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Msg = formatMessage(Fmt, Args);
  va_end(Args);
  return Error::failure(std::move(Msg));
}

Error lima::makeCodedError(ErrorCode Code, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Msg = formatMessage(Fmt, Args);
  va_end(Args);
  return Error::coded(Code, std::move(Msg));
}

Error lima::makeParseError(ErrorCode Code, size_t Line, size_t Offset,
                           const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Msg = formatMessage(Fmt, Args);
  va_end(Args);
  return Error::coded(Code, std::move(Msg), Line, Offset);
}
