//===- support/Error.cpp - Recoverable error handling ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include <cstdarg>
#include <vector>

using namespace lima;

Error lima::makeStringError(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Len < 0) {
    va_end(ArgsCopy);
    return Error::failure("<error formatting failed>");
  }
  std::vector<char> Buf(static_cast<size_t>(Len) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Error::failure(std::string(Buf.data(), static_cast<size_t>(Len)));
}
