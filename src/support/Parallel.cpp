//===- support/Parallel.cpp - Thread pool and parallel helpers ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"
#include "support/Metrics.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <cassert>

using namespace lima;

namespace {

/// Runs \p Body and records it as one pool-task execution (busy time,
/// queue wait, worker id, pipeline stage) when telemetry is enabled.
/// \p Stage is captured by the caller at submit time so a task finishing
/// late still attributes to the stage that spawned it.
template <typename Fn>
void runRecorded(uint32_t Stage, uint64_t SubmitNs, const Fn &Body) {
  if (!telemetry::enabled()) {
    Body();
    return;
  }
  uint64_t StartNs = telemetry::nowNs();
  Body();
  telemetry::recordTask(Stage, StartNs, telemetry::nowNs() - StartNs,
                        StartNs > SubmitNs ? StartNs - SubmitNs : 0);
}

} // namespace

unsigned lima::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

unsigned lima::resolveThreadCount(unsigned Requested) {
  return Requested ? Requested : hardwareThreads();
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned N = resolveThreadCount(Threads);
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back([this, I] {
      // Worker ids start at 1; 0 always denotes the calling thread, so
      // telemetry can attribute caller-run chunks separately.
      telemetry::setWorkerId(I + 1);
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!Stopping && "submit on a stopping pool");
    Queue.push_back(std::move(Task));
    ++Unfinished;
    LIMA_METRIC_COUNT("lima.pool.tasks_total", 1);
    LIMA_METRIC_GAUGE_SET("lima.pool.queue_depth",
                          static_cast<double>(Queue.size()));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Unfinished == 0; });
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
      LIMA_METRIC_GAUGE_SET("lima.pool.queue_depth",
                            static_cast<double>(Queue.size()));
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Unfinished == 0)
        AllDone.notify_all();
    }
  }
}

ThreadPool &lima::globalThreadPool() {
  static ThreadPool Pool;
  return Pool;
}

void lima::parallelChunks(
    size_t N, unsigned Threads,
    const std::function<void(size_t Chunk, size_t Begin, size_t End)>
        &Body) {
  if (N == 0)
    return;
  size_t Chunks = std::min<size_t>(resolveThreadCount(Threads), N);
  if (Chunks <= 1) {
    if (!telemetry::enabled()) {
      Body(0, 0, N);
      return;
    }
    // Serial path: still recorded as one caller-run task so a serial
    // self-profile carries the same per-worker busy-time accounting.
    runRecorded(telemetry::currentStage(), telemetry::nowNs(),
                [&] { Body(0, 0, N); });
    return;
  }

  // Per-call latch: the caller runs the last chunk itself and waits for
  // the submitted ones, so a busy pool delays but never deadlocks us.
  struct Latch {
    std::mutex Mutex;
    std::condition_variable Done;
    size_t Remaining;
  } Latch{{}, {}, Chunks - 1};

  // Telemetry wrap at submit time: the task captures the submit
  // timestamp (queue-wait = start - submit) and the pipeline stage that
  // enqueued it, and records itself *before* the latch count-down so a
  // collect() racing with the tail of a parallel section never misses a
  // task event the section already waited for.
  bool Recording = telemetry::enabled();
  uint32_t Stage = Recording ? telemetry::currentStage()
                             : telemetry::InvalidName;
  ThreadPool &Pool = globalThreadPool();
  for (size_t Chunk = 0; Chunk + 1 < Chunks; ++Chunk) {
    size_t Begin = N * Chunk / Chunks;
    size_t End = N * (Chunk + 1) / Chunks;
    uint64_t SubmitNs = Recording ? telemetry::nowNs() : 0;
    Pool.submit([&Body, &Latch, Chunk, Begin, End, Recording, Stage,
                 SubmitNs] {
      if (Recording)
        runRecorded(Stage, SubmitNs, [&] { Body(Chunk, Begin, End); });
      else
        Body(Chunk, Begin, End);
      std::lock_guard<std::mutex> Lock(Latch.Mutex);
      if (--Latch.Remaining == 0)
        Latch.Done.notify_one();
    });
  }
  if (!telemetry::enabled())
    Body(Chunks - 1, N * (Chunks - 1) / Chunks, N);
  else
    runRecorded(telemetry::currentStage(), telemetry::nowNs(), [&] {
      Body(Chunks - 1, N * (Chunks - 1) / Chunks, N);
    });
  std::unique_lock<std::mutex> Lock(Latch.Mutex);
  Latch.Done.wait(Lock, [&Latch] { return Latch.Remaining == 0; });
}
