//===- support/Parallel.cpp - Thread pool and parallel helpers ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"
#include <algorithm>
#include <cassert>

using namespace lima;

unsigned lima::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

unsigned lima::resolveThreadCount(unsigned Requested) {
  return Requested ? Requested : hardwareThreads();
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned N = resolveThreadCount(Threads);
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!Stopping && "submit on a stopping pool");
    Queue.push_back(std::move(Task));
    ++Unfinished;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Unfinished == 0; });
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Unfinished == 0)
        AllDone.notify_all();
    }
  }
}

ThreadPool &lima::globalThreadPool() {
  static ThreadPool Pool;
  return Pool;
}

void lima::parallelChunks(
    size_t N, unsigned Threads,
    const std::function<void(size_t Chunk, size_t Begin, size_t End)>
        &Body) {
  if (N == 0)
    return;
  size_t Chunks = std::min<size_t>(resolveThreadCount(Threads), N);
  if (Chunks <= 1) {
    Body(0, 0, N);
    return;
  }

  // Per-call latch: the caller runs the last chunk itself and waits for
  // the submitted ones, so a busy pool delays but never deadlocks us.
  struct Latch {
    std::mutex Mutex;
    std::condition_variable Done;
    size_t Remaining;
  } Latch{{}, {}, Chunks - 1};

  ThreadPool &Pool = globalThreadPool();
  for (size_t Chunk = 0; Chunk + 1 < Chunks; ++Chunk) {
    size_t Begin = N * Chunk / Chunks;
    size_t End = N * (Chunk + 1) / Chunks;
    Pool.submit([&Body, &Latch, Chunk, Begin, End] {
      Body(Chunk, Begin, End);
      std::lock_guard<std::mutex> Lock(Latch.Mutex);
      if (--Latch.Remaining == 0)
        Latch.Done.notify_one();
    });
  }
  Body(Chunks - 1, N * (Chunks - 1) / Chunks, N);
  std::unique_lock<std::mutex> Lock(Latch.Mutex);
  Latch.Done.wait(Lock, [&Latch] { return Latch.Remaining == 0; });
}
