//===- support/MappedFile.h - Read-only mapped file views -------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zero-copy file input for the ingestion fast path: a MappedFile holds
/// an entire file as a read-only byte view, mmap-backed when the
/// platform and the file cooperate (a regular file on POSIX) and backed
/// by an ordinary heap read otherwise (pipes, /dev/stdin, empty files,
/// platforms without mmap).  Parsers consume the view() without ever
/// copying the underlying bytes; anything they keep (names, events) is
/// copied out during parsing, so the parsed result never borrows from
/// the mapping and the MappedFile may be dropped as soon as parsing
/// returns (see DESIGN.md, "Ingestion fast path": lifetime rules).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_MAPPEDFILE_H
#define LIMA_SUPPORT_MAPPEDFILE_H

#include "support/Error.h"
#include <string>
#include <string_view>

namespace lima {

/// A whole file as a contiguous read-only byte range.
///
/// Move-only; the mapping (or the fallback buffer) lives exactly as
/// long as the object.  The view is NOT NUL-terminated.
class MappedFile {
public:
  /// Opens and maps \p Path.  Non-regular files and mmap failures fall
  /// back to reading the contents onto the heap, so open() succeeds for
  /// anything readFile() could read.
  static Expected<MappedFile> open(const std::string &Path);

  MappedFile() = default;
  MappedFile(MappedFile &&Other) noexcept { *this = std::move(Other); }
  MappedFile &operator=(MappedFile &&Other) noexcept;
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  ~MappedFile();

  /// The file contents.  Valid until the MappedFile is destroyed.
  std::string_view view() const {
    return Mapping ? std::string_view(static_cast<const char *>(Mapping),
                                      MappedSize)
                   : std::string_view(Fallback);
  }

  size_t size() const { return view().size(); }

  /// True when the bytes come from an mmap rather than the heap.
  bool isMapped() const { return Mapping != nullptr; }

private:
  void reset();

  void *Mapping = nullptr; ///< mmap base, or null when using Fallback.
  size_t MappedSize = 0;
  std::string Fallback;
};

} // namespace lima

#endif // LIMA_SUPPORT_MAPPEDFILE_H
