//===- support/Checksum.cpp - CRC32 checksums -----------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Checksum.h"
#include <array>
#include <cstring>

using namespace lima;

namespace {

/// Slicing-by-8 lookup tables for the reflected polynomial 0xEDB88320,
/// built once at static-init time.  Table 0 is the classic
/// byte-at-a-time table; table K folds a byte that sits K positions
/// ahead, letting the hot loop consume 8 input bytes per iteration
/// with 8 independent loads instead of a serial byte chain.  The
/// binary reader checksums every payload block, so this sits on the
/// trace-ingestion critical path.
std::array<std::array<uint32_t, 256>, 8> makeTables() {
  std::array<std::array<uint32_t, 256>, 8> Tables{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Tables[0][I] = C;
  }
  for (uint32_t I = 0; I != 256; ++I)
    for (size_t T = 1; T != 8; ++T)
      Tables[T][I] =
          Tables[0][Tables[T - 1][I] & 0xFFu] ^ (Tables[T - 1][I] >> 8);
  return Tables;
}

const std::array<std::array<uint32_t, 256>, 8> &tables() {
  static const std::array<std::array<uint32_t, 256>, 8> Tables = makeTables();
  return Tables;
}

} // namespace

uint32_t lima::crc32Update(uint32_t Crc, std::string_view Data) {
  const auto &T = tables();
  uint32_t C = Crc ^ 0xFFFFFFFFu;
  const char *P = Data.data();
  size_t N = Data.size();
  // 8 bytes per iteration: XOR the running CRC into the first word,
  // then fold both words through the position-specific tables.  Loads
  // go through memcpy, so alignment is the compiler's problem.
  while (N >= 8) {
    uint32_t Lo, Hi;
    std::memcpy(&Lo, P, 4);
    std::memcpy(&Hi, P + 4, 4);
    Lo ^= C;
    C = T[7][Lo & 0xFFu] ^ T[6][(Lo >> 8) & 0xFFu] ^
        T[5][(Lo >> 16) & 0xFFu] ^ T[4][Lo >> 24] ^ T[3][Hi & 0xFFu] ^
        T[2][(Hi >> 8) & 0xFFu] ^ T[1][(Hi >> 16) & 0xFFu] ^ T[0][Hi >> 24];
    P += 8;
    N -= 8;
  }
  for (; N != 0; ++P, --N)
    C = T[0][(C ^ static_cast<uint8_t>(*P)) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

uint32_t lima::crc32(std::string_view Data) {
  return crc32Update(0, Data);
}
