//===- support/Checksum.cpp - CRC32 checksums -----------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Two implementations of the same reflected-0xEDB88320 CRC:
//
//  - Slicing-by-8 tables (portable): 8 bytes per iteration through 8
//    position-specific lookup tables.
//  - PCLMUL folding (x86 with pclmulqdq + sse4.1, runtime-detected):
//    four 128-bit lanes folded 64 bytes at a time with carry-less
//    multiplies, then reduced 512->128->64->32 bits via Barrett
//    reduction.  This is the standard Intel folding scheme (the one
//    zlib and chromium ship); the constants below are the precomputed
//    x^N mod P(x) factors for the IEEE polynomial.
//
// Note on the ISA menu: SSE4.2's dedicated `crc32` instruction is NOT
// usable here — it hardwires the Castagnoli polynomial (CRC-32C,
// 0x1EDC6F41), while every LIMB v2 file in the wild carries checksums
// of the IEEE polynomial this module has always used.  PCLMUL folding
// is polynomial-agnostic, so it accelerates the existing format
// bit-compatibly.
//
// Dispatch: one CPUID probe cached on first use; buffers shorter than
// 64 bytes take the table path regardless (folding needs a full block
// and the fixed reduction tail would dominate).  Both paths are
// exposed (crc32UpdateSoftware/Hardware) so tests pin known answers on each.
//
//===----------------------------------------------------------------------===//

#include "support/Checksum.h"
#include <array>
#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define LIMA_CRC32_PCLMUL 1
#include <cpuid.h>
#include <immintrin.h>
#else
#define LIMA_CRC32_PCLMUL 0
#endif

using namespace lima;

namespace {

/// Slicing-by-8 lookup tables for the reflected polynomial 0xEDB88320,
/// built once at static-init time.  Table 0 is the classic
/// byte-at-a-time table; table K folds a byte that sits K positions
/// ahead, letting the hot loop consume 8 input bytes per iteration
/// with 8 independent loads instead of a serial byte chain.  The
/// binary reader checksums every payload block, so this sits on the
/// trace-ingestion critical path.
std::array<std::array<uint32_t, 256>, 8> makeTables() {
  std::array<std::array<uint32_t, 256>, 8> Tables{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Tables[0][I] = C;
  }
  for (uint32_t I = 0; I != 256; ++I)
    for (size_t T = 1; T != 8; ++T)
      Tables[T][I] =
          Tables[0][Tables[T - 1][I] & 0xFFu] ^ (Tables[T - 1][I] >> 8);
  return Tables;
}

const std::array<std::array<uint32_t, 256>, 8> &tables() {
  static const std::array<std::array<uint32_t, 256>, 8> Tables = makeTables();
  return Tables;
}

/// The table path over the raw (pre/post-conditioning already applied)
/// CRC state.
uint32_t softwareState(uint32_t C, const char *P, size_t N) {
  const auto &T = tables();
  // 8 bytes per iteration: XOR the running CRC into the first word,
  // then fold both words through the position-specific tables.  Loads
  // go through memcpy, so alignment is the compiler's problem.
  while (N >= 8) {
    uint32_t Lo, Hi;
    std::memcpy(&Lo, P, 4);
    std::memcpy(&Hi, P + 4, 4);
    Lo ^= C;
    C = T[7][Lo & 0xFFu] ^ T[6][(Lo >> 8) & 0xFFu] ^
        T[5][(Lo >> 16) & 0xFFu] ^ T[4][Lo >> 24] ^ T[3][Hi & 0xFFu] ^
        T[2][(Hi >> 8) & 0xFFu] ^ T[1][(Hi >> 16) & 0xFFu] ^ T[0][Hi >> 24];
    P += 8;
    N -= 8;
  }
  for (; N != 0; ++P, --N)
    C = T[0][(C ^ static_cast<uint8_t>(*P)) & 0xFFu] ^ (C >> 8);
  return C;
}

#if LIMA_CRC32_PCLMUL

/// Folding constants for the reflected IEEE polynomial: x^(512+32),
/// x^(512-32), x^(128+32), x^(128-32), x^64 mod P, and the Barrett
/// pair (P', mu).  Standard values from Intel's "Fast CRC Computation
/// Using PCLMULQDQ" white paper.
alignas(16) const uint64_t K1K2[2] = {0x0154442bd4, 0x01c6e41596};
alignas(16) const uint64_t K3K4[2] = {0x01751997d0, 0x00ccaa009e};
alignas(16) const uint64_t K5K0[2] = {0x0163cd6124, 0x0000000000};
alignas(16) const uint64_t PolyMu[2] = {0x01db710641, 0x01f7011641};

/// Folds \p N bytes (N >= 64 and a multiple of 16) into the raw CRC
/// state with carry-less multiplies.  Compiled for pclmul+sse4.1 and
/// only ever called behind the CPUID probe.
__attribute__((target("pclmul,sse4.1"))) uint32_t
pclmulState(uint32_t C, const char *P, size_t N) {
  const __m128i *Buf = reinterpret_cast<const __m128i *>(P);

  // Load the first 64 bytes into four lanes, CRC into lane 0.
  __m128i X1 = _mm_xor_si128(_mm_loadu_si128(Buf + 0),
                             _mm_cvtsi32_si128(static_cast<int>(C)));
  __m128i X2 = _mm_loadu_si128(Buf + 1);
  __m128i X3 = _mm_loadu_si128(Buf + 2);
  __m128i X4 = _mm_loadu_si128(Buf + 3);
  Buf += 4;
  N -= 64;

  // Fold four lanes in parallel, 64 bytes per iteration.
  __m128i K = _mm_load_si128(reinterpret_cast<const __m128i *>(K1K2));
  while (N >= 64) {
    __m128i L1 = _mm_clmulepi64_si128(X1, K, 0x00);
    __m128i L2 = _mm_clmulepi64_si128(X2, K, 0x00);
    __m128i L3 = _mm_clmulepi64_si128(X3, K, 0x00);
    __m128i L4 = _mm_clmulepi64_si128(X4, K, 0x00);
    X1 = _mm_clmulepi64_si128(X1, K, 0x11);
    X2 = _mm_clmulepi64_si128(X2, K, 0x11);
    X3 = _mm_clmulepi64_si128(X3, K, 0x11);
    X4 = _mm_clmulepi64_si128(X4, K, 0x11);
    X1 = _mm_xor_si128(_mm_xor_si128(X1, L1), _mm_loadu_si128(Buf + 0));
    X2 = _mm_xor_si128(_mm_xor_si128(X2, L2), _mm_loadu_si128(Buf + 1));
    X3 = _mm_xor_si128(_mm_xor_si128(X3, L3), _mm_loadu_si128(Buf + 2));
    X4 = _mm_xor_si128(_mm_xor_si128(X4, L4), _mm_loadu_si128(Buf + 3));
    Buf += 4;
    N -= 64;
  }

  // Fold the four lanes down to one.
  K = _mm_load_si128(reinterpret_cast<const __m128i *>(K3K4));
  __m128i L = _mm_clmulepi64_si128(X1, K, 0x00);
  X1 = _mm_clmulepi64_si128(X1, K, 0x11);
  X1 = _mm_xor_si128(_mm_xor_si128(X1, L), X2);
  L = _mm_clmulepi64_si128(X1, K, 0x00);
  X1 = _mm_clmulepi64_si128(X1, K, 0x11);
  X1 = _mm_xor_si128(_mm_xor_si128(X1, L), X3);
  L = _mm_clmulepi64_si128(X1, K, 0x00);
  X1 = _mm_clmulepi64_si128(X1, K, 0x11);
  X1 = _mm_xor_si128(_mm_xor_si128(X1, L), X4);

  // Single-lane folds over any remaining 16-byte chunks.
  while (N >= 16) {
    L = _mm_clmulepi64_si128(X1, K, 0x00);
    X1 = _mm_clmulepi64_si128(X1, K, 0x11);
    X1 = _mm_xor_si128(_mm_xor_si128(X1, L), _mm_loadu_si128(Buf));
    ++Buf;
    N -= 16;
  }

  // Reduce 128 -> 64 bits.
  const __m128i Mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  __m128i R = _mm_clmulepi64_si128(X1, K, 0x10);
  X1 = _mm_xor_si128(_mm_srli_si128(X1, 8), R);
  K = _mm_loadl_epi64(reinterpret_cast<const __m128i *>(K5K0));
  R = _mm_srli_si128(X1, 4);
  X1 = _mm_and_si128(X1, Mask32);
  X1 = _mm_clmulepi64_si128(X1, K, 0x00);
  X1 = _mm_xor_si128(X1, R);

  // Barrett reduction 64 -> 32 bits.
  K = _mm_load_si128(reinterpret_cast<const __m128i *>(PolyMu));
  R = _mm_and_si128(X1, Mask32);
  R = _mm_clmulepi64_si128(R, K, 0x10);
  R = _mm_and_si128(R, Mask32);
  R = _mm_clmulepi64_si128(R, K, 0x00);
  X1 = _mm_xor_si128(X1, R);
  return static_cast<uint32_t>(_mm_extract_epi32(X1, 1));
}

#endif // LIMA_CRC32_PCLMUL

/// Hardware path over the raw state: fold the largest 16-byte-aligned
/// prefix (>= 64 bytes), table-walk the tail.
uint32_t hardwareState(uint32_t C, const char *P, size_t N) {
#if LIMA_CRC32_PCLMUL
  size_t Body = N & ~static_cast<size_t>(15);
  if (Body >= 64) {
    C = pclmulState(C, P, Body);
    P += Body;
    N -= Body;
  }
#endif
  return softwareState(C, P, N);
}

} // namespace

bool lima::crc32HardwareAvailable() {
#if LIMA_CRC32_PCLMUL
  static const bool Available = [] {
    unsigned Eax = 0, Ebx = 0, Ecx = 0, Edx = 0;
    if (!__get_cpuid(1, &Eax, &Ebx, &Ecx, &Edx))
      return false;
    const unsigned NeedEcx = (1u << 1) | (1u << 19); // PCLMULQDQ | SSE4.1
    return (Ecx & NeedEcx) == NeedEcx;
  }();
  return Available;
#else
  return false;
#endif
}

uint32_t lima::crc32UpdateSoftware(uint32_t Crc, std::string_view Data) {
  return softwareState(Crc ^ 0xFFFFFFFFu, Data.data(), Data.size()) ^
         0xFFFFFFFFu;
}

uint32_t lima::crc32UpdateHardware(uint32_t Crc, std::string_view Data) {
  if (!crc32HardwareAvailable())
    return crc32UpdateSoftware(Crc, Data);
  return hardwareState(Crc ^ 0xFFFFFFFFu, Data.data(), Data.size()) ^
         0xFFFFFFFFu;
}

uint32_t lima::crc32Update(uint32_t Crc, std::string_view Data) {
  uint32_t C = Crc ^ 0xFFFFFFFFu;
  if (Data.size() >= 64 && crc32HardwareAvailable())
    C = hardwareState(C, Data.data(), Data.size());
  else
    C = softwareState(C, Data.data(), Data.size());
  return C ^ 0xFFFFFFFFu;
}

uint32_t lima::crc32(std::string_view Data) {
  return crc32Update(0, Data);
}
