//===- support/Error.h - Recoverable error handling -------------*- C++ -*-===//
//
// Part of LIMA, a reproduction of "Load Imbalance in Parallel Programs"
// (Calzarossa, Massari, Tessera; 2003).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight checked-error facility modeled after llvm::Error and
/// llvm::Expected.  Library code never throws; recoverable failures travel
/// as Error / Expected<T> return values.  Every Error must be checked (or
/// moved from) before destruction; violating that aborts in builds with
/// assertions enabled, which makes accidentally dropped errors easy to find.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_ERROR_H
#define LIMA_SUPPORT_ERROR_H

#include "support/Compiler.h"
#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <utility>

namespace lima {

/// A recoverable error carrying a human-readable message.
///
/// Success values are cheap (empty message).  The checked-flag discipline
/// mirrors llvm::Error: an Error that is destroyed without having been
/// tested via operator bool, consumed, or moved from trips an assertion.
class Error {
public:
  /// Creates a success value.
  static Error success() { return Error(); }

  /// Creates a failure value with message \p Msg.
  static Error failure(std::string Msg) {
    Error E;
    E.Msg = std::move(Msg);
    E.Failed = true;
    return E;
  }

  Error(Error &&Other) noexcept
      : Msg(std::move(Other.Msg)), Failed(Other.Failed),
        Checked(Other.Checked) {
    Other.markConsumed();
  }

  Error &operator=(Error &&Other) noexcept {
    if (this == &Other)
      return *this;
    assertChecked();
    Msg = std::move(Other.Msg);
    Failed = Other.Failed;
    Checked = Other.Checked;
    Other.markConsumed();
    return *this;
  }

  Error(const Error &) = delete;
  Error &operator=(const Error &) = delete;

  ~Error() { assertChecked(); }

  /// Tests for failure: true means the Error holds a failure value.
  /// Testing marks the error checked; a failure value must still be
  /// consumed (via message()/consume() or by moving it onward).
  explicit operator bool() {
    Checked = !Failed;
    return Failed;
  }

  /// Returns the failure message and marks the error consumed.
  std::string message() {
    assert(Failed && "message() called on a success value");
    markConsumed();
    return std::move(Msg);
  }

  /// Reads the failure message without consuming the error.
  const std::string &peekMessage() const {
    assert(Failed && "peekMessage() called on a success value");
    return Msg;
  }

  /// Explicitly discards the error (success or failure).
  void consume() { markConsumed(); }

private:
  Error() = default;

  void markConsumed() {
    Failed = false;
    Checked = true;
  }

  void assertChecked() const {
    assert(Checked && "Error must be checked before it is destroyed");
    (void)Checked;
  }

  std::string Msg;
  bool Failed = false;
  bool Checked = false;
};

/// Builds a failure Error from a printf-style format string.
Error makeStringError(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Either a value of type \p T or an Error, analogous to llvm::Expected.
///
/// Success state is queried with operator bool; the value is accessed via
/// get()/operator*; on failure the error is extracted with takeError().
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : HasValue(true), Storage(std::move(Value)) {}

  /// Constructs a failure value from \p E, which must hold a failure.
  Expected(Error E) : HasValue(false) {
    assert(static_cast<bool>(E) && "constructing Expected from success Error");
    Err = E.message();
  }

  Expected(Expected &&Other) noexcept
      : HasValue(Other.HasValue), Checked(Other.Checked) {
    if (HasValue)
      new (&Storage) T(std::move(Other.Storage));
    else
      Err = std::move(Other.Err);
    Other.Checked = true;
  }

  Expected(const Expected &) = delete;
  Expected &operator=(const Expected &) = delete;
  Expected &operator=(Expected &&) = delete;

  ~Expected() {
    assert(Checked && "Expected must be checked before it is destroyed");
    if (HasValue)
      Storage.~T();
  }

  /// True when a value is present.
  explicit operator bool() {
    Checked = HasValue;
    return HasValue;
  }

  /// Accesses the contained value.  Only valid in success state.
  T &get() {
    assert(HasValue && "get() called on an error value");
    return Storage;
  }
  const T &get() const {
    assert(HasValue && "get() called on an error value");
    return Storage;
  }
  T &operator*() { return get(); }
  T *operator->() { return &get(); }

  /// Extracts the Error.  Returns a success Error when a value is present,
  /// enabling the `if (auto Err = X.takeError()) return Err;` idiom.
  Error takeError() {
    Checked = true;
    if (HasValue)
      return Error::success();
    return Error::failure(std::move(Err));
  }

  /// Moves the contained value into \p Out; on failure returns the Error.
  template <typename U> Error moveInto(U &Out) {
    if (!HasValue)
      return takeError();
    Checked = true;
    Out = std::move(Storage);
    return Error::success();
  }

private:
  bool HasValue;
  bool Checked = false;
  union {
    T Storage;
  };
  std::string Err;
};

/// Asserts that \p E is a success value and discards it.
inline void cantFail(Error E) {
  if (E)
    lima_unreachable("cantFail called on a failure value");
}

/// Asserts that \p ValOrErr holds a value and unwraps it.
template <typename T> T cantFail(Expected<T> ValOrErr) {
  if (!ValOrErr)
    lima_unreachable("cantFail called on a failure value");
  return std::move(ValOrErr.get());
}

/// Tool-code helper: on failure prints the message to stderr and exits.
///
/// Declare one per tool (optionally with a banner) and wrap fallible calls:
/// \code
///   ExitOnError ExitOnErr("mytool: ");
///   auto Cube = ExitOnErr(readCube(Path));
/// \endcode
class ExitOnError {
public:
  ExitOnError() = default;
  explicit ExitOnError(std::string Banner) : Banner(std::move(Banner)) {}

  void operator()(Error E) const {
    if (!E)
      return;
    std::fprintf(stderr, "%s%s\n", Banner.c_str(), E.message().c_str());
    std::exit(1);
  }

  template <typename T> T operator()(Expected<T> ValOrErr) const {
    (*this)(ValOrErr.takeError());
    return std::move(ValOrErr.get());
  }

private:
  std::string Banner;
};

} // namespace lima

#endif // LIMA_SUPPORT_ERROR_H
