//===- support/Error.h - Recoverable error handling -------------*- C++ -*-===//
//
// Part of LIMA, a reproduction of "Load Imbalance in Parallel Programs"
// (Calzarossa, Massari, Tessera; 2003).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight checked-error facility modeled after llvm::Error and
/// llvm::Expected.  Library code never throws; recoverable failures travel
/// as Error / Expected<T> return values.  Every Error must be checked (or
/// moved from) before destruction; violating that aborts in builds with
/// assertions enabled, which makes accidentally dropped errors easy to find.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_ERROR_H
#define LIMA_SUPPORT_ERROR_H

#include "support/Compiler.h"
#include <cassert>
#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

namespace lima {

/// The error taxonomy shared by every byte-parsing entry point (trace
/// text, trace binary, cube CSV, raw CSV) and the trace reduction.
/// Codes are stable API: lima_analyze maps them to distinct exit
/// statuses and the parse report buckets dropped records by code.
enum class ErrorCode : uint8_t {
  Generic = 0,          ///< Uncategorized failure (plain makeStringError).
  IoError,              ///< File could not be read or written.
  BadMagic,             ///< Input is not in the expected format at all.
  UnsupportedVersion,   ///< Recognized format, unknown version.
  TruncatedInput,       ///< Input ends mid-record; framing is lost.
  MalformedRecord,      ///< A record violates the format grammar.
  BadNumber,            ///< A numeric field failed to parse.
  ValueOutOfRange,      ///< A well-formed value outside its legal range.
  DuplicateDeclaration, ///< A header declaration repeated illegally.
  MissingSection,       ///< A required header/section never appeared.
  StructuralError,      ///< Event stream structurally impossible.
  LimitExceeded,        ///< A ParseLimits resource bound was hit.
};

/// Number of distinct ErrorCode values (for per-code count arrays).
inline constexpr unsigned NumErrorCodes = 12;

/// Stable kebab-case name of \p Code ("bad-magic", "limit-exceeded", ...).
std::string_view errorCodeName(ErrorCode Code);

/// Process exit status a tool should use for \p Code.  Distinct codes map
/// to distinct statuses so scripts can react without scraping stderr:
/// 1 generic, 2 I/O, 3 format (magic/version), 4 corrupt record
/// (truncated/malformed/bad number), 5 semantic (range/duplicate/missing),
/// 6 structural, 7 resource limit.
int exitCodeFor(ErrorCode Code);

/// Sentinel for "byte offset unknown / not applicable".
inline constexpr size_t NoByteOffset = static_cast<size_t>(-1);

/// A structured parse failure: the taxonomy code, where in the input it
/// happened (1-based line for text formats, byte offset for binary ones;
/// 0 / NoByteOffset when unknown) and the human-readable message (which
/// already embeds the location in rendered form).
struct ParseError {
  ErrorCode Code = ErrorCode::Generic;
  size_t Line = 0;
  size_t Offset = NoByteOffset;
  std::string Msg;
};

/// A recoverable error carrying a human-readable message.
///
/// Success values are cheap (empty message).  The checked-flag discipline
/// mirrors llvm::Error: an Error that is destroyed without having been
/// tested via operator bool, consumed, or moved from trips an assertion.
/// Failures additionally carry the ErrorCode taxonomy and an optional
/// input location, preserved through Expected round-trips.
class Error {
public:
  /// Creates a success value.
  static Error success() { return Error(); }

  /// Creates a failure value with message \p Msg (code Generic).
  static Error failure(std::string Msg) {
    return coded(ErrorCode::Generic, std::move(Msg));
  }

  /// Creates a failure value with an explicit taxonomy code and location.
  static Error coded(ErrorCode Code, std::string Msg, size_t Line = 0,
                     size_t Offset = NoByteOffset) {
    Error E;
    E.Msg = std::move(Msg);
    E.Code = Code;
    E.Line = Line;
    E.Offset = Offset;
    E.Failed = true;
    return E;
  }

  /// Creates a failure value from a structured ParseError.
  static Error fromParse(ParseError PE) {
    return coded(PE.Code, std::move(PE.Msg), PE.Line, PE.Offset);
  }

  Error(Error &&Other) noexcept
      : Msg(std::move(Other.Msg)), Code(Other.Code), Line(Other.Line),
        Offset(Other.Offset), Failed(Other.Failed), Checked(Other.Checked) {
    Other.markConsumed();
  }

  Error &operator=(Error &&Other) noexcept {
    if (this == &Other)
      return *this;
    assertChecked();
    Msg = std::move(Other.Msg);
    Code = Other.Code;
    Line = Other.Line;
    Offset = Other.Offset;
    Failed = Other.Failed;
    Checked = Other.Checked;
    Other.markConsumed();
    return *this;
  }

  Error(const Error &) = delete;
  Error &operator=(const Error &) = delete;

  ~Error() { assertChecked(); }

  /// Tests for failure: true means the Error holds a failure value.
  /// Testing marks the error checked; a failure value must still be
  /// consumed (via message()/consume() or by moving it onward).
  explicit operator bool() {
    Checked = !Failed;
    return Failed;
  }

  /// Returns the failure message and marks the error consumed.
  std::string message() {
    assert(Failed && "message() called on a success value");
    markConsumed();
    return std::move(Msg);
  }

  /// Reads the failure message without consuming the error.
  const std::string &peekMessage() const {
    assert(Failed && "peekMessage() called on a success value");
    return Msg;
  }

  /// Taxonomy code of the failure.  Non-consuming (like peekMessage);
  /// Generic for success values and uncategorized failures.
  ErrorCode code() const { return Code; }

  /// 1-based input line of the failure; 0 when unknown.  Non-consuming.
  size_t line() const { return Line; }

  /// Byte offset of the failure; NoByteOffset when unknown. Non-consuming.
  size_t offset() const { return Offset; }

  /// Extracts the structured form and marks the error consumed.
  ParseError toParseError() {
    assert(Failed && "toParseError() called on a success value");
    ParseError PE{Code, Line, Offset, std::move(Msg)};
    markConsumed();
    return PE;
  }

  /// Explicitly discards the error (success or failure).
  void consume() { markConsumed(); }

private:
  Error() = default;

  void markConsumed() {
    Failed = false;
    Checked = true;
  }

  void assertChecked() const {
    assert(Checked && "Error must be checked before it is destroyed");
    (void)Checked;
  }

  std::string Msg;
  ErrorCode Code = ErrorCode::Generic;
  size_t Line = 0;
  size_t Offset = NoByteOffset;
  bool Failed = false;
  bool Checked = false;
};

/// Builds a failure Error from a printf-style format string.
Error makeStringError(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Builds a failure Error with taxonomy code \p Code.
Error makeCodedError(ErrorCode Code, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Builds a failure Error with taxonomy code and input location (pass
/// Line 0 / NoByteOffset for whichever half does not apply).
Error makeParseError(ErrorCode Code, size_t Line, size_t Offset,
                     const char *Fmt, ...)
    __attribute__((format(printf, 4, 5)));

/// Either a value of type \p T or an Error, analogous to llvm::Expected.
///
/// Success state is queried with operator bool; the value is accessed via
/// get()/operator*; on failure the error is extracted with takeError().
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : HasValue(true), Storage(std::move(Value)) {}

  /// Constructs a failure value from \p E, which must hold a failure.
  Expected(Error E) : HasValue(false) {
    assert(static_cast<bool>(E) && "constructing Expected from success Error");
    Err = E.toParseError();
  }

  Expected(Expected &&Other) noexcept
      : HasValue(Other.HasValue), Checked(Other.Checked) {
    if (HasValue)
      new (&Storage) T(std::move(Other.Storage));
    else
      Err = std::move(Other.Err);
    Other.Checked = true;
  }

  Expected(const Expected &) = delete;
  Expected &operator=(const Expected &) = delete;
  Expected &operator=(Expected &&) = delete;

  ~Expected() {
    assert(Checked && "Expected must be checked before it is destroyed");
    if (HasValue)
      Storage.~T();
  }

  /// True when a value is present.
  explicit operator bool() {
    Checked = HasValue;
    return HasValue;
  }

  /// Accesses the contained value.  Only valid in success state.
  T &get() {
    assert(HasValue && "get() called on an error value");
    return Storage;
  }
  const T &get() const {
    assert(HasValue && "get() called on an error value");
    return Storage;
  }
  T &operator*() { return get(); }
  T *operator->() { return &get(); }

  /// Extracts the Error.  Returns a success Error when a value is present,
  /// enabling the `if (auto Err = X.takeError()) return Err;` idiom.
  Error takeError() {
    Checked = true;
    if (HasValue)
      return Error::success();
    return Error::fromParse(std::move(Err));
  }

  /// Moves the contained value into \p Out; on failure returns the Error.
  template <typename U> Error moveInto(U &Out) {
    if (!HasValue)
      return takeError();
    Checked = true;
    Out = std::move(Storage);
    return Error::success();
  }

private:
  bool HasValue;
  bool Checked = false;
  union {
    T Storage;
  };
  ParseError Err;
};

/// Asserts that \p E is a success value and discards it.
inline void cantFail(Error E) {
  if (E)
    lima_unreachable("cantFail called on a failure value");
}

/// Asserts that \p ValOrErr holds a value and unwraps it.
template <typename T> T cantFail(Expected<T> ValOrErr) {
  if (!ValOrErr)
    lima_unreachable("cantFail called on a failure value");
  return std::move(ValOrErr.get());
}

/// Tool-code helper: on failure prints the message to stderr and exits.
///
/// Declare one per tool (optionally with a banner) and wrap fallible calls:
/// \code
///   ExitOnError ExitOnErr("mytool: ");
///   auto Cube = ExitOnErr(readCube(Path));
/// \endcode
class ExitOnError {
public:
  ExitOnError() = default;
  explicit ExitOnError(std::string Banner) : Banner(std::move(Banner)) {}

  void operator()(Error E) const {
    if (!E)
      return;
    int Status = exitCodeFor(E.code());
    std::fprintf(stderr, "%s%s\n", Banner.c_str(), E.message().c_str());
    std::exit(Status);
  }

  template <typename T> T operator()(Expected<T> ValOrErr) const {
    (*this)(ValOrErr.takeError());
    return std::move(ValOrErr.get());
  }

private:
  std::string Banner;
};

} // namespace lima

#endif // LIMA_SUPPORT_ERROR_H
