//===- support/Format.h - Text formatting helpers ---------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Number and column formatting helpers shared by the table renderers and
/// report writers.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_FORMAT_H
#define LIMA_SUPPORT_FORMAT_H

#include <string>
#include <string_view>

namespace lima {

/// Formats \p Value with \p Precision digits after the decimal point
/// (fixed notation, e.g. formatFixed(0.12870, 5) == "0.12870").
std::string formatFixed(double Value, unsigned Precision);

/// Formats \p Value in the shortest round-trippable general notation.
std::string formatGeneral(double Value);

/// Formats \p Value as a percentage with \p Precision decimals
/// ("27.1%" for formatPercent(0.2713, 1)).
std::string formatPercent(double Fraction, unsigned Precision = 1);

/// Pads \p Str on the right with spaces to \p Width columns.  Strings
/// already wider than \p Width are returned unchanged.
std::string leftJustify(std::string_view Str, size_t Width);

/// Pads \p Str on the left with spaces to \p Width columns.
std::string rightJustify(std::string_view Str, size_t Width);

/// Centers \p Str within \p Width columns.
std::string centerJustify(std::string_view Str, size_t Width);

} // namespace lima

#endif // LIMA_SUPPORT_FORMAT_H
