//===- support/raw_ostream.h - Lightweight output streams -------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight output-stream facility modeled after llvm::raw_ostream.
/// Library code writes through raw_ostream instead of <iostream> (which is
/// forbidden by the coding standards because of its static constructors).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_RAW_OSTREAM_H
#define LIMA_SUPPORT_RAW_OSTREAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace lima {

/// Abstract base class for buffered character output.
///
/// Subclasses implement writeImpl; the stream exposes operator<< for the
/// common scalar and string types used throughout LIMA.
class raw_ostream {
public:
  raw_ostream() = default;
  raw_ostream(const raw_ostream &) = delete;
  raw_ostream &operator=(const raw_ostream &) = delete;
  virtual ~raw_ostream();

  raw_ostream &operator<<(char C) {
    writeImpl(&C, 1);
    return *this;
  }
  raw_ostream &operator<<(std::string_view Str) {
    writeImpl(Str.data(), Str.size());
    return *this;
  }
  raw_ostream &operator<<(const char *Str) {
    return *this << std::string_view(Str);
  }
  raw_ostream &operator<<(const std::string &Str) {
    return *this << std::string_view(Str);
  }
  raw_ostream &operator<<(long long N);
  raw_ostream &operator<<(unsigned long long N);
  raw_ostream &operator<<(int N) { return *this << static_cast<long long>(N); }
  raw_ostream &operator<<(unsigned N) {
    return *this << static_cast<unsigned long long>(N);
  }
  raw_ostream &operator<<(long N) {
    return *this << static_cast<long long>(N);
  }
  raw_ostream &operator<<(unsigned long N) {
    return *this << static_cast<unsigned long long>(N);
  }
  raw_ostream &operator<<(double D);
  raw_ostream &operator<<(bool B) { return *this << (B ? "true" : "false"); }

  /// Writes \p Count copies of \p C.
  raw_ostream &indent(unsigned Count, char C = ' ');

  /// Flushes buffered output (no-op for unbuffered sinks).
  virtual void flush() {}

private:
  virtual void writeImpl(const char *Ptr, size_t Size) = 0;
};

/// A stream that writes to a stdio FILE handle (unowned).
class raw_fd_ostream final : public raw_ostream {
public:
  /// Wraps \p File, which must outlive the stream.  Does not take ownership.
  explicit raw_fd_ostream(std::FILE *File) : File(File) {}

  void flush() override;

private:
  void writeImpl(const char *Ptr, size_t Size) override;

  std::FILE *File;
};

/// A stream that appends to a std::string owned by the caller.
class raw_string_ostream final : public raw_ostream {
public:
  explicit raw_string_ostream(std::string &Buffer) : Buffer(Buffer) {}

  /// Returns the accumulated contents.
  const std::string &str() const { return Buffer; }

private:
  void writeImpl(const char *Ptr, size_t Size) override {
    Buffer.append(Ptr, Size);
  }

  std::string &Buffer;
};

/// Returns a stream bound to standard output.
raw_ostream &outs();

/// Returns a stream bound to standard error.
raw_ostream &errs();

} // namespace lima

#endif // LIMA_SUPPORT_RAW_OSTREAM_H
