//===- support/TraceEventExport.cpp - Telemetry exporters -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/TraceEventExport.h"
#include "support/Format.h"
#include "support/Version.h"
#include <algorithm>
#include <cstdio>
#include <utility>

using namespace lima;
using namespace lima::telemetry;

namespace {

/// Escapes a string for a JSON string literal (names are ASCII literals,
/// but exporters must never emit malformed output).
std::string escapeJson(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string quoted(std::string_view Str) {
  return '"' + escapeJson(Str) + '"';
}

/// Microseconds with sub-microsecond precision, the unit of the Chrome
/// trace-event "ts" and "dur" fields.
std::string toUs(uint64_t Ns) {
  return formatFixed(static_cast<double>(Ns) / 1000.0, 3);
}

std::string workerLabel(unsigned Worker) {
  return Worker == 0 ? std::string("main") : "worker-" + std::to_string(Worker);
}

double idleMs(const StageStats &Stage, unsigned Worker) {
  double Busy = Stage.WorkerComputeMs[Worker] + Stage.WorkerQueueWaitMs[Worker];
  return Busy < Stage.WallMs ? Stage.WallMs - Busy : 0.0;
}

} // namespace

TextTable telemetry::makeSpanSummaryTable(const Snapshot &S) {
  TextTable Table({"span", "count", "total ms", "mean ms", "min ms",
                   "max ms"});
  Table.setTitle("telemetry spans (wall time per instrumented site)");
  Table.setAlign(0, Align::Left);
  for (const SpanStats &Span : S.Spans)
    Table.addRow({Span.Name, std::to_string(Span.Count),
                  formatFixed(Span.TotalMs, 3), formatFixed(Span.MeanMs, 3),
                  formatFixed(Span.MinMs, 3), formatFixed(Span.MaxMs, 3)});
  return Table;
}

TextTable telemetry::makeStageBreakdownTable(const Snapshot &S) {
  TextTable Table({"stage", "worker", "compute ms", "queue-wait ms",
                   "idle ms", "busy %"});
  Table.setTitle("per-stage, per-worker breakdown (the self-profile cube)");
  Table.setAlign(0, Align::Left);
  Table.setAlign(1, Align::Left);
  for (const StageStats &Stage : S.Stages) {
    for (unsigned W = 0; W != S.NumWorkers; ++W) {
      double Compute = Stage.WorkerComputeMs[W];
      double Wait = Stage.WorkerQueueWaitMs[W];
      double BusyPct =
          Stage.WallMs > 0.0 ? 100.0 * Compute / Stage.WallMs : 0.0;
      Table.addRow({W == 0 ? Stage.Name +
                                 " (" + formatFixed(Stage.WallMs, 3) + " ms)"
                           : std::string(),
                    workerLabel(W), formatFixed(Compute, 3),
                    formatFixed(Wait, 3), formatFixed(idleMs(Stage, W), 3),
                    formatFixed(BusyPct, 1)});
    }
    Table.addSeparator();
  }
  return Table;
}

TextTable telemetry::makeCounterTable(const Snapshot &S) {
  TextTable Table({"counter", "value"});
  Table.setTitle("telemetry counters");
  Table.setAlign(0, Align::Left);
  for (const CounterValue &C : S.Counters)
    Table.addRow({C.Name, std::to_string(C.Value)});
  return Table;
}

std::string telemetry::exportChromeTrace(const Snapshot &S) {
  std::string Out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  std::vector<std::string> Lines;

  // Thread-name metadata so Perfetto labels the worker tracks.
  for (unsigned W = 0; W != S.NumWorkers; ++W)
    Lines.push_back("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                    "\"tid\": " +
                    std::to_string(W) + ", \"args\": {\"name\": " +
                    quoted(workerLabel(W)) + "}}");

  // Complete ("X") events for stages and spans, in timestamp order so
  // consumers that stream the array see monotonic ts values.
  std::vector<std::pair<uint64_t, std::string>> Timed;
  for (const StageStats &Stage : S.Stages) {
    uint64_t DurNs = static_cast<uint64_t>(Stage.WallMs * 1e6);
    Timed.push_back(
        {Stage.StartNs,
         "{\"name\": " + quoted("stage:" + Stage.Name) +
             ", \"cat\": \"stage\", \"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
             "\"ts\": " +
             toUs(Stage.StartNs) + ", \"dur\": " + toUs(DurNs) + "}"});
  }
  for (const SpanEvent &E : S.Events) {
    std::string Args;
    if (E.Stage != InvalidName)
      Args = "\"stage\": " + quoted(S.nameOf(E.Stage));
    if (E.QueueWaitNs != 0) {
      if (!Args.empty())
        Args += ", ";
      Args += "\"queue_wait_us\": " + toUs(E.QueueWaitNs);
    }
    Timed.push_back(
        {E.StartNs,
         "{\"name\": " + quoted(S.nameOf(E.Name)) +
             ", \"cat\": \"lima\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
             std::to_string(E.Worker) + ", \"ts\": " + toUs(E.StartNs) +
             ", \"dur\": " + toUs(E.DurNs) +
             (Args.empty() ? std::string() : ", \"args\": {" + Args + "}") +
             "}"});
  }
  std::stable_sort(Timed.begin(), Timed.end(),
                   [](const auto &A, const auto &B) {
                     return A.first < B.first;
                   });
  for (auto &Entry : Timed)
    Lines.push_back(std::move(Entry.second));

  // Counters as one sample each at the session end.
  uint64_t EndNs = static_cast<uint64_t>(S.SessionWallMs * 1e6);
  for (const CounterValue &C : S.Counters)
    Lines.push_back("{\"name\": " + quoted(C.Name) +
                    ", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": " +
                    toUs(EndNs) + ", \"args\": {\"value\": " +
                    std::to_string(C.Value) + "}}");

  for (size_t I = 0; I != Lines.size(); ++I) {
    Out += "  " + Lines[I];
    Out += I + 1 == Lines.size() ? "\n" : ",\n";
  }
  Out += "]}\n";
  return Out;
}

std::string telemetry::exportChromeTrace(const FlightSnapshot &S) {
  std::string Out = "{\"displayTimeUnit\": \"ms\", \"total_recorded\": " +
                    std::to_string(S.TotalRecorded) +
                    ", \"retained\": " + std::to_string(S.Events.size()) +
                    ", \"traceEvents\": [\n";
  std::vector<SpanEvent> Events = S.Events;
  std::stable_sort(Events.begin(), Events.end(),
                   [](const SpanEvent &A, const SpanEvent &B) {
                     return A.StartNs < B.StartNs;
                   });
  std::vector<std::string> Lines;
  for (const SpanEvent &E : Events) {
    std::string Args;
    if (E.Stage != InvalidName)
      Args = "\"stage\": " + quoted(S.nameOf(E.Stage));
    if (E.QueueWaitNs != 0) {
      if (!Args.empty())
        Args += ", ";
      Args += "\"queue_wait_us\": " + toUs(E.QueueWaitNs);
    }
    Lines.push_back(
        "{\"name\": " + quoted(S.nameOf(E.Name)) +
        ", \"cat\": \"lima\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
        std::to_string(E.Worker) + ", \"ts\": " + toUs(E.StartNs) +
        ", \"dur\": " + toUs(E.DurNs) +
        (Args.empty() ? std::string() : ", \"args\": {" + Args + "}") + "}");
  }
  for (size_t I = 0; I != Lines.size(); ++I) {
    Out += "  " + Lines[I];
    Out += I + 1 == Lines.size() ? "\n" : ",\n";
  }
  Out += "]}\n";
  return Out;
}

std::string telemetry::exportSelfProfileJson(const Snapshot &S) {
  std::string Out = "{\n";
  Out += "  \"version\": " + quoted(versionString()) + ",\n";
  Out += "  \"git_rev\": " + quoted(gitRevision()) + ",\n";
  Out += "  \"num_workers\": " + std::to_string(S.NumWorkers) + ",\n";
  Out += "  \"session_wall_ms\": " + formatFixed(S.SessionWallMs, 3) + ",\n";

  Out += "  \"stages\": [\n";
  for (size_t I = 0; I != S.Stages.size(); ++I) {
    const StageStats &Stage = S.Stages[I];
    Out += "    {\"name\": " + quoted(Stage.Name) +
           ", \"wall_ms\": " + formatFixed(Stage.WallMs, 3) +
           ", \"workers\": [";
    for (unsigned W = 0; W != S.NumWorkers; ++W) {
      Out += "{\"compute_ms\": " + formatFixed(Stage.WorkerComputeMs[W], 3) +
             ", \"queue_wait_ms\": " +
             formatFixed(Stage.WorkerQueueWaitMs[W], 3) +
             ", \"idle_ms\": " + formatFixed(idleMs(Stage, W), 3) + "}";
      if (W + 1 != S.NumWorkers)
        Out += ", ";
    }
    Out += "]}";
    Out += I + 1 == S.Stages.size() ? "\n" : ",\n";
  }
  Out += "  ],\n";

  Out += "  \"spans\": [\n";
  for (size_t I = 0; I != S.Spans.size(); ++I) {
    const SpanStats &Span = S.Spans[I];
    Out += "    {\"name\": " + quoted(Span.Name) +
           ", \"count\": " + std::to_string(Span.Count) +
           ", \"total_ms\": " + formatFixed(Span.TotalMs, 3) +
           ", \"min_ms\": " + formatFixed(Span.MinMs, 3) +
           ", \"max_ms\": " + formatFixed(Span.MaxMs, 3) +
           ", \"mean_ms\": " + formatFixed(Span.MeanMs, 3) + "}";
    Out += I + 1 == S.Spans.size() ? "\n" : ",\n";
  }
  Out += "  ],\n";

  Out += "  \"counters\": [\n";
  for (size_t I = 0; I != S.Counters.size(); ++I) {
    Out += "    {\"name\": " + quoted(S.Counters[I].Name) +
           ", \"value\": " + std::to_string(S.Counters[I].Value) + "}";
    Out += I + 1 == S.Counters.size() ? "\n" : ",\n";
  }
  Out += "  ]\n}\n";
  return Out;
}
