//===- support/MetricsExport.h - Prometheus text exposition -----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a metrics registry snapshot in the Prometheus text
/// exposition format (version 0.0.4): one `# TYPE` comment per metric
/// family followed by its samples, histograms expanded into cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`.
///
/// Metric names may carry a label block in braces
/// (`lima.window.sid_c{region="loop1"}`); the braces split off into the
/// sample's label set and the base name is sanitized to the Prometheus
/// charset ([a-zA-Z0-9_:], dots become underscores).  Families sharing
/// a base name emit one TYPE line.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_METRICSEXPORT_H
#define LIMA_SUPPORT_METRICSEXPORT_H

#include "support/Error.h"
#include "support/Metrics.h"
#include <string>

namespace lima {
namespace metrics {

/// Renders \p Snap as Prometheus text exposition.  Families are emitted
/// counters first, then gauges, then histograms, each sorted by name
/// (the snapshot's order), so output is deterministic.
std::string writePrometheusText(const RegistrySnapshot &Snap);

/// Convenience: snapshotAll() rendered as text exposition.
std::string writePrometheusText();

/// Convenience: snapshotAll() exposition written to \p Path.
Error writeMetricsFile(const std::string &Path);

/// Sanitizes \p Name's base (everything before an optional '{') to the
/// Prometheus metric-name charset and returns base plus the untouched
/// label block, split.  Exposed for the exporter's tests.
struct SplitName {
  std::string Base;
  std::string Labels; ///< Contents inside the braces, or empty.
};
SplitName splitMetricName(std::string_view Name);

/// Escapes \p Value for use inside a Prometheus label value: backslash,
/// double quote, and newline become \\, \", and \n (the exposition
/// format's escape rules).  Callers embedding untrusted strings (say,
/// region names from a trace) into a label block must escape them, or
/// a name containing '"' yields invalid exposition output.
std::string escapeLabelValue(std::string_view Value);

} // namespace metrics
} // namespace lima

#endif // LIMA_SUPPORT_METRICSEXPORT_H
