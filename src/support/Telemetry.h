//===- support/Telemetry.h - Self-instrumentation layer --------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LIMA's self-instrumentation layer: RAII spans, monotonic counters and
/// pipeline-stage scopes with near-zero cost when disabled.  The paper
/// asks performance tools to automate what expert programmers do when
/// tuning parallel programs; LIMA is itself a parallel program, so this
/// layer records where its own analysis time goes and feeds the result
/// back through LIMA's own dispersion indices (core/SelfProfile.h).
///
/// Cost model (see DESIGN.md, "Observability"):
///
///  - Compile-time switch: building with -DLIMA_TELEMETRY=0 compiles the
///    LIMA_SPAN / LIMA_STAGE / LIMA_COUNTER_ADD macros to nothing — no
///    clock reads, no branches, no storage.
///  - Runtime switch: telemetry is off by default; a disabled span costs
///    one relaxed atomic load, performs no allocation and records no
///    event.
///  - Enabled hot path: each thread appends closed spans to its own
///    buffer, so recording never contends on a shared lock (the only
///    contention is with an explicit collect(), which drains buffers).
///
/// Span events carry the worker id of the recording thread (0 = the
/// calling/orchestrating thread, pool workers are 1..N) and the pipeline
/// stage that was current when the span began, so per-stage, per-worker
/// busy time falls out of a single flat event stream.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_TELEMETRY_H
#define LIMA_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// Compile-time switch; the build defines LIMA_TELEMETRY=0 to compile
/// the instrumentation out entirely (CMake option LIMA_TELEMETRY=OFF).
#ifndef LIMA_TELEMETRY
#define LIMA_TELEMETRY 1
#endif

namespace lima {
namespace telemetry {

/// Sentinel for "no interned name" (events outside any stage).
constexpr uint32_t InvalidName = 0xffffffffu;

/// One closed span, drained from a per-thread buffer by collect().
struct SpanEvent {
  uint32_t Name;        ///< Interned span name.
  uint32_t Stage;       ///< Stage current at begin; InvalidName if none.
  uint32_t Worker;      ///< Recording thread's worker id (0 = caller).
  uint64_t StartNs;     ///< Nanoseconds since the session epoch.
  uint64_t DurNs;       ///< Wall-clock duration.
  uint64_t QueueWaitNs; ///< Pool tasks: submit-to-start latency, else 0.
};

//===----------------------------------------------------------------------===//
// Runtime control
//===----------------------------------------------------------------------===//

namespace detail {
extern std::atomic<bool> Enabled;
} // namespace detail

/// True when recording is enabled at runtime (always false when compiled
/// out).  One relaxed load — this is the disabled-mode hot-path cost.
inline bool enabled() {
#if LIMA_TELEMETRY
  return detail::Enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Enables or disables recording.  Enabling (re)anchors nothing by
/// itself; call reset() first for a fresh session epoch.  A no-op when
/// telemetry is compiled out.
void setEnabled(bool On);

/// Discards every buffered event, zeroes all counters and stage records,
/// and restarts the session epoch.  Not thread-safe against concurrent
/// recording — call it between parallel sections (tests, tool startup).
void reset();

/// Nanoseconds since the session epoch (steady clock).
uint64_t nowNs();

//===----------------------------------------------------------------------===//
// Names, workers and stages
//===----------------------------------------------------------------------===//

/// Interns \p Name, returning a stable dense id.  Cheap, but call sites
/// should still cache the id (the macros below do so in a static).
uint32_t internName(std::string_view Name);

/// The current thread's worker id (0 unless setWorkerId was called).
unsigned workerId();

/// Tags the current thread with \p Worker; pool workers use index + 1 so
/// 0 always denotes the calling/orchestrating thread.
void setWorkerId(unsigned Worker);

/// Largest worker id ever tagged plus one — the processor-dimension
/// extent of the self-profile cube.
unsigned numWorkers();

/// The interned id of the pipeline stage currently open (InvalidName if
/// none).  Stages are process-global: LIMA's pipeline stages are
/// sequential on the orchestrating thread, and pool tasks capture the
/// stage at submit time.
uint32_t currentStage();

/// Records one task execution on behalf of the thread-pool layer:
/// \p RunNs of busy time after \p WaitNs in the queue, attributed to
/// \p Stage and the recording thread's worker id.
void recordTask(uint32_t Stage, uint64_t StartNs, uint64_t RunNs,
                uint64_t WaitNs);

/// Records a closed span (used by the Span RAII class).
void recordSpan(uint32_t Name, uint32_t Stage, uint64_t StartNs,
                uint64_t DurNs);

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

/// A named monotonic counter.  add() is a relaxed atomic increment and
/// is safe from any thread; counters are registered once and live for
/// the process.
class Counter {
public:
  explicit Counter(std::string Name) : Name_(std::move(Name)) {}

  void add(uint64_t Amount) {
    Value_.fetch_add(Amount, std::memory_order_relaxed);
  }
  uint64_t value() const { return Value_.load(std::memory_order_relaxed); }
  const std::string &name() const { return Name_; }

  /// Used by reset(); not safe against concurrent add().
  void zero() { Value_.store(0, std::memory_order_relaxed); }

private:
  std::string Name_;
  std::atomic<uint64_t> Value_{0};
};

/// Returns the process-wide counter registered under \p Name, creating
/// it on first use.  The reference stays valid for the process lifetime.
Counter &counter(std::string_view Name);

//===----------------------------------------------------------------------===//
// Aggregated snapshot
//===----------------------------------------------------------------------===//

/// Aggregate statistics for one span name.
struct SpanStats {
  std::string Name;
  uint64_t Count = 0;
  double TotalMs = 0.0;
  double MinMs = 0.0;
  double MaxMs = 0.0;
  double MeanMs = 0.0;
  /// Busy milliseconds per worker id (size = Snapshot::NumWorkers).
  std::vector<double> WorkerBusyMs;
};

/// One pipeline stage: its wall time on the orchestrating thread plus
/// the per-worker task work performed inside it.
struct StageStats {
  std::string Name;
  uint64_t StartNs = 0;
  double WallMs = 0.0;
  /// Busy milliseconds per worker id: the interval union of every task
  /// and span the worker recorded inside the stage (nested spans do not
  /// double-count).
  std::vector<double> WorkerComputeMs;
  /// Task queue-wait milliseconds per worker id.
  std::vector<double> WorkerQueueWaitMs;
};

/// A final counter reading.
struct CounterValue {
  std::string Name;
  uint64_t Value = 0;
};

/// Everything collect() drains and aggregates.  Names[] resolves the
/// interned ids carried by Events.
struct Snapshot {
  unsigned NumWorkers = 1;
  /// Largest event/stage end time — the session wall clock in ms.
  double SessionWallMs = 0.0;
  /// All drained events, sorted by (StartNs, Worker, Name).
  std::vector<SpanEvent> Events;
  /// Per-name aggregates, ordered by descending TotalMs.
  std::vector<SpanStats> Spans;
  /// Stages in begin order (duplicate names merged into one entry).
  std::vector<StageStats> Stages;
  /// Non-zero counters, ordered by name.
  std::vector<CounterValue> Counters;
  /// Interned-name table (index == id).
  std::vector<std::string> Names;

  const std::string &nameOf(uint32_t Id) const {
    static const std::string None = "(none)";
    return Id < Names.size() ? Names[Id] : None;
  }
};

/// Drains every per-thread buffer and aggregates the result.  Draining
/// is destructive: a second collect() sees only events recorded after
/// the first.  Safe to call while recording is disabled.
Snapshot collect();

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//
//
// A bounded, lock-free ring of the most recent closed spans, kept for
// post-mortem debugging: /debug/spans serves it live and the crash-dump
// path (support/CrashDump.h) write()s it from a signal handler.  Writers
// claim a slot with one fetch_add and fill it with relaxed atomic
// stores; a per-slot sequence word lets readers detect and discard
// slots torn by a concurrent writer, so snapshots are consistent
// without ever blocking the recording path.

/// Turns the flight recorder on with capacity \p Capacity (rounded up
/// to a power of two; 0 turns it off).  Spans recorded while telemetry
/// is enabled are mirrored into the ring.  Reconfiguring keeps old
/// rings alive until process exit so racing writers never touch freed
/// memory.
void enableFlightRecorder(size_t Capacity);

/// True when a ring is installed.
bool flightRecorderEnabled();

/// When on, spans and tasks go *only* to the flight ring, skipping the
/// per-thread collect() buffers.  This is the long-lived-daemon mode
/// (lima_monitor --http): nobody ever drains collect(), so the buffers
/// would otherwise grow without bound.
void setRingOnly(bool On);

/// Point-in-time copy of the ring.
struct FlightSnapshot {
  /// Retained events, oldest first (by claim order).
  std::vector<SpanEvent> Events;
  /// Interned-name table (index == id) at snapshot time.
  std::vector<std::string> Names;
  /// Spans recorded into the ring since it was installed — events
  /// beyond Events.size() have been overwritten.
  uint64_t TotalRecorded = 0;

  const std::string &nameOf(uint32_t Id) const {
    static const std::string None = "(none)";
    return Id < Names.size() ? Names[Id] : None;
  }
};

/// Copies the ring without disturbing it (non-destructive, unlike
/// collect()).  Slots being overwritten mid-copy are skipped.
FlightSnapshot flightSnapshot();

/// Async-signal-safe: walks the ring with plain atomic loads and
/// write(2)s one line per span to \p Fd, resolving names through a
/// fixed-size crash name table.  Only the crash-dump path should call
/// this; everything else wants flightSnapshot().
void crashWriteSpans(int Fd);

//===----------------------------------------------------------------------===//
// RAII recorders
//===----------------------------------------------------------------------===//

/// RAII span: captures the clock at construction and records one
/// SpanEvent at destruction.  When disabled at construction, both ends
/// are no-ops (no clock read).
class Span {
public:
  explicit Span(uint32_t Name) {
    if (enabled()) {
      Name_ = Name;
      Stage_ = currentStage();
      StartNs_ = nowNs();
      Active_ = true;
    }
  }
  ~Span() {
    if (Active_)
      recordSpan(Name_, Stage_, StartNs_, nowNs() - StartNs_);
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  uint64_t StartNs_ = 0;
  uint32_t Name_ = 0;
  uint32_t Stage_ = InvalidName;
  bool Active_ = false;
};

/// RAII pipeline-stage scope: makes \p Name the current stage for the
/// dynamic extent (saving the previous stage, so stages may nest) and
/// records the stage's wall time into the stage table at destruction.
class ScopedStage {
public:
  explicit ScopedStage(uint32_t Name);
  ~ScopedStage();
  ScopedStage(const ScopedStage &) = delete;
  ScopedStage &operator=(const ScopedStage &) = delete;

private:
  uint64_t StartNs_ = 0;
  uint32_t Name_ = 0;
  uint32_t Prev_ = InvalidName;
  bool Active_ = false;
};

} // namespace telemetry
} // namespace lima

//===----------------------------------------------------------------------===//
// Instrumentation macros
//===----------------------------------------------------------------------===//

#define LIMA_TELEMETRY_CONCAT_IMPL(A, B) A##B
#define LIMA_TELEMETRY_CONCAT(A, B) LIMA_TELEMETRY_CONCAT_IMPL(A, B)

#if LIMA_TELEMETRY

/// Opens a RAII span named \p NameLit for the enclosing scope.
#define LIMA_SPAN(NameLit)                                                     \
  static const uint32_t LIMA_TELEMETRY_CONCAT(LimaSpanName_, __LINE__) =       \
      ::lima::telemetry::internName(NameLit);                                  \
  ::lima::telemetry::Span LIMA_TELEMETRY_CONCAT(LimaSpan_, __LINE__)(          \
      LIMA_TELEMETRY_CONCAT(LimaSpanName_, __LINE__))

/// Opens a RAII pipeline-stage scope named \p NameLit.
#define LIMA_STAGE(NameLit)                                                    \
  static const uint32_t LIMA_TELEMETRY_CONCAT(LimaStageName_, __LINE__) =      \
      ::lima::telemetry::internName(NameLit);                                  \
  ::lima::telemetry::ScopedStage LIMA_TELEMETRY_CONCAT(LimaStage_, __LINE__)(  \
      LIMA_TELEMETRY_CONCAT(LimaStageName_, __LINE__))

/// Adds \p Amount to the monotonic counter named \p NameLit (only while
/// recording is enabled, so disabled runs report zero).
#define LIMA_COUNTER_ADD(NameLit, Amount)                                      \
  do {                                                                         \
    if (::lima::telemetry::enabled()) {                                        \
      static ::lima::telemetry::Counter &LimaCounter_ =                        \
          ::lima::telemetry::counter(NameLit);                                 \
      LimaCounter_.add(Amount);                                                \
    }                                                                          \
  } while (false)

#else

#define LIMA_SPAN(NameLit) ((void)0)
#define LIMA_STAGE(NameLit) ((void)0)
#define LIMA_COUNTER_ADD(NameLit, Amount) ((void)0)

#endif // LIMA_TELEMETRY

#endif // LIMA_SUPPORT_TELEMETRY_H
