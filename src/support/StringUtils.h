//===- support/StringUtils.h - String manipulation helpers ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splitting, trimming and fallible number parsing used by the trace
/// reader, the CSV layer and the command-line parser.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_STRINGUTILS_H
#define LIMA_SUPPORT_STRINGUTILS_H

#include "support/Error.h"
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lima {

/// Splits \p Str on \p Sep.  Adjacent separators produce empty fields;
/// an empty input produces a single empty field (CSV semantics).
std::vector<std::string_view> splitString(std::string_view Str, char Sep);

/// Splits \p Str on runs of whitespace; never produces empty fields.
std::vector<std::string_view> splitWhitespace(std::string_view Str);

/// Removes leading and trailing whitespace.
std::string_view trimString(std::string_view Str);

/// Parses a base-10 signed integer occupying the whole of \p Str.
Expected<int64_t> parseInt(std::string_view Str);

/// Parses an unsigned base-10 integer occupying the whole of \p Str.
Expected<uint64_t> parseUnsigned(std::string_view Str);

/// Parses a floating-point number occupying the whole of \p Str.
Expected<double> parseDouble(std::string_view Str);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
/// Used for "did you mean" suggestions on unknown command-line flags.
size_t editDistance(std::string_view A, std::string_view B);

} // namespace lima

#endif // LIMA_SUPPORT_STRINGUTILS_H
