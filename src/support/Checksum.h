//===- support/Checksum.h - CRC32 checksums ---------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant) for
/// integrity-checking binary file sections.  Not cryptographic: the
/// point is detecting torn writes and bit rot, not adversaries — a
/// hostile file can always recompute its own checksums, so parsers must
/// stay robust to arbitrary bytes regardless.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_CHECKSUM_H
#define LIMA_SUPPORT_CHECKSUM_H

#include <cstdint>
#include <string_view>

namespace lima {

/// CRC-32 of \p Data (initial value 0, i.e. the conventional
/// 0xFFFFFFFF pre/post-conditioning is applied internally).
uint32_t crc32(std::string_view Data);

/// Streaming form: feeds \p Data into a running checksum previously
/// returned by crc32() or crc32Update().  crc32(X + Y) ==
/// crc32Update(crc32(X), Y).
///
/// Dispatches at runtime between a portable slicing-by-8 table walk
/// and, on x86 CPUs with PCLMULQDQ, a carry-less-multiply folding
/// path; both compute the identical IEEE polynomial.
uint32_t crc32Update(uint32_t Crc, std::string_view Data);

/// True when the CPU supports the PCLMUL folding path (cached CPUID
/// probe).  The public crc32Update() consults this automatically; it
/// is exposed so tests can report which paths they exercised.
bool crc32HardwareAvailable();

/// Implementation pins for tests: compute the update with exactly one
/// path, bypassing dispatch.  crc32UpdateHardware() falls back to the
/// software path on CPUs without PCLMUL so known-answer tests stay
/// portable.
uint32_t crc32UpdateSoftware(uint32_t Crc, std::string_view Data);
uint32_t crc32UpdateHardware(uint32_t Crc, std::string_view Data);

} // namespace lima

#endif // LIMA_SUPPORT_CHECKSUM_H
