//===- support/RNG.h - Deterministic random number generation ---*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seedable random number generator (xoshiro256**) with
/// the distributions LIMA's workload generators and clustering initializers
/// need.  std::mt19937 + std::*_distribution are avoided because their
/// output is not guaranteed identical across standard library versions;
/// reproducibility of benchmarks requires bit-stable streams.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_RNG_H
#define LIMA_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lima {

/// Derives the seed of an independent substream: `Seed ^ hash(Stream)`
/// with a SplitMix64 finalizer as the hash.  Used wherever work that
/// consumes randomness is split across threads (bootstrap resamples):
/// each unit of work seeds its own RNG from its *index*, so the stream
/// it sees is a function of (Seed, Stream) only — never of the thread
/// count or scheduling order.
uint64_t splitSeed(uint64_t Seed, uint64_t Stream);

/// Deterministic pseudo-random generator (xoshiro256**, seeded via
/// SplitMix64).  The same seed yields the same stream on every platform.
class RNG {
public:
  /// Seeds the generator; the full 256-bit state is expanded from \p Seed
  /// with SplitMix64 so that nearby seeds give uncorrelated streams.
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [Lo, Hi).
  double uniformIn(double Lo, double Hi);

  /// Uniform integer in [0, Bound) with rejection to avoid modulo bias.
  /// \p Bound must be positive.
  uint64_t uniformInt(uint64_t Bound);

  /// Standard normal deviate (Box-Muller, cached pair).
  double normal();

  /// Normal deviate with the given \p Mean and \p StdDev.
  double normalWith(double Mean, double StdDev) {
    return Mean + StdDev * normal();
  }

  /// Exponential deviate with the given \p Rate (mean 1/Rate).
  double exponential(double Rate);

  /// Log-normal deviate where the underlying normal has \p Mu, \p Sigma.
  double logNormal(double Mu, double Sigma);

  /// Fisher-Yates shuffle of \p Values.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(uniformInt(I));
      std::swap(Values[I - 1], Values[J]);
    }
  }

private:
  uint64_t State[4];
  bool HasCachedNormal = false;
  double CachedNormal = 0.0;
};

} // namespace lima

#endif // LIMA_SUPPORT_RNG_H
