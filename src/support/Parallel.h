//===- support/Parallel.h - Thread pool and parallel helpers ----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel execution layer: a shared ThreadPool plus the
/// parallelFor / parallelChunks / parallelReduce helpers the analysis
/// paths are built on.  Design contract (see DESIGN.md, "Parallel
/// execution layer"):
///
///  - A thread-count setting of 0 means "use all hardware threads";
///    1 means "run exactly the serial code path on the calling thread"
///    (no pool involvement, no scheduling jitter).
///  - Work is split into contiguous chunks assigned in index order, and
///    reductions merge partials in chunk order, so a fixed thread count
///    is always deterministic.
///  - Bit-identical results at *any* thread count additionally require
///    the body to either write disjoint per-index slots or merge with an
///    order-insensitive operation (integer sums, max).  Every LIMA use
///    follows one of those two patterns; floating-point accumulation
///    across chunk boundaries is never reassociated.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_SUPPORT_PARALLEL_H
#define LIMA_SUPPORT_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lima {

/// Number of hardware threads, at least 1.
unsigned hardwareThreads();

/// Resolves a user-facing thread-count setting: 0 selects
/// hardwareThreads(), anything else is returned unchanged.
unsigned resolveThreadCount(unsigned Requested);

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Tasks must not throw (LIMA library code never does) and must not
/// submit-and-wait on the same pool from inside a task; the parallel
/// helpers below run one chunk on the calling thread and wait on a
/// per-call latch, so they never deadlock against each other.
class ThreadPool {
public:
  /// Spawns \p Threads workers (0 = hardwareThreads()).
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far has finished.
  void wait();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Unfinished = 0; // queued + currently running
  bool Stopping = false;
};

/// The process-wide pool shared by all parallel helpers, lazily created
/// with hardwareThreads() workers.  Helpers cap their concurrency to the
/// requested thread count; the pool itself is only a worker supply.
ThreadPool &globalThreadPool();

/// Splits [0, N) into min(Threads, N) contiguous chunks and runs
/// \p Body(Chunk, Begin, End) for each, concurrently.  Chunk boundaries
/// depend only on N and the resolved thread count.  Threads <= 1 (after
/// resolution) runs a single chunk inline on the calling thread.
/// Returns only after every chunk finished.
void parallelChunks(
    size_t N, unsigned Threads,
    const std::function<void(size_t Chunk, size_t Begin, size_t End)> &Body);

/// Runs \p Body(I) for every I in [0, N), distributed over min(Threads,
/// N) workers in contiguous index ranges.  The body must tolerate
/// concurrent invocation on distinct indices (typically by writing only
/// to per-index slots).
inline void parallelFor(size_t N, unsigned Threads,
                        const std::function<void(size_t)> &Body) {
  parallelChunks(N, Threads, [&](size_t, size_t Begin, size_t End) {
    for (size_t I = Begin; I != End; ++I)
      Body(I);
  });
}

/// Folds [0, N) in parallel: each chunk folds its contiguous range into
/// a fresh copy of \p Init via \p Fold(Partial, I), and partials are
/// merged into the final result *in chunk order* via \p Merge(Into,
/// From).  With an order-insensitive Merge (integer sums, max) the
/// result is bit-identical at every thread count; otherwise it is
/// deterministic for a fixed thread count.
template <typename T>
T parallelReduce(size_t N, unsigned Threads, T Init,
                 const std::function<void(T &, size_t)> &Fold,
                 const std::function<void(T &, T &)> &Merge) {
  unsigned Resolved = resolveThreadCount(Threads);
  size_t Chunks = std::min<size_t>(Resolved, N ? N : 1);
  if (Chunks <= 1) {
    T Result = std::move(Init);
    for (size_t I = 0; I != N; ++I)
      Fold(Result, I);
    return Result;
  }
  std::vector<T> Partials(Chunks, Init);
  parallelChunks(N, Threads, [&](size_t Chunk, size_t Begin, size_t End) {
    for (size_t I = Begin; I != End; ++I)
      Fold(Partials[Chunk], I);
  });
  T Result = std::move(Init);
  for (T &Partial : Partials)
    Merge(Result, Partial);
  return Result;
}

} // namespace lima

#endif // LIMA_SUPPORT_PARALLEL_H
