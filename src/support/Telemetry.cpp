//===- support/Telemetry.cpp - Self-instrumentation layer -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>

using namespace lima;
using namespace lima::telemetry;

std::atomic<bool> telemetry::detail::Enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

/// One thread's event buffer.  The owning thread appends under Mutex,
/// which is uncontended except while collect() drains, so the enabled
/// hot path never blocks on another recording thread.
struct ThreadBuffer {
  std::mutex Mutex;
  std::vector<SpanEvent> Events;
};

/// A completed pipeline-stage scope (wall time on the recording thread).
struct StageRecord {
  uint32_t Name;
  uint64_t StartNs;
  uint64_t DurNs;
};

/// Process-wide registry.  Registration and collection lock Mutex; the
/// recording fast path only touches the calling thread's buffer.
struct Registry {
  std::mutex Mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
  std::vector<std::string> Names;
  std::vector<StageRecord> Stages;
  /// Stable-address counter storage (references escape to call sites).
  std::deque<Counter> Counters;
};

/// Session epoch in steady-clock nanoseconds.  Atomic so nowNs() stays a
/// single relaxed load on the recording hot path; only reset() writes it.
int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}
std::atomic<int64_t> EpochNs{steadyNowNs()};

Registry &registry() {
  static Registry R;
  return R;
}

std::atomic<unsigned> MaxWorker{0};
std::atomic<uint32_t> CurrentStage{InvalidName};

thread_local unsigned TlsWorker = 0;
thread_local std::shared_ptr<ThreadBuffer> TlsBuffer;

ThreadBuffer &localBuffer() {
  if (!TlsBuffer) {
    TlsBuffer = std::make_shared<ThreadBuffer>();
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Buffers.push_back(TlsBuffer);
  }
  return *TlsBuffer;
}

double toMs(uint64_t Ns) { return static_cast<double>(Ns) / 1e6; }

} // namespace

void telemetry::setEnabled(bool On) {
#if LIMA_TELEMETRY
  detail::Enabled.store(On, std::memory_order_relaxed);
#else
  (void)On;
#endif
}

void telemetry::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const std::shared_ptr<ThreadBuffer> &Buffer : R.Buffers) {
    std::lock_guard<std::mutex> BufferLock(Buffer->Mutex);
    Buffer->Events.clear();
  }
  R.Stages.clear();
  for (Counter &C : R.Counters)
    C.zero();
  EpochNs.store(steadyNowNs(), std::memory_order_relaxed);
  CurrentStage.store(InvalidName, std::memory_order_relaxed);
}

uint64_t telemetry::nowNs() {
  int64_t Delta = steadyNowNs() - EpochNs.load(std::memory_order_relaxed);
  return Delta > 0 ? static_cast<uint64_t>(Delta) : 0;
}

uint32_t telemetry::internName(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (uint32_t Id = 0; Id != R.Names.size(); ++Id)
    if (R.Names[Id] == Name)
      return Id;
  R.Names.emplace_back(Name);
  return static_cast<uint32_t>(R.Names.size() - 1);
}

unsigned telemetry::workerId() { return TlsWorker; }

void telemetry::setWorkerId(unsigned Worker) {
  TlsWorker = Worker;
  unsigned Seen = MaxWorker.load(std::memory_order_relaxed);
  while (Worker > Seen &&
         !MaxWorker.compare_exchange_weak(Seen, Worker,
                                          std::memory_order_relaxed)) {
  }
}

unsigned telemetry::numWorkers() {
  return MaxWorker.load(std::memory_order_relaxed) + 1;
}

uint32_t telemetry::currentStage() {
  return CurrentStage.load(std::memory_order_relaxed);
}

void telemetry::recordSpan(uint32_t Name, uint32_t Stage, uint64_t StartNs,
                           uint64_t DurNs) {
  ThreadBuffer &Buffer = localBuffer();
  std::lock_guard<std::mutex> Lock(Buffer.Mutex);
  Buffer.Events.push_back({Name, Stage, TlsWorker, StartNs, DurNs, 0});
}

void telemetry::recordTask(uint32_t Stage, uint64_t StartNs, uint64_t RunNs,
                           uint64_t WaitNs) {
  static const uint32_t TaskName = internName("pool.task");
  ThreadBuffer &Buffer = localBuffer();
  std::lock_guard<std::mutex> Lock(Buffer.Mutex);
  Buffer.Events.push_back({TaskName, Stage, TlsWorker, StartNs, RunNs,
                           WaitNs});
}

Counter &telemetry::counter(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (Counter &C : R.Counters)
    if (C.name() == Name)
      return C;
  R.Counters.emplace_back(std::string(Name));
  return R.Counters.back();
}

ScopedStage::ScopedStage(uint32_t Name) {
  if (!enabled())
    return;
  Active_ = true;
  Name_ = Name;
  Prev_ = CurrentStage.load(std::memory_order_relaxed);
  StartNs_ = nowNs();
  CurrentStage.store(Name, std::memory_order_relaxed);
}

ScopedStage::~ScopedStage() {
  if (!Active_)
    return;
  CurrentStage.store(Prev_, std::memory_order_relaxed);
  uint64_t DurNs = nowNs() - StartNs_;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Stages.push_back({Name_, StartNs_, DurNs});
}

Snapshot telemetry::collect() {
  Snapshot S;
  std::vector<StageRecord> StageRecords;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    for (const std::shared_ptr<ThreadBuffer> &Buffer : R.Buffers) {
      std::lock_guard<std::mutex> BufferLock(Buffer->Mutex);
      S.Events.insert(S.Events.end(), Buffer->Events.begin(),
                      Buffer->Events.end());
      Buffer->Events.clear();
    }
    S.Names = R.Names;
    StageRecords = R.Stages;
    R.Stages.clear();
    for (const Counter &C : R.Counters)
      if (C.value() != 0)
        S.Counters.push_back({C.name(), C.value()});
  }
  S.NumWorkers = numWorkers();

  std::sort(S.Events.begin(), S.Events.end(),
            [](const SpanEvent &A, const SpanEvent &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              if (A.Worker != B.Worker)
                return A.Worker < B.Worker;
              return A.Name < B.Name;
            });
  std::sort(S.Counters.begin(), S.Counters.end(),
            [](const CounterValue &A, const CounterValue &B) {
              return A.Name < B.Name;
            });

  // Per-name span aggregates.
  std::vector<SpanStats> ByName(S.Names.size());
  uint64_t MaxEndNs = 0;
  for (const SpanEvent &E : S.Events) {
    MaxEndNs = std::max(MaxEndNs, E.StartNs + E.DurNs);
    if (E.Name >= ByName.size())
      continue;
    SpanStats &Stats = ByName[E.Name];
    double Ms = toMs(E.DurNs);
    if (Stats.Count == 0) {
      Stats.Name = S.Names[E.Name];
      Stats.MinMs = Ms;
      Stats.MaxMs = Ms;
      Stats.WorkerBusyMs.assign(S.NumWorkers, 0.0);
    }
    ++Stats.Count;
    Stats.TotalMs += Ms;
    Stats.MinMs = std::min(Stats.MinMs, Ms);
    Stats.MaxMs = std::max(Stats.MaxMs, Ms);
    if (E.Worker < Stats.WorkerBusyMs.size())
      Stats.WorkerBusyMs[E.Worker] += Ms;
  }
  for (SpanStats &Stats : ByName)
    if (Stats.Count != 0) {
      Stats.MeanMs = Stats.TotalMs / static_cast<double>(Stats.Count);
      S.Spans.push_back(std::move(Stats));
    }
  std::stable_sort(S.Spans.begin(), S.Spans.end(),
                   [](const SpanStats &A, const SpanStats &B) {
                     return A.TotalMs > B.TotalMs;
                   });

  // Stages in begin order, duplicates merged (e.g. two analyze calls).
  std::sort(StageRecords.begin(), StageRecords.end(),
            [](const StageRecord &A, const StageRecord &B) {
              return A.StartNs < B.StartNs;
            });
  std::vector<size_t> StageIndexOfName(S.Names.size(), SIZE_MAX);
  for (const StageRecord &Record : StageRecords) {
    MaxEndNs = std::max(MaxEndNs, Record.StartNs + Record.DurNs);
    if (Record.Name >= StageIndexOfName.size())
      continue;
    size_t &Index = StageIndexOfName[Record.Name];
    if (Index == SIZE_MAX) {
      Index = S.Stages.size();
      S.Stages.push_back({});
      StageStats &Stats = S.Stages.back();
      Stats.Name = S.nameOf(Record.Name);
      Stats.StartNs = Record.StartNs;
      Stats.WorkerComputeMs.assign(S.NumWorkers, 0.0);
      Stats.WorkerQueueWaitMs.assign(S.NumWorkers, 0.0);
    }
    S.Stages[Index].WallMs += toMs(Record.DurNs);
  }

  // Attribute busy time to (stage, worker) as the interval *union* of
  // every event recorded there — spans nest inside pool tasks (and each
  // other), so summing durations would double-count; the union is the
  // instrumented-busy coverage of the stage's wall time.  Queue wait is
  // carried by task events only and those never overlap on one worker,
  // so a plain sum is exact.  Events are already sorted by StartNs, so
  // the union is a linear sweep with one open interval per slot.
  struct OpenInterval {
    uint64_t StartNs = 0;
    uint64_t EndNs = 0;
  };
  std::vector<OpenInterval> Open(S.Stages.size() * S.NumWorkers);
  auto slotOf = [&](const SpanEvent &E) -> OpenInterval * {
    if (E.Stage == InvalidName || E.Stage >= StageIndexOfName.size() ||
        StageIndexOfName[E.Stage] == SIZE_MAX || E.Worker >= S.NumWorkers)
      return nullptr;
    return &Open[StageIndexOfName[E.Stage] * S.NumWorkers + E.Worker];
  };
  auto flush = [&](size_t Slot) {
    OpenInterval &I = Open[Slot];
    if (I.EndNs > I.StartNs)
      S.Stages[Slot / S.NumWorkers]
          .WorkerComputeMs[Slot % S.NumWorkers] += toMs(I.EndNs - I.StartNs);
    I = OpenInterval{};
  };
  for (const SpanEvent &E : S.Events) {
    OpenInterval *I = slotOf(E);
    if (!I)
      continue;
    StageStats &Stats = S.Stages[StageIndexOfName[E.Stage]];
    Stats.WorkerQueueWaitMs[E.Worker] += toMs(E.QueueWaitNs);
    uint64_t EndNs = E.StartNs + E.DurNs;
    if (I->EndNs == 0 && I->StartNs == 0) {
      *I = {E.StartNs, EndNs};
    } else if (E.StartNs > I->EndNs) {
      flush(static_cast<size_t>(I - Open.data()));
      *I = {E.StartNs, EndNs};
    } else {
      I->EndNs = std::max(I->EndNs, EndNs);
    }
  }
  for (size_t Slot = 0; Slot != Open.size(); ++Slot)
    flush(Slot);

  S.SessionWallMs = toMs(MaxEndNs);
  return S;
}
